package dhtjoin

import (
	"context"
	"fmt"
	"iter"

	"repro/internal/core"
	"repro/internal/join2"
)

// Query is the query-centric entry point: a value describing one join —
// graph, either a (P, Q) pair of node sets or an n-way query graph, and
// options — whose execution yields a context-aware pull stream of
// rank-ordered results instead of a batch slice. Build one with
// NewPairQuery or NewJoinQuery, refine it with WithOptions, then either
//
//   - range over Results(ctx) / Answers(ctx) (Go 1.23+ iterators) — the
//     stream stops, and every pooled engine is released, as soon as the
//     loop breaks or ctx is cancelled; or
//   - hold a handle from OpenPairs(ctx) / OpenAnswers(ctx) for explicit
//     Next / NextK / Stop control ("give me the next k" pagination).
//
// The streamed ranking is exactly the batch ranking: the first m results of
// any stream are bit-identical (same pairs, same float64 scores, same
// order) to the one-shot top-m call with the same options — TopKPairs and
// TopK are in fact thin wrappers that drain a stream. A Query value is
// immutable after construction and may be executed any number of times;
// each execution is independent. Streams themselves are single-goroutine.
type Query struct {
	g    *Graph
	p, q *NodeSet
	join *QueryGraph
	opts *Options
}

// NewPairQuery describes a 2-way join from p to q over g, evaluated with
// B-IDJ-Y (the paper's best 2-way algorithm) and streamed through the
// incremental F structure of §VI-D.
func NewPairQuery(g *Graph, p, q *NodeSet) *Query {
	return &Query{g: g, p: p, q: q}
}

// NewJoinQuery describes an n-way join over the query graph, evaluated with
// PJ-i.
func NewJoinQuery(g *Graph, join *QueryGraph) *Query {
	return &Query{g: g, join: join}
}

// WithOptions returns a copy of the query carrying opts (nil selects the
// paper's defaults, as everywhere else).
func (qy *Query) WithOptions(opts *Options) *Query {
	cp := *qy
	cp.opts = opts
	return &cp
}

// Validate checks the query's inputs without executing it, returning the
// package's typed errors (wrapped, so use errors.Is).
func (qy *Query) Validate() error {
	if qy == nil || qy.g == nil {
		return ErrNilGraph
	}
	pairForm := qy.p != nil || qy.q != nil
	if pairForm == (qy.join != nil) {
		return ErrQueryForm
	}
	if pairForm {
		if qy.p == nil || qy.p.Len() == 0 {
			return fmt.Errorf("%w (P)", ErrEmptyNodeSet)
		}
		if qy.q == nil || qy.q.Len() == 0 {
			return fmt.Errorf("%w (Q)", ErrEmptyNodeSet)
		}
		if err := qy.p.Validate(qy.g); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
		}
		if err := qy.q.Validate(qy.g); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
		}
	} else if err := qy.join.Validate(qy.g); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
	}
	if _, _, _, _, err := qy.opts.resolve(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	return nil
}

// openPairs validates and opens the 2-way stream with the given initial
// batch budget (0 selects the resolved per-edge budget, Options.M). batch
// marks a drain-exactly-initial caller (TopKPairs): the stream then skips
// the incremental F structure — populating it costs O(|P|·|Q|) heap
// insertions that a caller who never pulls past the initial batch would
// pay for nothing — and runs one plain top-k join behind a doubling
// re-join, which prices the wrapper identically to a direct joiner call.
func (qy *Query) openPairs(ctx context.Context, initial int, batch bool) (*PairStream, error) {
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	if qy.join != nil {
		return nil, fmt.Errorf("%w: 2-way stream requested for an n-way query", ErrQueryForm)
	}
	params, d, _, m, err := qy.opts.resolve()
	if err != nil {
		return nil, err
	}
	if initial <= 0 {
		initial = m
	}
	cfg := join2.Config{Graph: qy.g, Params: params, D: d, P: qy.p.Nodes(), Q: qy.q.Nodes()}
	var rl *Relabeling
	if qy.opts != nil {
		cfg.Measure = qy.opts.Measure
		cfg.Workers = qy.opts.Workers
		cfg.BatchWidth = qy.opts.BatchWidth
		rl = relabelPairConfig(&cfg, qy.opts.Relabel)
	}
	st, err := join2.NewBIDJYStream(cfg, join2.StreamSpec{Initial: initial}, batch)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &PairStream{ctx: ctx, st: st, rl: rl}, nil
}

// OpenPairs opens the rank-ordered pair stream of a 2-way query. The caller
// owns the handle: pull with Next or NextK, and Stop when done — Stop (or
// draining to exhaustion, or a ctx error) releases every pooled engine.
func (qy *Query) OpenPairs(ctx context.Context) (*PairStream, error) {
	return qy.openPairs(ctx, 0, false)
}

// Results executes a 2-way query as a pull-based iterator: pairs arrive in
// descending score order, and breaking out of the loop (or cancelling ctx)
// stops the underlying join and releases its engines. A query error is
// yielded as the final (zero, err) element.
//
//	for pr, err := range query.Results(ctx) {
//		if err != nil { ... }
//		// use pr.Pair, pr.Score; break whenever enough
//	}
func (qy *Query) Results(ctx context.Context) iter.Seq2[PairResult, error] {
	return func(yield func(PairResult, error) bool) {
		s, err := qy.OpenPairs(ctx)
		if err != nil {
			yield(PairResult{}, err)
			return
		}
		defer s.Stop()
		for {
			r, ok, err := s.Next()
			if err != nil {
				yield(PairResult{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// openAnswers validates and opens the n-way stream with the given initial
// per-edge budget (0 selects the resolved Options.M).
func (qy *Query) openAnswers(ctx context.Context, initial int) (*AnswerStream, error) {
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	if qy.join == nil {
		return nil, fmt.Errorf("%w: n-way stream requested for a 2-way query", ErrQueryForm)
	}
	params, d, agg, m, err := qy.opts.resolve()
	if err != nil {
		return nil, err
	}
	if initial > 0 {
		m = initial
	}
	// K is required by Spec.Validate but never bounds a stream; the PBRJ
	// emission loop is k-free by construction.
	spec := core.Spec{Graph: qy.g, Query: qy.join, Params: params, D: d, Agg: agg, K: 1}
	var rl *Relabeling
	if qy.opts != nil {
		spec.Distinct = qy.opts.Distinct
		spec.Measure = qy.opts.Measure
		spec.Workers = qy.opts.Workers
		spec.BatchWidth = qy.opts.BatchWidth
		rl = relabelSpec(&spec, qy.opts.Relabel)
	}
	alg, err := core.NewPJI(spec, m)
	if err != nil {
		return nil, err
	}
	st, err := alg.Stream()
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &AnswerStream{ctx: ctx, st: st, rl: rl}, nil
}

// OpenAnswers opens the rank-ordered answer stream of an n-way query; see
// OpenPairs for the handle contract.
func (qy *Query) OpenAnswers(ctx context.Context) (*AnswerStream, error) {
	return qy.openAnswers(ctx, 0)
}

// Answers executes an n-way query as a pull-based iterator — the n-way
// analogue of Results, with the same stop-and-release contract.
func (qy *Query) Answers(ctx context.Context) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		s, err := qy.OpenAnswers(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		defer s.Stop()
		for {
			a, ok, err := s.Next()
			if err != nil {
				yield(Answer{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(a, nil) {
				return
			}
		}
	}
}

// PairStream is the pull handle of a 2-way query: results arrive one at a
// time in descending score order (prefix-identical to the batch ranking).
// Single-goroutine, like the engines it drives.
type PairStream struct {
	ctx       context.Context
	st        join2.Stream
	rl        *Relabeling
	stopped   bool
	exhausted bool
}

// Next returns the next-best pair. ok is false once the |P|·|Q| candidate
// space is exhausted (the stream auto-stops and further calls keep
// reporting ok=false); pulling after an explicit Stop returns
// ErrStreamStopped instead. A cancelled context surfaces as
// (zero, false, ctx.Err()) and also stops the stream.
func (s *PairStream) Next() (PairResult, bool, error) {
	if s.exhausted {
		return PairResult{}, false, nil
	}
	if s.stopped {
		return PairResult{}, false, ErrStreamStopped
	}
	if err := s.ctx.Err(); err != nil {
		s.Stop()
		return PairResult{}, false, err
	}
	r, ok, err := s.st.Next()
	if err != nil || !ok {
		if err == nil {
			s.exhausted = true
		}
		s.Stop()
		return PairResult{}, ok, err
	}
	if s.rl != nil {
		r.Pair.P = s.rl.ToOld(r.Pair.P)
		r.Pair.Q = s.rl.ToOld(r.Pair.Q)
	}
	return r, true, nil
}

// NextK pulls up to k further results — the "give me the next k"
// continuation. Fewer than k are returned at exhaustion (on error, the
// results drained before it come back alongside); k must be positive.
func (s *PairStream) NextK(k int) ([]PairResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return join2.Drain(k, s.Next)
}

// Stop ends the stream and releases every pooled engine it holds. It is
// idempotent and always safe — including mid-stream, which is the whole
// point: early termination must not leak pool entries.
func (s *PairStream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.st.Release()
}

// AnswerStream is the pull handle of an n-way query; same contract as
// PairStream.
type AnswerStream struct {
	ctx       context.Context
	st        core.TupleStream
	rl        *Relabeling
	stopped   bool
	exhausted bool
}

// Next returns the next-best answer; see PairStream.Next for the contract.
func (s *AnswerStream) Next() (Answer, bool, error) {
	if s.exhausted {
		return Answer{}, false, nil
	}
	if s.stopped {
		return Answer{}, false, ErrStreamStopped
	}
	if err := s.ctx.Err(); err != nil {
		s.Stop()
		return Answer{}, false, err
	}
	a, ok, err := s.st.Next()
	if err != nil || !ok {
		if err == nil {
			s.exhausted = true
		}
		s.Stop()
		return Answer{}, ok, err
	}
	if s.rl != nil {
		for i := range a.Nodes {
			a.Nodes[i] = s.rl.ToOld(a.Nodes[i])
		}
	}
	return a, true, nil
}

// NextK pulls up to k further answers; see PairStream.NextK.
func (s *AnswerStream) NextK(k int) ([]Answer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return join2.Drain(k, s.Next)
}

// Stop ends the stream and releases its pooled engines; idempotent.
func (s *AnswerStream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.st.Release()
}
