package dhtjoin

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/core"
	"repro/internal/join2"
	"repro/internal/measure"
	"repro/internal/plan"
)

// Query is the query-centric entry point: a value describing one join —
// graph, either a (P, Q) pair of node sets or an n-way query graph, and
// options — whose execution yields a context-aware pull stream of
// rank-ordered results instead of a batch slice. Build one with
// NewPairQuery or NewJoinQuery, refine it with WithOptions, then either
//
//   - range over Results(ctx) / Answers(ctx) (Go 1.23+ iterators) — the
//     stream stops, and every pooled engine is released, as soon as the
//     loop breaks or ctx is cancelled; or
//   - hold a handle from OpenPairs(ctx) / OpenAnswers(ctx) for explicit
//     Next / NextK / Stop control ("give me the next k" pagination).
//
// The streamed ranking is exactly the batch ranking: the first m results of
// any stream are bit-identical (same pairs, same float64 scores, same
// order) to the one-shot top-m call with the same options — TopKPairs and
// TopK are in fact thin wrappers that drain a stream. A Query value is
// immutable after construction and may be executed any number of times;
// each execution is independent. Streams themselves are single-goroutine.
type Query struct {
	g     *Graph
	p, q  *NodeSet
	join  *QueryGraph
	opts  *Options
	hints Hints
}

// Hints force planner decisions for one query. The zero value defers
// everything to the cost-based planner (and the query's Options); a non-zero
// field overrides both. Invalid hints are rejected at Validate/open time
// with the package's typed errors: an Algorithm naming no registered
// executor fails with ErrUnknownAlgorithm, an algorithm of the wrong query
// class (a 2-way joiner on an n-way query, or vice versa) or an invalid
// Relabel mode fails with ErrHintConflict — both errors.Is-able.
type Hints struct {
	// Algorithm forces the named executor instead of the planner's pick:
	// one of Algorithms2Way for pair queries ("B-IDJ-Y", "B-IDJ-X", "B-BJ",
	// "F-BJ", "F-IDJ") or AlgorithmsNWay for n-way queries ("NL", "AP",
	// "PJ", "PJ-i"). Results are bit-identical under any choice — forcing
	// is purely a cost decision.
	Algorithm string

	// Workers overrides Options.Workers when non-zero (negative selects
	// GOMAXPROCS, exactly as in Options).
	Workers int

	// BatchWidth overrides Options.BatchWidth when non-zero.
	BatchWidth int

	// Relabel overrides Options.Relabel when not RelabelOff.
	Relabel RelabelMode
}

// WithHints returns a copy of the query carrying h; see Hints for the
// override and validation semantics.
func (qy *Query) WithHints(h Hints) *Query {
	cp := *qy
	cp.hints = h
	return &cp
}

// QueryPlan is the planner's decision for one query: the chosen algorithm,
// the per-candidate cost estimates (ascending, in estimated edge
// relaxations), and the workload — including the graph's structural stats
// snapshot — the estimates were computed from. Returned by Query.Explain.
type QueryPlan = plan.Plan

// PlanEstimate is one candidate row of a QueryPlan.
type PlanEstimate = plan.Estimate

// Algorithms2Way and AlgorithmsNWay list the registered executor names of
// each query class, in registry (alphabetical) order — the valid values of
// Hints.Algorithm for a walk-measure query (the default). Executors
// dedicated to another measure (SimRank's SR-SCAN / SR-AP) are excluded:
// forcing one onto a query that does not select their measure is an
// ErrHintConflict, and AlgorithmsForMeasure lists them instead.
func Algorithms2Way() []string { return algorithmNames(plan.TwoWay, "") }

// AlgorithmsNWay lists the registered n-way executor names; see
// Algorithms2Way.
func AlgorithmsNWay() []string { return algorithmNames(plan.NWay, "") }

// AlgorithmsForMeasure lists the 2-way and n-way executor names a query
// with the named measure may force via Hints.Algorithm. The empty name
// selects "dht"; every walk measure shares the walk executor family, while
// e.g. "simrank" gets its dedicated SR-SCAN / SR-AP.
func AlgorithmsForMeasure(name string) (twoWay, nWay []string, err error) {
	kern, err := measure.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return algorithmNames(plan.TwoWay, kern.PlanMeasure), algorithmNames(plan.NWay, kern.PlanMeasure), nil
}

func algorithmNames(class plan.Class, planMeasure string) []string {
	ds := plan.Executors(class)
	out := make([]string, 0, len(ds))
	for _, d := range ds {
		if d.Measure == planMeasure {
			out = append(out, d.Name)
		}
	}
	return out
}

// NewPairQuery describes a 2-way join from p to q over g. The cost-based
// planner picks the evaluation algorithm per query — usually B-IDJ-Y (the
// paper's best 2-way algorithm, streamed through the incremental F structure
// of §VI-D), but e.g. B-BJ when the demanded prefix covers most of the
// candidate space and iterative deepening could not prune. Explain reports
// the decision; WithHints forces one. Results are bit-identical under every
// choice.
func NewPairQuery(g *Graph, p, q *NodeSet) *Query {
	return &Query{g: g, p: p, q: q}
}

// NewJoinQuery describes an n-way join over the query graph, evaluated with
// the planner's pick among NL / AP / PJ / PJ-i (PJ-i, the paper's best,
// under almost every workload); see NewPairQuery.
func NewJoinQuery(g *Graph, join *QueryGraph) *Query {
	return &Query{g: g, join: join}
}

// WithOptions returns a copy of the query carrying opts (nil selects the
// paper's defaults, as everywhere else).
func (qy *Query) WithOptions(opts *Options) *Query {
	cp := *qy
	cp.opts = opts
	return &cp
}

// WithMeasure returns a copy of the query evaluating the named registered
// proximity measure ("dht", "reach", "ppr", "simrank"; Measures lists
// them). It is shorthand for setting Options.MeasureName — a later
// WithOptions replaces it. The empty name selects "dht", the paper's
// measure; an unknown name fails Validate (and every entry point) with
// ErrUnknownMeasure.
func (qy *Query) WithMeasure(name string) *Query {
	cp := *qy
	o := Options{}
	if qy.opts != nil {
		o = *qy.opts
	}
	o.MeasureName = name
	cp.opts = &o
	return &cp
}

// kernel resolves the query's measure kernel. Callers run it only after
// Validate has accepted the options, so lookup cannot fail here; an unknown
// name yields the zero kernel, which plans like the walk family.
func (qy *Query) kernel() measure.Kernel {
	var name string
	if qy.opts != nil {
		name = qy.opts.MeasureName
	}
	kern, _ := measure.Lookup(name)
	return kern
}

// Validate checks the query's inputs without executing it, returning the
// package's typed errors (wrapped, so use errors.Is).
func (qy *Query) Validate() error {
	if qy == nil || qy.g == nil {
		return ErrNilGraph
	}
	pairForm := qy.p != nil || qy.q != nil
	if pairForm == (qy.join != nil) {
		return ErrQueryForm
	}
	if pairForm {
		if qy.p == nil || qy.p.Len() == 0 {
			return fmt.Errorf("%w (P)", ErrEmptyNodeSet)
		}
		if qy.q == nil || qy.q.Len() == 0 {
			return fmt.Errorf("%w (Q)", ErrEmptyNodeSet)
		}
		if err := qy.p.Validate(qy.g); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
		}
		if err := qy.q.Validate(qy.g); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
		}
	} else if err := qy.join.Validate(qy.g); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidQueryGraph, err)
	}
	if _, _, _, _, err := qy.opts.resolve(); err != nil {
		// %w twice keeps the cause inspectable — errors.Is still matches
		// ErrUnknownMeasure through the ErrInvalidOptions wrapper.
		return fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	if _, err := qy.accuracy(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	return qy.validateHints()
}

// accuracy resolves Options.Accuracy to the planner knob.
func (qy *Query) accuracy() (plan.Accuracy, error) {
	if qy.opts == nil {
		return plan.Exact, nil
	}
	return plan.ParseAccuracy(qy.opts.Accuracy)
}

// validateHints rejects invalid hint combinations with the typed sentinels.
func (qy *Query) validateHints() error {
	switch qy.hints.Relabel {
	case RelabelOff, RelabelDegree, RelabelBFS:
	default:
		return fmt.Errorf("%w: unknown relabel mode %d", ErrHintConflict, qy.hints.Relabel)
	}
	if qy.hints.Algorithm == "" {
		return nil
	}
	if err := plan.ValidateForced(qy.class(), qy.hints.Algorithm, qy.kernel().PlanMeasure); err != nil {
		if errors.Is(err, plan.ErrWrongClass) || errors.Is(err, plan.ErrWrongMeasure) {
			return fmt.Errorf("%w: %v", ErrHintConflict, err)
		}
		return fmt.Errorf("%w: %v", ErrUnknownAlgorithm, err)
	}
	return nil
}

// class maps the query form to its planner class.
func (qy *Query) class() plan.Class {
	if qy.join != nil {
		return plan.NWay
	}
	return plan.TwoWay
}

// knobs resolves the execution knobs hints may override.
func (qy *Query) knobs() (workers, batchWidth int, relabel RelabelMode) {
	if qy.opts != nil {
		workers, batchWidth, relabel = qy.opts.Workers, qy.opts.BatchWidth, qy.opts.Relabel
	}
	if qy.hints.Workers != 0 {
		workers = qy.hints.Workers
	}
	if qy.hints.BatchWidth != 0 {
		batchWidth = qy.hints.BatchWidth
	}
	if qy.hints.Relabel != RelabelOff {
		relabel = qy.hints.Relabel
	}
	return workers, batchWidth, relabel
}

// workload assembles the planner's view of the query. k is the demand the
// plan is sized for (streams have unknown demand, so callers pass the
// initial batch budget); the graph's structural stats come from the cached
// Graph.Stats snapshot.
func (qy *Query) workload(d, k, m int) plan.Workload {
	workers, batchWidth, _ := qy.knobs()
	w := plan.Workload{Stats: qy.g.Stats(), K: k, M: m, D: d, Workers: workers, BatchWidth: batchWidth}
	w.Measure = qy.kernel().PlanMeasure
	// Invalid accuracy spellings were rejected at Validate/open time; a
	// parse failure here can only leave the conservative Exact default.
	w.Accuracy, _ = qy.accuracy()
	if qy.join != nil {
		w.SetSizes = make([]int, qy.join.NumSets())
		for i := range w.SetSizes {
			w.SetSizes[i] = qy.join.Set(i).Len()
		}
		for _, e := range qy.join.Edges() {
			w.QueryEdges = append(w.QueryEdges, [2]int{e.From, e.To})
		}
		return w
	}
	w.P, w.Q = qy.p.Len(), qy.q.Len()
	return w
}

// decide runs the planner (or validates the forced hint) for demand k.
func (qy *Query) decide(d, k, m int) (*QueryPlan, error) {
	pl, err := plan.Decide(qy.class(), qy.workload(d, k, m), qy.hints.Algorithm)
	if err != nil {
		if errors.Is(err, plan.ErrWrongClass) || errors.Is(err, plan.ErrWrongMeasure) {
			return nil, fmt.Errorf("%w: %v", ErrHintConflict, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrUnknownAlgorithm, err)
	}
	return pl, nil
}

// Explain validates the query and returns the plan its streaming entry
// points (Results, Answers, OpenPairs, OpenAnswers) would run, without
// executing anything: the chosen algorithm, every registered candidate's
// cost estimate, and the stats snapshot the estimates were computed from.
// Streams have unknown demand up front, so the plan is sized for the
// initial batch (the resolved per-edge budget M) — exactly the demand those
// entry points plan for. The 2-way batch wrapper TopKPairs re-plans for its
// exact k, which can pick a different algorithm when k differs from M
// (e.g. B-BJ once k spans the candidate space); ExplainTopK prices that. A
// forced Hints.Algorithm is validated and reported with Forced set
// alongside the full cost table.
func (qy *Query) Explain(ctx context.Context) (*QueryPlan, error) {
	_ = ctx // planning never blocks; ctx kept for API symmetry with execution
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	_, d, _, m, err := qy.opts.resolve()
	if err != nil {
		return nil, err // unreachable: Validate already resolved the options
	}
	return qy.decide(d, m, m)
}

// ExplainTopK returns the plan the batch wrappers would run for demand k:
// for a 2-way query the plan TopKPairs(ctx, k) executes (priced for exactly
// k results), for an n-way query the same plan as Explain (TopK drains the
// answer stream, which is sized for the per-edge budget M regardless of k).
func (qy *Query) ExplainTopK(ctx context.Context, k int) (*QueryPlan, error) {
	_ = ctx
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	_, d, _, m, err := qy.opts.resolve()
	if err != nil {
		return nil, err // unreachable: Validate already resolved the options
	}
	if qy.join != nil {
		return qy.decide(d, m, m)
	}
	return qy.decide(d, k, m)
}

// openPairs validates and opens the 2-way stream with the given initial
// batch budget (0 selects the resolved per-edge budget, Options.M). batch
// marks a drain-exactly-initial caller (TopKPairs): the stream then skips
// the incremental F structure — populating it costs O(|P|·|Q|) heap
// insertions that a caller who never pulls past the initial batch would
// pay for nothing — and runs one plain top-k join behind a doubling
// re-join, which prices the wrapper identically to a direct joiner call.
func (qy *Query) openPairs(ctx context.Context, initial int, batch bool) (*PairStream, error) {
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	if qy.join != nil {
		return nil, fmt.Errorf("%w: 2-way stream requested for an n-way query", ErrQueryForm)
	}
	kern, params, d, _, m, err := qy.opts.resolveMeasure()
	if err != nil {
		return nil, err
	}
	if initial <= 0 {
		initial = m
	}
	// Plan against the original graph's cached stats (relabeling permutes
	// ids, never structure), then execute the pick on the possibly
	// relabeled config. All executors produce bit-identical rankings, so
	// the choice is purely a cost decision.
	pl, err := qy.decide(d, initial, m)
	if err != nil {
		return nil, err
	}
	ctx, cancel := qy.budgetContext(ctx)
	cfg := join2.Config{Graph: qy.g, Params: params, D: d, P: qy.p.Nodes(), Q: qy.q.Nodes()}
	workers, batchWidth, relabel := qy.knobs()
	cfg.Workers = workers
	cfg.BatchWidth = batchWidth
	// The joiners poll this at walk-round granularity, so a cancelled ctx
	// (or an expired budget) stops the join mid-round instead of only
	// between pulls. context.Cause is nil while the ctx is live.
	cfg.Cancel = func() error { return context.Cause(ctx) }
	cfg.Measure = qy.opts.walkKind(kern)
	rl := relabelPairConfig(&cfg, relabel)
	st, err := join2.NewNamedStream(pl.Algorithm, cfg, join2.StreamSpec{Initial: initial}, batch)
	if err != nil {
		cancel()
		return nil, err
	}
	return &PairStream{ctx: ctx, cancel: cancel, st: st, rl: rl}, nil
}

// budgetContext applies Options.Budget as a deadline whose cancellation
// cause is ErrBudgetExceeded — distinguishable from a caller cancel, so
// streams can degrade to a truncated-but-correct prefix instead of erroring.
// A nil ctx means Background; without a budget the ctx passes through with a
// no-op cancel.
func (qy *Query) budgetContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if qy.opts == nil || qy.opts.Budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, qy.opts.Budget, ErrBudgetExceeded)
}

// OpenPairs opens the rank-ordered pair stream of a 2-way query. The caller
// owns the handle: pull with Next or NextK, and Stop when done — Stop (or
// draining to exhaustion, or a ctx error) releases every pooled engine.
func (qy *Query) OpenPairs(ctx context.Context) (*PairStream, error) {
	return qy.openPairs(ctx, 0, false)
}

// TopKPairs executes the 2-way query as a one-shot batch: the k best pairs
// in descending score order, evaluated by the planner's pick (or the forced
// Hints.Algorithm) — the hints-aware form of the package-level TopKPairs,
// and bit-identical to the first k elements of Results.
func (qy *Query) TopKPairs(ctx context.Context, k int) ([]PairResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	s, err := qy.openPairs(ctx, k, true)
	if err != nil {
		return nil, err
	}
	defer s.Stop()
	res, err := s.NextK(k)
	if err != nil {
		return nil, err
	}
	if s.Truncated() {
		// The deadline budget expired: res is a correct-but-short prefix.
		// Return it alongside the sentinel so callers can choose.
		return res, ErrBudgetExceeded
	}
	return res, nil
}

// TopK executes the n-way query as a one-shot batch: the k best answers in
// descending aggregate order — the hints-aware form of the package-level
// TopK, bit-identical to the first k elements of Answers.
func (qy *Query) TopK(ctx context.Context, k int) ([]Answer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	s, err := qy.OpenAnswers(ctx)
	if err != nil {
		return nil, err
	}
	defer s.Stop()
	answers, err := s.NextK(k)
	if err != nil {
		return nil, err
	}
	if s.Truncated() {
		return answers, ErrBudgetExceeded
	}
	return answers, nil
}

// Results executes a 2-way query as a pull-based iterator: pairs arrive in
// descending score order, and breaking out of the loop (or cancelling ctx)
// stops the underlying join and releases its engines. A query error is
// yielded as the final (zero, err) element.
//
//	for pr, err := range query.Results(ctx) {
//		if err != nil { ... }
//		// use pr.Pair, pr.Score; break whenever enough
//	}
func (qy *Query) Results(ctx context.Context) iter.Seq2[PairResult, error] {
	return func(yield func(PairResult, error) bool) {
		s, err := qy.OpenPairs(ctx)
		if err != nil {
			yield(PairResult{}, err)
			return
		}
		defer s.Stop()
		for {
			r, ok, err := s.Next()
			if err != nil {
				yield(PairResult{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(r, nil) {
				return
			}
		}
	}
}

// openAnswers validates and opens the n-way stream with the given initial
// per-edge budget (0 selects the resolved Options.M).
func (qy *Query) openAnswers(ctx context.Context, initial int) (*AnswerStream, error) {
	if err := qy.Validate(); err != nil {
		return nil, err
	}
	if qy.join == nil {
		return nil, fmt.Errorf("%w: n-way stream requested for a 2-way query", ErrQueryForm)
	}
	kern, params, d, agg, m, err := qy.opts.resolveMeasure()
	if err != nil {
		return nil, err
	}
	if initial > 0 {
		m = initial
	}
	// Plan before the relabel rewrite, as in openPairs; every n-way
	// operator streams the identical ranking, so the pick is cost-only.
	pl, err := qy.decide(d, m, m)
	if err != nil {
		return nil, err
	}
	// K is required by Spec.Validate but never bounds a stream; the PBRJ
	// emission loop is k-free by construction.
	spec := core.Spec{Graph: qy.g, Query: qy.join, Params: params, D: d, Agg: agg, K: 1}
	workers, batchWidth, relabel := qy.knobs()
	spec.Workers = workers
	spec.BatchWidth = batchWidth
	if qy.opts != nil {
		spec.Distinct = qy.opts.Distinct
	}
	spec.Measure = qy.opts.walkKind(kern)
	ctx, cancel := qy.budgetContext(ctx)
	spec.Cancel = func() error { return context.Cause(ctx) }
	rl := relabelSpec(&spec, relabel)
	alg, err := core.NewNamed(pl.Algorithm, spec, m)
	if err != nil {
		cancel()
		return nil, err
	}
	st, err := alg.Stream()
	if err != nil {
		cancel()
		return nil, err
	}
	return &AnswerStream{ctx: ctx, cancel: cancel, st: st, rl: rl}, nil
}

// OpenAnswers opens the rank-ordered answer stream of an n-way query; see
// OpenPairs for the handle contract.
func (qy *Query) OpenAnswers(ctx context.Context) (*AnswerStream, error) {
	return qy.openAnswers(ctx, 0)
}

// Answers executes an n-way query as a pull-based iterator — the n-way
// analogue of Results, with the same stop-and-release contract.
func (qy *Query) Answers(ctx context.Context) iter.Seq2[Answer, error] {
	return func(yield func(Answer, error) bool) {
		s, err := qy.OpenAnswers(ctx)
		if err != nil {
			yield(Answer{}, err)
			return
		}
		defer s.Stop()
		for {
			a, ok, err := s.Next()
			if err != nil {
				yield(Answer{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(a, nil) {
				return
			}
		}
	}
}

// PairStream is the pull handle of a 2-way query: results arrive one at a
// time in descending score order (prefix-identical to the batch ranking).
// Single-goroutine, like the engines it drives.
type PairStream struct {
	ctx       context.Context
	cancel    context.CancelFunc
	st        join2.Stream
	rl        *Relabeling
	stopped   bool
	exhausted bool
	truncated bool
}

// Truncated reports whether the stream ended early because its deadline
// budget (Options.Budget) expired. The results pulled before the deadline
// are still bit-identical to the same-length prefix of the full ranking —
// the budget shortens the ranking, never corrupts it.
func (s *PairStream) Truncated() bool { return s.truncated }

// Next returns the next-best pair. ok is false once the |P|·|Q| candidate
// space is exhausted (the stream auto-stops and further calls keep
// reporting ok=false); pulling after an explicit Stop returns
// ErrStreamStopped instead. A cancelled context surfaces as
// (zero, false, ctx.Err()) and also stops the stream.
func (s *PairStream) Next() (PairResult, bool, error) {
	if s.exhausted {
		return PairResult{}, false, nil
	}
	if s.stopped {
		return PairResult{}, false, ErrStreamStopped
	}
	if err := context.Cause(s.ctx); err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			s.truncated, s.exhausted = true, true
			s.Stop()
			return PairResult{}, false, nil
		}
		s.Stop()
		return PairResult{}, false, err
	}
	r, ok, err := s.st.Next()
	if err != nil || !ok {
		if errors.Is(err, ErrBudgetExceeded) {
			s.truncated, s.exhausted = true, true
			err, ok = nil, false
		} else if err == nil {
			s.exhausted = true
		}
		s.Stop()
		return PairResult{}, ok, err
	}
	if s.rl != nil {
		r.Pair.P = s.rl.ToOld(r.Pair.P)
		r.Pair.Q = s.rl.ToOld(r.Pair.Q)
	}
	return r, true, nil
}

// NextK pulls up to k further results — the "give me the next k"
// continuation. Fewer than k are returned at exhaustion (on error, the
// results drained before it come back alongside); k must be positive.
func (s *PairStream) NextK(k int) ([]PairResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return join2.Drain(k, s.Next)
}

// Stop ends the stream and releases every pooled engine it holds. It is
// idempotent and always safe — including mid-stream, which is the whole
// point: early termination must not leak pool entries.
func (s *PairStream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.cancel != nil {
		s.cancel()
	}
	s.st.Release()
}

// AnswerStream is the pull handle of an n-way query; same contract as
// PairStream.
type AnswerStream struct {
	ctx       context.Context
	cancel    context.CancelFunc
	st        core.TupleStream
	rl        *Relabeling
	stopped   bool
	exhausted bool
	truncated bool
}

// Truncated reports whether the stream ended early on an expired deadline
// budget; see PairStream.Truncated.
func (s *AnswerStream) Truncated() bool { return s.truncated }

// Next returns the next-best answer; see PairStream.Next for the contract.
func (s *AnswerStream) Next() (Answer, bool, error) {
	if s.exhausted {
		return Answer{}, false, nil
	}
	if s.stopped {
		return Answer{}, false, ErrStreamStopped
	}
	if err := context.Cause(s.ctx); err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			s.truncated, s.exhausted = true, true
			s.Stop()
			return Answer{}, false, nil
		}
		s.Stop()
		return Answer{}, false, err
	}
	a, ok, err := s.st.Next()
	if err != nil || !ok {
		if errors.Is(err, ErrBudgetExceeded) {
			s.truncated, s.exhausted = true, true
			err, ok = nil, false
		} else if err == nil {
			s.exhausted = true
		}
		s.Stop()
		return Answer{}, ok, err
	}
	if s.rl != nil {
		for i := range a.Nodes {
			a.Nodes[i] = s.rl.ToOld(a.Nodes[i])
		}
	}
	return a, true, nil
}

// NextK pulls up to k further answers; see PairStream.NextK.
func (s *AnswerStream) NextK(k int) ([]Answer, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return join2.Drain(k, s.Next)
}

// Stop ends the stream and releases its pooled engines; idempotent.
func (s *AnswerStream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.cancel != nil {
		s.cancel()
	}
	s.st.Release()
}
