package dhtjoin

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestConcurrentOptionsJoins drives Options-level joins — with Relabel on,
// so the package relabel cache is hammered — from many goroutines against
// one shared graph, and the Service facade alongside them, so the shared
// engine pool and the concurrency-safe score memo see the same traffic.
// Run under -race in CI; every response is checked against the serial
// reference, so scheduling can corrupt neither the caches nor the results.
func TestConcurrentOptionsJoins(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{40, 40, 30}, PIn: 0.15, POut: 0.05, Seed: 17, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, q, r := sets[0], sets[1], sets[2]
	query := Chain(p, q, r)

	// Serial references: plain and relabeled (relabeling reorders the
	// per-row fp summation, so the relabeled runs get their own reference,
	// computed serially with the same Options).
	wantPairs, err := TopKPairs(g, p, q, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPairsRel, err := TopKPairs(g, p, q, 10, &Options{Relabel: RelabelDegree})
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers, err := TopK(g, query, 6, &Options{Relabel: RelabelBFS})
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(ServiceConfig{MaxConcurrency: 4})
	if err := svc.LoadGraph("g", g, p, q, r); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (w + i) % 4 {
				case 0: // one-shot, relabel cache hit path
					got, err := TopKPairs(g, p, q, 10, &Options{Relabel: RelabelDegree, Workers: 2})
					if err != nil {
						errs <- err
						return
					}
					if !pairsEqual(got, wantPairsRel) {
						errs <- fmt.Errorf("w%d i%d: relabeled TopKPairs diverged", w, i)
						return
					}
				case 1: // one-shot n-way, second relabel mode in the cache
					got, err := TopK(g, query, 6, &Options{Relabel: RelabelBFS})
					if err != nil {
						errs <- err
						return
					}
					if !answersEqual(got, wantAnswers) {
						errs <- fmt.Errorf("w%d i%d: relabeled TopK diverged", w, i)
						return
					}
				case 2: // service facade: shared pool + memo + result LRU
					got, err := svc.TopKPairs(context.Background(), "g", p, q, 10, nil)
					if err != nil {
						errs <- err
						return
					}
					if !pairsEqual(got, wantPairs) {
						errs <- fmt.Errorf("w%d i%d: service TopKPairs diverged", w, i)
						return
					}
				default: // service n-way with relabel
					got, err := svc.TopK(context.Background(), "g", query, 6, &Options{Relabel: RelabelBFS, Workers: 2})
					if err != nil {
						errs <- err
						return
					}
					if !answersEqual(got, wantAnswers) {
						errs <- fmt.Errorf("w%d i%d: service TopK diverged", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if st.ResultHits == 0 {
		t.Fatal("service saw no result-cache hits under repeated identical queries")
	}
}

func pairsEqual(a, b []PairResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func answersEqual(a, b []Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || len(a[i].Nodes) != len(b[i].Nodes) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
	}
	return true
}

// TestServiceFacadeBitIdentical pins the facade contract outside of
// concurrency: served results equal the one-shot calls for the same Options,
// including non-default parameters.
func TestServiceFacadeBitIdentical(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{30, 30}, PIn: 0.2, POut: 0.08, Seed: 5, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, q := sets[0], sets[1]
	svc := NewService(ServiceConfig{})
	if err := svc.LoadGraph("g", g, p, q); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		nil,
		{D: 5},
		{Params: DHTLambda(0.5), Epsilon: 1e-4},
		{Measure: MeasureReach, Params: PPR(0.2)},
		{Agg: Sum, M: 20},
	} {
		want, err := TopKPairs(g, p, q, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.TopKPairs(context.Background(), "g", p, q, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !pairsEqual(got, want) {
			t.Fatalf("opts %+v: facade diverged from one-shot", opts)
		}
		wantN, err := TopK(g, Chain(p, q), 5, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotN, err := svc.TopK(context.Background(), "g", Chain(p, q), 5, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !answersEqual(gotN, wantN) {
			t.Fatalf("opts %+v: facade n-way diverged from one-shot", opts)
		}
		u, v := p.Nodes()[0], q.Nodes()[0]
		wantS, err := Score(g, u, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		gotS, err := svc.Score(context.Background(), "g", u, v, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gotS != wantS {
			t.Fatalf("opts %+v: facade Score %v != %v", opts, gotS, wantS)
		}
	}
}
