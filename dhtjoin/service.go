package dhtjoin

import (
	"context"
	"fmt"
	"io"

	"repro/internal/service"
)

// Service is the library facade over the long-lived serving layer
// (internal/service): it owns a bounded registry of named graphs and, per
// (graph, params, d, relabel) configuration, shared engine pools, a
// concurrency-safe score-column memo, the cached relabeling, and an LRU of
// recent top-k results. All methods are safe for concurrent use, and every
// join result is bit-identical to the corresponding one-shot call
// (TopKPairs / TopK / Score) with the same Options.
//
// Use it when the same graphs are queried repeatedly — a server, a notebook
// session, a batch evaluator. One-shot calls remain the right tool for
// single queries.
type Service struct {
	s *service.Service
}

// ServiceConfig sizes a Service; the zero value selects the defaults (see
// internal/service.Config).
type ServiceConfig = service.Config

// ServiceStats is the monotone counter snapshot returned by Service.Stats.
type ServiceStats = service.Stats

// GraphInfo describes one loaded graph.
type GraphInfo = service.GraphInfo

// NewService returns an empty serving layer.
func NewService(cfg ServiceConfig) *Service {
	return &Service{s: service.New(cfg)}
}

// LoadGraph registers g under name together with the node sets joins may
// reference by name. Loading an existing name replaces it; loading a new
// name into a full registry fails.
func (s *Service) LoadGraph(name string, g *Graph, sets ...*NodeSet) error {
	return s.s.LoadGraph(name, g, sets)
}

// LoadGraphText reads a text-format graph (with its node sets) from r and
// registers it under name.
func (s *Service) LoadGraphText(name string, r io.Reader) error {
	_, err := s.s.LoadGraphText(name, r)
	return err
}

// DropGraph removes the named graph and its cached sessions (and, when the
// service was configured with a durable store, its on-disk state; a partial
// on-disk failure still stops the graph being served and is retryable).
func (s *Service) DropGraph(name string) bool {
	ok, _ := s.s.DropGraph(name)
	return ok
}

// Graphs lists the loaded graphs sorted by name.
func (s *Service) Graphs() []GraphInfo { return s.s.Graphs() }

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats { return s.s.Stats() }

// toQuery maps Options onto the serving layer's query form. The field sets
// are isomorphic and both resolve defaults identically, which is what keeps
// served results bit-identical to one-shot calls.
func toQuery(o *Options) service.Query {
	if o == nil {
		return service.Query{}
	}
	q := service.Query{
		Params:      o.Params,
		Epsilon:     o.Epsilon,
		D:           o.D,
		Measure:     o.Measure,
		MeasureName: o.MeasureName,
		Agg:         o.Agg,
		M:           o.M,
		Distinct:    o.Distinct,
		Workers:     o.Workers,
		BatchWidth:  o.BatchWidth,
		Relabel:     o.Relabel,
		Tenant:      o.Tenant,
		Budget:      o.Budget,
	}
	if o.LowPriority {
		q.Priority = service.PriorityBatch
	}
	return q
}

// TopKPairs serves a top-k 2-way join on the named graph, bit-identical to
// the package-level TopKPairs with the same Options. ctx cancels the work
// (including the wait for worker admission); nil means Background.
func (s *Service) TopKPairs(ctx context.Context, graphName string, p, q *NodeSet, k int, opts *Options) ([]PairResult, error) {
	if p == nil || p.Len() == 0 || q == nil || q.Len() == 0 {
		return nil, ErrEmptyNodeSet
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return s.s.Join2(ctx, graphName,
		service.SetRef{IDs: p.Nodes()}, service.SetRef{IDs: q.Nodes()}, k, toQuery(opts))
}

// OpenPairs serves a 2-way join as a rank-ordered pull stream through the
// service's shared engine pools: Next/NextK for "give me the next k", Stop
// to end early — the stream returns its engines to the session pool and
// publishes the drained prefix to the result cache, so a later TopKPairs
// for any k it covers is served without a join.
func (s *Service) OpenPairs(ctx context.Context, graphName string, p, q *NodeSet, opts *Options) (*ServicePairStream, error) {
	if p == nil || p.Len() == 0 || q == nil || q.Len() == 0 {
		return nil, ErrEmptyNodeSet
	}
	return s.s.OpenJoin2(ctx, graphName,
		service.SetRef{IDs: p.Nodes()}, service.SetRef{IDs: q.Nodes()}, toQuery(opts))
}

// ServicePairStream is the streaming handle returned by Service.OpenPairs.
type ServicePairStream = service.Join2Stream

// ServiceAnswerStream is the streaming handle returned by Service.OpenAnswers.
type ServiceAnswerStream = service.JoinNStream

// TopK serves a top-k n-way join on the named graph, bit-identical to the
// package-level TopK with the same Options. ctx as in TopKPairs.
func (s *Service) TopK(ctx context.Context, graphName string, query *QueryGraph, k int, opts *Options) ([]Answer, error) {
	sets, edges, err := splitQueryGraph(query)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: got %d", ErrInvalidK, k)
	}
	return s.s.JoinN(ctx, graphName, sets, edges, k, toQuery(opts))
}

// OpenAnswers serves an n-way join as a rank-ordered pull stream; see
// OpenPairs for the handle contract.
func (s *Service) OpenAnswers(ctx context.Context, graphName string, query *QueryGraph, opts *Options) (*ServiceAnswerStream, error) {
	sets, edges, err := splitQueryGraph(query)
	if err != nil {
		return nil, err
	}
	return s.s.OpenJoinN(ctx, graphName, sets, edges, toQuery(opts))
}

// splitQueryGraph flattens a QueryGraph into the serving layer's wire form.
func splitQueryGraph(query *QueryGraph) ([]service.SetRef, [][2]int, error) {
	if query == nil {
		return nil, nil, ErrInvalidQueryGraph
	}
	sets := make([]service.SetRef, query.NumSets())
	for i := range sets {
		sets[i] = service.SetRef{IDs: query.Set(i).Nodes()}
	}
	edges := make([][2]int, 0, len(query.Edges()))
	for _, e := range query.Edges() {
		edges = append(edges, [2]int{e.From, e.To})
	}
	return sets, edges, nil
}

// Score serves the truncated score h_d(u, v) on the named graph,
// bit-identical to the package-level Score.
func (s *Service) Score(ctx context.Context, graphName string, u, v NodeID, opts *Options) (float64, error) {
	return s.s.Score(ctx, graphName, u, v, toQuery(opts))
}

// ExplainPairs returns the plan a TopKPairs/OpenPairs call on the named
// graph would execute — the cost-based planner's decision priced with the
// serving session's calibrated cost unit — without executing anything.
// k <= 0 prices the plan for the default streaming batch.
func (s *Service) ExplainPairs(ctx context.Context, graphName string, p, q *NodeSet, k int, opts *Options) (*QueryPlan, error) {
	if p == nil || p.Len() == 0 || q == nil || q.Len() == 0 {
		return nil, ErrEmptyNodeSet
	}
	return s.s.ExplainJoin2(ctx, graphName,
		service.SetRef{IDs: p.Nodes()}, service.SetRef{IDs: q.Nodes()}, k, toQuery(opts))
}

// ExplainJoin is ExplainPairs for n-way queries.
func (s *Service) ExplainJoin(ctx context.Context, graphName string, query *QueryGraph, opts *Options) (*QueryPlan, error) {
	sets, edges, err := splitQueryGraph(query)
	if err != nil {
		return nil, err
	}
	return s.s.ExplainJoinN(ctx, graphName, sets, edges, 0, toQuery(opts))
}
