package dhtjoin

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
)

// plannerWorld builds a seeded community graph for the planner suites.
func plannerWorld(t testing.TB, seed int64) (*Graph, []*NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{16, 14, 12}, PIn: 0.25, POut: 0.08, Seed: seed, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets
}

// TestPlannerEquivalence2Way is the property suite of the planner contract:
// whatever executor the planner selects, the ranking must be bit-identical
// (same pairs, float64 ==, canonical tie order) to the forced pre-planner
// default B-IDJ-Y — across seeds, demands k (from 1 to the full candidate
// space, sweeping the selectivity range where the planner changes its pick),
// and every other forceable 2-way executor.
func TestPlannerEquivalence2Way(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 21, 77} {
		g, sets := plannerWorld(t, seed)
		p, q := sets[0], sets[1]
		space := p.Len() * q.Len()
		for _, k := range []int{1, 7, 50, space} {
			base := NewPairQuery(g, p, q)
			want, err := base.WithHints(Hints{Algorithm: "B-IDJ-Y"}).TopKPairs(ctx, k)
			if err != nil {
				t.Fatal(err)
			}
			planned, err := base.TopKPairs(ctx, k)
			if err != nil {
				t.Fatal(err)
			}
			comparePairs(t, "planner", seed, k, planned, want)
			for _, name := range Algorithms2Way() {
				forced, err := base.WithHints(Hints{Algorithm: name}).TopKPairs(ctx, k)
				if err != nil {
					t.Fatalf("forcing %s: %v", name, err)
				}
				comparePairs(t, name, seed, k, forced, want)
			}
		}
	}
}

func comparePairs(t *testing.T, label string, seed int64, k int, got, want []PairResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s seed=%d k=%d: %d results, want %d", label, seed, k, len(got), len(want))
	}
	for i := range want {
		if got[i].Pair != want[i].Pair || got[i].Score != want[i].Score {
			t.Fatalf("%s seed=%d k=%d rank %d: got %+v, want %+v", label, seed, k, i, got[i], want[i])
		}
	}
}

// TestPlannerEquivalenceNWay: planner-selected n-way execution against
// forced PJ-i, across seeds, query shapes, and k; plus every forceable
// rank-join operator (AP, PJ — which drive the identical PBRJ emission
// order). NL enumerates with its own tie order, so its comparison tolerates
// reordering among exactly tied scores.
func TestPlannerEquivalenceNWay(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 21} {
		g, sets := plannerWorld(t, seed)
		shapes := map[string]*QueryGraph{
			"chain":    Chain(sets[0], sets[1], sets[2]),
			"triangle": Triangle(sets[0], sets[1], sets[2]),
			"star":     Star(sets[0], sets[1], sets[2]),
		}
		for shape, qg := range shapes {
			for _, k := range []int{1, 5, 25} {
				base := NewJoinQuery(g, qg)
				want, err := base.WithHints(Hints{Algorithm: "PJ-i"}).TopK(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				planned, err := base.TopK(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				compareAnswers(t, "planner/"+shape, k, planned, want, false)
				for _, name := range AlgorithmsNWay() {
					forced, err := base.WithHints(Hints{Algorithm: name}).TopK(ctx, k)
					if err != nil {
						t.Fatalf("forcing %s: %v", name, err)
					}
					compareAnswers(t, name+"/"+shape, k, forced, want, name == "NL")
				}
			}
		}
	}
}

func compareAnswers(t *testing.T, label string, k int, got, want []Answer, tieTolerant bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s k=%d: %d answers, want %d", label, k, len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Fatalf("%s k=%d rank %d: score %v, want %v", label, k, i, got[i].Score, want[i].Score)
		}
	}
	if tieTolerant {
		// Equal-score runs may reorder; compare the multiset per score run.
		for i := 0; i < len(want); {
			j := i
			for j < len(want) && want[j].Score == want[i].Score {
				j++
			}
			if j == len(want) {
				// The run may be cut by k; its membership can differ. Skip.
				break
			}
			wantSet := map[string]int{}
			for _, a := range want[i:j] {
				wantSet[tupleKey(a)]++
			}
			for _, a := range got[i:j] {
				wantSet[tupleKey(a)]--
			}
			for key, n := range wantSet {
				if n != 0 {
					t.Fatalf("%s k=%d: tie run [%d,%d) tuple multiset mismatch at %s", label, k, i, j, key)
				}
			}
			i = j
		}
		return
	}
	for i := range want {
		if len(got[i].Nodes) != len(want[i].Nodes) {
			t.Fatalf("%s k=%d rank %d: arity %d, want %d", label, k, i, len(got[i].Nodes), len(want[i].Nodes))
		}
		for pos := range want[i].Nodes {
			if got[i].Nodes[pos] != want[i].Nodes[pos] {
				t.Fatalf("%s k=%d rank %d: nodes %v, want %v", label, k, i, got[i].Nodes, want[i].Nodes)
			}
		}
	}
}

func tupleKey(a Answer) string {
	key := ""
	for _, n := range a.Nodes {
		key += string(rune(n)) + ","
	}
	return key
}

// TestPlannerStreamEquivalence: the streaming entry points run the planner
// pick too; their prefixes must match the forced-default batch exactly.
func TestPlannerStreamEquivalence(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 21)
	p, q := sets[0], sets[1]
	want, err := NewPairQuery(g, p, q).WithHints(Hints{Algorithm: "B-IDJ-Y"}).TopKPairs(ctx, 30)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []PairResult
	for r, err := range NewPairQuery(g, p, q).Results(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
		if len(streamed) == 30 {
			break
		}
	}
	comparePairs(t, "stream", 21, 30, streamed, want)
}

// TestHintRejection pins the typed error contract of invalid hints.
func TestHintRejection(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 3)
	p, q := sets[0], sets[1]
	pair := NewPairQuery(g, p, q)
	nway := NewJoinQuery(g, Chain(sets[0], sets[1], sets[2]))

	cases := []struct {
		name  string
		query *Query
		hints Hints
		want  error
	}{
		{"unknown algorithm", pair, Hints{Algorithm: "B-IDJ-Z"}, ErrUnknownAlgorithm},
		{"unknown n-way algorithm", nway, Hints{Algorithm: "PJ-ii"}, ErrUnknownAlgorithm},
		{"n-way executor on pair query", pair, Hints{Algorithm: "PJ-i"}, ErrHintConflict},
		{"2-way executor on n-way query", nway, Hints{Algorithm: "B-BJ"}, ErrHintConflict},
		{"invalid relabel mode", pair, Hints{Relabel: RelabelMode(99)}, ErrHintConflict},
	}
	for _, tc := range cases {
		qy := tc.query.WithHints(tc.hints)
		if err := qy.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := qy.Explain(ctx); !errors.Is(err, tc.want) {
			t.Errorf("%s: Explain = %v, want %v", tc.name, err, tc.want)
		}
		if _, err := qy.TopKPairs(ctx, 5); tc.query == pair && !errors.Is(err, tc.want) {
			t.Errorf("%s: TopKPairs = %v, want %v", tc.name, err, tc.want)
		}
		// The iterator yields the validation error as its only element.
		if tc.query == nway {
			for _, err := range qy.Answers(ctx) {
				if !errors.Is(err, tc.want) {
					t.Errorf("%s: Answers yielded %v, want %v", tc.name, err, tc.want)
				}
				break
			}
		}
	}
}

// TestExplain pins the plan shape: every supported query form gets a plan
// with every registered candidate priced, estimates ascending, and the
// forced flag faithfully reported.
func TestExplain(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 3)
	p, q := sets[0], sets[1]

	pl, err := NewPairQuery(g, p, q).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Estimates) != len(Algorithms2Way()) {
		t.Fatalf("2-way plan has %d estimates, want %d", len(pl.Estimates), len(Algorithms2Way()))
	}
	if pl.Forced {
		t.Fatal("unforced plan reports Forced")
	}
	if pl.Algorithm != pl.Estimates[0].Algorithm {
		t.Fatalf("chosen %q is not the cheapest estimate %q", pl.Algorithm, pl.Estimates[0].Algorithm)
	}
	for i := 1; i < len(pl.Estimates); i++ {
		if pl.Estimates[i].Cost < pl.Estimates[i-1].Cost {
			t.Fatalf("estimates not ascending at %d: %v", i, pl.Estimates)
		}
	}
	if pl.Workload.Stats.Nodes != g.NumNodes() {
		t.Fatalf("plan stats nodes = %d, want %d", pl.Workload.Stats.Nodes, g.NumNodes())
	}

	for _, shape := range []*QueryGraph{
		Chain(sets[0], sets[1]),
		Chain(sets[0], sets[1], sets[2]),
		Triangle(sets[0], sets[1], sets[2]),
		Star(sets[0], sets[1], sets[2]),
		Clique(sets[0], sets[1], sets[2]),
	} {
		npl, err := NewJoinQuery(g, shape).Explain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(npl.Estimates) != len(AlgorithmsNWay()) {
			t.Fatalf("n-way plan has %d estimates, want %d", len(npl.Estimates), len(AlgorithmsNWay()))
		}
	}

	forced, err := NewPairQuery(g, p, q).WithHints(Hints{Algorithm: "F-BJ"}).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Forced || forced.Algorithm != "F-BJ" {
		t.Fatalf("forced plan = %+v, want F-BJ forced", forced)
	}
	if len(forced.Estimates) != len(Algorithms2Way()) {
		t.Fatal("forced plan lost the cost table")
	}
}

// TestPlannerPicksBBJForFullRanking pins the cost model's headline
// non-default decision: demanding the entire candidate space flips the
// 2-way choice from B-IDJ-Y (nothing left to prune) to B-BJ.
func TestPlannerPicksBBJForFullRanking(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 3)
	p, q := sets[0], sets[1]
	space := p.Len() * q.Len()

	low, err := NewPairQuery(g, p, q).WithOptions(&Options{M: 1}).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if low.Algorithm != "B-IDJ-Y" {
		t.Fatalf("low-selectivity pick = %s, want B-IDJ-Y", low.Algorithm)
	}
	full, err := NewPairQuery(g, p, q).WithOptions(&Options{M: space}).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if full.Algorithm != "B-BJ" {
		t.Fatalf("full-ranking pick = %s, want B-BJ", full.Algorithm)
	}

	// ExplainTopK prices the batch wrapper's exact demand (TopKPairs
	// re-plans for its k) without touching the per-edge budget M.
	viaK, err := NewPairQuery(g, p, q).ExplainTopK(ctx, space)
	if err != nil {
		t.Fatal(err)
	}
	if viaK.Algorithm != "B-BJ" {
		t.Fatalf("ExplainTopK(space) pick = %s, want B-BJ", viaK.Algorithm)
	}
	smallK, err := NewPairQuery(g, p, q).ExplainTopK(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if smallK.Algorithm != "B-IDJ-Y" {
		t.Fatalf("ExplainTopK(1) pick = %s, want B-IDJ-Y", smallK.Algorithm)
	}
	if _, err := NewPairQuery(g, p, q).ExplainTopK(ctx, 0); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("ExplainTopK(0) = %v, want ErrInvalidK", err)
	}
}

// TestHintsOverrideOptions: hint-level Workers/BatchWidth/Relabel knobs win
// over Options and still produce the identical ranking.
func TestHintsOverrideOptions(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 21)
	p, q := sets[0], sets[1]
	want, err := NewPairQuery(g, p, q).TopKPairs(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPairQuery(g, p, q).
		WithOptions(&Options{Workers: 1, BatchWidth: 1}).
		WithHints(Hints{Workers: 3, BatchWidth: 4, Relabel: RelabelDegree}).
		TopKPairs(ctx, 20)
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "hints-override", 21, 20, got, want)
}

// TestAccuracyOption covers the Options.Accuracy knob end to end: an
// unknown spelling is rejected with ErrInvalidOptions, the default and
// "exact" plans never choose a certified executor, "fast" accuracy makes
// the certified executors eligible (every estimate row carries its
// eligibility), and whatever the fast plan picks, the ranking stays
// bit-identical to the exact plan's.
func TestAccuracyOption(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 7)
	p, q := sets[0], sets[1]

	if _, err := NewPairQuery(g, p, q).WithOptions(&Options{Accuracy: "wrong"}).Explain(ctx); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("bad accuracy error = %v, want ErrInvalidOptions", err)
	}

	for _, spelling := range []string{"", "exact"} {
		pl, err := NewPairQuery(g, p, q).WithOptions(&Options{Accuracy: spelling}).Explain(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range pl.Estimates {
			if e.Certified && !e.Excluded {
				t.Fatalf("accuracy %q: certified %s eligible", spelling, e.Algorithm)
			}
			if e.Algorithm == pl.Algorithm && e.Certified {
				t.Fatalf("accuracy %q picked certified %s", spelling, pl.Algorithm)
			}
		}
	}

	fast, err := NewPairQuery(g, p, q).WithOptions(&Options{Accuracy: "fast"}).Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range fast.Estimates {
		if e.Excluded {
			t.Fatalf("fast accuracy still excludes %s", e.Algorithm)
		}
	}

	want, err := NewPairQuery(g, p, q).TopKPairs(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewPairQuery(g, p, q).WithOptions(&Options{Accuracy: "fast"}).TopKPairs(ctx, 25)
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "fast-accuracy", 7, 25, got, want)
}
