package dhtjoin_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/dhtjoin"
)

// world builds a small two-community graph.
func world(t testing.TB) (*dhtjoin.Graph, *dhtjoin.NodeSet, *dhtjoin.NodeSet, *dhtjoin.NodeSet) {
	t.Helper()
	const n = 30
	b := dhtjoin.NewBuilder(n, false)
	// Ring plus chords: connected, irregular.
	for i := 0; i < n; i++ {
		b.AddEdge(dhtjoin.NodeID(i), dhtjoin.NodeID((i+1)%n), 1)
		if i%3 == 0 {
			b.AddEdge(dhtjoin.NodeID(i), dhtjoin.NodeID((i+7)%n), 2)
		}
	}
	g := b.Build()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1, 2, 3, 4})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{10, 11, 12, 13})
	r := dhtjoin.NewNodeSet("R", []dhtjoin.NodeID{20, 21, 22})
	return g, p, q, r
}

func TestTopKPairsDefaults(t *testing.T) {
	g, p, q, _ := world(t)
	pairs, err := dhtjoin.TopKPairs(g, p, q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score+1e-12 {
			t.Fatal("pairs not descending")
		}
	}
	// Scores must match direct evaluation.
	s, err := dhtjoin.Score(g, pairs[0].Pair.P, pairs[0].Pair.Q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-pairs[0].Score) > 1e-9 {
		t.Fatalf("Score = %v, join said %v", s, pairs[0].Score)
	}
}

func TestScoresFromMatchesScore(t *testing.T) {
	g, p, _, _ := world(t)
	out, err := dhtjoin.ScoresFrom(g, 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != g.NumNodes() {
		t.Fatalf("len = %d", len(out))
	}
	for _, u := range p.Nodes() {
		s, err := dhtjoin.Score(g, u, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-out[u]) > 1e-9 {
			t.Fatalf("mismatch at %d: %v vs %v", u, s, out[u])
		}
	}
}

func TestTopKNWay(t *testing.T) {
	g, p, q, r := world(t)
	ans, err := dhtjoin.TopK(g, dhtjoin.Chain(p, q, r), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 {
		t.Fatalf("got %d answers", len(ans))
	}
	for _, a := range ans {
		if len(a.Nodes) != 3 {
			t.Fatalf("answer arity %d", len(a.Nodes))
		}
		if !p.Contains(a.Nodes[0]) || !q.Contains(a.Nodes[1]) || !r.Contains(a.Nodes[2]) {
			t.Fatalf("answer %v violates set membership", a.Nodes)
		}
	}
}

func TestTopKWithOptions(t *testing.T) {
	g, p, q, r := world(t)
	opts := &dhtjoin.Options{
		Params:  dhtjoin.DHTE(),
		Epsilon: 1e-4,
		Agg:     dhtjoin.Sum,
		M:       10,
	}
	ans, err := dhtjoin.TopK(g, dhtjoin.Triangle(p, q, r), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Fatalf("got %d answers", len(ans))
	}
}

func TestOptionsValidation(t *testing.T) {
	g, p, q, _ := world(t)
	if _, err := dhtjoin.TopKPairs(g, p, q, 3, &dhtjoin.Options{Params: dhtjoin.Params{Alpha: 1, Beta: 0, Lambda: 7}}); err == nil {
		t.Fatal("bad lambda accepted")
	}
	if _, err := dhtjoin.TopKPairs(g, p, q, 3, &dhtjoin.Options{D: -2}); err == nil {
		t.Fatal("negative d accepted")
	}
	if _, err := dhtjoin.TopK(g, dhtjoin.Chain(p, q), 3, &dhtjoin.Options{M: -1}); err == nil {
		t.Fatal("negative m accepted")
	}
}

func TestPPRThroughFacade(t *testing.T) {
	g, p, q, r := world(t)
	opts := &dhtjoin.Options{Params: dhtjoin.PPR(0.5), Measure: dhtjoin.MeasureReach}
	pairs, err := dhtjoin.TopKPairs(g, p, q, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if pr.Score < 0 || pr.Score >= 1 {
			t.Fatalf("PPR score out of range: %v", pr)
		}
		s, err := dhtjoin.Score(g, pr.Pair.P, pr.Pair.Q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-pr.Score) > 1e-9 {
			t.Fatalf("facade Score %v vs join %v", s, pr.Score)
		}
	}
	ans, err := dhtjoin.TopK(g, dhtjoin.Chain(p, q, r), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Fatalf("got %d PPR answers", len(ans))
	}
}

func TestSimRankThroughFacade(t *testing.T) {
	g, p, q, r := world(t)
	m, err := dhtjoin.ComputeSimRank(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	query := dhtjoin.Chain(p, q, r)
	lists := make([][]dhtjoin.PairResult, 2)
	edges := query.Edges()
	for i := range edges {
		lists[i], err = m.EdgeList(query.Set(edges[i].From).Nodes(), query.Set(edges[i].To).Nodes())
		if err != nil {
			t.Fatal(err)
		}
	}
	ans, err := dhtjoin.JoinLists(query, lists, dhtjoin.Min, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 {
		t.Fatalf("got %d SimRank answers", len(ans))
	}
	for i := 1; i < len(ans); i++ {
		if ans[i].Score > ans[i-1].Score+1e-12 {
			t.Fatal("SimRank answers not descending")
		}
	}
}

func TestSteps(t *testing.T) {
	if d := dhtjoin.Steps(dhtjoin.DHTLambda(0.2), 1e-6); d != 8 {
		t.Fatalf("Steps = %d, want 8 (paper §VII-A)", d)
	}
}

func TestTextRoundTripThroughFacade(t *testing.T) {
	g, p, q, _ := world(t)
	var buf bytes.Buffer
	if err := dhtjoin.WriteText(&buf, g, p, q); err != nil {
		t.Fatal(err)
	}
	g2, sets, err := dhtjoin.LoadText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || len(sets) != 2 {
		t.Fatal("round trip mismatch")
	}
	// Joins over the reloaded graph agree.
	a, err := dhtjoin.TopKPairs(g, p, q, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dhtjoin.TopKPairs(g2, sets[0], sets[1], 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i].Score-b[i].Score) > 1e-12 {
			t.Fatalf("rank %d: %v vs %v", i, a[i].Score, b[i].Score)
		}
	}
}

// TestWorkersOptionMatchesSerial: the Workers option must be invisible in
// the results of both query families.
func TestWorkersOptionMatchesSerial(t *testing.T) {
	g, p, q, r := world(t)
	serialPairs, err := dhtjoin.TopKPairs(g, p, q, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	parPairs, err := dhtjoin.TopKPairs(g, p, q, 6, &dhtjoin.Options{Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(parPairs) != len(serialPairs) {
		t.Fatalf("got %d pairs, want %d", len(parPairs), len(serialPairs))
	}
	for i := range serialPairs {
		if parPairs[i] != serialPairs[i] {
			t.Fatalf("rank %d: %v vs %v", i, parPairs[i], serialPairs[i])
		}
	}

	query := dhtjoin.Chain(p, q, r)
	serial, err := dhtjoin.TopK(g, query, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := dhtjoin.TopK(g, query, 4, &dhtjoin.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("got %d answers, want %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i].Score != serial[i].Score {
			t.Fatalf("rank %d score: %v vs %v", i, par[i].Score, serial[i].Score)
		}
	}
}
