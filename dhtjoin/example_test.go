package dhtjoin_test

import (
	"context"
	"fmt"
	"log"

	"repro/dhtjoin"
)

// square returns the 4-cycle 0-1-2-3 with one chord.
func square() *dhtjoin.Graph {
	b := dhtjoin.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 1)
	b.AddEdge(0, 2, 1) // chord
	return b.Build()
}

func ExampleScore() {
	g := square()
	s, err := dhtjoin.Score(g, 1, 3, nil) // defaults: DHTλ, λ=0.2, d=8
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("h(1,3) = %.4f\n", s)
	// Output:
	// h(1,3) = -1.2319
}

func ExampleTopKPairs() {
	g := square()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{2, 3})
	pairs, err := dhtjoin.TopKPairs(g, p, q, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range pairs {
		fmt.Printf("%d: (%d,%d) %.4f\n", i+1, r.Pair.P, r.Pair.Q, r.Score)
	}
	// Output:
	// 1: (1,2) -1.1149
	// 2: (0,2) -1.1486
}

func ExampleTopK() {
	g := square()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{1, 2})
	r := dhtjoin.NewNodeSet("R", []dhtjoin.NodeID{3})
	answers, err := dhtjoin.TopK(g, dhtjoin.Chain(p, q, r), 2, &dhtjoin.Options{Agg: dhtjoin.Sum})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range answers {
		fmt.Printf("%d: %v %.4f\n", i+1, a.Nodes, a.Score)
	}
	// Output:
	// 1: [0 2 3] -2.3081
	// 2: [0 1 3] -2.3913
}

func ExampleSteps() {
	// The paper's §VII-A default: DHTλ with λ=0.2 and ε=1e-6 needs d=8.
	fmt.Println(dhtjoin.Steps(dhtjoin.DHTLambda(0.2), 1e-6))
	// Output:
	// 8
}

func ExampleQuery_Results() {
	g := square()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{2, 3})
	// Results is an iter.Seq2: range over it and break whenever enough —
	// the join stops deepening and releases its engines immediately.
	query := dhtjoin.NewPairQuery(g, p, q)
	n := 0
	for r, err := range query.Results(context.Background()) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d,%d) %.4f\n", r.Pair.P, r.Pair.Q, r.Score)
		if n++; n == 2 {
			break
		}
	}
	// Output:
	// (1,2) -1.1149
	// (0,2) -1.1486
}

func ExampleQuery_Explain() {
	g := square()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{2, 3})
	// Explain is a dry run: the cost-based planner prices every registered
	// executor against the graph's cached stats and reports its pick —
	// here B-BJ, because the default budget covers the whole 2×2 candidate
	// space, leaving iterative deepening nothing to prune. The streaming
	// entry points (Results, OpenPairs, …) run exactly this plan; the batch
	// TopKPairs(ctx, k) re-plans for its exact k — ExplainTopK prices that
	// — and WithHints forces a row of the table, bit-identically.
	pl, err := dhtjoin.NewPairQuery(g, p, q).Explain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen: %s (forced=%v, %d candidates priced)\n",
		pl.Algorithm, pl.Forced, len(pl.Estimates))
	fmt.Printf("cheapest: %s, most expensive: %s\n",
		pl.Estimates[0].Algorithm, pl.Estimates[len(pl.Estimates)-1].Algorithm)
	// Output:
	// chosen: B-BJ (forced=false, 7 candidates priced)
	// cheapest: B-BJ, most expensive: F-IDJ
}

func ExamplePairStream_NextK() {
	g := square()
	p := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1})
	q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{2, 3})
	// OpenPairs hands out an explicit handle: NextK pages through the
	// ranking ("give me the next k"), Stop releases the stream.
	s, err := dhtjoin.NewPairQuery(g, p, q).OpenPairs(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer s.Stop()
	for page := 1; page <= 2; page++ {
		results, err := s.NextK(2)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("page %d: (%d,%d) %.4f\n", page, r.Pair.P, r.Pair.Q, r.Score)
		}
	}
	// Output:
	// page 1: (1,2) -1.1149
	// page 1: (0,2) -1.1486
	// page 2: (0,3) -1.1594
	// page 2: (1,3) -1.2319
}
