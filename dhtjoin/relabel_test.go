package dhtjoin

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// relabelTestGraph builds a labeled community graph with two join sets.
func relabelTestGraph(t *testing.T) (*Graph, *NodeSet, *NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{20, 20, 15}, PIn: 0.2, POut: 0.06, Seed: 21, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets[0], sets[1]
}

// TestOptionsRelabelRoundTripsPairs: TopKPairs with every relabel mode must
// return ids in the caller's space with the original ranking (scores to
// fp-reordering tolerance).
func TestOptionsRelabelRoundTripsPairs(t *testing.T) {
	g, p, q := relabelTestGraph(t)
	want, err := TopKPairs(g, p, q, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RelabelMode{RelabelOff, RelabelDegree, RelabelBFS} {
		for _, width := range []int{0, 1, 5} {
			got, err := TopKPairs(g, p, q, 12, &Options{Relabel: mode, BatchWidth: width})
			if err != nil {
				t.Fatalf("mode %v width %d: %v", mode, width, err)
			}
			if len(got) != len(want) {
				t.Fatalf("mode %v width %d: %d results, want %d", mode, width, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("mode %v width %d rank %d: score %v, want %v",
						mode, width, i, got[i].Score, want[i].Score)
				}
				if !p.Contains(got[i].Pair.P) || !q.Contains(got[i].Pair.Q) {
					t.Fatalf("mode %v width %d rank %d: pair %v not in the original id space",
						mode, width, i, got[i].Pair)
				}
			}
		}
	}
}

// TestOptionsRelabelRoundTripsNWay: the n-way TopK must map every answer
// tuple back to the caller's id space under relabeling.
func TestOptionsRelabelRoundTripsNWay(t *testing.T) {
	g, p, q := relabelTestGraph(t)
	query := Chain(p, q)
	want, err := TopK(g, query, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RelabelMode{RelabelDegree, RelabelBFS} {
		got, err := TopK(g, query, 8, &Options{Relabel: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v: %d answers, want %d", mode, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("mode %v rank %d: score %v, want %v", mode, i, got[i].Score, want[i].Score)
			}
			if !p.Contains(got[i].Nodes[0]) || !q.Contains(got[i].Nodes[1]) {
				t.Fatalf("mode %v rank %d: answer %v not in the original id space", mode, i, got[i].Nodes)
			}
		}
	}
}

// TestRelabelCacheInsertRaceRefreshesRecency is the regression test for the
// race-recheck eviction bug: when insert finds the key already published
// (another goroutine won the rebuild race), it must refresh the key's LRU
// recency exactly as a lookup hit would. Before the fix the raced key kept
// its stale position, so a concurrently-hot graph could be evicted as
// "oldest" by the next few inserts.
func TestRelabelCacheInsertRaceRefreshesRecency(t *testing.T) {
	c := newRelabelLRU(3)
	mk := func(seed int64) relabelKey {
		g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
			Sizes: []int{4, 4}, PIn: 0.5, POut: 0.5, Seed: seed, MinOutLink: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return relabelKey{g, RelabelDegree}
	}
	hot, cold1, cold2 := mk(1), mk(2), mk(3)
	rlHot := &relabeled{hot.g, nil}
	if got := c.insert(hot, rlHot); got != rlHot {
		t.Fatal("first insert did not publish its entry")
	}
	c.insert(cold1, &relabeled{cold1.g, nil})
	c.insert(cold2, &relabeled{cold2.g, nil})
	// Simulate the race-lose path: a second goroutine rebuilt hot's graph and
	// calls insert while the entry is already published. It must be handed
	// the published entry and hot must become most recently used.
	if got := c.insert(hot, &relabeled{hot.g, nil}); got != rlHot {
		t.Fatal("raced insert did not share the published entry")
	}
	// Two fresh inserts now evict the two cold keys; hot must survive.
	c.insert(mk(4), &relabeled{nil, nil})
	c.insert(mk(5), &relabeled{nil, nil})
	if _, ok := c.lookup(hot); !ok {
		t.Fatal("hot key was evicted: raced insert did not refresh LRU recency")
	}
	if _, ok := c.lookup(cold1); ok {
		t.Fatal("cold key survived past capacity")
	}
}

// TestRelabelCacheReuses: two joins on the same graph and mode must reuse
// one relabeled graph (the cache key is the graph pointer).
func TestRelabelCacheReuses(t *testing.T) {
	g, _, _ := relabelTestGraph(t)
	rg1, r1 := relabeledFor(g, RelabelDegree)
	rg2, r2 := relabeledFor(g, RelabelDegree)
	if rg1 != rg2 || r1 != r2 {
		t.Fatal("relabel cache rebuilt the graph for the same (graph, mode)")
	}
	rg3, _ := relabeledFor(g, RelabelBFS)
	if rg3 == rg1 {
		t.Fatal("distinct modes shared one cache entry")
	}
	if og, or := relabeledFor(g, RelabelOff); og != g || or != nil {
		t.Fatal("RelabelOff must be the identity")
	}
}
