package dhtjoin

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// relabelTestGraph builds a labeled community graph with two join sets.
func relabelTestGraph(t *testing.T) (*Graph, *NodeSet, *NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{20, 20, 15}, PIn: 0.2, POut: 0.06, Seed: 21, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets[0], sets[1]
}

// TestOptionsRelabelRoundTripsPairs: TopKPairs with every relabel mode must
// return ids in the caller's space with the original ranking (scores to
// fp-reordering tolerance).
func TestOptionsRelabelRoundTripsPairs(t *testing.T) {
	g, p, q := relabelTestGraph(t)
	want, err := TopKPairs(g, p, q, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RelabelMode{RelabelOff, RelabelDegree, RelabelBFS} {
		for _, width := range []int{0, 1, 5} {
			got, err := TopKPairs(g, p, q, 12, &Options{Relabel: mode, BatchWidth: width})
			if err != nil {
				t.Fatalf("mode %v width %d: %v", mode, width, err)
			}
			if len(got) != len(want) {
				t.Fatalf("mode %v width %d: %d results, want %d", mode, width, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("mode %v width %d rank %d: score %v, want %v",
						mode, width, i, got[i].Score, want[i].Score)
				}
				if !p.Contains(got[i].Pair.P) || !q.Contains(got[i].Pair.Q) {
					t.Fatalf("mode %v width %d rank %d: pair %v not in the original id space",
						mode, width, i, got[i].Pair)
				}
			}
		}
	}
}

// TestOptionsRelabelRoundTripsNWay: the n-way TopK must map every answer
// tuple back to the caller's id space under relabeling.
func TestOptionsRelabelRoundTripsNWay(t *testing.T) {
	g, p, q := relabelTestGraph(t)
	query := Chain(p, q)
	want, err := TopK(g, query, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RelabelMode{RelabelDegree, RelabelBFS} {
		got, err := TopK(g, query, 8, &Options{Relabel: mode})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(got) != len(want) {
			t.Fatalf("mode %v: %d answers, want %d", mode, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("mode %v rank %d: score %v, want %v", mode, i, got[i].Score, want[i].Score)
			}
			if !p.Contains(got[i].Nodes[0]) || !q.Contains(got[i].Nodes[1]) {
				t.Fatalf("mode %v rank %d: answer %v not in the original id space", mode, i, got[i].Nodes)
			}
		}
	}
}

// TestRelabelCacheReuses: two joins on the same graph and mode must reuse
// one relabeled graph (the cache key is the graph pointer).
func TestRelabelCacheReuses(t *testing.T) {
	g, _, _ := relabelTestGraph(t)
	rg1, r1 := relabeledFor(g, RelabelDegree)
	rg2, r2 := relabeledFor(g, RelabelDegree)
	if rg1 != rg2 || r1 != r2 {
		t.Fatal("relabel cache rebuilt the graph for the same (graph, mode)")
	}
	rg3, _ := relabeledFor(g, RelabelBFS)
	if rg3 == rg1 {
		t.Fatal("distinct modes shared one cache entry")
	}
	if og, or := relabeledFor(g, RelabelOff); og != g || or != nil {
		t.Fatal("RelabelOff must be the identity")
	}
}
