package dhtjoin

import (
	"errors"

	"repro/internal/measure"
	"repro/internal/service"
)

// Typed validation errors. The facade checks inputs up front and wraps these
// sentinels (with fmt.Errorf("%w: ...")), so callers can branch with
// errors.Is instead of matching message strings — and njoind can map them to
// HTTP 400 responses with a consistent JSON error envelope.
var (
	// ErrNilGraph reports a nil *Graph.
	ErrNilGraph = errors.New("dhtjoin: nil graph")

	// ErrEmptyNodeSet reports a nil or empty node set in a pair query.
	ErrEmptyNodeSet = errors.New("dhtjoin: node set is nil or empty")

	// ErrInvalidK reports a non-positive k.
	ErrInvalidK = errors.New("dhtjoin: k must be positive")

	// ErrInvalidQueryGraph reports an n-way query graph that fails
	// validation: fewer than two sets, an empty set, an edge whose endpoint
	// indexes no set (mismatched arity), duplicate or self-loop edges, or a
	// disconnected edge structure.
	ErrInvalidQueryGraph = errors.New("dhtjoin: invalid query graph")

	// ErrInvalidOptions reports Options that do not resolve: bad DHT
	// coefficients, a non-positive depth, or a negative per-edge budget.
	ErrInvalidOptions = errors.New("dhtjoin: invalid options")

	// ErrQueryForm reports a Query holding neither — or both — of the two
	// query forms (a (P, Q) pair of node sets, or an n-way query graph).
	ErrQueryForm = errors.New("dhtjoin: query needs exactly one of pair sets or a query graph")

	// ErrStreamStopped reports a pull from a stream after Stop.
	ErrStreamStopped = errors.New("dhtjoin: stream already stopped")

	// ErrUnknownAlgorithm reports a Hints.Algorithm naming no registered
	// executor (the valid names are Algorithms2Way / AlgorithmsNWay).
	ErrUnknownAlgorithm = errors.New("dhtjoin: unknown algorithm hint")

	// ErrHintConflict reports hints that contradict the query: a 2-way
	// algorithm forced onto an n-way query (or vice versa), an algorithm
	// dedicated to a different measure, or an invalid relabel mode.
	ErrHintConflict = errors.New("dhtjoin: hint conflicts with the query")
)

// ErrUnknownMeasure reports an Options.MeasureName (or Query.WithMeasure
// argument) naming no registered proximity measure; Measures lists the
// valid names. It is the registry's own sentinel, re-exported so callers
// can branch with errors.Is without importing internal packages — njoind
// maps it to HTTP 400.
var ErrUnknownMeasure = measure.ErrUnknownMeasure

// Serving-layer sentinels, re-exported so callers of the Service facade can
// branch with errors.Is without importing internal packages. They are the
// same error values the serving layer returns, so matching works across
// layers.
var (
	// ErrQuotaExceeded reports a Service call rejected at admission because
	// the tenant's waiting queue is full (HTTP 429 on the wire).
	ErrQuotaExceeded = service.ErrQuotaExceeded

	// ErrBudgetExceeded reports a join stopped by its deadline budget
	// (Options.Budget, or the serving layer's default). Batch calls
	// (TopKPairs / TopK) return the prefix produced before the deadline
	// alongside this error — correct but shorter than k; streams instead
	// end cleanly with Truncated() reporting true.
	ErrBudgetExceeded = service.ErrBudgetExceeded

	// ErrDraining reports a Service that has begun graceful shutdown and no
	// longer admits new queries (HTTP 503 on the wire).
	ErrDraining = service.ErrDraining
)
