package dhtjoin

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/join2"
)

// Relabeling is the old↔new node-id bijection of a locality ordering; see
// Relabel.
type Relabeling = graph.Relabeling

// RelabelMode selects the locality-aware node ordering applied to the graph
// before a join. The walk kernels scan the CSR row arrays and O(|V|) mass
// vectors constantly; reordering nodes so hot rows cluster (degree) or
// neighborhoods stay in nearby blocks (BFS) makes those scans
// cache-friendlier without changing any score beyond floating-point
// summation order within a row.
type RelabelMode int

const (
	// RelabelOff runs joins on the graph as built (the default).
	RelabelOff RelabelMode = iota
	// RelabelDegree orders nodes by descending total degree.
	RelabelDegree
	// RelabelBFS orders nodes in breadth-first visit order from high-degree
	// roots.
	RelabelBFS
)

// String names the mode.
func (m RelabelMode) String() string {
	switch m {
	case RelabelDegree:
		return "degree"
	case RelabelBFS:
		return "bfs"
	default:
		return "off"
	}
}

// Relabel returns the graph reordered under the given mode together with
// the id map: feed the relabeled graph and Relabeling.MapToNew'd node sets
// to the joins, and Relabeling.ToOld the result ids. Callers that keep a
// graph around should relabel once and reuse the pair; the Options.Relabel
// knob does exactly that internally through a per-graph cache.
func Relabel(g *Graph, mode RelabelMode) (*Graph, *Relabeling) {
	switch mode {
	case RelabelDegree:
		return graph.RelabelDegree(g)
	case RelabelBFS:
		return graph.RelabelBFS(g)
	default:
		return g, nil
	}
}

// relabelKey identifies one cached relabeled graph.
type relabelKey struct {
	g    *Graph
	mode RelabelMode
}

// relabeled pairs a reordered graph with its id map.
type relabeled struct {
	g *Graph
	r *Relabeling
}

// relabelCacheCap bounds the relabeled-graph cache. The cache holds strong
// references to its key graphs, so an unbounded cache would pin every graph
// a process ever relabeled; a small LRU keeps the steady-state win (one
// rebuild per long-lived graph) while transient graphs age out and both
// copies become collectable.
const relabelCacheCap = 4

// relabelCache memoizes Relabel per (graph, mode), so repeated Options-level
// joins on the same graph pay the O(|E| log |E|) rebuild once. Graphs are
// immutable, which is what makes the pointer a sound key.
var relabelCache = struct {
	sync.Mutex
	entries map[relabelKey]*relabeled
	order   []relabelKey // most recently used last
}{entries: make(map[relabelKey]*relabeled, relabelCacheCap)}

// relabeledFor returns the cached reordering of g under mode.
func relabeledFor(g *Graph, mode RelabelMode) (*Graph, *Relabeling) {
	if mode == RelabelOff {
		return g, nil
	}
	key := relabelKey{g, mode}
	c := &relabelCache
	c.Lock()
	if rl, ok := c.entries[key]; ok {
		for i, k := range c.order {
			if k == key {
				copy(c.order[i:], c.order[i+1:])
				c.order[len(c.order)-1] = key
				break
			}
		}
		c.Unlock()
		return rl.g, rl.r
	}
	c.Unlock()
	// Rebuild outside the lock: Relabel is O(|E| log |E|) and g immutable.
	rg, r := Relabel(g, mode)
	rl := &relabeled{rg, r}
	c.Lock()
	defer c.Unlock()
	if prev, ok := c.entries[key]; ok {
		return prev.g, prev.r // another goroutine won the race; share its copy
	}
	if len(c.order) >= relabelCacheCap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = rl
	c.order = append(c.order, key)
	return rl.g, rl.r
}

// relabelPairConfig rewrites a 2-way config into the relabeled id space.
func relabelPairConfig(cfg *join2.Config, mode RelabelMode) *Relabeling {
	rg, r := relabeledFor(cfg.Graph, mode)
	if r == nil {
		return nil
	}
	cfg.Graph = rg
	cfg.P = r.MapToNew(cfg.P)
	cfg.Q = r.MapToNew(cfg.Q)
	return r
}

// restorePairIDs maps join results back to the original id space.
func restorePairIDs(res []PairResult, r *Relabeling) {
	if r == nil {
		return
	}
	for i := range res {
		res[i].Pair.P = r.ToOld(res[i].Pair.P)
		res[i].Pair.Q = r.ToOld(res[i].Pair.Q)
	}
}

// relabelSpec rewrites an n-way spec (graph and query node sets) into the
// relabeled id space.
func relabelSpec(spec *core.Spec, mode RelabelMode) *Relabeling {
	rg, r := relabeledFor(spec.Graph, mode)
	if r == nil {
		return nil
	}
	sets := make([]*NodeSet, spec.Query.NumSets())
	for i := range sets {
		sets[i] = r.MapSetToNew(spec.Query.Set(i))
	}
	q := core.NewQueryGraph(sets...)
	for _, e := range spec.Query.Edges() {
		q.AddEdge(e.From, e.To)
	}
	spec.Graph = rg
	spec.Query = q
	return r
}

// restoreAnswerIDs maps n-way answers back to the original id space.
func restoreAnswerIDs(answers []Answer, r *Relabeling) {
	if r == nil {
		return
	}
	for _, a := range answers {
		for i := range a.Nodes {
			a.Nodes[i] = r.ToOld(a.Nodes[i])
		}
	}
}
