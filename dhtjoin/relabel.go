package dhtjoin

import (
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/join2"
)

// Relabeling is the old↔new node-id bijection of a locality ordering; see
// Relabel.
type Relabeling = graph.Relabeling

// RelabelMode selects the locality-aware node ordering applied to the graph
// before a join (see graph.RelabelMode, which this aliases). The walk kernels
// scan the CSR row arrays and O(|V|) mass vectors constantly; reordering
// nodes so hot rows cluster (degree) or neighborhoods stay in nearby blocks
// (BFS) makes those scans cache-friendlier without changing any score beyond
// floating-point summation order within a row.
type RelabelMode = graph.RelabelMode

const (
	// RelabelOff runs joins on the graph as built (the default).
	RelabelOff = graph.NoRelabel
	// RelabelDegree orders nodes by descending total degree.
	RelabelDegree = graph.ByDegree
	// RelabelBFS orders nodes in breadth-first visit order from high-degree
	// roots.
	RelabelBFS = graph.ByBFS
)

// Relabel returns the graph reordered under the given mode together with
// the id map: feed the relabeled graph and Relabeling.MapToNew'd node sets
// to the joins, and Relabeling.ToOld the result ids. Callers that keep a
// graph around should relabel once and reuse the pair; the Options.Relabel
// knob does exactly that internally through a per-graph cache.
func Relabel(g *Graph, mode RelabelMode) (*Graph, *Relabeling) {
	return graph.Relabel(g, mode)
}

// relabelKey identifies one cached relabeled graph.
type relabelKey struct {
	g    *Graph
	mode RelabelMode
}

// relabeled pairs a reordered graph with its id map.
type relabeled struct {
	g *Graph
	r *Relabeling
}

// relabelCacheCap bounds the relabeled-graph cache. The cache holds strong
// references to its key graphs, so an unbounded cache would pin every graph
// a process ever relabeled; a small LRU keeps the steady-state win (one
// rebuild per long-lived graph) while transient graphs age out and both
// copies become collectable.
const relabelCacheCap = 4

// relabelLRU memoizes Relabel per (graph, mode), so repeated Options-level
// joins on the same graph pay the O(|E| log |E|) rebuild once. Graphs are
// immutable, which is what makes the pointer a sound key.
type relabelLRU struct {
	sync.Mutex
	cap     int
	entries map[relabelKey]*relabeled
	order   []relabelKey // most recently used last
}

var relabelCache = newRelabelLRU(relabelCacheCap)

func newRelabelLRU(capacity int) *relabelLRU {
	return &relabelLRU{cap: capacity, entries: make(map[relabelKey]*relabeled, capacity)}
}

// touchLocked moves key to the most-recently-used position. The caller holds
// the lock and has verified the key is present.
func (c *relabelLRU) touchLocked(key relabelKey) {
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			return
		}
	}
}

// lookup returns the cached entry for key, refreshing its recency.
func (c *relabelLRU) lookup(key relabelKey) (*relabeled, bool) {
	c.Lock()
	defer c.Unlock()
	rl, ok := c.entries[key]
	if ok {
		c.touchLocked(key)
	}
	return rl, ok
}

// insert publishes rl under key, evicting the least recently used entry when
// full. When another goroutine raced the caller's rebuild and already
// published an entry for key, that entry is shared — and its recency is
// refreshed, exactly as a lookup hit would: the key is demonstrably hot (two
// goroutines just asked for it), so it must not stay in line for eviction as
// "oldest".
func (c *relabelLRU) insert(key relabelKey, rl *relabeled) *relabeled {
	c.Lock()
	defer c.Unlock()
	if prev, ok := c.entries[key]; ok {
		c.touchLocked(key)
		return prev
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = rl
	c.order = append(c.order, key)
	return rl
}

// relabeledFor returns the cached reordering of g under mode.
func relabeledFor(g *Graph, mode RelabelMode) (*Graph, *Relabeling) {
	if mode == RelabelOff {
		return g, nil
	}
	key := relabelKey{g, mode}
	if rl, ok := relabelCache.lookup(key); ok {
		return rl.g, rl.r
	}
	// Rebuild outside the lock: Relabel is O(|E| log |E|) and g immutable.
	rg, r := Relabel(g, mode)
	rl := relabelCache.insert(key, &relabeled{rg, r})
	return rl.g, rl.r
}

// relabelPairConfig rewrites a 2-way config into the relabeled id space.
func relabelPairConfig(cfg *join2.Config, mode RelabelMode) *Relabeling {
	rg, r := relabeledFor(cfg.Graph, mode)
	if r == nil {
		return nil
	}
	cfg.Graph = rg
	cfg.P = r.MapToNew(cfg.P)
	cfg.Q = r.MapToNew(cfg.Q)
	return r
}

// relabelSpec rewrites an n-way spec (graph and query node sets) into the
// relabeled id space.
func relabelSpec(spec *core.Spec, mode RelabelMode) *Relabeling {
	rg, r := relabeledFor(spec.Graph, mode)
	if r == nil {
		return nil
	}
	sets := make([]*NodeSet, spec.Query.NumSets())
	for i := range sets {
		sets[i] = r.MapSetToNew(spec.Query.Set(i))
	}
	q := core.NewQueryGraph(sets...)
	for _, e := range spec.Query.Edges() {
		q.AddEdge(e.From, e.To)
	}
	spec.Graph = rg
	spec.Query = q
	return r
}
