package dhtjoin

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
)

func queryWorld(t testing.TB) (*Graph, []*NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{14, 14, 12}, PIn: 0.25, POut: 0.08, Seed: 21, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets
}

// TestResultsPrefixMatchesTopKPairs: ranging over Results and breaking after
// m results must reproduce TopKPairs(m) bit-identically, for every m.
func TestResultsPrefixMatchesTopKPairs(t *testing.T) {
	g, sets := queryWorld(t)
	p, q := sets[0], sets[1]
	for _, opts := range []*Options{nil, {Workers: 3}, {Relabel: RelabelDegree}} {
		query := NewPairQuery(g, p, q).WithOptions(opts)
		var streamed []PairResult
		for r, err := range query.Results(context.Background()) {
			if err != nil {
				t.Fatal(err)
			}
			streamed = append(streamed, r)
			if len(streamed) == 40 {
				break
			}
		}
		for _, m := range []int{1, 7, 40} {
			want, err := TopKPairs(g, p, q, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != m {
				t.Fatalf("TopKPairs(%d) returned %d", m, len(want))
			}
			for i := range want {
				if streamed[i].Pair != want[i].Pair || streamed[i].Score != want[i].Score {
					t.Fatalf("opts=%+v m=%d rank %d: streamed %+v, batch %+v",
						opts, m, i, streamed[i], want[i])
				}
			}
		}
	}
}

// TestAnswersPrefixMatchesTopK: the n-way iterator against the batch TopK.
func TestAnswersPrefixMatchesTopK(t *testing.T) {
	g, sets := queryWorld(t)
	join := Chain(sets[0], sets[1], sets[2])
	query := NewJoinQuery(g, join)
	var streamed []Answer
	for a, err := range query.Answers(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, a)
		if len(streamed) == 25 {
			break
		}
	}
	for _, m := range []int{1, 6, 25} {
		want, err := TopK(g, join, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != m {
			t.Fatalf("TopK(%d) returned %d", m, len(want))
		}
		for i := range want {
			if streamed[i].Score != want[i].Score {
				t.Fatalf("m=%d rank %d: streamed %v, batch %v", m, i, streamed[i], want[i])
			}
			for j := range want[i].Nodes {
				if streamed[i].Nodes[j] != want[i].Nodes[j] {
					t.Fatalf("m=%d rank %d: streamed %v, batch %v",
						m, i, streamed[i].Nodes, want[i].Nodes)
				}
			}
		}
	}
}

// TestNextKContinuation: paging through a stream with NextK must
// concatenate to the one-shot ranking — the "give me the next k" contract.
func TestNextKContinuation(t *testing.T) {
	g, sets := queryWorld(t)
	p, q := sets[0], sets[1]
	s, err := NewPairQuery(g, p, q).OpenPairs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	var pages []PairResult
	for i := 0; i < 4; i++ {
		page, err := s.NextK(9)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, page...)
	}
	want, err := TopKPairs(g, p, q, 36, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != len(want) {
		t.Fatalf("paged %d results, batch %d", len(pages), len(want))
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("rank %d: paged %+v, batch %+v", i, pages[i], want[i])
		}
	}
}

// TestStreamCancellation: a cancelled context must surface its error from
// Next and stop the stream; pulling after an explicit Stop must report
// ErrStreamStopped.
func TestStreamCancellation(t *testing.T) {
	g, sets := queryWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewPairQuery(g, sets[0], sets[1]).OpenPairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("pre-cancel next: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, ok, err := s.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel next: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.Next(); ok || !errors.Is(err, ErrStreamStopped) {
		t.Fatalf("post-stop next: ok=%v err=%v", ok, err)
	}

	// The iterator form: cancellation ends the range with the ctx error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n := 0
	var sawErr error
	for _, err := range NewPairQuery(g, sets[0], sets[1]).Results(ctx2) {
		if err != nil {
			sawErr = err
			break
		}
		n++
		if n == 3 {
			cancel2()
		}
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("iterator saw %d results, err=%v", n, sawErr)
	}
}

// TestQueryTypedErrors: facade validation must wrap the typed sentinels.
func TestQueryTypedErrors(t *testing.T) {
	g, sets := queryWorld(t)
	p, q := sets[0], sets[1]
	empty := NewNodeSet("empty", nil)

	if _, err := TopKPairs(nil, p, q, 3, nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("nil graph: %v", err)
	}
	if _, err := TopKPairs(g, empty, q, 3, nil); !errors.Is(err, ErrEmptyNodeSet) {
		t.Fatalf("empty P: %v", err)
	}
	if _, err := TopKPairs(g, p, nil, 3, nil); !errors.Is(err, ErrEmptyNodeSet) {
		t.Fatalf("nil Q: %v", err)
	}
	if _, err := TopKPairs(g, p, q, 0, nil); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: %v", err)
	}
	if _, err := TopKPairs(g, p, q, -2, nil); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k<0: %v", err)
	}
	if _, err := TopKPairs(g, p, q, 3, &Options{M: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("bad options: %v", err)
	}

	if _, err := TopK(nil, Chain(p, q), 3, nil); !errors.Is(err, ErrNilGraph) {
		t.Fatalf("n-way nil graph: %v", err)
	}
	if _, err := TopK(g, nil, 3, nil); !errors.Is(err, ErrQueryForm) {
		t.Fatalf("nil query graph: %v", err)
	}
	bad := NewQueryGraph(p, q).AddEdge(0, 5) // arity mismatch: no set 5
	if _, err := TopK(g, bad, 3, nil); !errors.Is(err, ErrInvalidQueryGraph) {
		t.Fatalf("arity mismatch: %v", err)
	}
	if _, err := TopK(g, Chain(p, empty), 3, nil); !errors.Is(err, ErrInvalidQueryGraph) {
		t.Fatalf("empty set in query graph: %v", err)
	}

	// Form confusion: a pair query has no n-way stream and vice versa.
	if _, err := NewPairQuery(g, p, q).OpenAnswers(context.Background()); !errors.Is(err, ErrQueryForm) {
		t.Fatalf("pair query OpenAnswers: %v", err)
	}
	if _, err := NewJoinQuery(g, Chain(p, q)).OpenPairs(context.Background()); !errors.Is(err, ErrQueryForm) {
		t.Fatalf("join query OpenPairs: %v", err)
	}
}

// TestAnswerStreamStopIdempotent: Stop twice, and NextK after exhaustion,
// must be harmless.
func TestAnswerStreamStopIdempotent(t *testing.T) {
	g, sets := queryWorld(t)
	s, err := NewJoinQuery(g, Chain(sets[0], sets[1])).OpenAnswers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.NextK(3); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	s.Stop()
	if _, ok, err := s.Next(); ok || !errors.Is(err, ErrStreamStopped) {
		t.Fatalf("next after stop: ok=%v err=%v", ok, err)
	}
}
