// Package dhtjoin is the public API of the multi-way join library over
// discounted hitting time (DHT), reproducing Zhang, Cheng, and Kao,
// "Evaluating Multi-Way Joins over Discounted Hitting Time", ICDE 2014.
//
// The library answers two query families over a directed weighted graph:
//
//   - Top-k 2-way joins: the k node pairs (p, q) ∈ P×Q with the highest DHT
//     scores h(p, q), evaluated with whichever of the five reproduced
//     algorithms (B-IDJ-Y/X, B-BJ, F-BJ, F-IDJ) the cost-based planner
//     picks for the workload — usually the backward pruning B-IDJ-Y.
//
//   - Top-k n-way joins: given a query graph over n node sets and a
//     monotonic aggregate f (MIN, SUM, …), the k n-tuples with the highest
//     aggregate of per-edge DHT scores, evaluated with the planner's pick
//     among NL / AP / PJ / PJ-i (usually the incremental partial join
//     PJ-i).
//
// Every operator returns the bit-identical ranking, so the planner's choice
// moves only cost; Query.Explain reports the decision with per-candidate
// estimates, and Query.WithHints forces one.
//
// Both query families execute as context-aware pull streams of
// rank-ordered results (the algorithms are incremental by construction —
// B-IDJ confirms pairs as it deepens, PJ-i derives the (m+1)-th tuple from
// the m-th), so callers never have to pick k up front:
//
//	b := dhtjoin.NewBuilder(4, false)
//	b.AddEdge(0, 1, 1)
//	b.AddEdge(1, 2, 2)
//	b.AddEdge(2, 3, 1)
//	g := b.Build()
//	P := dhtjoin.NewNodeSet("P", []dhtjoin.NodeID{0, 1})
//	Q := dhtjoin.NewNodeSet("Q", []dhtjoin.NodeID{2, 3})
//
//	query := dhtjoin.NewPairQuery(g, P, Q)
//	for r, err := range query.Results(ctx) { // iter.Seq2, descending score
//		if err != nil { ... }
//		use(r.Pair, r.Score)
//		if enough() {
//			break // the join stops deepening; engines are released
//		}
//	}
//
// OpenPairs/OpenAnswers return explicit handles with Next/NextK/Stop for
// "give me the next k" pagination. The batch calls remain as thin wrappers
// that drain a stream:
//
//	pairs, _ := dhtjoin.TopKPairs(g, P, Q, 3, nil)
//
// and the first m streamed results are always bit-identical to the
// one-shot top-m. See the examples/ directory for complete programs.
package dhtjoin

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/measure"
	"repro/internal/rankjoin"
	"repro/internal/simrank"
)

// Re-exported fundamental types. They alias the internal implementations, so
// values flow between the facade and the lower layers without conversion.
type (
	// NodeID identifies a graph node (dense integers in [0, NumNodes)).
	NodeID = graph.NodeID
	// Graph is the immutable CSR graph.
	Graph = graph.Graph
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// NodeSet is a named set of nodes (the R_i of a join).
	NodeSet = graph.NodeSet
	// Params are the general-form DHT coefficients (α, β, λ).
	Params = dht.Params
	// QueryGraph arranges node sets for an n-way join.
	QueryGraph = core.QueryGraph
	// Answer is one n-way join result tuple.
	Answer = core.Answer
	// Pair is one 2-way join pair.
	Pair = join2.Pair
	// PairResult is a scored 2-way join pair.
	PairResult = join2.Result
	// Aggregate is a monotonic function over query-edge scores.
	Aggregate = rankjoin.Aggregate
)

// Re-exported constructors.
var (
	// NewBuilder creates a graph builder (directed=false duplicates arcs).
	NewBuilder = graph.NewBuilder
	// NewNodeSet builds a named node set.
	NewNodeSet = graph.NewNodeSet
	// ReadText / WriteText serialize graphs in the line-oriented text format.
	ReadText  = graph.ReadText
	WriteText = graph.WriteText
	// ReadBinary / WriteBinary serialize graphs with encoding/gob.
	ReadBinary  = graph.ReadBinary
	WriteBinary = graph.WriteBinary
	// DHTE / DHTLambda are the two published DHT parameterizations.
	DHTE      = dht.DHTE
	DHTLambda = dht.DHTLambda
	// Chain / Triangle / Star / Clique build the standard query graphs.
	Chain    = core.Chain
	Triangle = core.Triangle
	Star     = core.Star
	Clique   = core.Clique
	// NewQueryGraph builds a custom query graph; add edges with AddEdge.
	NewQueryGraph = core.NewQueryGraph
	// Aggregates.
	Sum Aggregate = rankjoin.Sum
	Min Aggregate = rankjoin.Min
	Max Aggregate = rankjoin.Max
	Avg Aggregate = rankjoin.Avg
)

// Options tune a join. The zero value (or a nil pointer) means the paper's
// defaults: DHTλ with λ = 0.2, accuracy ε = 1e-6 (d = 8), MIN aggregation,
// per-edge budget m = 50, B-IDJ-Y / PJ-i algorithms.
type Options struct {
	// Params are the DHT coefficients; zero means DHTLambda(0.2).
	Params Params
	// Epsilon bounds the truncation error |h − h_d| (Lemma 1); zero means
	// 1e-6. Ignored when D is set.
	Epsilon float64
	// D forces the truncation depth directly.
	D int
	// Agg is the n-way aggregate; nil means Min.
	Agg Aggregate
	// M is the initial per-edge 2-way join budget of PJ/PJ-i; zero means 50.
	M int
	// Distinct drops n-way answers that repeat a graph node across tuple
	// positions. Useful when node sets overlap (e.g. an author active in
	// two research areas), where the degenerate h(v,v)=0 self-pairs would
	// otherwise dominate the ranking.
	Distinct bool
	// Measure selects the walk measure: MeasureDHT (first-hit, the paper's
	// default) or MeasureReach (reach probabilities, for Personalized
	// PageRank via the PPR params — the extension named in the paper's
	// conclusion). Ignored when MeasureName is set.
	Measure Measure
	// MeasureName selects a registered proximity measure by name ("dht",
	// "reach", "ppr", "simrank"; Measures lists them). It subsumes Measure:
	// the kernel fixes the walk kind, the customary parameterization (e.g.
	// "ppr" defaults zero-value Params to PPR(0.5)), and — for measures with
	// dedicated executors, like "simrank" — the planner's executor set.
	// Empty means "dht". Unknown names fail with ErrUnknownMeasure.
	MeasureName string
	// Workers enables the worker-pool extensions: per-edge 2-way joins run
	// concurrently and each backward join spreads its per-target walks over
	// that many goroutines. 0 (the default) and 1 evaluate serially, as in
	// the paper; a negative value selects GOMAXPROCS. Results are identical
	// at any setting — ties are broken by the canonical pair key.
	Workers int

	// BatchWidth is the column width of the batched walk kernel the joins
	// use for deep walks: 0 selects the default (8 columns — one cache line
	// per node), 1 disables batching, any other positive value is used
	// as-is. Worker count × batch width are tuned together by the joiners.
	// Results are identical at any setting.
	BatchWidth int

	// Relabel applies a locality-aware node reordering to the graph before
	// joining (cached per graph, so repeated joins pay the rebuild once):
	// the join runs on the cache-friendlier CSR and all returned node ids
	// are mapped back to the caller's id space. Honored by TopKPairs and
	// TopK; Score/ScoresFrom run on the graph as given. Off by default.
	// Scores are unchanged up to floating-point summation order within a
	// CSR row, so rankings can differ only between exactly-tied pairs.
	Relabel RelabelMode

	// Budget bounds the wall-clock time a join may spend. A join that runs
	// out of budget stops early but correctly: one-shot calls return
	// ErrBudgetExceeded, streams end cleanly with Truncated() reporting
	// true, and the prefix produced before the deadline is bit-identical to
	// the same-length prefix of the full ranking. Zero means no deadline
	// (Service defaults may still apply one). Honored by the join entry
	// points (one-shot and Service); Score/ScoresFrom run to completion.
	Budget time.Duration

	// Tenant names the quota bucket a Service call is accounted to: the
	// serving layer caps each tenant's concurrently admitted and queued
	// requests (ErrQuotaExceeded past the queue cap). Empty string is the
	// shared anonymous tenant. One-shot calls ignore it.
	Tenant string

	// LowPriority admits a Service call in the batch class: under
	// contention the weighted-fair scheduler grants interactive (default)
	// requests ~3x more often, without ever starving batch. One-shot calls
	// ignore it.
	LowPriority bool

	// Accuracy selects the planner's kernel contract: "" or "exact" (the
	// default) restricts the plan to bit-identical executors; "fast" lets
	// the cost model also pick the certified fast-kernel executors
	// ("B-BJ-fast", "F-BJ-fast"), which score with float32 lanes and
	// re-verify every answer near the cut through the exact kernel — the
	// emitted ranking is still bit-identical to the exact plan's, only the
	// cost changes. Any other value is rejected at Validate/open time.
	Accuracy string
}

// Measure selects the step probability the score folds.
type Measure = dht.Kind

// Measure values.
const (
	// MeasureDHT folds first-hit probabilities (discounted hitting time).
	MeasureDHT = dht.FirstHit
	// MeasureReach folds reach probabilities (e.g. Personalized PageRank).
	MeasureReach = dht.Reach
)

// PPR returns the Personalized-PageRank parameters for damping factor c;
// pair it with MeasureReach.
func PPR(c float64) Params { return dht.PPR(c) }

func (o *Options) resolve() (Params, int, Aggregate, int, error) {
	_, p, d, agg, m, err := o.resolveMeasure()
	return p, d, agg, m, err
}

// resolveMeasure resolves the measure kernel alongside the defaults. The
// kernel goes first because it owns the customary parameterization: "ppr"
// defaults zero-value Params to PPR(0.5) before the DHTλ(0.2) fallback.
// This must stay in lockstep with service.Query.resolve, which serves the
// same options over the wire.
func (o *Options) resolveMeasure() (measure.Kernel, Params, int, Aggregate, int, error) {
	opts := Options{}
	if o != nil {
		opts = *o
	}
	kern, err := measure.Lookup(opts.MeasureName)
	if err != nil {
		return measure.Kernel{}, Params{}, 0, nil, 0, err
	}
	p := kern.ResolveParams(opts.Params)
	if p == (Params{}) {
		p = dht.DHTLambda(0.2)
	}
	if err := p.Validate(); err != nil {
		return measure.Kernel{}, Params{}, 0, nil, 0, err
	}
	d := opts.D
	if d == 0 {
		eps := opts.Epsilon
		if eps == 0 {
			eps = 1e-6
		}
		d = p.StepsForEpsilon(eps)
	}
	if d < 1 {
		return measure.Kernel{}, Params{}, 0, nil, 0, fmt.Errorf("dhtjoin: depth d must be >= 1, got %d", d)
	}
	agg := opts.Agg
	if agg == nil {
		agg = rankjoin.Min
	}
	m := opts.M
	if m == 0 {
		m = 50
	}
	if m < 0 {
		return measure.Kernel{}, Params{}, 0, nil, 0, fmt.Errorf("dhtjoin: m must be >= 0, got %d", m)
	}
	return kern, p, d, agg, m, nil
}

// walkKind resolves the step-probability kind the walk engines fold: an
// explicit measure name fixes it from the kernel (so "ppr" folds reach
// probabilities regardless of the Measure field), otherwise the legacy
// Measure field applies unchanged.
func (o *Options) walkKind(kern measure.Kernel) dht.Kind {
	if o == nil {
		return MeasureDHT
	}
	if o.MeasureName != "" && kern.WalkBased {
		return kern.Walk
	}
	return o.Measure
}

// Measures lists the registered proximity-measure names — the valid values
// of Options.MeasureName and Query.WithMeasure.
func Measures() []string { return measure.Names() }

// TopKPairs runs a top-k 2-way join from P to Q, returning the k pairs with
// the highest DHT scores in descending order. The evaluation algorithm is
// chosen per query by the cost-based planner (usually B-IDJ-Y, the paper's
// best; see Query.Explain) — every choice returns the bit-identical
// ranking. It is a thin wrapper over the Query API — the result equals the
// first k elements of NewPairQuery(g, p, q).Results(ctx). Callers that want
// early termination, "next k" continuation, cancellation, or algorithm
// forcing should use the Query API directly.
func TopKPairs(g *Graph, p, q *NodeSet, k int, opts *Options) ([]PairResult, error) {
	return NewPairQuery(g, p, q).WithOptions(opts).TopKPairs(context.Background(), k)
}

// Score computes the truncated proximity score of (u, v) directly —
// h_d(u, v) under the default DHT measure, or whatever Options.MeasureName
// selects.
func Score(g *Graph, u, v NodeID, opts *Options) (float64, error) {
	kern, params, d, _, _, err := opts.resolveMeasure()
	if err != nil {
		return 0, err
	}
	if !kern.WalkBased {
		ev, err := kern.NewEvaluator(g, params, d)
		if err != nil {
			return 0, err
		}
		var dst [1]float64
		if err := ev.ScoresInto(u, []NodeID{v}, d, dst[:]); err != nil {
			return 0, err
		}
		return dst[0], nil
	}
	e, err := dht.NewEngine(g, params, d)
	if err != nil {
		return 0, err
	}
	return e.ForwardScoreKind(opts.walkKind(kern), u, v, d), nil
}

// ScoresFrom computes the score of (u, v) for every node u at once — one
// backward walk to v for the walk measures, one evaluated column for the
// matrix ones (SimRank is symmetric, so its column equals its row). out
// must have length g.NumNodes() (or be nil to allocate).
func ScoresFrom(g *Graph, v NodeID, opts *Options, out []float64) ([]float64, error) {
	kern, params, d, _, _, err := opts.resolveMeasure()
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = make([]float64, g.NumNodes())
	}
	if !kern.WalkBased {
		ev, err := kern.NewEvaluator(g, params, d)
		if err != nil {
			return nil, err
		}
		targets := make([]NodeID, g.NumNodes())
		for i := range targets {
			targets[i] = NodeID(i)
		}
		if err := ev.ScoresInto(v, targets, d, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	e, err := dht.NewEngine(g, params, d)
	if err != nil {
		return nil, err
	}
	e.BackWalkKind(opts.walkKind(kern), v, d, out)
	return out, nil
}

// TopK runs a top-k n-way join over the query graph, returning the k
// answers with the highest aggregate scores in descending order. The
// operator (NL / AP / PJ / PJ-i) is chosen per query by the cost-based
// planner — every choice returns the bit-identical ranking. Like TopKPairs
// it is a thin wrapper that drains the streaming Query API: bit-identical
// to the first k elements of NewJoinQuery(g, query).Answers(ctx).
func TopK(g *Graph, query *QueryGraph, k int, opts *Options) ([]Answer, error) {
	return NewJoinQuery(g, query).WithOptions(opts).TopK(context.Background(), k)
}

// Steps exposes the Lemma-1 bound: the walk depth needed so that the
// truncation error is at most eps under params.
func Steps(params Params, eps float64) int { return params.StepsForEpsilon(eps) }

// SimRank support (the second measure named in the paper's conclusion).
// SimRank does not fit the walk form the join algorithms exploit, so it is
// computed by dense fixed-point iteration and joined via JoinLists.
type (
	// SimRankMatrix holds converged all-pairs SimRank scores.
	SimRankMatrix = simrank.Matrix
	// SimRankOptions tune the fixed-point iteration.
	SimRankOptions = simrank.Options
)

// ComputeSimRank runs the SimRank fixed point (graphs up to a few thousand
// nodes; see the simrank package for the trade-off).
func ComputeSimRank(g *Graph, opts *SimRankOptions) (*SimRankMatrix, error) {
	return simrank.Compute(g, opts)
}

// JoinLists runs the top-k n-way rank join over externally supplied
// descending per-edge rankings — one list per query edge. This is how
// non-walk measures (e.g. SimRank via SimRankMatrix.EdgeList) reuse the
// multi-way machinery.
func JoinLists(query *QueryGraph, lists [][]PairResult, agg Aggregate, k int, distinct bool) ([]Answer, error) {
	return core.JoinLists(query, lists, agg, k, distinct)
}

// LoadText reads a graph (and node sets) from the text format.
func LoadText(r io.Reader) (*Graph, []*NodeSet, error) { return graph.ReadText(r) }
