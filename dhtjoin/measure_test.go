package dhtjoin

// The measure-registry suites: the "dht" kernel through the registry must be
// bit-identical to the measure-less path (the PR 9 behavior), the new ppr
// and simrank kernels must match their reference evaluators, and wrong or
// unknown measure spellings must fail with the typed sentinels.

import (
	"context"
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/ppr"
	"repro/internal/simrank"
)

// TestMeasureDHTBitIdentical is the registry's equivalence property: a
// query that names the default measure explicitly ("dht", or the empty
// spelling) returns the bit-identical ranking of the same query without a
// measure, across seeds, demands, and both query forms. This is what pins
// "registry resolution changed no numbers".
func TestMeasureDHTBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{3, 21, 77} {
		g, sets := plannerWorld(t, seed)
		p, q := sets[0], sets[1]
		for _, k := range []int{1, 7, 50, p.Len() * q.Len()} {
			base := NewPairQuery(g, p, q)
			want, err := base.TopKPairs(ctx, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range []string{"", "dht"} {
				got, err := base.WithMeasure(name).TopKPairs(ctx, k)
				if err != nil {
					t.Fatal(err)
				}
				comparePairs(t, "measure:"+name, seed, k, got, want)
			}
		}

		qg := Chain(sets[0], sets[1], sets[2])
		for _, k := range []int{1, 10} {
			base := NewJoinQuery(g, qg)
			want, err := base.TopK(ctx, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := base.WithMeasure("dht").TopK(ctx, k)
			if err != nil {
				t.Fatal(err)
			}
			compareAnswers(t, "measure:dht", k, got, want, false)
		}
	}
}

// TestMeasurePPRGolden pins the served ppr join against a brute-force
// reference built from the power iteration this package does not share code
// with at join level: every pair scored by its truncated PPR column, ranked
// by (score desc, tie asc).
func TestMeasurePPRGolden(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 21)
	p, q := sets[0], sets[1]
	const d = 8
	opts := &Options{D: d, MeasureName: "ppr"}

	// The reference ranking folds backward reach walks under dht.PPR(0.5) —
	// the fold the planner's backward executors emit, i.e. the serving
	// semantics of the ppr measure. Each score is also checked against the
	// independent power iteration; the two compute the same series in a
	// different summation order, so that link holds to float tolerance
	// while the ranking itself must match the served join bit for bit.
	e, err := dht.NewEngine(g, dht.PPR(0.5), d)
	if err != nil {
		t.Fatal(err)
	}
	cols := make(map[NodeID][]float64, q.Len())
	for _, b := range q.Nodes() {
		out := make([]float64, g.NumNodes())
		e.BackWalkKind(dht.Reach, b, d, out)
		cols[b] = out
	}
	type ref struct {
		pr    PairResult
		score float64
	}
	var all []ref
	for _, a := range p.Nodes() {
		col, err := ppr.PowerIteration(g, 0.5, a, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range q.Nodes() {
			s := cols[b][a]
			if math.Abs(s-col[b]) > 1e-12 {
				t.Fatalf("walk fold (%d,%d) = %v, power iteration says %v", a, b, s, col[b])
			}
			all = append(all, ref{PairResult{Pair: Pair{P: a, Q: b}, Score: s}, s})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		if all[i].pr.Pair.P != all[j].pr.Pair.P {
			return all[i].pr.Pair.P < all[j].pr.Pair.P
		}
		return all[i].pr.Pair.Q < all[j].pr.Pair.Q
	})

	for _, k := range []int{1, 10, 40} {
		got, err := TopKPairs(g, p, q, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: %d results", k, len(got))
		}
		for i := range got {
			if got[i].Pair != all[i].pr.Pair || got[i].Score != all[i].pr.Score {
				t.Fatalf("k=%d result %d: %+v, reference says %+v", k, i, got[i], all[i].pr)
			}
		}
	}

	// The streamed form yields the same prefix.
	st, err := NewPairQuery(g, p, q).WithOptions(opts).OpenPairs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	streamed, err := st.NextK(25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streamed {
		if streamed[i].Pair != all[i].pr.Pair || streamed[i].Score != all[i].pr.Score {
			t.Fatalf("stream result %d: %+v, reference says %+v", i, streamed[i], all[i].pr)
		}
	}
}

// TestMeasureSimRankGolden pins the served simrank join against the dense
// matrix, and the n-way form's score sequence against brute force over the
// tuple space.
func TestMeasureSimRankGolden(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 77)
	p, q := sets[0], sets[1]
	m, err := simrank.SharedMatrix(g)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 9, 60} {
		want, err := m.TopKPairs(p.Nodes(), q.Nodes(), k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewPairQuery(g, p, q).WithMeasure("simrank").TopKPairs(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Pair != want[i].Pair || got[i].Score != want[i].Score {
				t.Fatalf("k=%d result %d: %+v, matrix says %+v", k, i, got[i], want[i])
			}
		}
	}

	// n-way: brute-force every chain tuple via the matrix under MIN and
	// compare the descending score sequence (tuple tie order is the
	// executor's canonical key, which the reference does not reproduce).
	qg := Chain(sets[0], sets[1], sets[2])
	const k = 12
	var scores []float64
	for _, a := range sets[0].Nodes() {
		for _, b := range sets[1].Nodes() {
			sAB := m.Score(a, b)
			for _, c := range sets[2].Nodes() {
				scores = append(scores, math.Min(sAB, m.Score(b, c)))
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	got, err := NewJoinQuery(g, qg).WithMeasure("simrank").TopK(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("n-way returned %d answers, want %d", len(got), k)
	}
	for i, a := range got {
		if a.Score != scores[i] {
			t.Fatalf("n-way answer %d score %v, brute force says %v", i, a.Score, scores[i])
		}
	}
}

// TestMeasureUnknown: unknown spellings fail every entry point with the
// errors.Is-able sentinel.
func TestMeasureUnknown(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 3)
	p, q := sets[0], sets[1]

	_, err := NewPairQuery(g, p, q).WithMeasure("katz").TopKPairs(ctx, 5)
	if !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("join error %v is not ErrUnknownMeasure", err)
	}
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("join error %v is not ErrInvalidOptions", err)
	}
	if _, err := Score(g, 0, 1, &Options{MeasureName: "katz"}); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("Score error %v is not ErrUnknownMeasure", err)
	}
	if _, err := ScoresFrom(g, 1, &Options{MeasureName: "katz"}, nil); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("ScoresFrom error %v is not ErrUnknownMeasure", err)
	}
	if _, _, err := AlgorithmsForMeasure("katz"); !errors.Is(err, ErrUnknownMeasure) {
		t.Fatalf("AlgorithmsForMeasure error %v is not ErrUnknownMeasure", err)
	}

	found := false
	for _, name := range Measures() {
		if name == "simrank" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Measures() = %v, missing simrank", Measures())
	}
}

// TestMeasureHintConflict: forcing an executor across the measure boundary
// is a hint conflict, and the per-measure algorithm lists reflect the split.
func TestMeasureHintConflict(t *testing.T) {
	ctx := context.Background()
	g, sets := plannerWorld(t, 3)
	p, q := sets[0], sets[1]

	_, err := NewPairQuery(g, p, q).WithMeasure("simrank").
		WithHints(Hints{Algorithm: "B-IDJ-Y"}).TopKPairs(ctx, 5)
	if !errors.Is(err, ErrHintConflict) {
		t.Fatalf("walk executor on simrank query: %v, want ErrHintConflict", err)
	}
	_, err = NewPairQuery(g, p, q).WithHints(Hints{Algorithm: "SR-SCAN"}).TopKPairs(ctx, 5)
	if !errors.Is(err, ErrHintConflict) {
		t.Fatalf("SR-SCAN on walk query: %v, want ErrHintConflict", err)
	}

	for _, name := range Algorithms2Way() {
		if name == "SR-SCAN" {
			t.Fatal("Algorithms2Way lists the simrank executor")
		}
	}
	two, nway, err := AlgorithmsForMeasure("simrank")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 1 || two[0] != "SR-SCAN" || len(nway) != 1 || nway[0] != "SR-AP" {
		t.Fatalf("simrank executors = %v / %v", two, nway)
	}

	// Forcing within the measure works and Explain reports the dedicated
	// candidate table.
	pl, err := NewPairQuery(g, p, q).WithMeasure("simrank").Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "SR-SCAN" || len(pl.Estimates) != 1 {
		t.Fatalf("simrank plan = %+v", pl)
	}
	forced, err := NewPairQuery(g, p, q).WithMeasure("simrank").
		WithHints(Hints{Algorithm: "SR-SCAN"}).TopKPairs(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(forced) != 3 {
		t.Fatalf("forced SR-SCAN returned %d results", len(forced))
	}
}

// TestMeasureScorePaths: the one-pair and one-column entry points honor the
// measure name, including the matrix family.
func TestMeasureScorePaths(t *testing.T) {
	g, sets := plannerWorld(t, 21)
	u := sets[0].Nodes()[0]
	v := sets[1].Nodes()[0]

	const d = 8
	col, err := ppr.PowerIteration(g, 0.5, u, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Score(g, u, v, &Options{D: d, MeasureName: "ppr"})
	if err != nil {
		t.Fatal(err)
	}
	if got != col[v] {
		t.Fatalf("ppr Score = %v, power iteration says %v", got, col[v])
	}

	m, err := simrank.SharedMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	sGot, err := Score(g, u, v, &Options{MeasureName: "simrank"})
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Score(u, v); sGot != want {
		t.Fatalf("simrank Score = %v, matrix says %v", sGot, want)
	}

	colGot, err := ScoresFrom(g, v, &Options{MeasureName: "simrank"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range colGot {
		if want := m.Score(graph.NodeID(i), v); colGot[i] != want {
			t.Fatalf("simrank ScoresFrom[%d] = %v, matrix says %v", i, colGot[i], want)
		}
	}
}
