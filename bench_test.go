package repro

// One benchmark per table and figure of the paper's evaluation (§VII), plus
// the DESIGN.md ablations. Each wraps the corresponding experiment driver in
// its quick configuration; `go run ./cmd/experiments -full` produces the
// paper-scale numbers recorded in EXPERIMENTS.md.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

// sharedEnv caches the quick-mode datasets across benchmarks so each bench
// measures the experiment, not graph generation.
func sharedEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		benchEnv = experiments.NewEnv(experiments.Quick())
	})
	return benchEnv
}

func benchExperiment(b *testing.B, id string) {
	env := sharedEnv(b)
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the dataset caches outside the timed region.
	if _, err := env.Yeast(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.DBLP(); err != nil {
		b.Fatal(err)
	}
	if _, err := env.YouTube(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("%s produced an empty table", id)
		}
	}
}

// Table III: top-5 3-way join on DBLP (triangle and chain).
func BenchmarkTable3TriangleChain(b *testing.B) { benchExperiment(b, "table3") }

// Figure 6(a): link-prediction ROC curves on the three datasets.
func BenchmarkFig6aROC(b *testing.B) { benchExperiment(b, "fig6a") }

// Figure 6(b): AUC vs λ on Yeast, DHTλ and DHTe.
func BenchmarkFig6bAUCLambda(b *testing.B) { benchExperiment(b, "fig6b") }

// Table IV: link- and 3-clique-prediction AUC on the three datasets.
func BenchmarkTable4AUC(b *testing.B) { benchExperiment(b, "table4") }

// Figure 7(a): Yeast n-way join running time vs n (NL, AP, PJ, PJ-i).
func BenchmarkFig7aYeastVsN(b *testing.B) { benchExperiment(b, "fig7a") }

// Figure 7(b): Yeast n-way join running time vs |E_Q|.
func BenchmarkFig7bYeastVsEQ(b *testing.B) { benchExperiment(b, "fig7b") }

// Figure 7(c): Yeast n-way join running time vs k.
func BenchmarkFig7cYeastVsK(b *testing.B) { benchExperiment(b, "fig7c") }

// Figure 7(d): Yeast n-way join running time vs m (PJ vs PJ-i).
func BenchmarkFig7dYeastVsM(b *testing.B) { benchExperiment(b, "fig7d") }

// Figure 8(a): DBLP n-way join running time vs n.
func BenchmarkFig8aDBLPVsN(b *testing.B) { benchExperiment(b, "fig8a") }

// Figure 8(b): DBLP n-way join running time vs |E_Q|.
func BenchmarkFig8bDBLPVsEQ(b *testing.B) { benchExperiment(b, "fig8b") }

// Figure 8(c): DBLP n-way join running time vs k.
func BenchmarkFig8cDBLPVsK(b *testing.B) { benchExperiment(b, "fig8c") }

// Figure 8(d): DBLP n-way join running time vs m.
func BenchmarkFig8dDBLPVsM(b *testing.B) { benchExperiment(b, "fig8d") }

// Figure 9(a): all five 2-way join algorithms on Yeast.
func BenchmarkFig9a2WayAlgos(b *testing.B) { benchExperiment(b, "fig9a") }

// Figure 9(b): Yeast 2-way join running time vs ε.
func BenchmarkFig9bVsEpsilon(b *testing.B) { benchExperiment(b, "fig9b") }

// Figure 9(c): Yeast 2-way join running time vs λ.
func BenchmarkFig9cVsLambda(b *testing.B) { benchExperiment(b, "fig9c") }

// Figure 9(d): Yeast 2-way join running time vs k.
func BenchmarkFig9dVsK(b *testing.B) { benchExperiment(b, "fig9d") }

// Figure 10(a): DBLP 2-way join running time vs λ.
func BenchmarkFig10aDBLPVsLambda(b *testing.B) { benchExperiment(b, "fig10a") }

// Figure 10(b): DBLP pruning fraction per iteration, B-IDJ-X vs B-IDJ-Y.
func BenchmarkFig10bPruning(b *testing.B) { benchExperiment(b, "fig10b") }

// Ablation: PBRJ corner bound on vs off.
func BenchmarkAblationCornerBound(b *testing.B) { benchExperiment(b, "ablation-corner") }

// Ablation: incremental F reuse vs from-scratch re-join.
func BenchmarkAblationIncremental(b *testing.B) { benchExperiment(b, "ablation-incremental") }

// Ablation: doubling vs linear deepening schedule.
func BenchmarkAblationSchedule(b *testing.B) { benchExperiment(b, "ablation-schedule") }

// Extension (§VIII): the same joins over Personalized PageRank.
func BenchmarkExtensionPPR(b *testing.B) { benchExperiment(b, "ext-ppr") }

// Extension (§VIII): SimRank joins via core.JoinLists.
func BenchmarkExtensionSimRank(b *testing.B) { benchExperiment(b, "ext-simrank") }
