package repro

// End-to-end test of the command-line tools: build the binaries, generate a
// dataset, and run joins against it — the workflow the README documents.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in -short mode")
	}
	dir := t.TempDir()
	gengraph := buildTool(t, dir, "gengraph")
	njoin := buildTool(t, dir, "njoin")
	experiments := buildTool(t, dir, "experiments")

	graphFile := filepath.Join(dir, "yeast.graph")
	out, err := exec.Command(gengraph, "-kind", "yeast", "-seed", "3", "-o", graphFile).CombinedOutput()
	if err != nil {
		t.Fatalf("gengraph: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "nodes=2400") {
		t.Fatalf("gengraph stats missing: %s", out)
	}
	if fi, err := os.Stat(graphFile); err != nil || fi.Size() == 0 {
		t.Fatalf("graph file not written: %v", err)
	}

	// 2-way join.
	out, err = exec.Command(njoin, "-graph", graphFile, "-sets", "3-U,8-D", "-k", "5", "-limit", "60").CombinedOutput()
	if err != nil {
		t.Fatalf("njoin 2-way: %v\n%s", err, out)
	}
	if got := strings.Count(string(out), "\n"); got < 5 {
		t.Fatalf("njoin printed %d lines:\n%s", got, out)
	}
	if !strings.Contains(string(out), "PJ-i: 5 answers") {
		t.Fatalf("njoin summary missing:\n%s", out)
	}

	// 3-way triangle with SUM and the PJ algorithm.
	out, err = exec.Command(njoin, "-graph", graphFile, "-sets", "3-U,5-F,8-D",
		"-shape", "triangle", "-k", "3", "-agg", "SUM", "-algo", "pj", "-limit", "25").CombinedOutput()
	if err != nil {
		t.Fatalf("njoin triangle: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PJ: 3 answers") {
		t.Fatalf("triangle summary missing:\n%s", out)
	}

	// Error handling: unknown node set.
	out, err = exec.Command(njoin, "-graph", graphFile, "-sets", "bogus").CombinedOutput()
	if err == nil {
		t.Fatalf("njoin accepted a bogus set:\n%s", out)
	}
	if !strings.Contains(string(out), "no node set") {
		t.Fatalf("unhelpful error:\n%s", out)
	}

	// experiments -list enumerates the registry.
	out, err = exec.Command(experiments, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table3", "fig7a", "fig10b", "ablation-corner"} {
		if !strings.Contains(string(out), id) {
			t.Fatalf("experiment %s missing from -list:\n%s", id, out)
		}
	}

	// experiments: one cheap experiment end to end.
	out, err = exec.Command(experiments, "-exp", "ablation-schedule").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments -exp: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "doubling") {
		t.Fatalf("ablation output wrong:\n%s", out)
	}
}
