// Command experiments regenerates the paper's tables and figures (§VII) on
// the synthetic dataset substitutes, printing each as an aligned text table.
//
// Usage:
//
//	experiments                 # run everything, quick sizing
//	experiments -full           # paper-scale sizing (slow)
//	experiments -exp fig9a      # one experiment
//	experiments -relabel degree # run on the locality-relabeled CSR
//	experiments -list           # list experiment ids
//
// -cpuprofile and -memprofile write pprof profiles of the experiment runs,
// so a kernel regression can be diagnosed straight from this binary:
//
//	experiments -exp fig9a -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expID      = flag.String("exp", "", "run a single experiment by id (default: all)")
		full       = flag.Bool("full", false, "paper-scale configuration (slow; quick sizing otherwise)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		seed       = flag.Int64("seed", 1, "dataset RNG seed")
		relabel    = flag.String("relabel", "", "locality-aware node reordering: degree or bfs (default off)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the runs to this file")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-22s %s\n", r.ID, r.Title)
		}
		return nil
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	cfg.Relabel = *relabel
	env := experiments.NewEnv(cfg)

	runners := experiments.All()
	if *expID != "" {
		r, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("# multi-way join over DHT — experiment suite (%s mode, seed %d", mode, *seed)
	if *relabel != "" {
		fmt.Printf(", relabel=%s", *relabel)
	}
	fmt.Printf(")\n\n")
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(env)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize retained heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
