// Command experiments regenerates the paper's tables and figures (§VII) on
// the synthetic dataset substitutes, printing each as an aligned text table.
//
// Usage:
//
//	experiments                 # run everything, quick sizing
//	experiments -full           # paper-scale sizing (slow)
//	experiments -exp fig9a      # one experiment
//	experiments -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expID = flag.String("exp", "", "run a single experiment by id (default: all)")
		full  = flag.Bool("full", false, "paper-scale configuration (slow; quick sizing otherwise)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		seed  = flag.Int64("seed", 1, "dataset RNG seed")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-22s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Quick()
	if *full {
		cfg = experiments.Full()
	}
	cfg.Seed = *seed
	env := experiments.NewEnv(cfg)

	runners := experiments.All()
	if *expID != "" {
		r, err := experiments.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("# multi-way join over DHT — experiment suite (%s mode, seed %d)\n\n", mode, *seed)
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s finished in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
