package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
)

// smallBufListener pins a small explicit send buffer on accepted conns so a
// slow-reading client keeps the server's stream handler genuinely in flight
// (an auto-tuned kernel buffer would swallow the whole response at once).
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(8 << 10)
		}
	}
	return c, err
}

// TestServeGracefulDrain exercises the daemon's SIGTERM sequence end to end
// with an injected signal channel: an in-flight NDJSON stream runs to its
// done terminator while new requests are refused with 503 + Retry-After, and
// serve returns cleanly once the drain completes.
func TestServeGracefulDrain(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{50, 50, 40}, PIn: 0.12, POut: 0.05,
		Seed: 7, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := smallBufListener{raw}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serve(ln, svc, service.NewHandler(svc), 30*time.Second, stop) }()
	base := "http://" + ln.Addr().String()

	// Wait for the listener to answer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Stream the full n×n ranking: with the pinned send buffer the handler is
	// still mid-stream — blocked on our unread bytes — when the drain begins.
	all := make([]int, g.NumNodes())
	for i := range all {
		all[i] = i
	}
	body, _ := json.Marshal(map[string]any{
		"graph":  "g",
		"p":      map[string]any{"ids": all},
		"q":      map[string]any{"ids": all},
		"k":      0,
		"stream": true,
	})
	resp, err := http.Post(base+"/join2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 3; i++ {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("stream line %d: %v", i, err)
		}
		if line["done"] == true {
			t.Fatalf("stream exhausted after %d lines before the drain began", i)
		}
	}

	stop <- syscall.SIGTERM

	// New queries are refused while the drain runs. The rejection may briefly
	// race the signal delivery, so poll for the flip.
	var rejected *http.Response
	deadline = time.Now().Add(5 * time.Second)
	for {
		rejected, err = http.Post(base+"/join2", "application/json", bytes.NewReader(body))
		if err != nil || rejected.StatusCode == http.StatusServiceUnavailable {
			break
		}
		io.Copy(io.Discard, rejected.Body)
		rejected.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("new queries still admitted after SIGTERM")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("post-SIGTERM request: %v", err)
	}
	if rejected.Header.Get("Retry-After") == "" {
		t.Error("drain 503 lacks Retry-After")
	}
	io.Copy(io.Discard, rejected.Body)
	rejected.Body.Close()

	// The in-flight stream still runs to completion under the drain budget.
	sawDone := false
	for !sawDone {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("in-flight stream cut during graceful drain: %v", err)
		}
		sawDone = line["done"] == true
	}
	resp.Body.Close()

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after the drain completed")
	}
}

// TestServeSecondSignalHardStops: if in-flight work outlives patience, a
// second signal cancels it immediately instead of waiting out the budget.
func TestServeSecondSignalHardStops(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{50, 50, 40}, PIn: 0.12, POut: 0.05,
		Seed: 7, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 2)
	served := make(chan error, 1)
	// A drain budget far longer than the test: only the second signal can
	// bring the server down in time.
	go func() { served <- serve(ln, svc, service.NewHandler(svc), time.Hour, stop) }()
	base := "http://" + ln.Addr().String()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Park a slow consumer on an exhaustive stream so the drain cannot finish
	// on its own: the client holds the response open and reads nothing more.
	body, _ := json.Marshal(map[string]any{
		"graph":  "g",
		"p":      map[string]any{"set": sets[0].Name},
		"q":      map[string]any{"set": sets[1].Name},
		"k":      0,
		"stream": true,
	})
	resp, err := http.Post(base+"/join2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var firstLine map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&firstLine); err != nil {
		t.Fatal(err)
	}

	var drainBody sync.WaitGroup
	drainBody.Add(1)
	go func() {
		defer drainBody.Done()
		io.Copy(io.Discard, resp.Body) // keep the connection alive until the hard stop
		resp.Body.Close()
	}()

	stop <- syscall.SIGTERM
	stop <- syscall.SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v after hard stop", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second signal did not bring the server down")
	}
	drainBody.Wait()
}
