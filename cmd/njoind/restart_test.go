package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestRestartServesPersistedGraphs is the whole-binary durability test: a
// real njoind process is loaded over HTTP, edited, killed with SIGKILL (no
// drain, no cleanup — the crash case), and restarted on the same data dir.
// The restarted process must serve the same graphs at the same generations
// with bit-identical join results, without any re-PUT.
func TestRestartServesPersistedGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the njoind binary")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "njoind")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	// First life: load a graph, join, apply an edit, join again.
	proc1, base1 := startServer(t, bin, dataDir)
	putGraph(t, base1, "comm")
	join1 := postJoin(t, base1, "comm", 10)

	edit := `{"add":[{"u":0,"v":60,"w":5},{"u":60,"v":100,"w":2}],"del":[{"u":1,"v":0}]}`
	resp := doReq(t, http.MethodPost, base1+"/graphs/comm/edges", strings.NewReader(edit))
	var info struct {
		Generation uint64 `json:"generation"`
	}
	decodeBody(t, resp, &info)
	if info.Generation != 2 {
		t.Fatalf("generation after edit = %d, want 2", info.Generation)
	}
	join2 := postJoin(t, base1, "comm", 10)
	if bytes.Equal(join1, join2) {
		t.Fatal("edit did not change the join results (test has no signal)")
	}

	// kill -9: no shutdown path runs; only the durable state survives.
	if err := proc1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()

	// Second life: same data dir, no -graph preloads, no PUTs.
	_, base2 := startServer(t, bin, dataDir)
	var listing struct {
		Graphs []struct {
			Name       string `json:"name"`
			Generation uint64 `json:"generation"`
		} `json:"graphs"`
	}
	decodeBody(t, doReq(t, http.MethodGet, base2+"/graphs", nil), &listing)
	if len(listing.Graphs) != 1 || listing.Graphs[0].Name != "comm" || listing.Graphs[0].Generation != 2 {
		t.Fatalf("restarted /graphs = %+v", listing)
	}
	join3 := postJoin(t, base2, "comm", 10)
	if !bytes.Equal(join2, join3) {
		t.Fatalf("post-restart join differs:\n pre %s\npost %s", join2, join3)
	}

	// /stats is warm about recovery: the generation map is populated and the
	// WAL replay is visible.
	var stats struct {
		Generations map[string]uint64 `json:"generations"`
		Persistence struct {
			WALReplayed     int64 `json:"wal_replayed"`
			GraphsRecovered int64 `json:"graphs_recovered"`
		} `json:"persistence"`
	}
	decodeBody(t, doReq(t, http.MethodGet, base2+"/stats", nil), &stats)
	if stats.Generations["comm"] != 2 {
		t.Fatalf("stats generations = %v", stats.Generations)
	}
	if stats.Persistence.GraphsRecovered != 1 || stats.Persistence.WALReplayed != 1 {
		t.Fatalf("stats persistence = %+v", stats.Persistence)
	}

	// A delete in the second life must be durable too.
	doReq(t, http.MethodDelete, base2+"/graphs/comm", nil)
	var after struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	decodeBody(t, doReq(t, http.MethodGet, base2+"/graphs", nil), &after)
	if len(after.Graphs) != 0 {
		t.Fatalf("graphs after delete = %+v", after)
	}
}

// startServer launches njoind -addr 127.0.0.1:0 -data-dir dataDir and waits
// for the "serving on" stderr line, returning the process and base URL. The
// process is SIGKILLed at test cleanup (if still alive).
func startServer(t *testing.T, bin, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if addr, ok := strings.CutPrefix(line, "njoind: serving on "); ok {
				addrCh <- strings.TrimSpace(addr)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("njoind did not report a listen address")
		return nil, ""
	}
}

// putGraph uploads the deterministic community test graph in text format.
func putGraph(t *testing.T, base, name string) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{50, 50, 40}, PIn: 0.12, POut: 0.05, Seed: 7, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteText(&buf, g, sets...); err != nil {
		t.Fatal(err)
	}
	doReq(t, http.MethodPut, base+"/graphs/"+name, &buf)
}

func postJoin(t *testing.T, base, name string, k int) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"p":{"set":"C0"},"q":{"set":"C1"},"k":%d}`, name, k)
	resp := doReq(t, http.MethodPost, base+"/join2", strings.NewReader(body))
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func doReq(t *testing.T, method, url string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("%s %s: %d %s", method, url, resp.StatusCode, b)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
