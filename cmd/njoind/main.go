// Command njoind is the long-lived join server: it keeps a bounded registry
// of named graphs in memory and serves top-k 2-way and n-way DHT joins over
// HTTP/JSON, reusing engines, score-column memos, relabelings, and recent
// result prefixes across requests (see internal/service). Results are
// bit-identical to the corresponding one-shot dhtjoin calls.
//
// Usage:
//
//	njoind -addr :8080
//	njoind -addr :8080 -graph yeast=yeast.graph -graph dblp=dblp.graph
//
// API (JSON; see internal/service.NewHandler):
//
//	PUT    /graphs/{name}   load a text-format graph (request body = file)
//	GET    /graphs          list loaded graphs
//	DELETE /graphs/{name}   drop a graph
//	POST   /join2           {"graph":"g","p":{"set":"U"},"q":{"set":"D"},"k":10}
//	POST   /joinN           {"graph":"g","sets":[...],"shape":"chain","k":5}
//	GET    /score           ?graph=g&u=3&v=8
//	GET    /explain         ?graph=g&p=U&q=D&k=10 (dry-run plan, named sets)
//	GET    /stats           service counters (incl. planner picks)
//
// The execution algorithm is chosen per request by the cost-based planner
// (internal/plan) over the graph's structural stats and the session's
// observed walk costs; add "algo":"B-BJ" (etc.) to options to force one,
// and "explain":true to either join body for a dry-run {"plan":...}
// response instead of results.
//
// Both join endpoints stream: add "stream":true to receive NDJSON — one
// rank-ordered result per line, flushed as the joiners confirm it, ended by
// a {"done":true,...} terminator ("k":0 streams until the ranking is
// exhausted). Add "cursor":n to resume after the first n results — the
// "next page" continuation; non-streaming responses with a cursor carry
// "next_cursor" and "exhausted". Handlers run under the request context:
// closing the connection mid-stream aborts the join and returns its engines
// to the server's pool. Errors are {"error":{"status":...,"message":...}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

// graphFlags collects repeated -graph name=path pairs.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		maxGraphs   = flag.Int("max-graphs", 0, "graph registry capacity (0 = default 16)")
		maxSessions = flag.Int("max-sessions", 0, "session cache capacity (0 = default 32)")
		resultCache = flag.Int("result-cache", 0, "per-session result LRU capacity (0 = default 128, negative disables)")
		memoSize    = flag.Int("memo", 0, "per-session score-column memo capacity (0 = default 256, negative disables)")
		maxConc     = flag.Int("max-concurrency", 0, "total join workers in flight (0 = GOMAXPROCS)")
		preload     graphFlags
	)
	flag.Var(&preload, "graph", "preload a graph as name=path (repeatable)")
	flag.Parse()
	if err := run(*addr, service.Config{
		MaxGraphs:       *maxGraphs,
		MaxSessions:     *maxSessions,
		ResultCacheSize: *resultCache,
		MemoSize:        *memoSize,
		MaxConcurrency:  *maxConc,
	}, preload); err != nil {
		fmt.Fprintln(os.Stderr, "njoind:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg service.Config, preload []string) error {
	svc := service.New(cfg)
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-graph wants name=path, got %q", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = svc.LoadGraphText(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		fmt.Fprintf(os.Stderr, "njoind: loaded graph %q from %s\n", name, path)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           service.NewHandler(svc),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "njoind: serving on %s\n", addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "njoind: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
