// Command njoind is the long-lived join server: it keeps a bounded registry
// of named graphs in memory and serves top-k 2-way and n-way DHT joins over
// HTTP/JSON, reusing engines, score-column memos, relabelings, and recent
// result prefixes across requests (see internal/service). Results are
// bit-identical to the corresponding one-shot dhtjoin calls.
//
// Usage:
//
//	njoind -addr :8080
//	njoind -addr :8080 -graph yeast=yeast.graph -graph dblp=dblp.graph
//	njoind -addr :8080 -data-dir /var/lib/njoind
//
// With -data-dir the registry is durable: PUT writes a checksummed snapshot
// segment, edge updates append to a per-graph WAL (folded into a fresh
// snapshot every -snapshot-every records or -snapshot-bytes bytes), DELETE
// removes the on-disk state, and a restart recovers every persisted graph —
// validating checksums, truncating torn WAL tails, and falling back to the
// previous snapshot generation when the newest is corrupt — before serving.
//
// API (JSON; see internal/service.NewHandler):
//
//	PUT    /graphs/{name}   load a text-format graph (request body = file)
//	GET    /graphs          list loaded graphs
//	DELETE /graphs/{name}   drop a graph (and its durable state)
//	POST   /graphs/{name}/edges  atomic edge-update batch ({"add":[...],"del":[...]})
//	POST   /join2           {"graph":"g","p":{"set":"U"},"q":{"set":"D"},"k":10}
//	POST   /joinN           {"graph":"g","sets":[...],"shape":"chain","k":5}
//	GET    /score           ?graph=g&u=3&v=8
//	GET    /explain         ?graph=g&p=U&q=D&k=10 (dry-run plan, named sets)
//	GET    /measures        registered scoring measures (name, contract, family)
//	GET    /stats           service counters (incl. planner picks and persistence)
//	GET    /metrics         the same counters in Prometheus text format
//
// Every join scores under a registered measure (internal/measure): add
// "measure":"ppr" (or "simrank", "reach", ...) to options; the default is
// the paper's "dht". Unknown names are a 400 listing the registry.
//
// Cluster mode (see internal/cluster) starts when -cluster-addr is set: the
// node serves a Kademlia-style RPC port, joins the ring via -peers, and two
// extra endpoints appear — POST /cluster/place?graph=g shards a loaded graph
// across the ring (full-graph replicas; the query-side candidate space is
// what partitions), and GET /cluster reports membership, placements, and
// scatter counters. 2-way joins against a placed graph scatter to the live
// replica of every part and merge shard streams through the rank-join corner
// bound, bit-identical to a single-node evaluation. -advertise splits the
// announced address from the bound one (NAT/containers); -node-id pins the
// ring identity independently of addresses.
//
// The execution algorithm is chosen per request by the cost-based planner
// (internal/plan) over the graph's structural stats and the session's
// observed walk costs; add "algo":"B-BJ" (etc.) to options to force one,
// and "explain":true to either join body for a dry-run {"plan":...}
// response instead of results. Add "accuracy":"fast" to options to let the
// planner also pick the certified fast-kernel executors ("B-BJ-fast",
// "F-BJ-fast"): the float32 walk kernel scores the candidate space and
// every answer near the cut is re-verified through the exact kernel, so the
// ranking is bit-identical to the default exact plan — GET /stats reports
// the re-verification work (kernel_picks, reverified, fallback_pairs).
//
// Both join endpoints stream: add "stream":true to receive NDJSON — one
// rank-ordered result per line, flushed as the joiners confirm it, ended by
// a {"done":true,...} terminator ("k":0 streams until the ranking is
// exhausted). Add "cursor":n to resume after the first n results — the
// "next page" continuation; non-streaming responses with a cursor carry
// "next_cursor" and "exhausted". Handlers run under the request context:
// closing the connection mid-stream aborts the join and returns its engines
// to the server's pool. Errors are {"error":{"status":...,"message":...}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/measure"
	"repro/internal/service"
	"repro/internal/store"
)

// graphFlags collects repeated -graph name=path pairs.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }
func (g *graphFlags) Set(v string) error {
	*g = append(*g, v)
	return nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxGraphs     = flag.Int("max-graphs", 0, "graph registry capacity (0 = default 16)")
		maxSessions   = flag.Int("max-sessions", 0, "session cache capacity (0 = default 32)")
		resultCache   = flag.Int("result-cache", 0, "per-session result LRU capacity (0 = default 128, negative disables)")
		memoSize      = flag.Int("memo", 0, "per-session score-column memo capacity (0 = default 256, negative disables)")
		maxConc       = flag.Int("max-concurrency", 0, "total join workers in flight (0 = GOMAXPROCS)")
		tenantConc    = flag.Int("tenant-inflight", 0, "max concurrently admitted requests per tenant (0 = no per-tenant cap)")
		tenantQueue   = flag.Int("tenant-queue", 0, "max queued requests per tenant before 429 (0 = default 32)")
		defaultBudget = flag.Duration("default-budget", 0, "deadline budget applied to queries that carry none (0 = none)")
		maxBudget     = flag.Duration("max-budget", 0, "cap on any per-query deadline budget (0 = uncapped)")
		drainBudget   = flag.Duration("drain-budget", 15*time.Second, "how long in-flight requests may finish after SIGTERM before hard cancel")
		dataDir       = flag.String("data-dir", "", "durable graph store directory (empty = in-memory only)")
		snapEvery     = flag.Int("snapshot-every", 0, "fold a graph's WAL into a snapshot after this many edit batches (0 = default 64, negative disables)")
		snapBytes     = flag.Int64("snapshot-bytes", 0, "fold a graph's WAL into a snapshot after this many bytes (0 = default 4MiB, negative disables)")
		clusterAddr   = flag.String("cluster-addr", "", "cluster RPC listen address; empty disables cluster mode")
		nodeID        = flag.String("node-id", "", "stable cluster node name (its hash is the ring position; default = advertised address)")
		advertise     = flag.String("advertise", "", "cluster address announced to peers (default = the bound -cluster-addr)")
		peers         = flag.String("peers", "", "comma-separated seed peer cluster addresses to join")
		replicas      = flag.Int("replicas", 0, "replicas per placed shard (0 = default 2)")
		alpha         = flag.Int("alpha", 0, "scatter/placement fan-out concurrency (0 = default 3)")
		preload       graphFlags
	)
	flag.Var(&preload, "graph", "preload a graph as name=path (repeatable)")
	flag.Parse()
	copts := clusterOpts{
		Bind:      *clusterAddr,
		NodeID:    *nodeID,
		Advertise: *advertise,
		Peers:     *peers,
		Replicas:  *replicas,
		Alpha:     *alpha,
	}
	if err := run(*addr, service.Config{
		MaxGraphs:       *maxGraphs,
		MaxSessions:     *maxSessions,
		ResultCacheSize: *resultCache,
		MemoSize:        *memoSize,
		MaxConcurrency:  *maxConc,
		TenantInFlight:  *tenantConc,
		TenantQueue:     *tenantQueue,
		DefaultBudget:   *defaultBudget,
		MaxBudget:       *maxBudget,
	}, store.Config{
		Dir:           *dataDir,
		SnapshotEvery: *snapEvery,
		SnapshotBytes: *snapBytes,
	}, *drainBudget, preload, copts); err != nil {
		fmt.Fprintln(os.Stderr, "njoind:", err)
		os.Exit(1)
	}
}

// clusterOpts carries the cluster-mode flags; a zero Bind disables them all.
type clusterOpts struct {
	Bind      string
	NodeID    string
	Advertise string
	Peers     string
	Replicas  int
	Alpha     int
}

func run(addr string, cfg service.Config, storeCfg store.Config, drainBudget time.Duration, preload []string, copts clusterOpts) error {
	if storeCfg.Dir != "" {
		st, recovered, err := store.Open(storeCfg)
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", storeCfg.Dir, err)
		}
		defer st.Close()
		cfg.Store = st
		ctr := st.Counters()
		fmt.Fprintf(os.Stderr,
			"njoind: data dir %s: recovered %d graph(s) (wal records replayed %d, torn tails truncated %d, wals discarded %d, snapshot fallbacks %d, orphans swept %d)\n",
			storeCfg.Dir, ctr.GraphsRecovered, ctr.WALReplayed, ctr.WALTruncations, ctr.WALDiscards, ctr.SnapshotFallbacks, ctr.Orphans)
		svc := service.New(cfg)
		if err := svc.AdoptRecovered(recovered); err != nil {
			return err
		}
		for _, rec := range recovered {
			degraded := ""
			if rec.TornTail {
				degraded += ", torn wal tail truncated"
			}
			if rec.Fallback {
				degraded += ", fell back to an older snapshot"
			}
			fmt.Fprintf(os.Stderr, "njoind: recovered graph %q at generation %d (%d wal record(s) replayed%s)\n",
				rec.Name, rec.Gen, rec.Replayed, degraded)
		}
		return runService(addr, svc, drainBudget, preload, copts)
	}
	return runService(addr, service.New(cfg), drainBudget, preload, copts)
}

func runService(addr string, svc *service.Service, drainBudget time.Duration, preload []string, copts clusterOpts) error {
	for _, spec := range preload {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-graph wants name=path, got %q", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = svc.LoadGraphText(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		fmt.Fprintf(os.Stderr, "njoind: loaded graph %q from %s\n", name, path)
	}
	fmt.Fprintf(os.Stderr, "njoind: measures registered: %s\n", strings.Join(measure.Names(), ", "))
	handler := http.Handler(service.NewHandler(svc))
	if copts.Bind != "" {
		node, err := cluster.Start(cluster.Config{
			Name:      copts.NodeID,
			Bind:      copts.Bind,
			Advertise: copts.Advertise,
			Replicas:  copts.Replicas,
			Alpha:     copts.Alpha,
			Service:   svc,
		})
		if err != nil {
			return fmt.Errorf("starting cluster node: %w", err)
		}
		defer node.Close()
		svc.SetRouter(node)
		handler = cluster.WrapHandler(node, handler)
		fmt.Fprintf(os.Stderr, "njoind: cluster node %q serving RPC on %s (advertising %s)\n",
			node.Self().Name, node.Addr(), node.Self().Addr)
		if copts.Peers != "" {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := node.Join(ctx, strings.Split(copts.Peers, ","))
			cancel()
			if err != nil {
				// Seeds may simply not be up yet; inbound pings from them
				// will converge membership later.
				fmt.Fprintf(os.Stderr, "njoind: cluster join incomplete: %v\n", err)
			}
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	return serve(ln, svc, handler, drainBudget, stop)
}

// serve runs the HTTP API on ln until a signal arrives on stop, then drains:
// admission closes (new queries get 503 + Retry-After and /readyz flips),
// in-flight requests — open NDJSON streams included — get drainBudget to
// finish, and whatever is still running afterwards (or when a second signal
// arrives) is hard-cancelled through the server's base context, which every
// joiner polls at walk-round granularity.
func serve(ln net.Listener, svc *service.Service, handler http.Handler, drainBudget time.Duration, stop chan os.Signal) error {
	baseCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20, // joins carry their payload in the body; headers stay small
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "njoind: serving on %s\n", ln.Addr())
		errCh <- srv.Serve(ln)
	}()

	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		// Graceful drain: stop admitting (new queries get 503 + Retry-After,
		// /readyz flips so load balancers stop routing here), let in-flight
		// requests — including open NDJSON streams — finish within the drain
		// budget, then hard-cancel whatever is left. A second signal skips
		// straight to the hard stop.
		fmt.Fprintf(os.Stderr, "njoind: %v, draining (budget %s; signal again to stop now)\n", sig, drainBudget)
		svc.StartDrain()
		// Keep accepting for a moment before closing the listener: load
		// balancers need to observe the /readyz flip, and clients racing the
		// drain get an explicit 503 + Retry-After instead of a connection
		// refused.
		grace := drainBudget / 4
		if grace > time.Second {
			grace = time.Second
		}
		select {
		case <-time.After(grace):
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "njoind: %v again, cancelling in-flight requests\n", sig)
			hardCancel()
			srv.Close()
			return nil
		}
		ctx, cancel := context.WithTimeout(context.Background(), drainBudget-grace)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(ctx) }()
		select {
		case err := <-done:
			if err == nil {
				fmt.Fprintln(os.Stderr, "njoind: drained cleanly")
				return nil
			}
			fmt.Fprintf(os.Stderr, "njoind: drain budget spent (%v), cancelling in-flight requests\n", err)
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "njoind: %v again, cancelling in-flight requests\n", sig)
		}
		hardCancel()
		srv.Close()
		<-done
		return nil
	}
}
