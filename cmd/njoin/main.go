// Command njoin evaluates top-k multi-way joins over DHT on a graph file.
//
// The graph file (text format, see internal/graph) must declare the node
// sets referenced by -sets. The query shape is chain, triangle, star, or
// clique over those sets, in the order given.
//
// Usage:
//
//	gengraph -kind yeast -o yeast.graph
//	njoin -graph yeast.graph -sets 3-U,8-D -k 10                  # 2-way
//	njoin -graph yeast.graph -sets 3-U,5-F,8-D -shape triangle -k 5
//	njoin -graph yeast.graph -sets 3-U,5-F,8-D -agg SUM -algo pj -m 100
//	njoin -graph yeast.graph -sets 3-U,8-D -k 10 -explain         # plan only
//	njoin -graph yeast.graph -sets 3-U,5-F,8-D -measure simrank -k 5
//
// By default (-algo auto) the cost-based planner picks the evaluation
// algorithm from the graph's structural stats and the query shape; -explain
// prints the chosen plan and the per-candidate cost table without running
// the join. -measure selects a scoring measure from the registry
// (internal/measure): walk measures reuse the DHT executors with the
// kernel's walk kind, while matrix measures such as simrank plan onto
// their dedicated executors (SR-AP).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/plan"
	"repro/internal/rankjoin"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file in text format (required)")
		setNames  = flag.String("sets", "", "comma-separated node set names, in query order (required)")
		shape     = flag.String("shape", "chain", "chain | triangle | star | clique")
		k         = flag.Int("k", 50, "number of answers")
		m         = flag.Int("m", 50, "per-edge 2-way join budget (PJ/PJ-i)")
		algo      = flag.String("algo", "auto", "auto (cost-based planner) | nl | ap | pj | pji")
		accuracy  = flag.String("accuracy", "exact", "planner kernel contract: exact | fast (certified fast kernel; identical answers)")
		explain   = flag.Bool("explain", false, "print the chosen plan and cost table without running the join")
		aggName   = flag.String("agg", "MIN", "aggregate: SUM | MIN | MAX | AVG")
		measureID = flag.String("measure", "", "scoring measure from the registry: dht | reach | ppr | simrank (default \"dht\")")
		lambda    = flag.Float64("lambda", 0.2, "DHTλ decay factor")
		useDHTE   = flag.Bool("dhte", false, "use the DHTe measure instead of DHTλ")
		usePPR    = flag.Bool("ppr", false, "join over Personalized PageRank (reach measure) with -lambda as damping factor")
		eps       = flag.Float64("eps", 1e-6, "truncation accuracy target (Lemma 1)")
		limit     = flag.Int("limit", 0, "trim each node set to its first N members (0 = all)")
		quiet     = flag.Bool("q", false, "print answers only, no timing")
	)
	flag.Parse()
	if err := run(*graphPath, *setNames, *shape, *k, *m, *algo, *accuracy, *aggName, *measureID, *lambda, *useDHTE, *usePPR, *eps, *limit, *quiet, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "njoin:", err)
		os.Exit(1)
	}
}

func run(graphPath, setNames, shape string, k, m int, algo, accuracy, aggName, measureID string, lambda float64, useDHTE, usePPR bool, eps float64, limit int, quiet, explain bool) error {
	if graphPath == "" || setNames == "" {
		return fmt.Errorf("-graph and -sets are required (see -h)")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, sets, err := graph.ReadText(f)
	if err != nil {
		return err
	}
	byName := make(map[string]*graph.NodeSet, len(sets))
	for _, s := range sets {
		byName[s.Name] = s
	}
	var chosen []*graph.NodeSet
	for _, name := range strings.Split(setNames, ",") {
		s, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("graph file declares no node set %q (has: %s)", name, names(sets))
		}
		if limit > 0 {
			s = s.Take(limit)
		}
		chosen = append(chosen, s)
	}

	var q *core.QueryGraph
	switch shape {
	case "chain":
		q = core.Chain(chosen...)
	case "triangle":
		if len(chosen) != 3 {
			return fmt.Errorf("triangle needs exactly 3 sets, got %d", len(chosen))
		}
		q = core.Triangle(chosen[0], chosen[1], chosen[2])
	case "star":
		q = core.Star(chosen[0], chosen[1:]...)
	case "clique":
		q = core.Clique(chosen...)
	default:
		return fmt.Errorf("unknown shape %q", shape)
	}

	agg, err := rankjoin.ByName(aggName)
	if err != nil {
		return err
	}
	// Resolve the measure kernel first ("" defaults to dht); its registered
	// defaults apply before the DHTλ fallback, mirroring the serving layer.
	kern, err := measure.Lookup(measureID)
	if err != nil {
		return err
	}
	var params dht.Params
	walkKind := dht.FirstHit
	switch {
	case useDHTE && usePPR:
		return fmt.Errorf("-dhte and -ppr are mutually exclusive")
	case useDHTE:
		params = dht.DHTE()
	case usePPR:
		params = dht.PPR(lambda)
		walkKind = dht.Reach
	}
	params = kern.ResolveParams(params)
	if params == (dht.Params{}) {
		params = dht.DHTLambda(lambda)
	}
	// An explicit -measure wins over the walk kind -ppr implies.
	if measureID != "" && kern.WalkBased {
		walkKind = kern.Walk
	}
	spec := core.Spec{
		Graph:   g,
		Query:   q,
		Params:  params,
		D:       params.StepsForEpsilon(eps),
		Agg:     agg,
		K:       k,
		Measure: walkKind,
	}

	// Resolve the -algo flag to a registered executor name ("" = planner).
	var forced string
	switch algo {
	case "auto":
	case "nl":
		forced = "NL"
	case "ap":
		forced = "AP"
	case "pj":
		forced = "PJ"
	case "pji":
		forced = "PJ-i"
	default:
		return fmt.Errorf("unknown algorithm %q (want auto, nl, ap, pj, or pji)", algo)
	}
	acc, err := plan.ParseAccuracy(accuracy)
	if err != nil {
		return err
	}
	w := plan.Workload{Stats: g.Stats(), K: k, M: m, D: spec.D, Accuracy: acc, Measure: kern.PlanMeasure}
	for _, s := range chosen {
		w.SetSizes = append(w.SetSizes, s.Len())
	}
	for _, e := range q.Edges() {
		w.QueryEdges = append(w.QueryEdges, [2]int{e.From, e.To})
	}
	pl, err := plan.Decide(plan.NWay, w, forced)
	if err != nil {
		return err
	}
	if explain {
		fmt.Print(pl.Format())
		return nil
	}
	alg, err := core.NewNamed(pl.Algorithm, spec, m)
	if err != nil {
		return err
	}

	start := time.Now()
	answers, err := alg.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	for i, a := range answers {
		fmt.Printf("%3d  %s\n", i+1, a.Format(g))
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "%s: %d answers in %v (d=%d, %s)\n",
			alg.Name(), len(answers), elapsed, spec.D, params)
	}
	return nil
}

func names(sets []*graph.NodeSet) string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = s.Name
	}
	return strings.Join(out, ", ")
}
