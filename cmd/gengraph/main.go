// Command gengraph generates the synthetic datasets (or generic random
// graphs) in the library's text or binary format, with summary statistics.
//
// Usage:
//
//	gengraph -kind dblp  -scale 0.1 -seed 1 -o dblp.graph
//	gengraph -kind yeast -seed 1 -format binary -o yeast.bin
//	gengraph -kind er -nodes 1000 -p 0.01 -o er.graph
//	gengraph -kind community -sizes 100,100,50 -pin 0.2 -pout 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "dblp", "dblp | yeast | youtube | er | ba | community | grid")
		scale  = flag.Float64("scale", 0.1, "scale for dblp/youtube")
		seed   = flag.Int64("seed", 1, "RNG seed")
		out    = flag.String("o", "-", "output file (- for stdout)")
		format = flag.String("format", "text", "text | binary")
		nodes  = flag.Int("nodes", 1000, "nodes for er/ba/grid width")
		p      = flag.Float64("p", 0.01, "edge probability for er/community pin")
		pout   = flag.Float64("pout", 0.02, "cross-community probability")
		m      = flag.Int("m", 3, "links per node for ba / grid height")
		sizes  = flag.String("sizes", "200,200,200", "community sizes for -kind community")
		stats  = flag.Bool("stats", true, "print graph statistics to stderr")
	)
	flag.Parse()

	g, sets, err := build(*kind, *scale, *seed, *nodes, *p, *pout, *m, *sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, graph.ComputeStats(g).String())
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *format == "binary" {
		err = graph.WriteBinary(w, g, sets...)
	} else {
		err = graph.WriteText(w, g, sets...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func build(kind string, scale float64, seed int64, nodes int, p, pout float64, m int, sizes string) (*graph.Graph, []*graph.NodeSet, error) {
	switch kind {
	case "dblp":
		d, err := dataset.DBLP(dataset.DBLPConfig{Scale: scale, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return d.Graph, d.Sets, nil
	case "yeast":
		d, err := dataset.Yeast(seed)
		if err != nil {
			return nil, nil, err
		}
		return d.Graph, d.Sets, nil
	case "youtube":
		d, err := dataset.YouTube(dataset.YouTubeConfig{Scale: scale, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return d.Graph, d.Sets, nil
	case "er":
		g, err := graph.GenerateER(nodes, p, seed)
		return g, nil, err
	case "ba":
		g, err := graph.GeneratePreferential(nodes, m, seed)
		return g, nil, err
	case "grid":
		g, err := graph.GenerateGrid(nodes, m)
		return g, nil, err
	case "community":
		var ns []int
		for _, f := range strings.Split(sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, nil, fmt.Errorf("bad -sizes entry %q", f)
			}
			ns = append(ns, v)
		}
		g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
			Sizes: ns, PIn: p, POut: pout, Seed: seed, MinOutLink: 1,
		})
		return g, sets, err
	}
	return nil, nil, fmt.Errorf("unknown kind %q", kind)
}
