// Command bench executes the quick-mode benchmark set in-process and emits
// a machine-readable BENCH_<rev>.json with ns/op, B/op, and allocs/op per
// benchmark, so the performance trajectory of the walk kernels and join
// algorithms is tracked per revision (CI uploads the file as an artifact;
// compare two revisions by diffing their JSON).
//
// Usage:
//
//	bench                  # run the full set, write BENCH_<git rev>.json
//	bench -rev pr2         # name the revision explicitly
//	bench -o out/          # write the file into a directory
//	bench -bench Fig9a     # run the benchmarks whose name contains a substring
//	bench -list            # list benchmark names and exit
//	bench -baseline bench/BENCH_pr5.json -threshold 2.5
//	                       # additionally print a benchstat-style old/new
//	                       # table against the baseline and exit non-zero
//	                       # when any shared benchmark regresses past the
//	                       # ns/op threshold factor (the CI bench job's
//	                       # regression gate)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/dhtjoin"
	"repro/internal/cluster"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/service"
)

// Result is one benchmark measurement, flattened for JSON.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the BENCH_<rev>.json document.
type Report struct {
	Rev     string   `json:"rev"`
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	Date    string   `json:"date"`
	Results []Result `json:"results"`
}

// spec is one registered benchmark.
type spec struct {
	name string
	fn   func(b *testing.B)
}

func main() {
	var (
		rev       = flag.String("rev", "", "revision label (default: git rev-parse --short HEAD)")
		outDir    = flag.String("o", ".", "directory to write BENCH_<rev>.json into")
		match     = flag.String("bench", "", "run only benchmarks whose name contains this substring")
		list      = flag.Bool("list", false, "list benchmark names and exit")
		baseline  = flag.String("baseline", "", "BENCH_*.json to compare against after the run (regression check)")
		threshold = flag.Float64("threshold", 1.5, "ns/op regression factor that fails the -baseline comparison")
		compare   = flag.String("compare", "", "compare this already-written BENCH_*.json against -baseline without running anything")
	)
	flag.Parse()

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "bench: -compare requires -baseline")
			os.Exit(2)
		}
		fresh, err := readReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := compareBaseline(*baseline, fresh, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}

	specs := benchSet()
	if *list {
		for _, s := range specs {
			fmt.Println(s.name)
		}
		return
	}
	if *rev == "" {
		*rev = gitRev()
	}

	rep := Report{
		Rev:    *rev,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		Date:   time.Now().UTC().Format(time.RFC3339),
	}
	for _, s := range specs {
		if *match != "" && !strings.Contains(s.name, *match) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", s.name)
		r := testing.Benchmark(s.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s failed (see output above)\n", s.name)
			os.Exit(1)
		}
		rep.Results = append(rep.Results, Result{
			Name:        s.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "  %d iters, %.0f ns/op, %d B/op, %d allocs/op\n",
			r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	path := filepath.Join(*outDir, "BENCH_"+*rev+".json")
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println(path)
	if *baseline != "" {
		if err := compareBaseline(*baseline, &rep, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// readReport loads a BENCH_*.json document.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

// compareBaseline prints a benchstat-style table of the fresh results
// against a checked-in baseline report and errors when any benchmark shared
// by both regresses in ns/op past the threshold factor. Benchmarks present
// on only one side are reported but never gate: a new benchmark has no
// baseline, and a retired one no longer matters. ns/op is only comparable
// between runs on the same machine — treat cross-machine comparisons (e.g.
// CI against a developer-recorded baseline) as advisory.
func compareBaseline(path string, fresh *Report, threshold float64) error {
	basePtr, err := readReport(path)
	if err != nil {
		return err
	}
	base := *basePtr
	old := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	fmt.Fprintf(os.Stderr, "\nvs baseline %s (rev %s):\n", path, base.Rev)
	fmt.Fprintf(os.Stderr, "%-28s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressions []string
	for _, r := range fresh.Results {
		b, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-28s %14s %14.0f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		fmt.Fprintf(os.Stderr, "%-28s %14.0f %14.0f %+7.1f%%\n", r.Name, b.NsPerOp, r.NsPerOp, delta)
		if b.NsPerOp > 0 && r.NsPerOp > b.NsPerOp*threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (×%.2f > ×%.2f)", r.Name, b.NsPerOp, r.NsPerOp, r.NsPerOp/b.NsPerOp, threshold))
		}
	}
	for _, r := range base.Results {
		found := false
		for _, f := range fresh.Results {
			if f.Name == r.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "%-28s %14.0f %14s %8s\n", r.Name, r.NsPerOp, "-", "gone")
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regressions past ×%.2f:\n  %s", threshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintln(os.Stderr, "no regressions past the threshold")
	return nil
}

// gitRev resolves the short revision of the working tree, "dev" when git is
// unavailable (e.g. a source tarball).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

// benchSet registers the quick-mode set: the experiment drivers the ISSUE
// acceptance targets name, the 2-way joiner benches, and the kernel
// microbenches (solo vs batched), mirroring the *_test.go benchmarks so the
// JSON numbers are directly comparable to `go test -bench` output.
func benchSet() []spec {
	var (
		envOnce bool
		env     *experiments.Env
	)
	getEnv := func(b *testing.B) *experiments.Env {
		b.Helper()
		if !envOnce {
			env = experiments.NewEnv(experiments.Quick())
			// Materialize the datasets outside the timed region.
			if _, err := env.Yeast(); err != nil {
				b.Fatal(err)
			}
			if _, err := env.DBLP(); err != nil {
				b.Fatal(err)
			}
			if _, err := env.YouTube(); err != nil {
				b.Fatal(err)
			}
			envOnce = true
		}
		return env
	}
	expBench := func(id string) func(b *testing.B) {
		return func(b *testing.B) {
			e := getEnv(b)
			r, err := experiments.ByID(id)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := r.Run(e)
				if err != nil {
					b.Fatal(err)
				}
				if len(tab.Rows) == 0 {
					b.Fatalf("%s produced an empty table", id)
				}
			}
		}
	}
	joinCfg := func(b *testing.B) join2.Config {
		b.Helper()
		g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
			Sizes: []int{800, 800, 800}, PIn: 0.008, POut: 0.008, Seed: 3, MinOutLink: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return join2.Config{
			Graph:  g,
			Params: dht.DHTLambda(0.2),
			D:      8,
			P:      sets[0].Nodes()[:100],
			Q:      sets[1].Nodes()[:100],
		}
	}
	joinBench := func(mk func(join2.Config) (join2.Joiner, error), k int) func(b *testing.B) {
		return func(b *testing.B) {
			j, err := mk(joinCfg(b))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.TopK(k); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	kernelBench := func(batchW, steps int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			qs := make([]graph.NodeID, 0, max(batchW, 1))
			n := cfg.Graph.NumNodes()
			if batchW <= 1 {
				e, err := dht.NewEngine(cfg.Graph, cfg.Params, cfg.D)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.BackWalkScores(dht.FirstHit, graph.NodeID(i%n), steps)
				}
				return
			}
			be, err := dht.NewBatchEngine(cfg.Graph, cfg.Params, cfg.D, batchW)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += batchW {
				qs = qs[:0]
				for c := 0; c < batchW && i+c < b.N; c++ {
					qs = append(qs, graph.NodeID((i+c)%n))
				}
				be.BackWalkScoresBatch(dht.FirstHit, qs, steps)
			}
		}
	}
	// The service pair: an identical repeated top-k workload through the
	// serving layer's shared pools/caches versus per-request construction —
	// the number that justifies njoind's existence. A third variant defeats
	// the result LRU to isolate the pool/memo reuse win.
	serviceBench := func(svcCfg *service.Config) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			p := service.SetRef{IDs: cfg.P}
			q := service.SetRef{IDs: cfg.Q}
			if svcCfg == nil { // one-shot: rebuild everything per request
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					j, err := join2.NewBIDJY(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := j.TopK(50); err != nil {
						b.Fatal(err)
					}
				}
				return
			}
			svc := service.New(*svcCfg)
			if err := svc.LoadGraph("g", cfg.Graph, nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Join2(context.Background(), "g", p, q, 50, service.Query{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// The streaming pair: time-to-first-result (open the incremental
	// stream with a minimal initial batch and pull once) versus a streamed
	// top-50 (same stream drained to 50). Compare the first against
	// BIDJYTop50 to see the latency the stream inversion buys, and the
	// second against BIDJYTop50 to see what incremental production costs
	// when the caller wants the full prefix anyway.
	streamBench := func(initial, pulls int) func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := join2.NewIncrementalStream(cfg, join2.BoundY, join2.StreamSpec{Initial: initial})
				if err != nil {
					b.Fatal(err)
				}
				for n := 0; n < pulls; n++ {
					if _, ok, err := st.Next(); err != nil || !ok {
						b.Fatalf("pull %d: ok=%v err=%v", n, ok, err)
					}
				}
				st.Release()
			}
		}
	}
	// The served stream: first result through the full service stack
	// (admission, session pool, memo) with the result cache defeated, so
	// the number tracks real streaming work, not a cache hit.
	serviceStreamBench := func() func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			svc := service.New(service.Config{ResultCacheSize: -1})
			if err := svc.LoadGraph("g", cfg.Graph, nil); err != nil {
				b.Fatal(err)
			}
			p := service.SetRef{IDs: cfg.P}
			q := service.SetRef{IDs: cfg.Q}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// M sizes the stream's initial batch; 1 minimizes latency.
				st, err := svc.OpenJoin2(ctx, "g", p, q, service.Query{M: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, ok, err := st.Next(); err != nil || !ok {
					b.Fatalf("first result: ok=%v err=%v", ok, err)
				}
				st.Stop()
			}
		}
	}
	// The planner pair: PlanOverhead prices one Explain — workload assembly
	// plus the full candidate cost table against the graph's cached stats —
	// which the acceptance bar holds under 100µs per query. The FullRanking
	// pair is the workload where the planner's non-default pick wins: at
	// k = |P|·|Q| nothing can be pruned, so B-IDJ-Y's deepening rounds are
	// pure overhead and the planner flips to B-BJ (one full-depth walk per
	// target). Both run the identical public batch path; only the algorithm
	// choice differs (PlannerFullRanking lets the planner pick, Forced
	// pins the old default via hints), so their delta is exactly the
	// planner's win.
	planBench := func() func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			qy := dhtjoin.NewPairQuery(cfg.Graph,
				graph.NewNodeSet("P", cfg.P), graph.NewNodeSet("Q", cfg.Q))
			ctx := context.Background()
			if _, err := qy.Explain(ctx); err != nil { // warm the stats cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qy.Explain(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	plannerFull := func(forced string) func(b *testing.B) {
		return func(b *testing.B) {
			// Walk-dominated shape: few sources, many targets. The backward
			// family pays one walk per target either way; demanding the full
			// ranking leaves B-IDJ-Y's deepening rounds nothing to prune.
			g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
				Sizes: []int{800, 800, 800}, PIn: 0.008, POut: 0.008, Seed: 3, MinOutLink: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			p := graph.NewNodeSet("P", sets[0].Nodes()[:5])
			q := graph.NewNodeSet("Q", sets[1].Nodes()[:400])
			qy := dhtjoin.NewPairQuery(g, p, q)
			if forced != "" {
				qy = qy.WithHints(dhtjoin.Hints{Algorithm: forced})
			}
			k := p.Len() * q.Len()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := qy.TopKPairs(ctx, k)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != k {
					b.Fatalf("got %d of %d pairs", len(res), k)
				}
			}
		}
	}
	// The certified fast-kernel trio. FastFBJTop50 is FBJTop50's workload
	// (same graph, sets, and k) through the forced certified backward
	// joiner: the float32 fast kernel scores all |P|·|Q| pairs pull-form
	// and the exact rescore touches only the ε-band around the cut — same
	// ranking as the exact F-BJ baseline at a fraction of the walk cost.
	// (The forward-certified joiner is deliberately NOT the fast path here:
	// per-pair forward sweeps are dense in the fast kernel, which is
	// exactly why the cost model prices F-BJ-fast out and routes the
	// workload backward. Forcing mirrors ForcedBIDJYFullRanking — at this
	// k the unforced planner may still prefer B-IDJ-Y by a hair, and the
	// bench must measure the certified executor, not the tie-breaking.)
	// FastFig7a is the Fig7a Yeast 2-way workload planned at fast accuracy
	// through the public facade. CertifiedFullRanking demands k = |P|·|Q|
	// from the forced certified backward joiner — the degenerate case where
	// every pair is re-verified, pricing the certification protocol's
	// floor.
	fastJoinTop50 := func() func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			qy := dhtjoin.NewPairQuery(cfg.Graph,
				graph.NewNodeSet("P", cfg.P), graph.NewNodeSet("Q", cfg.Q)).
				WithOptions(&dhtjoin.Options{Accuracy: "fast"}).
				WithHints(dhtjoin.Hints{Algorithm: "B-BJ-fast"})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qy.TopKPairs(ctx, 50); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	fastFig7a := func() func(b *testing.B) {
		return func(b *testing.B) {
			e := getEnv(b)
			d, err := e.Yeast()
			if err != nil {
				b.Fatal(err)
			}
			bySize := append([]*graph.NodeSet(nil), d.Sets...)
			sort.SliceStable(bySize, func(i, j int) bool { return bySize[i].Len() > bySize[j].Len() })
			p, err := d.TopByDegree(bySize[0].Name, e.Cfg.SetSize)
			if err != nil {
				b.Fatal(err)
			}
			q, err := d.TopByDegree(bySize[1].Name, e.Cfg.SetSize)
			if err != nil {
				b.Fatal(err)
			}
			qy := dhtjoin.NewPairQuery(d.Graph, p, q).
				WithOptions(&dhtjoin.Options{Accuracy: "fast"})
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := qy.TopKPairs(ctx, e.Cfg.K); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// The measure pair: the same served top-50 workload under the two
	// non-default kernels. PPR runs the walk machinery with the reach fold
	// (ServiceJoin2ColdResults is the dht-measure twin); SimRank runs
	// SR-SCAN on a smaller graph — the dense fixed point is resolved by a
	// warm-up query outside the timed region, so the number prices the
	// steady state njoind serves: a heap scan over the cached matrix.
	measureJoinBench := func(measureName string) func(b *testing.B) {
		return func(b *testing.B) {
			var cfg join2.Config
			if measureName == "simrank" {
				g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
					Sizes: []int{250, 250}, PIn: 0.02, POut: 0.01, Directed: true, Seed: 3, MinOutLink: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				cfg = join2.Config{Graph: g, P: sets[0].Nodes()[:100], Q: sets[1].Nodes()[:100]}
			} else {
				cfg = joinCfg(b)
			}
			svc := service.New(service.Config{ResultCacheSize: -1})
			if err := svc.LoadGraph("g", cfg.Graph, nil); err != nil {
				b.Fatal(err)
			}
			p := service.SetRef{IDs: cfg.P}
			q := service.SetRef{IDs: cfg.Q}
			qy := service.Query{MeasureName: measureName}
			ctx := context.Background()
			if _, err := svc.Join2(ctx, "g", p, q, 50, qy); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Join2(ctx, "g", p, q, 50, qy); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	// The cluster scatter bench: the ServiceJoin2 workload through a real
	// 3-node in-process cluster — three services, three loopback RPC
	// listeners, the graph sharded 3 ways with 2 replicas — so the number
	// prices what shard-and-scatter costs over the single-node path
	// (ServiceJoin2ColdResults is the closest apples-to-apples baseline:
	// routed queries bypass the result cache too). Setup (cluster boot,
	// segment shipping) sits outside the timed region; each iteration is a
	// full scatter: open shard streams, τ-bounded merge, drain to 50.
	clusterScatterBench := func() func(b *testing.B) {
		return func(b *testing.B) {
			cfg := joinCfg(b)
			nodes := make([]*cluster.Node, 3)
			svcs := make([]*service.Service, 3)
			for i := range nodes {
				svc := service.New(service.Config{MaxConcurrency: 16})
				nd, err := cluster.Start(cluster.Config{
					Name:    fmt.Sprintf("node-%d", i),
					Bind:    "127.0.0.1:0",
					Service: svc,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer nd.Close()
				svc.SetRouter(nd)
				nodes[i], svcs[i] = nd, svc
			}
			ctx := context.Background()
			addrs := make([]string, len(nodes))
			for i, nd := range nodes {
				addrs[i] = nd.Self().Addr
			}
			for _, nd := range nodes {
				if err := nd.Join(ctx, addrs); err != nil {
					b.Fatal(err)
				}
			}
			// Placement is deterministic in (node names, graph name):
			// "zipf" is a name whose parts land on peers of node-0, so the
			// timed queries really scatter instead of collapsing to the
			// local path.
			if err := svcs[0].LoadGraph("zipf", cfg.Graph, nil); err != nil {
				b.Fatal(err)
			}
			if err := nodes[0].PlaceGraph(ctx, "zipf", 3, 2); err != nil {
				b.Fatal(err)
			}
			// Stride P and Q across the whole node range: the partitioner
			// splits the ID space into contiguous ranges, and a P set
			// concentrated in one community would leave the other parts
			// empty (nothing to scatter). Same |P|, |Q|, and k as the
			// ServiceJoin2 benches.
			nn := cfg.Graph.NumNodes()
			pids := make([]graph.NodeID, 100)
			qids := make([]graph.NodeID, 100)
			for i := range pids {
				pids[i] = graph.NodeID(i * nn / 100)
				qids[i] = graph.NodeID((i*nn/100 + nn/200) % nn)
			}
			p := service.SetRef{IDs: pids}
			q := service.SetRef{IDs: qids}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svcs[0].Join2(ctx, "zipf", p, q, 50, service.Query{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if rs := nodes[0].RouterStats(); rs.ScatterQueries == 0 {
				b.Fatal("cluster bench never scattered: placement kept every part local")
			}
		}
	}
	return []spec{
		{"Fig9a2WayAlgos", expBench("fig9a")},
		{"Fig7aYeastVsN", expBench("fig7a")},
		{"Fig10bPruning", expBench("fig10b")},
		{"BBJTop50", joinBench(func(c join2.Config) (join2.Joiner, error) { return join2.NewBBJ(c) }, 50)},
		{"BIDJXTop50", joinBench(func(c join2.Config) (join2.Joiner, error) { return join2.NewBIDJX(c) }, 50)},
		{"BIDJYTop50", joinBench(func(c join2.Config) (join2.Joiner, error) { return join2.NewBIDJY(c) }, 50)},
		{"FBJTop50", joinBench(func(c join2.Config) (join2.Joiner, error) { return join2.NewFBJ(c) }, 50)},
		{"BackWalkSolo", kernelBench(1, 8)},
		{"BatchBackWalkW8", kernelBench(8, 8)},
		{"StreamFirstResult", streamBench(1, 1)},
		{"StreamTop50", streamBench(1, 50)},
		{"ServiceStreamFirstResult", serviceStreamBench()},
		{"ServiceJoin2Repeat", serviceBench(&service.Config{})},
		{"ServiceJoin2ColdResults", serviceBench(&service.Config{ResultCacheSize: -1})},
		{"OneShotJoin2Repeat", serviceBench(nil)},
		{"PlanOverhead", planBench()},
		{"PlannerFullRanking", plannerFull("")},
		{"ForcedBIDJYFullRanking", plannerFull("B-IDJ-Y")},
		{"FastFBJTop50", fastJoinTop50()},
		{"FastFig7a", fastFig7a()},
		{"CertifiedFullRanking", plannerFull("B-BJ-fast")},
		{"PPRJoinTop50", measureJoinBench("ppr")},
		{"SimRankJoinTop50", measureJoinBench("simrank")},
		{"ClusterScatterTop50", clusterScatterBench()},
	}
}
