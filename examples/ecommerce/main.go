// E-commerce matchmaking (paper Example 3): a retailer looks for new
// manufacturers and customers. The social graph connects manufacturers (M),
// retailers (R), and customers (C); a chain 3-way join M → R → C surfaces
// triples where the manufacturer is near the retailer and the retailer near
// the customer. This example builds its graph entirely through the public
// API — no internal packages.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dhtjoin"
)

const (
	numManufacturers = 30
	numRetailers     = 40
	numCustomers     = 120
)

func main() {
	rng := rand.New(rand.NewSource(11))
	n := numManufacturers + numRetailers + numCustomers
	b := dhtjoin.NewBuilder(n, false)

	mStart, rStart, cStart := 0, numManufacturers, numManufacturers+numRetailers
	label := func(i int) string {
		switch {
		case i < rStart:
			return fmt.Sprintf("Maker-%02d", i-mStart)
		case i < cStart:
			return fmt.Sprintf("Shop-%02d", i-rStart)
		default:
			return fmt.Sprintf("Cust-%03d", i-cStart)
		}
	}
	for i := 0; i < n; i++ {
		b.SetLabel(dhtjoin.NodeID(i), label(i))
	}

	// Each retailer deals with a few manufacturers (weight = order volume)
	// and serves a crowd of customers; customers also know each other.
	for r := rStart; r < cStart; r++ {
		for range [3]struct{}{} {
			m := mStart + rng.Intn(numManufacturers)
			b.AddEdge(dhtjoin.NodeID(r), dhtjoin.NodeID(m), float64(1+rng.Intn(5)))
		}
		for range [6]struct{}{} {
			c := cStart + rng.Intn(numCustomers)
			b.AddEdge(dhtjoin.NodeID(r), dhtjoin.NodeID(c), 1)
		}
	}
	for c := cStart; c < n; c++ {
		friend := cStart + rng.Intn(numCustomers)
		if friend != c {
			b.AddEdge(dhtjoin.NodeID(c), dhtjoin.NodeID(friend), 1)
		}
	}
	// A few manufacturer–manufacturer supplier links keep M connected.
	for m := mStart; m < rStart; m++ {
		other := mStart + rng.Intn(numManufacturers)
		if other != m {
			b.AddEdge(dhtjoin.NodeID(m), dhtjoin.NodeID(other), 1)
		}
	}
	g := b.Build()

	ids := func(start, count int) []dhtjoin.NodeID {
		out := make([]dhtjoin.NodeID, count)
		for i := range out {
			out[i] = dhtjoin.NodeID(start + i)
		}
		return out
	}
	manufacturers := dhtjoin.NewNodeSet("M", ids(mStart, numManufacturers))
	retailers := dhtjoin.NewNodeSet("R", ids(rStart, numRetailers))
	customers := dhtjoin.NewNodeSet("C", ids(cStart, numCustomers))

	// Chain query M → R → C with SUM: overall closeness along the supply
	// chain.
	answers, err := dhtjoin.TopK(g, dhtjoin.Chain(manufacturers, retailers, customers), 8,
		&dhtjoin.Options{Agg: dhtjoin.Sum})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top manufacturer → retailer → customer matches:")
	for i, a := range answers {
		fmt.Printf("  %d. %-9s → %-8s → %-9s  f=%.4f\n",
			i+1, g.Label(a.Nodes[0]), g.Label(a.Nodes[1]), g.Label(a.Nodes[2]), a.Score)
	}

	// A retailer-centric follow-up: for the best retailer above, list its
	// closest manufacturers directly with a 2-way join.
	best := dhtjoin.NewNodeSet("best-R", []dhtjoin.NodeID{answers[0].Nodes[1]})
	pairs, err := dhtjoin.TopKPairs(g, manufacturers, best, 5, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclosest manufacturers to %s:\n", g.Label(answers[0].Nodes[1]))
	for i, r := range pairs {
		fmt.Printf("  %d. %-9s  h=%.4f\n", i+1, g.Label(r.Pair.P), r.Score)
	}
}
