// Personalized-PageRank joins (the extension named in the paper's
// conclusion): the same multi-way join machinery runs over reach-based walk
// measures. This example joins the Yeast protein classes under both the
// paper's first-hit DHT and Personalized PageRank and compares the top
// pairs the two measures select.
package main

import (
	"fmt"
	"log"

	"repro/dhtjoin"
	"repro/internal/dataset"
)

func main() {
	yeast, err := dataset.Yeast(1)
	if err != nil {
		log.Fatal(err)
	}
	p3u, err := yeast.TopByDegree("3-U", 80)
	if err != nil {
		log.Fatal(err)
	}
	p8d, err := yeast.TopByDegree("8-D", 80)
	if err != nil {
		log.Fatal(err)
	}

	dhtOpts := &dhtjoin.Options{Params: dhtjoin.DHTLambda(0.2)}
	// Naming the measure pulls params and walk kind from the registry
	// (ppr defaults to damping 0.5 over the reach fold) — the registered
	// spelling of the old {Params: PPR(0.5), Measure: MeasureReach} pair.
	pprOpts := &dhtjoin.Options{MeasureName: "ppr"}

	dhtPairs, err := dhtjoin.TopKPairs(yeast.Graph, p3u, p8d, 10, dhtOpts)
	if err != nil {
		log.Fatal(err)
	}
	pprPairs, err := dhtjoin.TopKPairs(yeast.Graph, p3u, p8d, 10, pprOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top (3-U, 8-D) protein pairs under two walk measures:")
	fmt.Printf("%-4s  %-22s  %-22s\n", "rank", "DHTλ (first-hit)", "PPR (reach)")
	for i := 0; i < 10; i++ {
		fmt.Printf("%-4d  %4d–%-4d  h=%8.5f  %4d–%-4d  π=%8.5f\n",
			i+1,
			dhtPairs[i].Pair.P, dhtPairs[i].Pair.Q, dhtPairs[i].Score,
			pprPairs[i].Pair.P, pprPairs[i].Pair.Q, pprPairs[i].Score)
	}

	overlap := 0
	in := make(map[dhtjoin.Pair]bool, len(dhtPairs))
	for _, r := range dhtPairs {
		in[r.Pair] = true
	}
	for _, r := range pprPairs {
		if in[r.Pair] {
			overlap++
		}
	}
	fmt.Printf("\nthe two measures agree on %d of 10 top pairs\n", overlap)

	// The n-way machinery is measure-agnostic too: a PPR triangle join.
	p5f, err := yeast.TopByDegree("5-F", 80)
	if err != nil {
		log.Fatal(err)
	}
	tri, err := dhtjoin.TopK(yeast.Graph, dhtjoin.Triangle(p3u, p5f, p8d), 5, pprOpts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 protein triples under PPR (triangle query, MIN):")
	for i, a := range tri {
		fmt.Printf("  %d. (%d, %d, %d)  f=%.5f\n", i+1, a.Nodes[0], a.Nodes[1], a.Nodes[2], a.Score)
	}
}
