// Link prediction (paper §VII-B.2, Example 1): hide half of the
// protein-interaction edges between the two largest Yeast classes, rank the
// candidate pairs with a 2-way DHT join on the remaining graph, and measure
// how well the ranking rediscovers the hidden interactions (ROC / AUC).
package main

import (
	"fmt"
	"log"

	"repro/dhtjoin"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	yeast, err := dataset.Yeast(1)
	if err != nil {
		log.Fatal(err)
	}
	p, q := yeast.MustSet("3-U"), yeast.MustSet("8-D")
	fmt.Printf("Yeast PPI: %d proteins, %d interactions; P=%s (%d), Q=%s (%d)\n",
		yeast.Graph.NumNodes(), yeast.Graph.NumEdges()/2, p.Name, p.Len(), q.Name, q.Len())

	// Hide half of the (P, Q) interactions.
	testG, removed := dataset.SplitCross(yeast.Graph, p, q, 0.5, 42)
	fmt.Printf("hidden %d interactions; predicting them from the rest\n\n", len(removed))

	// Rank every unlinked (p, q) pair on the test graph and evaluate.
	params := dhtjoin.DHTLambda(0.2)
	res, err := eval.LinkPrediction(yeast.Graph, testG, p, q, params, dhtjoin.Steps(params, 1e-6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AUC = %.4f over %d candidate pairs\n", res.AUC, len(res.Samples))
	fmt.Println("ROC (FPR → TPR):")
	for _, fpr := range []float64{0.05, 0.1, 0.2, 0.5} {
		fmt.Printf("  %.2f → %.3f\n", fpr, tprAt(res.ROC, fpr))
	}

	// The actionable output: the top predicted missing interactions.
	top, err := dhtjoin.TopKPairs(testG, p, q, 200, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop predicted new interactions (not in the test graph):")
	shown := 0
	for _, r := range top {
		if testG.HasEdge(r.Pair.P, r.Pair.Q) || r.Pair.P == r.Pair.Q {
			continue
		}
		verdict := "miss"
		if yeast.Graph.HasEdge(r.Pair.P, r.Pair.Q) {
			verdict = "HIT (hidden edge recovered)"
		}
		fmt.Printf("  protein %4d – protein %4d   h=%.4f   %s\n", r.Pair.P, r.Pair.Q, r.Score, verdict)
		shown++
		if shown == 10 {
			break
		}
	}
}

func tprAt(roc []eval.Point, fpr float64) float64 {
	for i := 1; i < len(roc); i++ {
		if roc[i].FPR >= fpr {
			a, b := roc[i-1], roc[i]
			if b.FPR == a.FPR {
				return b.TPR
			}
			return a.TPR + (fpr-a.FPR)/(b.FPR-a.FPR)*(b.TPR-a.TPR)
		}
	}
	return 1
}
