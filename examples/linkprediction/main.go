// Link prediction (paper §VII-B.2, Example 1): hide half of the
// protein-interaction edges between the two largest Yeast classes, rank the
// candidate pairs with a 2-way DHT join on the remaining graph, and measure
// how well the ranking rediscovers the hidden interactions (ROC / AUC).
//
// The predictions are served, not computed offline: the test graph is loaded
// into an embedded serving stack (the same internal/service njoind runs) and
// the rankings come back through measure-named queries — first under the
// paper's DHT, then under personalized PageRank for comparison — so repeated
// queries share the service's engines, memos, and result cache.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dhtjoin"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	yeast, err := dataset.Yeast(1)
	if err != nil {
		log.Fatal(err)
	}
	p, q := yeast.MustSet("3-U"), yeast.MustSet("8-D")
	fmt.Printf("Yeast PPI: %d proteins, %d interactions; P=%s (%d), Q=%s (%d)\n",
		yeast.Graph.NumNodes(), yeast.Graph.NumEdges()/2, p.Name, p.Len(), q.Name, q.Len())

	// Hide half of the (P, Q) interactions.
	testG, removed := dataset.SplitCross(yeast.Graph, p, q, 0.5, 42)
	fmt.Printf("hidden %d interactions; predicting them from the rest\n\n", len(removed))

	// Rank every unlinked (p, q) pair on the test graph and evaluate.
	params := dhtjoin.DHTLambda(0.2)
	res, err := eval.LinkPrediction(yeast.Graph, testG, p, q, params, dhtjoin.Steps(params, 1e-6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AUC = %.4f over %d candidate pairs\n", res.AUC, len(res.Samples))
	fmt.Println("ROC (FPR → TPR):")
	for _, fpr := range []float64{0.05, 0.1, 0.2, 0.5} {
		fmt.Printf("  %.2f → %.3f\n", fpr, tprAt(res.ROC, fpr))
	}

	// Serve the actionable output. The service resolves "measure" through
	// the registry exactly like njoind's HTTP endpoints do.
	svc := dhtjoin.NewService(dhtjoin.ServiceConfig{})
	if err := svc.LoadGraph("yeast-test", testG, p, q); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("\ntop predicted new interactions (served, measure=dht):")
	top, err := svc.TopKPairs(ctx, "yeast-test", p, q, 200, nil)
	if err != nil {
		log.Fatal(err)
	}
	hidden := printPredictions(yeast, testG, top, 10)

	// The same served query under personalized PageRank: one options field
	// switches the kernel, the admission/caching path stays identical.
	pprTop, err := svc.TopKPairs(ctx, "yeast-test", p, q, 200, &dhtjoin.Options{MeasureName: "ppr"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop predicted new interactions (served, measure=ppr):")
	pprHidden := printPredictions(yeast, testG, pprTop, 10)
	fmt.Printf("\nhidden edges recovered in the top 10 predictions: dht %d, ppr %d\n",
		hidden, pprHidden)
}

// printPredictions lists the first n ranked pairs that are candidate links
// (absent from the test graph) and reports how many are hidden true edges.
func printPredictions(full *dataset.Dataset, testG *dhtjoin.Graph, top []dhtjoin.PairResult, n int) int {
	shown, hits := 0, 0
	for _, r := range top {
		if testG.HasEdge(r.Pair.P, r.Pair.Q) || r.Pair.P == r.Pair.Q {
			continue
		}
		verdict := "miss"
		if full.Graph.HasEdge(r.Pair.P, r.Pair.Q) {
			verdict = "HIT (hidden edge recovered)"
			hits++
		}
		fmt.Printf("  protein %4d – protein %4d   h=%.4f   %s\n", r.Pair.P, r.Pair.Q, r.Score, verdict)
		shown++
		if shown == n {
			break
		}
	}
	return hits
}

func tprAt(roc []eval.Point, fpr float64) float64 {
	for i := 1; i < len(roc); i++ {
		if roc[i].FPR >= fpr {
			a, b := roc[i-1], roc[i]
			if b.FPR == a.FPR {
				return b.TPR
			}
			return a.TPR + (fpr-a.FPR)/(b.FPR-a.FPR)*(b.TPR-a.TPR)
		}
	}
	return 1
}
