// Lab recruiter (paper Example 2): a researcher assembling a
// cross-disciplinary lab runs a triangle 3-way join over the Database, AI,
// and Systems author communities of a bibliographic graph. The answers are
// triples of authors who are all close to each other in co-authorship
// space, making them strong candidates for a joint lab.
package main

import (
	"fmt"
	"log"

	"repro/dhtjoin"
	"repro/internal/dataset"
)

func main() {
	dblp, err := dataset.DBLP(dataset.DBLPConfig{Scale: 0.08, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBLP co-authorship graph: %d authors, %d edges\n",
		dblp.Graph.NumNodes(), dblp.Graph.NumEdges()/2)

	// The paper selects the 100 most-published authors of each area.
	top := func(area string) *dhtjoin.NodeSet {
		s, err := dblp.TopByDegree(area, 100)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	db, ai, sys := top("DB"), top("AI"), top("SYS")

	// Triangle query: every pair among (DB, AI, SYS) must be close; MIN
	// aggregation scores a triple by its weakest tie.
	// Distinct matters here: authors may belong to two areas, and without it
	// the degenerate "same person twice" tuples would top the list.
	query := dhtjoin.Triangle(db, ai, sys)
	answers, err := dhtjoin.TopK(dblp.Graph, query, 5, &dhtjoin.Options{Agg: dhtjoin.Min, Distinct: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 cross-disciplinary lab candidates (triangle query):")
	for i, a := range answers {
		fmt.Printf("  %d. DB: %-22s AI: %-22s SYS: %-22s  f=%.4f\n",
			i+1, dblp.Graph.Label(a.Nodes[0]), dblp.Graph.Label(a.Nodes[1]),
			dblp.Graph.Label(a.Nodes[2]), a.Score)
	}

	// The chain query (AI → DB → SYS) asks a different question: AI authors
	// close to DB authors who are close to SYS authors — AI and SYS need
	// not collaborate directly. The paper's Table III shows the two result
	// sets diverge; verify that here.
	chain, err := dhtjoin.TopK(dblp.Graph, dhtjoin.Chain(ai, db, sys), 5, &dhtjoin.Options{Agg: dhtjoin.Min, Distinct: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 under the chain query (AI → DB → SYS):")
	for i, a := range chain {
		fmt.Printf("  %d. AI: %-22s DB: %-22s SYS: %-22s  f=%.4f\n",
			i+1, dblp.Graph.Label(a.Nodes[0]), dblp.Graph.Label(a.Nodes[1]),
			dblp.Graph.Label(a.Nodes[2]), a.Score)
	}
}
