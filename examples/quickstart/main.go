// Quickstart: build a small social graph in memory, score node closeness
// with discounted hitting time, run a top-k 2-way join and a top-k 3-way
// join — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/dhtjoin"
)

func main() {
	// The example graph of the paper's Figure 1(a), loosely: two interest
	// groups inside one friendship network.
	//
	//   soccer fans:     0 1 2
	//   basketball fans: 6 7
	//   connectors:      3 4 5
	names := []string{"Ana", "Bo", "Cleo", "Dev", "Eli", "Fay", "Gus", "Hana"}
	b := dhtjoin.NewBuilder(len(names), false) // undirected friendships
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, // soccer clique
		{2, 3}, {3, 4}, {4, 5}, // connectors
		{1, 4},                 // Bo knows Eli
		{5, 6}, {6, 7}, {5, 7}, // basketball clique
	}
	for _, e := range edges {
		b.AddEdge(dhtjoin.NodeID(e[0]), dhtjoin.NodeID(e[1]), 1)
	}
	g := b.Build()

	soccer := dhtjoin.NewNodeSet("soccer", []dhtjoin.NodeID{0, 1, 2})
	basket := dhtjoin.NewNodeSet("basketball", []dhtjoin.NodeID{6, 7})
	bridge := dhtjoin.NewNodeSet("connectors", []dhtjoin.NodeID{3, 4, 5})

	// One pairwise DHT score (defaults: DHTλ, λ=0.2, ε=1e-6 → d=8).
	s, err := dhtjoin.Score(g, 1, 6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("h(%s, %s) = %.4f\n\n", names[1], names[6], s)

	// Top-3 2-way join: which soccer fan / basketball fan pairs are closest?
	pairs, err := dhtjoin.TopKPairs(g, soccer, basket, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top soccer–basketball pairs (friend suggestions):")
	for i, r := range pairs {
		fmt.Printf("  %d. %s – %s   h=%.4f\n", i+1, names[r.Pair.P], names[r.Pair.Q], r.Score)
	}

	// Top-3 3-way chain join: soccer → connector → basketball.
	answers, err := dhtjoin.TopK(g, dhtjoin.Chain(soccer, bridge, basket), 3, &dhtjoin.Options{
		Agg: dhtjoin.Sum, // rank by overall closeness along the chain
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop soccer → connector → basketball chains:")
	for i, a := range answers {
		fmt.Printf("  %d. %s – %s – %s   f=%.4f\n",
			i+1, names[a.Nodes[0]], names[a.Nodes[1]], names[a.Nodes[2]], a.Score)
	}
}
