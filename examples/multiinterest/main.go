// Multi-interest group formation (paper Example 4): Mary, a sports
// photographer, wants a group with one hobbyist from each of five sports,
// everyone close to her photography community. A 6-way star join with the
// photography group at the centre answers it in one query.
//
// The query is served: the social graph lives in an embedded serving stack
// (the same internal/service njoind runs), the star join is a service call,
// and the scoring measure is named per query through the measure registry —
// the paper's DHT first, then personalized PageRank over the identical
// query, so the two rosters are directly comparable.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/dhtjoin"
	"repro/internal/dataset"
)

func main() {
	// A scaled-down YouTube-like friendship graph with interest groups.
	yt, err := dataset.YouTube(dataset.YouTubeConfig{Scale: 0.05, Seed: 3, Groups: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d friendships, %d interest groups\n",
		yt.Graph.NumNodes(), yt.Graph.NumEdges()/2, len(yt.Sets))

	// Cast the first six groups as the paper's interest groups. Trim each
	// to its 20 best-connected members to keep the demo snappy.
	sports := []string{"Photography", "Soccer", "Basketball", "Hockey", "Golf", "Tennis"}
	sets := make([]*dhtjoin.NodeSet, len(sports))
	for i := range sports {
		s, err := yt.TopByDegree(fmt.Sprint(i+1), 20)
		if err != nil {
			log.Fatal(err)
		}
		sets[i] = dhtjoin.NewNodeSet(sports[i], s.Nodes())
	}

	svc := dhtjoin.NewService(dhtjoin.ServiceConfig{})
	if err := svc.LoadGraph("youtube", yt.Graph); err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Star query: each sports group points at the photography centre; MIN
	// makes the weakest tie to the centre the ranking criterion. Groups
	// overlap (a user can like two sports), so ask for distinct users.
	query := dhtjoin.Star(sets[0], sets[1:]...)
	opts := dhtjoin.Options{Agg: dhtjoin.Min, M: 30, Distinct: true}
	answers, err := svc.TopK(ctx, "youtube", query, 5, &opts)
	if err != nil {
		log.Fatal(err)
	}
	printRosters("measure=dht", sports, answers)

	// The identical served query under personalized PageRank: naming the
	// measure is the only change, and the registry resolves the kernel's
	// own default parameters (damping 0.5).
	pprOpts := opts
	pprOpts.MeasureName = "ppr"
	pprAnswers, err := svc.TopK(ctx, "youtube", query, 5, &pprOpts)
	if err != nil {
		log.Fatal(err)
	}
	printRosters("measure=ppr", sports, pprAnswers)
}

func printRosters(measure string, sports []string, answers []dhtjoin.Answer) {
	fmt.Printf("\ntop-5 multi-interest group rosters (star query, MIN, %s):\n", measure)
	for i, a := range answers {
		fmt.Printf("  roster %d (f=%.4f):\n", i+1, a.Score)
		for j, node := range a.Nodes {
			fmt.Printf("      %-11s user %5d\n", sports[j]+":", node)
		}
	}
}
