// Package repro is a from-scratch Go reproduction of Zhang, Cheng, and Kao,
// "Evaluating Multi-Way Joins over Discounted Hitting Time" (ICDE 2014).
//
// The public API lives in the dhtjoin subpackage, built around a
// query-centric streaming model: a dhtjoin.Query executes as a
// context-aware iter.Seq2 of rank-ordered results (break to stop the join
// early), with batch top-k calls kept as thin wrappers that drain the
// stream. The evaluation operator is chosen per query by a cost-based
// planner (internal/plan) over every registered 2-way and n-way executor;
// Query.Explain reports the decision and Query.WithHints forces one. The
// implementation is in internal/ (graph substrate, DHT engine, 2-way
// joins, rank join, multi-way join operators, planner, synthetic datasets,
// evaluation, and experiment drivers), and cmd/njoind serves the same
// streams over HTTP as NDJSON. The benchmarks in this package regenerate
// every table and figure of the paper's evaluation section; see DESIGN.md
// and EXPERIMENTS.md.
package repro
