// Package repro is a from-scratch Go reproduction of Zhang, Cheng, and Kao,
// "Evaluating Multi-Way Joins over Discounted Hitting Time" (ICDE 2014).
//
// The public API lives in the dhtjoin subpackage; the implementation is in
// internal/ (graph substrate, DHT engine, 2-way joins, rank join, multi-way
// join operators, synthetic datasets, evaluation, and experiment drivers).
// The benchmarks in this package regenerate every table and figure of the
// paper's evaluation section; see DESIGN.md and EXPERIMENTS.md.
package repro
