// Package ppr computes Personalized PageRank columns — the proximity
// measure the source paper's conclusion names as the intended extension of
// the join framework. It is the promotion of examples/pprjoin into a
// first-class evaluator pair:
//
//   - PowerIteration: the truncated series π_d(s,v) = Σ_{i=1..d} (1−c)·c^i·S_i(s,v),
//     exactly the value the dht walk engine computes under Kind Reach with
//     dht.PPR(c) parameters (α = 1−c, β = 0, λ = c). The i = 0 self term is
//     excluded, matching the DHT convention that a node's proximity to
//     itself is not part of the measure.
//   - ForwardPush: the classic local-push approximation of the untruncated
//     π(s,·) with a certified residual bound — every returned score is an
//     underestimate by at most the total unpushed residual.
//
// Both evaluators share the engine's dangling-node semantics: a walk that
// reaches a node with no out-edges dies there (its mass is lost), it is not
// teleported back to the source. This keeps ppr bit-compatible with the
// reach walks the join executors run, which is what the golden tests in
// this package pin.
package ppr

import (
	"fmt"

	"repro/internal/graph"
)

// validate checks the shared preconditions of both evaluators.
func validate(g *graph.Graph, c float64, src graph.NodeID) error {
	if g == nil {
		return fmt.Errorf("ppr: nil graph")
	}
	if !(c > 0 && c < 1) {
		return fmt.Errorf("ppr: damping factor must lie in (0,1), got %g", c)
	}
	if int(src) < 0 || int(src) >= g.NumNodes() {
		return fmt.Errorf("ppr: source %d out of range [0,%d)", src, g.NumNodes())
	}
	return nil
}

// PowerIteration returns the truncated PPR column from src:
//
//	out[v] = π_d(src, v) = Σ_{i=1..d} (1−c)·c^i·S_i(src, v),
//
// where S_i is the i-step reach probability of the graph's natural random
// walk. d must be ≥ 1. The result matches the dht Reach engine with
// dht.PPR(c) parameters up to floating-point summation order.
func PowerIteration(g *graph.Graph, c float64, src graph.NodeID, d int) ([]float64, error) {
	if err := validate(g, c, src); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("ppr: depth must be >= 1, got %d", d)
	}
	n := g.NumNodes()
	out := make([]float64, n)
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[src] = 1
	pow := 1.0
	for i := 1; i <= d; i++ {
		pow *= c
		for i := range next {
			next[i] = 0
		}
		live := false
		for u := 0; u < n; u++ {
			m := cur[u]
			if m == 0 {
				continue
			}
			to, _, p := g.OutEdges(graph.NodeID(u))
			// A dangling node has no out-edges: its mass dies here, the
			// walk is not restarted (engine frontier semantics).
			for j := range to {
				next[to[j]] += m * p[j]
				live = true
			}
		}
		if !live {
			break // all mass lost in sinks; S_j = 0 from here on
		}
		w := (1 - c) * pow
		for v := range next {
			out[v] += w * next[v]
		}
		cur, next = next, cur
	}
	return out, nil
}

// PushResult is a ForwardPush approximation with its certificate.
type PushResult struct {
	// Scores[v] underestimates the untruncated π(src, v): for every v,
	//
	//	0 ≤ π(src, v) − Scores[v] ≤ Residual.
	Scores []float64
	// Residual is the total unpushed residual mass Σ_u r(u) at
	// termination — the certified uniform error bound above.
	Residual float64
	// Pushes counts local push operations performed.
	Pushes int
}

// ForwardPush approximates the untruncated π(src, ·) by local pushes: it
// maintains the invariant
//
//	pr(src, ·) = p̂(·) + Σ_u r(u)·pr(u, ·)
//
// over pr(s, v) = (1−c)·Σ_{i≥0} c^i·S_i(s, v) (the series including the
// i = 0 self term), pushing any node whose residual exceeds eps:
// p̂(u) += (1−c)·r(u), then r(w) += c·r(u)·p(u→w) for each out-neighbour.
// At a dangling node the c·r(u) fraction vanishes, matching the walk
// engine. Since Σ_v pr(u, v) ≤ 1 and pr ≥ 0, the invariant yields
// 0 ≤ pr(src, v) − p̂(v) ≤ Σ_u r(u) pointwise. The returned Scores subtract
// the (1−c) self term at src, so they estimate the same no-self-term π the
// join measures use, with the identical certificate.
//
// Each push moves at least (1−c)·eps into p̂ and Σ p̂ ≤ 1, so the loop
// terminates after at most 1/((1−c)·eps) pushes.
func ForwardPush(g *graph.Graph, c float64, src graph.NodeID, eps float64) (PushResult, error) {
	if err := validate(g, c, src); err != nil {
		return PushResult{}, err
	}
	if eps <= 0 {
		return PushResult{}, fmt.Errorf("ppr: push threshold must be positive, got %g", eps)
	}
	n := g.NumNodes()
	res := PushResult{Scores: make([]float64, n)}
	r := make([]float64, n)
	r[src] = 1
	queue := []graph.NodeID{src}
	queued := make([]bool, n)
	queued[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		queued[u] = false
		m := r[u]
		if m <= eps {
			continue // fell below threshold since it was queued
		}
		r[u] = 0
		res.Scores[u] += (1 - c) * m
		res.Pushes++
		to, _, p := g.OutEdges(u)
		// At a dangling node the c·m remainder dies with the walk.
		for j := range to {
			w := to[j]
			r[w] += c * m * p[j]
			if r[w] > eps && !queued[w] {
				queue = append(queue, w)
				queued[w] = true
			}
		}
	}
	for _, ru := range r {
		res.Residual += ru
	}
	res.Scores[src] -= 1 - c // remove the i = 0 self term
	if res.Scores[src] < 0 {
		res.Scores[src] = 0 // guard FP cancellation; π ≥ 0 by construction
	}
	return res, nil
}

// Bound returns the maximum mass the truncated π_l can still gain beyond
// step l: Σ_{i>l} (1−c)·c^i = c^(l+1). It equals dht.PPR(c).XBound(l) and is
// monotone decreasing in l — the property the rank-join corner bounds
// require of a measure's bound function.
func Bound(c float64, l int) float64 {
	b := 1.0
	for i := 0; i <= l; i++ {
		b *= c
	}
	return b
}
