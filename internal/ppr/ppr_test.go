package ppr

import (
	"math"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
)

// testGraph is a 3-community graph with a few guaranteed dangling nodes so
// the sink semantics are actually exercised.
func testGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{60, 60, 60}, PIn: 0.06, POut: 0.01, Seed: seed, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with three extra sink nodes fed from the first community:
	// walks that enter them die, which is the dangling case both
	// evaluators must agree on.
	n := g.NumNodes()
	b := graph.NewBuilder(n+3, true)
	for u := 0; u < n; u++ {
		to, w, _ := g.OutEdges(graph.NodeID(u))
		for j := range to {
			b.AddEdge(graph.NodeID(u), to[j], w[j])
		}
	}
	for i := 0; i < 3; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(n+i), 1)
	}
	return b.Build()
}

// TestPowerIterationMatchesReachEngine pins PowerIteration to the dht walk
// engine under Kind Reach with PPR parameters — the relationship the measure
// registry relies on when it serves "ppr" through the existing executors.
func TestPowerIterationMatchesReachEngine(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := testGraph(t, seed)
		for _, c := range []float64{0.2, 0.5, 0.85} {
			const d = 9
			e, err := dht.NewEngine(g, dht.PPR(c), d)
			if err != nil {
				t.Fatal(err)
			}
			srcs := []graph.NodeID{0, 1, graph.NodeID(g.NumNodes() / 2), graph.NodeID(g.NumNodes() - 1)}
			for _, src := range srcs {
				col, err := PowerIteration(g, c, src, d)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < g.NumNodes(); v += 7 {
					want := e.ForwardScoreKind(dht.Reach, src, graph.NodeID(v), d)
					if math.Abs(col[v]-want) > 1e-12 {
						t.Fatalf("seed=%d c=%g src=%d v=%d: PowerIteration=%.17g engine=%.17g",
							seed, c, src, v, col[v], want)
					}
				}
			}
		}
	}
}

// TestPowerIterationMatchesExactSolve checks the deep-truncation limit
// against the dense linear solve (which computes the untruncated series).
func TestPowerIterationMatchesExactSolve(t *testing.T) {
	g := testGraph(t, 3)
	const c = 0.5
	const d = 64 // c^65 ≈ 2.7e-20: truncation far below the tolerance
	for _, v := range []graph.NodeID{0, 5, graph.NodeID(g.NumNodes() - 1)} {
		exact, err := dht.ExactReachColumn(g, dht.PPR(c), v)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []graph.NodeID{0, 2, 31} {
			col, err := PowerIteration(g, c, src, d)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(col[v]-exact[src]) > 1e-12 {
				t.Fatalf("src=%d v=%d: PowerIteration=%.17g exact=%.17g", src, v, col[v], exact[src])
			}
		}
	}
}

// TestForwardPushCertificate checks the residual certificate pointwise:
// the push scores underestimate the (effectively untruncated) reference by
// at least zero and at most the reported residual.
func TestForwardPushCertificate(t *testing.T) {
	for _, seed := range []int64{2, 11} {
		g := testGraph(t, seed)
		for _, c := range []float64{0.3, 0.5, 0.8} {
			// Deep enough that truncation error << the push tolerance.
			d := 1
			for Bound(c, d) > 1e-15 {
				d++
			}
			for _, src := range []graph.NodeID{0, 9, 40} {
				ref, err := PowerIteration(g, c, src, d)
				if err != nil {
					t.Fatal(err)
				}
				for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
					res, err := ForwardPush(g, c, src, eps)
					if err != nil {
						t.Fatal(err)
					}
					const slack = 1e-12
					for v := range ref {
						diff := ref[v] - res.Scores[v]
						if diff < -slack || diff > res.Residual+slack {
							t.Fatalf("seed=%d c=%g src=%d eps=%g v=%d: ref=%.17g push=%.17g residual=%.17g",
								seed, c, src, eps, v, ref[v], res.Scores[v], res.Residual)
						}
					}
				}
			}
		}
	}
}

// TestForwardPushConverges checks that tightening eps actually tightens the
// certificate (the residual shrinks) and the scores approach the reference.
func TestForwardPushConverges(t *testing.T) {
	g := testGraph(t, 5)
	const c, src = 0.5, graph.NodeID(4)
	prev := math.Inf(1)
	for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
		res, err := ForwardPush(g, c, src, eps)
		if err != nil {
			t.Fatal(err)
		}
		if res.Residual > prev {
			t.Fatalf("eps=%g: residual %g grew past %g", eps, res.Residual, prev)
		}
		prev = res.Residual
	}
	if prev > 1e-3 {
		t.Fatalf("residual %g did not converge below 1e-3 at eps=1e-6", prev)
	}
}

// TestBoundMatchesXBound pins Bound to the generic dht tail bound with PPR
// parameters and checks the monotonicity the rank-join corner bounds need.
func TestBoundMatchesXBound(t *testing.T) {
	for _, c := range []float64{0.2, 0.5, 0.9} {
		p := dht.PPR(c)
		for l := 0; l < 12; l++ {
			want := p.XBound(l)
			got := Bound(c, l)
			if math.Abs(got-want) > 1e-15*math.Max(1, want) {
				t.Fatalf("c=%g l=%d: Bound=%g XBound=%g", c, l, got, want)
			}
			if l > 0 && got >= Bound(c, l-1) {
				t.Fatalf("c=%g l=%d: bound not strictly decreasing", c, l)
			}
		}
	}
}

// TestValidation covers the error paths.
func TestValidation(t *testing.T) {
	g := testGraph(t, 1)
	if _, err := PowerIteration(nil, 0.5, 0, 4); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := PowerIteration(g, 1.5, 0, 4); err == nil {
		t.Fatal("c out of range accepted")
	}
	if _, err := PowerIteration(g, 0.5, graph.NodeID(g.NumNodes()), 4); err == nil {
		t.Fatal("source out of range accepted")
	}
	if _, err := PowerIteration(g, 0.5, 0, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := ForwardPush(g, 0.5, 0, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
}
