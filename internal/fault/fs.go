// Filesystem fault sites: the persistent store (internal/store) performs all
// of its I/O through the FS interface below, so tests can thread a Faulty
// wrapper (deterministic injector-driven short writes, fsync failures, and
// crashes around rename) and a crashable in-memory filesystem (MemFS)
// underneath a completely unmodified store.
package fault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
)

// The store's filesystem injection sites.
const (
	// FSWrite fires before each file write; an error rule turns the write
	// into a torn write: half the bytes are written, then the error returns.
	FSWrite Site = "fs.write"
	// FSSync fires on file fsync; an error rule skips the sync entirely, so
	// the written bytes are not durable (MemFS will drop them on Crash).
	FSSync Site = "fs.sync"
	// FSSyncDir fires on directory fsync; an error rule skips it, so entry
	// creations/renames/removals are not durable.
	FSSyncDir Site = "fs.syncdir"
	// FSRename fires before a rename; an error rule suppresses the rename
	// (crash-before-rename: the temp file exists, the target does not).
	FSRename Site = "fs.rename"
	// FSRenamed fires after a successful rename (crash-after-rename: the
	// operation happened but the caller observes a failure).
	FSRenamed Site = "fs.renamed"
	// FSRemove fires before a file removal, suppressing it on error.
	FSRemove Site = "fs.remove"
)

// File is the subset of *os.File the store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam. OS is the production implementation; Faulty
// wraps any FS with injected faults; MemFS is the crashable in-memory
// implementation the crash-matrix tests run against.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(name string, perm fs.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs a directory, making entry creations, renames, and
	// removals durable (the second fsync of the atomic-replace protocol).
	SyncDir(name string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (OS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Faulty wraps an FS with injector-driven faults at the FS* sites. A nil
// injector passes everything through.
type Faulty struct {
	Inner FS
	Inj   *Injector
}

func (f Faulty) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	file, err := f.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return faultyFile{File: file, inj: f.Inj}, nil
}

func (f Faulty) Rename(oldpath, newpath string) error {
	if err := f.Inj.Inject(FSRename); err != nil {
		return err // crash-before-rename: nothing happened
	}
	if err := f.Inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	// crash-after-rename: the rename is on disk but the caller sees failure.
	return f.Inj.Inject(FSRenamed)
}

func (f Faulty) Remove(name string) error {
	if err := f.Inj.Inject(FSRemove); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

func (f Faulty) MkdirAll(name string, perm fs.FileMode) error { return f.Inner.MkdirAll(name, perm) }
func (f Faulty) ReadDir(name string) ([]fs.DirEntry, error)   { return f.Inner.ReadDir(name) }
func (f Faulty) Stat(name string) (fs.FileInfo, error)        { return f.Inner.Stat(name) }

func (f Faulty) SyncDir(name string) error {
	if err := f.Inj.Inject(FSSyncDir); err != nil {
		return err // sync skipped: entry metadata stays volatile
	}
	return f.Inner.SyncDir(name)
}

// faultyFile injects write and sync faults on one handle.
type faultyFile struct {
	File
	inj *Injector
}

func (f faultyFile) Write(p []byte) (int, error) {
	if err := f.inj.Inject(FSWrite); err != nil {
		// Torn write: half the payload lands, then the failure surfaces.
		n, werr := f.File.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f faultyFile) Sync() error {
	if err := f.inj.Inject(FSSync); err != nil {
		return err // sync skipped: recent writes stay volatile
	}
	return f.File.Sync()
}

// errStaleHandle marks operations on file handles that survived a MemFS
// crash; the pre-crash process is gone, so its handles must stop working.
var errStaleHandle = fmt.Errorf("fault: stale file handle (filesystem crashed)")
