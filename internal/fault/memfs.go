package fault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory filesystem with POSIX-style crash semantics, built
// for the store's crash-matrix tests:
//
//   - file contents become durable only on File.Sync — a Crash reverts each
//     file to its last-synced bytes (optionally keeping a prefix of the
//     unsynced tail, modeling a torn write that partially reached the platter);
//   - directory entries (creations, renames, removals) become durable only on
//     SyncDir — a Crash reverts each directory to its last-synced entry set,
//     so a renamed-but-not-dir-synced file reverts to its old name and a
//     created-but-not-dir-synced file vanishes even if its content was synced.
//
// This is the strict model that makes the temp-file → fsync → rename →
// dir-fsync protocol necessary, not just customary. Handles opened before a
// Crash fail afterwards (the pre-crash process is gone).
type MemFS struct {
	mu    sync.Mutex
	epoch int
	dirs  map[string]*memDir
}

type memDir struct {
	entries map[string]*memFile // live view
	synced  map[string]*memFile // as of the last SyncDir
}

type memFile struct {
	data   []byte
	synced []byte // as of the last Sync
}

// NewMemFS returns an empty in-memory filesystem containing only "/".
func NewMemFS() *MemFS {
	return &MemFS{dirs: map[string]*memDir{"/": newMemDir()}}
}

func newMemDir() *memDir {
	return &memDir{entries: map[string]*memFile{}, synced: map[string]*memFile{}}
}

func clean(name string) string {
	p := filepath.ToSlash(filepath.Clean(name))
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return p
}

func split(name string) (dir, base string) {
	p := clean(name)
	dir, base = filepath.Split(p)
	return clean(dir), base
}

// Crash simulates a power loss: every directory reverts to its last-synced
// entry set and every file to its last-synced contents plus at most
// keepUnsynced bytes of the unsynced tail (0 = strict, unsynced data is gone
// entirely). All open handles become stale. Safe to call at any point; the
// post-crash filesystem is exactly what a recovering process may observe.
func (m *MemFS) Crash(keepUnsynced int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch++
	seen := map[*memFile]bool{}
	for _, d := range m.dirs {
		d.entries = make(map[string]*memFile, len(d.synced))
		for name, f := range d.synced {
			d.entries[name] = f
		}
		for _, f := range d.entries {
			if seen[f] {
				continue
			}
			seen[f] = true
			keep := len(f.synced)
			if keep+keepUnsynced < len(f.data) {
				f.data = append([]byte(nil), f.data[:keep+keepUnsynced]...)
			}
			if len(f.data) < keep {
				// A truncate below the synced length that was never synced
				// still loses data on some filesystems; model the safe view:
				// the synced bytes are what recovery sees.
				f.data = append([]byte(nil), f.synced...)
			}
		}
	}
}

func (m *MemFS) MkdirAll(name string, _ fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	for {
		if _, ok := m.dirs[p]; !ok {
			m.dirs[p] = newMemDir()
		}
		if p == "/" {
			return nil
		}
		p, _ = split(p)
	}
}

func (m *MemFS) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir, base := split(name)
	d, ok := m.dirs[dir]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	f, ok := d.entries[base]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		f = &memFile{}
		d.entries[base] = f // entry durable only after SyncDir
	case flag&os.O_TRUNC != 0:
		f.data = nil // content change; durable only after Sync
	}
	return &memHandle{fs: m, f: f, name: clean(name), epoch: m.epoch,
		append: flag&os.O_APPEND != 0, readable: flag&os.O_WRONLY == 0}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	od, ob := split(oldpath)
	nd, nb := split(newpath)
	from, ok1 := m.dirs[od]
	to, ok2 := m.dirs[nd]
	if !ok1 || !ok2 {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	f, ok := from.entries[ob]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(from.entries, ob)
	to.entries[nb] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir, base := split(name)
	d, ok := m.dirs[dir]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if _, ok := d.entries[base]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(d.entries, base)
	return nil
}

func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.dirs[clean(name)]
	if !ok {
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	d.synced = make(map[string]*memFile, len(d.entries))
	for n, f := range d.entries {
		d.synced[n] = f
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	d, ok := m.dirs[p]
	if !ok {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	var out []fs.DirEntry
	for n, f := range d.entries {
		out = append(out, memInfo{name: n, size: int64(len(f.data))})
	}
	for dp := range m.dirs {
		if parent, base := split(dp); dp != "/" && parent == p {
			out = append(out, memInfo{name: base, dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := clean(name)
	if _, ok := m.dirs[p]; ok {
		return memInfo{name: p, dir: true}, nil
	}
	dir, base := split(p)
	if d, ok := m.dirs[dir]; ok {
		if f, ok := d.entries[base]; ok {
			return memInfo{name: base, size: int64(len(f.data))}, nil
		}
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// memHandle is one open file descriptor.
type memHandle struct {
	fs       *MemFS
	f        *memFile
	name     string
	epoch    int
	off      int64
	append   bool
	readable bool
	closed   bool
}

func (h *memHandle) check() error {
	if h.closed {
		return fs.ErrClosed
	}
	if h.epoch != h.fs.epoch {
		return errStaleHandle
	}
	return nil
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if !h.readable {
		return 0, &fs.PathError{Op: "read", Path: h.name, Err: fs.ErrPermission}
	}
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return 0, err
	}
	if h.append {
		h.off = int64(len(h.f.data))
	}
	need := h.off + int64(len(p))
	if need > int64(len(h.f.data)) {
		grown := make([]byte, need)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[h.off:], p)
	h.off = need
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check(); err != nil {
		return err
	}
	if size < 0 || size > int64(len(h.f.data)) {
		return fmt.Errorf("memfs: truncate %s to %d out of range", h.name, size)
	}
	h.f.data = append([]byte(nil), h.f.data[:size]...)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}

func (h *memHandle) Name() string { return h.name }

// memInfo implements both fs.FileInfo and fs.DirEntry.
type memInfo struct {
	name string
	size int64
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time         { return time.Time{} }
func (i memInfo) IsDir() bool                { return i.dir }
func (i memInfo) Sys() any                   { return nil }
func (i memInfo) Type() fs.FileMode          { return i.Mode().Type() }
func (i memInfo) Info() (fs.FileInfo, error) { return i, nil }
