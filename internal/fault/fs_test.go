package fault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"testing"
)

func mustOpen(t *testing.T, m *MemFS, name string, flag int) File {
	t.Helper()
	f, err := m.OpenFile(name, flag, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func readFile(t *testing.T, m FS, name string) []byte {
	t.Helper()
	f, err := m.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMemFSCrashDropsUnsyncedContent(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("durable"))
	f.Sync()
	if err := m.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" volatile"))
	// Not synced: the tail must vanish on crash.
	m.Crash(0)
	if got := readFile(t, m, "/d/f"); string(got) != "durable" {
		t.Fatalf("post-crash content = %q, want %q", got, "durable")
	}
	// The pre-crash handle belongs to a dead process.
	if _, err := f.Write([]byte("x")); !errors.Is(err, errStaleHandle) {
		t.Fatalf("stale handle write err = %v", err)
	}
}

func TestMemFSCrashKeepsUnsyncedPrefix(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("base"))
	f.Sync()
	m.SyncDir("/d")
	f.Write([]byte("0123456789"))
	// keepUnsynced models a torn write: a prefix of the unsynced tail
	// reached the platter before power was lost.
	m.Crash(3)
	if got := readFile(t, m, "/d/f"); string(got) != "base012" {
		t.Fatalf("post-crash content = %q, want %q", got, "base012")
	}
}

func TestMemFSCrashDropsUnsyncedDirEntries(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	// Content synced but the entry never dir-synced: the file vanishes —
	// this is exactly why the atomic-replace protocol needs the second fsync.
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("synced bytes"))
	f.Sync()
	f.Close()
	m.Crash(0)
	if _, err := m.Stat("/d/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("entry survived crash without SyncDir: %v", err)
	}
}

func TestMemFSCrashRevertsUnsyncedRename(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f := mustOpen(t, m, "/d/old", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("v1"))
	f.Sync()
	m.SyncDir("/d")

	if err := m.Rename("/d/old", "/d/new"); err != nil {
		t.Fatal(err)
	}
	m.Crash(0)
	if _, err := m.Stat("/d/new"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("rename survived crash without SyncDir")
	}
	if got := readFile(t, m, "/d/old"); string(got) != "v1" {
		t.Fatalf("old name content = %q", got)
	}

	// With the dir sync the rename is durable.
	m.Rename("/d/old", "/d/new")
	m.SyncDir("/d")
	m.Crash(0)
	if _, err := m.Stat("/d/old"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("old entry survived a synced rename")
	}
	if got := readFile(t, m, "/d/new"); string(got) != "v1" {
		t.Fatalf("new name content = %q", got)
	}
}

func TestMemFSCrashRevertsUnsyncedRemove(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("v1"))
	f.Sync()
	m.SyncDir("/d")
	if err := m.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	m.Crash(0)
	if got := readFile(t, m, "/d/f"); string(got) != "v1" {
		t.Fatalf("removed-but-unsynced file did not come back: %q", got)
	}
}

func TestMemFSUnsyncedTruncateRevertsToSynced(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("0123456789"))
	f.Sync()
	m.SyncDir("/d")
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	m.Crash(0)
	if got := readFile(t, m, "/d/f"); string(got) != "0123456789" {
		t.Fatalf("unsynced truncate survived crash: %q", got)
	}
	// Synced truncate is durable.
	f2 := mustOpen(t, m, "/d/f", os.O_RDWR)
	f2.Truncate(4)
	f2.Sync()
	m.Crash(0)
	if got := readFile(t, m, "/d/f"); string(got) != "0123" {
		t.Fatalf("synced truncate lost: %q", got)
	}
}

func TestMemFSOpenFlags(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	if _, err := m.OpenFile("/d/missing", os.O_RDONLY, 0); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_CREATE)
	f.Write([]byte("abc"))
	f.Close()
	// O_APPEND writes go to the end regardless of prior handle state.
	a := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_APPEND)
	a.Write([]byte("def"))
	a.Close()
	if got := readFile(t, m, "/d/f"); string(got) != "abcdef" {
		t.Fatalf("append result = %q", got)
	}
	// O_TRUNC discards content on open.
	tr := mustOpen(t, m, "/d/f", os.O_WRONLY|os.O_TRUNC)
	tr.Write([]byte("x"))
	tr.Close()
	if got := readFile(t, m, "/d/f"); string(got) != "x" {
		t.Fatalf("trunc result = %q", got)
	}
	// A write-only handle refuses reads.
	w := mustOpen(t, m, "/d/f", os.O_WRONLY)
	if _, err := w.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on O_WRONLY handle succeeded")
	}
}

func TestFaultyTornWrite(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	inj := New(1)
	inj.Add(FSWrite, Rule{Every: 1, Err: errors.New("boom")})
	ffs := Faulty{Inner: m, Inj: inj}

	f, err := ffs.OpenFile("/d/f", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("torn write reported %d bytes, want half (5)", n)
	}
	f.Close()
	if got := readFile(t, m, "/d/f"); string(got) != "01234" {
		t.Fatalf("on-disk content after torn write = %q", got)
	}
}

func TestFaultySyncAndSyncDirSkip(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	inj := New(1)
	inj.Add(FSSync, Rule{Every: 1, Err: errors.New("boom")})
	inj.Add(FSSyncDir, Rule{Every: 1, Err: errors.New("boom")})
	ffs := Faulty{Inner: m, Inj: inj}

	f, _ := ffs.OpenFile("/d/f", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("data"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v", err)
	}
	if err := ffs.SyncDir("/d"); !errors.Is(err, ErrInjected) {
		t.Fatalf("syncdir err = %v", err)
	}
	// Neither the bytes nor the entry were made durable.
	m.Crash(0)
	if _, err := m.Stat("/d/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("file survived skipped sync + syncdir: %v", err)
	}
}

func TestFaultyRenameSites(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f, _ := m.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Sync()
	m.SyncDir("/d")

	// FSRename suppresses the rename entirely.
	inj := New(1)
	inj.Add(FSRename, Rule{Every: 1, Err: errors.New("boom")})
	if err := (Faulty{Inner: m, Inj: inj}).Rename("/d/a", "/d/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v", err)
	}
	if _, err := m.Stat("/d/a"); err != nil {
		t.Fatal("suppressed rename moved the file")
	}

	// FSRenamed lets the rename happen, then reports failure.
	inj2 := New(1)
	inj2.Add(FSRenamed, Rule{Every: 1, Err: errors.New("boom")})
	if err := (Faulty{Inner: m, Inj: inj2}).Rename("/d/a", "/d/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("renamed err = %v", err)
	}
	if _, err := m.Stat("/d/b"); err != nil {
		t.Fatal("crash-after-rename did not move the file")
	}

	// FSRemove suppresses the removal.
	inj3 := New(1)
	inj3.Add(FSRemove, Rule{Every: 1, Err: errors.New("boom")})
	if err := (Faulty{Inner: m, Inj: inj3}).Remove("/d/b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("remove err = %v", err)
	}
	if _, err := m.Stat("/d/b"); err != nil {
		t.Fatal("suppressed remove deleted the file")
	}
}
