// Package fault is a deterministic fault-injection harness for the serving
// stack's chaos tests: an Injector owns a set of rules keyed by named
// injection sites (engine checkout, walk rounds, response writes), and the
// instrumented code calls Inject(site) at each site. A rule fires on a
// deterministic schedule — every Nth call to its site, with the firing
// residue derived from the injector's seed — so a chaos run is reproducible
// given (seed, per-site call index), independent of goroutine interleaving
// across sites.
//
// A nil *Injector is a valid no-op injector, so production code paths carry
// an always-nil field at zero cost and tests swap a live one in.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point. The serving layer defines three.
type Site string

// The serving layer's injection sites.
const (
	// Checkout fires when a request tries to start a join (engines about to
	// be checked out of the session pool).
	Checkout Site = "engine.checkout"
	// WalkRound fires at walk-round granularity inside the joiners — the
	// same poll points the deadline budget uses.
	WalkRound Site = "walk.round"
	// ResponseWrite fires before each streamed response line is written.
	ResponseWrite Site = "response.write"
)

// ErrInjected is the sentinel every injected error wraps; test assertions
// branch on errors.Is(err, ErrInjected).
var ErrInjected = errors.New("fault: injected error")

// Rule describes one fault: on every Every-th call to its site (at a
// seed-derived residue) it sleeps Delay, then panics if Panic is set, then
// returns Err if non-nil. A Rule with only Delay set is a pure latency
// fault. Every < 1 never fires.
type Rule struct {
	Every int           // fire each Nth call; < 1 disables the rule
	Delay time.Duration // sleep this long when firing
	Err   error         // return this (wrapped in ErrInjected) when firing
	Panic bool          // panic instead of returning
}

// siteState is one site's rules and call counter.
type siteState struct {
	calls atomic.Uint64
	fired atomic.Uint64
	rules []Rule
	offs  []uint64 // per-rule firing residue, derived from the seed
}

// Injector holds the active rules. Safe for concurrent use; the zero value
// and the nil pointer inject nothing.
type Injector struct {
	seed uint64
	mu   sync.RWMutex
	site map[Site]*siteState
}

// New returns an empty injector whose firing residues derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: uint64(seed), site: make(map[Site]*siteState)}
}

// Add installs a rule at site. Rules are checked in insertion order; the
// first one that fires on a call wins.
func (in *Injector) Add(site Site, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.site[site]
	if st == nil {
		st = &siteState{}
		in.site[site] = st
	}
	var off uint64
	if r.Every > 1 {
		// Cheap seeded hash over (seed, site, rule index) picks which
		// residue class fires, so distinct seeds shift the fault pattern.
		h := in.seed ^ 0x9e3779b97f4a7c15
		for _, c := range site {
			h = (h ^ uint64(c)) * 0x100000001b3
		}
		h = (h ^ uint64(len(st.rules))) * 0x100000001b3
		off = h % uint64(r.Every)
	}
	st.rules = append(st.rules, r)
	st.offs = append(st.offs, off)
}

// Inject advances site's call counter and applies the first rule scheduled
// for this call: it may sleep, panic, or return an error wrapping
// ErrInjected. A nil injector (or a site with no rules) returns nil.
func (in *Injector) Inject(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.RLock()
	st := in.site[site]
	in.mu.RUnlock()
	if st == nil {
		return nil
	}
	n := st.calls.Add(1) - 1 // this call's 0-based index
	for i, r := range st.rules {
		if r.Every < 1 || n%uint64(r.Every) != st.offs[i] {
			continue
		}
		st.fired.Add(1)
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.Panic {
			panic(fmt.Sprintf("fault: injected panic at %s (call %d)", site, n))
		}
		if r.Err != nil {
			return fmt.Errorf("%w: %s (call %d): %v", ErrInjected, site, n, r.Err)
		}
		return nil // pure latency fault
	}
	return nil
}

// Calls reports how many times site has been reached.
func (in *Injector) Calls(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.RLock()
	st := in.site[site]
	in.mu.RUnlock()
	if st == nil {
		return 0
	}
	return st.calls.Load()
}

// Fired reports how many calls at site actually triggered a rule.
func (in *Injector) Fired(site Site) uint64 {
	if in == nil {
		return 0
	}
	in.mu.RLock()
	st := in.site[site]
	in.mu.RUnlock()
	if st == nil {
		return 0
	}
	return st.fired.Load()
}
