package fault

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Inject(Checkout); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Calls(Checkout) != 0 || in.Fired(Checkout) != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []int {
		in := New(seed)
		in.Add(WalkRound, Rule{Every: 5, Err: errors.New("boom")})
		var fired []int
		for i := 0; i < 50; i++ {
			if err := in.Inject(WalkRound); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("injected error must wrap ErrInjected, got %v", err)
				}
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if len(a) != 10 {
		t.Fatalf("Every:5 over 50 calls should fire 10 times, fired %d (%v)", len(a), a)
	}
	c := run(7)
	if len(c) != 10 {
		t.Fatalf("seed 7 fired %d times, want 10", len(c))
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1)
	in.Add(Checkout, Rule{Every: 1, Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = in.Inject(Checkout)
}

func TestDelayRule(t *testing.T) {
	in := New(1)
	in.Add(ResponseWrite, Rule{Every: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := in.Inject(ResponseWrite); err != nil {
		t.Fatalf("pure latency rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestConcurrentCounting(t *testing.T) {
	in := New(3)
	in.Add(WalkRound, Rule{Every: 4, Err: errors.New("x")})
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Inject(WalkRound) != nil {
					mu.Lock()
					errs++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if got := in.Calls(WalkRound); got != 800 {
		t.Fatalf("calls = %d, want 800", got)
	}
	// Exactly one residue class of 4 fires: 200 of 800 calls.
	if errs != 200 || in.Fired(WalkRound) != 200 {
		t.Fatalf("fired %d errors (counter %d), want 200", errs, in.Fired(WalkRound))
	}
}
