package plan

import (
	"sync"
	"sync/atomic"

	"repro/internal/dht"
)

// Calibration closes the loop between estimated and observed walk cost for
// one serving session: every finished request feeds its run-scoped
// dht.Counters in through Observe, and WalkCost consults the resulting
// exponentially weighted average of edge relaxations per walk instead of the
// analytic frontier model. The observed average mixes shallow deepening
// rounds with full-depth walks — it is the cost of "a walk this session
// actually runs", which is exactly the unit the cost functions multiply by
// walk counts, so the ranking between operators (which differ in *counts*)
// is insensitive to the mix while the absolute estimates track reality.
//
// A Calibration is safe for concurrent use. The zero value is ready (no
// observations yet: WalkCost falls back to the analytic model).
type Calibration struct {
	mu  sync.Mutex
	epw float64 // EWMA of edge relaxations per walk
	n   int64   // observations folded in

	// gen increments whenever the average moves materially (> 5%), letting
	// plan caches validate entries without invalidating on every request.
	gen atomic.Uint64
}

// ewmaWeight is the weight of one new observation. 0.25 means roughly the
// last ~8 requests dominate the estimate — fresh enough to track a workload
// shift, damped enough that one outlier run does not thrash plan caches.
const ewmaWeight = 0.25

// calibDriftThreshold is the relative EWMA movement that bumps the
// generation (and thereby invalidates cached plans).
const calibDriftThreshold = 0.05

// Observe folds one run's counter snapshot in. graphEdges converts dense
// sweeps to edge relaxations (one sweep relaxes every arc once). Runs that
// performed no walks are ignored.
func (c *Calibration) Observe(snap dht.Counters, graphEdges int) {
	if c == nil || snap.Walks <= 0 {
		return
	}
	edges := float64(snap.FrontierEdges) + float64(snap.EdgeSweeps)*float64(graphEdges)
	if edges <= 0 {
		return
	}
	perWalk := edges / float64(snap.Walks)
	c.mu.Lock()
	prev := c.epw
	if c.n == 0 {
		c.epw = perWalk
	} else {
		c.epw = (1-ewmaWeight)*c.epw + ewmaWeight*perWalk
	}
	c.n++
	moved := c.n == 1 || (prev > 0 && abs(c.epw-prev)/prev > calibDriftThreshold)
	c.mu.Unlock()
	if moved {
		c.gen.Add(1)
	}
}

// EdgesPerWalk returns the calibrated per-walk cost; ok is false until the
// first observation.
func (c *Calibration) EdgesPerWalk() (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epw, c.n > 0
}

// Samples reports how many runs have been folded in.
func (c *Calibration) Samples() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Gen is the calibration generation: it changes only when the estimate has
// drifted materially, so cached plans stamped with a generation stay valid
// across the steady-state stream of near-identical observations.
func (c *Calibration) Gen() uint64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
