// Package plan is the cost-based query planner behind the library's
// execution entry points. The paper's experimental section (Figs 7–10) is a
// study of *which* operator wins under which workload — B-IDJ-Y vs B-IDJ-X
// vs B-BJ vs F-BJ/F-IDJ for 2-way joins, NL/AP/PJ/PJ-i for n-way — and this
// package turns that study into a decision procedure: every operator
// registers a Descriptor (name, streaming capability, resumability, cost
// function), Decide ranks the candidates of a query class by estimated cost
// over a Workload built from the graph's cached structural Stats and the
// query's shape, and the execution layers (dhtjoin, internal/service) run
// whatever wins. All operators produce bit-identical rankings (canonical tie
// keys), so planning is purely a cost decision — a wrong estimate can only
// cost time, never change an answer.
//
// The cost unit is *edge relaxations*: the number of CSR edge traversals the
// walk kernels would perform, the quantity the dht.Counters instrument.
// Estimates start from an analytic frontier-growth model of one truncated
// walk and are recalibrated per serving session from observed counters
// (Calibration), closing the loop between what the planner predicted and
// what the engines actually did.
//
// Import shape: plan sits below the operator packages. internal/join2 and
// internal/core import plan to register their executors (via init), so plan
// must not import either; Descriptor.New is therefore an opaque factory the
// registering package types and the execution layer asserts back.
package plan

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/graph"
)

// Class partitions executors by the query family they evaluate.
type Class int

const (
	// TwoWay executors answer top-k 2-way joins (join2.Joiner).
	TwoWay Class = iota
	// NWay executors answer top-k n-way joins (core.Algorithm).
	NWay
)

// String names the class.
func (c Class) String() string {
	if c == NWay {
		return "n-way"
	}
	return "2-way"
}

// MarshalJSON renders the class as its string form.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// Accuracy is the planner's kernel-contract knob: which walk kernels an
// unforced Decide may pick. Every registered executor emits exactly correct
// rankings either way — certified executors re-verify through the
// bit-identical kernel — so the knob gates *how* scores are computed, never
// what is returned.
type Accuracy int

const (
	// Exact (the default) restricts the cost choice to bit-identical
	// executors: every floating-point operation matches the reference
	// arithmetic. The conservative default — plans, calibration, and bench
	// baselines behave exactly as before the fast kernel existed.
	Exact Accuracy = iota
	// Fast additionally admits certified fast-path executors (float32
	// parallel kernels with ε-band re-verification) to the cost choice.
	Fast
)

// String names the accuracy mode.
func (a Accuracy) String() string {
	if a == Fast {
		return "fast"
	}
	return "exact"
}

// MarshalJSON renders the accuracy as its string form.
func (a Accuracy) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", a.String())), nil
}

// ParseAccuracy resolves the wire/flag spellings of the accuracy knob; the
// empty string selects the Exact default.
func ParseAccuracy(s string) (Accuracy, error) {
	switch s {
	case "", "exact":
		return Exact, nil
	case "fast":
		return Fast, nil
	default:
		return Exact, fmt.Errorf("plan: unknown accuracy %q (want \"exact\" or \"fast\")", s)
	}
}

// Typed planner errors; callers branch with errors.Is. The dhtjoin facade
// wraps them into its own sentinels (ErrUnknownAlgorithm, ErrHintConflict).
var (
	// ErrUnknownExecutor reports a forced algorithm name no package
	// registered.
	ErrUnknownExecutor = errors.New("plan: unknown executor")

	// ErrWrongClass reports a forced algorithm of the other query class —
	// a 2-way joiner forced onto an n-way query or vice versa.
	ErrWrongClass = errors.New("plan: executor does not evaluate this query class")

	// ErrWrongMeasure reports a forced algorithm that does not evaluate the
	// workload's proximity measure — a walk executor forced onto a SimRank
	// query or vice versa.
	ErrWrongMeasure = errors.New("plan: executor does not evaluate this measure")
)

// CostFunc estimates the work of one executor on a workload, in edge
// relaxations. Registered by the operator package alongside its factory.
type CostFunc func(w Workload) float64

// Descriptor is one registered executor. Name is the paper's operator name
// ("B-IDJ-Y", "PJ-i", …) and is the key users force through hints.
type Descriptor struct {
	Name  string
	Class Class

	// Streaming marks executors that produce rank-ordered results
	// incrementally (results surface before the full top-k is computed);
	// non-streaming executors materialize their work up front and replay it.
	Streaming bool

	// Resumable marks executors whose (m+1)-th result is cheap to derive
	// from the m-th (the incremental F structure of §VI-D); non-resumable
	// executors re-join with a grown budget when pulled past their batch.
	Resumable bool

	// Certified marks fast-path executors: they run the bulk of their walk
	// work on a FastCertified kernel and re-verify the ε-band through the
	// bit-identical kernel. Results are still exactly correct, but an
	// unforced Decide only considers them when the workload's Accuracy is
	// Fast.
	Certified bool

	// Measure names the proximity measure the executor evaluates. Empty
	// means the walk family: the executor scores pairs through the dht walk
	// engines and serves every walk-based measure (dht, reach, ppr — they
	// differ only in the Kind and Params threaded into the engine, which the
	// execution config carries). A non-empty Measure (e.g. "simrank") marks
	// an executor that evaluates exactly that measure and nothing else; it
	// is considered only when the workload declares the same Measure.
	Measure string

	// Cost estimates the executor's work on a workload.
	Cost CostFunc

	// New is the executor factory, typed by the registering package
	// (join2.Factory / core.Factory) and asserted back by the execution
	// layer. Opaque here so plan stays import-free of the operator packages.
	New any
}

// registry holds the executors by name. Registration happens in the operator
// packages' init functions; the lock exists for tests that register probes.
var registry = struct {
	sync.RWMutex
	byName map[string]Descriptor
}{byName: make(map[string]Descriptor)}

// Register publishes an executor descriptor. It panics on an empty or
// duplicate name or a nil cost function — registration is init-time wiring,
// and a broken registry should fail the process, not a query.
func Register(d Descriptor) {
	if d.Name == "" {
		panic("plan: Register with empty executor name")
	}
	if d.Cost == nil {
		panic(fmt.Sprintf("plan: executor %q registered without a cost function", d.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[d.Name]; dup {
		panic(fmt.Sprintf("plan: executor %q registered twice", d.Name))
	}
	registry.byName[d.Name] = d
}

// Lookup resolves an executor by name.
func Lookup(name string) (Descriptor, bool) {
	registry.RLock()
	defer registry.RUnlock()
	d, ok := registry.byName[name]
	return d, ok
}

// Executors lists the registered executors of a class, sorted by name.
func Executors(class Class) []Descriptor {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Descriptor, 0, len(registry.byName))
	for _, d := range registry.byName {
		if d.Class == class {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Workload is the planner's view of one query: the graph's structural
// statistics, the query shape, and the resolved execution knobs. Cost
// functions read it; Explain reports it.
type Workload struct {
	// Stats is the graph's cached structural summary (graph.Graph.Stats).
	Stats graph.Stats `json:"stats"`

	// P and Q are the 2-way node-set sizes (TwoWay class only).
	P int `json:"p,omitempty"`
	Q int `json:"q,omitempty"`

	// SetSizes and QueryEdges describe the n-way query graph (NWay class
	// only): |R_i| per position and the directed edges over positions.
	SetSizes   []int    `json:"set_sizes,omitempty"`
	QueryEdges [][2]int `json:"query_edges,omitempty"`

	// K is the result demand the plan is sized for. Streams have unknown
	// demand up front; the execution layers plan for the initial batch (the
	// resolved per-edge budget M) and let resumability cover the tail.
	K int `json:"k"`

	// M is the per-edge initial budget of the partial-join family.
	M int `json:"m,omitempty"`

	// D is the truncation depth (walk length) every walk runs to.
	D int `json:"d"`

	// Workers and BatchWidth are carried for the Explain report; they speed
	// the backward family roughly uniformly, so they do not enter the cost
	// ranking.
	Workers    int `json:"workers,omitempty"`
	BatchWidth int `json:"batch_width,omitempty"`

	// Measure selects the executor family by proximity measure, mirroring
	// Descriptor.Measure: empty means the walk family (dht, reach, ppr —
	// same executors, different engine parameters), a non-empty name (e.g.
	// "simrank") restricts the candidate table to the executors registered
	// for that measure. The execution layers set it from the resolved
	// measure kernel.
	Measure string `json:"measure,omitempty"`

	// Accuracy gates which kernel contracts the cost choice may use: Exact
	// (default) considers only bit-identical executors, Fast additionally
	// admits the certified fast path. Forced algorithm names bypass the
	// gate — forcing a certified executor is always safe, its results are
	// exact.
	Accuracy Accuracy `json:"accuracy"`

	// Calib, when non-nil, recalibrates the walk-cost unit from observed
	// engine counters (serving sessions feed it on every stream Stop).
	Calib *Calibration `json:"-"`
}

// PairCost is the modeled cost (in edge relaxations) of one candidate-pair
// heap insertion or score fold — a handful of comparisons and float ops,
// small next to an edge relaxation but not free: it is what separates the
// O(|P|·|Q|) bookkeeping floors of the algorithms once walk costs converge.
// Exported for the operator packages' registered cost functions.
const PairCost = 4.0

// WalkCost estimates the edge relaxations of one full-depth (D-step)
// truncated walk. With calibration data the observed per-walk average wins;
// otherwise an analytic frontier-growth model: the frontier multiplies by
// the mean out-degree each step until it saturates at |E| relaxations per
// step (the dense-sweep ceiling the adaptive kernel switches to).
func (w Workload) WalkCost() float64 {
	if w.Calib != nil {
		if epw, ok := w.Calib.EdgesPerWalk(); ok {
			return max(epw, 1)
		}
	}
	delta := w.Stats.MeanOutDeg
	if delta < 1.05 {
		delta = 1.05 // sublinear growth still touches ≥ 1 edge per step
	}
	edges := float64(w.Stats.Arcs)
	if edges < 1 {
		edges = 1
	}
	cost, frontier := 0.0, delta
	for l := 0; l < w.D; l++ {
		cost += min(frontier, edges)
		frontier *= delta
	}
	return max(cost, 1)
}

// Selectivity is k over the candidate-space size, clamped to [0, 1]: the
// fraction of the space the query demands. Iterative deepening pays off when
// it is small (pruning discards most of the space before full-depth walks)
// and turns into pure overhead as it approaches 1.
func (w Workload) Selectivity() float64 {
	space := w.SpaceSize()
	if space <= 0 {
		return 1
	}
	rho := float64(w.K) / float64(space)
	if rho > 1 {
		return 1
	}
	if rho < 0 {
		return 0
	}
	return rho
}

// SpaceSize is the candidate-space size: |P|·|Q| for 2-way, Π|R_i| for
// n-way (saturating).
func (w Workload) SpaceSize() int {
	if len(w.SetSizes) == 0 {
		return w.P * w.Q
	}
	const maxInt = int(^uint(0) >> 1)
	total := 1
	for _, s := range w.SetSizes {
		if s > 0 && total > maxInt/s {
			return maxInt
		}
		total *= s
	}
	return total
}

// Estimate is one candidate's scored row in a plan.
type Estimate struct {
	Algorithm string  `json:"algorithm"`
	Cost      float64 `json:"cost"` // estimated edge relaxations
	Streaming bool    `json:"streaming"`
	Resumable bool    `json:"resumable"`
	Certified bool    `json:"certified,omitempty"` // fast-path executor (ε-band re-verify)
	Excluded  bool    `json:"excluded,omitempty"`  // shown but ineligible at this accuracy
}

// Plan is the planner's decision for one query: the chosen executor, every
// candidate's cost estimate (ascending), and the workload (with the stats
// snapshot) the estimates were computed from.
type Plan struct {
	Class     Class      `json:"class"`
	Algorithm string     `json:"algorithm"`
	Forced    bool       `json:"forced,omitempty"` // chosen by hint, not cost
	Estimates []Estimate `json:"estimates"`
	Workload  Workload   `json:"workload"`
}

// Decide ranks the registered executors of class by estimated cost over w
// and returns the plan. A non-empty forced name skips the cost choice — the
// named executor is validated (ErrUnknownExecutor, ErrWrongClass) and chosen,
// with the full estimate table still attached so Explain shows what the
// forced choice passed up. Ties break by name, making the decision a pure
// function of (class, w, forced).
func Decide(class Class, w Workload, forced string) (*Plan, error) {
	cands := Executors(class)
	if len(cands) == 0 {
		return nil, fmt.Errorf("%w: no executors registered for %s queries", ErrUnknownExecutor, class)
	}
	ests := make([]Estimate, 0, len(cands))
	for _, d := range cands {
		if d.Measure != w.Measure {
			// Wrong measure is not a preference like accuracy — the executor
			// cannot evaluate this query at all, so it stays out of the
			// candidate table entirely (mirroring the class partition).
			continue
		}
		ests = append(ests, Estimate{
			Algorithm: d.Name,
			Cost:      d.Cost(w),
			Streaming: d.Streaming,
			Resumable: d.Resumable,
			Certified: d.Certified,
			// Certified executors stay in the Explain table either way, but
			// the cost choice skips them unless the workload opts into the
			// fast path.
			Excluded: d.Certified && w.Accuracy != Fast,
		})
	}
	sort.SliceStable(ests, func(i, j int) bool {
		if ests[i].Cost != ests[j].Cost {
			return ests[i].Cost < ests[j].Cost
		}
		return ests[i].Algorithm < ests[j].Algorithm
	})
	chosen := ""
	for _, e := range ests {
		if !e.Excluded {
			chosen = e.Algorithm
			break
		}
	}
	if chosen == "" {
		// Reachable when no executor is registered for the workload's
		// measure in this class (e.g. a measure with a 2-way joiner but no
		// n-way aggregate), or when a probe registry excludes everything.
		return nil, fmt.Errorf("%w: no %s executor eligible for measure %q at accuracy %s",
			ErrUnknownExecutor, class, measureLabel(w.Measure), w.Accuracy)
	}
	pl := &Plan{Class: class, Algorithm: chosen, Estimates: ests, Workload: w}
	if forced != "" {
		if err := ValidateForced(class, forced, w.Measure); err != nil {
			return nil, err
		}
		pl.Algorithm = forced
		pl.Forced = true
	}
	return pl, nil
}

// measureLabel names a workload/descriptor measure for error messages.
func measureLabel(m string) string {
	if m == "" {
		return "walk"
	}
	return m
}

// ValidateForced checks a forced executor name against a query class and
// measure without computing a plan — the cheap hint validation the facade
// runs up front. measure follows the Workload.Measure convention (empty =
// the walk family).
func ValidateForced(class Class, name, measure string) error {
	d, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownExecutor, name)
	}
	if d.Class != class {
		return fmt.Errorf("%w: %q is a %s executor, query is %s", ErrWrongClass, name, d.Class, class)
	}
	if d.Measure != measure {
		return fmt.Errorf("%w: %q evaluates measure %s, query uses %s",
			ErrWrongMeasure, name, measureLabel(d.Measure), measureLabel(measure))
	}
	return nil
}

// Factory returns the chosen executor's registered factory (the opaque New
// field) for the execution layer to assert to its typed signature.
func (p *Plan) Factory() any {
	d, ok := Lookup(p.Algorithm)
	if !ok {
		return nil
	}
	return d.New
}

// Format renders the plan as the human-readable cost table the CLI tools
// print.
func (p *Plan) Format() string {
	var sb strings.Builder
	forced := ""
	if p.Forced {
		forced = " (forced by hint)"
	}
	fmt.Fprintf(&sb, "plan: %s%s  [%s join]\n", p.Algorithm, forced, p.Class)
	w := &p.Workload
	if p.Class == TwoWay {
		fmt.Fprintf(&sb, "workload: |P|=%d |Q|=%d k=%d d=%d", w.P, w.Q, w.K, w.D)
	} else {
		sizes := make([]string, len(w.SetSizes))
		for i, s := range w.SetSizes {
			sizes[i] = fmt.Sprintf("%d", s)
		}
		fmt.Fprintf(&sb, "workload: sets=[%s] edges=%d k=%d m=%d d=%d",
			strings.Join(sizes, ","), len(w.QueryEdges), w.K, w.M, w.D)
	}
	if w.Measure != "" {
		fmt.Fprintf(&sb, "; measure=%s", w.Measure)
	}
	fmt.Fprintf(&sb, "; accuracy=%s", w.Accuracy)
	fmt.Fprintf(&sb, "; graph |V|=%d |E|=%d meanDeg=%.2f walkCost=%.0f\n",
		w.Stats.Nodes, w.Stats.Arcs, w.Stats.MeanOutDeg, w.WalkCost())
	fmt.Fprintf(&sb, "%-10s %14s %10s %10s %10s\n", "candidate", "est.relaxations", "streaming", "resumable", "kernel")
	for _, e := range p.Estimates {
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		kernel := "exact"
		if e.Certified {
			kernel = "fast"
			if e.Excluded {
				kernel = "fast (off)"
			}
		}
		fmt.Fprintf(&sb, "%-10s %14.3g %10s %10s %10s\n",
			e.Algorithm, e.Cost, mark(e.Streaming), mark(e.Resumable), kernel)
	}
	return sb.String()
}
