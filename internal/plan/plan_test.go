package plan_test

// The external test package imports the operator packages for their
// registration side effects, so these tests see the real registry.

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/plan"

	_ "repro/internal/core"  // registers NL / AP / PJ / PJ-i
	_ "repro/internal/join2" // registers the seven 2-way joiners
)

// testWorkload is a mid-sized 2-way workload over a dense-ish graph.
func testWorkload(k int) plan.Workload {
	return plan.Workload{
		Stats: graph.Stats{Nodes: 2400, Arcs: 38000, MeanOutDeg: 15.8},
		P:     100, Q: 100, K: k, M: 50, D: 8,
	}
}

func TestRegistryExecutors(t *testing.T) {
	want2 := []string{"B-BJ", "B-BJ-fast", "B-IDJ-X", "B-IDJ-Y", "F-BJ", "F-BJ-fast", "F-IDJ", "SR-SCAN"}
	got2 := plan.Executors(plan.TwoWay)
	if len(got2) != len(want2) {
		t.Fatalf("2-way executors: %d, want %d", len(got2), len(want2))
	}
	for i, d := range got2 {
		if d.Name != want2[i] {
			t.Fatalf("2-way executor %d = %q, want %q", i, d.Name, want2[i])
		}
		if d.New == nil {
			t.Fatalf("%s registered without factory", d.Name)
		}
	}
	wantN := []string{"AP", "NL", "PJ", "PJ-i", "SR-AP"}
	gotN := plan.Executors(plan.NWay)
	if len(gotN) != len(wantN) {
		t.Fatalf("n-way executors: %d, want %d", len(gotN), len(wantN))
	}
	for i, d := range gotN {
		if d.Name != wantN[i] {
			t.Fatalf("n-way executor %d = %q, want %q", i, d.Name, wantN[i])
		}
	}
}

func TestDecideSelectivityFlip(t *testing.T) {
	low, err := plan.Decide(plan.TwoWay, testWorkload(50), "")
	if err != nil {
		t.Fatal(err)
	}
	if low.Algorithm != "B-IDJ-Y" {
		t.Fatalf("k=50 pick = %s, want B-IDJ-Y", low.Algorithm)
	}
	full, err := plan.Decide(plan.TwoWay, testWorkload(100*100), "")
	if err != nil {
		t.Fatal(err)
	}
	if full.Algorithm != "B-BJ" {
		t.Fatalf("k=|P||Q| pick = %s, want B-BJ", full.Algorithm)
	}
	// Backward processing must always beat forward per the paper's analysis.
	for _, e := range low.Estimates {
		if e.Algorithm == "F-BJ" && e.Cost <= estCost(low.Estimates, "B-BJ") {
			t.Fatal("F-BJ priced at or below B-BJ")
		}
	}
}

func estCost(ests []plan.Estimate, name string) float64 {
	for _, e := range ests {
		if e.Algorithm == name {
			return e.Cost
		}
	}
	return -1
}

func TestDecideNWay(t *testing.T) {
	w := plan.Workload{
		Stats:      graph.Stats{Nodes: 2400, Arcs: 38000, MeanOutDeg: 15.8},
		SetSizes:   []int{60, 60, 60},
		QueryEdges: [][2]int{{0, 1}, {1, 2}},
		K:          10, M: 50, D: 8,
	}
	pl, err := plan.Decide(plan.NWay, w, "")
	if err != nil {
		t.Fatal(err)
	}
	if pl.Algorithm != "PJ-i" {
		t.Fatalf("n-way pick = %s, want PJ-i", pl.Algorithm)
	}
	// The modeled ordering of the paper's Figure 7: PJ-i < PJ and AP < NL.
	if estCost(pl.Estimates, "PJ-i") >= estCost(pl.Estimates, "PJ") {
		t.Fatal("PJ-i not priced below PJ")
	}
	if estCost(pl.Estimates, "AP") >= estCost(pl.Estimates, "NL") {
		t.Fatal("AP not priced below NL")
	}
}

func TestDecideForced(t *testing.T) {
	pl, err := plan.Decide(plan.TwoWay, testWorkload(50), "F-IDJ")
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Forced || pl.Algorithm != "F-IDJ" {
		t.Fatalf("forced plan = %+v", pl)
	}
	if _, err := plan.Decide(plan.TwoWay, testWorkload(50), "nope"); !errors.Is(err, plan.ErrUnknownExecutor) {
		t.Fatalf("unknown forced: %v", err)
	}
	if _, err := plan.Decide(plan.TwoWay, testWorkload(50), "PJ-i"); !errors.Is(err, plan.ErrWrongClass) {
		t.Fatalf("wrong-class forced: %v", err)
	}
	if err := plan.ValidateForced(plan.NWay, "B-BJ", ""); !errors.Is(err, plan.ErrWrongClass) {
		t.Fatalf("ValidateForced wrong class: %v", err)
	}
	if err := plan.ValidateForced(plan.NWay, "PJ", ""); err != nil {
		t.Fatalf("ValidateForced valid: %v", err)
	}
}

func TestDecideDeterminism(t *testing.T) {
	a, err := plan.Decide(plan.TwoWay, testWorkload(50), "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b, err := plan.Decide(plan.TwoWay, testWorkload(50), "")
		if err != nil {
			t.Fatal(err)
		}
		if b.Algorithm != a.Algorithm || len(b.Estimates) != len(a.Estimates) {
			t.Fatalf("run %d differs: %+v vs %+v", i, b, a)
		}
		for j := range a.Estimates {
			if b.Estimates[j] != a.Estimates[j] {
				t.Fatalf("run %d estimate %d differs", i, j)
			}
		}
	}
}

func TestWalkCostAnalytic(t *testing.T) {
	w := testWorkload(50)
	walk := w.WalkCost()
	if walk <= 0 {
		t.Fatalf("walk cost %v", walk)
	}
	// The frontier saturates at |E| per step, so D steps bound the walk.
	if maxW := float64(w.Stats.Arcs) * float64(w.D); walk > maxW {
		t.Fatalf("walk cost %v exceeds dense bound %v", walk, maxW)
	}
	// An empty-graph workload must not divide by zero or return nonsense.
	empty := plan.Workload{D: 4}
	if c := empty.WalkCost(); c < 1 {
		t.Fatalf("empty-graph walk cost %v", c)
	}
}

func TestCalibration(t *testing.T) {
	var c plan.Calibration
	if _, ok := c.EdgesPerWalk(); ok {
		t.Fatal("fresh calibration claims observations")
	}
	gen0 := c.Gen()
	c.Observe(dht.Counters{Walks: 10, FrontierEdges: 5000}, 38000)
	epw, ok := c.EdgesPerWalk()
	if !ok || epw != 500 {
		t.Fatalf("after first observe: epw=%v ok=%v, want 500", epw, ok)
	}
	if c.Gen() == gen0 {
		t.Fatal("first observation did not bump the generation")
	}
	// Dense sweeps convert via the graph's arc count.
	c.Observe(dht.Counters{Walks: 1, EdgeSweeps: 2}, 38000)
	if epw, _ = c.EdgesPerWalk(); epw <= 500 {
		t.Fatalf("sweep observation did not raise the average: %v", epw)
	}
	// A walk-free run is ignored.
	before, _ := c.EdgesPerWalk()
	c.Observe(dht.Counters{EdgeSweeps: 50}, 38000)
	if after, _ := c.EdgesPerWalk(); after != before {
		t.Fatal("walk-free observation changed the estimate")
	}
	// Steady-state identical observations stop bumping the generation.
	stable, _ := c.EdgesPerWalk()
	for i := 0; i < 5; i++ {
		c.Observe(dht.Counters{Walks: 100, FrontierEdges: int64(100 * stable)}, 38000)
	}
	gen := c.Gen()
	c.Observe(dht.Counters{Walks: 100, FrontierEdges: int64(100 * stable)}, 38000)
	if c.Gen() != gen {
		t.Fatal("steady-state observation bumped the generation")
	}
	// Calibrated workloads use the observed unit.
	w := testWorkload(50)
	w.Calib = &c
	if got, want := w.WalkCost(), mustEPW(t, &c); got != want {
		t.Fatalf("calibrated walk cost %v, want %v", got, want)
	}
}

func mustEPW(t *testing.T, c *plan.Calibration) float64 {
	t.Helper()
	epw, ok := c.EdgesPerWalk()
	if !ok {
		t.Fatal("no calibration data")
	}
	return epw
}

func TestCalibrationConcurrent(t *testing.T) {
	var c plan.Calibration
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Observe(dht.Counters{Walks: 10, FrontierEdges: 4000}, 38000)
				c.EdgesPerWalk()
				c.Gen()
			}
		}()
	}
	wg.Wait()
	if n := c.Samples(); n != 8*200 {
		t.Fatalf("samples = %d, want %d", n, 8*200)
	}
}

func TestPlanFormatAndFactory(t *testing.T) {
	pl, err := plan.Decide(plan.TwoWay, testWorkload(50), "")
	if err != nil {
		t.Fatal(err)
	}
	out := pl.Format()
	if out == "" || pl.Factory() == nil {
		t.Fatalf("Format=%q Factory=%v", out, pl.Factory())
	}
}

// TestDecideMeasureFiltering: the candidate table is measure-keyed — a walk
// workload never sees SimRank's dedicated executors and vice versa, and
// forcing across the boundary is an ErrWrongMeasure.
func TestDecideMeasureFiltering(t *testing.T) {
	walk, err := plan.Decide(plan.TwoWay, testWorkload(50), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range walk.Estimates {
		if est.Algorithm == "SR-SCAN" {
			t.Fatal("walk plan priced SR-SCAN")
		}
	}

	w := testWorkload(50)
	w.Measure = "simrank"
	sr, err := plan.Decide(plan.TwoWay, w, "")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Algorithm != "SR-SCAN" {
		t.Fatalf("simrank 2-way plan picked %q, want SR-SCAN", sr.Algorithm)
	}
	if len(sr.Estimates) != 1 {
		t.Fatalf("simrank plan priced %d candidates, want 1", len(sr.Estimates))
	}

	wn := w
	wn.P, wn.Q = 0, 0
	wn.SetSizes = []int{100, 100, 100}
	wn.QueryEdges = [][2]int{{0, 1}, {1, 2}}
	srn, err := plan.Decide(plan.NWay, wn, "")
	if err != nil {
		t.Fatal(err)
	}
	if srn.Algorithm != "SR-AP" {
		t.Fatalf("simrank n-way plan picked %q, want SR-AP", srn.Algorithm)
	}

	if _, err := plan.Decide(plan.TwoWay, testWorkload(50), "SR-SCAN"); !errors.Is(err, plan.ErrWrongMeasure) {
		t.Fatalf("forcing SR-SCAN on a walk workload: %v, want ErrWrongMeasure", err)
	}
	if _, err := plan.Decide(plan.TwoWay, w, "B-IDJ-Y"); !errors.Is(err, plan.ErrWrongMeasure) {
		t.Fatalf("forcing B-IDJ-Y on a simrank workload: %v, want ErrWrongMeasure", err)
	}
	if err := plan.ValidateForced(plan.TwoWay, "SR-SCAN", "simrank"); err != nil {
		t.Fatalf("ValidateForced matching measure: %v", err)
	}
	if err := plan.ValidateForced(plan.TwoWay, "SR-SCAN", ""); !errors.Is(err, plan.ErrWrongMeasure) {
		t.Fatalf("ValidateForced wrong measure: %v", err)
	}
}
