package simrank_test

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/rankjoin"
	"repro/internal/simrank"
)

// univGraph: Univ → {ProfA, ProfB}, ProfA → StudentA, ProfB → StudentB,
// StudentA → Univ, StudentB → Univ.
// Nodes: 0 Univ, 1 ProfA, 2 ProfB, 3 StudentA, 4 StudentB.
func univGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 4, 1)
	b.AddEdge(3, 0, 1)
	b.AddEdge(4, 0, 1)
	return b.Build()
}

// TestSimRankHandComputed checks fixed points derivable by hand.
func TestSimRankHandComputed(t *testing.T) {
	const c = 0.8
	// (1) Fan-out: 0→1, 0→2. I(1)=I(2)={0} ⇒ s(1,2) = C·s(0,0) = C.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	m, err := simrank.Compute(b.Build(), &simrank.Options{C: c, Iterations: 30, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(1, 2); math.Abs(got-c) > 1e-10 {
		t.Fatalf("fan-out s(1,2) = %v, want %v", got, c)
	}

	// (2) Shared audience: 0→2, 1→2, 0→3, 1→3 with sourceless 0, 1:
	// s(0,1)=0 ⇒ s(2,3) = C/4 · (s(0,0)+s(1,1)) = C/2.
	b = graph.NewBuilder(4, true)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 3, 1)
	m, err = simrank.Compute(b.Build(), &simrank.Options{C: c, Iterations: 30, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(2, 3); math.Abs(got-c/2) > 1e-10 {
		t.Fatalf("shared-audience s(2,3) = %v, want %v", got, c/2)
	}
	if got := m.Score(0, 1); got != 0 {
		t.Fatalf("sourceless s(0,1) = %v, want 0", got)
	}

	// (3) Univ example: I(ProfA)=I(ProfB)={Univ} ⇒ s(ProfA,ProfB) = C;
	// s(StudA,StudB) = C·s(ProfA,ProfB) = C²; and the cycle closes with
	// s(Univ,Univ) = 1.
	m, err = simrank.Compute(univGraph(t), &simrank.Options{C: c, Iterations: 60, Tolerance: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(1, 2); math.Abs(got-c) > 1e-9 {
		t.Fatalf("s(ProfA,ProfB) = %v, want %v", got, c)
	}
	if got := m.Score(3, 4); math.Abs(got-c*c) > 1e-9 {
		t.Fatalf("s(StudA,StudB) = %v, want %v", got, c*c)
	}
	if m.Score(1, 2) != m.Score(2, 1) {
		t.Fatal("SimRank not symmetric")
	}
	for i := graph.NodeID(0); i < 5; i++ {
		if m.Score(i, i) != 1 {
			t.Fatalf("s(%d,%d) = %v, want 1", i, i, m.Score(i, i))
		}
	}
}

// naiveSimRank is an independent reference: the same recurrence written
// directly over maps, used to cross-check the optimized iteration.
func naiveSimRank(g *graph.Graph, c float64, iters int) map[[2]graph.NodeID]float64 {
	n := g.NumNodes()
	cur := make(map[[2]graph.NodeID]float64)
	for i := 0; i < n; i++ {
		cur[[2]graph.NodeID{graph.NodeID(i), graph.NodeID(i)}] = 1
	}
	get := func(m map[[2]graph.NodeID]float64, a, b graph.NodeID) float64 { return m[[2]graph.NodeID{a, b}] }
	for it := 0; it < iters; it++ {
		next := make(map[[2]graph.NodeID]float64)
		for a := 0; a < n; a++ {
			next[[2]graph.NodeID{graph.NodeID(a), graph.NodeID(a)}] = 1
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				ia, _, _ := g.InEdges(graph.NodeID(a))
				ib, _, _ := g.InEdges(graph.NodeID(b))
				if len(ia) == 0 || len(ib) == 0 {
					continue
				}
				var sum float64
				for _, i := range ia {
					for _, j := range ib {
						sum += get(cur, i, j)
					}
				}
				v := c * sum / float64(len(ia)*len(ib))
				if v != 0 {
					next[[2]graph.NodeID{graph.NodeID(a), graph.NodeID(b)}] = v
				}
			}
		}
		cur = next
	}
	return cur
}

func TestSimRankMatchesNaiveReference(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{10, 10}, PIn: 0.3, POut: 0.15, Seed: 17, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const c, iters = 0.7, 6
	m, err := simrank.Compute(g, &simrank.Options{C: c, Iterations: iters, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	ref := naiveSimRank(g, c, iters)
	for a := 0; a < g.NumNodes(); a++ {
		for b := 0; b < g.NumNodes(); b++ {
			want := ref[[2]graph.NodeID{graph.NodeID(a), graph.NodeID(b)}]
			if got := m.Score(graph.NodeID(a), graph.NodeID(b)); math.Abs(got-want) > 1e-10 {
				t.Fatalf("s(%d,%d) = %v, reference %v", a, b, got, want)
			}
		}
	}
}

func TestSimRankRangeAndMonotoneIterations(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{20, 20}, PIn: 0.3, POut: 0.1, Seed: 5, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := simrank.Compute(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.NumNodes(); a++ {
		for b := 0; b < g.NumNodes(); b++ {
			s := m.Score(graph.NodeID(a), graph.NodeID(b))
			if s < 0 || s > 1 || math.IsNaN(s) {
				t.Fatalf("s(%d,%d) = %v out of [0,1]", a, b, s)
			}
		}
	}
	// More iterations must not decrease scores (monotone convergence from
	// the identity start).
	one, err := simrank.Compute(g, &simrank.Options{Iterations: 1, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	five, err := simrank.Compute(g, &simrank.Options{Iterations: 5, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < g.NumNodes(); a++ {
		for b := 0; b < g.NumNodes(); b++ {
			if five.Score(graph.NodeID(a), graph.NodeID(b)) < one.Score(graph.NodeID(a), graph.NodeID(b))-1e-12 {
				t.Fatalf("scores shrank between iterations at (%d,%d)", a, b)
			}
		}
	}
}

func TestSimRankOptionsValidation(t *testing.T) {
	g := univGraph(t)
	if _, err := simrank.Compute(g, &simrank.Options{C: 1.5}); err == nil {
		t.Fatal("C>1 accepted")
	}
	if _, err := simrank.Compute(g, &simrank.Options{Iterations: -1}); err == nil {
		t.Fatal("negative iterations accepted")
	}
	if _, err := simrank.Compute(g, &simrank.Options{Tolerance: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	empty := graph.NewBuilder(0, true).Build()
	if _, err := simrank.Compute(empty, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestTopKPairsDescending(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{15, 15}, PIn: 0.3, POut: 0.1, Seed: 8, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := simrank.Compute(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.TopKPairs(sets[0].Nodes(), sets[1].Nodes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d pairs", len(res))
	}
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i].Score >= res[j].Score }) {
		t.Fatal("not descending")
	}
	if _, err := m.TopKPairs(sets[0].Nodes(), sets[1].Nodes(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestSimRankNWayJoin drives the full multi-way machinery over SimRank via
// core.JoinLists and checks against brute force.
func TestSimRankNWayJoin(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{8, 8, 8}, PIn: 0.35, POut: 0.15, Seed: 11, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := simrank.Compute(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Chain(sets...)
	lists := make([][]join2.Result, len(q.Edges()))
	for i, e := range q.Edges() {
		lists[i], err = m.EdgeList(q.Set(e.From).Nodes(), q.Set(e.To).Nodes())
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := core.JoinLists(q, lists, rankjoin.Min, 6, false)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force over the matrix.
	type ans struct {
		a, b, c graph.NodeID
		f       float64
	}
	var all []ans
	for _, a := range sets[0].Nodes() {
		for _, b := range sets[1].Nodes() {
			for _, c := range sets[2].Nodes() {
				f := math.Min(m.Score(a, b), m.Score(b, c))
				all = append(all, ans{a, b, c, f})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].f > all[j].f })
	if len(got) != 6 {
		t.Fatalf("got %d answers", len(got))
	}
	for i := range got {
		if math.Abs(got[i].Score-all[i].f) > 1e-12 {
			t.Fatalf("rank %d: %v vs brute %v", i, got[i].Score, all[i].f)
		}
	}
}

func TestJoinListsValidation(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{5, 5}, PIn: 0.4, POut: 0.2, Seed: 2, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	q := core.Chain(sets[:2]...)
	if _, err := core.JoinLists(q, nil, rankjoin.Min, 3, false); err == nil {
		t.Fatal("list count mismatch accepted")
	}
	unsorted := [][]join2.Result{{
		{Pair: join2.Pair{P: 0, Q: 5}, Score: 0.1},
		{Pair: join2.Pair{P: 1, Q: 5}, Score: 0.9},
	}}
	if _, err := core.JoinLists(q, unsorted, rankjoin.Min, 3, false); err == nil {
		t.Fatal("unsorted list accepted")
	}
	if _, err := core.JoinLists(q, [][]join2.Result{{}}, nil, 3, false); err == nil {
		t.Fatal("nil aggregate accepted")
	}
	if _, err := core.JoinLists(q, [][]join2.Result{{}}, rankjoin.Min, 0, false); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := core.JoinLists(nil, nil, rankjoin.Min, 3, false); err == nil {
		t.Fatal("nil query accepted")
	}
}
