// Package simrank implements SimRank (Jeh & Widom, KDD 2002), the second
// proximity measure the paper's conclusion names as future work for the
// multi-way join. SimRank does not fit the Equation-4 single-walk form the
// IDJ machinery exploits — it recurses over *pairs* of in-neighbors — so
// this package computes it by the classic fixed-point iteration and feeds
// the n-way join through core.JoinLists.
//
//	s(a, a) = 1
//	s(a, b) = C / (|I(a)|·|I(b)|) · Σ_{i∈I(a)} Σ_{j∈I(b)} s(i, j)
//
// The iteration stores the full n×n similarity matrix, so it is limited to
// graphs of a few thousand nodes (the Yeast scale); that is the documented
// trade-off of exact SimRank and the reason the paper's framework prefers
// walk measures.
package simrank

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/pqueue"
)

// maxNodes bounds the dense similarity matrix (n² float64).
const maxNodes = 4096

// Options tune the fixed-point iteration.
type Options struct {
	// C is the decay constant in (0,1); 0 means the customary 0.8.
	C float64
	// Iterations caps the fixed-point rounds; 0 means 10.
	Iterations int
	// Tolerance stops early when the largest per-entry change falls below
	// it; 0 means 1e-4.
	Tolerance float64
}

func (o *Options) resolve() (float64, int, float64, error) {
	c, iters, tol := 0.8, 10, 1e-4
	if o != nil {
		if o.C != 0 {
			c = o.C
		}
		if o.Iterations != 0 {
			iters = o.Iterations
		}
		if o.Tolerance != 0 {
			tol = o.Tolerance
		}
	}
	if c <= 0 || c >= 1 {
		return 0, 0, 0, fmt.Errorf("simrank: C must lie in (0,1), got %g", c)
	}
	if iters < 1 {
		return 0, 0, 0, fmt.Errorf("simrank: iterations must be >= 1, got %d", iters)
	}
	if tol <= 0 {
		return 0, 0, 0, fmt.Errorf("simrank: tolerance must be positive, got %g", tol)
	}
	return c, iters, tol, nil
}

// Matrix holds the converged all-pairs SimRank scores.
type Matrix struct {
	n     int
	s     []float64 // row-major n×n
	Iters int       // rounds actually performed
}

// Compute runs the fixed-point iteration to (near) convergence.
func Compute(g *graph.Graph, opts *Options) (*Matrix, error) {
	c, iters, tol, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("simrank: empty graph")
	}
	if n > maxNodes {
		return nil, fmt.Errorf("simrank: dense iteration limited to %d nodes, got %d", maxNodes, n)
	}
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		cur[i*n+i] = 1
	}
	m := &Matrix{n: n}
	for round := 0; round < iters; round++ {
		var maxDelta float64
		for a := 0; a < n; a++ {
			ia, _, _ := g.InEdges(graph.NodeID(a))
			next[a*n+a] = 1
			for b := a + 1; b < n; b++ {
				ib, _, _ := g.InEdges(graph.NodeID(b))
				var v float64
				if len(ia) > 0 && len(ib) > 0 {
					var sum float64
					for _, i := range ia {
						row := int(i) * n
						for _, j := range ib {
							sum += cur[row+int(j)]
						}
					}
					v = c * sum / float64(len(ia)*len(ib))
				}
				next[a*n+b] = v
				next[b*n+a] = v
				if d := math.Abs(v - cur[a*n+b]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		cur, next = next, cur
		m.Iters = round + 1
		if maxDelta < tol {
			break
		}
	}
	m.s = cur
	return m, nil
}

// Score returns s(a, b).
func (m *Matrix) Score(a, b graph.NodeID) float64 {
	return m.s[int(a)*m.n+int(b)]
}

// TopKPairs returns the k highest-SimRank pairs (p, q) ∈ P×Q, descending,
// with the same canonical tie order as the DHT joins.
func (m *Matrix) TopKPairs(p, q []graph.NodeID, k int) ([]join2.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("simrank: k must be positive, got %d", k)
	}
	if space := len(p) * len(q); k > space {
		k = space
	}
	top := pqueue.NewTopK[join2.Pair](k)
	for _, a := range p {
		for _, b := range q {
			pr := join2.Pair{P: a, Q: b}
			top.AddTie(pr, m.Score(a, b), join2.TieKey(pr))
		}
	}
	pairs, scores := top.Sorted()
	out := make([]join2.Result, len(pairs))
	for i := range pairs {
		out[i] = join2.Result{Pair: pairs[i], Score: scores[i]}
	}
	return out, nil
}

// EdgeList materializes the full descending ranking for one query edge —
// the input core.JoinLists expects.
func (m *Matrix) EdgeList(p, q []graph.NodeID) ([]join2.Result, error) {
	return m.TopKPairs(p, q, len(p)*len(q))
}
