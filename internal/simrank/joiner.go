package simrank

// This file makes SimRank a served join: SR-SCAN is a join2.Joiner over the
// fixed-point matrix, registered with the planner under Measure "simrank" so
// the same Decide → NewNamedStream → rejoin-stream path that serves the walk
// measures serves SimRank too. The matrix is the expensive part (dense n²
// fixed point, capped at a few thousand nodes); the joiner computes it once,
// keeps it across the rejoin stream's growing TopK calls, and shares it
// process-wide through a small per-graph cache so repeated serving-layer
// queries against the same graph do not recompute the fixed point.

import (
	"fmt"
	"sync"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/plan"
	"repro/internal/pqueue"
)

// matrixCacheCap bounds the per-graph matrix cache. Each entry is O(n²)
// float64 (≤ 128 MiB at the 4096-node cap), so the cache stays tiny; the
// serving layer rarely has more than a couple of SimRank-queried graphs
// resident at once.
const matrixCacheCap = 2

var matrixCache = struct {
	sync.Mutex
	entries []matrixEntry // LRU order, most recent last
}{}

type matrixEntry struct {
	g *graph.Graph
	m *Matrix
}

// SharedMatrix returns the default-options SimRank matrix for g, computing
// it on first use and caching the most recent graphs by identity. Graphs are
// immutable once built (the store swaps pointers on update), so pointer
// identity is a sound cache key. Two concurrent first queries may both
// compute the matrix; both results are identical and one wins the cache
// slot — a benign cost, taken to avoid serializing unrelated graphs behind
// one fixed-point iteration.
func SharedMatrix(g *graph.Graph) (*Matrix, error) {
	matrixCache.Lock()
	for i, e := range matrixCache.entries {
		if e.g == g {
			// Refresh LRU position.
			matrixCache.entries = append(append(matrixCache.entries[:i:i], matrixCache.entries[i+1:]...), e)
			matrixCache.Unlock()
			return e.m, nil
		}
	}
	matrixCache.Unlock()
	m, err := Compute(g, nil)
	if err != nil {
		return nil, err
	}
	matrixCache.Lock()
	matrixCache.entries = append(matrixCache.entries, matrixEntry{g: g, m: m})
	if len(matrixCache.entries) > matrixCacheCap {
		matrixCache.entries = matrixCache.entries[1:]
	}
	matrixCache.Unlock()
	return m, nil
}

// Joiner is SR-SCAN: the top-k 2-way join under SimRank. It satisfies
// join2.Joiner, so the rejoin stream, the serving layer, and the n-way
// per-edge machinery drive it exactly like the walk joiners. The walk knobs
// of the config (Params, D, Measure, Workers, BatchWidth, Pool, Memo) are
// accepted and ignored — SimRank scores come from the fixed point, not from
// walks — which is what lets one join2.Config type serve every measure.
type Joiner struct {
	cfg join2.Config
	m   *Matrix
}

// NewJoiner validates the config and returns an SR-SCAN joiner. The matrix
// is computed lazily on the first TopK, so opening a stream stays cheap.
func NewJoiner(cfg join2.Config) (*Joiner, error) {
	// The walk knobs are ignored here (SimRank scores come from the fixed
	// point), so a caller that never resolved them should not be rejected
	// by the walk-centric config validation.
	if cfg.Params == (dht.Params{}) {
		cfg.Params = dht.DHTLambda(0.2)
	}
	if cfg.D == 0 {
		cfg.D = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n := cfg.Graph.NumNodes(); n > maxNodes {
		return nil, fmt.Errorf("simrank: dense iteration limited to %d nodes, got %d", maxNodes, n)
	}
	return &Joiner{cfg: cfg}, nil
}

// Name identifies the executor in plans and reports.
func (j *Joiner) Name() string { return "SR-SCAN" }

// canceled polls the config's cancellation hook.
func (j *Joiner) canceled() error {
	if j.cfg.Cancel == nil {
		return nil
	}
	return j.cfg.Cancel()
}

// TopK returns the k highest-SimRank pairs (p, q) ∈ P×Q in descending score
// order with the canonical join2 tie key, so every top-m selection is a
// prefix of the top-(m+1) selection — the invariant the rejoin stream
// depends on. The candidate space is scanned against a bounded heap; the
// full |P|×|Q| score matrix is never materialized. Cancellation is polled
// per source row.
func (j *Joiner) TopK(k int) ([]join2.Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("simrank: k must be positive, got %d", k)
	}
	if err := j.canceled(); err != nil {
		return nil, err
	}
	if j.m == nil {
		m, err := SharedMatrix(j.cfg.Graph)
		if err != nil {
			return nil, err
		}
		j.m = m
	}
	if space := j.cfg.MaxPairs(); k > space {
		k = space
	}
	top := pqueue.NewTopK[join2.Pair](k)
	for _, a := range j.cfg.P {
		if err := j.canceled(); err != nil {
			return nil, err
		}
		row := j.m.s[int(a)*j.m.n:]
		for _, b := range j.cfg.Q {
			pr := join2.Pair{P: a, Q: b}
			top.AddTie(pr, row[b], join2.TieKey(pr))
		}
	}
	pairs, scores := top.Sorted()
	out := make([]join2.Result, len(pairs))
	for i := range pairs {
		out[i] = join2.Result{Pair: pairs[i], Score: scores[i]}
	}
	return out, nil
}

// costSRScan prices SR-SCAN for the planner: the fixed-point iteration
// (iters rounds of Σ_{a,b} |I(a)|·|I(b)| pair recursions, modeled through
// the mean degree) plus the heap scan over the candidate space. The compute
// term dominates by orders of magnitude on anything but trivial graphs —
// which is honest: it is what a cold SimRank query costs. The per-graph
// matrix cache makes warm queries far cheaper, but the planner has no
// cross-query state to see that, and for a given measure the estimate only
// orders SimRank executors against each other anyway.
func costSRScan(w plan.Workload) float64 {
	n := float64(w.Stats.Nodes)
	deg := w.Stats.MeanOutDeg
	if deg < 1 {
		deg = 1
	}
	const defaultIters = 10
	compute := defaultIters * n * n * deg * deg / 2
	pq := float64(w.P) * float64(w.Q)
	return compute + pq*plan.PairCost
}

func init() {
	plan.Register(plan.Descriptor{
		Name:    "SR-SCAN",
		Class:   plan.TwoWay,
		Measure: "simrank",
		// Materializing executor: streaming past the initial batch re-joins
		// with a grown budget (cheap here — the matrix is cached on the
		// joiner, so a re-join is one heap scan).
		Streaming: false,
		Resumable: false,
		Cost:      costSRScan,
		New:       join2.Factory(func(cfg join2.Config) (join2.Joiner, error) { return NewJoiner(cfg) }),
	})
}
