package simrank_test

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/simrank"
)

func joinerGraph(t *testing.T, seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes:      []int{50, 50},
		PIn:        0.1,
		POut:       0.02,
		Directed:   true,
		MaxWeight:  2,
		Seed:       seed,
		MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets[0].Nodes(), sets[1].Nodes()
}

// TestJoinerMatchesMatrix pins SR-SCAN to the reference ranking the dense
// matrix computes: same pairs, same float64 scores, same order.
func TestJoinerMatchesMatrix(t *testing.T) {
	for _, seed := range []int64{3, 21} {
		g, p, q := joinerGraph(t, seed)
		m, err := simrank.SharedMatrix(g)
		if err != nil {
			t.Fatal(err)
		}
		j, err := simrank.NewJoiner(join2.Config{Graph: g, P: p, Q: q})
		if err != nil {
			t.Fatal(err)
		}
		if j.Name() != "SR-SCAN" {
			t.Fatalf("joiner name = %q", j.Name())
		}
		for _, k := range []int{1, 7, 50, len(p) * len(q)} {
			want, err := m.TopKPairs(p, q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := j.TopK(k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed=%d k=%d: %d results, want %d", seed, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed=%d k=%d result %d: %+v, want %+v", seed, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestJoinerStreamPrefix: the rejoin stream over SR-SCAN yields the batch
// ranking pair by pair — the same prefix property every walk joiner has.
func TestJoinerStreamPrefix(t *testing.T) {
	g, p, q := joinerGraph(t, 5)
	cfg := join2.Config{Graph: g, P: p, Q: q}
	j, err := simrank.NewJoiner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	want, err := j.TopK(n)
	if err != nil {
		t.Fatal(err)
	}
	st, err := join2.NewNamedStream("SR-SCAN", cfg, join2.StreamSpec{Initial: 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	for i := 0; i < n; i++ {
		r, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stream dry at %d, want %d results", i, n)
		}
		if r != want[i] {
			t.Fatalf("stream result %d: %+v, batch says %+v", i, r, want[i])
		}
	}
}

// TestJoinerTieOrder: equal scores break by the canonical (P asc, Q asc)
// tie key, so the ranking is deterministic across runs and executors.
func TestJoinerTieOrder(t *testing.T) {
	// Two isolated 2-cycles: s(0,1) and s(2,3) are structurally identical,
	// so their pair scores tie and only the tie key orders them.
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 2, 1)
	g := b.Build()
	p := []graph.NodeID{0, 1, 2, 3}
	j, err := simrank.NewJoiner(join2.Config{Graph: g, P: p, Q: p})
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.TopK(len(p) * len(p))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatalf("scores not descending at %d", i)
		}
		if got[i].Score == got[i-1].Score && join2.TieKey(got[i].Pair) <= join2.TieKey(got[i-1].Pair) {
			t.Fatalf("tie at %d not broken by canonical key: %+v then %+v", i, got[i-1], got[i])
		}
	}
}

// TestJoinerCancel: a cancelled config stops the scan with the cause.
func TestJoinerCancel(t *testing.T) {
	g, p, q := joinerGraph(t, 9)
	boom := errors.New("stop")
	j, err := simrank.NewJoiner(join2.Config{Graph: g, P: p, Q: q, Cancel: func() error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.TopK(5); !errors.Is(err, boom) {
		t.Fatalf("cancelled TopK returned %v, want the cancel cause", err)
	}
}

// TestJoinerValidation: the config contract matches the walk joiners.
func TestJoinerValidation(t *testing.T) {
	g, p, q := joinerGraph(t, 9)
	if _, err := simrank.NewJoiner(join2.Config{Graph: nil, P: p, Q: q}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := simrank.NewJoiner(join2.Config{Graph: g, P: nil, Q: q}); err == nil {
		t.Fatal("empty P accepted")
	}
	if _, err := simrank.NewJoiner(join2.Config{Graph: g, P: p, Q: nil}); err == nil {
		t.Fatal("empty Q accepted")
	}
}
