package graph

import "fmt"

// This file is the deterministic node-range partitioner behind cluster
// mode: a graph's query-side node space [0, NumNodes) is split into
// contiguous ranges, one per shard, and a scatter query restricts each
// shard's P set to its range. Because every range is a pure function of
// (node count, part count), every node of a cluster computes the identical
// partition without coordination, and the union of the per-shard restricted
// joins is exactly the single-node join: the ranges partition the candidate
// space, and scores are unaffected (each shard walks the full graph).

// Range is one partition's half-open node-id interval [Lo, Hi).
type Range struct {
	Lo NodeID `json:"lo"`
	Hi NodeID `json:"hi"`
}

// Contains reports whether id falls inside the range.
func (r Range) Contains(id NodeID) bool { return id >= r.Lo && id < r.Hi }

// Len returns the number of node ids covered.
func (r Range) Len() int { return int(r.Hi - r.Lo) }

// PartitionRanges splits [0, n) into parts contiguous ranges whose sizes
// differ by at most one, deterministically: the first n%parts ranges get the
// extra node. parts > n yields trailing empty ranges (Lo == Hi) rather than
// an error, so a small graph placed on a large cluster still has exactly one
// range per shard.
func PartitionRanges(n, parts int) ([]Range, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: partition over negative node count %d", n)
	}
	if parts < 1 {
		return nil, fmt.Errorf("graph: partition count must be >= 1, got %d", parts)
	}
	base, extra := n/parts, n%parts
	out := make([]Range, parts)
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: NodeID(lo), Hi: NodeID(lo + size)}
		lo += size
	}
	return out, nil
}

// FilterRange returns the members of ids that fall inside r, preserving
// order. The result is always a fresh slice (never aliasing ids), so callers
// can retain it across further filtering of the same input.
func FilterRange(ids []NodeID, r Range) []NodeID {
	out := make([]NodeID, 0, len(ids))
	for _, id := range ids {
		if r.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}
