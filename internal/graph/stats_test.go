package graph

import (
	"sync"
	"testing"
)

// TestStatsCached: the cached accessor must agree with a fresh scan and be
// safe (and stable) under concurrent first use — the planner consults it on
// every query.
func TestStatsCached(t *testing.T) {
	g, _, err := GenerateCommunity(CommunityConfig{
		Sizes: []int{30, 30}, PIn: 0.2, POut: 0.05, Seed: 11, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ComputeStats(g)
	var wg sync.WaitGroup
	got := make([]Stats, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = g.Stats()
		}(i)
	}
	wg.Wait()
	for i, s := range got {
		if s != want {
			t.Fatalf("goroutine %d: Stats() = %+v, want %+v", i, s, want)
		}
	}
	if g.Stats() != want {
		t.Fatal("repeated Stats() drifted")
	}
}

// TestStatsEmptyGraph: the zero-node graph must not panic the cached path.
func TestStatsEmptyGraph(t *testing.T) {
	g := NewBuilder(0, true).Build()
	if s := g.Stats(); s.Nodes != 0 || s.Arcs != 0 {
		t.Fatalf("empty graph stats = %+v", s)
	}
}
