package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes structural properties of a graph. It is reported by the
// cmd/gengraph tool and used by dataset tests to check that synthetic graphs
// land near their target shapes.
type Stats struct {
	Nodes        int
	Arcs         int // directed arcs stored
	MinOutDeg    int
	MaxOutDeg    int
	MeanOutDeg   float64
	MedianOutDeg int
	Sinks        int // nodes with no out-edges
	Sources      int // nodes with no in-edges
	SelfLoops    int
	MeanWeight   float64
	Components   int // weakly connected components
	LargestComp  int // size of the largest weak component
}

// Stats returns the graph's structural summary, computed on first use and
// cached for the graph's lifetime (graphs are immutable after Build). The
// query planner consults it per query, which is why the one-time
// O(|V|+|E|) scan must not be paid per call; ad-hoc consumers that want a
// fresh scan (tests, tools fed by ComputeStats historically) can still call
// ComputeStats directly.
func (g *Graph) Stats() Stats {
	g.statsOnce.Do(func() { g.stats = ComputeStats(g) })
	return g.stats
}

// ComputeStats scans g once (plus a union-find pass) and fills a Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Arcs: g.NumEdges(), MinOutDeg: math.MaxInt}
	if g.NumNodes() == 0 {
		s.MinOutDeg = 0
		return s
	}
	degs := make([]int, g.NumNodes())
	var wsum float64
	for u := 0; u < g.NumNodes(); u++ {
		d := g.OutDegree(NodeID(u))
		degs[u] = d
		if d < s.MinOutDeg {
			s.MinOutDeg = d
		}
		if d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d == 0 {
			s.Sinks++
		}
		if g.InDegree(NodeID(u)) == 0 {
			s.Sources++
		}
		to, w, _ := g.OutEdges(NodeID(u))
		for j := range to {
			if int(to[j]) == u {
				s.SelfLoops++
			}
			wsum += w[j]
		}
	}
	s.MeanOutDeg = float64(g.NumEdges()) / float64(g.NumNodes())
	sort.Ints(degs)
	s.MedianOutDeg = degs[len(degs)/2]
	if g.NumEdges() > 0 {
		s.MeanWeight = wsum / float64(g.NumEdges())
	}
	s.Components, s.LargestComp = weakComponents(g)
	return s
}

// String renders the stats as a compact single-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d arcs=%d deg[min=%d med=%d mean=%.2f max=%d] sinks=%d sources=%d loops=%d meanW=%.2f comps=%d largest=%d",
		s.Nodes, s.Arcs, s.MinOutDeg, s.MedianOutDeg, s.MeanOutDeg, s.MaxOutDeg,
		s.Sinks, s.Sources, s.SelfLoops, s.MeanWeight, s.Components, s.LargestComp)
}

// weakComponents returns the number of weakly connected components and the
// size of the largest, via union-find over all arcs.
func weakComponents(g *Graph) (count, largest int) {
	n := g.NumNodes()
	if n == 0 {
		return 0, 0
	}
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for u := 0; u < n; u++ {
		to, _, _ := g.OutEdges(NodeID(u))
		for _, v := range to {
			union(int32(u), v)
		}
	}
	seen := make(map[int32]struct{})
	for u := 0; u < n; u++ {
		r := find(int32(u))
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		count++
		if int(size[r]) > largest {
			largest = int(size[r])
		}
	}
	return count, largest
}

// Subgraph returns the induced subgraph over keep (a set of node ids) plus a
// mapping from new ids to original ids. Node sets can be remapped with the
// returned translation.
func Subgraph(g *Graph, keep []NodeID) (*Graph, []NodeID) {
	newID := make(map[NodeID]NodeID, len(keep))
	orig := make([]NodeID, 0, len(keep))
	for _, u := range keep {
		if _, dup := newID[u]; dup {
			continue
		}
		newID[u] = NodeID(len(orig))
		orig = append(orig, u)
	}
	b := NewBuilder(len(orig), true)
	for nu, ou := range orig {
		to, w, _ := g.OutEdges(ou)
		for j := range to {
			if nv, ok := newID[to[j]]; ok {
				b.AddEdge(NodeID(nu), nv, w[j])
			}
		}
		if l := g.Label(ou); l != "" {
			b.SetLabel(NodeID(nu), l)
		}
	}
	return b.Build(), orig
}

// RemoveEdges returns a copy of g without the given undirected edges (both
// arc directions are removed). Missing edges are ignored. Used to build the
// paper's "test graph" T from the true graph G (§VII-B).
func RemoveEdges(g *Graph, drop [][2]NodeID) *Graph {
	type key struct{ u, v NodeID }
	dropSet := make(map[key]struct{}, 2*len(drop))
	for _, e := range drop {
		dropSet[key{e[0], e[1]}] = struct{}{}
		dropSet[key{e[1], e[0]}] = struct{}{}
	}
	b := NewBuilder(g.NumNodes(), true)
	for u := 0; u < g.NumNodes(); u++ {
		to, w, _ := g.OutEdges(NodeID(u))
		for j := range to {
			if _, gone := dropSet[key{NodeID(u), to[j]}]; gone {
				continue
			}
			b.AddEdge(NodeID(u), to[j], w[j])
		}
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(NodeID(u), l)
		}
	}
	return b.Build()
}
