package graph

import (
	"math/rand"
)

// CloseTriads returns a copy of g with up to extra additional undirected
// unit-weight edges, each closing a randomly sampled wedge (u–x–v becomes a
// triangle). Real social and biological graphs are strongly transitive;
// random community models are not, so the synthetic datasets apply this
// transform to restore the triangle structure that link- and
// clique-prediction experiments rely on (§VII-B).
//
// Wedge endpoints are sampled degree-proportionally (via a uniformly random
// arc), matching how clustering concentrates around hubs. Sampling stops
// after 20·extra attempts even if fewer edges were added (e.g. on graphs
// that are already cliques).
func CloseTriads(g *Graph, extra int, seed int64) *Graph {
	if extra <= 0 || g.NumEdges() == 0 {
		return g
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(g.NumNodes(), true)
	type arc struct{ u, v NodeID }
	existing := make(map[arc]struct{}, g.NumEdges()+2*extra)
	for u := 0; u < g.NumNodes(); u++ {
		to, w, _ := g.OutEdges(NodeID(u))
		for j := range to {
			b.AddEdge(NodeID(u), to[j], w[j])
			existing[arc{NodeID(u), to[j]}] = struct{}{}
		}
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(NodeID(u), l)
		}
	}
	added := 0
	for attempt := 0; added < extra && attempt < 20*extra; attempt++ {
		x := NodeID(rng.Intn(g.NumNodes()))
		to, _, _ := g.OutEdges(x)
		if len(to) < 2 {
			continue
		}
		u := to[rng.Intn(len(to))]
		v := to[rng.Intn(len(to))]
		if u == v {
			continue
		}
		if _, dup := existing[arc{u, v}]; dup {
			continue
		}
		b.AddEdge(u, v, 1)
		b.AddEdge(v, u, 1)
		existing[arc{u, v}] = struct{}{}
		existing[arc{v, u}] = struct{}{}
		added++
	}
	return b.Build()
}
