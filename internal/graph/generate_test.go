package graph

import (
	"testing"
	"testing/quick"
)

func TestGenerateCommunityShape(t *testing.T) {
	cfg := CommunityConfig{
		Sizes: []int{50, 50, 50}, PIn: 0.2, POut: 0.02, Seed: 42, MaxWeight: 5,
	}
	g, sets, err := GenerateCommunity(cfg)
	if err != nil {
		t.Fatalf("GenerateCommunity: %v", err)
	}
	if g.NumNodes() != 150 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if len(sets) != 3 || sets[0].Len() != 50 {
		t.Fatalf("sets wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Within-community arcs should dominate cross arcs.
	within, cross := 0, 0
	community := make([]int, g.NumNodes())
	for c, s := range sets {
		for _, id := range s.Nodes() {
			community[id] = c
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		to, _, _ := g.OutEdges(NodeID(u))
		for _, v := range to {
			if community[u] == community[v] {
				within++
			} else {
				cross++
			}
		}
	}
	if within <= cross {
		t.Fatalf("community structure too weak: within=%d cross=%d", within, cross)
	}
}

func TestGenerateCommunityDeterministic(t *testing.T) {
	cfg := CommunityConfig{Sizes: []int{30, 30}, PIn: 0.3, POut: 0.05, Seed: 11}
	g1, _, err1 := GenerateCommunity(cfg)
	g2, _, err2 := GenerateCommunity(cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v %v", err1, err2)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("non-deterministic: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
}

func TestGenerateCommunityMinOutLink(t *testing.T) {
	g, _, err := GenerateCommunity(CommunityConfig{
		Sizes: []int{40, 40}, PIn: 0.02, POut: 0.0, Seed: 5, MinOutLink: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(NodeID(u)) < 2 {
			t.Fatalf("node %d has out-degree %d < MinOutLink", u, g.OutDegree(NodeID(u)))
		}
	}
}

func TestGenerateCommunityErrors(t *testing.T) {
	if _, _, err := GenerateCommunity(CommunityConfig{}); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, _, err := GenerateCommunity(CommunityConfig{Sizes: []int{0}}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, _, err := GenerateCommunity(CommunityConfig{Sizes: []int{5}, PIn: 2}); err == nil {
		t.Fatal("p > 1 accepted")
	}
}

func TestGeneratePreferential(t *testing.T) {
	g, err := GeneratePreferential(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Components != 1 {
		t.Fatalf("BA graph disconnected: %d components", s.Components)
	}
	// Preferential attachment yields a heavy tail: max degree well above mean.
	if float64(s.MaxOutDeg) < 3*s.MeanOutDeg {
		t.Fatalf("degree distribution too flat: max=%d mean=%.1f", s.MaxOutDeg, s.MeanOutDeg)
	}
	if _, err := GeneratePreferential(1, 1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestGenerateER(t *testing.T) {
	g, err := GenerateER(100, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(g)
	if st.Sinks != 0 {
		t.Fatalf("ER generator left %d sinks", st.Sinks)
	}
	// Expected arcs ≈ n(n-1)p = 495; allow generous slack.
	if st.Arcs < 300 || st.Arcs > 750 {
		t.Fatalf("arc count %d far from expectation 495", st.Arcs)
	}
	if _, err := GenerateER(1, 0.5, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := GenerateER(10, 0, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestGenerateRing(t *testing.T) {
	g, err := GenerateRing(20, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(NodeID(u)) != 4 {
			t.Fatalf("ring node %d degree %d, want 4", u, g.OutDegree(NodeID(u)))
		}
	}
	if _, err := GenerateRing(20, 2, 0.3, 1); err != nil {
		t.Fatalf("rewired ring: %v", err)
	}
	if _, err := GenerateRing(4, 2, 0, 0); err == nil {
		t.Fatal("2k>=n accepted")
	}
}

func TestGenerateGridShape(t *testing.T) {
	g, err := GenerateGrid(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Arcs: horizontal 3*3 + vertical 4*2 = 17 undirected → 34 arcs.
	if g.NumEdges() != 34 {
		t.Fatalf("arcs = %d, want 34", g.NumEdges())
	}
	if _, err := GenerateGrid(0, 3); err == nil {
		t.Fatal("w=0 accepted")
	}
}

func TestGenerateBipartite(t *testing.T) {
	g, sets, err := GenerateBipartite(30, 40, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || sets[0].Len() != 30 || sets[1].Len() != 40 {
		t.Fatal("parts wrong")
	}
	// No within-part edges.
	for _, l := range sets[0].Nodes() {
		to, _, _ := g.OutEdges(l)
		for _, v := range to {
			if sets[0].Contains(v) {
				t.Fatalf("within-part edge (%d,%d)", l, v)
			}
		}
	}
	st := ComputeStats(g)
	if st.Sinks != 0 {
		t.Fatalf("bipartite generator left %d sinks", st.Sinks)
	}
}

func TestDecodePair(t *testing.T) {
	s := 5
	seen := make(map[[2]int]bool)
	total := s * (s - 1) / 2
	for idx := 0; idx < total; idx++ {
		i, j := decodePair(idx, s)
		if i < 0 || j <= i || j >= s {
			t.Fatalf("decodePair(%d,%d) = (%d,%d) invalid", idx, s, i, j)
		}
		key := [2]int{i, j}
		if seen[key] {
			t.Fatalf("pair (%d,%d) produced twice", i, j)
		}
		seen[key] = true
	}
	if len(seen) != total {
		t.Fatalf("covered %d of %d pairs", len(seen), total)
	}
}

// Property: all generators yield graphs that pass Validate and have rows
// summing to one.
func TestGeneratorsValidateProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfgs := []func() (*Graph, error){
			func() (*Graph, error) {
				g, _, err := GenerateCommunity(CommunityConfig{Sizes: []int{15, 10}, PIn: 0.3, POut: 0.1, Seed: seed, MaxWeight: 3})
				return g, err
			},
			func() (*Graph, error) { return GeneratePreferential(50, 2, seed) },
			func() (*Graph, error) { return GenerateER(40, 0.1, seed) },
			func() (*Graph, error) { return GenerateRing(30, 3, 0.2, seed) },
		}
		for _, mk := range cfgs {
			g, err := mk()
			if err != nil || g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricSkipBounds(t *testing.T) {
	// p=1 must always return 0 (every trial succeeds).
	rngSeeded := func(seed int64) bool {
		g, err := GenerateER(10, 1, seed)
		if err != nil {
			return false
		}
		// With p=1 every ordered non-self pair exists: 10*9 arcs.
		return g.NumEdges() == 90
	}
	if !rngSeeded(1) || !rngSeeded(2) {
		t.Fatal("p=1 did not produce the complete graph")
	}
}
