package graph

import (
	"fmt"
	"math"
)

// This file is the serialization seam between the immutable CSR graph and
// the persistent store (internal/store): raw access to the out-CSR arrays, a
// sort-free constructor that rebuilds a Graph from a previously-built CSR in
// O(|V|+|E|), a hook to install a persisted Stats summary without rescanning,
// and a deterministic edit operator the store's WAL replay is defined in
// terms of.

// CSR returns the graph's out-CSR arrays: outIndex (length NumNodes+1),
// outTo, and outW (length NumEdges each). The slices alias internal storage
// and must not be modified.
func (g *Graph) CSR() (outIndex []int64, outTo []NodeID, outW []float64) {
	return g.outIndex, g.outTo, g.outW
}

// RawLabels returns the node-label slice (nil when the graph is unlabeled).
// The slice aliases internal storage and must not be modified.
func (g *Graph) RawLabels() []string { return g.labels }

// PrimeStats installs a precomputed structural summary as the graph's cached
// Stats, so a graph loaded from a snapshot serves the query planner without
// paying the O(|V|+|E|) scan (plus union-find) on boot. It only takes effect
// if Stats has not been computed yet; later Stats calls return s verbatim.
func (g *Graph) PrimeStats(s Stats) {
	g.statsOnce.Do(func() { g.stats = s })
}

// NewFromCSR rebuilds a Graph directly from the out-CSR triple of a
// previously built graph (see CSR), recomputing transition probabilities and
// in-adjacency in O(|V|+|E|) — no edge sort, no duplicate merge. The input
// must satisfy the Builder's postconditions (monotone index, per-node targets
// strictly sorted, positive finite weights); violations are reported as
// errors, never panics, because the caller is typically deserializing
// untrusted bytes. labels may be nil or length n.
//
// The resulting graph is field-for-field identical to the graph the CSR was
// taken from: probabilities are recomputed with the same summation order the
// Builder uses, so joins over a reloaded graph are bit-identical to joins
// over the original.
func NewFromCSR(n int, outIndex []int64, outTo []NodeID, outW []float64, labels []string) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(outIndex) != n+1 {
		return nil, fmt.Errorf("graph: outIndex length %d, want %d", len(outIndex), n+1)
	}
	m := len(outTo)
	if len(outW) != m {
		return nil, fmt.Errorf("graph: outW length %d, want %d", len(outW), m)
	}
	if outIndex[0] != 0 || outIndex[n] != int64(m) {
		return nil, fmt.Errorf("graph: outIndex bounds [%d,%d], want [0,%d]", outIndex[0], outIndex[n], m)
	}
	g := &Graph{n: n, outIndex: outIndex, outTo: outTo, outW: outW}
	g.outP = make([]float64, m)
	for u := 0; u < n; u++ {
		lo, hi := outIndex[u], outIndex[u+1]
		if hi < lo || hi > int64(m) {
			return nil, fmt.Errorf("graph: out index not monotone at node %d", u)
		}
		var sum float64
		for j := lo; j < hi; j++ {
			v := outTo[j]
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: edge (%d,%d) target out of range", u, v)
			}
			if j > lo && v <= outTo[j-1] {
				return nil, fmt.Errorf("graph: out edges of %d not strictly sorted", u)
			}
			w := outW[j]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, v, w)
			}
			sum += w
		}
		if sum > 0 {
			for j := lo; j < hi; j++ {
				g.outP[j] = outW[j] / sum
			}
		}
	}
	// In-adjacency, by the Builder's counting pass (walking the out-CSR in
	// order keeps in-lists sorted by source).
	g.inIndex = make([]int64, n+1)
	g.inFrom = make([]NodeID, m)
	g.inW = make([]float64, m)
	g.inP = make([]float64, m)
	for _, v := range outTo {
		g.inIndex[v+1]++
	}
	for u := 0; u < n; u++ {
		g.inIndex[u+1] += g.inIndex[u]
	}
	next := make([]int64, n)
	for u := 0; u < n; u++ {
		next[u] = g.inIndex[u]
	}
	for u := 0; u < n; u++ {
		for j := outIndex[u]; j < outIndex[u+1]; j++ {
			v := outTo[j]
			i := next[v]
			g.inFrom[i] = NodeID(u)
			g.inW[i] = outW[j]
			g.inP[i] = g.outP[j]
			next[v]++
		}
	}
	if labels != nil {
		if len(labels) != n {
			return nil, fmt.Errorf("graph: labels length %d, want %d", len(labels), n)
		}
		g.labels = labels
	}
	return g, nil
}

// Edge is one weighted directed arc, the unit of the store's edge WAL.
type Edge struct {
	U, V NodeID
	W    float64
}

// ApplyEdits returns a new graph with adds inserted and dels removed, leaving
// g untouched. Adding an arc that already exists sums the weights (the
// Builder's duplicate convention); deleting removes the single directed arc
// (u,v) entirely and ignores arcs that do not exist. Node ids in adds beyond
// g's range grow the node count; ids in dels beyond it are ignored. Within
// one call, deletions are applied after all additions.
//
// The operation is deterministic: the same (g, adds, dels) always produces
// the bit-identical graph, which is what makes WAL replay reproduce exactly
// the graph the live process had — per-arc weights accumulate in a fixed
// order (g's arcs first, then adds in argument order).
func ApplyEdits(g *Graph, adds []Edge, dels [][2]NodeID) (*Graph, error) {
	n := g.NumNodes()
	for _, e := range adds {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: edit adds arc (%d,%d) with negative endpoint", e.U, e.V)
		}
		if e.W <= 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return nil, fmt.Errorf("graph: edit adds arc (%d,%d) with invalid weight %v", e.U, e.V, e.W)
		}
		if int(e.U) >= n {
			n = int(e.U) + 1
		}
		if int(e.V) >= n {
			n = int(e.V) + 1
		}
	}
	type arc struct{ u, v NodeID }
	// Accumulate per-arc weights in a fixed order (existing CSR order, then
	// adds in order), so duplicate sums are reproducible bit for bit.
	weight := make(map[arc]float64, g.NumEdges()+len(adds))
	for u := 0; u < g.NumNodes(); u++ {
		to, w, _ := g.OutEdges(NodeID(u))
		for j := range to {
			weight[arc{NodeID(u), to[j]}] += w[j]
		}
	}
	for _, e := range adds {
		weight[arc{e.U, e.V}] += e.W
	}
	for _, d := range dels {
		delete(weight, arc{d[0], d[1]})
	}
	b := NewBuilder(n, true)
	for a, w := range weight {
		b.AddEdge(a.u, a.v, w)
	}
	for u := 0; u < g.NumNodes(); u++ {
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(NodeID(u), l)
		}
	}
	return b.Build(), nil
}
