package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 0.25)
	b.SetLabel(0, "node zero")
	g := b.Build()
	sets := []*NodeSet{NewNodeSet("P", []NodeID{0, 1}), NewNodeSet("Q", []NodeID{2, 3})}

	var buf bytes.Buffer
	if err := WriteText(&buf, g, sets...); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, sets2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertGraphEqual(t, g, g2)
	if len(sets2) != 2 || sets2[0].Name != "P" || sets2[1].Len() != 2 {
		t.Fatalf("sets round trip wrong: %v", sets2)
	}
	if g2.Label(0) != "node zero" {
		t.Fatalf("label lost: %q", g2.Label(0))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g, sets, err := GenerateCommunity(CommunityConfig{
		Sizes: []int{20, 30}, PIn: 0.3, POut: 0.05, Seed: 7, MaxWeight: 4,
	})
	if err != nil {
		t.Fatalf("GenerateCommunity: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g, sets...); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, sets2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertGraphEqual(t, g, g2)
	if len(sets2) != 2 || sets2[0].Len() != 20 || sets2[1].Len() != 30 {
		t.Fatalf("sets wrong after binary round trip")
	}
}

func assertGraphEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for u := 0; u < a.NumNodes(); u++ {
		at, aw, ap := a.OutEdges(NodeID(u))
		bt, bw, bp := b.OutEdges(NodeID(u))
		if len(at) != len(bt) {
			t.Fatalf("node %d degree mismatch", u)
		}
		for j := range at {
			if at[j] != bt[j] || aw[j] != bw[j] || ap[j] != bp[j] {
				t.Fatalf("node %d edge %d mismatch", u, j)
			}
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "edge 0 1 1\n",
		"bad count":        "graph x\n",
		"dup header":       "graph 2\ngraph 2\n",
		"edge fields":      "graph 2\nedge 0 1\n",
		"edge range":       "graph 2\nedge 0 5 1\n",
		"edge weight":      "graph 2\nedge 0 1 -2\n",
		"edge zero weight": "graph 2\nedge 0 1 0\n",
		"bad directive":    "graph 2\nfoo\n",
		"node range":       "graph 2\nnode 7 hi\n",
		"node fields":      "graph 2\nnode 0\n",
		"nodeset member":   "graph 2\nnodeset S 9\n",
		"nodeset name":     "graph 2\nnodeset\n",
		"empty":            "",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := ReadText(strings.NewReader(input)); err == nil {
				t.Fatalf("input %q accepted", input)
			}
		})
	}
}

func TestReadTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# hello\n\ngraph 2 undirected\n# mid comment\nedge 0 1 1\n"
	g, _, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (undirected)", g.NumEdges())
	}
}

func TestReadBinaryGarbage(t *testing.T) {
	if _, _, err := ReadBinary(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestTextRoundTripProperty: any small random graph must survive a text
// round trip bit-exactly in structure.
func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := 2 + int(rawN)%20
		p := 0.05 + float64(rawP%90)/100
		g, err := GenerateER(n, p, seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			return false
		}
		g2, _, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			at, aw, _ := g.OutEdges(NodeID(u))
			bt, bw, _ := g2.OutEdges(NodeID(u))
			if len(at) != len(bt) {
				return false
			}
			for j := range at {
				if at[j] != bt[j] || aw[j] != bw[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
