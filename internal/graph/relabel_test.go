package graph

import (
	"math"
	"testing"
)

func relabelTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, _, err := GenerateCommunity(CommunityConfig{
		Sizes: []int{30, 25}, PIn: 0.15, POut: 0.05, Seed: 9, MaxWeight: 4, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRelabelingBijection: both orderings must produce a permutation whose
// two maps invert each other.
func TestRelabelingBijection(t *testing.T) {
	g := relabelTestGraph(t)
	for name, mk := range map[string]func(*Graph) *Relabeling{
		"degree": DegreeOrder,
		"bfs":    BFSOrder,
	} {
		r := mk(g)
		if r.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: relabeling covers %d nodes, want %d", name, r.NumNodes(), g.NumNodes())
		}
		seen := make([]bool, g.NumNodes())
		for u := 0; u < g.NumNodes(); u++ {
			nu := r.ToNew(NodeID(u))
			if r.ToOld(nu) != NodeID(u) {
				t.Fatalf("%s: ToOld(ToNew(%d)) = %d", name, u, r.ToOld(nu))
			}
			if seen[nu] {
				t.Fatalf("%s: new id %d assigned twice", name, nu)
			}
			seen[nu] = true
		}
	}
}

// TestRelabelApplyPreservesStructure: the relabeled graph must validate, and
// every arc with its weight and transition probability must map over
// exactly — same edge multiset under the id bijection, same per-edge p.
func TestRelabelApplyPreservesStructure(t *testing.T) {
	g := relabelTestGraph(t)
	for name, mk := range map[string]func(*Graph) (*Graph, *Relabeling){
		"degree": RelabelDegree,
		"bfs":    RelabelBFS,
	} {
		rg, r := mk(g)
		if err := rg.Validate(); err != nil {
			t.Fatalf("%s: relabeled graph invalid: %v", name, err)
		}
		if rg.NumNodes() != g.NumNodes() || rg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: size changed: %d/%d nodes, %d/%d edges",
				name, rg.NumNodes(), g.NumNodes(), rg.NumEdges(), g.NumEdges())
		}
		for u := 0; u < g.NumNodes(); u++ {
			to, w, p := g.OutEdges(NodeID(u))
			for j := range to {
				nw, ok := rg.EdgeWeight(r.ToNew(NodeID(u)), r.ToNew(to[j]))
				if !ok {
					t.Fatalf("%s: arc (%d,%d) missing after relabel", name, u, to[j])
				}
				if nw != w[j] {
					t.Fatalf("%s: arc (%d,%d) weight %v != %v", name, u, to[j], nw, w[j])
				}
				_ = p
			}
			// Transition rows must carry the same distribution: compare the
			// probability of each mapped arc.
			nto, _, np := rg.OutEdges(r.ToNew(NodeID(u)))
			probOf := make(map[NodeID]float64, len(nto))
			for j := range nto {
				probOf[nto[j]] = np[j]
			}
			for j := range to {
				got := probOf[r.ToNew(to[j])]
				if math.Abs(got-p[j]) > 1e-15 {
					t.Fatalf("%s: arc (%d,%d) transition prob %v != %v", name, u, to[j], got, p[j])
				}
			}
		}
		if g.Labeled() {
			for u := 0; u < g.NumNodes(); u++ {
				if rg.Label(r.ToNew(NodeID(u))) != g.Label(NodeID(u)) {
					t.Fatalf("%s: label of %d not carried over", name, u)
				}
			}
		}
	}
}

// TestDegreeOrderIsDescending pins the ordering property the cache argument
// rests on.
func TestDegreeOrderIsDescending(t *testing.T) {
	g := relabelTestGraph(t)
	rg, r := RelabelDegree(g)
	prev := math.MaxInt
	for nu := 0; nu < rg.NumNodes(); nu++ {
		d := rg.OutDegree(NodeID(nu)) + rg.InDegree(NodeID(nu))
		if d > prev {
			t.Fatalf("degree order violated at new id %d: %d > %d", nu, d, prev)
		}
		prev = d
	}
	_ = r
}

// TestRelabelMapHelpers covers the slice/set mapping helpers.
func TestRelabelMapHelpers(t *testing.T) {
	g := relabelTestGraph(t)
	r := DegreeOrder(g)
	ids := []NodeID{0, 5, 9}
	back := r.MapToOld(r.MapToNew(ids))
	for i := range ids {
		if back[i] != ids[i] {
			t.Fatalf("MapToOld∘MapToNew(%d) = %d", ids[i], back[i])
		}
	}
	s := NewNodeSet("S", ids)
	ms := r.MapSetToNew(s)
	if ms.Name != "S" || ms.Len() != s.Len() {
		t.Fatalf("MapSetToNew changed name/size: %q %d", ms.Name, ms.Len())
	}
	for i, id := range ms.Nodes() {
		if r.ToOld(id) != ids[i] {
			t.Fatalf("set member %d maps back to %d, want %d", id, r.ToOld(id), ids[i])
		}
	}
}
