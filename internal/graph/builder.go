package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate arcs are merged by summing their weights (matching the DBLP
// convention where the weight of (u,v) is the number of co-authored papers).
type Builder struct {
	n        int
	directed bool
	us, vs   []NodeID
	ws       []float64
	labels   map[NodeID]string
}

// NewBuilder returns a Builder for a graph with n nodes. If directed is
// false, AddEdge inserts both (u,v) and (v,u).
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{n: n, directed: directed}
}

// Directed reports whether the builder inserts single arcs per AddEdge.
func (b *Builder) Directed() bool { return b.directed }

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// Grow ensures the builder has at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// AddEdge inserts an arc (u,v) with weight w; for undirected builders the
// reverse arc is inserted too. Self-loops are allowed. It panics on invalid
// endpoints or non-positive/non-finite weights: those indicate programming
// errors in callers, not recoverable conditions.
func (b *Builder) AddEdge(u, v NodeID, w float64) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: edge (%d,%d) has invalid weight %v", u, v, w))
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	if !b.directed && u != v {
		b.us = append(b.us, v)
		b.vs = append(b.vs, u)
		b.ws = append(b.ws, w)
	}
}

// SetLabel attaches a label to node u.
func (b *Builder) SetLabel(u NodeID, label string) {
	if b.labels == nil {
		b.labels = make(map[NodeID]string)
	}
	b.labels[u] = label
}

// Build produces the immutable CSR graph. The builder may be reused
// afterwards, but further edges do not affect the built graph.
func (b *Builder) Build() *Graph {
	type arc struct {
		u, v NodeID
		w    float64
	}
	arcs := make([]arc, len(b.us))
	for i := range b.us {
		arcs[i] = arc{b.us[i], b.vs[i], b.ws[i]}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	// Merge duplicates by summing weights.
	merged := arcs[:0]
	for _, a := range arcs {
		if len(merged) > 0 {
			last := &merged[len(merged)-1]
			if last.u == a.u && last.v == a.v {
				last.w += a.w
				continue
			}
		}
		merged = append(merged, a)
	}

	g := &Graph{n: b.n}
	g.outIndex = make([]int64, b.n+1)
	g.outTo = make([]NodeID, len(merged))
	g.outW = make([]float64, len(merged))
	g.outP = make([]float64, len(merged))
	for _, a := range merged {
		g.outIndex[a.u+1]++
	}
	for u := 0; u < b.n; u++ {
		g.outIndex[u+1] += g.outIndex[u]
	}
	{
		next := make([]int64, b.n)
		for u := 0; u < b.n; u++ {
			next[u] = g.outIndex[u]
		}
		for _, a := range merged {
			j := next[a.u]
			g.outTo[j] = a.v
			g.outW[j] = a.w
			next[a.u]++
		}
	}
	// Transition probabilities.
	for u := 0; u < b.n; u++ {
		lo, hi := g.outIndex[u], g.outIndex[u+1]
		var sum float64
		for j := lo; j < hi; j++ {
			sum += g.outW[j]
		}
		if sum > 0 {
			for j := lo; j < hi; j++ {
				g.outP[j] = g.outW[j] / sum
			}
		}
	}
	// In-adjacency.
	g.inIndex = make([]int64, b.n+1)
	g.inFrom = make([]NodeID, len(merged))
	g.inW = make([]float64, len(merged))
	g.inP = make([]float64, len(merged))
	for _, a := range merged {
		g.inIndex[a.v+1]++
	}
	for u := 0; u < b.n; u++ {
		g.inIndex[u+1] += g.inIndex[u]
	}
	{
		next := make([]int64, b.n)
		for u := 0; u < b.n; u++ {
			next[u] = g.inIndex[u]
		}
		// Walk out-CSR in order so in-lists are sorted by source.
		for u := 0; u < b.n; u++ {
			for j := g.outIndex[u]; j < g.outIndex[u+1]; j++ {
				v := g.outTo[j]
				i := next[v]
				g.inFrom[i] = NodeID(u)
				g.inW[i] = g.outW[j]
				g.inP[i] = g.outP[j]
				next[v]++
			}
		}
	}
	if b.labels != nil {
		g.labels = make([]string, b.n)
		for u, l := range b.labels {
			g.labels[u] = l
		}
	}
	return g
}
