package graph

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line oriented:
//
//	# comment
//	graph <nodes> <directed|undirected>
//	node <id> <label...>            (optional)
//	edge <u> <v> <weight>
//	nodeset <name> <id> <id> ...    (optional, may repeat a name to extend it)
//
// It is intended for small fixtures and interchange; use WriteBinary for bulk.

// WriteText serializes g (and optional node sets) in the text format.
func WriteText(w io.Writer, g *Graph, sets ...*NodeSet) error {
	bw := bufio.NewWriter(w)
	dir := "directed"
	fmt.Fprintf(bw, "graph %d %s\n", g.NumNodes(), dir)
	if g.Labeled() {
		for u := 0; u < g.NumNodes(); u++ {
			if l := g.Label(NodeID(u)); l != "" {
				fmt.Fprintf(bw, "node %d %s\n", u, l)
			}
		}
	}
	for u := 0; u < g.NumNodes(); u++ {
		to, wts, _ := g.OutEdges(NodeID(u))
		for j := range to {
			fmt.Fprintf(bw, "edge %d %d %g\n", u, to[j], wts[j])
		}
	}
	for _, s := range sets {
		var sb strings.Builder
		sb.WriteString("nodeset ")
		sb.WriteString(s.Name)
		for _, id := range s.Nodes() {
			sb.WriteByte(' ')
			sb.WriteString(strconv.Itoa(int(id)))
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format, returning the graph and any node sets in
// declaration order.
func ReadText(r io.Reader) (*Graph, []*NodeSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var b *Builder
	setIDs := make(map[string][]NodeID)
	var setOrder []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if b != nil {
				return nil, nil, fmt.Errorf("graph text line %d: duplicate graph header", lineNo)
			}
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("graph text line %d: graph header needs a node count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("graph text line %d: bad node count %q", lineNo, fields[1])
			}
			directed := true
			if len(fields) >= 3 && fields[2] == "undirected" {
				directed = false
			}
			b = NewBuilder(n, directed)
		case "node":
			if b == nil {
				return nil, nil, fmt.Errorf("graph text line %d: node before graph header", lineNo)
			}
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("graph text line %d: node needs id and label", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= b.NumNodes() {
				return nil, nil, fmt.Errorf("graph text line %d: bad node id %q", lineNo, fields[1])
			}
			b.SetLabel(NodeID(id), strings.Join(fields[2:], " "))
		case "edge":
			if b == nil {
				return nil, nil, fmt.Errorf("graph text line %d: edge before graph header", lineNo)
			}
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("graph text line %d: edge needs u v w", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("graph text line %d: malformed edge %q", lineNo, line)
			}
			if u < 0 || u >= b.NumNodes() || v < 0 || v >= b.NumNodes() {
				return nil, nil, fmt.Errorf("graph text line %d: edge (%d,%d) out of range", lineNo, u, v)
			}
			if w <= 0 {
				return nil, nil, fmt.Errorf("graph text line %d: edge weight must be positive, got %g", lineNo, w)
			}
			b.AddEdge(NodeID(u), NodeID(v), w)
		case "nodeset":
			if b == nil {
				return nil, nil, fmt.Errorf("graph text line %d: nodeset before graph header", lineNo)
			}
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("graph text line %d: nodeset needs a name", lineNo)
			}
			name := fields[1]
			if _, seen := setIDs[name]; !seen {
				setOrder = append(setOrder, name)
			}
			for _, f := range fields[2:] {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= b.NumNodes() {
					return nil, nil, fmt.Errorf("graph text line %d: bad nodeset member %q", lineNo, f)
				}
				setIDs[name] = append(setIDs[name], NodeID(id))
			}
		default:
			return nil, nil, fmt.Errorf("graph text line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if b == nil {
		return nil, nil, fmt.Errorf("graph text: missing graph header")
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	sets := make([]*NodeSet, 0, len(setOrder))
	for _, name := range setOrder {
		sets = append(sets, NewNodeSet(name, setIDs[name]))
	}
	return g, sets, nil
}

// binaryFile is the gob payload for WriteBinary/ReadBinary.
type binaryFile struct {
	N        int
	OutIndex []int64
	OutTo    []NodeID
	OutW     []float64
	Labels   []string
	SetName  []string
	SetIDs   [][]NodeID
}

// WriteBinary serializes g and node sets with encoding/gob. Only the out-CSR
// and weights are stored; probabilities and in-adjacency are rebuilt on load.
func WriteBinary(w io.Writer, g *Graph, sets ...*NodeSet) error {
	f := binaryFile{
		N:        g.n,
		OutIndex: g.outIndex,
		OutTo:    g.outTo,
		OutW:     g.outW,
		Labels:   g.labels,
	}
	for _, s := range sets {
		f.SetName = append(f.SetName, s.Name)
		f.SetIDs = append(f.SetIDs, s.Nodes())
	}
	return gob.NewEncoder(w).Encode(&f)
}

// ReadBinary loads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, []*NodeSet, error) {
	var f binaryFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, nil, err
	}
	b := NewBuilder(f.N, true)
	for u := 0; u < f.N; u++ {
		if int(f.OutIndex[u+1]) > len(f.OutTo) || f.OutIndex[u] > f.OutIndex[u+1] {
			return nil, nil, fmt.Errorf("graph binary: corrupt CSR index at node %d", u)
		}
		for j := f.OutIndex[u]; j < f.OutIndex[u+1]; j++ {
			b.AddEdge(NodeID(u), f.OutTo[j], f.OutW[j])
		}
	}
	for u, l := range f.Labels {
		if l != "" {
			b.SetLabel(NodeID(u), l)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	var sets []*NodeSet
	for i, name := range f.SetName {
		sets = append(sets, NewNodeSet(name, f.SetIDs[i]))
	}
	return g, sets, nil
}
