package graph

import "testing"

func TestPartitionRangesCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 101, 4096} {
		for _, parts := range []int{1, 2, 3, 5, 8, 200} {
			ranges, err := PartitionRanges(n, parts)
			if err != nil {
				t.Fatalf("PartitionRanges(%d, %d): %v", n, parts, err)
			}
			if len(ranges) != parts {
				t.Fatalf("PartitionRanges(%d, %d): got %d ranges", n, parts, len(ranges))
			}
			next := NodeID(0)
			for i, r := range ranges {
				if r.Lo != next {
					t.Fatalf("n=%d parts=%d: range %d starts at %d, want %d", n, parts, i, r.Lo, next)
				}
				if r.Hi < r.Lo {
					t.Fatalf("n=%d parts=%d: range %d inverted: %+v", n, parts, i, r)
				}
				next = r.Hi
			}
			if int(next) != n {
				t.Fatalf("n=%d parts=%d: ranges end at %d", n, parts, next)
			}
		}
	}
}

func TestPartitionRangesBalanced(t *testing.T) {
	ranges, err := PartitionRanges(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{ranges[0].Len(), ranges[1].Len(), ranges[2].Len()}
	want := []int{4, 3, 3} // first n%parts ranges carry the extra node
	for i := range sizes {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestPartitionRangesDeterministic(t *testing.T) {
	a, _ := PartitionRanges(997, 7)
	b, _ := PartitionRanges(997, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("range %d differs across calls: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionRangesErrors(t *testing.T) {
	if _, err := PartitionRanges(-1, 2); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := PartitionRanges(10, 0); err == nil {
		t.Fatal("zero parts accepted")
	}
}

func TestFilterRange(t *testing.T) {
	ids := []NodeID{9, 1, 5, 3, 7, 2}
	got := FilterRange(ids, Range{Lo: 2, Hi: 6})
	want := []NodeID{5, 3, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (order must be preserved)", got, want)
		}
	}
	// Filtering across all parts partitions the input.
	ranges, _ := PartitionRanges(10, 3)
	total := 0
	for _, r := range ranges {
		total += len(FilterRange(ids, r))
	}
	if total != len(ids) {
		t.Fatalf("ranges dropped or duplicated ids: %d of %d survived", total, len(ids))
	}
}
