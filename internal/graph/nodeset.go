package graph

import (
	"fmt"
	"sort"
)

// NodeSet is a named subset of a graph's nodes, the R_i of the paper's query
// model. Membership tests are O(1); iteration follows Nodes order.
type NodeSet struct {
	Name  string
	nodes []NodeID
	in    map[NodeID]struct{}
}

// NewNodeSet builds a node set from ids, dropping duplicates while keeping
// first-occurrence order.
func NewNodeSet(name string, ids []NodeID) *NodeSet {
	s := &NodeSet{Name: name, in: make(map[NodeID]struct{}, len(ids))}
	for _, id := range ids {
		if _, dup := s.in[id]; dup {
			continue
		}
		s.in[id] = struct{}{}
		s.nodes = append(s.nodes, id)
	}
	return s
}

// Nodes returns the member ids in insertion order. The slice must not be
// modified.
func (s *NodeSet) Nodes() []NodeID { return s.nodes }

// Len returns the number of members.
func (s *NodeSet) Len() int { return len(s.nodes) }

// Contains reports whether id is a member.
func (s *NodeSet) Contains(id NodeID) bool {
	_, ok := s.in[id]
	return ok
}

// Sorted returns a new slice of the member ids in ascending order.
func (s *NodeSet) Sorted() []NodeID {
	out := make([]NodeID, len(s.nodes))
	copy(out, s.nodes)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks that all members are valid node ids of g.
func (s *NodeSet) Validate(g *Graph) error {
	for _, id := range s.nodes {
		if id < 0 || int(id) >= g.NumNodes() {
			return fmt.Errorf("nodeset %q: node %d out of range [0,%d)", s.Name, id, g.NumNodes())
		}
	}
	return nil
}

// Intersect returns the members of s that are also in t, preserving s's order.
func (s *NodeSet) Intersect(t *NodeSet) *NodeSet {
	var ids []NodeID
	for _, id := range s.nodes {
		if t.Contains(id) {
			ids = append(ids, id)
		}
	}
	return NewNodeSet(s.Name+"∩"+t.Name, ids)
}

// Take returns a node set with the first n members of s (or all of them when
// n exceeds the size).
func (s *NodeSet) Take(n int) *NodeSet {
	if n > len(s.nodes) {
		n = len(s.nodes)
	}
	return NewNodeSet(s.Name, s.nodes[:n])
}
