package graph

import (
	"fmt"
	"sort"
)

// Relabeling is a bijective old↔new node-id map produced by a locality
// ordering. It is applied at build/load time (Apply rebuilds the CSR under
// the new ids) and inverted on output (ToOld maps result ids back), so
// callers keep speaking the original id space while the walk kernels scan a
// cache-friendlier CSR: hot high-degree rows cluster at the front of every
// array, and BFS ordering additionally keeps a frontier's neighbors in
// nearby blocks.
type Relabeling struct {
	oldToNew, newToOld []NodeID
}

// NumNodes returns the number of nodes the relabeling covers.
func (r *Relabeling) NumNodes() int { return len(r.oldToNew) }

// ToNew maps an original node id into the relabeled graph.
func (r *Relabeling) ToNew(u NodeID) NodeID { return r.oldToNew[u] }

// ToOld maps a relabeled node id back to the original graph.
func (r *Relabeling) ToOld(u NodeID) NodeID { return r.newToOld[u] }

// MapToNew returns a new slice with every id mapped into the relabeled
// graph.
func (r *Relabeling) MapToNew(ids []NodeID) []NodeID {
	out := make([]NodeID, len(ids))
	for i, u := range ids {
		out[i] = r.oldToNew[u]
	}
	return out
}

// MapToOld returns a new slice with every id mapped back to the original
// graph.
func (r *Relabeling) MapToOld(ids []NodeID) []NodeID {
	out := make([]NodeID, len(ids))
	for i, u := range ids {
		out[i] = r.newToOld[u]
	}
	return out
}

// MapSetToNew returns the node set expressed in the relabeled id space,
// preserving the set's name and member order.
func (r *Relabeling) MapSetToNew(s *NodeSet) *NodeSet {
	return NewNodeSet(s.Name, r.MapToNew(s.Nodes()))
}

// fromOrder builds the bijection from a visit order: order[i] is the old id
// that becomes new id i.
func fromOrder(order []NodeID) *Relabeling {
	r := &Relabeling{
		oldToNew: make([]NodeID, len(order)),
		newToOld: order,
	}
	for newID, oldID := range order {
		r.oldToNew[oldID] = NodeID(newID)
	}
	return r
}

// degreeOrder lists the nodes by descending total degree (in + out arcs),
// ties broken by ascending old id so the ordering is deterministic.
func degreeOrder(g *Graph) []NodeID {
	order := make([]NodeID, g.NumNodes())
	for u := range order {
		order[u] = NodeID(u)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di := g.OutDegree(order[i]) + g.InDegree(order[i])
		dj := g.OutDegree(order[j]) + g.InDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	return order
}

// DegreeOrder returns the degree-descending relabeling of g: hot rows — the
// ones every dense sweep and most frontiers touch — move to the front of
// the CSR arrays and the walk vectors, where they share cache lines.
func DegreeOrder(g *Graph) *Relabeling {
	return fromOrder(degreeOrder(g))
}

// BFSOrder returns a breadth-first relabeling of g: nodes are numbered in
// BFS visit order over out-edges, components seeded from the unvisited node
// of highest total degree. Neighbors end up in nearby id blocks, so a walk
// frontier's mass occupies adjacent cache lines.
func BFSOrder(g *Graph) *Relabeling {
	n := g.NumNodes()
	seeds := degreeOrder(g)
	order := make([]NodeID, 0, n)
	visited := make([]bool, n)
	queue := make([]NodeID, 0, n)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			to, _, _ := g.OutEdges(u)
			for _, v := range to {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return fromOrder(order)
}

// Apply rebuilds g's CSR under the relabeling: arc (u, v, w) becomes
// (ToNew(u), ToNew(v), w), labels follow their nodes. Transition
// probabilities are recomputed from the same per-row weights, so every row
// of the relabeled graph carries the identical distribution — walks produce
// the same scores up to floating-point summation order (neighbor order
// within a row changes, so scores are equal to ~1 ulp, not bit-identical;
// the round-trip property tests pin this).
func (r *Relabeling) Apply(g *Graph) *Graph {
	b := NewBuilder(g.NumNodes(), true)
	for u := 0; u < g.NumNodes(); u++ {
		nu := r.oldToNew[u]
		to, w, _ := g.OutEdges(NodeID(u))
		for j := range to {
			b.AddEdge(nu, r.oldToNew[to[j]], w[j])
		}
		if l := g.Label(NodeID(u)); l != "" {
			b.SetLabel(nu, l)
		}
	}
	return b.Build()
}

// RelabelDegree applies the degree-descending ordering and returns the
// relabeled graph with its id map.
func RelabelDegree(g *Graph) (*Graph, *Relabeling) {
	r := DegreeOrder(g)
	return r.Apply(g), r
}

// RelabelBFS applies the BFS ordering and returns the relabeled graph with
// its id map.
func RelabelBFS(g *Graph) (*Graph, *Relabeling) {
	r := BFSOrder(g)
	return r.Apply(g), r
}

// RelabelMode selects the locality-aware node ordering applied to a graph
// before a join. The walk kernels scan the CSR row arrays and O(|V|) mass
// vectors constantly; reordering nodes so hot rows cluster (degree) or
// neighborhoods stay in nearby blocks (BFS) makes those scans
// cache-friendlier without changing any score beyond floating-point
// summation order within a row.
type RelabelMode int

const (
	// NoRelabel keeps the graph as built (the default).
	NoRelabel RelabelMode = iota
	// ByDegree orders nodes by descending total degree.
	ByDegree
	// ByBFS orders nodes in breadth-first visit order from high-degree
	// roots.
	ByBFS
)

// String names the mode.
func (m RelabelMode) String() string {
	switch m {
	case ByDegree:
		return "degree"
	case ByBFS:
		return "bfs"
	default:
		return "off"
	}
}

// ParseRelabelMode resolves the String form ("off", "degree", "bfs").
func ParseRelabelMode(s string) (RelabelMode, error) {
	switch s {
	case "", "off":
		return NoRelabel, nil
	case "degree":
		return ByDegree, nil
	case "bfs":
		return ByBFS, nil
	}
	return NoRelabel, fmt.Errorf("graph: unknown relabel mode %q (want off, degree, or bfs)", s)
}

// Relabel returns the graph reordered under the given mode together with the
// id map (nil for NoRelabel, meaning the graph is returned unchanged).
func Relabel(g *Graph, mode RelabelMode) (*Graph, *Relabeling) {
	switch mode {
	case ByDegree:
		return RelabelDegree(g)
	case ByBFS:
		return RelabelBFS(g)
	default:
		return g, nil
	}
}
