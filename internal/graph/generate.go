package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// The generators below are the substitutes for the paper's real datasets: a
// planted-partition (community) model for DBLP- and Yeast-like graphs, a
// preferential-attachment model for YouTube-like graphs, plus Erdős–Rényi,
// Watts–Strogatz, bipartite, and grid generators used by tests and ablations.
// All generators are deterministic given the seed.

// CommunityConfig parameterizes GenerateCommunity.
type CommunityConfig struct {
	Sizes      []int   // community sizes; node count is their sum
	PIn        float64 // within-community edge probability
	POut       float64 // cross-community edge probability
	Directed   bool
	MaxWeight  int   // weights drawn uniformly from [1,MaxWeight]; 0/1 means unweighted
	Seed       int64 // RNG seed
	MinOutLink int   // guarantee at least this many out-links per node (avoids sinks)
}

// GenerateCommunity builds a planted-partition graph and returns it together
// with one node set per community (named "C0", "C1", …).
//
// Cross-community probability is applied between every ordered pair of
// communities, scaled by 1/numCommunities so the expected cross degree stays
// bounded as the number of communities grows.
func GenerateCommunity(cfg CommunityConfig) (*Graph, []*NodeSet, error) {
	if len(cfg.Sizes) == 0 {
		return nil, nil, fmt.Errorf("graph: community config needs at least one community")
	}
	if cfg.PIn < 0 || cfg.PIn > 1 || cfg.POut < 0 || cfg.POut > 1 {
		return nil, nil, fmt.Errorf("graph: probabilities must lie in [0,1] (pin=%g pout=%g)", cfg.PIn, cfg.POut)
	}
	n := 0
	starts := make([]int, len(cfg.Sizes)+1)
	for i, s := range cfg.Sizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("graph: community %d has non-positive size %d", i, s)
		}
		starts[i] = n
		n += s
	}
	starts[len(cfg.Sizes)] = n

	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder(n, cfg.Directed)
	weight := func() float64 {
		if cfg.MaxWeight <= 1 {
			return 1
		}
		return float64(1 + rng.Intn(cfg.MaxWeight))
	}
	// Within-community edges: expected pin * s*(s-1)/2 per community. Sample
	// by geometric skipping so sparse communities stay cheap.
	for c, s := range cfg.Sizes {
		base := starts[c]
		samplePairs(rng, s, cfg.PIn, func(i, j int) {
			b.AddEdge(NodeID(base+i), NodeID(base+j), weight())
		})
	}
	// Cross-community edges.
	if cfg.POut > 0 && len(cfg.Sizes) > 1 {
		scale := cfg.POut / float64(len(cfg.Sizes)-1)
		for c1 := range cfg.Sizes {
			for c2 := c1 + 1; c2 < len(cfg.Sizes); c2++ {
				s1, s2 := cfg.Sizes[c1], cfg.Sizes[c2]
				sampleBipartite(rng, s1, s2, scale, func(i, j int) {
					b.AddEdge(NodeID(starts[c1]+i), NodeID(starts[c2]+j), weight())
				})
			}
		}
	}
	// Ensure minimum out-degree (sinks trap random walks).
	if cfg.MinOutLink > 0 {
		deg := make([]int, n)
		g0 := b.Build()
		for u := 0; u < n; u++ {
			deg[u] = g0.OutDegree(NodeID(u))
		}
		for u := 0; u < n; u++ {
			for deg[u] < cfg.MinOutLink {
				v := NodeID(rng.Intn(n))
				if int(v) == u {
					continue
				}
				b.AddEdge(NodeID(u), v, weight())
				deg[u]++
			}
		}
	}
	g := b.Build()
	sets := make([]*NodeSet, len(cfg.Sizes))
	for c := range cfg.Sizes {
		ids := make([]NodeID, 0, cfg.Sizes[c])
		for u := starts[c]; u < starts[c+1]; u++ {
			ids = append(ids, NodeID(u))
		}
		sets[c] = NewNodeSet(fmt.Sprintf("C%d", c), ids)
	}
	return g, sets, nil
}

// samplePairs invokes fn for each unordered pair (i,j), i<j, of [0,s) kept
// with probability p, using geometric skipping (O(p·s²) expected time).
func samplePairs(rng *rand.Rand, s int, p float64, fn func(i, j int)) {
	if p <= 0 || s < 2 {
		return
	}
	total := s * (s - 1) / 2
	idx := -1
	for {
		idx += 1 + geometricSkip(rng, p)
		if idx >= total {
			return
		}
		// Decode pair index: row i such that i*(2s-i-1)/2 <= idx.
		i, rem := decodePair(idx, s)
		fn(i, rem)
	}
}

// sampleBipartite invokes fn for each pair (i,j) in [0,s1)x[0,s2) kept with
// probability p.
func sampleBipartite(rng *rand.Rand, s1, s2 int, p float64, fn func(i, j int)) {
	if p <= 0 || s1 == 0 || s2 == 0 {
		return
	}
	total := s1 * s2
	idx := -1
	for {
		idx += 1 + geometricSkip(rng, p)
		if idx >= total {
			return
		}
		fn(idx/s2, idx%s2)
	}
}

// geometricSkip returns the number of failures before the next success of a
// Bernoulli(p) process.
func geometricSkip(rng *rand.Rand, p float64) int {
	if p >= 1 {
		return 0
	}
	// Inverse CDF sampling; u in (0,1).
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	k := int(math.Log(u) / math.Log(1-p))
	if k < 0 {
		k = 0
	}
	return k
}

// decodePair maps a linear index over unordered pairs of [0,s) to (i,j), i<j.
func decodePair(idx, s int) (int, int) {
	i := 0
	rowLen := s - 1
	for idx >= rowLen {
		idx -= rowLen
		i++
		rowLen--
	}
	return i, i + 1 + idx
}

// GeneratePreferential builds a Barabási–Albert preferential-attachment graph
// with m links per new node. The result is undirected (both arcs present).
func GeneratePreferential(n, m int, seed int64) (*Graph, error) {
	if n < 2 || m < 1 {
		return nil, fmt.Errorf("graph: preferential attachment needs n>=2, m>=1 (n=%d m=%d)", n, m)
	}
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, false)
	// Repeated-node list for degree-proportional sampling.
	targets := make([]NodeID, 0, 2*n*m)
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(NodeID(i), NodeID(j), 1)
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	chosen := make(map[NodeID]struct{}, m)
	for u := m + 1; u < n; u++ {
		clear(chosen)
		for len(chosen) < m {
			v := targets[rng.Intn(len(targets))]
			if int(v) == u {
				continue
			}
			chosen[v] = struct{}{}
		}
		for v := range chosen {
			b.AddEdge(NodeID(u), v, 1)
			targets = append(targets, NodeID(u), v)
		}
	}
	return b.Build(), nil
}

// GenerateER builds a directed Erdős–Rényi graph G(n, p) with unit weights,
// guaranteeing at least one out-edge per node.
func GenerateER(n int, p float64, seed int64) (*Graph, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: ER needs n>=2 and p in (0,1] (n=%d p=%g)", n, p)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, true)
	outDeg := make([]int, n)
	total := n * n
	idx := -1
	for {
		idx += 1 + geometricSkip(rng, p)
		if idx >= total {
			break
		}
		u, v := idx/n, idx%n
		if u == v {
			continue
		}
		b.AddEdge(NodeID(u), NodeID(v), 1)
		outDeg[u]++
	}
	for u := 0; u < n; u++ {
		for outDeg[u] == 0 {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			b.AddEdge(NodeID(u), NodeID(v), 1)
			outDeg[u]++
		}
	}
	return b.Build(), nil
}

// GenerateRing builds an undirected ring of n nodes with k neighbors on each
// side, optionally rewired with probability beta (Watts–Strogatz).
func GenerateRing(n, k int, beta float64, seed int64) (*Graph, error) {
	if n < 3 || k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graph: ring needs n>=3 and 1<=k<n/2 (n=%d k=%d)", n, k)
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, false)
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if beta > 0 && rng.Float64() < beta {
				for {
					w := rng.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			if u == v {
				continue
			}
			b.AddEdge(NodeID(u), NodeID(v), 1)
		}
	}
	return b.Build(), nil
}

// GenerateGrid builds an undirected w×h grid with unit weights. Useful for
// tests where hitting probabilities are easy to reason about.
func GenerateGrid(w, h int) (*Graph, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("graph: grid needs positive dimensions (w=%d h=%d)", w, h)
	}
	b := NewBuilder(w*h, false)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return b.Build(), nil
}

// GenerateBipartite builds an undirected random bipartite graph between parts
// of size a and b with edge probability p, returning the graph and the two
// part node sets ("L", "R").
func GenerateBipartite(a, bSize int, p float64, seed int64) (*Graph, []*NodeSet, error) {
	if a < 1 || bSize < 1 || p <= 0 || p > 1 {
		return nil, nil, fmt.Errorf("graph: bipartite needs positive parts and p in (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(a+bSize, false)
	deg := make([]int, a+bSize)
	sampleBipartite(rng, a, bSize, p, func(i, j int) {
		bld.AddEdge(NodeID(i), NodeID(a+j), 1)
		deg[i]++
		deg[a+j]++
	})
	// Connect isolated nodes so walks do not stall.
	for u := 0; u < a+bSize; u++ {
		if deg[u] > 0 {
			continue
		}
		var v int
		if u < a {
			v = a + rng.Intn(bSize)
		} else {
			v = rng.Intn(a)
		}
		bld.AddEdge(NodeID(u), NodeID(v), 1)
		deg[u]++
		deg[v]++
	}
	left := make([]NodeID, a)
	right := make([]NodeID, bSize)
	for i := range left {
		left[i] = NodeID(i)
	}
	for i := range right {
		right[i] = NodeID(a + i)
	}
	return bld.Build(), []*NodeSet{NewNodeSet("L", left), NewNodeSet("R", right)}, nil
}
