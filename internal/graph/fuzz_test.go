package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks that arbitrary input never panics the parser, and that
// everything it accepts survives a write/read round trip.
func FuzzReadText(f *testing.F) {
	f.Add("graph 3\nedge 0 1 1\nedge 1 2 2.5\nnodeset S 0 2\n")
	f.Add("graph 2 undirected\nnode 0 alpha\nedge 0 1 1\n")
	f.Add("# comment\n\ngraph 1\n")
	f.Add("graph 0\n")
	f.Add("garbage\n")
	f.Add("graph 2\nedge 0 1 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, sets, err := ReadText(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g, sets...); err != nil {
			t.Fatalf("WriteText on accepted graph: %v", err)
		}
		g2, sets2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() || len(sets2) != len(sets) {
			t.Fatalf("round trip changed shape: (%d,%d,%d) vs (%d,%d,%d)",
				g.NumNodes(), g.NumEdges(), len(sets), g2.NumNodes(), g2.NumEdges(), len(sets2))
		}
	})
}
