package graph

import (
	"testing"
)

func TestCloseTriadsAddsTriangles(t *testing.T) {
	// Path 0-1-2: one wedge at node 1; closing it yields the triangle.
	g := mustGrid(t, 3, 1)
	closed := CloseTriads(g, 1, 5)
	if closed.NumEdges() != g.NumEdges()+2 {
		t.Fatalf("arcs = %d, want %d", closed.NumEdges(), g.NumEdges()+2)
	}
	if !closed.HasEdge(0, 2) || !closed.HasEdge(2, 0) {
		t.Fatal("wedge 0-1-2 not closed symmetrically")
	}
	if err := closed.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseTriadsNoOp(t *testing.T) {
	g := mustGrid(t, 3, 3)
	if got := CloseTriads(g, 0, 1); got != g {
		t.Fatal("extra=0 should return the input graph")
	}
	empty := NewBuilder(3, true).Build()
	if got := CloseTriads(empty, 5, 1); got != empty {
		t.Fatal("edgeless graph should be returned unchanged")
	}
}

func TestCloseTriadsOnCliqueTerminates(t *testing.T) {
	// A complete graph has no open wedges; the attempt cap must stop it.
	b := NewBuilder(5, false)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(NodeID(i), NodeID(j), 1)
		}
	}
	g := b.Build()
	closed := CloseTriads(g, 100, 3)
	if closed.NumEdges() != g.NumEdges() {
		t.Fatalf("clique gained edges: %d vs %d", closed.NumEdges(), g.NumEdges())
	}
}

func TestCloseTriadsPreservesLabels(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.SetLabel(0, "zero")
	g := b.Build()
	closed := CloseTriads(g, 1, 7)
	if closed.Label(0) != "zero" {
		t.Fatalf("label lost: %q", closed.Label(0))
	}
}

func TestCloseTriadsRaisesClustering(t *testing.T) {
	g, _, err := GenerateCommunity(CommunityConfig{
		Sizes: []int{100, 100}, PIn: 0.05, POut: 0.02, Seed: 4, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := CloseTriads(g, g.NumEdges()/4, 9)
	before, after := triangleCount(g), triangleCount(closed)
	if after <= before {
		t.Fatalf("triangles %d → %d; closure had no effect", before, after)
	}
}

// triangleCount counts closed directed triangles u<v<w with all six arcs.
func triangleCount(g *Graph) int {
	count := 0
	for u := 0; u < g.NumNodes(); u++ {
		to, _, _ := g.OutEdges(NodeID(u))
		for i, v := range to {
			if v <= NodeID(u) {
				continue
			}
			for _, w := range to[i+1:] {
				if w > v && g.HasEdge(v, w) {
					count++
				}
			}
		}
	}
	return count
}
