package graph

import (
	"math"
	"testing"
)

func mustGrid(t testing.TB, w, h int) *Graph {
	t.Helper()
	g, err := GenerateGrid(w, h)
	if err != nil {
		t.Fatalf("GenerateGrid(%d,%d): %v", w, h, err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, true).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
}

func TestBuilderDirected(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 2, 3)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Fatalf("out degrees wrong: %d %d %d", g.OutDegree(0), g.OutDegree(1), g.OutDegree(2))
	}
	if g.InDegree(2) != 2 {
		t.Fatalf("InDegree(2) = %d, want 2", g.InDegree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderUndirectedAddsBothArcs(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1, 5)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing a direction")
	}
}

func TestBuilderMergesDuplicates(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 1, 2.5)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after merge", g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 3.5 {
		t.Fatalf("merged weight = %v,%v, want 3.5,true", w, ok)
	}
}

func TestTransitionProbabilitiesSumToOne(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 2)
	b.AddEdge(0, 3, 3)
	g := b.Build()
	_, _, p := g.OutEdges(0)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("transition row sums to %v", sum)
	}
	// Weighted proportions: 1/6, 2/6, 3/6.
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestInEdgesMirrorOutEdges(t *testing.T) {
	g := mustGrid(t, 3, 3)
	// Every out arc (u,v) must appear as an in arc at v with same weight/prob.
	for u := 0; u < g.NumNodes(); u++ {
		to, w, p := g.OutEdges(NodeID(u))
		for j := range to {
			from, iw, ip := g.InEdges(to[j])
			found := false
			for i := range from {
				if from[i] == NodeID(u) {
					found = true
					if iw[i] != w[j] || ip[i] != p[j] {
						t.Fatalf("in-edge (%d,%d) weight/prob mismatch", u, to[j])
					}
				}
			}
			if !found {
				t.Fatalf("arc (%d,%d) missing from in-adjacency", u, to[j])
			}
		}
	}
}

func TestHasEdgeAndWeight(t *testing.T) {
	g := mustGrid(t, 2, 2)
	if !g.HasEdge(0, 1) {
		t.Fatal("grid edge (0,1) missing")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("diagonal (0,3) should not exist in a grid")
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Fatal("EdgeWeight found nonexistent edge")
	}
}

func TestAddEdgePanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func(b *Builder)
	}{
		{"out of range", func(b *Builder) { b.AddEdge(0, 99, 1) }},
		{"negative node", func(b *Builder) { b.AddEdge(-1, 0, 1) }},
		{"zero weight", func(b *Builder) { b.AddEdge(0, 1, 0) }},
		{"negative weight", func(b *Builder) { b.AddEdge(0, 1, -1) }},
		{"NaN weight", func(b *Builder) { b.AddEdge(0, 1, math.NaN()) }},
		{"Inf weight", func(b *Builder) { b.AddEdge(0, 1, math.Inf(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.fn(NewBuilder(3, true))
		})
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	b.SetLabel(0, "alice")
	g := b.Build()
	if !g.Labeled() {
		t.Fatal("graph should be labeled")
	}
	if g.Label(0) != "alice" || g.Label(1) != "" {
		t.Fatalf("labels = %q, %q", g.Label(0), g.Label(1))
	}
	unlabeled := mustGrid(t, 2, 2)
	if unlabeled.Labeled() || unlabeled.Label(0) != "" {
		t.Fatal("grid should be unlabeled")
	}
}

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet("X", []NodeID{3, 1, 3, 2})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dup dropped)", s.Len())
	}
	if !s.Contains(1) || s.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if got := s.Sorted(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Sorted = %v", got)
	}
	if got := s.Nodes(); got[0] != 3 {
		t.Fatalf("insertion order lost: %v", got)
	}
	if tk := s.Take(2); tk.Len() != 2 || tk.Take(99).Len() != 2 {
		t.Fatal("Take wrong")
	}
}

func TestNodeSetValidate(t *testing.T) {
	g := mustGrid(t, 2, 2)
	if err := NewNodeSet("ok", []NodeID{0, 3}).Validate(g); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := NewNodeSet("bad", []NodeID{0, 4}).Validate(g); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestNodeSetIntersect(t *testing.T) {
	a := NewNodeSet("A", []NodeID{1, 2, 3})
	b := NewNodeSet("B", []NodeID{2, 3, 4})
	got := a.Intersect(b)
	if got.Len() != 2 || !got.Contains(2) || !got.Contains(3) {
		t.Fatalf("Intersect = %v", got.Nodes())
	}
}

func TestSubgraph(t *testing.T) {
	g := mustGrid(t, 3, 1) // path 0-1-2
	sub, orig := Subgraph(g, []NodeID{0, 1})
	if sub.NumNodes() != 2 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 2 { // 0-1 both directions
		t.Fatalf("sub edges = %d", sub.NumEdges())
	}
	if orig[0] != 0 || orig[1] != 1 {
		t.Fatalf("orig map = %v", orig)
	}
}

func TestRemoveEdges(t *testing.T) {
	g := mustGrid(t, 3, 1)
	g2 := RemoveEdges(g, [][2]NodeID{{0, 1}})
	if g2.HasEdge(0, 1) || g2.HasEdge(1, 0) {
		t.Fatal("removed edge still present")
	}
	if !g2.HasEdge(1, 2) {
		t.Fatal("unrelated edge removed")
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("node count changed")
	}
}

func TestComputeStats(t *testing.T) {
	g := mustGrid(t, 2, 2) // 4 nodes, 4 undirected edges = 8 arcs
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Arcs != 8 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 || s.LargestComp != 4 {
		t.Fatalf("components wrong: %+v", s)
	}
	if s.Sinks != 0 || s.MinOutDeg != 2 || s.MaxOutDeg != 2 {
		t.Fatalf("degrees wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestStatsDisconnected(t *testing.T) {
	b := NewBuilder(5, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	s := ComputeStats(g)
	if s.Components != 3 { // {0,1}, {2,3}, {4}
		t.Fatalf("components = %d, want 3", s.Components)
	}
	if s.LargestComp != 2 {
		t.Fatalf("largest = %d, want 2", s.LargestComp)
	}
}
