// Package graph provides the directed, weighted graph substrate used by the
// discounted-hitting-time join algorithms: a compact CSR (compressed sparse
// row) representation with both out- and in-adjacency, per-edge random-walk
// transition probabilities, node labels, named node sets, text and binary
// serialization, and synthetic generators that stand in for the paper's real
// datasets (DBLP, Yeast, YouTube).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// NodeID identifies a node. Nodes are dense integers in [0, NumNodes).
type NodeID = int32

// Graph is an immutable directed weighted graph in CSR form. Build one with a
// Builder. For undirected inputs the Builder inserts both arcs, so Graph is
// always directional internally; random walks follow out-edges.
//
// The zero value is an empty graph with no nodes.
type Graph struct {
	n int

	// Out-adjacency (CSR): edges of node u are outTo[outIndex[u]:outIndex[u+1]].
	outIndex []int64
	outTo    []NodeID
	outW     []float64
	outP     []float64 // transition probabilities p_uv = w_uv / sum_w(u)

	// In-adjacency, used by algorithms that walk edges in reverse and by
	// degree statistics. inP[j] is the transition probability of the
	// corresponding forward edge (from inFrom[j] to the owning node).
	inIndex []int64
	inFrom  []NodeID
	inW     []float64
	inP     []float64

	labels []string // optional node labels; nil when unlabeled

	// Cached structural summary (Stats method). Graphs are immutable after
	// Build, so the O(|V|+|E|) scan runs at most once per graph; the query
	// planner consults it per query.
	statsOnce sync.Once
	stats     Stats
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed arcs stored.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIndex[u+1] - g.outIndex[u])
}

// InDegree returns the number of in-edges of u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inIndex[u+1] - g.inIndex[u])
}

// OutEdges returns the out-neighbor ids, edge weights, and transition
// probabilities of u. The returned slices alias internal storage and must not
// be modified.
func (g *Graph) OutEdges(u NodeID) (to []NodeID, w, p []float64) {
	lo, hi := g.outIndex[u], g.outIndex[u+1]
	return g.outTo[lo:hi], g.outW[lo:hi], g.outP[lo:hi]
}

// InEdges returns the in-neighbor ids, weights, and the forward transition
// probabilities of the corresponding arcs (p_{from,u}). The returned slices
// alias internal storage and must not be modified.
func (g *Graph) InEdges(u NodeID) (from []NodeID, w, p []float64) {
	lo, hi := g.inIndex[u], g.inIndex[u+1]
	return g.inFrom[lo:hi], g.inW[lo:hi], g.inP[lo:hi]
}

// HasEdge reports whether the arc (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	to, _, _ := g.OutEdges(u)
	// Out-edges are sorted by target; binary search.
	lo, hi := 0, len(to)
	for lo < hi {
		mid := (lo + hi) / 2
		if to[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(to) && to[lo] == v
}

// EdgeWeight returns the weight of arc (u, v) and whether it exists.
func (g *Graph) EdgeWeight(u, v NodeID) (float64, bool) {
	to, w, _ := g.OutEdges(u)
	lo, hi := 0, len(to)
	for lo < hi {
		mid := (lo + hi) / 2
		if to[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(to) && to[lo] == v {
		return w[lo], true
	}
	return 0, false
}

// Label returns the label of u, or the empty string if the graph is unlabeled.
func (g *Graph) Label(u NodeID) string {
	if g.labels == nil {
		return ""
	}
	return g.labels[u]
}

// Labeled reports whether node labels are present.
func (g *Graph) Labeled() bool { return g.labels != nil }

// Validate checks structural invariants: CSR monotonicity, target bounds,
// weight positivity and finiteness, and that every non-sink transition row
// sums to 1 within tolerance. It is used by tests and by graph loading.
func (g *Graph) Validate() error {
	if len(g.outIndex) != g.n+1 || len(g.inIndex) != g.n+1 {
		return fmt.Errorf("graph: index arrays have wrong length (n=%d)", g.n)
	}
	if g.outIndex[0] != 0 || g.inIndex[0] != 0 {
		return errors.New("graph: CSR indexes must start at 0")
	}
	for u := 0; u < g.n; u++ {
		if g.outIndex[u+1] < g.outIndex[u] {
			return fmt.Errorf("graph: out index not monotone at node %d", u)
		}
		if g.inIndex[u+1] < g.inIndex[u] {
			return fmt.Errorf("graph: in index not monotone at node %d", u)
		}
		var sum float64
		to, w, p := g.OutEdges(NodeID(u))
		for j := range to {
			if to[j] < 0 || int(to[j]) >= g.n {
				return fmt.Errorf("graph: edge (%d,%d) target out of range", u, to[j])
			}
			if j > 0 && to[j] <= to[j-1] {
				return fmt.Errorf("graph: out edges of %d not strictly sorted", u)
			}
			if w[j] <= 0 || math.IsNaN(w[j]) || math.IsInf(w[j], 0) {
				return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", u, to[j], w[j])
			}
			sum += p[j]
		}
		if len(to) > 0 && math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("graph: transition row of %d sums to %g, want 1", u, sum)
		}
	}
	return nil
}

// TotalWeight returns the sum of all arc weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, w := range g.outW {
		s += w
	}
	return s
}
