// Package join2 implements the paper's 2-way join algorithms over discounted
// hitting time (§V–§VI): the forward-processing F-BJ and F-IDJ, the backward
// B-BJ and the pruning B-IDJ framework with its X⁺ₗ (Lemma 2) and Y⁺ₗ
// (Theorem 1) bound variants, and the incremental join state of §VI-D that
// lets PJ-i pull the (m+1)-th pair without a from-scratch top-(m+1) join.
//
// Given node sets P and Q, a top-k 2-way join returns the k pairs
// (p, q) ∈ P×Q with the highest truncated DHT scores h_d(p, q), sorted
// descending.
package join2

import (
	"fmt"
	"runtime"

	"repro/internal/dht"
	"repro/internal/graph"
)

// Pair is an ordered (p, q) node pair; p is drawn from the source set P and q
// from the target set Q of the join.
type Pair struct {
	P, Q graph.NodeID
}

// Result is a scored pair.
type Result struct {
	Pair  Pair
	Score float64
}

// Config carries everything a 2-way join needs. P and Q must be non-empty
// subsets of the graph's nodes.
type Config struct {
	Graph  *graph.Graph
	Params dht.Params
	D      int // truncation depth (Equation 4)
	P, Q   []graph.NodeID

	// Measure selects the step probability the score folds: the zero value
	// is the paper's first-hit DHT; dht.Reach joins over reach-based
	// measures such as Personalized PageRank (the paper's §VIII extension).
	Measure dht.Kind

	// Workers caps the goroutines the backward joiners may spread their
	// per-target walks across. 0 (the default) and 1 run serially, matching
	// the paper's single-threaded evaluation; a negative value selects
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int

	// BatchWidth is the column width of the batched walk kernel
	// (dht.BatchEngine) used for deep walks: B-IDJ's later deepening rounds
	// and final exact round, B-BJ's per-target walks, and F-BJ's forward
	// walks. 0 selects dht.DefaultBatchWidth, 1 disables batching (every
	// walk runs on the solo engine, as in PR 1), and any other positive
	// value is used as-is. Walks shorter than batchMinSteps always run solo
	// through the β-prefilled column regardless of this setting — their
	// frontiers are too sparse for column batching to pay. Results are
	// bit-identical at any width.
	BatchWidth int

	// MemoSize bounds the (kind, q, l)-keyed memo of backward score columns
	// that B-BJ and the incremental join consult before re-walking a target
	// at full depth: 0 selects dht.DefaultMemoSize, a negative value
	// disables the memo. Each retained column costs O(|V|) floats, which is
	// why the default stays small.
	MemoSize int

	// Counters, when non-nil, accumulates the walk work of every engine the
	// join creates (including pooled worker engines) via atomic adds.
	Counters *dht.Counters

	// Pool, when non-nil, supplies the join's engines (solo and batched)
	// instead of per-joiner construction: serial paths check one engine out
	// and keep it until Release, worker rounds check engines in and out per
	// round, so a long-lived owner (the serving layer) shares one pool's
	// O(|V|) scratch across requests. The pool must be built for the same
	// (Graph, Params, D); Validate rejects a mismatch. With a caller pool the
	// pool's BatchWidth governs batch-engine width (Config.BatchWidth still
	// decides WHETHER deep rounds batch) — results are bit-identical at any
	// width, so sharing pool-width engines never changes an answer.
	Pool *dht.EnginePool

	// Memo, when non-nil, replaces the joiner-constructed score-column memo
	// (MemoSize is then ignored). ScoreMemo is safe for concurrent use, so a
	// long-lived owner can share one memo across the concurrent requests of
	// a (graph, params, d, measure) configuration; the caller is responsible
	// for binding the memo to exactly one such configuration.
	Memo *dht.ScoreMemo

	// Cancel, when non-nil, is polled at walk-round granularity: once per
	// deepening round, per target chunk of the scatter paths, and per
	// refinement step of the incremental join. A non-nil return aborts the
	// join with that error, which is how the serving layer enforces deadline
	// budgets (and client disconnects) mid-round instead of only between
	// pulls. The function must be safe for concurrent use — worker
	// goroutines poll it too — and cheap, since rounds poll it on their hot
	// path. Cancellation never corrupts state: results already emitted by a
	// stream remain a correct ranking prefix.
	Cancel func() error
}

// canceled polls the cancellation hook; nil hooks never cancel.
func (c *Config) canceled() error {
	if c.Cancel == nil {
		return nil
	}
	return c.Cancel()
}

// guard runs fn, converting a panic into an error. The worker-pool paths run
// every goroutine body under it: a panic crossing a goroutine boundary would
// crash the whole process, while under guard it unwinds the worker's defers
// (returning checked-out engines to the pool) and surfaces as a joiner
// error the serving layer can answer with.
func guard(fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("join2: panic in join worker: %v", p)
		}
	}()
	fn()
	return nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("join2: nil graph")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.D < 1 {
		return fmt.Errorf("join2: depth d must be >= 1, got %d", c.D)
	}
	if len(c.P) == 0 || len(c.Q) == 0 {
		return fmt.Errorf("join2: node sets must be non-empty (|P|=%d |Q|=%d)", len(c.P), len(c.Q))
	}
	n := c.Graph.NumNodes()
	for _, u := range c.P {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: P contains out-of-range node %d", u)
		}
	}
	for _, u := range c.Q {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: Q contains out-of-range node %d", u)
		}
	}
	if p := c.Pool; p != nil && (p.G != c.Graph || p.Params != c.Params || p.D != c.D) {
		return fmt.Errorf("join2: caller pool built for a different (graph, params, d) configuration")
	}
	return nil
}

// engine builds (or, with a caller pool, checks out) a DHT engine for the
// config, attached to its counter sink.
func (c *Config) engine() (*dht.Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Pool != nil {
		return c.checkout(c.Pool), nil
	}
	e, err := dht.NewEngine(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	e.Sink = c.Counters
	return e, nil
}

// enginePool returns the caller-owned pool when one is set, otherwise builds
// a pool for the config's worker joins, carrying the config's batch width so
// GetBatch hands out matching batch engines.
func (c *Config) enginePool() (*dht.EnginePool, error) {
	if c.Pool != nil {
		return c.Pool, nil
	}
	pl, err := dht.NewEnginePool(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	pl.Sink = c.Counters
	pl.BatchWidth = c.batchWidth()
	return pl, nil
}

// checkout hands out a pool engine with the config's counter sink attached.
// A caller-owned pool may carry its owner's sink (or none); the config's
// Counters must win for the duration of this checkout so run-scoped stats
// see the walks — owners that also want lifetime totals chain them
// (dht.Counters.Chain).
func (c *Config) checkout(pool *dht.EnginePool) *dht.Engine {
	e := pool.Get()
	if c.Counters != nil {
		e.Sink = c.Counters
	}
	return e
}

// checkoutBatch is checkout for batch engines.
func (c *Config) checkoutBatch(pool *dht.EnginePool) *dht.BatchEngine {
	be := pool.GetBatch()
	if c.Counters != nil {
		be.Sink = c.Counters
	}
	return be
}

// fastEngine builds (or, with a caller pool, checks out) a FastCertified
// kernel for the config, attached to its counter sink. Only the certified
// joiners call it; the bit-identical joiners never see a fast engine — the
// pool's contract validation enforces the same separation on reuse.
func (c *Config) fastEngine() *dht.FastBatchEngine {
	if c.Pool != nil {
		fe := c.Pool.GetFast()
		fe.Workers = c.Workers
		if c.Counters != nil {
			fe.Sink = c.Counters
		}
		return fe
	}
	fe, err := dht.NewFastBatchEngine(c.Graph, c.Params, c.D, 0, c.Workers)
	if err != nil {
		panic(err) // unreachable: Validate ran in the joiner constructor
	}
	fe.Sink = c.Counters
	return fe
}

// releaseFastEngine is releaseEngines for the FastCertified kernel.
func (c *Config) releaseFastEngine(fe **dht.FastBatchEngine) {
	if *fe == nil {
		return
	}
	if c.Pool != nil {
		c.Pool.PutFast(*fe)
	}
	*fe = nil
}

// batchMinSteps is the shortest walk the joiners hand to the batched kernel.
// Shorter walks (the l = 1, 2 deepening rounds) touch so few nodes that the
// batch's zero lanes cost more than the amortized CSR traversal saves; they
// stay on the solo engine's β-prefilled column, which serves them in O(walk
// frontier) time.
const batchMinSteps = 3

// batchWidth resolves Config.BatchWidth: 0 → default, ≤ 1 → solo.
func (c *Config) batchWidth() int {
	switch {
	case c.BatchWidth == 0:
		return dht.DefaultBatchWidth
	case c.BatchWidth < 1:
		return 1
	default:
		return c.BatchWidth
	}
}

// batchEngine builds (or, with a caller pool, checks out) a batch engine for
// the config, attached to its counter sink. The config was validated by the
// joiner constructor, so construction cannot fail.
func (c *Config) batchEngine() *dht.BatchEngine {
	if c.Pool != nil {
		return c.checkoutBatch(c.Pool)
	}
	be, err := dht.NewBatchEngine(c.Graph, c.Params, c.D, c.batchWidth())
	if err != nil {
		panic(err) // unreachable: Validate ran in the joiner constructor
	}
	be.Sink = c.Counters
	return be
}

// newMemo returns the caller-owned memo when one is set, otherwise builds
// the config's score-column memo (nil when disabled).
func (c *Config) newMemo() *dht.ScoreMemo {
	if c.Memo != nil {
		return c.Memo
	}
	if c.MemoSize < 0 {
		return nil
	}
	return dht.NewScoreMemo(c.MemoSize)
}

// releaseEngines returns a joiner's cached engines to the caller-owned pool
// (no-op without one — the engines are simply garbage). Joiner Release
// methods call this with their cached engine slots; the slots are nil'd so a
// released joiner lazily re-checks out if used again.
func (c *Config) releaseEngines(e **dht.Engine, be **dht.BatchEngine) {
	if c.Pool == nil {
		if e != nil {
			*e = nil
		}
		if be != nil {
			*be = nil
		}
		return
	}
	if e != nil && *e != nil {
		c.Pool.Put(*e)
		*e = nil
	}
	if be != nil && *be != nil {
		c.Pool.PutBatch(*be)
		*be = nil
	}
}

// batchRounds reports whether walks of length l should use the batched
// kernel under this config.
func (c *Config) batchRounds(l int) bool {
	return c.batchWidth() > 1 && l >= batchMinSteps
}

// workerCount resolves Config.Workers against the number of independent
// targets: 0/1 → serial, negative → GOMAXPROCS, always capped by targets.
func (c *Config) workerCount(targets int) int {
	w := c.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > targets {
		w = targets
	}
	return w
}

// pairTie is the canonical tie key used when two pairs have equal scores:
// smaller (p, q) wins. It makes every top-m selection a prefix of the
// top-(m+1) selection, which PJ's re-join stream depends on.
func pairTie(pr Pair) int64 {
	return int64(pr.P)<<32 | int64(uint32(pr.Q))
}

// TieKey exposes the canonical tie key: every emitted ranking is ordered by
// (score descending, TieKey ascending), which is what lets a distributed
// merge of disjoint sub-rankings reproduce the single-stream order
// bit-identically.
func TieKey(pr Pair) int64 { return pairTie(pr) }

// Joiner is a top-k 2-way join algorithm.
type Joiner interface {
	// Name identifies the algorithm (e.g. "B-IDJ-Y") in reports.
	Name() string
	// TopK returns the k highest-scoring pairs in descending score order.
	// Fewer than k results are returned when |P|·|Q| < k.
	TopK(k int) ([]Result, error)
}

// MaxPairs returns |P|·|Q|, the size of the join's candidate space.
func (c *Config) MaxPairs() int { return len(c.P) * len(c.Q) }

// clampK limits k to the candidate space and rejects non-positive k.
func (c *Config) clampK(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("join2: k must be positive, got %d", k)
	}
	if m := c.MaxPairs(); k > m {
		k = m
	}
	return k, nil
}
