// Package join2 implements the paper's 2-way join algorithms over discounted
// hitting time (§V–§VI): the forward-processing F-BJ and F-IDJ, the backward
// B-BJ and the pruning B-IDJ framework with its X⁺ₗ (Lemma 2) and Y⁺ₗ
// (Theorem 1) bound variants, and the incremental join state of §VI-D that
// lets PJ-i pull the (m+1)-th pair without a from-scratch top-(m+1) join.
//
// Given node sets P and Q, a top-k 2-way join returns the k pairs
// (p, q) ∈ P×Q with the highest truncated DHT scores h_d(p, q), sorted
// descending.
package join2

import (
	"fmt"
	"runtime"

	"repro/internal/dht"
	"repro/internal/graph"
)

// Pair is an ordered (p, q) node pair; p is drawn from the source set P and q
// from the target set Q of the join.
type Pair struct {
	P, Q graph.NodeID
}

// Result is a scored pair.
type Result struct {
	Pair  Pair
	Score float64
}

// Config carries everything a 2-way join needs. P and Q must be non-empty
// subsets of the graph's nodes.
type Config struct {
	Graph  *graph.Graph
	Params dht.Params
	D      int // truncation depth (Equation 4)
	P, Q   []graph.NodeID

	// Measure selects the step probability the score folds: the zero value
	// is the paper's first-hit DHT; dht.Reach joins over reach-based
	// measures such as Personalized PageRank (the paper's §VIII extension).
	Measure dht.Kind

	// Workers caps the goroutines the backward joiners may spread their
	// per-target walks across. 0 (the default) and 1 run serially, matching
	// the paper's single-threaded evaluation; a negative value selects
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int

	// Counters, when non-nil, accumulates the walk work of every engine the
	// join creates (including pooled worker engines) via atomic adds.
	Counters *dht.Counters
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("join2: nil graph")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.D < 1 {
		return fmt.Errorf("join2: depth d must be >= 1, got %d", c.D)
	}
	if len(c.P) == 0 || len(c.Q) == 0 {
		return fmt.Errorf("join2: node sets must be non-empty (|P|=%d |Q|=%d)", len(c.P), len(c.Q))
	}
	n := c.Graph.NumNodes()
	for _, u := range c.P {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: P contains out-of-range node %d", u)
		}
	}
	for _, u := range c.Q {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: Q contains out-of-range node %d", u)
		}
	}
	return nil
}

// engine builds a DHT engine for the config, attached to its counter sink.
func (c *Config) engine() (*dht.Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e, err := dht.NewEngine(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	e.Sink = c.Counters
	return e, nil
}

// enginePool builds an engine pool for the config's worker joins.
func (c *Config) enginePool() (*dht.EnginePool, error) {
	pl, err := dht.NewEnginePool(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	pl.Sink = c.Counters
	return pl, nil
}

// workerCount resolves Config.Workers against the number of independent
// targets: 0/1 → serial, negative → GOMAXPROCS, always capped by targets.
func (c *Config) workerCount(targets int) int {
	w := c.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > targets {
		w = targets
	}
	return w
}

// pairTie is the canonical tie key used when two pairs have equal scores:
// smaller (p, q) wins. It makes every top-m selection a prefix of the
// top-(m+1) selection, which PJ's re-join stream depends on.
func pairTie(pr Pair) int64 {
	return int64(pr.P)<<32 | int64(uint32(pr.Q))
}

// Joiner is a top-k 2-way join algorithm.
type Joiner interface {
	// Name identifies the algorithm (e.g. "B-IDJ-Y") in reports.
	Name() string
	// TopK returns the k highest-scoring pairs in descending score order.
	// Fewer than k results are returned when |P|·|Q| < k.
	TopK(k int) ([]Result, error)
}

// MaxPairs returns |P|·|Q|, the size of the join's candidate space.
func (c *Config) MaxPairs() int { return len(c.P) * len(c.Q) }

// clampK limits k to the candidate space and rejects non-positive k.
func (c *Config) clampK(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("join2: k must be positive, got %d", k)
	}
	if m := c.MaxPairs(); k > m {
		k = m
	}
	return k, nil
}
