// Package join2 implements the paper's 2-way join algorithms over discounted
// hitting time (§V–§VI): the forward-processing F-BJ and F-IDJ, the backward
// B-BJ and the pruning B-IDJ framework with its X⁺ₗ (Lemma 2) and Y⁺ₗ
// (Theorem 1) bound variants, and the incremental join state of §VI-D that
// lets PJ-i pull the (m+1)-th pair without a from-scratch top-(m+1) join.
//
// Given node sets P and Q, a top-k 2-way join returns the k pairs
// (p, q) ∈ P×Q with the highest truncated DHT scores h_d(p, q), sorted
// descending.
package join2

import (
	"fmt"
	"runtime"

	"repro/internal/dht"
	"repro/internal/graph"
)

// Pair is an ordered (p, q) node pair; p is drawn from the source set P and q
// from the target set Q of the join.
type Pair struct {
	P, Q graph.NodeID
}

// Result is a scored pair.
type Result struct {
	Pair  Pair
	Score float64
}

// Config carries everything a 2-way join needs. P and Q must be non-empty
// subsets of the graph's nodes.
type Config struct {
	Graph  *graph.Graph
	Params dht.Params
	D      int // truncation depth (Equation 4)
	P, Q   []graph.NodeID

	// Measure selects the step probability the score folds: the zero value
	// is the paper's first-hit DHT; dht.Reach joins over reach-based
	// measures such as Personalized PageRank (the paper's §VIII extension).
	Measure dht.Kind

	// Workers caps the goroutines the backward joiners may spread their
	// per-target walks across. 0 (the default) and 1 run serially, matching
	// the paper's single-threaded evaluation; a negative value selects
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int

	// BatchWidth is the column width of the batched walk kernel
	// (dht.BatchEngine) used for deep walks: B-IDJ's later deepening rounds
	// and final exact round, B-BJ's per-target walks, and F-BJ's forward
	// walks. 0 selects dht.DefaultBatchWidth, 1 disables batching (every
	// walk runs on the solo engine, as in PR 1), and any other positive
	// value is used as-is. Walks shorter than batchMinSteps always run solo
	// through the β-prefilled column regardless of this setting — their
	// frontiers are too sparse for column batching to pay. Results are
	// bit-identical at any width.
	BatchWidth int

	// MemoSize bounds the (kind, q, l)-keyed memo of backward score columns
	// that B-BJ and the incremental join consult before re-walking a target
	// at full depth: 0 selects dht.DefaultMemoSize, a negative value
	// disables the memo. Each retained column costs O(|V|) floats, which is
	// why the default stays small.
	MemoSize int

	// Counters, when non-nil, accumulates the walk work of every engine the
	// join creates (including pooled worker engines) via atomic adds.
	Counters *dht.Counters
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("join2: nil graph")
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.D < 1 {
		return fmt.Errorf("join2: depth d must be >= 1, got %d", c.D)
	}
	if len(c.P) == 0 || len(c.Q) == 0 {
		return fmt.Errorf("join2: node sets must be non-empty (|P|=%d |Q|=%d)", len(c.P), len(c.Q))
	}
	n := c.Graph.NumNodes()
	for _, u := range c.P {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: P contains out-of-range node %d", u)
		}
	}
	for _, u := range c.Q {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("join2: Q contains out-of-range node %d", u)
		}
	}
	return nil
}

// engine builds a DHT engine for the config, attached to its counter sink.
func (c *Config) engine() (*dht.Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	e, err := dht.NewEngine(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	e.Sink = c.Counters
	return e, nil
}

// enginePool builds an engine pool for the config's worker joins, carrying
// the config's batch width so GetBatch hands out matching batch engines.
func (c *Config) enginePool() (*dht.EnginePool, error) {
	pl, err := dht.NewEnginePool(c.Graph, c.Params, c.D)
	if err != nil {
		return nil, err
	}
	pl.Sink = c.Counters
	pl.BatchWidth = c.batchWidth()
	return pl, nil
}

// batchMinSteps is the shortest walk the joiners hand to the batched kernel.
// Shorter walks (the l = 1, 2 deepening rounds) touch so few nodes that the
// batch's zero lanes cost more than the amortized CSR traversal saves; they
// stay on the solo engine's β-prefilled column, which serves them in O(walk
// frontier) time.
const batchMinSteps = 3

// batchWidth resolves Config.BatchWidth: 0 → default, ≤ 1 → solo.
func (c *Config) batchWidth() int {
	switch {
	case c.BatchWidth == 0:
		return dht.DefaultBatchWidth
	case c.BatchWidth < 1:
		return 1
	default:
		return c.BatchWidth
	}
}

// batchEngine builds a batch engine for the config, attached to its counter
// sink. The config was validated by the joiner constructor, so this cannot
// fail.
func (c *Config) batchEngine() *dht.BatchEngine {
	be, err := dht.NewBatchEngine(c.Graph, c.Params, c.D, c.batchWidth())
	if err != nil {
		panic(err) // unreachable: Validate ran in the joiner constructor
	}
	be.Sink = c.Counters
	return be
}

// newMemo builds the config's score-column memo, nil when disabled.
func (c *Config) newMemo() *dht.ScoreMemo {
	if c.MemoSize < 0 {
		return nil
	}
	return dht.NewScoreMemo(c.MemoSize)
}

// batchRounds reports whether walks of length l should use the batched
// kernel under this config.
func (c *Config) batchRounds(l int) bool {
	return c.batchWidth() > 1 && l >= batchMinSteps
}

// workerCount resolves Config.Workers against the number of independent
// targets: 0/1 → serial, negative → GOMAXPROCS, always capped by targets.
func (c *Config) workerCount(targets int) int {
	w := c.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > targets {
		w = targets
	}
	return w
}

// pairTie is the canonical tie key used when two pairs have equal scores:
// smaller (p, q) wins. It makes every top-m selection a prefix of the
// top-(m+1) selection, which PJ's re-join stream depends on.
func pairTie(pr Pair) int64 {
	return int64(pr.P)<<32 | int64(uint32(pr.Q))
}

// Joiner is a top-k 2-way join algorithm.
type Joiner interface {
	// Name identifies the algorithm (e.g. "B-IDJ-Y") in reports.
	Name() string
	// TopK returns the k highest-scoring pairs in descending score order.
	// Fewer than k results are returned when |P|·|Q| < k.
	TopK(k int) ([]Result, error)
}

// MaxPairs returns |P|·|Q|, the size of the join's candidate space.
func (c *Config) MaxPairs() int { return len(c.P) * len(c.Q) }

// clampK limits k to the candidate space and rejects non-positive k.
func (c *Config) clampK(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("join2: k must be positive, got %d", k)
	}
	if m := c.MaxPairs(); k > m {
		k = m
	}
	return k, nil
}
