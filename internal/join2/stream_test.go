package join2

import (
	"testing"

	"repro/internal/dht"
)

// streamFor opens the named stream strategy over a fresh joiner.
func streamFor(t *testing.T, cfg Config, name string, spec StreamSpec) Stream {
	t.Helper()
	var (
		st  Stream
		err error
	)
	switch name {
	case "inc-X":
		st, err = NewIncrementalStream(cfg, BoundX, spec)
	case "inc-Y":
		st, err = NewIncrementalStream(cfg, BoundY, spec)
	case "rejoin-BIDJY":
		j, jerr := NewBIDJY(cfg)
		if jerr != nil {
			t.Fatal(jerr)
		}
		st, err = NewRejoinStream(j, spec)
	case "rejoin-BBJ":
		j, jerr := NewBBJ(cfg)
		if jerr != nil {
			t.Fatal(jerr)
		}
		st, err = NewRejoinStream(j, spec)
	case "rejoin-FBJ":
		j, jerr := NewFBJ(cfg)
		if jerr != nil {
			t.Fatal(jerr)
		}
		st, err = NewRejoinStream(j, spec)
	case "rejoin-FIDJ":
		j, jerr := NewFIDJ(cfg)
		if jerr != nil {
			t.Fatal(jerr)
		}
		st, err = NewRejoinStream(j, spec)
	case "open-BIDJY": // OpenStream upgrades B-IDJ to the incremental path
		j, jerr := NewBIDJY(cfg)
		if jerr != nil {
			t.Fatal(jerr)
		}
		st, err = OpenStream(j, spec)
	default:
		t.Fatalf("unknown stream strategy %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return st
}

var streamStrategies = []string{
	"inc-X", "inc-Y", "rejoin-BIDJY", "rejoin-BBJ", "rejoin-FBJ", "rejoin-FIDJ", "open-BIDJY",
}

// TestStreamPrefixEquivalence is the acceptance property of the streaming
// inversion: for every strategy and several prefix lengths m, the first m
// streamed results must be bit-identical — same pairs, same float64 scores
// (== comparison, no tolerance), same order — to the one-shot top-m of the
// reference joiner.
func TestStreamPrefixEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		cfg := testConfig(t, seed, 0.2)
		// A 12×12 candidate space keeps the full-drain × strategies ×
		// budgets sweep fast enough for the -race CI job.
		cfg.P = cfg.P[:12]
		cfg.Q = cfg.Q[:12]
		ref, err := NewBIDJY(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range streamStrategies {
			for _, initial := range []int{1, 3, 50} {
				st := streamFor(t, cfg, name, StreamSpec{Initial: initial})
				total := cfg.MaxPairs()
				streamed := make([]Result, 0, total)
				for {
					r, ok, err := st.Next()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					streamed = append(streamed, r)
				}
				st.Release()
				if len(streamed) != total {
					t.Fatalf("%s seed=%d init=%d: streamed %d of %d pairs",
						name, seed, initial, len(streamed), total)
				}
				for _, m := range []int{1, 2, 5, 17, 60, total} {
					if m > total {
						continue
					}
					want, err := ref.TopK(m)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						got := streamed[i]
						if got.Pair != want[i].Pair || got.Score != want[i].Score {
							t.Fatalf("%s seed=%d init=%d m=%d rank %d: streamed %+v, one-shot %+v",
								name, seed, initial, m, i, got, want[i])
						}
					}
				}
			}
		}
	}
}

// TestStreamReleaseReturnsPoolEngines: a stream abandoned mid-run must
// return every engine it checked out of a caller-owned pool — the
// release-on-stop invariant the facade's cancellation path depends on.
func TestStreamReleaseReturnsPoolEngines(t *testing.T) {
	cfg := testConfig(t, 3, 0.2)
	pool, err := dht.NewEnginePool(cfg.Graph, cfg.Params, cfg.D)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool
	for _, name := range streamStrategies {
		st := streamFor(t, cfg, name, StreamSpec{Initial: 4})
		// Drain a short prefix, then abandon mid-stream.
		for i := 0; i < 6; i++ {
			if _, ok, err := st.Next(); err != nil || !ok {
				t.Fatalf("%s: next %d = ok=%v err=%v", name, i, ok, err)
			}
		}
		st.Release()
		st.Release() // idempotent
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("%s: %d engines still checked out after Release", name, n)
		}
	}
}

// TestStreamRefetchCounting: pulls beyond the initial batch must be counted
// exactly once each for the incremental strategy (one Next per refetch) and
// once per re-join for the rejoin strategy.
func TestStreamRefetchCounting(t *testing.T) {
	cfg := testConfig(t, 5, 0.2)
	var incRefetches int64
	st, err := NewIncrementalStream(cfg, BoundY, StreamSpec{Initial: 4, Refetches: &incRefetches})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := st.Next(); err != nil || !ok {
			t.Fatalf("next %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	st.Release()
	if incRefetches != 6 {
		t.Fatalf("incremental refetches = %d, want 6", incRefetches)
	}

	j, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rjRefetches int64
	st, err = NewRejoinStream(j, StreamSpec{Initial: 4, Refetches: &rjRefetches, Grow: growDouble})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := st.Next(); err != nil || !ok {
			t.Fatalf("rejoin next %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	st.Release()
	// Budgets 4 → 8 → 16: two re-joins cover the first 10 pulls.
	if rjRefetches != 2 {
		t.Fatalf("rejoin refetches = %d, want 2", rjRefetches)
	}
}

// TestStreamExhaustionIsSticky: a drained stream keeps reporting ok=false.
func TestStreamExhaustionIsSticky(t *testing.T) {
	cfg := testConfig(t, 2, 0.2)
	cfg.P = cfg.P[:2]
	cfg.Q = cfg.Q[:2]
	st, err := NewIncrementalStream(cfg, BoundY, StreamSpec{Initial: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	n := 0
	for {
		_, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("drained %d of 4 pairs", n)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := st.Next(); ok || err != nil {
			t.Fatalf("post-exhaustion next = ok=%v err=%v", ok, err)
		}
	}
}
