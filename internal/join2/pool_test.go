package join2

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
)

// poolTestConfig builds a small community-graph join config.
func poolTestConfig(t *testing.T) Config {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{60, 60, 40}, PIn: 0.12, POut: 0.04, Seed: 11, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:  g,
		Params: dht.DHTLambda(0.2),
		D:      8,
		P:      sets[0].Nodes(),
		Q:      sets[1].Nodes(),
	}
}

// TestCallerOwnedPoolBitIdentical: every joiner must produce bit-identical
// results when drawing engines from a caller-owned pool (serial and worker
// paths) and when releasing + re-running, versus the self-constructed
// engines of a plain config.
func TestCallerOwnedPoolBitIdentical(t *testing.T) {
	base := poolTestConfig(t)
	pool, err := dht.NewEnginePool(base.Graph, base.Params, base.D)
	if err != nil {
		t.Fatal(err)
	}
	pool.BatchWidth = base.batchWidth()
	memo := dht.NewScoreMemo(256)

	mk := map[string]func(Config) (Joiner, error){
		"B-BJ":    func(c Config) (Joiner, error) { return NewBBJ(c) },
		"B-IDJ-Y": func(c Config) (Joiner, error) { return NewBIDJY(c) },
		"B-IDJ-X": func(c Config) (Joiner, error) { return NewBIDJX(c) },
		"F-BJ":    func(c Config) (Joiner, error) { return NewFBJ(c) },
		"F-IDJ":   func(c Config) (Joiner, error) { return NewFIDJ(c) },
	}
	for name, newJoiner := range mk {
		ref, err := func() ([]Result, error) {
			j, err := newJoiner(base)
			if err != nil {
				return nil, err
			}
			return j.TopK(25)
		}()
		if err != nil {
			t.Fatalf("%s ref: %v", name, err)
		}
		for _, workers := range []int{0, 3} {
			cfg := base
			cfg.Pool = pool
			cfg.Memo = memo
			cfg.Workers = workers
			j, err := newJoiner(cfg)
			if err != nil {
				t.Fatalf("%s pooled: %v", name, err)
			}
			for round := 0; round < 2; round++ { // second round re-checks out after Release
				got, err := j.TopK(25)
				if err != nil {
					t.Fatalf("%s pooled workers=%d round %d: %v", name, workers, round, err)
				}
				if len(got) != len(ref) {
					t.Fatalf("%s workers=%d: %d results, want %d", name, workers, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s workers=%d round %d rank %d: %+v != %+v",
							name, workers, round, i, got[i], ref[i])
					}
				}
				if r, ok := j.(interface{ Release() }); ok {
					r.Release()
				} else {
					t.Fatalf("%s: joiner has no Release method", name)
				}
			}
		}
	}
}

// TestIncrementalCallerPool: the PJ-i state must serve identical Next streams
// from a pooled engine and release it afterwards.
func TestIncrementalCallerPool(t *testing.T) {
	base := poolTestConfig(t)
	pool, err := dht.NewEnginePool(base.Graph, base.Params, base.D)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg Config) []Result {
		t.Helper()
		inc, err := NewIncremental(cfg, BoundY)
		if err != nil {
			t.Fatal(err)
		}
		defer inc.Release()
		out, err := inc.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			r, ok, err := inc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			out = append(out, r)
		}
		return out
	}
	ref := run(base)
	cfg := base
	cfg.Pool = pool
	cfg.Memo = dht.NewScoreMemo(64)
	got := run(cfg)
	if len(got) != len(ref) {
		t.Fatalf("%d results, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("rank %d: %+v != %+v", i, got[i], ref[i])
		}
	}
}

// TestMismatchedPoolRejected: Validate must reject a pool built for another
// configuration instead of walking with wrongly-sized scratch.
func TestMismatchedPoolRejected(t *testing.T) {
	cfg := poolTestConfig(t)
	other := poolTestConfig(t)
	pool, err := dht.NewEnginePool(other.Graph, other.Params, other.D+1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pool = pool
	if err := cfg.Validate(); err == nil {
		t.Fatal("mismatched pool accepted")
	}
}
