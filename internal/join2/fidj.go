package join2

import (
	"math"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// FIDJ is the forward Iterative Deepening Join (§V-B), the adaptation of the
// IDJ framework of Sun et al. (VLDB'11) to DHT. It runs ⌈log d⌉ rounds with
// walk length l = 2^(j-1): short walks are cheap and already give usable
// bounds (h_l is a lower bound of h_d; h_l + X⁺ₗ an upper bound), so many
// source nodes p ∈ P are pruned before the expensive full-depth walks of the
// final round. Worst case remains O(|P|·|Q|·d·|E|). Deep rounds run each
// source's |Q| forward walks through the batched kernel, Config.BatchWidth
// pair columns per CSR traversal.
type FIDJ struct {
	cfg Config
	e   *dht.Engine
	be  *dht.BatchEngine

	// batching scratch: the repeated-source column and one row of scores
	ps       []graph.NodeID
	scoreBuf []float64

	// PrunedPerRound records, for each deepening round, how many nodes of P
	// were discarded. Populated by TopK; used by ablation reports.
	PrunedPerRound []int
}

// NewFIDJ validates the config and returns the joiner.
func NewFIDJ(cfg Config) (*FIDJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FIDJ{cfg: cfg}, nil
}

// Name implements Joiner.
func (f *FIDJ) Name() string { return "F-IDJ" }

// Release returns the joiner's cached engines to the caller-owned pool
// (Config.Pool); no-op without one.
func (f *FIDJ) Release() {
	f.cfg.releaseEngines(&f.e, &f.be)
}

// scoresForSource fills and returns a row with the forward truncated scores
// h_l(p, q) for every q ∈ Q, batching the walks when l is deep enough. The
// row is owned by the joiner and valid until the next call.
func (f *FIDJ) scoresForSource(p graph.NodeID, l int) []float64 {
	qs := f.cfg.Q
	if cap(f.scoreBuf) < len(qs) {
		f.scoreBuf = make([]float64, len(qs))
	}
	scores := f.scoreBuf[:len(qs)]
	if !f.cfg.batchRounds(l) || len(qs) < 2 {
		for qi, q := range qs {
			scores[qi] = f.e.ForwardScoreKind(f.cfg.Measure, p, q, l)
		}
		return scores
	}
	if f.be == nil {
		f.be = f.cfg.batchEngine()
	}
	bw := f.be.W
	if cap(f.ps) < bw {
		f.ps = make([]graph.NodeID, bw)
	}
	for c := range f.ps[:bw] {
		f.ps[c] = p
	}
	firstHit := f.cfg.Measure == dht.FirstHit
	for base := 0; base < len(qs); base += bw {
		end := min(base+bw, len(qs))
		rows := f.be.ForwardProbsBatch(f.cfg.Measure, f.ps[:end-base], qs[base:end], l)
		for ci, q := range qs[base:end] {
			if firstHit && p == q {
				scores[base+ci] = 0 // h(v,v) = 0 by definition, as in ForwardScoreAt
				continue
			}
			scores[base+ci] = f.cfg.Params.Score(rows[ci])
		}
	}
	return scores
}

// TopK implements Joiner.
func (f *FIDJ) TopK(k int) ([]Result, error) {
	k, err := f.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if f.e == nil {
		if f.e, err = f.cfg.engine(); err != nil {
			return nil, err
		}
	}
	d := f.cfg.D
	f.PrunedPerRound = f.PrunedPerRound[:0]

	alive := make([]bool, len(f.cfg.P))
	for i := range alive {
		alive[i] = true
	}
	// Deepening rounds j = 1 .. ⌈log d⌉−1 with l = 2^(j-1) < d.
	for l := 1; l < d; l *= 2 {
		lower := pqueue.NewTopK[struct{}](k)
		upper := make([]float64, len(f.cfg.P)) // h⁺_d(p, Q) per alive p
		x := f.cfg.Params.XBound(l)
		for pi, p := range f.cfg.P {
			if !alive[pi] {
				continue
			}
			// Each source's |Q| walks at depth l form one walk round; poll so
			// deadline budgets can abort a round mid-deepening.
			if err := f.cfg.canceled(); err != nil {
				return nil, err
			}
			scores := f.scoresForSource(p, l)
			best := math.Inf(-1)
			for _, hl := range scores {
				lower.Add(struct{}{}, hl)
				if hl > best {
					best = hl
				}
			}
			upper[pi] = best + x
		}
		pruned := 0
		if tk, full := lower.MinScore(); full {
			for pi := range f.cfg.P {
				if alive[pi] && upper[pi] < tk {
					alive[pi] = false
					pruned++
				}
			}
		}
		f.PrunedPerRound = append(f.PrunedPerRound, pruned)
	}
	// Final round: exact h_d for surviving pairs.
	top := pqueue.NewTopK[Pair](k)
	for pi, p := range f.cfg.P {
		if !alive[pi] {
			continue
		}
		if err := f.cfg.canceled(); err != nil {
			return nil, err
		}
		scores := f.scoresForSource(p, d)
		for qi, q := range f.cfg.Q {
			pr := Pair{p, q}
			top.AddTie(pr, scores[qi], pairTie(pr))
		}
	}
	return collect(top), nil
}
