package join2

import (
	"testing"

	"repro/internal/graph"
)

// TestBatchWidthsBitIdenticalTopK: every joiner must return *exactly* the
// same results (score bits included) at any batch width, including widths
// far beyond the target count and width 1 (the solo engine), because the
// batched kernel is bit-identical to solo walks. Workers × widths are
// crossed to cover the batch-aware pool checkout.
func TestBatchWidthsBitIdenticalTopK(t *testing.T) {
	cfg := testConfig(t, 41, 0.3)
	base := cfg
	base.BatchWidth = 1 // solo reference
	for _, workers := range []int{0, 3} {
		base.Workers = workers
		want := map[string][]Result{}
		for _, j := range allJoiners(t, base) {
			res, err := j.TopK(20)
			if err != nil {
				t.Fatalf("%s solo: %v", j.Name(), err)
			}
			want[j.Name()] = res
		}
		for _, w := range []int{2, 7, 8, 64} {
			bcfg := cfg
			bcfg.Workers = workers
			bcfg.BatchWidth = w
			for _, j := range allJoiners(t, bcfg) {
				got, err := j.TopK(20)
				if err != nil {
					t.Fatalf("%s width %d: %v", j.Name(), w, err)
				}
				ref := want[j.Name()]
				if len(got) != len(ref) {
					t.Fatalf("%s width %d workers %d: %d results, want %d",
						j.Name(), w, workers, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s width %d workers %d rank %d: %+v != solo %+v",
							j.Name(), w, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestIncrementalBatchWidthsAndMemo: the PJ-i stream must emit the same
// sequence at any batch width and with the memo on or off (memo hits replay
// cached columns of the same engine, so even the bits agree).
func TestIncrementalBatchWidthsAndMemo(t *testing.T) {
	cfg := testConfig(t, 42, 0.25)
	stream := func(c Config) []Result {
		t.Helper()
		inc, err := NewIncremental(c, BoundY)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inc.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			r, ok, err := inc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			res = append(res, r)
		}
		return res
	}
	solo := cfg
	solo.BatchWidth = 1
	solo.MemoSize = -1
	want := stream(solo)
	for _, variant := range []Config{
		{BatchWidth: 0, MemoSize: 0},   // defaults: batched + memo
		{BatchWidth: 7, MemoSize: 2},   // odd width, tiny memo
		{BatchWidth: 64, MemoSize: -1}, // wide, memo off
	} {
		c := cfg
		c.BatchWidth = variant.BatchWidth
		c.MemoSize = variant.MemoSize
		got := stream(c)
		if len(got) != len(want) {
			t.Fatalf("width %d memo %d: %d results, want %d", c.BatchWidth, c.MemoSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("width %d memo %d rank %d: %+v != %+v", c.BatchWidth, c.MemoSize, i, got[i], want[i])
			}
		}
	}
}

// relabelings returns both locality orderings of the config's graph.
func relabelings(cfg Config) map[string]*graph.Relabeling {
	return map[string]*graph.Relabeling{
		"degree": graph.DegreeOrder(cfg.Graph),
		"bfs":    graph.BFSOrder(cfg.Graph),
	}
}

// TestRelabelRoundTripsTopK: running any joiner on the locality-relabeled
// graph with mapped node sets and mapping the result ids back must
// reproduce the original top-k (scores to fp-reordering tolerance, pair
// sets up to equal-score permutations) — the id map inverts cleanly on
// every joiner's output.
func TestRelabelRoundTripsTopK(t *testing.T) {
	cfg := testConfig(t, 55, 0.3)
	want := map[string][]Result{}
	for _, j := range allJoiners(t, cfg) {
		res, err := j.TopK(15)
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		want[j.Name()] = res
	}
	for order, r := range relabelings(cfg) {
		rcfg := cfg
		rcfg.Graph = r.Apply(cfg.Graph)
		rcfg.P = r.MapToNew(cfg.P)
		rcfg.Q = r.MapToNew(cfg.Q)
		if err := rcfg.Validate(); err != nil {
			t.Fatalf("%s: relabeled config invalid: %v", order, err)
		}
		for _, j := range allJoiners(t, rcfg) {
			res, err := j.TopK(15)
			if err != nil {
				t.Fatalf("%s/%s: %v", order, j.Name(), err)
			}
			back := make([]Result, len(res))
			for i, rr := range res {
				back[i] = Result{
					Pair:  Pair{P: r.ToOld(rr.Pair.P), Q: r.ToOld(rr.Pair.Q)},
					Score: rr.Score,
				}
			}
			assertSameTopK(t, order+"/"+j.Name(), back, want[j.Name()])
		}
	}
}

// TestRelabelRoundTripsIncremental extends the round-trip to the PJ-i
// stream, whose ids surface one pair at a time through Next.
func TestRelabelRoundTripsIncremental(t *testing.T) {
	cfg := testConfig(t, 56, 0.2)
	run := func(c Config, r *graph.Relabeling) []Result {
		t.Helper()
		inc, err := NewIncremental(c, BoundY)
		if err != nil {
			t.Fatal(err)
		}
		res, err := inc.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			rr, ok, err := inc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			res = append(res, rr)
		}
		if r != nil {
			for i := range res {
				res[i].Pair = Pair{P: r.ToOld(res[i].Pair.P), Q: r.ToOld(res[i].Pair.Q)}
			}
		}
		return res
	}
	want := run(cfg, nil)
	for order, r := range relabelings(cfg) {
		rcfg := cfg
		rcfg.Graph = r.Apply(cfg.Graph)
		rcfg.P = r.MapToNew(cfg.P)
		rcfg.Q = r.MapToNew(cfg.Q)
		assertSameTopK(t, order+"/incremental", run(rcfg, r), want)
	}
}
