package join2

import (
	"runtime"
	"sync"

	"repro/internal/dht"
	"repro/internal/pqueue"
)

// ParallelBBJ is B-BJ with the per-target backward walks spread across a
// worker pool — a production extension beyond the paper's single-threaded
// evaluation. Each worker owns its own DHT engine (the engine's scratch
// buffers are not safe for concurrent use); partial top-k heaps are merged
// at the end. Because ties are broken by the canonical pair key, the result
// is bit-identical to the serial B-BJ regardless of scheduling.
type ParallelBBJ struct {
	cfg     Config
	workers int
}

// NewParallelBBJ validates the config. workers ≤ 0 selects GOMAXPROCS.
func NewParallelBBJ(cfg Config, workers int) (*ParallelBBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelBBJ{cfg: cfg, workers: workers}, nil
}

// Name implements Joiner.
func (b *ParallelBBJ) Name() string { return "B-BJ-par" }

// TopK implements Joiner.
func (b *ParallelBBJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	workers := b.workers
	if workers > len(b.cfg.Q) {
		workers = len(b.cfg.Q)
	}
	type partial struct {
		top *pqueue.TopK[Pair]
		err error
	}
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e, err := dht.NewEngine(b.cfg.Graph, b.cfg.Params, b.cfg.D)
			if err != nil {
				parts[w].err = err
				return
			}
			top := pqueue.NewTopK[Pair](k)
			scores := make([]float64, b.cfg.Graph.NumNodes())
			for qi := w; qi < len(b.cfg.Q); qi += workers {
				q := b.cfg.Q[qi]
				e.BackWalkKind(b.cfg.Measure, q, b.cfg.D, scores)
				for _, p := range b.cfg.P {
					pr := Pair{p, q}
					top.AddTie(pr, scores[p], pairTie(pr))
				}
			}
			parts[w].top = top
		}(w)
	}
	wg.Wait()
	merged := pqueue.NewTopK[Pair](k)
	for _, part := range parts {
		if part.err != nil {
			return nil, part.err
		}
		pairs, scores := part.top.Sorted()
		for i := range pairs {
			merged.AddTie(pairs[i], scores[i], pairTie(pairs[i]))
		}
	}
	return collect(merged), nil
}
