package join2

import (
	"runtime"
	"sync"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// ParallelBBJ is B-BJ with the per-target backward walks spread across a
// worker pool — a production extension beyond the paper's single-threaded
// evaluation. Workers check engines out of a shared EnginePool (the engine's
// scratch buffers are not safe for concurrent use, but pooling lets repeated
// TopK calls reuse them); partial top-k heaps are merged at the end. Because
// ties are broken by the canonical pair key, the result is bit-identical to
// the serial B-BJ regardless of scheduling.
type ParallelBBJ struct {
	cfg     Config
	workers int
	pool    *dht.EnginePool
}

// NewParallelBBJ validates the config. workers ≤ 0 selects GOMAXPROCS.
func NewParallelBBJ(cfg Config, workers int) (*ParallelBBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelBBJ{cfg: cfg, workers: workers}, nil
}

// Name implements Joiner.
func (b *ParallelBBJ) Name() string { return "B-BJ-par" }

// TopK implements Joiner.
func (b *ParallelBBJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if b.pool == nil {
		if b.pool, err = b.cfg.enginePool(); err != nil {
			return nil, err
		}
	}
	pool := b.pool
	d := b.cfg.D
	// Deep walks run batched: each worker consumes whole width-sized chunks
	// of Q, one engine sweep per chunk, and the worker count is capped at
	// the chunk count so worker count × batch width stay tuned together.
	bw := 1
	if b.cfg.batchRounds(d) && len(b.cfg.Q) >= 2 {
		bw = b.cfg.batchWidth()
	}
	workers := b.workers
	if chunks := (len(b.cfg.Q) + bw - 1) / bw; workers > chunks {
		workers = chunks
	}
	parts := make([]*pqueue.TopK[Pair], workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// guard converts a worker panic into an error after the engine
			// checkouts below have been unwound back to the pool.
			if err := guard(func() {
				top := pqueue.NewTopK[Pair](k)
				addColumn := func(q graph.NodeID, scores []float64) {
					for _, p := range b.cfg.P {
						pr := Pair{p, q}
						top.AddTie(pr, scores[p], pairTie(pr))
					}
				}
				if bw > 1 {
					be := b.cfg.checkoutBatch(pool)
					defer pool.PutBatch(be)
					for base := w * bw; base < len(b.cfg.Q); base += workers * bw {
						if err := b.cfg.canceled(); err != nil {
							fail(err)
							return
						}
						end := min(base+bw, len(b.cfg.Q))
						chunk := b.cfg.Q[base:end]
						cols := be.BackWalkScoresBatch(b.cfg.Measure, chunk, d)
						for ci, q := range chunk {
							addColumn(q, cols[ci])
						}
					}
				} else {
					e := b.cfg.checkout(pool)
					defer pool.Put(e)
					for qi := w; qi < len(b.cfg.Q); qi += workers {
						if err := b.cfg.canceled(); err != nil {
							fail(err)
							return
						}
						q := b.cfg.Q[qi]
						addColumn(q, e.BackWalkScores(b.cfg.Measure, q, d))
					}
				}
				parts[w] = top
			}); err != nil {
				fail(err)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	merged := pqueue.NewTopK[Pair](k)
	for _, part := range parts {
		pairs, scores := part.Sorted()
		for i := range pairs {
			merged.AddTie(pairs[i], scores[i], pairTie(pairs[i]))
		}
	}
	return collect(merged), nil
}
