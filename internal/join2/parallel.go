package join2

import (
	"runtime"
	"sync"

	"repro/internal/dht"
	"repro/internal/pqueue"
)

// ParallelBBJ is B-BJ with the per-target backward walks spread across a
// worker pool — a production extension beyond the paper's single-threaded
// evaluation. Workers check engines out of a shared EnginePool (the engine's
// scratch buffers are not safe for concurrent use, but pooling lets repeated
// TopK calls reuse them); partial top-k heaps are merged at the end. Because
// ties are broken by the canonical pair key, the result is bit-identical to
// the serial B-BJ regardless of scheduling.
type ParallelBBJ struct {
	cfg     Config
	workers int
	pool    *dht.EnginePool
}

// NewParallelBBJ validates the config. workers ≤ 0 selects GOMAXPROCS.
func NewParallelBBJ(cfg Config, workers int) (*ParallelBBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelBBJ{cfg: cfg, workers: workers}, nil
}

// Name implements Joiner.
func (b *ParallelBBJ) Name() string { return "B-BJ-par" }

// TopK implements Joiner.
func (b *ParallelBBJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if b.pool == nil {
		if b.pool, err = b.cfg.enginePool(); err != nil {
			return nil, err
		}
	}
	pool := b.pool
	workers := b.workers
	if workers > len(b.cfg.Q) {
		workers = len(b.cfg.Q)
	}
	parts := make([]*pqueue.TopK[Pair], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := pool.Get()
			defer pool.Put(e)
			top := pqueue.NewTopK[Pair](k)
			for qi := w; qi < len(b.cfg.Q); qi += workers {
				q := b.cfg.Q[qi]
				scores := e.BackWalkScores(b.cfg.Measure, q, b.cfg.D)
				for _, p := range b.cfg.P {
					pr := Pair{p, q}
					top.AddTie(pr, scores[p], pairTie(pr))
				}
			}
			parts[w] = top
		}(w)
	}
	wg.Wait()
	merged := pqueue.NewTopK[Pair](k)
	for _, part := range parts {
		pairs, scores := part.Sorted()
		for i := range pairs {
			merged.AddTie(pairs[i], scores[i], pairTie(pairs[i]))
		}
	}
	return collect(merged), nil
}
