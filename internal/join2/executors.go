package join2

// This file registers the five 2-way joiners with the planner registry
// (internal/plan): each gets a descriptor carrying its name, streaming and
// resumability capabilities, a calibrated cost function, and a Factory. The
// execution layers (dhtjoin, internal/service) no longer hard-code B-IDJ-Y —
// they ask plan.Decide and open whatever wins through NewNamedStream.
//
// The cost model follows the paper's complexity analysis (§V–§VI) in the
// planner's edge-relaxation unit W = Workload.WalkCost() (one full-depth
// walk):
//
//   - F-BJ scores every pair with its own absorbing forward walk:
//     |P|·|Q|·W.
//   - F-IDJ deepens over sources: the doubling schedule's shallow rounds
//     cost about half a full walk per pair, then the un-pruned residual pays
//     full depth.
//   - B-BJ needs one full-depth backward walk per target — the factor-|P|
//     win of backward processing: |Q|·W.
//   - B-IDJ-X/Y deepen over targets: shallow rounds ≈ |Q|·W/2, plus the
//     residual the bound failed to prune. The residual floor reflects bound
//     tightness (Lemma 5: Y⁺ₗ ≤ X⁺ₗ, so Y prunes earlier), and grows with
//     selectivity k/(|P|·|Q|) — at k = |P|·|Q| nothing can be pruned and the
//     deepening rounds are pure overhead, which is exactly when the planner
//     flips to B-BJ. B-IDJ-Y additionally pays its reach-probability
//     precomputation (one walk, Theorem 1).
//
// Every pair additionally costs plan.PairCost of heap bookkeeping. All five
// produce bit-identical rankings (canonical tie keys), so a wrong estimate
// costs time, never correctness.

import (
	"fmt"

	"repro/internal/plan"
)

// Factory is the 2-way executor constructor signature registered as
// plan.Descriptor.New; the execution layer asserts it back.
type Factory func(cfg Config) (Joiner, error)

// shallowRounds is the modeled cost of an iterative deepener's short-walk
// rounds, as a fraction of one full-depth walk per element: the doubling
// schedule walks lengths 1, 2, 4, …, d/2, whose truncated frontiers sum to
// roughly half the full walk under the adaptive sparse kernel.
const shallowRounds = 0.5

// residual models the fraction of elements surviving to the full-depth
// round: a bound-tightness floor plus the demanded selectivity (pairs the
// query wants can never be pruned).
func residual(floor float64, w plan.Workload) float64 {
	r := floor + w.Selectivity()
	if r > 1 {
		r = 1
	}
	return r
}

// Bound-tightness floors: the fraction of targets even a well-behaved run
// cannot prune before full depth. Y's per-target reach bounds (Theorem 1)
// are tighter than the graph-independent X (Lemma 2).
const (
	floorY = 0.15
	floorX = 0.35
)

func costFBJ(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	return pq*w.WalkCost() + pq*plan.PairCost
}

func costFIDJ(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	walk := w.WalkCost()
	return pq*walk*shallowRounds + residual(floorX, w)*pq*walk + pq*plan.PairCost
}

func costBBJ(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	return float64(w.Q)*w.WalkCost() + pq*plan.PairCost
}

func costBIDJX(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	q, walk := float64(w.Q), w.WalkCost()
	return q*walk*shallowRounds + residual(floorX, w)*q*walk + pq*plan.PairCost
}

func costBIDJY(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	q, walk := float64(w.Q), w.WalkCost()
	// The leading walk is the Y⁺ₗ table's reach-probability precomputation.
	return walk + q*walk*shallowRounds + residual(floorY, w)*q*walk + pq*plan.PairCost
}

// fastKernelSpeedup models the FastCertified kernel's per-walk advantage in
// the planner's edge-relaxation unit: double lane width, float32 memory
// bandwidth, and multi-core partitioned sweeps. Deliberately conservative —
// measured wall-clock wins are larger, but the cost model only needs the
// *ordering* right.
const fastKernelSpeedup = 6.0

// rescoreTargets models the exact re-verification of a certified run: the
// ε-band is the demanded k plus a near-tie fringe, and each distinct target
// in the band pays one full-depth bit-identical walk. In the worst case the
// k band pairs spread over k distinct targets (capped at |Q|) — at full
// ranking every target re-walks, which is exactly when the planner should
// (and does) prefer plain B-BJ.
func rescoreTargets(w plan.Workload) float64 {
	k := float64(w.K)
	if q := float64(w.Q); k > q {
		return q
	}
	return k
}

func costCertBBJ(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	walk := w.WalkCost()
	return float64(w.Q)*walk/fastKernelSpeedup + rescoreTargets(w)*walk + pq*plan.PairCost
}

func costCertFBJ(w plan.Workload) float64 {
	pq := float64(w.P) * float64(w.Q)
	walk := w.WalkCost()
	return pq*walk/fastKernelSpeedup + rescoreTargets(w)*walk + pq*plan.PairCost
}

// bidjVariant maps the registered B-IDJ names to their bound variant, for
// NewNamedStream's incremental upgrade.
var bidjVariant = map[string]BoundVariant{
	"B-IDJ-X": BoundX,
	"B-IDJ-Y": BoundY,
}

func init() {
	reg := func(name string, streaming, resumable bool, cost plan.CostFunc, mk Factory) {
		plan.Register(plan.Descriptor{
			Name: name, Class: plan.TwoWay,
			Streaming: streaming, Resumable: resumable,
			Cost: cost, New: mk,
		})
	}
	// The B-IDJ family streams natively (pairs confirm as the bound
	// deepens) and resumes through the incremental F structure of §VI-D.
	reg("B-IDJ-Y", true, true, costBIDJY, func(cfg Config) (Joiner, error) { return NewBIDJY(cfg) })
	reg("B-IDJ-X", true, true, costBIDJX, func(cfg Config) (Joiner, error) { return NewBIDJX(cfg) })
	// The basic joins materialize their top-k in one pass; streaming past
	// it re-joins with a grown budget.
	reg("B-BJ", false, false, costBBJ, func(cfg Config) (Joiner, error) { return NewBBJ(cfg) })
	reg("F-BJ", false, false, costFBJ, func(cfg Config) (Joiner, error) { return NewFBJ(cfg) })
	reg("F-IDJ", false, false, costFIDJ, func(cfg Config) (Joiner, error) { return NewFIDJ(cfg) })
	// The certified fast-path variants (Descriptor.Certified): walk work on
	// the FastCertified kernel, ε-band re-verified through the bit-identical
	// one, so their rankings are ==-identical to the five above. An unforced
	// Decide only considers them at plan.Fast accuracy.
	regFast := func(name string, cost plan.CostFunc, mk Factory) {
		plan.Register(plan.Descriptor{
			Name: name, Class: plan.TwoWay,
			Certified: true,
			Cost:      cost, New: mk,
		})
	}
	regFast("B-BJ-fast", costCertBBJ, func(cfg Config) (Joiner, error) { return NewCertifiedBBJ(cfg) })
	regFast("F-BJ-fast", costCertFBJ, func(cfg Config) (Joiner, error) { return NewCertifiedFBJ(cfg) })
}

// NewNamedStream opens the serving stream of the named registered 2-way
// executor over cfg — the planner-facing generalization of NewBIDJYStream.
// The B-IDJ family streams through the incremental F structure when the
// config is serial and the caller is not a batch drain (batch = true: the
// caller will pull exactly the initial budget and stop, so populating the F
// structure would be paid for nothing); everything else — non-B-IDJ
// executors, parallel configs, batch drains — runs the underlying joiner
// behind a doubling re-join, which prices a batch drain identically to a
// direct TopK call. Every choice yields the identical ranking (canonical
// tie keys); the strategy split is purely a cost decision.
func NewNamedStream(name string, cfg Config, spec StreamSpec, batch bool) (Stream, error) {
	d, ok := plan.Lookup(name)
	if !ok || d.Class != plan.TwoWay {
		return nil, fmt.Errorf("join2: no registered 2-way executor %q", name)
	}
	if v, incr := bidjVariant[name]; incr && !batch && cfg.Workers >= 0 && cfg.Workers <= 1 {
		return NewIncrementalStream(cfg, v, spec)
	}
	mk, ok := d.New.(Factory)
	if !ok {
		return nil, fmt.Errorf("join2: executor %q registered with a foreign factory type", name)
	}
	j, err := mk(cfg)
	if err != nil {
		return nil, err
	}
	if spec.Grow == nil {
		spec.Grow = growDouble
	}
	return NewRejoinStream(j, spec)
}
