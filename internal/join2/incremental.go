package join2

import (
	"fmt"
	"math"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// fentry is one F-structure record (§VI-D): the tightest known bounds on
// h_d(p, q) and the walk length l they were computed with. The upper bound is
// stored as the heap priority, the rest here.
type fentry struct {
	lower float64
	l     int
}

// Incremental is the PJ-i join state for one (P, Q) pair: it runs an initial
// top-m B-IDJ while recording every bound observation into the mutable
// priority queue F (keyed by pair, ordered by upper bound), then serves
// getNextNodePair requests by refining only the pairs that contend for the
// next rank — instead of re-running a top-(m+1) join from scratch.
type Incremental struct {
	cfg     Config
	variant BoundVariant
	e       *dht.Engine
	f       *pqueue.Indexed[Pair, fentry]
	ubound  func(q graph.NodeID, l int) float64
	started bool

	// memo caches full-depth score columns by (kind, q, d): the winner path
	// of Next re-walks the same hot target once per emitted pair of that
	// target, and consecutive winners cluster on few targets, so a small
	// LRU absorbs most of those d-step walks. Shorter refinement walks are
	// not cached — they are near-free under the sparse kernel, while a memo
	// hit would still cost an O(|V|) column copy on insert.
	memo *dht.ScoreMemo

	// Refines counts backward walks performed by Next calls (memo hits are
	// not walks and do not count); the ablation bench compares it against
	// from-scratch re-join costs.
	Refines int
}

// NewIncremental validates the config and returns an idle join state; call
// Run to execute the initial top-m join.
func NewIncremental(cfg Config, variant BoundVariant) (*Incremental, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, err := cfg.engine()
	if err != nil {
		return nil, err
	}
	return &Incremental{
		cfg:     cfg,
		variant: variant,
		e:       e,
		f:       pqueue.NewIndexed[Pair, fentry](),
		memo:    cfg.newMemo(),
	}, nil
}

// Run executes the initial top-m 2-way join (B-IDJ with the configured bound
// variant), populating F, and returns the top-m results. It must be called
// exactly once, before any Next.
func (inc *Incremental) Run(m int) ([]Result, error) {
	if inc.started {
		return nil, fmt.Errorf("join2: Incremental.Run called twice")
	}
	inc.started = true
	m, err := inc.cfg.clampK(m)
	if err != nil {
		return nil, err
	}
	b, err := NewBIDJ(inc.cfg, inc.variant)
	if err != nil {
		return nil, err
	}
	// Bound provider shared with Next; for Y it is built once here over the
	// full P and Q.
	switch inc.variant {
	case BoundY:
		yt := dht.NewYBoundTable(inc.e, inc.cfg.P, inc.cfg.Q)
		inc.ubound = yt.Bound
	default:
		inc.ubound = func(_ graph.NodeID, l int) float64 { return inc.cfg.Params.XBound(l) }
	}
	b.record = func(pr Pair, lower, upper float64, l int) {
		if old, _, ok := inc.f.Get(pr); ok && old.l >= l {
			return // keep the tighter (longer-walk) bounds
		}
		inc.f.Set(pr, upper, fentry{lower: lower, l: l})
	}
	// The recording run walks on inc.e, but deep rounds may still check a
	// batch engine out of a caller-owned pool (b.be); return it — b is
	// dropped right here, and an unreleased checkout would leak the pool
	// entry for the incremental state's whole lifetime.
	defer b.Release()
	res, err := b.run(inc.e, m)
	if err != nil {
		return nil, err
	}
	// Entries already emitted must not be served again by Next.
	for _, r := range res {
		inc.f.Remove(r.Pair)
	}
	return res, nil
}

// Next returns the next-best pair after everything already emitted, with its
// exact truncated score. ok is false when the candidate space is exhausted.
//
// It repeatedly inspects the entry e1 with the highest upper bound: if e1's
// lower bound already dominates the second-highest upper bound, e1 must be
// the answer and only its exact value is still needed (one d-step walk);
// otherwise e1's target q is refined with a min(2l, d)-step walk, tightening
// every pair of that q at once.
func (inc *Incremental) Next() (Result, bool, error) {
	if !inc.started {
		return Result{}, false, fmt.Errorf("join2: Incremental.Next before Run")
	}
	d := inc.cfg.D
	for {
		// Refinement steps are the incremental join's walk rounds; the poll
		// here is what lets a deadline budget truncate a slow pull mid-way.
		if err := inc.cfg.canceled(); err != nil {
			return Result{}, false, err
		}
		pr, _, ent, ok := inc.f.Max()
		if !ok {
			return Result{}, false, nil
		}
		second, hasSecond := inc.f.SecondMax()
		if !hasSecond {
			second = math.Inf(-1)
		}
		if ent.l >= d {
			// Exact and holding the highest upper bound: upper == lower ==
			// h_d, so it dominates every other entry's true score.
			inc.f.Remove(pr)
			return Result{Pair: pr, Score: ent.lower}, true, nil
		}
		if ent.lower >= second {
			// Winner decided by bounds; fetch its exact score.
			inc.refine(pr.Q, d)
			v, _, stillThere := inc.f.Get(pr)
			if !stillThere {
				return Result{}, false, fmt.Errorf("join2: F entry for %v vanished during refinement", pr)
			}
			inc.f.Remove(pr)
			return Result{Pair: pr, Score: v.lower}, true, nil
		}
		// Not separated yet: tighten e1's target.
		next := ent.l * 2
		if next > d {
			next = d
		}
		inc.refine(pr.Q, next)
	}
}

// refine re-walks q at depth l and tightens every still-pending pair of q.
// Full-depth walks go through the (q, l)-keyed memo.
func (inc *Incremental) refine(q graph.NodeID, l int) {
	var scores []float64
	if l == inc.cfg.D {
		if cached, ok := inc.memo.Get(inc.cfg.Measure, q, l); ok {
			scores = cached
		} else {
			inc.Refines++
			scores = inc.e.BackWalkScores(inc.cfg.Measure, q, l)
			inc.memo.Put(inc.cfg.Measure, q, l, scores)
		}
	} else {
		inc.Refines++
		scores = inc.e.BackWalkScores(inc.cfg.Measure, q, l)
	}
	for _, p := range inc.cfg.P {
		pr := Pair{P: p, Q: q}
		old, _, ok := inc.f.Get(pr)
		if !ok || old.l >= l {
			continue
		}
		up := scores[p]
		if l < inc.cfg.D {
			up += inc.ubound(q, l)
		}
		inc.f.Set(pr, up, fentry{lower: scores[p], l: l})
	}
}

// Pending returns the number of pairs still held in F.
func (inc *Incremental) Pending() int { return inc.f.Len() }

// Release returns the join state's engine to the caller-owned pool
// (Config.Pool); no-op without one. Call it once no further Next pulls are
// needed — afterwards the state must not be used.
func (inc *Incremental) Release() {
	inc.cfg.releaseEngines(&inc.e, nil)
}
