package join2

import (
	"math"
	"testing"

	"repro/internal/dht"
)

// reachConfig is testConfig switched to Personalized PageRank.
func reachConfig(t testing.TB, seed int64, c float64) Config {
	t.Helper()
	cfg := testConfig(t, seed, 0.2)
	cfg.Params = dht.PPR(c)
	cfg.D = cfg.Params.StepsForEpsilon(1e-7)
	cfg.Measure = dht.Reach
	return cfg
}

// TestReachAllAlgorithmsAgree extends the central equivalence test to the
// reach measure (the paper's §VIII extension): all five 2-way algorithms
// must agree when joining over Personalized PageRank.
func TestReachAllAlgorithmsAgree(t *testing.T) {
	for _, c := range []float64{0.3, 0.6} {
		cfg := reachConfig(t, 31, c)
		ref, err := NewBBJ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.TopK(20)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range allJoiners(t, cfg) {
			got, err := j.TopK(20)
			if err != nil {
				t.Fatalf("%s: %v", j.Name(), err)
			}
			assertSameTopK(t, j.Name()+"/reach", got, want)
		}
	}
}

// TestReachIncrementalMatchesBatch extends the incremental-stream test to
// the reach measure.
func TestReachIncrementalMatchesBatch(t *testing.T) {
	cfg := reachConfig(t, 47, 0.5)
	ref, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TopK(30)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(cfg, BoundY)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	for len(got) < 30 {
		r, ok, err := inc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r)
	}
	assertSameTopK(t, "Incremental/reach", got, want)
}

// TestReachScoresNonNegative: PPR scores are probabilities scaled by 1−c,
// so every score lies in [0, 1).
func TestReachScoresNonNegative(t *testing.T) {
	cfg := reachConfig(t, 3, 0.4)
	j, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.TopK(cfg.MaxPairs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score < 0 || r.Score >= 1 || math.IsNaN(r.Score) {
			t.Fatalf("PPR score out of range: %v", r)
		}
	}
}
