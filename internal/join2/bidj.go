package join2

import (
	"math"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// BoundVariant selects the upper-bound function U⁺ₗ of the B-IDJ framework
// (§VI-C).
type BoundVariant int

const (
	// BoundX uses X⁺ₗ = α·λ^(l+1)/(1−λ) (Lemma 2): graph-independent, O(1),
	// but loose — it assumes a walker could hit q with probability 1 at every
	// remaining step.
	BoundX BoundVariant = iota
	// BoundY uses Y⁺ₗ(P, q) (Theorem 1): per-target reach probabilities make
	// it tighter (Lemma 5: Y⁺ₗ ≤ X⁺ₗ) at the cost of one extra O(d·|E|)
	// precomputation walk.
	BoundY
)

// String names the variant as in the paper.
func (v BoundVariant) String() string {
	if v == BoundY {
		return "Y"
	}
	return "X"
}

// IterStat records one deepening round of B-IDJ for analysis (Figure 10(b)).
type IterStat struct {
	L           int // walk length this round
	AliveBefore int // |Q| candidates entering the round
	Pruned      int // candidates discarded by the bound test
}

// BIDJ is the Backward Iterative Deepening Join (Algorithm 2). Each round
// performs an l-step backward walk per surviving q ∈ Q (l = 1, 2, 4, …),
// maintains the top-k lower bounds B, and prunes q when
// max_p h_l(p,q) + U⁺ₗ < T_k. A final d-step walk scores the survivors
// exactly. Complexity O(|Q|·d·|E|) worst case, far less when pruning bites.
type BIDJ struct {
	cfg     Config
	variant BoundVariant

	// LinearSchedule advances the deepening walk length by +1 per round
	// instead of doubling it. Exists for the schedule ablation bench; the
	// paper (and the default) use l = 1, 2, 4, ….
	LinearSchedule bool

	// Stats describes the most recent TopK run.
	Stats []IterStat

	// record, when non-nil, receives every (pair, lower, upper, l) bound
	// observation; the incremental join uses it to populate its F structure.
	record func(pr Pair, lower, upper float64, l int)
}

// NewBIDJ validates the config and returns the joiner with the given bound
// variant.
func NewBIDJ(cfg Config, variant BoundVariant) (*BIDJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BIDJ{cfg: cfg, variant: variant}, nil
}

// NewBIDJX returns the B-IDJ-X joiner.
func NewBIDJX(cfg Config) (*BIDJ, error) { return NewBIDJ(cfg, BoundX) }

// NewBIDJY returns the B-IDJ-Y joiner.
func NewBIDJY(cfg Config) (*BIDJ, error) { return NewBIDJ(cfg, BoundY) }

// Name implements Joiner.
func (b *BIDJ) Name() string { return "B-IDJ-" + b.variant.String() }

// TopK implements Joiner.
func (b *BIDJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	e, err := b.cfg.engine()
	if err != nil {
		return nil, err
	}
	return b.run(e, k), nil
}

// run executes Algorithm 2. It assumes k is already clamped.
func (b *BIDJ) run(e *dht.Engine, k int) []Result {
	d := b.cfg.D
	b.Stats = b.Stats[:0]

	// U⁺ₗ provider. The Y table is built once over the full Q (its bound only
	// depends on P, q, and l, not on which q's remain alive).
	var ubound func(q graph.NodeID, l int) float64
	switch b.variant {
	case BoundY:
		yt := dht.NewYBoundTable(e, b.cfg.P, b.cfg.Q)
		ubound = yt.Bound
	default:
		ubound = func(_ graph.NodeID, l int) float64 { return b.cfg.Params.XBound(l) }
	}

	alive := make([]graph.NodeID, len(b.cfg.Q))
	copy(alive, b.cfg.Q)
	scores := make([]float64, b.cfg.Graph.NumNodes())
	beta := b.cfg.Params.Beta

	advance := func(l int) int {
		if b.LinearSchedule {
			return l + 1
		}
		return l * 2
	}
	for l := 1; l < d; l = advance(l) {
		lower := pqueue.NewTopK[struct{}](k)
		qUpper := make([]float64, len(alive))
		for qi, q := range alive {
			e.BackWalkKind(b.cfg.Measure, q, l, scores)
			pMax := math.Inf(-1)
			for _, p := range b.cfg.P {
				s := scores[p]
				if s > beta || p == q { // p==q is exact: h(v,v)=0
					lower.Add(struct{}{}, s)
				}
				if s > pMax {
					pMax = s
				}
			}
			up := pMax + ubound(q, l)
			qUpper[qi] = up
			if b.record != nil {
				for _, p := range b.cfg.P {
					b.record(Pair{p, q}, scores[p], scores[p]+ubound(q, l), l)
				}
			}
		}
		st := IterStat{L: l, AliveBefore: len(alive)}
		if tk, full := lower.MinScore(); full {
			kept := alive[:0]
			for qi, q := range alive {
				if qUpper[qi] < tk {
					st.Pruned++
					continue
				}
				kept = append(kept, q)
			}
			alive = kept
		}
		b.Stats = append(b.Stats, st)
	}

	// Final exact round over the survivors.
	top := pqueue.NewTopK[Pair](k)
	for _, q := range alive {
		e.BackWalkKind(b.cfg.Measure, q, d, scores)
		for _, p := range b.cfg.P {
			pr := Pair{p, q}
			top.AddTie(pr, scores[p], pairTie(pr))
			if b.record != nil {
				b.record(pr, scores[p], scores[p], d)
			}
		}
	}
	return collect(top)
}

// PrunedFractionPerIter reports, for the latest TopK run, the cumulative
// fraction of Q discarded after each deepening round — the series plotted in
// Figure 10(b).
func (b *BIDJ) PrunedFractionPerIter() []float64 {
	out := make([]float64, len(b.Stats))
	total := 0
	if len(b.Stats) > 0 {
		total = b.Stats[0].AliveBefore
	}
	cum := 0
	for i, st := range b.Stats {
		cum += st.Pruned
		if total > 0 {
			out[i] = float64(cum) / float64(total)
		}
	}
	return out
}
