package join2

import (
	"math"
	"sync"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// BoundVariant selects the upper-bound function U⁺ₗ of the B-IDJ framework
// (§VI-C).
type BoundVariant int

const (
	// BoundX uses X⁺ₗ = α·λ^(l+1)/(1−λ) (Lemma 2): graph-independent, O(1),
	// but loose — it assumes a walker could hit q with probability 1 at every
	// remaining step.
	BoundX BoundVariant = iota
	// BoundY uses Y⁺ₗ(P, q) (Theorem 1): per-target reach probabilities make
	// it tighter (Lemma 5: Y⁺ₗ ≤ X⁺ₗ) at the cost of one extra O(d·|E|)
	// precomputation walk.
	BoundY
)

// String names the variant as in the paper.
func (v BoundVariant) String() string {
	if v == BoundY {
		return "Y"
	}
	return "X"
}

// IterStat records one deepening round of B-IDJ for analysis (Figure 10(b)).
type IterStat struct {
	L           int // walk length this round
	AliveBefore int // |Q| candidates entering the round
	Pruned      int // candidates discarded by the bound test
}

// BIDJ is the Backward Iterative Deepening Join (Algorithm 2). Each round
// performs an l-step backward walk per surviving q ∈ Q (l = 1, 2, 4, …),
// maintains the top-k lower bounds B, and prunes q when
// max_p h_l(p,q) + U⁺ₗ < T_k. A final d-step walk scores the survivors
// exactly. Complexity O(|Q|·d·|E|) worst case, far less when pruning bites —
// and with the sparse walk kernel the early short-walk rounds cost only the
// frontier edges they actually touch.
//
// The joiner caches its engine and the Y⁺ₗ table across TopK calls (the PJ
// re-join stream calls TopK repeatedly), so a BIDJ is single-goroutine. With
// Config.Workers set, each deepening round spreads its per-target walks over
// an engine pool; the merged bounds, pruning decisions, and final ranking
// are bit-identical to the serial run.
type BIDJ struct {
	cfg     Config
	variant BoundVariant
	e       *dht.Engine
	be      *dht.BatchEngine // batched kernel for deep rounds; lazily built
	yt      *dht.YBoundTable
	pool    *dht.EnginePool

	// LinearSchedule advances the deepening walk length by +1 per round
	// instead of doubling it. Exists for the schedule ablation bench; the
	// paper (and the default) use l = 1, 2, 4, ….
	LinearSchedule bool

	// Stats describes the most recent TopK run.
	Stats []IterStat

	// record, when non-nil, receives every (pair, lower, upper, l) bound
	// observation; the incremental join uses it to populate its F structure.
	// A recording run is always serial.
	record func(pr Pair, lower, upper float64, l int)
}

// NewBIDJ validates the config and returns the joiner with the given bound
// variant.
func NewBIDJ(cfg Config, variant BoundVariant) (*BIDJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BIDJ{cfg: cfg, variant: variant}, nil
}

// NewBIDJX returns the B-IDJ-X joiner.
func NewBIDJX(cfg Config) (*BIDJ, error) { return NewBIDJ(cfg, BoundX) }

// NewBIDJY returns the B-IDJ-Y joiner.
func NewBIDJY(cfg Config) (*BIDJ, error) { return NewBIDJ(cfg, BoundY) }

// Name implements Joiner.
func (b *BIDJ) Name() string { return "B-IDJ-" + b.variant.String() }

// TopK implements Joiner.
func (b *BIDJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if w := b.cfg.workerCount(len(b.cfg.Q)); w > 1 && b.record == nil {
		return b.runParallel(k, w)
	}
	if b.e == nil {
		if b.e, err = b.cfg.engine(); err != nil {
			return nil, err
		}
	}
	return b.run(b.e, k)
}

// Release returns the joiner's cached engines to the caller-owned pool
// (Config.Pool), so a serving layer that constructs joiners per request
// recycles their O(|V|) scratch. No-op without a caller pool. The joiner
// stays usable — engines are re-checked out lazily — but the idiomatic
// pattern is Release after the last TopK. The Y⁺ₗ table is retained: it
// depends only on (P, Q, d) and is the joiner's to keep.
func (b *BIDJ) Release() {
	b.cfg.releaseEngines(&b.e, &b.be)
}

// ubound returns the U⁺ₗ provider, building (and caching) the Y table on
// first use. The table only depends on P, Q, and d — not on which q's remain
// alive — so one build serves every TopK call of the joiner's lifetime.
func (b *BIDJ) ubound(e *dht.Engine) func(q graph.NodeID, l int) float64 {
	if b.variant == BoundY {
		if b.yt == nil {
			b.yt = dht.NewYBoundTable(e, b.cfg.P, b.cfg.Q)
		}
		return b.yt.Bound
	}
	return func(_ graph.NodeID, l int) float64 { return b.cfg.Params.XBound(l) }
}

// advance is the deepening schedule: doubling by default, +1 for the
// ablation.
func (b *BIDJ) advance(l int) int {
	if b.LinearSchedule {
		return l + 1
	}
	return l * 2
}

// forEachScores hands fn the backward score column of every target in qs at
// walk length l, in qs order. Deep rounds run through the batched kernel —
// one CSR traversal per step serves a whole width of targets — while short
// rounds stay on the solo β-prefilled column (see batchMinSteps). Columns
// are valid only within the fn invocation.
func (b *BIDJ) forEachScores(e *dht.Engine, qs []graph.NodeID, l int, fn func(qi int, scores []float64)) {
	if !b.cfg.batchRounds(l) || len(qs) < 2 {
		for qi, q := range qs {
			fn(qi, e.BackWalkScores(b.cfg.Measure, q, l))
		}
		return
	}
	if b.be == nil {
		b.be = b.cfg.batchEngine()
	}
	bw := b.be.W
	for base := 0; base < len(qs); base += bw {
		end := min(base+bw, len(qs))
		cols := b.be.BackWalkScoresBatch(b.cfg.Measure, qs[base:end], l)
		for ci := range cols {
			fn(base+ci, cols[ci])
		}
	}
}

// run executes Algorithm 2 serially. It assumes k is already clamped. The
// cancellation hook is polled once per deepening round, so a budgeted or
// disconnected request stops between rounds instead of walking to d.
func (b *BIDJ) run(e *dht.Engine, k int) ([]Result, error) {
	d := b.cfg.D
	b.Stats = b.Stats[:0]
	ubound := b.ubound(e)

	alive := make([]graph.NodeID, len(b.cfg.Q))
	copy(alive, b.cfg.Q)
	beta := b.cfg.Params.Beta

	lower := pqueue.NewTopK[struct{}](k)
	for l := 1; l < d; l = b.advance(l) {
		if err := b.cfg.canceled(); err != nil {
			return nil, err
		}
		lower.Reset()
		qUpper := make([]float64, len(alive))
		b.forEachScores(e, alive, l, func(qi int, scores []float64) {
			q := alive[qi]
			pMax := math.Inf(-1)
			for _, p := range b.cfg.P {
				s := scores[p]
				if s > beta || p == q { // p==q is exact: h(v,v)=0
					lower.Add(struct{}{}, s)
				}
				if s > pMax {
					pMax = s
				}
			}
			qUpper[qi] = pMax + ubound(q, l)
			if b.record != nil {
				for _, p := range b.cfg.P {
					b.record(Pair{p, q}, scores[p], scores[p]+ubound(q, l), l)
				}
			}
		})
		alive = b.prune(alive, qUpper, lower, l)
	}

	// Final exact round over the survivors.
	if err := b.cfg.canceled(); err != nil {
		return nil, err
	}
	top := pqueue.NewTopK[Pair](k)
	b.forEachScores(e, alive, d, func(qi int, scores []float64) {
		q := alive[qi]
		for _, p := range b.cfg.P {
			pr := Pair{p, q}
			top.AddTie(pr, scores[p], pairTie(pr))
			if b.record != nil {
				b.record(pr, scores[p], scores[p], d)
			}
		}
	})
	return collect(top), nil
}

// prune applies the round's bound test, appends the IterStat, and returns
// the surviving targets (filtered in place).
func (b *BIDJ) prune(alive []graph.NodeID, qUpper []float64, lower *pqueue.TopK[struct{}], l int) []graph.NodeID {
	st := IterStat{L: l, AliveBefore: len(alive)}
	if tk, full := lower.MinScore(); full {
		kept := alive[:0]
		for qi, q := range alive {
			if qUpper[qi] < tk {
				st.Pruned++
				continue
			}
			kept = append(kept, q)
		}
		alive = kept
	}
	b.Stats = append(b.Stats, st)
	return alive
}

// scatterScores fans the backward walks of targets qs at length l over at
// most workers goroutines and calls fn(wi, qi, scores) once per target. fn
// invocations with distinct wi run concurrently; scores columns are valid
// only within the call. Deep rounds check batch engines out of the pool and
// hand each worker whole width-sized chunks — the round spawns one engine
// sweep per chunk instead of one per target — and the worker count is capped
// at the chunk count, so worker count × batch width stay tuned together.
// Short rounds stride targets over solo engines as before. Returns the
// worker count used (the maximum wi is one less). Worker bodies run under
// guard (a panic unwinds the worker's engine checkouts and surfaces as an
// error) and poll the cancellation hook per chunk; the first error wins and
// the remaining workers stop at their next poll.
func (b *BIDJ) scatterScores(pool *dht.EnginePool, qs []graph.NodeID, l, workers int, fn func(wi, qi int, scores []float64)) (int, error) {
	bw := 1
	if b.cfg.batchRounds(l) && len(qs) >= 2 {
		bw = b.cfg.batchWidth()
	}
	w := workers
	if chunks := (len(qs) + bw - 1) / bw; w > chunks {
		w = chunks
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	bail := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			if err := guard(func() {
				if bw > 1 {
					be := b.cfg.checkoutBatch(pool)
					defer pool.PutBatch(be)
					for base := wi * bw; base < len(qs); base += w * bw {
						if err := b.cfg.canceled(); err != nil {
							fail(err)
							return
						}
						if bail() {
							return
						}
						end := min(base+bw, len(qs))
						cols := be.BackWalkScoresBatch(b.cfg.Measure, qs[base:end], l)
						for ci := range cols {
							fn(wi, base+ci, cols[ci])
						}
					}
				} else {
					e := b.cfg.checkout(pool)
					defer pool.Put(e)
					for qi := wi; qi < len(qs); qi += w {
						if err := b.cfg.canceled(); err != nil {
							fail(err)
							return
						}
						if bail() {
							return
						}
						fn(wi, qi, e.BackWalkScores(b.cfg.Measure, qs[qi], l))
					}
				}
			}); err != nil {
				fail(err)
			}
		}(wi)
	}
	wg.Wait()
	return w, firstErr
}

// runParallel is run with each round's per-target walks spread over an
// engine pool. The threshold T_k of a round is the k-th largest of the union
// of the workers' candidate lower bounds — a value independent of insertion
// order — and ties in the final heap are broken by the canonical pair key,
// so the output is bit-identical to the serial run at any worker count and
// any batch width.
func (b *BIDJ) runParallel(k, workers int) ([]Result, error) {
	if b.pool == nil {
		pool, err := b.cfg.enginePool()
		if err != nil {
			return nil, err
		}
		b.pool = pool
	}
	pool := b.pool
	d := b.cfg.D
	b.Stats = b.Stats[:0]

	// The Y table is built once on a pooled engine (one serial O(d·|E|)
	// walk from all of P simultaneously); every worker of every round reads
	// the same table.
	e0 := b.cfg.checkout(pool)
	ubound := b.ubound(e0)
	pool.Put(e0)

	alive := make([]graph.NodeID, len(b.cfg.Q))
	copy(alive, b.cfg.Q)
	beta := b.cfg.Params.Beta

	for l := 1; l < d; l = b.advance(l) {
		if err := b.cfg.canceled(); err != nil {
			return nil, err
		}
		qUpper := make([]float64, len(alive))
		lowers := make([]*pqueue.TopK[struct{}], workers)
		_, err := b.scatterScores(pool, alive, l, workers, func(wi, qi int, scores []float64) {
			lo := lowers[wi]
			if lo == nil {
				lo = pqueue.NewTopK[struct{}](k)
				lowers[wi] = lo
			}
			q := alive[qi]
			pMax := math.Inf(-1)
			for _, p := range b.cfg.P {
				s := scores[p]
				if s > beta || p == q {
					lo.Add(struct{}{}, s)
				}
				if s > pMax {
					pMax = s
				}
			}
			qUpper[qi] = pMax + ubound(q, l)
		})
		if err != nil {
			return nil, err
		}
		lower := pqueue.NewTopK[struct{}](k)
		for _, lo := range lowers {
			if lo == nil {
				continue
			}
			_, scores := lo.Sorted()
			for _, s := range scores {
				lower.Add(struct{}{}, s)
			}
		}
		alive = b.prune(alive, qUpper, lower, l)
	}

	// Final exact round over the survivors, merged like ParallelBBJ.
	top := pqueue.NewTopK[Pair](k)
	tops := make([]*pqueue.TopK[Pair], workers)
	_, err := b.scatterScores(pool, alive, d, workers, func(wi, qi int, scores []float64) {
		tp := tops[wi]
		if tp == nil {
			tp = pqueue.NewTopK[Pair](k)
			tops[wi] = tp
		}
		q := alive[qi]
		for _, p := range b.cfg.P {
			pr := Pair{p, q}
			tp.AddTie(pr, scores[p], pairTie(pr))
		}
	})
	if err != nil {
		return nil, err
	}
	for _, tp := range tops {
		if tp == nil {
			continue
		}
		pairs, scores := tp.Sorted()
		for i := range pairs {
			top.AddTie(pairs[i], scores[i], pairTie(pairs[i]))
		}
	}
	return collect(top), nil
}

// PrunedFractionPerIter reports, for the latest TopK run, the cumulative
// fraction of Q discarded after each deepening round — the series plotted in
// Figure 10(b).
func (b *BIDJ) PrunedFractionPerIter() []float64 {
	out := make([]float64, len(b.Stats))
	total := 0
	if len(b.Stats) > 0 {
		total = b.Stats[0].AliveBefore
	}
	cum := 0
	for i, st := range b.Stats {
		cum += st.Pruned
		if total > 0 {
			out[i] = float64(cum) / float64(total)
		}
	}
	return out
}
