package join2

import (
	"testing"

	"repro/internal/dht"
)

// TestParallelBIDJMatchesSerial: the worker-pool deepening rounds must be
// invisible in the results — identical ranking (including tie order) and
// identical per-round pruning statistics to the serial B-IDJ.
func TestParallelBIDJMatchesSerial(t *testing.T) {
	for _, variant := range []BoundVariant{BoundX, BoundY} {
		cfg := testConfig(t, 61, 0.5)
		serial, err := NewBIDJ(cfg, variant)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.TopK(25)
		if err != nil {
			t.Fatal(err)
		}
		wantStats := append([]IterStat(nil), serial.Stats...)
		for _, workers := range []int{2, 4, -1} {
			pcfg := cfg
			pcfg.Workers = workers
			par, err := NewBIDJ(pcfg, variant)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.TopK(25)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("variant %v workers=%d: %d results, want %d", variant, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("variant %v workers=%d rank %d: %v vs %v", variant, workers, i, got[i], want[i])
				}
			}
			if len(par.Stats) != len(wantStats) {
				t.Fatalf("variant %v workers=%d: %d rounds, want %d", variant, workers, len(par.Stats), len(wantStats))
			}
			for i := range wantStats {
				if par.Stats[i] != wantStats[i] {
					t.Fatalf("variant %v workers=%d round %d: %+v vs %+v", variant, workers, i, par.Stats[i], wantStats[i])
				}
			}
		}
	}
}

// TestParallelBIDJReachMeasure covers the PPR/reach path under workers.
func TestParallelBIDJReachMeasure(t *testing.T) {
	cfg := testConfig(t, 19, 0.2)
	cfg.Params = dht.PPR(0.5)
	cfg.Measure = dht.Reach
	serial, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopK(15)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	par, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.TopK(15)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestBBJWorkersConfig: Config.Workers routes B-BJ through the pool with
// identical results, and repeated TopK calls on one joiner stay stable.
func TestBBJWorkersConfig(t *testing.T) {
	cfg := testConfig(t, 23, 0.3)
	serial, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopK(20)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := par.TopK(20)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d rank %d: %v vs %v", rep, i, got[i], want[i])
			}
		}
	}
}

// TestJoinerCountersAggregate: a shared Counters sink must see the walk work
// of both serial and parallel joins.
func TestJoinerCountersAggregate(t *testing.T) {
	cfg := testConfig(t, 29, 0.4)
	var ctrs dht.Counters
	cfg.Counters = &ctrs
	j, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.TopK(10); err != nil {
		t.Fatal(err)
	}
	serialSnap := ctrs.Snapshot()
	if serialSnap.Walks == 0 || serialSnap.EdgeSweeps+serialSnap.FrontierEdges == 0 {
		t.Fatalf("serial counters empty: %+v", serialSnap)
	}
	ctrs.Reset()
	cfg.Workers = 3
	jp, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jp.TopK(10); err != nil {
		t.Fatal(err)
	}
	parSnap := ctrs.Snapshot()
	if parSnap.Walks != serialSnap.Walks {
		t.Fatalf("parallel walk count %d != serial %d", parSnap.Walks, serialSnap.Walks)
	}
}

// TestRepeatedTopKStable: cached engines and Y tables across TopK calls must
// not change results — the PJ re-join stream depends on the top-m being a
// prefix of the top-(m+1).
func TestRepeatedTopKStable(t *testing.T) {
	cfg := testConfig(t, 31, 0.5)
	j, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := j.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := j.TopK(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(bigger) < len(first) {
		t.Fatalf("topk shrank: %d then %d", len(first), len(bigger))
	}
	for i := range first {
		if bigger[i] != first[i] {
			t.Fatalf("prefix violated at %d: %v vs %v", i, bigger[i], first[i])
		}
	}
	again, err := j.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if again[i] != first[i] {
			t.Fatalf("repeat drifted at %d: %v vs %v", i, again[i], first[i])
		}
	}
}
