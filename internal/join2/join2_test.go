package join2

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dht"
	"repro/internal/graph"
)

// testConfig builds a community graph with two planted node sets.
func testConfig(t testing.TB, seed int64, lambda float64) Config {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{18, 18, 14}, PIn: 0.25, POut: 0.08, Seed: seed, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := dht.DHTLambda(lambda)
	return Config{
		Graph:  g,
		Params: p,
		D:      8,
		P:      sets[0].Nodes(),
		Q:      sets[1].Nodes(),
	}
}

// allJoiners instantiates every 2-way algorithm over cfg.
func allJoiners(t testing.TB, cfg Config) []Joiner {
	t.Helper()
	fbj, err := NewFBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fidj, err := NewFIDJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bbj, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bx, err := NewBIDJX(cfg)
	if err != nil {
		t.Fatal(err)
	}
	by, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []Joiner{fbj, fidj, bbj, bx, by}
}

// assertSameTopK verifies two result lists agree as ranked score sequences
// and as pair sets up to equal-score permutations.
func assertSameTopK(t *testing.T, name string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	const tol = 1e-9
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > tol {
			t.Fatalf("%s: rank %d score %v, want %v", name, i, got[i].Score, want[i].Score)
		}
	}
	// Pair sets must agree after grouping by (approximately) equal scores.
	gotPairs := map[Pair]float64{}
	wantPairs := map[Pair]float64{}
	for i := range got {
		gotPairs[got[i].Pair] = got[i].Score
		wantPairs[want[i].Pair] = want[i].Score
	}
	for pr, s := range gotPairs {
		ws, ok := wantPairs[pr]
		if !ok {
			// Allowed only if some other pair ties at this score (boundary tie).
			tied := false
			for _, w := range wantPairs {
				if math.Abs(w-s) <= tol {
					tied = true
					break
				}
			}
			if !tied {
				t.Fatalf("%s: pair %v (score %v) missing from reference", name, pr, s)
			}
			continue
		}
		if math.Abs(ws-s) > tol {
			t.Fatalf("%s: pair %v score %v vs reference %v", name, pr, s, ws)
		}
	}
}

// TestAllAlgorithmsAgree is the central 2-way equivalence test: all five
// algorithms must produce identical top-k rankings, for both DHT variants.
func TestAllAlgorithmsAgree(t *testing.T) {
	for _, lambda := range []float64{0.2, 0.6} {
		cfg := testConfig(t, 77, lambda)
		ref, err := NewBBJ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.TopK(25)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range allJoiners(t, cfg) {
			got, err := j.TopK(25)
			if err != nil {
				t.Fatalf("%s: %v", j.Name(), err)
			}
			assertSameTopK(t, j.Name(), got, want)
		}
	}
}

func TestAllAlgorithmsAgreeDHTE(t *testing.T) {
	cfg := testConfig(t, 5, 0.2)
	cfg.Params = dht.DHTE()
	cfg.D = cfg.Params.StepsForEpsilon(1e-6)
	ref, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TopK(15)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range allJoiners(t, cfg) {
		got, err := j.TopK(15)
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		assertSameTopK(t, j.Name(), got, want)
	}
}

func TestResultsSortedDescending(t *testing.T) {
	cfg := testConfig(t, 13, 0.4)
	for _, j := range allJoiners(t, cfg) {
		res, err := j.TopK(30)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(res, func(i, k int) bool { return res[i].Score > res[k].Score }) &&
			!sort.SliceIsSorted(res, func(i, k int) bool { return res[i].Score >= res[k].Score }) {
			t.Fatalf("%s: results not sorted descending", j.Name())
		}
	}
}

func TestKLargerThanSpace(t *testing.T) {
	cfg := testConfig(t, 3, 0.2)
	cfg.P = cfg.P[:3]
	cfg.Q = cfg.Q[:4]
	for _, j := range allJoiners(t, cfg) {
		res, err := j.TopK(1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 12 {
			t.Fatalf("%s: %d results, want 12 (full space)", j.Name(), len(res))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, 1, 0.2)
	cases := []struct {
		name string
		mut  func(c *Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"bad lambda", func(c *Config) { c.Params.Lambda = 1.5 }},
		{"zero d", func(c *Config) { c.D = 0 }},
		{"empty P", func(c *Config) { c.P = nil }},
		{"empty Q", func(c *Config) { c.Q = nil }},
		{"range P", func(c *Config) { c.P = []graph.NodeID{9999} }},
		{"range Q", func(c *Config) { c.Q = []graph.NodeID{-1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.mut(&cfg)
			if cfg.Validate() == nil {
				t.Fatal("invalid config accepted")
			}
			if _, err := NewBBJ(cfg); err == nil {
				t.Fatal("joiner constructed from invalid config")
			}
		})
	}
	for _, j := range allJoiners(t, good) {
		if _, err := j.TopK(0); err == nil {
			t.Fatalf("%s: k=0 accepted", j.Name())
		}
		if _, err := j.TopK(-3); err == nil {
			t.Fatalf("%s: negative k accepted", j.Name())
		}
	}
}

func TestOverlappingSetsSelfPairs(t *testing.T) {
	// P and Q share nodes; self pairs must carry score 0 in every algorithm.
	cfg := testConfig(t, 8, 0.2)
	cfg.Q = cfg.P
	ref, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range allJoiners(t, cfg) {
		got, err := j.TopK(10)
		if err != nil {
			t.Fatal(err)
		}
		assertSameTopK(t, j.Name(), got, want)
	}
}

func TestBIDJPruningStats(t *testing.T) {
	cfg := testConfig(t, 21, 0.2)
	by, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := by.TopK(5); err != nil {
		t.Fatal(err)
	}
	if len(by.Stats) == 0 {
		t.Fatal("no iteration stats recorded")
	}
	fr := by.PrunedFractionPerIter()
	for i := 1; i < len(fr); i++ {
		if fr[i] < fr[i-1] {
			t.Fatalf("cumulative pruned fraction decreased: %v", fr)
		}
	}
	if fr[len(fr)-1] < 0 || fr[len(fr)-1] > 1 {
		t.Fatalf("pruned fraction out of range: %v", fr)
	}
}

// TestBIDJYPrunesAtLeastAsMuchAsX verifies Lemma 5's practical consequence.
func TestBIDJYPrunesAtLeastAsMuchAsX(t *testing.T) {
	cfg := testConfig(t, 55, 0.7)
	bx, _ := NewBIDJX(cfg)
	by, _ := NewBIDJY(cfg)
	if _, err := bx.TopK(5); err != nil {
		t.Fatal(err)
	}
	if _, err := by.TopK(5); err != nil {
		t.Fatal(err)
	}
	totalX, totalY := 0, 0
	for _, s := range bx.Stats {
		totalX += s.Pruned
	}
	for _, s := range by.Stats {
		totalY += s.Pruned
	}
	if totalY < totalX {
		t.Fatalf("Y pruned %d < X pruned %d", totalY, totalX)
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	cfg := testConfig(t, 99, 0.3)
	ref, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ref.TopK(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []BoundVariant{BoundX, BoundY} {
		inc, err := NewIncremental(cfg, variant)
		if err != nil {
			t.Fatal(err)
		}
		first, err := inc.Run(10)
		if err != nil {
			t.Fatal(err)
		}
		got := append([]Result(nil), first...)
		for len(got) < 40 {
			r, ok, err := inc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, r)
		}
		assertSameTopK(t, "Incremental-"+variant.String(), got, full)
	}
}

func TestIncrementalExhaustsSpace(t *testing.T) {
	cfg := testConfig(t, 2, 0.2)
	cfg.P = cfg.P[:4]
	cfg.Q = cfg.Q[:5]
	inc, err := NewIncremental(cfg, BoundY)
	if err != nil {
		t.Fatal(err)
	}
	first, err := inc.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	count := len(first)
	prev := math.Inf(1)
	for _, r := range first {
		if r.Score > prev+1e-9 {
			t.Fatal("initial results not descending")
		}
		prev = r.Score
	}
	for {
		r, ok, err := inc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Score > prev+1e-9 {
			t.Fatalf("Next returned score %v above previous %v", r.Score, prev)
		}
		prev = r.Score
		count++
	}
	if count != 20 {
		t.Fatalf("drained %d pairs, want 20", count)
	}
	// Further calls keep returning ok=false without error.
	if _, ok, err := inc.Next(); ok || err != nil {
		t.Fatalf("exhausted Next = %v, %v", ok, err)
	}
}

func TestIncrementalMisuse(t *testing.T) {
	cfg := testConfig(t, 2, 0.2)
	inc, err := NewIncremental(cfg, BoundY)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := inc.Next(); err == nil {
		t.Fatal("Next before Run accepted")
	}
	if _, err := inc.Run(5); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Run(5); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestIncrementalStreamProperty: for random small graphs, the incremental
// stream must equal the batch ranking, pair for pair, under score tolerance.
func TestIncrementalStreamProperty(t *testing.T) {
	f := func(seed int64, rawLambda uint8, rawM uint8) bool {
		g, err := graph.GenerateER(30, 0.12, seed)
		if err != nil {
			return false
		}
		lambda := 0.15 + float64(rawLambda%7)/10
		cfg := Config{
			Graph:  g,
			Params: dht.DHTLambda(lambda),
			D:      8,
			P:      []graph.NodeID{0, 1, 2, 3, 4, 5},
			Q:      []graph.NodeID{10, 11, 12, 13, 14},
		}
		ref, err := NewBBJ(cfg)
		if err != nil {
			return false
		}
		want, err := ref.TopK(30)
		if err != nil {
			return false
		}
		inc, err := NewIncremental(cfg, BoundY)
		if err != nil {
			return false
		}
		m := 1 + int(rawM)%8
		got, err := inc.Run(m)
		if err != nil {
			return false
		}
		for len(got) < len(want) {
			r, ok, err := inc.Next()
			if err != nil || !ok {
				return false
			}
			got = append(got, r)
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFIDJPruneStats(t *testing.T) {
	cfg := testConfig(t, 41, 0.2)
	f, err := NewFIDJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.TopK(5); err != nil {
		t.Fatal(err)
	}
	if len(f.PrunedPerRound) == 0 {
		t.Fatal("no prune stats")
	}
}

// TestLinearScheduleSameResults: the ablation knob must not change the
// answer, only the work profile.
func TestLinearScheduleSameResults(t *testing.T) {
	cfg := testConfig(t, 71, 0.4)
	normal, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := normal.TopK(15)
	if err != nil {
		t.Fatal(err)
	}
	linear, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	linear.LinearSchedule = true
	got, err := linear.TopK(15)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTopK(t, "linear-schedule", got, want)
	if len(linear.Stats) <= len(normal.Stats) {
		t.Fatalf("linear schedule ran %d rounds, doubling %d; expected more", len(linear.Stats), len(normal.Stats))
	}
}

func TestBoundVariantString(t *testing.T) {
	if BoundX.String() != "X" || BoundY.String() != "Y" {
		t.Fatal("variant names wrong")
	}
	for _, kind := range allJoiners(t, testConfig(t, 1, 0.2)) {
		if kind.Name() == "" {
			t.Fatal("empty joiner name")
		}
	}
}
