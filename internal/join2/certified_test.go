package join2

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/plan"
)

// assertIdenticalRanking is the certification property: the two result
// lists must agree with == — same pairs, same order, bit-identical scores.
// No tolerance: the certified fast path re-verifies through the
// bit-identical kernel, so anything short of exact equality is a bug in the
// certification protocol (a band cut too tight, a score that skipped
// re-verification).
func assertIdenticalRanking(t *testing.T, name string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Pair != want[i].Pair || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d = (%v, %v), want (%v, %v)",
				name, i, got[i].Pair, got[i].Score, want[i].Pair, want[i].Score)
		}
	}
}

// bidjyReference computes the forced bit-identical reference ranking.
func bidjyReference(t *testing.T, cfg Config, k int) []Result {
	t.Helper()
	by, err := NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := by.TopK(k)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestCertifiedIdenticalToBIDJY is the certification property suite: the
// certified fast-path top-k must be ==-identical to forced bit-identical
// B-IDJ-Y across seeds, graph shapes, k (including the full ranking
// k=|P|·|Q|), and fast-kernel widths {8, 16, 32}.
func TestCertifiedIdenticalToBIDJY(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		for _, lambda := range []float64{0.2, 0.5} {
			cfg := testConfig(t, seed, lambda)
			full := cfg.MaxPairs()
			for _, k := range []int{1, 5, 37, full} {
				want := bidjyReference(t, cfg, k)
				for _, w := range []int{8, 16, 32} {
					pl, err := dht.NewEnginePool(cfg.Graph, cfg.Params, cfg.D)
					if err != nil {
						t.Fatal(err)
					}
					pl.FastWidth = w
					fcfg := cfg
					fcfg.Pool = pl
					cj, err := NewCertifiedBBJ(fcfg)
					if err != nil {
						t.Fatal(err)
					}
					got, err := cj.TopK(k)
					if err != nil {
						t.Fatal(err)
					}
					name := "B-BJ-fast"
					assertIdenticalRanking(t, name, got, want)
					// Repeat on the warm joiner: memo- and scratch-reuse
					// paths must yield the same ranking.
					again, err := cj.TopK(k)
					if err != nil {
						t.Fatal(err)
					}
					assertIdenticalRanking(t, name+" (warm)", again, want)
					cj.Release()
					if n := pl.Outstanding(); n != 0 {
						t.Fatalf("width %d: %d engines leaked", w, n)
					}
				}
			}
		}
	}
}

// TestCertifiedForwardVariant pins the F-BJ-fast shape to the same
// reference on one mid-sized configuration.
func TestCertifiedForwardVariant(t *testing.T) {
	cfg := testConfig(t, 3, 0.2)
	for _, k := range []int{7, cfg.MaxPairs()} {
		want := bidjyReference(t, cfg, k)
		cj, err := NewCertifiedFBJ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cj.TopK(k)
		if err != nil {
			t.Fatal(err)
		}
		assertIdenticalRanking(t, "F-BJ-fast", got, want)
	}
}

// nearTieConfig builds the adversarial near-tie workload: a layered graph
// whose automorphisms give every (p, q) pair exactly the same score, so the
// certification cut t̂ − 2ε keeps *every* pair in the band and the joiner is
// forced through the re-verify fallback for all of them.
func nearTieConfig(t *testing.T) Config {
	t.Helper()
	const nP, nQ = 12, 12
	b := graph.NewBuilder(nP+nQ, true)
	for i := 0; i < nP; i++ {
		for j := 0; j < nQ; j++ {
			// Complete bipartite P→Q with unit weights: every p has the
			// identical out-distribution, every q the identical
			// in-structure, so h(p, q) is one constant over all pairs.
			b.AddEdge(graph.NodeID(i), graph.NodeID(nP+j), 1)
		}
	}
	g := b.Build()
	ps := make([]graph.NodeID, nP)
	qs := make([]graph.NodeID, nQ)
	for i := range ps {
		ps[i] = graph.NodeID(i)
	}
	for j := range qs {
		qs[j] = graph.NodeID(nP + j)
	}
	return Config{Graph: g, Params: dht.DHTLambda(0.2), D: 8, P: ps, Q: qs}
}

// TestCertifiedNearTieFallback forces the ε-band re-verify path: with every
// pair tied, the band is the whole candidate space, FallbackPairs counts
// the band excess over k, and the emitted ranking must still be exactly the
// canonical-tie reference.
func TestCertifiedNearTieFallback(t *testing.T) {
	cfg := nearTieConfig(t)
	var ctrs dht.Counters
	cfg.Counters = &ctrs
	const k = 10
	want := bidjyReference(t, cfg, k)
	cj, err := NewCertifiedBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cj.TopK(k)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRanking(t, "near-tie B-BJ-fast", got, want)
	snap := ctrs.Snapshot()
	if snap.KernelPicks != 1 {
		t.Fatalf("KernelPicks = %d, want 1", snap.KernelPicks)
	}
	full := int64(cfg.MaxPairs())
	if snap.Reverified != full {
		t.Fatalf("Reverified = %d, want the whole tied space %d", snap.Reverified, full)
	}
	if snap.FallbackPairs != full-k {
		t.Fatalf("FallbackPairs = %d, want %d", snap.FallbackPairs, full-k)
	}
}

// TestCertifiedPlannerPick covers the planner integration: at the default
// Exact accuracy the certified executors are priced but excluded; at Fast
// accuracy the cost model picks the certified backward join for a
// walk-dominated top-k workload, and the stream it opens is prefix-identical
// to the forced bit-identical reference.
func TestCertifiedPlannerPick(t *testing.T) {
	cfg := testConfig(t, 5, 0.2)
	// Plan over the walk-dominated bench shape (|P| = |Q| = 100, small k):
	// the fast pass amortizes one fast column per target while the exact
	// rescore pays only ~k walks, which is where the certified path's cost
	// model wins. (The tiny property-test graph itself plans to B-IDJ-Y at
	// either accuracy — deepening is cheap there — so the pick is asserted
	// on the representative workload and the stream is then driven on the
	// small graph, where correctness, not cost, is under test.)
	w := plan.Workload{
		Stats: graph.Stats{Nodes: 2400, Arcs: 38000, MeanOutDeg: 15.8},
		P:     100, Q: 100, K: 20, D: cfg.D,
	}
	exact, err := plan.Decide(plan.TwoWay, w, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exact.Estimates {
		if e.Certified && !e.Excluded {
			t.Fatalf("certified executor %s eligible at exact accuracy", e.Algorithm)
		}
		if e.Algorithm == exact.Algorithm && e.Certified {
			t.Fatalf("exact-accuracy plan picked certified %s", exact.Algorithm)
		}
	}
	w.Accuracy = plan.Fast
	fast, err := plan.Decide(plan.TwoWay, w, "")
	if err != nil {
		t.Fatal(err)
	}
	if fast.Algorithm != "B-BJ-fast" {
		t.Fatalf("fast-accuracy pick = %s, want B-BJ-fast", fast.Algorithm)
	}

	// The planner-picked fast stream must drain to the reference prefix.
	want := bidjyReference(t, cfg, 20)
	st, err := NewNamedStream(fast.Algorithm, cfg, StreamSpec{Initial: 8}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	got, err := Drain(20, st.Next)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRanking(t, "planned B-BJ-fast stream", got, want)
}
