package join2

import (
	"repro/internal/dht"
	"repro/internal/pqueue"
)

// FBJ is the Forward Basic Join (§V-B): it evaluates h_d(p, q) for every pair
// with a per-pair forward absorbing walk and keeps the k best. Complexity
// O(|P|·|Q|·d·|E|) — the baseline every other algorithm is measured against.
// The joiner reuses one engine across TopK calls, so it is single-goroutine.
type FBJ struct {
	cfg Config
	e   *dht.Engine
}

// NewFBJ validates the config and returns the joiner.
func NewFBJ(cfg Config) (*FBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FBJ{cfg: cfg}, nil
}

// Name implements Joiner.
func (f *FBJ) Name() string { return "F-BJ" }

// TopK implements Joiner.
func (f *FBJ) TopK(k int) ([]Result, error) {
	k, err := f.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if f.e == nil {
		if f.e, err = f.cfg.engine(); err != nil {
			return nil, err
		}
	}
	e := f.e
	top := pqueue.NewTopK[Pair](k)
	for _, p := range f.cfg.P {
		for _, q := range f.cfg.Q {
			pr := Pair{p, q}
			top.AddTie(pr, e.ForwardScoreKind(f.cfg.Measure, p, q, f.cfg.D), pairTie(pr))
		}
	}
	return collect(top), nil
}

// AllPairs evaluates every pair and returns the full descending ranking. The
// AP multi-way algorithm uses this to materialize its per-edge lists.
func (f *FBJ) AllPairs() ([]Result, error) {
	return f.TopK(f.cfg.MaxPairs())
}

// collect drains a TopK into the Result slice ordered by descending score.
func collect(top *pqueue.TopK[Pair]) []Result {
	pairs, scores := top.Sorted()
	out := make([]Result, len(pairs))
	for i := range pairs {
		out[i] = Result{Pair: pairs[i], Score: scores[i]}
	}
	return out
}
