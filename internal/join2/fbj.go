package join2

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// FBJ is the Forward Basic Join (§V-B): it evaluates h_d(p, q) for every pair
// with a per-pair forward absorbing walk and keeps the k best. Complexity
// O(|P|·|Q|·d·|E|) — the baseline every other algorithm is measured against.
// The per-pair walks run through the batched kernel, Config.BatchWidth pair
// columns per CSR traversal, which amortizes the dominant full-depth sweeps
// without changing a bit of any score. The joiner reuses its engines across
// TopK calls, so it is single-goroutine.
type FBJ struct {
	cfg Config
	e   *dht.Engine
	be  *dht.BatchEngine
}

// NewFBJ validates the config and returns the joiner.
func NewFBJ(cfg Config) (*FBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FBJ{cfg: cfg}, nil
}

// Name implements Joiner.
func (f *FBJ) Name() string { return "F-BJ" }

// Release returns the joiner's cached engines to the caller-owned pool
// (Config.Pool); no-op without one.
func (f *FBJ) Release() {
	f.cfg.releaseEngines(&f.e, &f.be)
}

// TopK implements Joiner.
func (f *FBJ) TopK(k int) ([]Result, error) {
	k, err := f.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	top := pqueue.NewTopK[Pair](k)
	d := f.cfg.D
	if f.cfg.batchRounds(d) && f.cfg.MaxPairs() >= 2 {
		if f.be == nil {
			f.be = f.cfg.batchEngine()
		}
		bw := f.be.W
		ps := make([]graph.NodeID, 0, bw)
		qs := make([]graph.NodeID, 0, bw)
		flush := func() error {
			if len(ps) == 0 {
				return nil
			}
			// One batched full-depth sweep per chunk — F-BJ's walk round and
			// its cancellation poll point.
			if err := f.cfg.canceled(); err != nil {
				return err
			}
			rows := f.be.ForwardProbsBatch(f.cfg.Measure, ps, qs, d)
			for c := range ps {
				pr := Pair{ps[c], qs[c]}
				s := f.cfg.Params.Score(rows[c])
				if f.cfg.Measure == dht.FirstHit && pr.P == pr.Q {
					s = 0 // h(v,v) = 0 by definition, as in ForwardScoreAt
				}
				top.AddTie(pr, s, pairTie(pr))
			}
			ps, qs = ps[:0], qs[:0]
			return nil
		}
		for _, p := range f.cfg.P {
			for _, q := range f.cfg.Q {
				ps = append(ps, p)
				qs = append(qs, q)
				if len(ps) == bw {
					if err := flush(); err != nil {
						return nil, err
					}
				}
			}
		}
		if err := flush(); err != nil {
			return nil, err
		}
		return collect(top), nil
	}
	if f.e == nil {
		if f.e, err = f.cfg.engine(); err != nil {
			return nil, err
		}
	}
	e := f.e
	for _, p := range f.cfg.P {
		for _, q := range f.cfg.Q {
			if err := f.cfg.canceled(); err != nil {
				return nil, err
			}
			pr := Pair{p, q}
			top.AddTie(pr, e.ForwardScoreKind(f.cfg.Measure, p, q, f.cfg.D), pairTie(pr))
		}
	}
	return collect(top), nil
}

// AllPairs evaluates every pair and returns the full descending ranking. The
// AP multi-way algorithm uses this to materialize its per-edge lists.
func (f *FBJ) AllPairs() ([]Result, error) {
	return f.TopK(f.cfg.MaxPairs())
}

// collect drains a TopK into the Result slice ordered by descending score.
func collect(top *pqueue.TopK[Pair]) []Result {
	pairs, scores := top.Sorted()
	out := make([]Result, len(pairs))
	for i := range pairs {
		out[i] = Result{Pair: pairs[i], Score: scores[i]}
	}
	return out
}
