package join2

// This file inverts the joiners' control flow: instead of a run-to-k loop,
// a Stream hands out the ranking one pair at a time, in exactly the order a
// one-shot TopK would return it. Two strategies exist, mirroring the PJ /
// PJ-i split of §VI-D:
//
//   - NewIncrementalStream wraps the B-IDJ bound state (Incremental): the
//     initial top-m join populates the F structure, after which each pull
//     refines only the pairs contending for the next rank — the paper's
//     incremental deepening, now exposed as a resumable step function.
//
//   - NewRejoinStream wraps any Joiner by re-running it with a growing
//     budget whenever the drained prefix is exhausted. The canonical pair
//     tie key guarantees every top-m selection is a prefix of the
//     top-(m+1) selection, which is what makes the re-join transparent.
//
// Both satisfy the prefix invariant the facade's streaming API is built on:
// the first m results of a stream are bit-identical (same pairs, same
// float64 scores, same order) to the one-shot top-m of the same config.

// Stream pulls the rank-ordered pairs of a 2-way join one at a time.
// Streams are single-goroutine, like the joiners and engines they wrap.
type Stream interface {
	// Next returns the next-best pair with its exact truncated score;
	// ok is false once the candidate space |P|·|Q| is exhausted.
	Next() (Result, bool, error)
	// Release returns every pooled engine the stream holds (Config.Pool);
	// it is idempotent, and a no-op without a caller pool. Callers that
	// stop early MUST call Release, or the pool leaks checked-out engines.
	Release()
}

// Primer is implemented by streams whose initial batch can be computed
// eagerly, before the first Next. The n-way operators prime their per-edge
// streams concurrently (the initial top-m joins dominate edge cost and are
// independent across edges); callers that skip Prime simply pay the same
// work on the first Next.
type Primer interface {
	// Prime runs the stream's initial batch. Calling it more than once, or
	// after Next, is a no-op.
	Prime() error
}

// StreamSpec tunes a stream constructor.
type StreamSpec struct {
	// Initial is the size of the first batch: the top-m join run before the
	// stream switches to per-pull production. Values below 1 select 1.
	// Larger values front-load work (better throughput when the caller is
	// known to want many results); smaller values minimize time to first
	// result.
	Initial int

	// Grow picks the next re-join budget from the current one for
	// NewRejoinStream: nil selects the +1 schedule of the paper's PJ
	// ("simply running a top-(m+1) join"). OpenStream overrides nil with a
	// doubling schedule, which amortizes re-joins to O(log) of the drained
	// length. Ignored by NewIncrementalStream.
	Grow func(current int) int

	// Refetches, when non-nil, is incremented once per pull that had to
	// compute past the initial batch — the n-way RunStats counter.
	Refetches *int64
}

// initial resolves the first-batch budget.
func (s *StreamSpec) initial() int {
	if s.Initial < 1 {
		return 1
	}
	return s.Initial
}

// NewIncrementalStream opens a stream over cfg backed by the B-IDJ bound
// state: the paper's PJ-i production path. The initial batch runs B-IDJ with
// the given bound variant while recording every bound observation; pulls
// past it refine only contending pairs (§VI-D). The engine is checked out at
// open time and held until Release.
func NewIncrementalStream(cfg Config, variant BoundVariant, spec StreamSpec) (Stream, error) {
	inc, err := NewIncremental(cfg, variant)
	if err != nil {
		return nil, err
	}
	return &incStream{inc: inc, initial: spec.initial(), refetches: spec.Refetches}, nil
}

// incStream adapts Incremental's Run/Next pair to the Stream interface.
type incStream struct {
	inc       *Incremental
	initial   int
	list      []Result
	pos       int
	started   bool
	refetches *int64
}

func (s *incStream) Prime() error {
	if s.started {
		return nil
	}
	s.started = true
	list, err := s.inc.Run(s.initial)
	if err != nil {
		return err
	}
	s.list = list
	return nil
}

func (s *incStream) Next() (Result, bool, error) {
	if err := s.Prime(); err != nil {
		return Result{}, false, err
	}
	if s.pos < len(s.list) {
		r := s.list[s.pos]
		s.pos++
		return r, true, nil
	}
	if s.refetches != nil {
		*s.refetches++
	}
	return s.inc.Next()
}

func (s *incStream) Release() { s.inc.Release() }

// NewRejoinStream opens a stream over any joiner by re-running TopK with a
// growing budget: the PJ production path ("simply running a top-(m+1)
// join"), generalized with a pluggable growth schedule. Correctness rests on
// the prefix invariant of the canonical tie key: re-running top-(m') for
// m' > m reproduces the first m results bit-identically, so the stream only
// ever exposes new suffix entries.
func NewRejoinStream(j Joiner, spec StreamSpec) (Stream, error) {
	mp := 0
	if b, ok := j.(interface{ MaxPairs() int }); ok {
		mp = b.MaxPairs()
	}
	grow := spec.Grow
	if grow == nil {
		grow = func(n int) int { return n + 1 }
	}
	return &rejoinStream{j: j, maxPairs: mp, budget: spec.initial(), grow: grow, refetches: spec.Refetches}, nil
}

// growDouble is OpenStream's budget schedule: each re-join doubles the
// drained length, so draining r results costs O(log r) re-joins.
func growDouble(n int) int {
	if n < 1 {
		return 1
	}
	return 2 * n
}

// rejoinStream re-runs a joiner with a growing budget.
type rejoinStream struct {
	j         Joiner
	maxPairs  int
	budget    int
	grow      func(int) int
	list      []Result
	pos       int
	started   bool
	refetches *int64
}

func (s *rejoinStream) Prime() error {
	if s.started {
		return nil
	}
	s.started = true
	k := s.budget
	if s.maxPairs > 0 && k > s.maxPairs {
		k = s.maxPairs
	}
	list, err := s.j.TopK(k)
	if err != nil {
		return err
	}
	s.list = list
	return nil
}

func (s *rejoinStream) Next() (Result, bool, error) {
	if err := s.Prime(); err != nil {
		return Result{}, false, err
	}
	if s.pos < len(s.list) {
		r := s.list[s.pos]
		s.pos++
		return r, true, nil
	}
	if s.maxPairs > 0 && len(s.list) >= s.maxPairs {
		return Result{}, false, nil
	}
	// The drained prefix is spent; re-join with a larger budget. A TopK that
	// comes back no longer than the prefix means the space is exhausted
	// (fewer than k results exist).
	next := s.grow(len(s.list))
	if next <= len(s.list) {
		next = len(s.list) + 1
	}
	if s.maxPairs > 0 && next > s.maxPairs {
		next = s.maxPairs
	}
	if s.refetches != nil {
		*s.refetches++
	}
	list, err := s.j.TopK(next)
	if err != nil {
		return Result{}, false, err
	}
	s.list = list
	if s.pos >= len(s.list) {
		return Result{}, false, nil
	}
	r := s.list[s.pos]
	s.pos++
	return r, true, nil
}

func (s *rejoinStream) Release() {
	if r, ok := s.j.(interface{ Release() }); ok {
		r.Release()
	}
}

// MaxPairs reports the joiner's candidate-space size |P|·|Q|, letting the
// re-join stream detect exhaustion without a final no-op re-join.
func (b *BIDJ) MaxPairs() int { return b.cfg.MaxPairs() }

// MaxPairs reports the joiner's candidate-space size |P|·|Q|.
func (b *BBJ) MaxPairs() int { return b.cfg.MaxPairs() }

// MaxPairs reports the joiner's candidate-space size |P|·|Q|.
func (b *ParallelBBJ) MaxPairs() int { return b.cfg.MaxPairs() }

// MaxPairs reports the joiner's candidate-space size |P|·|Q|.
func (f *FBJ) MaxPairs() int { return f.cfg.MaxPairs() }

// MaxPairs reports the joiner's candidate-space size |P|·|Q|.
func (f *FIDJ) MaxPairs() int { return f.cfg.MaxPairs() }

// Drain pulls up to k elements from a Stream-shaped pull function,
// stopping early at exhaustion. On error the elements drained so far are
// returned alongside it — callers that must not expose partial results
// discard them. This is the one run-to-k loop every layer (core's batch
// Run, the service and facade NextK pagers) shares.
func Drain[T any](k int, next func() (T, bool, error)) ([]T, error) {
	out := make([]T, 0, min(k, 64))
	for len(out) < k {
		v, ok, err := next()
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out, nil
}

// NewBIDJYStream opens the standard serving stream over cfg — the one
// strategy choice shared by the dhtjoin facade and the serving layer.
// Serial configs stream through the incremental F structure (no work is
// repeated between pulls); parallel configs (cfg.Workers < 0 or > 1, which
// keep their worker-pool deepening rounds) and batch drains (batch = true:
// the caller will pull exactly the initial budget and stop, so the F
// structure's O(|P|·|Q|) population would be paid for nothing) run one
// plain B-IDJ-Y top-k behind a doubling re-join. Either strategy yields
// the identical ranking (canonical tie keys), so this is purely a cost
// choice.
func NewBIDJYStream(cfg Config, spec StreamSpec, batch bool) (Stream, error) {
	return NewNamedStream("B-IDJ-Y", cfg, spec, batch)
}

// OpenStream adapts a joiner into a pull stream, picking the best strategy
// for its type: a B-IDJ joiner streams through the incremental F structure
// (no work is ever repeated), every other joiner streams through doubling
// re-joins (unless spec.Grow overrides the schedule). The joiner should be
// freshly constructed — a B-IDJ's own cached engines are bypassed by the
// incremental state, and OpenStream releases them.
func OpenStream(j Joiner, spec StreamSpec) (Stream, error) {
	if b, ok := j.(*BIDJ); ok {
		st, err := NewIncrementalStream(b.cfg, b.variant, spec)
		if err != nil {
			return nil, err
		}
		b.Release() // any cached engines go back; the stream owns its own
		return st, nil
	}
	if spec.Grow == nil {
		spec.Grow = growDouble
	}
	return NewRejoinStream(j, spec)
}
