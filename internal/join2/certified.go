package join2

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// CertifiedJoin runs a 2-way join on the FastCertified kernel and certifies
// the result back to the bit-identical contract, so its emitted ranking is
// ==-identical to every other joiner's while the bulk of the walk work runs
// on float32 parallel sweeps. It is the execution side of the planner's
// accuracy knob: "fast" never means "approximate results", it means
// "approximate scores plus a proof obligation".
//
// The protocol has three phases:
//
//  1. Fast pass. Score every pair on the fast kernel — backward batched
//     columns (the B-BJ shape, one walk per target) or forward batched
//     per-pair walks (the F-BJ shape), per the variant. Each score ŝ
//     carries the kernel's conservative bound ε: |ŝ − s| ≤ ε.
//  2. Certification cut. Let t̂ be the k-th largest fast score. Any pair
//     whose true score reaches the true k-th must satisfy ŝ ≥ t̂ − 2ε
//     (its true score s ≥ s_k ≥ t̂ − ε, so ŝ ≥ s − ε ≥ t̂ − 2ε). The band
//     C = {ŝ ≥ t̂ − 2ε} is therefore a superset of the true top-k,
//     including exact ties at the cut; every pair outside C is certified
//     out by its score gap alone and is never touched again.
//  3. Exact re-verification. Every band pair is re-scored through the
//     bit-identical batch kernel (grouped by target, one backward column
//     per distinct q), and the final top-k heap is built from those exact
//     scores with the canonical tie key. Emitted pairs, scores, and order
//     are thus exactly the reference ranking — the fast pass only decided
//     which pairs were worth exact arithmetic.
//
// Certification bookkeeping flows into Config.Counters via Certify:
// KernelPicks (fast passes run), Reverified (band size), and FallbackPairs
// (band excess over k — the pairs the fast scores alone could not
// certify). At k = |P|·|Q| the band is necessarily everything and the run
// degenerates to a fast pre-pass plus a full exact B-BJ; the planner's cost
// model prices that and steers to plain B-BJ instead.
//
// Memory: the fast pass materializes all |P|·|Q| approximate scores (the
// same order of space the full ranking itself would take), which is the
// price of cutting once globally instead of per target.
type CertifiedJoin struct {
	cfg     Config
	forward bool // fast-pass shape: forward per-pair walks instead of backward columns
	fe      *dht.FastBatchEngine
	be      *dht.BatchEngine
	memo    *dht.ScoreMemo

	// scratch reused across TopK calls
	approx  []float64 // pi-major |P|·|Q| fast scores
	pending []graph.NodeID
	pis     [][]int32 // per-target band members, indexed like pending
}

// NewCertifiedBBJ returns the backward-shaped certified joiner ("B-BJ-fast"):
// the fast pass is one backward column per target, the factor-|P| win of
// backward processing on the fast kernel.
func NewCertifiedBBJ(cfg Config) (*CertifiedJoin, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CertifiedJoin{cfg: cfg, memo: cfg.newMemo()}, nil
}

// NewCertifiedFBJ returns the forward-shaped certified joiner ("F-BJ-fast"):
// the fast pass walks each pair forward, batched at the fast kernel's
// width. Only competitive when |P|·|Q| is small; the planner prices it.
func NewCertifiedFBJ(cfg Config) (*CertifiedJoin, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CertifiedJoin{cfg: cfg, forward: true, memo: cfg.newMemo()}, nil
}

// Name implements Joiner.
func (j *CertifiedJoin) Name() string {
	if j.forward {
		return "F-BJ-fast"
	}
	return "B-BJ-fast"
}

// MaxPairs returns |P|·|Q|, the size of the join's candidate space.
func (j *CertifiedJoin) MaxPairs() int { return j.cfg.MaxPairs() }

// Release returns the joiner's cached engines to the caller-owned pool
// (Config.Pool); no-op without one.
func (j *CertifiedJoin) Release() {
	j.cfg.releaseEngines(nil, &j.be)
	j.cfg.releaseFastEngine(&j.fe)
}

// AllPairs evaluates every pair and returns the full descending ranking.
func (j *CertifiedJoin) AllPairs() ([]Result, error) {
	return j.TopK(j.cfg.MaxPairs())
}

// TopK implements Joiner: the certified fast-path protocol described on the
// type. The returned ranking is ==-identical to BBJ/FBJ/B-IDJ-Y's.
func (j *CertifiedJoin) TopK(k int) ([]Result, error) {
	k, err := j.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if j.fe == nil {
		j.fe = j.cfg.fastEngine()
	}
	lenQ := len(j.cfg.Q)
	if need := len(j.cfg.P) * lenQ; cap(j.approx) < need {
		j.approx = make([]float64, need)
	}
	approx := j.approx[:len(j.cfg.P)*lenQ]

	// Phase 1: fast pass. Fill the pi-major score matrix and track the k-th
	// largest fast score. Ties are irrelevant here — only the k-th *value*
	// matters, and the band cut below keeps every tied candidate anyway.
	cutTop := pqueue.NewTopK[struct{}](k)
	if j.forward {
		err = j.fastForwardPass(approx, cutTop)
	} else {
		err = j.fastBackwardPass(approx, cutTop)
	}
	if err != nil {
		return nil, err
	}
	that, ok := cutTop.Threshold()
	if !ok {
		// clampK guarantees k ≤ |P|·|Q| and the pass scored every pair.
		panic("join2: certified fast pass under-filled the cut heap")
	}
	cut := that - 2*j.fe.ScoreBound()

	// Phase 2: certification cut — collect the ε-band, grouped by target so
	// phase 3 walks each distinct q's exact column once. pending[bi] is the
	// bi-th target with band members, pis[bi] their P indices.
	j.pending = j.pending[:0]
	j.pis = j.pis[:0]
	band := 0
	for qi, q := range j.cfg.Q {
		var pis []int32
		if n := len(j.pis); n < cap(j.pis) {
			pis = j.pis[:n+1][n][:0] // reuse the previous run's slot capacity
		}
		for pi := range j.cfg.P {
			if approx[pi*lenQ+qi] >= cut {
				pis = append(pis, int32(pi))
			}
		}
		if len(pis) == 0 {
			continue
		}
		band += len(pis)
		j.pending = append(j.pending, q)
		j.pis = append(j.pis, pis)
	}

	// Phase 3: exact re-verification of the band through the bit-identical
	// kernel, memo-served like B-BJ's walk loop: hits feed the heap
	// directly, misses batch-walk at the exact kernel's width.
	top := pqueue.NewTopK[Pair](k)
	addBand := func(bi int, scores []float64) {
		q := j.pending[bi]
		for _, pi := range j.pis[bi] {
			p := j.cfg.P[pi]
			pr := Pair{p, q}
			top.AddTie(pr, scores[p], pairTie(pr))
		}
	}
	memo := j.memo
	if len(j.pending) > memo.Cap() {
		memo = nil
	}
	if j.be == nil {
		j.be = j.cfg.batchEngine()
	}
	var missQ []graph.NodeID
	var missBI []int
	for bi, q := range j.pending {
		if scores, hit := memo.Get(j.cfg.Measure, q, j.cfg.D); hit {
			addBand(bi, scores)
			continue
		}
		missQ = append(missQ, q)
		missBI = append(missBI, bi)
	}
	bw := j.be.W
	for base := 0; base < len(missQ); base += bw {
		if err := j.cfg.canceled(); err != nil {
			return nil, err
		}
		end := min(base+bw, len(missQ))
		cols := j.be.BackWalkScoresBatch(j.cfg.Measure, missQ[base:end], j.cfg.D)
		for ci, q := range missQ[base:end] {
			memo.Put(j.cfg.Measure, q, j.cfg.D, cols[ci])
			addBand(missBI[base+ci], cols[ci])
		}
	}

	if j.cfg.Counters != nil {
		fallback := int64(band - k)
		if fallback < 0 {
			fallback = 0
		}
		j.cfg.Counters.Certify(1, int64(band), fallback)
	}
	return collect(top), nil
}

// fastBackwardPass fills approx with one fast backward column per target:
// approx[pi·|Q|+qi] = ĥ_d(P[pi], Q[qi]).
func (j *CertifiedJoin) fastBackwardPass(approx []float64, cutTop *pqueue.TopK[struct{}]) error {
	fw := j.fe.W
	lenQ := len(j.cfg.Q)
	for base := 0; base < lenQ; base += fw {
		if err := j.cfg.canceled(); err != nil {
			return err
		}
		end := min(base+fw, lenQ)
		chunk := j.cfg.Q[base:end]
		cols := j.fe.BackWalkScoresBatch(j.cfg.Measure, chunk, j.cfg.D)
		for ci := range chunk {
			col := cols[ci]
			qi := base + ci
			for pi, p := range j.cfg.P {
				s := col[p]
				approx[pi*lenQ+qi] = s
				cutTop.Add(struct{}{}, s)
			}
		}
	}
	return nil
}

// fastForwardPass fills approx with one fast forward walk per pair, batched
// at the fast kernel's width.
func (j *CertifiedJoin) fastForwardPass(approx []float64, cutTop *pqueue.TopK[struct{}]) error {
	fw := j.fe.W
	lenQ := len(j.cfg.Q)
	ps := make([]graph.NodeID, 0, fw)
	qs := make([]graph.NodeID, 0, fw)
	idx := make([]int, 0, fw)
	flush := func() error {
		if len(ps) == 0 {
			return nil
		}
		if err := j.cfg.canceled(); err != nil {
			return err
		}
		rows := j.fe.ForwardProbsBatch(j.cfg.Measure, ps, qs, j.cfg.D)
		for c := range ps {
			s := 0.0
			if !(j.cfg.Measure == dht.FirstHit && ps[c] == qs[c]) {
				s = j.cfg.Params.Score(rows[c])
			}
			approx[idx[c]] = s
			cutTop.Add(struct{}{}, s)
		}
		ps, qs, idx = ps[:0], qs[:0], idx[:0]
		return nil
	}
	for pi, p := range j.cfg.P {
		for qi, q := range j.cfg.Q {
			ps = append(ps, p)
			qs = append(qs, q)
			idx = append(idx, pi*lenQ+qi)
			if len(ps) == fw {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}
