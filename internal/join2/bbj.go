package join2

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// BBJ is the Backward Basic Join (§VI-A): one d-step backward walk per q ∈ Q
// yields h_d(p, q) for every p at once, so the complexity is O(|Q|·d·|E|) —
// a factor |P| better than F-BJ. The per-target walks run through the
// batched kernel (Config.BatchWidth columns per CSR traversal) behind a
// small (q, l)-keyed memo that serves repeated TopK calls on the same
// joiner — the PJ re-join stream — without re-walking recently seen targets.
// With Config.Workers set, the walks are spread over a worker pool (see
// ParallelBBJ for the dedicated type); either way the engines and their
// O(|V|) scratch are reused across TopK calls, so a joiner is
// single-goroutine like the engines it owns.
type BBJ struct {
	cfg  Config
	e    *dht.Engine
	be   *dht.BatchEngine
	memo *dht.ScoreMemo
	par  *ParallelBBJ // cached worker-pool delegate when Workers > 1

	// scratch for the memo-miss batch, reused across TopK calls
	pending []graph.NodeID
}

// NewBBJ validates the config and returns the joiner.
func NewBBJ(cfg Config) (*BBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BBJ{cfg: cfg, memo: cfg.newMemo()}, nil
}

// Name implements Joiner.
func (b *BBJ) Name() string { return "B-BJ" }

// Release returns the joiner's cached engines to the caller-owned pool
// (Config.Pool); no-op without one. The memo is untouched — a caller-owned
// memo outlives the joiner by design, and a joiner-built one is garbage.
func (b *BBJ) Release() {
	b.cfg.releaseEngines(&b.e, &b.be)
}

// TopK implements Joiner.
func (b *BBJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if w := b.cfg.workerCount(len(b.cfg.Q)); w > 1 {
		if b.par == nil {
			if b.par, err = NewParallelBBJ(b.cfg, w); err != nil {
				return nil, err
			}
		}
		return b.par.TopK(k)
	}
	d := b.cfg.D
	top := pqueue.NewTopK[Pair](k)
	// scores[q] is 0 by definition (h(v,v) = 0), so pairs with p == q
	// participate with score 0, matching the forward algorithms. AddTie's
	// canonical tie key makes the selection independent of target order, so
	// serving memo hits first cannot change the result.
	addColumn := func(q graph.NodeID, scores []float64) {
		for _, p := range b.cfg.P {
			pr := Pair{p, q}
			top.AddTie(pr, scores[p], pairTie(pr))
		}
	}
	// A sequential pass over more targets than the LRU holds would evict
	// every entry before its next-TopK re-use — all copy cost, zero hits —
	// so the memo only engages when Q fits in it.
	memo := b.memo
	if len(b.cfg.Q) > memo.Cap() {
		memo = nil
	}
	if b.cfg.batchRounds(d) {
		if b.be == nil {
			b.be = b.cfg.batchEngine()
		}
		bw := b.be.W
		b.pending = b.pending[:0]
		flush := func() error {
			for base := 0; base < len(b.pending); base += bw {
				// Each chunk is one full-depth batched walk — the serial
				// B-BJ's walk round, and its cancellation poll point.
				if err := b.cfg.canceled(); err != nil {
					return err
				}
				end := min(base+bw, len(b.pending))
				chunk := b.pending[base:end]
				cols := b.be.BackWalkScoresBatch(b.cfg.Measure, chunk, d)
				for ci, q := range chunk {
					memo.Put(b.cfg.Measure, q, d, cols[ci])
					addColumn(q, cols[ci])
				}
			}
			b.pending = b.pending[:0]
			return nil
		}
		for _, q := range b.cfg.Q {
			if scores, ok := memo.Get(b.cfg.Measure, q, d); ok {
				addColumn(q, scores)
				continue
			}
			b.pending = append(b.pending, q)
		}
		if err := flush(); err != nil {
			return nil, err
		}
		return collect(top), nil
	}
	if b.e == nil {
		if b.e, err = b.cfg.engine(); err != nil {
			return nil, err
		}
	}
	for _, q := range b.cfg.Q {
		if scores, ok := memo.Get(b.cfg.Measure, q, d); ok {
			addColumn(q, scores)
			continue
		}
		if err := b.cfg.canceled(); err != nil {
			return nil, err
		}
		scores := b.e.BackWalkScores(b.cfg.Measure, q, d)
		memo.Put(b.cfg.Measure, q, d, scores)
		addColumn(q, scores)
	}
	return collect(top), nil
}

// AllPairs evaluates every pair and returns the full descending ranking.
func (b *BBJ) AllPairs() ([]Result, error) {
	return b.TopK(b.cfg.MaxPairs())
}
