package join2

import (
	"repro/internal/dht"
	"repro/internal/pqueue"
)

// BBJ is the Backward Basic Join (§VI-A): one d-step backward walk per q ∈ Q
// yields h_d(p, q) for every p at once, so the complexity is O(|Q|·d·|E|) —
// a factor |P| better than F-BJ. With Config.Workers set, the per-target
// walks are spread over a worker pool (see ParallelBBJ for the dedicated
// type); either way the engine and its O(|V|) scratch are reused across
// TopK calls, so a joiner is single-goroutine like the engine it owns.
type BBJ struct {
	cfg Config
	e   *dht.Engine
	par *ParallelBBJ // cached worker-pool delegate when Workers > 1
}

// NewBBJ validates the config and returns the joiner.
func NewBBJ(cfg Config) (*BBJ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &BBJ{cfg: cfg}, nil
}

// Name implements Joiner.
func (b *BBJ) Name() string { return "B-BJ" }

// TopK implements Joiner.
func (b *BBJ) TopK(k int) ([]Result, error) {
	k, err := b.cfg.clampK(k)
	if err != nil {
		return nil, err
	}
	if w := b.cfg.workerCount(len(b.cfg.Q)); w > 1 {
		if b.par == nil {
			if b.par, err = NewParallelBBJ(b.cfg, w); err != nil {
				return nil, err
			}
		}
		return b.par.TopK(k)
	}
	if b.e == nil {
		if b.e, err = b.cfg.engine(); err != nil {
			return nil, err
		}
	}
	e := b.e
	top := pqueue.NewTopK[Pair](k)
	for _, q := range b.cfg.Q {
		scores := e.BackWalkScores(b.cfg.Measure, q, b.cfg.D)
		// scores[q] is 0 by definition (h(v,v) = 0), so pairs with p == q
		// participate with score 0, matching the forward algorithms.
		for _, p := range b.cfg.P {
			pr := Pair{p, q}
			top.AddTie(pr, scores[p], pairTie(pr))
		}
	}
	return collect(top), nil
}

// AllPairs evaluates every pair and returns the full descending ranking.
func (b *BBJ) AllPairs() ([]Result, error) {
	return b.TopK(b.cfg.MaxPairs())
}
