package join2

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
)

// benchConfig: a Yeast-scale community graph with 100-node join sets.
func benchConfig(b *testing.B) Config {
	b.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{800, 800, 800}, PIn: 0.008, POut: 0.008, Seed: 3, MinOutLink: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Graph:  g,
		Params: dht.DHTLambda(0.2),
		D:      8,
		P:      sets[0].Nodes()[:100],
		Q:      sets[1].Nodes()[:100],
	}
}

func benchJoiner(b *testing.B, mk func(Config) (Joiner, error), k int) {
	cfg := benchConfig(b)
	j, err := mk(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.TopK(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBBJTop50(b *testing.B) {
	benchJoiner(b, func(c Config) (Joiner, error) { return NewBBJ(c) }, 50)
}

func BenchmarkBIDJXTop50(b *testing.B) {
	benchJoiner(b, func(c Config) (Joiner, error) { return NewBIDJX(c) }, 50)
}

func BenchmarkBIDJYTop50(b *testing.B) {
	benchJoiner(b, func(c Config) (Joiner, error) { return NewBIDJY(c) }, 50)
}

// BenchmarkIncrementalNext isolates getNextNodePair on the F structure: one
// initial top-m join (untimed), then streaming further pairs. When b.N
// outgrows the candidate space, a fresh join state is prepared off the
// clock.
func BenchmarkIncrementalNext(b *testing.B) {
	cfg := benchConfig(b)
	fresh := func() *Incremental {
		inc, err := NewIncremental(cfg, BoundY)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Run(50); err != nil {
			b.Fatal(err)
		}
		return inc
	}
	inc := fresh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := inc.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.StopTimer()
			inc = fresh()
			b.StartTimer()
		}
	}
}

// BenchmarkParallelBBJ measures the worker-pool backward join against
// BenchmarkBBJTop50.
func BenchmarkParallelBBJ(b *testing.B) {
	cfg := benchConfig(b)
	j, err := NewParallelBBJ(cfg, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.TopK(50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRejoinNext is the PJ-style alternative: every additional pair is
// a from-scratch top-(m+1) join. Compare with BenchmarkIncrementalNext.
func BenchmarkRejoinNext(b *testing.B) {
	cfg := benchConfig(b)
	j, err := NewBIDJY(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := j.TopK(51 + i%10)
		if err != nil {
			b.Fatal(err)
		}
		_ = res[len(res)-1]
	}
}
