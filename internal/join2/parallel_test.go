package join2

import (
	"testing"

	"repro/internal/dht"
)

// TestParallelBBJMatchesSerial: the worker pool must be invisible in the
// results — identical ranking (including tie order) to serial B-BJ.
func TestParallelBBJMatchesSerial(t *testing.T) {
	cfg := testConfig(t, 61, 0.3)
	serial, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopK(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		par, err := NewParallelBBJ(cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.TopK(30)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d rank %d: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestParallelBBJMoreWorkersThanTargets(t *testing.T) {
	cfg := testConfig(t, 2, 0.2)
	cfg.Q = cfg.Q[:3]
	par, err := NewParallelBBJ(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := par.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
}

func TestParallelBBJReachMeasure(t *testing.T) {
	cfg := testConfig(t, 9, 0.2)
	cfg.Params = dht.PPR(0.5)
	cfg.Measure = dht.Reach
	serial, err := NewBBJ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelBBJ(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := par.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestParallelBBJValidates(t *testing.T) {
	cfg := testConfig(t, 2, 0.2)
	cfg.D = 0
	if _, err := NewParallelBBJ(cfg, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}
