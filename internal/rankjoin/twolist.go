package rankjoin

import (
	"fmt"
	"sort"
)

// Tuple is an item of a sorted input list in the standalone two-list join:
// Key is the join attribute, Score the ranking score.
type Tuple struct {
	Key   string
	ID    int
	Score float64
}

// JoinedPair is an output of TwoListJoin.
type JoinedPair struct {
	Left, Right Tuple
	Score       float64
}

// TwoListJoin is a self-contained PBRJ over two descending score-sorted
// lists with an equality join predicate on Key. It exists to exercise the
// Bound/RoundRobin machinery independently of graphs: tests compare it
// against a brute-force join. Returns the top-k joined pairs by f(l, r).
func TwoListJoin(left, right []Tuple, f Aggregate, k int) ([]JoinedPair, error) {
	if k <= 0 {
		return nil, fmt.Errorf("rankjoin: k must be positive, got %d", k)
	}
	for i := 1; i < len(left); i++ {
		if left[i].Score > left[i-1].Score+1e-12 {
			return nil, fmt.Errorf("rankjoin: left list not sorted descending at %d", i)
		}
	}
	for i := 1; i < len(right); i++ {
		if right[i].Score > right[i-1].Score+1e-12 {
			return nil, fmt.Errorf("rankjoin: right list not sorted descending at %d", i)
		}
	}

	bound := NewBound(f, 2)
	rr := NewRoundRobin(2)
	pos := [2]int{}
	lists := [2][]Tuple{left, right}
	// Buffers indexed by key.
	byKey := [2]map[string][]Tuple{make(map[string][]Tuple), make(map[string][]Tuple)}

	var out []JoinedPair
	worst := func() float64 {
		// Smallest score among the current top-k (out is kept sorted).
		return out[len(out)-1].Score
	}
	insert := func(p JoinedPair) {
		i := sort.Search(len(out), func(i int) bool { return out[i].Score < p.Score })
		out = append(out, JoinedPair{})
		copy(out[i+1:], out[i:])
		out[i] = p
		if len(out) > k {
			out = out[:k]
		}
	}

	for {
		if len(out) >= k && worst() >= bound.Tau() {
			break
		}
		side, ok := rr.Pick()
		if !ok {
			break
		}
		if pos[side] >= len(lists[side]) {
			rr.Exhaust(side)
			bound.Exhaust(side)
			continue
		}
		t := lists[side][pos[side]]
		pos[side]++
		bound.Observe(side, t.Score)
		byKey[side][t.Key] = append(byKey[side][t.Key], t)
		other := 1 - side
		for _, o := range byKey[other][t.Key] {
			l, r := t, o
			if side == 1 {
				l, r = o, t
			}
			insert(JoinedPair{Left: l, Right: r, Score: f.Combine([]float64{l.Score, r.Score})})
		}
	}
	return out, nil
}
