package rankjoin

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAggregates(t *testing.T) {
	s := []float64{1, -2, 3}
	if got := Sum.Combine(s); got != 2 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Min.Combine(s); got != -2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max.Combine(s); got != 3 {
		t.Fatalf("Max = %v", got)
	}
	if got := Avg.Combine(s); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Avg = %v", got)
	}
	if Avg.Combine(nil) != 0 {
		t.Fatal("Avg(nil) != 0")
	}
	for _, a := range []Aggregate{Sum, Min, Max, Avg} {
		if a.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestWeightedSum(t *testing.T) {
	w, err := WeightedSum([]float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Combine([]float64{1, 4}); got != 4 {
		t.Fatalf("WSUM = %v", got)
	}
	if _, err := WeightedSum([]float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := WeightedSum([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not detected")
		}
	}()
	w.Combine([]float64{1})
}

func TestByName(t *testing.T) {
	for _, name := range []string{"SUM", "min", "MAX", "avg"} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("median"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// Monotonicity property of all built-in aggregates: raising one input never
// lowers the output (Definition 2).
func TestAggregateMonotonicityProperty(t *testing.T) {
	aggs := []Aggregate{Sum, Min, Max, Avg}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.NormFloat64()
		}
		for _, a := range aggs {
			before := a.Combine(base)
			i := rng.Intn(n)
			raised := append([]float64(nil), base...)
			raised[i] += rng.Float64()
			if a.Combine(raised) < before-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundLifecycle(t *testing.T) {
	b := NewBound(Sum, 2)
	if !math.IsInf(b.Tau(), 1) {
		t.Fatal("tau should be +Inf before any observation")
	}
	b.Observe(0, 10)
	if !math.IsInf(b.Tau(), 1) {
		t.Fatal("tau should remain +Inf until every input observed")
	}
	b.Observe(1, 8)
	// Corners: f(last0=10, top1=8)=18; f(top0=10, last1=8)=18 → 18.
	if tau := b.Tau(); tau != 18 {
		t.Fatalf("tau = %v, want 18", tau)
	}
	b.Observe(0, 4)
	// Corners: f(4, 8)=12; f(10, 8)=18 → 18.
	if tau := b.Tau(); tau != 18 {
		t.Fatalf("tau = %v, want 18", tau)
	}
	b.Observe(1, 1)
	// Corners: f(4,8)=12; f(10,1)=11 → 12.
	if tau := b.Tau(); tau != 12 {
		t.Fatalf("tau = %v, want 12", tau)
	}
	b.Exhaust(0)
	// Corner 0 is -Inf; corner 1: f(10,1)=11.
	if tau := b.Tau(); tau != 11 {
		t.Fatalf("tau after exhaust = %v, want 11", tau)
	}
}

func TestBoundExhaustUnseen(t *testing.T) {
	b := NewBound(Sum, 2)
	b.Observe(0, 5)
	b.Exhaust(1) // never delivered anything
	if !math.IsInf(b.Tau(), -1) {
		// corner 0 = f(5, -inf) = -inf; corner 1 = f(5, -inf) = -inf
		t.Fatalf("tau = %v, want -Inf", b.Tau())
	}
}

func TestRoundRobin(t *testing.T) {
	rr := NewRoundRobin(3)
	var order []int
	for i := 0; i < 6; i++ {
		j, ok := rr.Pick()
		if !ok {
			t.Fatal("live scheduler reported done")
		}
		order = append(order, j)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	rr.Exhaust(1)
	if rr.Live(1) {
		t.Fatal("exhausted input reported live")
	}
	for i := 0; i < 4; i++ {
		j, ok := rr.Pick()
		if !ok || j == 1 {
			t.Fatalf("picked exhausted input %d (ok=%v)", j, ok)
		}
	}
	rr.Exhaust(0)
	rr.Exhaust(2)
	if _, ok := rr.Pick(); ok {
		t.Fatal("all-exhausted scheduler still picks")
	}
}

func bruteTwoList(left, right []Tuple, f Aggregate, k int) []JoinedPair {
	var all []JoinedPair
	for _, l := range left {
		for _, r := range right {
			if l.Key == r.Key {
				all = append(all, JoinedPair{l, r, f.Combine([]float64{l.Score, r.Score})})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func randomLists(rng *rand.Rand, n int) ([]Tuple, []Tuple) {
	mk := func() []Tuple {
		list := make([]Tuple, n)
		for i := range list {
			list[i] = Tuple{
				Key:   fmt.Sprintf("k%d", rng.Intn(5)),
				ID:    i,
				Score: rng.NormFloat64(),
			}
		}
		sort.SliceStable(list, func(i, j int) bool { return list[i].Score > list[j].Score })
		return list
	}
	return mk(), mk()
}

func TestTwoListJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		left, right := randomLists(rng, 12)
		for _, f := range []Aggregate{Sum, Min} {
			k := 1 + rng.Intn(8)
			got, err := TwoListJoin(left, right, f, k)
			if err != nil {
				t.Fatalf("TwoListJoin: %v", err)
			}
			want := bruteTwoList(left, right, f, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s, k=%d): got %d pairs, want %d", trial, f.Name(), k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
					t.Fatalf("trial %d rank %d: score %v, want %v", trial, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestTwoListJoinValidatesInput(t *testing.T) {
	unsorted := []Tuple{{Key: "a", Score: 1}, {Key: "a", Score: 2}}
	sorted := []Tuple{{Key: "a", Score: 2}, {Key: "a", Score: 1}}
	if _, err := TwoListJoin(unsorted, sorted, Sum, 1); err == nil {
		t.Fatal("unsorted left accepted")
	}
	if _, err := TwoListJoin(sorted, unsorted, Sum, 1); err == nil {
		t.Fatal("unsorted right accepted")
	}
	if _, err := TwoListJoin(sorted, sorted, Sum, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestTwoListJoinEmptyInputs(t *testing.T) {
	out, err := TwoListJoin(nil, nil, Sum, 3)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty join = %v, %v", out, err)
	}
	one := []Tuple{{Key: "a", Score: 1}}
	out, err = TwoListJoin(one, nil, Min, 3)
	if err != nil || len(out) != 0 {
		t.Fatalf("half-empty join = %v, %v", out, err)
	}
}
