// Package rankjoin provides the rank-join substrate of the Partial Join
// framework (§IV): monotonic aggregate functions over query-graph edge
// scores, the HRJN corner-bound threshold τ, the round-robin pull strategy,
// and a standalone two-list PBRJ operator used for testing the machinery in
// isolation.
package rankjoin

import (
	"fmt"
	"math"
)

// Aggregate is a monotonic function f of the |E_Q| per-edge DHT scores
// (Definition 2). Monotonic means: raising any input never lowers the
// output — the property PBRJ's bounding relies on.
type Aggregate interface {
	// Name identifies the function in reports ("SUM", "MIN", …).
	Name() string
	// Combine folds the per-edge scores into the answer score. The input
	// slice must not be retained or modified.
	Combine(scores []float64) float64
}

type sumAgg struct{}

func (sumAgg) Name() string { return "SUM" }
func (sumAgg) Combine(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

type minAgg struct{}

func (minAgg) Name() string { return "MIN" }
func (minAgg) Combine(s []float64) float64 {
	m := math.Inf(1)
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return m
}

type maxAgg struct{}

func (maxAgg) Name() string { return "MAX" }
func (maxAgg) Combine(s []float64) float64 {
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

type avgAgg struct{}

func (avgAgg) Name() string { return "AVG" }
func (avgAgg) Combine(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var t float64
	for _, v := range s {
		t += v
	}
	return t / float64(len(s))
}

var (
	// Sum adds the edge scores ("overall closeness", §III-A).
	Sum Aggregate = sumAgg{}
	// Min takes the weakest edge score — the paper's default f in §VII.
	Min Aggregate = minAgg{}
	// Max takes the strongest edge score.
	Max Aggregate = maxAgg{}
	// Avg averages the edge scores (SUM scaled by 1/|E_Q|).
	Avg Aggregate = avgAgg{}
)

// WeightedSum returns an aggregate computing Σ wᵢ·sᵢ. All weights must be
// non-negative to preserve monotonicity.
func WeightedSum(weights []float64) (Aggregate, error) {
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rankjoin: weight %d is %g; weights must be finite and >= 0", i, w)
		}
	}
	ws := make([]float64, len(weights))
	copy(ws, weights)
	return weightedSum{ws}, nil
}

type weightedSum struct{ w []float64 }

func (a weightedSum) Name() string { return "WSUM" }
func (a weightedSum) Combine(s []float64) float64 {
	if len(s) != len(a.w) {
		panic(fmt.Sprintf("rankjoin: WSUM over %d scores, want %d", len(s), len(a.w)))
	}
	var t float64
	for i, v := range s {
		t += a.w[i] * v
	}
	return t
}

// ByName resolves an aggregate from its report name. Used by the CLI tools.
func ByName(name string) (Aggregate, error) {
	switch name {
	case "SUM", "sum":
		return Sum, nil
	case "MIN", "min":
		return Min, nil
	case "MAX", "max":
		return Max, nil
	case "AVG", "avg":
		return Avg, nil
	}
	return nil, fmt.Errorf("rankjoin: unknown aggregate %q (want SUM, MIN, MAX, or AVG)", name)
}
