package rankjoin

import (
	"math"
)

// Bound tracks the HRJN corner-bound threshold τ across an n-ary rank join
// (Ilyas et al., VLDB'04; used as the PBRJ bounding scheme in Algorithm 1).
//
// For each input i it remembers top[i] (the first, i.e. highest, score
// delivered) and last[i] (the most recent score delivered). The threshold is
//
//	τ = max_i f( last_i at position i, top_j elsewhere )
//
// — the best score any not-yet-seen combination can still reach, because
// inputs are sorted descending. Until every input has delivered at least one
// item, τ = +Inf. Exhausting input i pins last[i] to −Inf, disabling its
// corner.
type Bound struct {
	f    Aggregate
	top  []float64
	last []float64
	seen []bool
	buf  []float64
}

// NewBound creates a threshold tracker for n inputs under f.
func NewBound(f Aggregate, n int) *Bound {
	b := &Bound{
		f:    f,
		top:  make([]float64, n),
		last: make([]float64, n),
		seen: make([]bool, n),
		buf:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		b.last[i] = math.Inf(1)
	}
	return b
}

// Observe records that input i delivered score s (scores must arrive in
// non-increasing order per input; this is validated loosely with a small
// tolerance for accumulated floating-point error in callers' scores).
func (b *Bound) Observe(i int, s float64) {
	if !b.seen[i] {
		b.seen[i] = true
		b.top[i] = s
	}
	b.last[i] = s
}

// Exhaust marks input i as fully consumed.
func (b *Bound) Exhaust(i int) {
	b.last[i] = math.Inf(-1)
	if !b.seen[i] {
		// An input that never delivered anything cannot contribute at all.
		b.seen[i] = true
		b.top[i] = math.Inf(-1)
	}
}

// Tau returns the current threshold.
func (b *Bound) Tau() float64 {
	for i := range b.seen {
		if !b.seen[i] {
			return math.Inf(1)
		}
	}
	tau := math.Inf(-1)
	for i := range b.top {
		copy(b.buf, b.top)
		b.buf[i] = b.last[i]
		if t := b.f.Combine(b.buf); t > tau {
			tau = t
		}
	}
	return tau
}

// RoundRobin cycles over n inputs, skipping exhausted ones — the HRJN pull
// strategy of Algorithm 1, Step 7.
type RoundRobin struct {
	n       int
	next    int
	done    []bool
	numDone int
}

// NewRoundRobin creates a scheduler over n inputs.
func NewRoundRobin(n int) *RoundRobin {
	return &RoundRobin{n: n, done: make([]bool, n)}
}

// Pick returns the next live input index, or ok=false when all inputs are
// exhausted.
func (r *RoundRobin) Pick() (int, bool) {
	if r.numDone == r.n {
		return 0, false
	}
	for {
		i := r.next
		r.next = (r.next + 1) % r.n
		if !r.done[i] {
			return i, true
		}
	}
}

// Exhaust removes input i from rotation.
func (r *RoundRobin) Exhaust(i int) {
	if !r.done[i] {
		r.done[i] = true
		r.numDone++
	}
}

// Live reports whether input i is still in rotation.
func (r *RoundRobin) Live(i int) bool { return !r.done[i] }
