package core

import (
	"errors"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/rankjoin"
)

func TestBufferIndexes(t *testing.T) {
	b := newBuffer()
	b.add(join2.Result{Pair: join2.Pair{P: 1, Q: 10}, Score: 0.5})
	b.add(join2.Result{Pair: join2.Pair{P: 1, Q: 11}, Score: 0.4})
	b.add(join2.Result{Pair: join2.Pair{P: 2, Q: 10}, Score: 0.3})
	b.add(join2.Result{Pair: join2.Pair{P: 1, Q: 10}, Score: 0.9}) // dup ignored
	if b.len() != 3 {
		t.Fatalf("len = %d", b.len())
	}
	if s := b.score[join2.Pair{P: 1, Q: 10}]; s != 0.5 {
		t.Fatalf("dup overwrote score: %v", s)
	}
	if len(b.byP[1]) != 2 || len(b.byQ[10]) != 2 {
		t.Fatalf("indexes wrong: byP[1]=%d byQ[10]=%d", len(b.byP[1]), len(b.byQ[10]))
	}
}

// TestExpanderBranching exercises the Figure-4 discussion: when a buffer
// holds two pairs sharing the anchor node, two partial answers must branch.
func TestExpanderBranching(t *testing.T) {
	sets := []*graph.NodeSet{
		graph.NewNodeSet("A", []graph.NodeID{0}),
		graph.NewNodeSet("B", []graph.NodeID{1}),
		graph.NewNodeSet("C", []graph.NodeID{2, 3}),
	}
	q := Chain(sets...) // A→B→C
	bufs := []*buffer{newBuffer(), newBuffer()}
	bufs[0].add(join2.Result{Pair: join2.Pair{P: 0, Q: 1}, Score: 0.9})
	bufs[1].add(join2.Result{Pair: join2.Pair{P: 1, Q: 2}, Score: 0.8})
	bufs[1].add(join2.Result{Pair: join2.Pair{P: 1, Q: 3}, Score: 0.7})

	x := newExpander(q, bufs)
	var got [][]graph.NodeID
	x.expand(0, join2.Pair{P: 0, Q: 1}, func(nodes []graph.NodeID, edgeScores []float64) {
		cp := make([]graph.NodeID, len(nodes))
		copy(cp, nodes)
		got = append(got, cp)
		if len(edgeScores) != 2 {
			t.Fatalf("edge scores = %v", edgeScores)
		}
	})
	if len(got) != 2 {
		t.Fatalf("expected 2 branched answers, got %v", got)
	}
}

// TestExpanderIncompletePartialDropped: a partial answer whose remaining
// edge has no compatible buffered pair must vanish silently.
func TestExpanderIncompletePartial(t *testing.T) {
	sets := []*graph.NodeSet{
		graph.NewNodeSet("A", []graph.NodeID{0}),
		graph.NewNodeSet("B", []graph.NodeID{1}),
		graph.NewNodeSet("C", []graph.NodeID{2}),
	}
	q := Chain(sets...)
	bufs := []*buffer{newBuffer(), newBuffer()}
	bufs[0].add(join2.Result{Pair: join2.Pair{P: 0, Q: 1}, Score: 0.9})
	// bufs[1] empty: no (B,C) pair yet.
	x := newExpander(q, bufs)
	count := 0
	x.expand(0, join2.Pair{P: 0, Q: 1}, func([]graph.NodeID, []float64) { count++ })
	if count != 0 {
		t.Fatalf("incomplete partial emitted %d answers", count)
	}
}

// failingSource checks error propagation through the PBRJ stream.
type failingSource struct{ calls int }

func (s *failingSource) Next() (join2.Result, bool, error) {
	s.calls++
	return join2.Result{}, false, errors.New("stream broke")
}

func (s *failingSource) Release() {}

func TestDriverPropagatesSourceError(t *testing.T) {
	g, sets := testWorld(t, 1, 4, 4)
	spec := Spec{
		Graph:  g,
		Query:  Chain(sets[:2]...),
		Params: dht.DHTLambda(0.2),
		D:      4,
		Agg:    rankjoin.Min,
		K:      3,
	}
	st := newPBRJStream(&spec, []edgeSource{&failingSource{}}, nil, nil, false)
	defer st.Release()
	if _, _, err := st.Next(); err == nil || err.Error() != "stream broke" {
		t.Fatalf("stream error = %v", err)
	}
}

// TestListSource covers the AP source.
func TestListSource(t *testing.T) {
	s := &listSource{list: []join2.Result{
		{Pair: join2.Pair{P: 0, Q: 1}, Score: 2},
		{Pair: join2.Pair{P: 0, Q: 2}, Score: 1},
	}}
	for i := 0; i < 2; i++ {
		if _, ok, err := s.Next(); !ok || err != nil {
			t.Fatalf("next %d failed", i)
		}
	}
	if _, ok, _ := s.Next(); ok {
		t.Fatal("exhausted source kept producing")
	}
}

// TestRejoinSourceStreamsWholeSpace: the PJ source must eventually deliver
// every pair exactly once, in descending order.
func TestRejoinSourceStreamsWholeSpace(t *testing.T) {
	g, sets := testWorld(t, 5, 5, 5)
	cfg := join2.Config{
		Graph:  g,
		Params: dht.DHTLambda(0.2),
		D:      8,
		P:      sets[0].Nodes(),
		Q:      sets[1].Nodes(),
	}
	j, err := join2.NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var refetches int64
	s, err := join2.NewRejoinStream(j, join2.StreamSpec{Initial: 3, Refetches: &refetches})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release()
	seen := make(map[join2.Pair]bool)
	prev := 1e18
	for {
		r, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[r.Pair] {
			t.Fatalf("pair %v delivered twice", r.Pair)
		}
		seen[r.Pair] = true
		if r.Score > prev+1e-9 {
			t.Fatalf("stream not descending at %v", r)
		}
		prev = r.Score
	}
	if len(seen) != cfg.MaxPairs() {
		t.Fatalf("delivered %d of %d pairs", len(seen), cfg.MaxPairs())
	}
	if refetches == 0 {
		t.Fatal("no refetches counted")
	}
}
