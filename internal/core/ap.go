package core

import (
	"fmt"
	"sort"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/simrank"
)

// TwoWayKind selects which 2-way join algorithm an n-way operator uses for
// its per-edge joins.
type TwoWayKind int

const (
	// TwoWayFBJ is the forward basic join — the paper's choice for AP (its
	// pruning-free all-pairs workload gains nothing from smarter joins).
	TwoWayFBJ TwoWayKind = iota
	// TwoWayBBJ is the backward basic join.
	TwoWayBBJ
	// TwoWayFIDJ is the forward iterative deepening join.
	TwoWayFIDJ
	// TwoWayBIDJX is B-IDJ with the X⁺ₗ bound.
	TwoWayBIDJX
	// TwoWayBIDJY is B-IDJ with the Y⁺ₗ bound — the paper's choice for PJ.
	TwoWayBIDJY
	// TwoWaySimRank is the SR-SCAN joiner: per-edge scores come from the
	// SimRank fixed-point matrix instead of walks. Selected only by the
	// measure-aware planner (SR-AP); the walk operators never use it.
	TwoWaySimRank
)

// String names the kind as in the paper.
func (t TwoWayKind) String() string {
	switch t {
	case TwoWayFBJ:
		return "F-BJ"
	case TwoWayBBJ:
		return "B-BJ"
	case TwoWayFIDJ:
		return "F-IDJ"
	case TwoWayBIDJX:
		return "B-IDJ-X"
	case TwoWayBIDJY:
		return "B-IDJ-Y"
	case TwoWaySimRank:
		return "SR-SCAN"
	}
	return fmt.Sprintf("TwoWayKind(%d)", int(t))
}

// newJoiner builds the selected 2-way joiner for one query edge.
func (t TwoWayKind) newJoiner(cfg join2.Config) (join2.Joiner, error) {
	switch t {
	case TwoWayFBJ:
		return join2.NewFBJ(cfg)
	case TwoWayBBJ:
		return join2.NewBBJ(cfg)
	case TwoWayFIDJ:
		return join2.NewFIDJ(cfg)
	case TwoWayBIDJX:
		return join2.NewBIDJX(cfg)
	case TwoWayBIDJY:
		return join2.NewBIDJY(cfg)
	case TwoWaySimRank:
		return simrank.NewJoiner(cfg)
	}
	return nil, fmt.Errorf("core: unknown two-way kind %d", int(t))
}

// edgeConfig derives the 2-way join config for one query edge. counters,
// when non-nil, aggregates the edge's engine work (shared across edges).
// The spec's caller-owned pool and memo are threaded through so every edge
// join draws on the same shared resources.
func edgeConfig(spec *Spec, e QEdge, counters *dht.Counters) join2.Config {
	return join2.Config{
		Graph:      spec.Graph,
		Params:     spec.Params,
		D:          spec.D,
		P:          spec.Query.Set(e.From).Nodes(),
		Q:          spec.Query.Set(e.To).Nodes(),
		Measure:    spec.Measure,
		Workers:    spec.Workers,
		BatchWidth: spec.BatchWidth,
		Counters:   counters,
		Pool:       spec.Pool,
		Memo:       spec.Memo,
		Cancel:     spec.Cancel,
	}
}

// AP is the All Pairs baseline (§III-B): it scores *every* node pair of
// every query edge (Σ |R_i|·|R_j| DHT evaluations), sorts the per-edge
// lists, and rank-joins them with PBRJ. Far fewer DHT computations than NL,
// but still wasteful: under the paper's workloads under 1% of these pairs
// ever contribute to the top-k answers.
type AP struct {
	spec   Spec
	twoWay TwoWayKind
	Stats  RunStats
}

// NewAP validates the spec and returns the algorithm using F-BJ for the
// per-edge joins, as in the paper's experiments.
func NewAP(spec Spec) (*AP, error) {
	return NewAPWith(spec, TwoWayFBJ)
}

// NewAPWith selects the per-edge 2-way join algorithm.
func NewAPWith(spec Spec, kind TwoWayKind) (*AP, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &AP{spec: spec, twoWay: kind}, nil
}

// Name implements Algorithm.
func (a *AP) Name() string {
	if a.twoWay == TwoWaySimRank {
		return "SR-AP"
	}
	return "AP"
}

// Stream opens the rank-ordered answer stream over fully materialized
// per-edge lists (every pair of every edge is scored up front — AP's
// defining cost; only the PBRJ drive itself is incremental). The caller
// must Release the stream.
func (a *AP) Stream() (TupleStream, error) {
	a.Stats = RunStats{}
	ctrs := a.spec.runCounters()
	srcs, err := buildSources(&a.spec, ctrs, func(cfg join2.Config) (edgeSource, error) {
		j, err := a.twoWay.newJoiner(cfg)
		if err != nil {
			return nil, err
		}
		list, err := j.TopK(cfg.MaxPairs())
		if r, ok := j.(interface{ Release() }); ok {
			r.Release() // the list is materialized; pooled engines go back now
		}
		if err != nil {
			return nil, err
		}
		return &listSource{list: list}, nil
	})
	if err != nil {
		return nil, err
	}
	return newPBRJStream(&a.spec, srcs, &a.Stats, ctrs, false), nil
}

// Run implements Algorithm by draining the stream to k.
func (a *AP) Run() ([]Answer, error) {
	st, err := a.Stream()
	if err != nil {
		return nil, err
	}
	defer st.Release()
	return drainTuples(st, a.spec.clampK())
}

// bruteForceJoin recomputes the join exactly from fully materialized edge
// lists by explicit enumeration — shared by tests as the reference answer.
// It returns all candidate answers sorted by descending score (capped at k).
func bruteForceJoin(spec *Spec, k int) ([]Answer, error) {
	edges := spec.Query.Edges()
	scoreOf := make([]map[join2.Pair]float64, len(edges))
	for ei, e := range edges {
		cfg := edgeConfig(spec, e, nil)
		j, err := join2.NewBBJ(cfg)
		if err != nil {
			return nil, err
		}
		list, err := j.TopK(cfg.MaxPairs())
		if err != nil {
			return nil, err
		}
		m := make(map[join2.Pair]float64, len(list))
		for _, r := range list {
			m[r.Pair] = r.Score
		}
		scoreOf[ei] = m
	}
	q := spec.Query
	n := q.NumSets()
	var all []Answer
	idx := make([]int, n)
	tuple := make([]graph.NodeID, n)
	es := make([]float64, len(edges))
	for {
		for i := 0; i < n; i++ {
			tuple[i] = q.Set(i).Nodes()[idx[i]]
		}
		if spec.keepTuple(tuple) {
			for ei, qe := range edges {
				es[ei] = scoreOf[ei][join2.Pair{P: tuple[qe.From], Q: tuple[qe.To]}]
			}
			cp := make([]graph.NodeID, n)
			copy(cp, tuple)
			all = append(all, Answer{Nodes: cp, Score: spec.Agg.Combine(es)})
		}

		pos := n - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < q.Set(pos).Len() {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			break
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	if k < len(all) {
		all = all[:k]
	}
	return all, nil
}
