package core

// This file registers the four n-way operators (NL, AP, PJ, PJ-i) with the
// planner registry (internal/plan), making each a first-class selectable
// executor behind the same descriptor shape as the 2-way joiners.
//
// The cost model composes the registered 2-way estimates per query edge
// (looked up through the registry, so the two layers can never drift) in
// the planner's edge-relaxation unit W = Workload.WalkCost():
//
//   - NL walks every edge of every candidate tuple with its own forward
//     walk — Π|R_i| · |E_Q| · W, no sharing whatsoever (§III-B; the paper
//     could not complete it for n ≥ 3).
//   - AP materializes every pair of every edge with F-BJ, then rank-joins:
//     Σ_e |R_f|·|R_t| · W.
//   - PJ runs a top-m B-IDJ-Y per edge, but every pull past the initial
//     batch re-runs that edge's join from scratch with a +1 budget
//     (Algorithm 1, steps 9–10) — the refetch term multiplies a *full*
//     per-edge join by the expected number of refetches, which is exactly
//     the waste PJ-i eliminates (the paper reports up to 50× from this).
//   - PJ-i pays the same initial per-edge joins plus a near-free bound
//     refinement per extra pull (§VI-D).

import (
	"fmt"

	"repro/internal/plan"
)

// StreamAlgorithm is an n-way operator that exposes its incremental pull
// stream alongside the batch Run — all four registered operators implement
// it.
type StreamAlgorithm interface {
	Algorithm
	Stream() (TupleStream, error)
}

// Factory is the n-way executor constructor signature registered as
// plan.Descriptor.New: spec plus the per-edge budget m (ignored by NL/AP,
// which have no notion of a partial batch).
type Factory func(spec Spec, m int) (StreamAlgorithm, error)

// twoWayEdgeCost prices one query edge's 2-way join with the named
// registered 2-way executor at demand k, reusing the join2 cost functions
// through the registry.
func twoWayEdgeCost(name string, w plan.Workload, p, q, k int) float64 {
	ew := w
	ew.P, ew.Q, ew.K = p, q, k
	ew.SetSizes, ew.QueryEdges = nil, nil
	if d, ok := plan.Lookup(name); ok {
		return d.Cost(ew)
	}
	// Unreachable while join2 registers its executors; priced as all-pairs
	// forward so a broken registry still yields a finite, pessimistic plan.
	return float64(p) * float64(q) * ew.WalkCost()
}

// edgeSizes resolves one n-way query edge's (|R_from|, |R_to|).
func edgeSizes(w plan.Workload, e [2]int) (int, int) {
	p, q := 1, 1
	if e[0] >= 0 && e[0] < len(w.SetSizes) {
		p = w.SetSizes[e[0]]
	}
	if e[1] >= 0 && e[1] < len(w.SetSizes) {
		q = w.SetSizes[e[1]]
	}
	return p, q
}

// edgePulls estimates how many pairs one edge source must yield before the
// rank join can emit k answers: the initial batch plus roughly one refetch
// per demanded answer (HRJN's round-robin pulls once per edge per
// threshold advance), capped at the edge's pair space.
func edgePulls(w plan.Workload, space int) int {
	pulls := w.M + w.K
	if pulls > space {
		pulls = space
	}
	return pulls
}

// nlOverhead penalizes NL relative to AP at equal walk counts (n = 2, one
// edge): NL re-walks per candidate with no per-edge ranking to prune
// through, so it should never win a tie against AP.
const nlOverhead = 1.1

func costNL(w plan.Workload) float64 {
	space := float64(w.SpaceSize())
	edges := float64(len(w.QueryEdges))
	return space*edges*w.WalkCost()*nlOverhead + space*plan.PairCost
}

func costAP(w plan.Workload) float64 {
	var total float64
	for _, e := range w.QueryEdges {
		p, q := edgeSizes(w, e)
		total += twoWayEdgeCost("F-BJ", w, p, q, p*q)
	}
	return total + float64(w.SpaceSize())*plan.PairCost
}

func costPJ(w plan.Workload) float64 {
	var total float64
	for _, e := range w.QueryEdges {
		p, q := edgeSizes(w, e)
		space := p * q
		initial := w.M
		if initial > space {
			initial = space
		}
		total += twoWayEdgeCost("B-IDJ-Y", w, p, q, initial)
		if refetch := edgePulls(w, space) - initial; refetch > 0 {
			// Every refetch is a from-scratch top-(m+i) join.
			total += float64(refetch) * twoWayEdgeCost("B-IDJ-Y", w, p, q, edgePulls(w, space))
		}
	}
	return total
}

// incrementalPull is the modeled cost of one PJ-i pull past the initial
// batch, as a fraction of a full-depth walk: the F structure refines only
// the pairs contending for the next rank (§VI-D).
const incrementalPull = 0.05

func costPJI(w plan.Workload) float64 {
	var total float64
	for _, e := range w.QueryEdges {
		p, q := edgeSizes(w, e)
		space := p * q
		initial := w.M
		if initial > space {
			initial = space
		}
		total += twoWayEdgeCost("B-IDJ-Y", w, p, q, initial)
		if refetch := edgePulls(w, space) - initial; refetch > 0 {
			total += float64(refetch) * incrementalPull * w.WalkCost()
		}
	}
	return total
}

// costSRAP prices the SimRank n-way join: one SR-SCAN materialization per
// query edge (the matrix compute amortizes across edges through the
// per-graph cache, but the planner prices the cold case) plus the rank-join
// bookkeeping over the answer space.
func costSRAP(w plan.Workload) float64 {
	var total float64
	for _, e := range w.QueryEdges {
		p, q := edgeSizes(w, e)
		total += twoWayEdgeCost("SR-SCAN", w, p, q, p*q)
	}
	return total + float64(w.SpaceSize())*plan.PairCost
}

func init() {
	reg := func(name string, streaming, resumable bool, cost plan.CostFunc, mk Factory) {
		plan.Register(plan.Descriptor{
			Name: name, Class: plan.NWay,
			Streaming: streaming, Resumable: resumable,
			Cost: cost, New: mk,
		})
	}
	reg("NL", false, false, costNL,
		func(spec Spec, _ int) (StreamAlgorithm, error) { return NewNL(spec) })
	reg("AP", false, false, costAP,
		func(spec Spec, _ int) (StreamAlgorithm, error) { return NewAP(spec) })
	reg("PJ", true, false, costPJ,
		func(spec Spec, m int) (StreamAlgorithm, error) { return NewPJ(spec, m) })
	reg("PJ-i", true, true, costPJI,
		func(spec Spec, m int) (StreamAlgorithm, error) { return NewPJI(spec, m) })
	// SR-AP is the SimRank n-way operator: AP's materialize-and-rank-join
	// drive with SR-SCAN per-edge sources. Registered under Measure
	// "simrank", so only measure-declaring workloads see it.
	plan.Register(plan.Descriptor{
		Name: "SR-AP", Class: plan.NWay, Measure: "simrank",
		Cost: costSRAP,
		New: Factory(func(spec Spec, _ int) (StreamAlgorithm, error) {
			return NewAPWith(spec, TwoWaySimRank)
		}),
	})
}

// NewNamed constructs the named registered n-way operator over spec with
// per-edge budget m — the planner-facing generalization of the hard-coded
// NewPJI call the execution layers used to make.
func NewNamed(name string, spec Spec, m int) (StreamAlgorithm, error) {
	d, ok := plan.Lookup(name)
	if !ok || d.Class != plan.NWay {
		return nil, fmt.Errorf("core: no registered n-way executor %q", name)
	}
	mk, ok := d.New.(Factory)
	if !ok {
		return nil, fmt.Errorf("core: executor %q registered with a foreign factory type", name)
	}
	return mk(spec, m)
}
