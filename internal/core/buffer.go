package core

import (
	"repro/internal/graph"
	"repro/internal/join2"
)

// buffer is the candidate buffer C_{Ri,Rj} of Algorithm 1: all node pairs
// pulled so far for one query edge, indexed three ways so getCandidate can
// look up by left node, right node, or exact pair.
type buffer struct {
	score map[join2.Pair]float64
	byP   map[graph.NodeID][]join2.Pair
	byQ   map[graph.NodeID][]join2.Pair
}

func newBuffer() *buffer {
	return &buffer{
		score: make(map[join2.Pair]float64),
		byP:   make(map[graph.NodeID][]join2.Pair),
		byQ:   make(map[graph.NodeID][]join2.Pair),
	}
}

// add records a pulled pair with its DHT score.
func (b *buffer) add(r join2.Result) {
	if _, dup := b.score[r.Pair]; dup {
		return
	}
	b.score[r.Pair] = r.Score
	b.byP[r.Pair.P] = append(b.byP[r.Pair.P], r.Pair)
	b.byQ[r.Pair.Q] = append(b.byQ[r.Pair.Q], r.Pair)
}

func (b *buffer) len() int { return len(b.score) }

// expander implements getCandidate (Figure 4): starting from the freshly
// pulled pair on one query edge, it walks the remaining query edges,
// extending partial answers with every compatible buffered pair, and emits
// the complete assignments.
type expander struct {
	q    *QueryGraph
	bufs []*buffer

	// per-expansion state
	asg      []graph.NodeID // node per set position; -1 = unassigned (#)
	done     []bool         // per query edge
	escore   []float64      // per query edge DHT score
	emit     func(nodes []graph.NodeID, edgeScores []float64)
	genCount int64
}

func newExpander(q *QueryGraph, bufs []*buffer) *expander {
	return &expander{
		q:      q,
		bufs:   bufs,
		asg:    make([]graph.NodeID, q.NumSets()),
		done:   make([]bool, len(q.Edges())),
		escore: make([]float64, len(q.Edges())),
	}
}

// expand enumerates all complete candidate answers that use the new pair pr
// on edge ei, calling emit for each. Answers not yet completable (some
// needed pair missing from the buffers) are silently dropped; they will be
// regenerated when their missing pair arrives.
func (x *expander) expand(ei int, pr join2.Pair, emit func(nodes []graph.NodeID, edgeScores []float64)) {
	for i := range x.asg {
		x.asg[i] = -1
	}
	for i := range x.done {
		x.done[i] = false
	}
	x.emit = emit
	e := x.q.Edges()[ei]
	x.asg[e.From], x.asg[e.To] = pr.P, pr.Q
	x.done[ei] = true
	x.escore[ei] = x.bufs[ei].score[pr]
	x.recurse(len(x.q.Edges()) - 1)
}

// recurse processes the remaining undone edges (remaining counts them).
func (x *expander) recurse(remaining int) {
	if remaining == 0 {
		x.genCount++
		x.emit(x.asg, x.escore)
		return
	}
	// Pick an undone edge with at least one assigned endpoint; because the
	// query graph is connected one always exists.
	ei := -1
	var e QEdge
	for i, cand := range x.q.Edges() {
		if x.done[i] {
			continue
		}
		if x.asg[cand.From] >= 0 || x.asg[cand.To] >= 0 {
			ei = i
			e = cand
			break
		}
	}
	if ei < 0 {
		// Unreachable for validated (connected) query graphs.
		panic("core: candidate expansion stuck on a disconnected query graph")
	}
	x.done[ei] = true
	defer func() { x.done[ei] = false }()

	fromSet, toSet := x.asg[e.From] >= 0, x.asg[e.To] >= 0
	switch {
	case fromSet && toSet:
		pr := join2.Pair{P: x.asg[e.From], Q: x.asg[e.To]}
		if s, ok := x.bufs[ei].score[pr]; ok {
			x.escore[ei] = s
			x.recurse(remaining - 1)
		}
	case fromSet:
		for _, pr := range x.bufs[ei].byP[x.asg[e.From]] {
			x.asg[e.To] = pr.Q
			x.escore[ei] = x.bufs[ei].score[pr]
			x.recurse(remaining - 1)
		}
		x.asg[e.To] = -1
	default: // toSet
		for _, pr := range x.bufs[ei].byQ[x.asg[e.To]] {
			x.asg[e.From] = pr.P
			x.escore[ei] = x.bufs[ei].score[pr]
			x.recurse(remaining - 1)
		}
		x.asg[e.From] = -1
	}
}
