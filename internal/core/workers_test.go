package core

import (
	"testing"

	"repro/internal/rankjoin"
)

// TestWorkersMatchSerial: PJ, PJ-i, and AP with Spec.Workers set must
// produce exactly the answers of the serial run (same tuples, same order),
// and their engine counters must record work.
func TestWorkersMatchSerial(t *testing.T) {
	g, sets := testWorld(t, 42, 14, 14, 14)
	spec := chainSpec(g, sets, rankjoin.Min, 8)

	serialPJ, err := NewPJ(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantPJ, err := serialPJ.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialPJI, err := NewPJI(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantPJI, err := serialPJI.Run()
	if err != nil {
		t.Fatal(err)
	}
	serialAP, err := NewAP(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantAP, err := serialAP.Run()
	if err != nil {
		t.Fatal(err)
	}
	if serialPJ.Stats.DHTWalks == 0 {
		t.Fatal("serial PJ recorded no walks")
	}

	for _, workers := range []int{2, -1} {
		wspec := spec
		wspec.Workers = workers
		pj, err := NewPJ(wspec, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pj.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, "PJ workers", got, wantPJ)
		if pj.Stats.DHTWalks != serialPJ.Stats.DHTWalks {
			t.Fatalf("workers=%d: PJ walks %d != serial %d", workers, pj.Stats.DHTWalks, serialPJ.Stats.DHTWalks)
		}

		pji, err := NewPJI(wspec, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err = pji.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, "PJ-i workers", got, wantPJI)

		ap, err := NewAP(wspec)
		if err != nil {
			t.Fatal(err)
		}
		got, err = ap.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, "AP workers", got, wantAP)
	}
}

// TestRunStatsFrontierCounters: short-walk-heavy PJ-i runs should be served
// mostly by the sparse kernel — frontier edges recorded, and dense sweeps
// only where the frontier saturates.
func TestRunStatsFrontierCounters(t *testing.T) {
	g, sets := testWorld(t, 7, 16, 16)
	spec := chainSpec(g, sets, rankjoin.Min, 5)
	pji, err := NewPJI(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pji.Run(); err != nil {
		t.Fatal(err)
	}
	st := pji.Stats
	if st.DHTWalks == 0 {
		t.Fatal("no walks recorded")
	}
	if st.DHTFrontierEdges == 0 && st.DHTEdgeSweeps == 0 {
		t.Fatalf("no walk work recorded: %+v", st)
	}
}
