package core

import (
	"fmt"

	"repro/internal/join2"
)

// PJ is the Partial Join algorithm (Algorithm 1): a top-m 2-way join per
// query edge (B-IDJ-Y by default), a PBRJ rank join over the resulting
// lists, and — when a list runs dry — getNextNodePair implemented by
// re-running a from-scratch top-(m+1) join. PJ-i replaces only that last
// step.
type PJ struct {
	spec   Spec
	m      int
	twoWay TwoWayKind
	Stats  RunStats
}

// NewPJ validates the spec and returns PJ with per-edge budget m and the
// default B-IDJ-Y 2-way join.
func NewPJ(spec Spec, m int) (*PJ, error) {
	return NewPJWith(spec, m, TwoWayBIDJY)
}

// NewPJWith selects the per-edge 2-way join algorithm.
func NewPJWith(spec Spec, m int, kind TwoWayKind) (*PJ, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("core: m must be >= 0, got %d", m)
	}
	return &PJ{spec: spec, m: m, twoWay: kind}, nil
}

// Name implements Algorithm.
func (a *PJ) Name() string { return "PJ" }

// Stream opens the rank-ordered answer stream: PJ's per-edge sources re-run
// their 2-way join from scratch with a +1 budget whenever they run dry
// (Algorithm 1, steps 9–10) — the deliberately wasteful baseline PJ-i
// improves on. The caller must Release the stream.
func (a *PJ) Stream() (TupleStream, error) {
	a.Stats = RunStats{}
	ctrs := a.spec.runCounters()
	srcs, err := buildSources(&a.spec, ctrs, func(cfg join2.Config) (edgeSource, error) {
		j, err := a.twoWay.newJoiner(cfg)
		if err != nil {
			return nil, err
		}
		// PJ must keep the from-scratch re-join strategy even for B-IDJ
		// joiners (OpenStream would upgrade those to the incremental F
		// structure, i.e. to PJ-i), so the rejoin stream is named directly.
		// m = 0 is allowed: the initial batch is then a top-1 join.
		return join2.NewRejoinStream(j, join2.StreamSpec{Initial: a.m, Refetches: &a.Stats.Refetches})
	})
	if err != nil {
		return nil, err
	}
	return newPBRJStream(&a.spec, srcs, &a.Stats, ctrs, false), nil
}

// Run implements Algorithm by draining the stream to k.
func (a *PJ) Run() ([]Answer, error) {
	st, err := a.Stream()
	if err != nil {
		return nil, err
	}
	defer st.Release()
	return drainTuples(st, a.spec.clampK())
}

// PJI is the Incremental Partial Join (PJ-i, §VI-D): identical to PJ except
// that each edge keeps the B-IDJ bound state in a mutable priority queue F,
// so the (m+1)-th, (m+2)-th, … pairs are derived from already-computed
// bounds instead of re-running the 2-way join. The paper reports up to 50×
// speedups over PJ from exactly this change.
type PJI struct {
	spec    Spec
	m       int
	variant join2.BoundVariant
	Stats   RunStats

	// DisableCornerBound turns off the PBRJ early-stop threshold, so the
	// rank join drains every source completely. Used only by the
	// corner-bound ablation bench; leave false otherwise.
	DisableCornerBound bool
}

// NewPJI validates the spec and returns PJ-i with per-edge budget m and the
// Y⁺ₗ bound.
func NewPJI(spec Spec, m int) (*PJI, error) {
	return NewPJIWith(spec, m, join2.BoundY)
}

// NewPJIWith selects the B-IDJ bound variant used by the incremental joins.
func NewPJIWith(spec Spec, m int, variant join2.BoundVariant) (*PJI, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if m < 0 {
		return nil, fmt.Errorf("core: m must be >= 0, got %d", m)
	}
	return &PJI{spec: spec, m: m, variant: variant}, nil
}

// Name implements Algorithm.
func (a *PJI) Name() string { return "PJ-i" }

// Stream opens the rank-ordered answer stream: each per-edge source is the
// incremental F structure of §VI-D, so every pull past the initial top-m
// refines only the pairs contending for the next rank. The caller must
// Release the stream (that is what returns the pooled engines and folds the
// walk counters into Stats).
func (a *PJI) Stream() (TupleStream, error) {
	a.Stats = RunStats{}
	ctrs := a.spec.runCounters()
	srcs, err := buildSources(&a.spec, ctrs, func(cfg join2.Config) (edgeSource, error) {
		return join2.NewIncrementalStream(cfg, a.variant, join2.StreamSpec{
			Initial:   a.m, // 0 selects 1: Incremental.Run needs a positive budget
			Refetches: &a.Stats.Refetches,
		})
	})
	if err != nil {
		return nil, err
	}
	return newPBRJStream(&a.spec, srcs, &a.Stats, ctrs, a.DisableCornerBound), nil
}

// Run implements Algorithm by draining the stream to k.
func (a *PJI) Run() ([]Answer, error) {
	st, err := a.Stream()
	if err != nil {
		return nil, err
	}
	defer st.Release()
	return drainTuples(st, a.spec.clampK())
}
