package core

import (
	"fmt"

	"repro/internal/join2"
	"repro/internal/rankjoin"
)

// JoinLists runs the PBRJ n-way join over externally supplied per-edge pair
// rankings — the "bring your own similarity" entry point. lists[i] is the
// complete descending ranking for query edge i; agg and k are as in Spec.
// It lets measures that do not fit the Equation-4 walk form (e.g. SimRank)
// reuse the whole multi-way machinery: candidate buffers, getCandidate
// expansion, and the corner-bound threshold.
func JoinLists(query *QueryGraph, lists [][]join2.Result, agg rankjoin.Aggregate, k int, distinct bool) ([]Answer, error) {
	if query == nil {
		return nil, fmt.Errorf("core: nil query graph")
	}
	if err := query.Validate(nil); err != nil {
		return nil, err
	}
	if agg == nil {
		return nil, fmt.Errorf("core: nil aggregate")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if len(lists) != len(query.Edges()) {
		return nil, fmt.Errorf("core: %d lists for %d query edges", len(lists), len(query.Edges()))
	}
	srcs := make([]edgeSource, len(lists))
	for i, list := range lists {
		for j := 1; j < len(list); j++ {
			if list[j].Score > list[j-1].Score+1e-12 {
				return nil, fmt.Errorf("core: list %d not sorted descending at rank %d", i, j)
			}
		}
		srcs[i] = &listSource{list: list}
	}
	// A synthetic spec carries the aggregate, k, and distinct flag; the
	// graph and DHT parameters are unused on this path (scores come from
	// the lists), so stand-ins keep Validate-independent fields consistent.
	spec := &Spec{Query: query, Agg: agg, K: k, Distinct: distinct}
	st := newPBRJStream(spec, srcs, nil, nil, false)
	defer st.Release()
	return drainTuples(st, spec.clampK())
}
