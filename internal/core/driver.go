package core

import (
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/pqueue"
	"repro/internal/rankjoin"
)

// edgeSource streams the 2-way join results of one query edge in descending
// score order. Implementations differ in how the stream is produced: a fully
// materialized list (AP), repeated from-scratch top-(m+i) joins (PJ), or the
// incremental F structure (PJ-i).
type edgeSource interface {
	next() (join2.Result, bool, error)
}

// driver runs the PBRJ loop of Algorithm 1 (steps 5–14) over per-edge
// sources: round-robin pulls (HRJN), candidate buffers, getCandidate
// expansion, and the corner-bound stopping threshold τ.
type driver struct {
	spec  *Spec
	srcs  []edgeSource
	stats *RunStats

	// noBound disables the corner-bound early stop (τ is ignored and the
	// sources are drained completely). Only the ablation benches set it.
	noBound bool
}

func (d *driver) run() ([]Answer, error) {
	k := d.spec.clampK()
	edges := d.spec.Query.Edges()
	bufs := make([]*buffer, len(edges))
	for i := range bufs {
		bufs[i] = newBuffer()
	}
	exp := newExpander(d.spec.Query, bufs)
	bound := rankjoin.NewBound(d.spec.Agg, len(edges))
	rr := rankjoin.NewRoundRobin(len(edges))
	out := pqueue.NewTopK[Answer](k)
	seen := make(map[string]struct{})

	for {
		if out.Full() && !d.noBound {
			if min, _ := out.MinScore(); min >= bound.Tau() {
				break
			}
		}
		ei, ok := rr.Pick()
		if !ok {
			break // all sources exhausted
		}
		r, ok, err := d.srcs[ei].next()
		if err != nil {
			return nil, err
		}
		if !ok {
			rr.Exhaust(ei)
			bound.Exhaust(ei)
			continue
		}
		if d.stats != nil {
			d.stats.PairsPulled++
		}
		bound.Observe(ei, r.Score)
		bufs[ei].add(r)
		exp.expand(ei, r.Pair, func(nodes []graph.NodeID, edgeScores []float64) {
			if d.stats != nil {
				d.stats.Candidates++
			}
			if !d.spec.keepTuple(nodes) {
				return
			}
			key := answerKey(nodes)
			if _, dup := seen[key]; dup {
				return
			}
			seen[key] = struct{}{}
			tuple := make([]graph.NodeID, len(nodes))
			copy(tuple, nodes)
			out.Add(Answer{Nodes: tuple}, d.spec.Agg.Combine(edgeScores))
		})
	}

	answers, scores := out.Sorted()
	for i := range answers {
		answers[i].Score = scores[i]
	}
	return answers, nil
}
