package core

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/pqueue"
	"repro/internal/rankjoin"
)

// TupleStream pulls rank-ordered n-way answers one at a time: the control
// flow of Algorithm 1 turned inside out. The batch Run methods are thin
// wrappers that drain a stream, so a streamed prefix of length m is always
// identical to a one-shot top-m run.
type TupleStream interface {
	// Next returns the next-best answer with its aggregate score; ok is
	// false once the candidate space is exhausted.
	Next() (Answer, bool, error)
	// Release returns every pooled engine held by the per-edge sources and
	// folds the run's walk counters into the owning algorithm's RunStats.
	// Idempotent; callers that stop early MUST call it.
	Release()
}

// pbrjStream runs the PBRJ loop of Algorithm 1 (steps 5–14) over per-edge
// sources — round-robin pulls (HRJN), candidate buffers, getCandidate
// expansion — as an incremental rank join: an answer is emitted as soon as
// its aggregate score reaches the corner-bound threshold τ, at which point
// no not-yet-generated combination can beat it. Emission order is therefore
// descending by score; equal scores emit in a deterministic but otherwise
// unspecified order (the candidate heap's layout is a pure function of the
// serial insertion sequence). Determinism is what the prefix invariant and
// the serving layer's prefix cache need — the batch Run methods drain this
// same stream, so stream and batch can never disagree. The m-th pull never
// does more source work than a one-shot top-m run.
type pbrjStream struct {
	spec  *Spec
	srcs  []edgeSource
	stats *RunStats
	ctrs  *dht.Counters

	bufs  []*buffer
	exp   *expander
	bound *rankjoin.Bound
	rr    *rankjoin.RoundRobin
	cand  *pqueue.Indexed[string, Answer] // confirmed-pending candidates by answer key
	seen  map[string]struct{}
	live  int // sources still in rotation

	// noBound disables the corner-bound early emit (sources are drained
	// completely before anything is emitted). Only the ablation benches set
	// it, through PJI.DisableCornerBound.
	noBound  bool
	released bool
}

// newPBRJStream wires the PBRJ state over already-built sources.
func newPBRJStream(spec *Spec, srcs []edgeSource, stats *RunStats, ctrs *dht.Counters, noBound bool) *pbrjStream {
	edges := spec.Query.Edges()
	bufs := make([]*buffer, len(edges))
	for i := range bufs {
		bufs[i] = newBuffer()
	}
	return &pbrjStream{
		spec:    spec,
		srcs:    srcs,
		stats:   stats,
		ctrs:    ctrs,
		bufs:    bufs,
		exp:     newExpander(spec.Query, bufs),
		bound:   rankjoin.NewBound(spec.Agg, len(edges)),
		rr:      rankjoin.NewRoundRobin(len(edges)),
		cand:    pqueue.NewIndexed[string, Answer](),
		seen:    make(map[string]struct{}),
		live:    len(edges),
		noBound: noBound,
	}
}

// Next implements TupleStream.
func (d *pbrjStream) Next() (Answer, bool, error) {
	for {
		// One PBRJ iteration per poll: a pull that keeps missing the corner
		// bound must still notice an expired deadline budget.
		if err := d.spec.canceled(); err != nil {
			return Answer{}, false, err
		}
		// Emit the best pending candidate once it clears the threshold —
		// τ bounds every answer that still involves an unseen pair, so a
		// candidate at or above it is globally next. With all sources
		// exhausted there is nothing left to wait for. Under a non-zero
		// Spec.ScoreEps the comparison is ε-aware: the candidate must clear
		// τ by the combined score uncertainty before it is *certified* as
		// globally next — a gap inside the ε-band proves nothing, so the
		// stream keeps pulling (tightening τ) until the gap is decisive or
		// the sources exhaust.
		if key, prio, a, ok := d.cand.Max(); ok {
			if d.live == 0 || (!d.noBound && prio >= d.bound.Tau()+d.spec.ScoreEps) {
				d.cand.Remove(key)
				a.Score = prio
				return a, true, nil
			}
		} else if d.live == 0 {
			return Answer{}, false, nil
		}

		ei, ok := d.rr.Pick()
		if !ok {
			continue // all sources just exhausted; drain the heap
		}
		r, ok, err := d.srcs[ei].Next()
		if err != nil {
			return Answer{}, false, err
		}
		if !ok {
			d.rr.Exhaust(ei)
			d.bound.Exhaust(ei)
			d.live--
			continue
		}
		if d.stats != nil {
			d.stats.PairsPulled++
		}
		d.bound.Observe(ei, r.Score)
		d.bufs[ei].add(r)
		d.exp.expand(ei, r.Pair, func(nodes []graph.NodeID, edgeScores []float64) {
			if d.stats != nil {
				d.stats.Candidates++
			}
			if !d.spec.keepTuple(nodes) {
				return
			}
			key := answerKey(nodes)
			if _, dup := d.seen[key]; dup {
				return
			}
			d.seen[key] = struct{}{}
			tuple := make([]graph.NodeID, len(nodes))
			copy(tuple, nodes)
			d.cand.Set(key, d.spec.Agg.Combine(edgeScores), Answer{Nodes: tuple})
		})
	}
}

// Release implements TupleStream.
func (d *pbrjStream) Release() {
	if d.released {
		return
	}
	d.released = true
	releaseSources(d.srcs)
	if d.stats != nil && d.ctrs != nil {
		d.stats.addCounters(d.ctrs)
	}
}

// drainTuples pulls up to k answers from a stream — the batch entry
// points' run-to-k loop. Errors discard the partial drain: Run contracts
// return (nil, err).
func drainTuples(st TupleStream, k int) ([]Answer, error) {
	out, err := join2.Drain(k, st.Next)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// listTupleStream emits a fully materialized ranking — NL's stream form
// (nothing about brute-force enumeration is incremental, so the whole
// ranking is computed up front and then replayed).
type listTupleStream struct {
	answers []Answer
	pos     int
}

func (s *listTupleStream) Next() (Answer, bool, error) {
	if s.pos >= len(s.answers) {
		return Answer{}, false, nil
	}
	a := s.answers[s.pos]
	s.pos++
	return a, true, nil
}

func (s *listTupleStream) Release() {}
