// Package core implements the paper's primary contribution: the top-k
// multi-way (n-way) join over discounted hitting time (Definition 4) and its
// four evaluation algorithms — the Nested Loop and All Pairs baselines
// (§III-B) and the Partial Join family PJ / PJ-i (Algorithm 1, §VI-D).
package core

import (
	"fmt"

	"repro/internal/graph"
)

// QEdge is a directed query-graph edge between node-set positions: the DHT
// score h(r_From, r_To) of the joined tuple's nodes at those positions
// contributes one input to the aggregate f.
type QEdge struct {
	From, To int
}

// QueryGraph is the unweighted directed graph Q of Definition 1: vertices are
// the n node sets R_1..R_n (held by position), edges dictate which node pairs
// of a candidate answer are scored.
type QueryGraph struct {
	sets  []*graph.NodeSet
	edges []QEdge
}

// NewQueryGraph creates a query graph over the given node sets and no edges.
func NewQueryGraph(sets ...*graph.NodeSet) *QueryGraph {
	return &QueryGraph{sets: sets}
}

// AddEdge appends the directed edge (from, to); positions index the node-set
// list. Self-loops and duplicates are rejected by Validate.
func (q *QueryGraph) AddEdge(from, to int) *QueryGraph {
	q.edges = append(q.edges, QEdge{from, to})
	return q
}

// NumSets returns n, the number of node sets.
func (q *QueryGraph) NumSets() int { return len(q.sets) }

// Set returns the node set at position i.
func (q *QueryGraph) Set(i int) *graph.NodeSet { return q.sets[i] }

// Edges returns the query edges. The slice must not be modified.
func (q *QueryGraph) Edges() []QEdge { return q.edges }

// Validate checks Definition 1 plus the connectivity the candidate expansion
// requires: at least two non-empty node sets, in-range distinct edge
// endpoints, no duplicate edges, every set touched by an edge, and a
// connected edge structure (treating edges as undirected).
func (q *QueryGraph) Validate(g *graph.Graph) error {
	if len(q.sets) < 2 {
		return fmt.Errorf("core: query graph needs >= 2 node sets, got %d", len(q.sets))
	}
	if len(q.edges) == 0 {
		return fmt.Errorf("core: query graph has no edges")
	}
	for i, s := range q.sets {
		if s == nil || s.Len() == 0 {
			return fmt.Errorf("core: node set %d is empty", i)
		}
		if g != nil {
			if err := s.Validate(g); err != nil {
				return err
			}
		}
	}
	seen := make(map[QEdge]struct{}, len(q.edges))
	touched := make([]bool, len(q.sets))
	for _, e := range q.edges {
		if e.From < 0 || e.From >= len(q.sets) || e.To < 0 || e.To >= len(q.sets) {
			return fmt.Errorf("core: query edge (%d,%d) out of range [0,%d)", e.From, e.To, len(q.sets))
		}
		if e.From == e.To {
			return fmt.Errorf("core: query edge (%d,%d) is a self-loop", e.From, e.To)
		}
		if _, dup := seen[e]; dup {
			return fmt.Errorf("core: duplicate query edge (%d,%d)", e.From, e.To)
		}
		seen[e] = struct{}{}
		touched[e.From], touched[e.To] = true, true
	}
	for i, t := range touched {
		if !t {
			return fmt.Errorf("core: node set %d (%s) is not connected to any query edge", i, q.sets[i].Name)
		}
	}
	// Connectivity over the undirected skeleton.
	adj := make([][]int, len(q.sets))
	for _, e := range q.edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	visited := make([]bool, len(q.sets))
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != len(q.sets) {
		return fmt.Errorf("core: query graph is disconnected (%d of %d sets reachable)", count, len(q.sets))
	}
	return nil
}

// MaxAnswers returns the candidate-space size Π|R_i|, saturating at MaxInt to
// avoid overflow for large inputs.
func (q *QueryGraph) MaxAnswers() int {
	const maxInt = int(^uint(0) >> 1)
	total := 1
	for _, s := range q.sets {
		if s.Len() != 0 && total > maxInt/s.Len() {
			return maxInt
		}
		total *= s.Len()
	}
	return total
}

// Chain builds the paper's chain query graph (Figure 2(b)) over the sets:
// R_1 → R_2 → … → R_n.
func Chain(sets ...*graph.NodeSet) *QueryGraph {
	q := NewQueryGraph(sets...)
	for i := 0; i+1 < len(sets); i++ {
		q.AddEdge(i, i+1)
	}
	return q
}

// Triangle builds the paper's triangle query graph (Figure 2(a)) over three
// sets, with both directions on every side (the paper's single line denotes
// two opposite edges).
func Triangle(a, b, c *graph.NodeSet) *QueryGraph {
	q := NewQueryGraph(a, b, c)
	q.AddEdge(0, 1).AddEdge(1, 0)
	q.AddEdge(1, 2).AddEdge(2, 1)
	q.AddEdge(0, 2).AddEdge(2, 0)
	return q
}

// Star builds the paper's star query graph (Figure 2(c)): directed edges from
// every leaf to the centre set (position 0).
func Star(centre *graph.NodeSet, leaves ...*graph.NodeSet) *QueryGraph {
	sets := append([]*graph.NodeSet{centre}, leaves...)
	q := NewQueryGraph(sets...)
	for i := 1; i < len(sets); i++ {
		q.AddEdge(i, 0)
	}
	return q
}

// Clique builds the complete directed query graph over the sets (both
// directions between every pair).
func Clique(sets ...*graph.NodeSet) *QueryGraph {
	q := NewQueryGraph(sets...)
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			q.AddEdge(i, j).AddEdge(j, i)
		}
	}
	return q
}
