package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dht"
	"repro/internal/join2"
)

// edgeSource streams the 2-way join results of one query edge in descending
// score order — it is exactly a join2.Stream. Implementations differ in how
// the stream is produced: a fully materialized list (AP), repeated
// from-scratch top-(m+i) joins (PJ, join2.NewRejoinStream), or the
// incremental F structure (PJ-i, join2.NewIncrementalStream).
type edgeSource = join2.Stream

// buildSources constructs one edgeSource per query edge via build and primes
// each (runs its initial top-m batch), priming concurrently when the spec
// enables workers — the initial joins of PJ/PJ-i and the all-pairs
// materialization of AP are the dominant per-edge costs, and they are
// independent across edges. The edge-level fan-out is bounded by the
// resolved worker count (a semaphore), so Spec.Workers caps this level's
// goroutines too. counters is threaded into every edge's join config.
//
// On any error the already-built sources are released, so a caller-owned
// engine pool (Spec.Pool) gets every checked-out engine back even when a
// later edge fails.
func buildSources(spec *Spec, counters *dht.Counters, build func(cfg join2.Config) (edgeSource, error)) ([]edgeSource, error) {
	edges := spec.Query.Edges()
	srcs := make([]edgeSource, len(edges))
	errs := make([]error, len(edges))
	mk := func(ei int) {
		// A panic here would cross a goroutine boundary on the concurrent
		// path and kill the process; recover it into the edge's error slot so
		// the release sweep below still returns every pooled engine.
		defer func() {
			if p := recover(); p != nil {
				errs[ei] = fmt.Errorf("core: panic priming edge source %d: %v", ei, p)
			}
		}()
		srcs[ei], errs[ei] = build(edgeConfig(spec, edges[ei], counters))
		if errs[ei] != nil {
			return
		}
		if p, ok := srcs[ei].(join2.Primer); ok {
			errs[ei] = p.Prime()
		}
	}
	w := spec.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 1 && len(edges) > 1 {
		sem := make(chan struct{}, w)
		var wg sync.WaitGroup
		for ei := range edges {
			wg.Add(1)
			sem <- struct{}{}
			go func(ei int) {
				defer wg.Done()
				defer func() { <-sem }()
				mk(ei)
			}(ei)
		}
		wg.Wait()
	} else {
		for ei := range edges {
			mk(ei)
		}
	}
	for _, err := range errs {
		if err != nil {
			releaseSources(srcs)
			return nil, err
		}
	}
	return srcs, nil
}

// releaseSources returns every source's pooled resources; nil entries (from
// a failed build) are skipped.
func releaseSources(srcs []edgeSource) {
	for _, s := range srcs {
		if s != nil {
			s.Release()
		}
	}
}

// listSource streams a fully materialized, descending-sorted result list —
// the AP strategy, where every pair of the edge's node sets has been scored
// up front.
type listSource struct {
	list []join2.Result
	pos  int
}

func (s *listSource) Next() (join2.Result, bool, error) {
	if s.pos >= len(s.list) {
		return join2.Result{}, false, nil
	}
	r := s.list[s.pos]
	s.pos++
	return r, true, nil
}

// Release implements join2.Stream; a materialized list holds no engines.
func (s *listSource) Release() {}
