package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dht"
	"repro/internal/join2"
)

// buildSources constructs one edgeSource per query edge via build, running
// the constructions concurrently when the spec enables workers — the initial
// top-m joins of PJ/PJ-i and the all-pairs materialization of AP are the
// dominant per-edge costs, and they are independent across edges. The
// edge-level fan-out is bounded by the resolved worker count (a semaphore),
// so Spec.Workers caps this level's goroutines too. counters is threaded
// into every edge's join config.
func buildSources(spec *Spec, counters *dht.Counters, build func(cfg join2.Config) (edgeSource, error)) ([]edgeSource, error) {
	edges := spec.Query.Edges()
	srcs := make([]edgeSource, len(edges))
	errs := make([]error, len(edges))
	mk := func(ei int) {
		srcs[ei], errs[ei] = build(edgeConfig(spec, edges[ei], counters))
	}
	w := spec.Workers
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > 1 && len(edges) > 1 {
		sem := make(chan struct{}, w)
		var wg sync.WaitGroup
		for ei := range edges {
			wg.Add(1)
			sem <- struct{}{}
			go func(ei int) {
				defer wg.Done()
				defer func() { <-sem }()
				mk(ei)
			}(ei)
		}
		wg.Wait()
	} else {
		for ei := range edges {
			mk(ei)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return srcs, nil
}

// releaser is implemented by edge sources that hold pooled engines; the
// algorithms release their sources after the PBRJ drive so a caller-owned
// pool (Spec.Pool) gets its scratch back between requests.
type releaser interface{ release() }

// releaseSources returns every source's pooled resources.
func releaseSources(srcs []edgeSource) {
	for _, s := range srcs {
		if r, ok := s.(releaser); ok {
			r.release()
		}
	}
}

// listSource streams a fully materialized, descending-sorted result list —
// the AP strategy, where every pair of the edge's node sets has been scored
// up front.
type listSource struct {
	list []join2.Result
	pos  int
}

func (s *listSource) next() (join2.Result, bool, error) {
	if s.pos >= len(s.list) {
		return join2.Result{}, false, nil
	}
	r := s.list[s.pos]
	s.pos++
	return r, true, nil
}

// rejoinSource is PJ's edge stream: an initial top-m join, then — whenever
// the list runs dry — a from-scratch top-(m+1), top-(m+2), … join, keeping
// only the newly exposed last pair (Algorithm 1, steps 9–10, implemented "by
// simply running a top-(m+1) join"). Deliberately wasteful: this is the cost
// PJ-i removes.
type rejoinSource struct {
	joiner    join2.Joiner
	maxPairs  int
	m         int
	list      []join2.Result
	pos       int
	refetches *int64
}

// release returns the joiner's pooled engines (see releaser).
func (s *rejoinSource) release() {
	if r, ok := s.joiner.(interface{ Release() }); ok {
		r.Release()
	}
}

func newRejoinSource(j join2.Joiner, m, maxPairs int, refetches *int64) (*rejoinSource, error) {
	if m < 0 {
		return nil, fmt.Errorf("core: negative m %d", m)
	}
	s := &rejoinSource{joiner: j, maxPairs: maxPairs, m: m, refetches: refetches}
	if m > 0 {
		list, err := j.TopK(min(m, maxPairs))
		if err != nil {
			return nil, err
		}
		s.list = list
	}
	return s, nil
}

func (s *rejoinSource) next() (join2.Result, bool, error) {
	if s.pos < len(s.list) {
		r := s.list[s.pos]
		s.pos++
		return r, true, nil
	}
	if len(s.list) >= s.maxPairs {
		return join2.Result{}, false, nil
	}
	// Re-run the 2-way join from scratch for one more result.
	s.m = len(s.list) + 1
	if s.refetches != nil {
		*s.refetches++
	}
	list, err := s.joiner.TopK(s.m)
	if err != nil {
		return join2.Result{}, false, err
	}
	s.list = list
	if s.pos >= len(s.list) {
		return join2.Result{}, false, nil
	}
	r := s.list[s.pos]
	s.pos++
	return r, true, nil
}

// incSource is PJ-i's edge stream: the initial top-m join populates the F
// structure, after which each additional pair is produced incrementally
// (§VI-D).
type incSource struct {
	inc       *join2.Incremental
	list      []join2.Result
	pos       int
	refetches *int64
}

// release returns the incremental state's pooled engine (see releaser).
func (s *incSource) release() { s.inc.Release() }

func newIncSource(inc *join2.Incremental, m int, refetches *int64) (*incSource, error) {
	list, err := inc.Run(m)
	if err != nil {
		return nil, err
	}
	return &incSource{inc: inc, list: list, refetches: refetches}, nil
}

func (s *incSource) next() (join2.Result, bool, error) {
	if s.pos < len(s.list) {
		r := s.list[s.pos]
		s.pos++
		return r, true, nil
	}
	if s.refetches != nil {
		*s.refetches++
	}
	r, ok, err := s.inc.Next()
	if err != nil || !ok {
		return join2.Result{}, ok, err
	}
	return r, true, nil
}
