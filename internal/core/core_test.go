package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/rankjoin"
)

// testWorld builds a small community graph with three planted node sets.
func testWorld(t testing.TB, seed int64, sizes ...int) (*graph.Graph, []*graph.NodeSet) {
	t.Helper()
	if len(sizes) == 0 {
		sizes = []int{12, 12, 12}
	}
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: sizes, PIn: 0.3, POut: 0.1, Seed: seed, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets
}

func chainSpec(g *graph.Graph, sets []*graph.NodeSet, agg rankjoin.Aggregate, k int) Spec {
	return Spec{
		Graph:  g,
		Query:  Chain(sets...),
		Params: dht.DHTLambda(0.2),
		D:      8,
		Agg:    agg,
		K:      k,
	}
}

// assertSameAnswers compares ranked answer lists by score sequence and by
// tuple set modulo equal-score permutation.
func assertSameAnswers(t *testing.T, name string, got, want []Answer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", name, len(got), len(want))
	}
	const tol = 1e-9
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > tol {
			t.Fatalf("%s: rank %d score %v, want %v", name, i, got[i].Score, want[i].Score)
		}
	}
	wantKeys := make(map[string]float64, len(want))
	for _, a := range want {
		wantKeys[answerKey(a.Nodes)] = a.Score
	}
	for _, a := range got {
		if ws, ok := wantKeys[answerKey(a.Nodes)]; ok {
			if math.Abs(ws-a.Score) > tol {
				t.Fatalf("%s: tuple %v score %v vs reference %v", name, a.Nodes, a.Score, ws)
			}
			continue
		}
		// Tuple differs: acceptable only on an equal-score boundary.
		tied := false
		for _, w := range wantKeys {
			if math.Abs(w-a.Score) <= tol {
				tied = true
				break
			}
		}
		if !tied {
			t.Fatalf("%s: tuple %v (score %v) missing from reference", name, a.Nodes, a.Score)
		}
	}
}

func allAlgorithms(t *testing.T, spec Spec, m int) []Algorithm {
	t.Helper()
	nl, err := NewNL(spec)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewAP(spec)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := NewPJ(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	pji, err := NewPJI(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	return []Algorithm{nl, ap, pj, pji}
}

// TestNWayAlgorithmsAgree is the central n-way equivalence test: NL, AP, PJ,
// and PJ-i must all match the brute-force join, for chain and triangle query
// graphs under both MIN and SUM.
func TestNWayAlgorithmsAgree(t *testing.T) {
	g, sets := testWorld(t, 7, 8, 8, 8)
	for _, agg := range []rankjoin.Aggregate{rankjoin.Min, rankjoin.Sum} {
		for _, q := range []*QueryGraph{Chain(sets...), Triangle(sets[0], sets[1], sets[2])} {
			spec := Spec{Graph: g, Query: q, Params: dht.DHTLambda(0.2), D: 8, Agg: agg, K: 10}
			want, err := bruteForceJoin(&spec, spec.K)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range allAlgorithms(t, spec, 5) {
				got, err := alg.Run()
				if err != nil {
					t.Fatalf("%s: %v", alg.Name(), err)
				}
				assertSameAnswers(t, alg.Name()+"/"+agg.Name(), got, want)
			}
		}
	}
}

// TestPJSmallM forces heavy getNextNodePair traffic: with m=0 every pair must
// be fetched incrementally, and results must still match.
func TestPJSmallM(t *testing.T) {
	g, sets := testWorld(t, 11, 7, 7)
	spec := chainSpec(g, sets[:2], rankjoin.Min, 8)
	want, err := bruteForceJoin(&spec, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := NewPJ(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pj.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "PJ(m=0)", got, want)
	if pj.Stats.Refetches == 0 {
		t.Fatal("m=0 run performed no refetches")
	}

	pji, err := NewPJI(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err = pji.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, "PJ-i(m=0)", got, want)
}

// TestPJLargeM: when m covers the whole candidate space, no refetches happen.
func TestPJLargeM(t *testing.T) {
	g, sets := testWorld(t, 13, 6, 6)
	spec := chainSpec(g, sets[:2], rankjoin.Min, 5)
	pj, err := NewPJ(spec, 36)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pj.Run(); err != nil {
		t.Fatal(err)
	}
	if pj.Stats.Refetches != 0 {
		t.Fatalf("refetches = %d with exhaustive m", pj.Stats.Refetches)
	}
}

func TestKLargerThanAnswerSpace(t *testing.T) {
	g, sets := testWorld(t, 17, 4, 4)
	spec := chainSpec(g, sets[:2], rankjoin.Sum, 100)
	want, err := bruteForceJoin(&spec, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms(t, spec, 5) {
		got, err := alg.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if len(got) != 16 {
			t.Fatalf("%s: %d answers, want full space 16", alg.Name(), len(got))
		}
		assertSameAnswers(t, alg.Name(), got, want)
	}
}

func TestStarAndCliqueQueries(t *testing.T) {
	g, sets := testWorld(t, 23, 6, 6, 6, 6)
	for _, q := range []*QueryGraph{
		Star(sets[0], sets[1], sets[2], sets[3]),
		Clique(sets[0], sets[1], sets[2]),
	} {
		spec := Spec{Graph: g, Query: q, Params: dht.DHTLambda(0.2), D: 8, Agg: rankjoin.Min, K: 5}
		want, err := bruteForceJoin(&spec, spec.K)
		if err != nil {
			t.Fatal(err)
		}
		pji, err := NewPJI(spec, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pji.Run()
		if err != nil {
			t.Fatal(err)
		}
		assertSameAnswers(t, "PJ-i", got, want)
	}
}

func TestQueryGraphValidate(t *testing.T) {
	g, sets := testWorld(t, 1, 5, 5, 5)
	cases := []struct {
		name string
		q    *QueryGraph
	}{
		{"one set", NewQueryGraph(sets[0])},
		{"no edges", NewQueryGraph(sets[0], sets[1])},
		{"self loop", NewQueryGraph(sets[0], sets[1]).AddEdge(0, 0).AddEdge(0, 1)},
		{"dup edge", NewQueryGraph(sets[0], sets[1]).AddEdge(0, 1).AddEdge(0, 1)},
		{"range", NewQueryGraph(sets[0], sets[1]).AddEdge(0, 5)},
		{"untouched set", NewQueryGraph(sets[0], sets[1], sets[2]).AddEdge(0, 1)},
		{"disconnected", func() *QueryGraph {
			q := NewQueryGraph(sets[0], sets[1], sets[2], sets[0])
			return q.AddEdge(0, 1).AddEdge(2, 3)
		}()},
		{"empty set", NewQueryGraph(sets[0], graph.NewNodeSet("E", nil)).AddEdge(0, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.q.Validate(g) == nil {
				t.Fatal("invalid query graph accepted")
			}
		})
	}
	if err := Chain(sets...).Validate(g); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if err := Triangle(sets[0], sets[1], sets[2]).Validate(g); err != nil {
		t.Fatalf("valid triangle rejected: %v", err)
	}
}

func TestSpecValidate(t *testing.T) {
	g, sets := testWorld(t, 2, 5, 5)
	good := chainSpec(g, sets[:2], rankjoin.Min, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []func(s *Spec){
		func(s *Spec) { s.Graph = nil },
		func(s *Spec) { s.Query = nil },
		func(s *Spec) { s.Params.Lambda = 0 },
		func(s *Spec) { s.D = 0 },
		func(s *Spec) { s.Agg = nil },
		func(s *Spec) { s.K = 0 },
	}
	for i, mut := range cases {
		s := good
		mut(&s)
		if s.Validate() == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
		if _, err := NewPJ(s, 5); err == nil {
			t.Fatalf("case %d: PJ constructed from invalid spec", i)
		}
	}
	if _, err := NewPJ(good, -1); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := NewPJI(good, -1); err == nil {
		t.Fatal("negative m accepted by PJ-i")
	}
}

func TestQueryGraphBuilders(t *testing.T) {
	g, sets := testWorld(t, 3, 4, 4, 4, 4)
	if q := Chain(sets...); len(q.Edges()) != 3 {
		t.Fatalf("chain edges = %d", len(q.Edges()))
	}
	if q := Triangle(sets[0], sets[1], sets[2]); len(q.Edges()) != 6 {
		t.Fatalf("triangle edges = %d", len(q.Edges()))
	}
	if q := Star(sets[0], sets[1:]...); len(q.Edges()) != 3 || q.NumSets() != 4 {
		t.Fatalf("star shape wrong")
	}
	if q := Clique(sets...); len(q.Edges()) != 12 {
		t.Fatalf("clique edges = %d", len(q.Edges()))
	}
	_ = g
}

func TestMaxAnswersSaturates(t *testing.T) {
	huge := graph.NewNodeSet("H", make([]graph.NodeID, 0))
	ids := make([]graph.NodeID, 100000)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	huge = graph.NewNodeSet("H", ids)
	q := NewQueryGraph(huge, huge, huge, huge, huge)
	for i := 0; i+1 < 5; i++ {
		q.AddEdge(i, i+1)
	}
	const maxInt = int(^uint(0) >> 1)
	if got := q.MaxAnswers(); got != maxInt {
		t.Fatalf("MaxAnswers = %d, want saturation", got)
	}
}

func TestAnswerFormat(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	b.SetLabel(0, "Ada")
	g := b.Build()
	a := Answer{Nodes: []graph.NodeID{0, 1}, Score: 0.5}
	got := a.Format(g)
	if got != "(Ada, 1) f=0.500000" {
		t.Fatalf("Format = %q", got)
	}
}

func TestTwoWayKindString(t *testing.T) {
	kinds := []TwoWayKind{TwoWayFBJ, TwoWayBBJ, TwoWayFIDJ, TwoWayBIDJX, TwoWayBIDJY}
	names := []string{"F-BJ", "B-BJ", "F-IDJ", "B-IDJ-X", "B-IDJ-Y"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Fatalf("kind %d = %q, want %q", i, k.String(), names[i])
		}
	}
	if TwoWayKind(99).String() == "" {
		t.Fatal("unknown kind renders empty")
	}
	if _, err := TwoWayKind(99).newJoiner(join2.Config{}); err == nil {
		t.Fatal("unknown kind built a joiner")
	}
}

// TestNWayProperty: random small worlds, random aggregate, PJ-i must match
// brute force.
func TestNWayProperty(t *testing.T) {
	f := func(seed int64, rawAgg uint8, rawK uint8) bool {
		g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
			Sizes: []int{6, 6, 6}, PIn: 0.35, POut: 0.12, Seed: seed, MinOutLink: 1,
		})
		if err != nil {
			return false
		}
		aggs := []rankjoin.Aggregate{rankjoin.Min, rankjoin.Sum, rankjoin.Max, rankjoin.Avg}
		spec := Spec{
			Graph:  g,
			Query:  Chain(sets...),
			Params: dht.DHTLambda(0.3),
			D:      8,
			Agg:    aggs[int(rawAgg)%len(aggs)],
			K:      1 + int(rawK)%12,
		}
		want, err := bruteForceJoin(&spec, spec.clampK())
		if err != nil {
			return false
		}
		pji, err := NewPJI(spec, 4)
		if err != nil {
			return false
		}
		got, err := pji.Run()
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctFiltersSelfTuples: with overlapping node sets, Distinct must
// remove tuples reusing a node, and all algorithms must agree on the result.
func TestDistinctFiltersSelfTuples(t *testing.T) {
	g, sets := testWorld(t, 29, 8, 8)
	// Overlap: both sets share their first four nodes.
	shared := append(append([]graph.NodeID{}, sets[0].Nodes()[:4]...), sets[1].Nodes()...)
	overlapping := graph.NewNodeSet("B+", shared)
	spec := Spec{
		Graph:    g,
		Query:    Chain(sets[0], overlapping),
		Params:   dht.DHTLambda(0.2),
		D:        8,
		Agg:      rankjoin.Min,
		K:        10,
		Distinct: true,
	}
	want, err := bruteForceJoin(&spec, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if w.Nodes[0] == w.Nodes[1] {
			t.Fatal("brute force kept a self tuple under Distinct")
		}
	}
	for _, alg := range allAlgorithms(t, spec, 5) {
		got, err := alg.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for _, a := range got {
			if a.Nodes[0] == a.Nodes[1] {
				t.Fatalf("%s returned self tuple %v", alg.Name(), a.Nodes)
			}
		}
		assertSameAnswers(t, alg.Name()+"/distinct", got, want)
	}
	// Sanity: without Distinct, the self tuples top the ranking (score 0).
	spec.Distinct = false
	plain, err := bruteForceJoin(&spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Nodes[0] != plain[0].Nodes[1] || plain[0].Score != 0 {
		t.Fatalf("expected self tuple at rank 1 without Distinct, got %v", plain[0])
	}
}

// TestAlternateTwoWayKinds: PJ and AP must return the same answers no
// matter which 2-way join algorithm backs them.
func TestAlternateTwoWayKinds(t *testing.T) {
	g, sets := testWorld(t, 43, 7, 7)
	spec := chainSpec(g, sets[:2], rankjoin.Min, 6)
	want, err := bruteForceJoin(&spec, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []TwoWayKind{TwoWayFBJ, TwoWayBBJ, TwoWayFIDJ, TwoWayBIDJX, TwoWayBIDJY} {
		pj, err := NewPJWith(spec, 5, kind)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pj.Run()
		if err != nil {
			t.Fatalf("PJ/%s: %v", kind, err)
		}
		assertSameAnswers(t, "PJ/"+kind.String(), got, want)

		ap, err := NewAPWith(spec, kind)
		if err != nil {
			t.Fatal(err)
		}
		got, err = ap.Run()
		if err != nil {
			t.Fatalf("AP/%s: %v", kind, err)
		}
		assertSameAnswers(t, "AP/"+kind.String(), got, want)
	}
}

// TestNWayOverPPR extends the n-way equivalence to the reach measure: all
// four algorithms joined over Personalized PageRank must match brute force.
func TestNWayOverPPR(t *testing.T) {
	g, sets := testWorld(t, 37, 7, 7, 7)
	params := dht.PPR(0.5)
	spec := Spec{
		Graph:   g,
		Query:   Chain(sets...),
		Params:  params,
		D:       params.StepsForEpsilon(1e-7),
		Agg:     rankjoin.Min,
		K:       8,
		Measure: dht.Reach,
	}
	want, err := bruteForceJoin(&spec, spec.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range allAlgorithms(t, spec, 5) {
		got, err := alg.Run()
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		assertSameAnswers(t, alg.Name()+"/ppr", got, want)
	}
}

// TestRandomQueryTopologies: PJ-i must match brute force on randomly shaped
// connected query graphs, not just the chain/triangle/star templates.
func TestRandomQueryTopologies(t *testing.T) {
	f := func(seed int64, rawEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
			Sizes: []int{6, 6, 6, 6}, PIn: 0.35, POut: 0.15, Seed: seed, MinOutLink: 1,
		})
		if err != nil {
			return false
		}
		n := 3 + int(rawEdges)%2 // 3 or 4 node sets
		q := NewQueryGraph(sets[:n]...)
		// Spanning tree first (guarantees connectivity), then random extras.
		perm := rng.Perm(n)
		type qe struct{ a, b int }
		used := map[qe]bool{}
		addEdge := func(a, b int) {
			if a == b || used[qe{a, b}] {
				return
			}
			used[qe{a, b}] = true
			q.AddEdge(a, b)
		}
		for i := 1; i < n; i++ {
			a, b := perm[rng.Intn(i)], perm[i]
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			addEdge(a, b)
		}
		extra := int(rawEdges) % 4
		for i := 0; i < extra; i++ {
			addEdge(rng.Intn(n), rng.Intn(n))
		}
		spec := Spec{
			Graph:  g,
			Query:  q,
			Params: dht.DHTLambda(0.25),
			D:      8,
			Agg:    rankjoin.Min,
			K:      6,
		}
		want, err := bruteForceJoin(&spec, spec.K)
		if err != nil {
			return false
		}
		pji, err := NewPJI(spec, 4)
		if err != nil {
			return false
		}
		got, err := pji.Run()
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestAggregateOverDirectedEdges: DHT is asymmetric and the query edge
// direction must be honored.
func TestAggregateOverDirectedEdges(t *testing.T) {
	// DHT is asymmetric: (0→1) and (1→0) edges must give different scores on
	// a directed graph, and the query edge direction must be honored.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(1, 0, 1) // extra arc making h(0→1) ≠ h(1→0)
	g := b.Build()
	p := graph.NewNodeSet("P", []graph.NodeID{0})
	q := graph.NewNodeSet("Q", []graph.NodeID{1})
	fwd := Spec{Graph: g, Query: NewQueryGraph(p, q).AddEdge(0, 1), Params: dht.DHTLambda(0.5), D: 8, Agg: rankjoin.Sum, K: 1}
	rev := Spec{Graph: g, Query: NewQueryGraph(p, q).AddEdge(1, 0), Params: dht.DHTLambda(0.5), D: 8, Agg: rankjoin.Sum, K: 1}
	af, err := NewAP(fwd)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := NewAP(rev)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := af.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ar.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rf[0].Score-rr[0].Score) < 1e-9 {
		t.Fatalf("direction ignored: both %v", rf[0].Score)
	}
}
