package core

import (
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/pqueue"
)

// NL is the Nested Loop baseline (§III-B): it enumerates the full candidate
// space Π|R_i| with n nested loops and evaluates every edge's DHT score with
// a fresh forward walk for every candidate answer — no sharing, no pruning.
// It exists to anchor the evaluation; it is infeasible beyond tiny inputs
// (the paper could not complete it for n ≥ 3).
type NL struct {
	spec  Spec
	Stats RunStats
}

// NewNL validates the spec and returns the algorithm.
func NewNL(spec Spec) (*NL, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &NL{spec: spec}, nil
}

// Name implements Algorithm.
func (a *NL) Name() string { return "NL" }

// Run implements Algorithm.
func (a *NL) Run() ([]Answer, error) {
	return a.rank(a.spec.clampK())
}

// Stream returns the rank-ordered answer stream. Nothing about brute-force
// enumeration is incremental, so the entire ranking (the full candidate
// space — O(Π|R_i|) memory) is computed up front and replayed; NL streams
// exist for interface completeness, not latency.
func (a *NL) Stream() (TupleStream, error) {
	answers, err := a.rank(a.spec.Query.MaxAnswers())
	if err != nil {
		return nil, err
	}
	return &listTupleStream{answers: answers}, nil
}

// rank enumerates the candidate space and keeps the k best. Ties are broken
// by insertion order (the odometer enumeration), which is deterministic, so
// the top-k ranking is always a prefix of the top-(k+1) ranking — the
// prefix invariant Stream relies on.
func (a *NL) rank(k int) ([]Answer, error) {
	e, err := dht.NewEngine(a.spec.Graph, a.spec.Params, a.spec.D)
	if err != nil {
		return nil, err
	}
	q := a.spec.Query
	n := q.NumSets()
	out := pqueue.NewTopK[Answer](k)

	idx := make([]int, n) // odometer over the node sets
	tuple := make([]graph.NodeID, n)
	edgeScores := make([]float64, len(q.Edges()))
	for {
		for i := 0; i < n; i++ {
			tuple[i] = q.Set(i).Nodes()[idx[i]]
		}
		if a.spec.keepTuple(tuple) {
			for ei, qe := range q.Edges() {
				edgeScores[ei] = e.ForwardScoreKind(a.spec.Measure, tuple[qe.From], tuple[qe.To], a.spec.D)
			}
			a.Stats.Candidates++
			cp := make([]graph.NodeID, n)
			copy(cp, tuple)
			out.Add(Answer{Nodes: cp}, a.spec.Agg.Combine(edgeScores))
		}

		// Advance the odometer.
		pos := n - 1
		for pos >= 0 {
			idx[pos]++
			if idx[pos] < q.Set(pos).Len() {
				break
			}
			idx[pos] = 0
			pos--
		}
		if pos < 0 {
			break
		}
	}
	a.Stats.DHTWalks, a.Stats.DHTEdgeSweeps, a.Stats.DHTFrontierEdges = e.Walks, e.EdgeSweeps, e.FrontierEdges

	answers, scores := out.Sorted()
	for i := range answers {
		answers[i].Score = scores[i]
	}
	return answers, nil
}
