package core

import (
	"testing"

	"repro/internal/dht"
	"repro/internal/rankjoin"
)

// streamer is the Stream face shared by all four n-way algorithms.
type streamer interface {
	Stream() (TupleStream, error)
}

// nwayStreamers instantiates the streaming form of every n-way algorithm.
func nwayStreamers(t *testing.T, spec Spec, m int) map[string]streamer {
	t.Helper()
	nl, err := NewNL(spec)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := NewAP(spec)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := NewPJ(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	pji, err := NewPJI(spec, m)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]streamer{"NL": nl, "AP": ap, "PJ": pj, "PJ-i": pji}
}

// TestTupleStreamPrefixEquivalence: for every n-way algorithm, the first m
// streamed answers must be bit-identical (same tuples, same float64 scores,
// same order) to a one-shot top-m Run — the n-way acceptance property.
func TestTupleStreamPrefixEquivalence(t *testing.T) {
	g, sets := testWorld(t, 11, 7, 7, 7)
	spec := chainSpec(g, sets[:3], rankjoin.Min, 1)
	for name, alg := range nwayStreamers(t, spec, 5) {
		st, err := alg.Stream()
		if err != nil {
			t.Fatal(err)
		}
		var streamed []Answer
		for {
			a, ok, err := st.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			streamed = append(streamed, a)
		}
		st.Release()
		if len(streamed) == 0 {
			t.Fatalf("%s: empty stream", name)
		}
		for _, m := range []int{1, 3, 10, len(streamed)} {
			if m > len(streamed) {
				continue
			}
			// A fresh algorithm value per prefix: Run and Stream share
			// per-run state (Stats, the PJ-i memo), so the reference run
			// must not inherit the drained stream's.
			ms := spec
			ms.K = m
			var (
				want []Answer
				err  error
			)
			switch name {
			case "NL":
				ref, _ := NewNL(ms)
				want, err = ref.Run()
			case "AP":
				ref, _ := NewAP(ms)
				want, err = ref.Run()
			case "PJ":
				ref, _ := NewPJ(ms, 5)
				want, err = ref.Run()
			case "PJ-i":
				ref, _ := NewPJI(ms, 5)
				want, err = ref.Run()
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != m {
				t.Fatalf("%s: one-shot top-%d returned %d answers", name, m, len(want))
			}
			for i := range want {
				got := streamed[i]
				if got.Score != want[i].Score || answerKey(got.Nodes) != answerKey(want[i].Nodes) {
					t.Fatalf("%s m=%d rank %d: streamed %v (%v), one-shot %v (%v)",
						name, m, i, got.Nodes, got.Score, want[i].Nodes, want[i].Score)
				}
			}
		}
	}
}

// TestTupleStreamReleasesPool: abandoning a PJ-i stream mid-run must return
// every engine to a caller-owned pool, and Release must be idempotent.
func TestTupleStreamReleasesPool(t *testing.T) {
	g, sets := testWorld(t, 4, 8, 8, 8)
	spec := chainSpec(g, sets[:3], rankjoin.Min, 4)
	pool, err := dht.NewEnginePool(spec.Graph, spec.Params, spec.D)
	if err != nil {
		t.Fatal(err)
	}
	spec.Pool = pool
	for _, m := range []int{1, 5} {
		for name, alg := range nwayStreamers(t, spec, m) {
			if name == "NL" {
				continue // NL builds its own engine; nothing pooled
			}
			st, err := alg.Stream()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, err := st.Next(); err != nil || !ok {
				t.Fatalf("%s: first pull failed: ok=%v err=%v", name, ok, err)
			}
			st.Release()
			st.Release()
			if n := pool.Outstanding(); n != 0 {
				t.Fatalf("%s m=%d: %d engines still checked out after Release", name, m, n)
			}
		}
	}
}

// TestTupleStreamEarlyEmission: the incremental rank join must confirm the
// first answer without draining its sources completely — PairsPulled after
// one pull must be well below the full drain's.
func TestTupleStreamEarlyEmission(t *testing.T) {
	g, sets := testWorld(t, 9, 10, 10, 10)
	spec := chainSpec(g, sets[:3], rankjoin.Min, 1)
	alg, err := NewPJI(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := alg.Stream()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release()
	if _, ok, err := st.Next(); err != nil || !ok {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	afterFirst := alg.Stats.PairsPulled

	full, err := NewPJI(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := full.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := fs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	fs.Release()
	if afterFirst >= full.Stats.PairsPulled {
		t.Fatalf("first answer pulled %d pairs, full drain %d — no early emission",
			afterFirst, full.Stats.PairsPulled)
	}
}
