package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/rankjoin"
)

// Spec fully describes one n-way join query (Definition 4).
type Spec struct {
	Graph  *graph.Graph
	Query  *QueryGraph
	Params dht.Params
	D      int                // truncation depth (Equation 4)
	Agg    rankjoin.Aggregate // monotonic f over the |E_Q| edge scores
	K      int                // number of answers

	// Distinct drops candidate answers that use the same graph node in two
	// tuple positions. The paper's model allows such tuples (node sets may
	// overlap, and h(v,v) = 0 is the maximum DHTλ score, so they would
	// dominate); applications like Table III's expert triples usually want
	// them suppressed. This is a library extension, off by default.
	Distinct bool

	// Measure selects the step probability the score folds: the zero value
	// is the paper's first-hit DHT; dht.Reach joins over reach measures
	// such as Personalized PageRank (the paper's §VIII extension).
	Measure dht.Kind

	// Workers caps the goroutines the n-way algorithms may use: the
	// per-edge 2-way joins (and their initial top-m runs) execute
	// concurrently, and each backward joiner may spread its per-target
	// walks further. 0 and 1 run serially as in the paper; a negative
	// value selects GOMAXPROCS. Results are identical at any setting.
	Workers int

	// BatchWidth is the per-edge 2-way joins' batched-kernel column width
	// (join2.Config.BatchWidth): 0 selects the default width, 1 disables
	// batching. Results are identical at any setting.
	BatchWidth int

	// Pool, when non-nil, supplies the engines of every per-edge 2-way join
	// (join2.Config.Pool): the joins check engines out per call/round and the
	// algorithms return them after Run, so a long-lived owner (the serving
	// layer) shares one pool's scratch across requests. Must be built for
	// the same (Graph, Params, D); Validate rejects a mismatch.
	Pool *dht.EnginePool

	// Memo, when non-nil, is the shared score-column memo handed to every
	// per-edge 2-way join (join2.Config.Memo). ScoreMemo is concurrency-safe,
	// so the per-edge joins — which may run on worker goroutines — share it
	// directly; the caller binds it to this spec's (graph, params, d).
	Memo *dht.ScoreMemo

	// Counters, when non-nil, additionally receives every engine counter
	// increment of the run (chained behind the run-scoped counters that feed
	// RunStats), so a long-lived owner can keep process-lifetime walk totals.
	Counters *dht.Counters

	// Cancel, when non-nil, is polled at walk-round granularity by every
	// per-edge 2-way join (join2.Config.Cancel) and between refinement pulls
	// of the n-way drivers. A non-nil return aborts the run with that error.
	// Must be safe for concurrent use — per-edge joins may run on worker
	// goroutines — and cheap. Cancellation never corrupts state: answers
	// already emitted remain a correct ranking prefix.
	Cancel func() error

	// ScoreEps is the per-score uncertainty of the edge-score sources, and
	// makes the corner-bound (τ) machinery ε-aware: a candidate is emitted
	// only once its aggregate clears τ by the combined uncertainty — the
	// certification rule "a score gap smaller than the bounds proves
	// nothing". The built-in certified 2-way streams re-verify through the
	// bit-identical kernel and therefore emit *exact* scores, so the
	// resolved default stays 0; the knob exists for sources that feed raw
	// FastCertified scores into the rank join (set it to the kernel's
	// ScoreBound, aggregate-scaled by the caller).
	ScoreEps float64
}

// canceled polls the cancellation hook; nil hooks never cancel.
func (s *Spec) canceled() error {
	if s.Cancel == nil {
		return nil
	}
	return s.Cancel()
}

// keepTuple applies the Distinct filter.
func (s *Spec) keepTuple(nodes []graph.NodeID) bool {
	if !s.Distinct {
		return true
	}
	for i := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			if nodes[i] == nodes[j] {
				return false
			}
		}
	}
	return true
}

// Validate checks the whole specification.
func (s *Spec) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("core: spec has nil graph")
	}
	if s.Query == nil {
		return fmt.Errorf("core: spec has nil query graph")
	}
	if err := s.Query.Validate(s.Graph); err != nil {
		return err
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.D < 1 {
		return fmt.Errorf("core: depth d must be >= 1, got %d", s.D)
	}
	if s.Agg == nil {
		return fmt.Errorf("core: spec has nil aggregate")
	}
	if s.K <= 0 {
		return fmt.Errorf("core: k must be positive, got %d", s.K)
	}
	if p := s.Pool; p != nil && (p.G != s.Graph || p.Params != s.Params || p.D != s.D) {
		return fmt.Errorf("core: caller pool built for a different (graph, params, d) configuration")
	}
	if s.ScoreEps < 0 || math.IsNaN(s.ScoreEps) || math.IsInf(s.ScoreEps, 0) {
		return fmt.Errorf("core: score eps must be finite and >= 0, got %v", s.ScoreEps)
	}
	return nil
}

// runCounters returns the run-scoped counter sink for one Run invocation,
// chained to the spec's lifetime counters when set.
func (s *Spec) runCounters() *dht.Counters {
	return &dht.Counters{Chain: s.Counters}
}

// clampK limits k to the candidate-space size.
func (s *Spec) clampK() int {
	k := s.K
	if m := s.Query.MaxAnswers(); k > m {
		k = m
	}
	return k
}

// Answer is one result n-tuple: Nodes[i] ∈ R_i, Score = f(edge DHT scores).
type Answer struct {
	Nodes []graph.NodeID
	Score float64
}

// key serializes the tuple for deduplication.
func answerKey(nodes []graph.NodeID) string {
	var sb strings.Builder
	for i, n := range nodes {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(int(n)))
	}
	return sb.String()
}

// Format renders the answer using node labels when the graph has them.
func (a Answer) Format(g *graph.Graph) string {
	parts := make([]string, len(a.Nodes))
	for i, n := range a.Nodes {
		if l := g.Label(n); l != "" {
			parts[i] = l
		} else {
			parts[i] = strconv.Itoa(int(n))
		}
	}
	return fmt.Sprintf("(%s) f=%.6f", strings.Join(parts, ", "), a.Score)
}

// Algorithm is a complete n-way join evaluator.
type Algorithm interface {
	// Name identifies the algorithm ("NL", "AP", "PJ", "PJ-i") in reports.
	Name() string
	// Run evaluates the join and returns the top-k answers sorted by
	// descending score.
	Run() ([]Answer, error)
}

// RunStats describes the work performed by the last Run of an algorithm that
// exposes it.
type RunStats struct {
	PairsPulled      int64 // entries consumed from 2-way join streams
	Candidates       int64 // candidate answers generated (before dedup)
	Refetches        int64 // getNextNodePair invocations past the initial top-m
	DHTWalks         int64 // random-walk invocations in the DHT engine
	DHTEdgeSweeps    int64 // full O(|E|) dense relaxation sweeps in the DHT engine
	DHTFrontierEdges int64 // edges relaxed by sparse frontier pushes
}

// addCounters folds an engine-counter snapshot into the stats.
func (s *RunStats) addCounters(c *dht.Counters) {
	snap := c.Snapshot()
	s.DHTWalks += snap.Walks
	s.DHTEdgeSweeps += snap.EdgeSweeps
	s.DHTFrontierEdges += snap.FrontierEdges
}
