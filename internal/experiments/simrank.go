package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/rankjoin"
	"repro/internal/simrank"
)

// ExtensionSimRank exercises the second §VIII measure: a 3-way chain join
// over SimRank, evaluated through core.JoinLists on materialized per-edge
// rankings, compared against the DHT PJ-i join on the same subgraph.
// SimRank's dense fixed-point iteration is quadratic in nodes, so the
// workload is the subgraph induced by the three (trimmed) Yeast classes —
// which is itself the documented reason the paper's walk measures scale and
// SimRank does not.
func ExtensionSimRank(e *Env) (*Table, error) {
	d, err := e.Yeast()
	if err != nil {
		return nil, err
	}
	sets, err := e.sets(d, "3-U", "5-F", "8-D")
	if err != nil {
		return nil, err
	}
	var keep []graph.NodeID
	for _, s := range sets {
		keep = append(keep, s.Nodes()...)
	}
	sub, orig := graph.Subgraph(d.Graph, keep)
	// Remap the class sets into subgraph ids.
	newID := make(map[graph.NodeID]graph.NodeID, len(orig))
	for ni, oi := range orig {
		newID[oi] = graph.NodeID(ni)
	}
	remapped := make([]*graph.NodeSet, len(sets))
	for i, s := range sets {
		ids := make([]graph.NodeID, 0, s.Len())
		for _, u := range s.Nodes() {
			if v, ok := newID[u]; ok {
				ids = append(ids, v)
			}
		}
		remapped[i] = graph.NewNodeSet(s.Name, ids)
	}
	q := core.Chain(remapped...)

	// SimRank path: fixed point + materialized lists + rank join.
	var srTop []core.Answer
	srDur, err := timeIt(func() error {
		m, err := simrank.Compute(sub, nil)
		if err != nil {
			return err
		}
		lists := make([][]join2.Result, len(q.Edges()))
		for i, qe := range q.Edges() {
			lists[i], err = m.EdgeList(q.Set(qe.From).Nodes(), q.Set(qe.To).Nodes())
			if err != nil {
				return err
			}
		}
		srTop, err = core.JoinLists(q, lists, rankjoin.Min, e.Cfg.K, false)
		return err
	})
	if err != nil {
		return nil, err
	}

	// DHT path on the same subgraph.
	var dhtTop []core.Answer
	dhtDur, err := timeIt(func() error {
		spec := core.Spec{
			Graph:  sub,
			Query:  q,
			Params: e.Params(),
			D:      e.D(),
			Agg:    rankjoin.Min,
			K:      e.Cfg.K,
		}
		alg, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return err
		}
		dhtTop, err = alg.Run()
		return err
	})
	if err != nil {
		return nil, err
	}

	overlap := answerOverlap(srTop, dhtTop)
	t := &Table{
		ID:     "ext-simrank",
		Title:  "Extension: 3-way chain join over SimRank vs DHT (Yeast subgraph)",
		Header: []string{"measure", "time", "answers"},
	}
	t.Rows = append(t.Rows,
		[]string{"SimRank (fixed point + JoinLists)", fmtDur(srDur), fmt.Sprint(len(srTop))},
		[]string{"DHTλ (PJ-i)", fmtDur(dhtDur), fmt.Sprint(len(dhtTop))},
	)
	t.Notes = append(t.Notes,
		fmt.Sprintf("subgraph: %d nodes, %d arcs; the two measures share %d of the top-%d tuples",
			sub.NumNodes(), sub.NumEdges(), overlap, e.Cfg.K),
		"expected: DHT joins scale past SimRank's dense O(n²) iteration — the reason the paper builds on walk measures")
	return t, nil
}

func answerOverlap(a, b []core.Answer) int {
	in := make(map[string]struct{}, len(a))
	for _, x := range a {
		in[fmt.Sprint(x.Nodes)] = struct{}{}
	}
	n := 0
	for _, y := range b {
		if _, ok := in[fmt.Sprint(y.Nodes)]; ok {
			n++
		}
	}
	return n
}
