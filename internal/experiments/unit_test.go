package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{12 * time.Millisecond, "12.0ms"},
		{250 * time.Microsecond, "250µs"},
	}
	for _, tc := range cases {
		if got := fmtDur(tc.d); got != tc.want {
			t.Fatalf("fmtDur(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestConfigsSane(t *testing.T) {
	q, f := Quick(), Full()
	if q.SetSize >= f.SetSize {
		t.Fatal("quick should be smaller than full")
	}
	if q.DBLPScale >= f.DBLPScale {
		t.Fatal("quick DBLP should be smaller")
	}
	for _, c := range []Config{q, f} {
		if c.K <= 0 || c.M <= 0 || c.Epsilon <= 0 || c.MaxN < 2 {
			t.Fatalf("bad config %+v", c)
		}
		if c.Lambda <= 0 || c.Lambda >= 1 {
			t.Fatalf("bad lambda %v", c.Lambda)
		}
	}
}

func TestEnvCachesDatasets(t *testing.T) {
	env := NewEnv(Quick())
	a, err := env.Yeast()
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Yeast()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Yeast dataset regenerated instead of cached")
	}
	if env.D() != 8 {
		t.Fatalf("default depth = %d, want 8", env.D())
	}
}

func TestTprAtInterpolates(t *testing.T) {
	tab, err := Fig6a(NewEnv(Quick()))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity on the rendered grid: TPR must be non-decreasing across the
	// FPR columns of each row.
	for _, row := range tab.Rows {
		prev := -1.0
		for _, cell := range row[1:5] {
			v := parseFloat(t, cell)
			if v < prev-1e-9 {
				t.Fatalf("TPR not monotone across FPR grid: %v", row)
			}
			prev = v
		}
	}
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}
