package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickEnv shares datasets across the tests in this package.
func quickEnv() *Env {
	cfg := Quick()
	return NewEnv(cfg)
}

func TestRegistryResolves(t *testing.T) {
	all := All()
	if len(all) < 18 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	for _, r := range all {
		got, err := ByID(r.ID)
		if err != nil || got.ID != r.ID {
			t.Fatalf("ByID(%q): %v", r.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	out := tab.Render()
	for _, want := range []string{"== x: t ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Scores must be descending within each ranking column.
	prevTri, prevCh := 1e18, 1e18
	for _, row := range tab.Rows {
		tri, err1 := strconv.ParseFloat(row[2], 64)
		ch, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable scores in row %v", row)
		}
		if tri > prevTri+1e-9 || ch > prevCh+1e-9 {
			t.Fatalf("scores not descending: %v", tab.Rows)
		}
		prevTri, prevCh = tri, ch
	}
}

func TestFig6aAUCAboveChance(t *testing.T) {
	tab, err := Fig6a(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		auc, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("bad AUC cell %q", row[len(row)-1])
		}
		if auc < 0.6 {
			t.Fatalf("%s AUC = %v, want well above chance", row[0], auc)
		}
	}
}

func TestFig6bSweep(t *testing.T) {
	tab, err := Fig6b(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 9 λ values + DHTe
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	if tab.Rows[9][0] != "DHTe" {
		t.Fatalf("last row = %v", tab.Rows[9])
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestEfficiencySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	env := quickEnv()
	for _, run := range []struct {
		name string
		fn   func(*Env) (*Table, error)
		rows int
	}{
		{"fig7a", Fig7a, env.Cfg.MaxN - 1},
		{"fig7b", Fig7b, 5},
		{"fig7c", Fig7c, 4},
		{"fig7d", Fig7d, 6},
		{"fig8a", Fig8a, env.Cfg.MaxN - 1},
		{"fig8d", Fig8d, 6},
	} {
		tab, err := run.fn(env)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(tab.Rows) != run.rows {
			t.Fatalf("%s: rows = %d, want %d", run.name, len(tab.Rows), run.rows)
		}
		for _, row := range tab.Rows {
			for _, cell := range row {
				if strings.HasPrefix(cell, "error:") {
					t.Fatalf("%s: failed cell %q in %v", run.name, cell, row)
				}
			}
		}
	}
}

func TestTwoWaySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	env := quickEnv()
	for _, run := range []struct {
		name string
		fn   func(*Env) (*Table, error)
	}{
		{"fig9a", Fig9a},
		{"fig9b", Fig9b},
		{"fig9c", Fig9c},
		{"fig9d", Fig9d},
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
	} {
		tab, err := run.fn(env)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", run.name)
		}
		for _, row := range tab.Rows {
			for _, cell := range row {
				if strings.HasPrefix(cell, "error:") {
					t.Fatalf("%s: failed cell %q", run.name, cell)
				}
			}
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	env := quickEnv()
	for _, fn := range []func(*Env) (*Table, error){AblationCornerBound, AblationIncremental, AblationSchedule} {
		tab, err := fn(env)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) < 2 {
			t.Fatalf("%s: rows = %d", tab.ID, len(tab.Rows))
		}
	}
}

// TestFig10bPruningShape verifies the paper's central Figure-10(b) claim on
// the synthetic DBLP: B-IDJ-Y prunes a large share of Q in the very first
// iterations, and never less than B-IDJ-X.
func TestFig10bPruningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps in -short mode")
	}
	tab, err := Fig10b(quickEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no iterations")
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	for _, row := range tab.Rows {
		x, y := parse(row[2]), parse(row[3])
		if y < x-1e-9 {
			t.Fatalf("iteration %s: Y pruned %.1f%% < X %.1f%%", row[0], y, x)
		}
	}
}
