// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic dataset substitutes, plus the ablation
// studies called out in DESIGN.md §8. Each experiment is a function from a
// sizing Config to a Table of the same rows/series the paper reports; the
// cmd/experiments tool prints them and bench_test.go wraps them in
// testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/graph"
)

// Table is one regenerated table or figure: a header, rows of rendered
// cells, and free-form notes (e.g. which runs were skipped for budget).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Config sizes the experiment suite. Quick mode (the default for benchmarks
// and CI) scales the graphs and node sets down; Full mode approaches the
// paper's configuration and is what EXPERIMENTS.md records.
type Config struct {
	Seed int64

	// DBLPScale and YouTubeScale scale those synthetic graphs (1.0 ≈ 20k and
	// 50k nodes respectively; the Yeast graph is always full size).
	DBLPScale    float64
	YouTubeScale float64

	// SetSize is the number of top-degree nodes drawn per node set for the
	// join workloads (the paper used 100).
	SetSize int

	// K and M are the paper's defaults (both 50).
	K, M int

	// Epsilon sets the DHT accuracy target; Lemma 1 turns it into d.
	Epsilon float64

	// Lambda is the default DHTλ decay factor (paper: 0.2).
	Lambda float64

	// MaxN caps the n sweep of Fig 7(a)/8(a).
	MaxN int

	// RunNL / RunAP control whether the expensive baselines run at their
	// infeasible sizes (they are always skipped where the paper also gave
	// up; these flags gate the borderline cases).
	RunNL, RunAP bool

	// Relabel applies the locality-aware node reordering to every dataset
	// at load time: "" (off), "degree", or "bfs". All experiments then run
	// on the reordered CSR; tables are unchanged because labels travel with
	// their nodes.
	Relabel string
}

// Quick returns the reduced configuration used by benchmarks.
func Quick() Config {
	return Config{
		Seed:         1,
		DBLPScale:    0.04,
		YouTubeScale: 0.04,
		SetSize:      30,
		K:            20,
		M:            20,
		Epsilon:      1e-6,
		Lambda:       0.2,
		MaxN:         4,
		RunNL:        true,
		RunAP:        true,
	}
}

// Full returns the paper-scale configuration used by cmd/experiments.
func Full() Config {
	return Config{
		Seed:         1,
		DBLPScale:    0.25,
		YouTubeScale: 0.5,
		SetSize:      100,
		K:            50,
		M:            50,
		Epsilon:      1e-6,
		Lambda:       0.2,
		MaxN:         7,
		RunNL:        true,
		RunAP:        true,
	}
}

// Env lazily materializes the datasets so one CLI invocation can run many
// experiments without regenerating graphs.
type Env struct {
	Cfg     Config
	dblp    *dataset.Dataset
	yeast   *dataset.Dataset
	youtube *dataset.Dataset
}

// NewEnv wraps a config.
func NewEnv(cfg Config) *Env { return &Env{Cfg: cfg} }

// Params returns the default DHTλ parameters of the config.
func (e *Env) Params() dht.Params { return dht.DHTLambda(e.Cfg.Lambda) }

// D returns the Lemma-1 depth for the default parameters.
func (e *Env) D() int { return e.Params().StepsForEpsilon(e.Cfg.Epsilon) }

// relabeled applies the config's locality reordering, if any.
func (e *Env) relabeled(d *dataset.Dataset) (*dataset.Dataset, error) {
	if e.Cfg.Relabel == "" {
		return d, nil
	}
	return dataset.Relabeled(d, e.Cfg.Relabel)
}

// DBLP returns the (cached) synthetic DBLP dataset.
func (e *Env) DBLP() (*dataset.Dataset, error) {
	if e.dblp == nil {
		d, err := dataset.DBLP(dataset.DBLPConfig{Scale: e.Cfg.DBLPScale, Seed: e.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		if d, err = e.relabeled(d); err != nil {
			return nil, err
		}
		e.dblp = d
	}
	return e.dblp, nil
}

// Yeast returns the (cached) synthetic Yeast dataset.
func (e *Env) Yeast() (*dataset.Dataset, error) {
	if e.yeast == nil {
		d, err := dataset.Yeast(e.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		if d, err = e.relabeled(d); err != nil {
			return nil, err
		}
		e.yeast = d
	}
	return e.yeast, nil
}

// YouTube returns the (cached) synthetic YouTube dataset.
func (e *Env) YouTube() (*dataset.Dataset, error) {
	if e.youtube == nil {
		d, err := dataset.YouTube(dataset.YouTubeConfig{Scale: e.Cfg.YouTubeScale, Seed: e.Cfg.Seed})
		if err != nil {
			return nil, err
		}
		if d, err = e.relabeled(d); err != nil {
			return nil, err
		}
		e.youtube = d
	}
	return e.youtube, nil
}

// sets draws the top-degree subsets used as join node sets.
func (e *Env) sets(d *dataset.Dataset, names ...string) ([]*graph.NodeSet, error) {
	out := make([]*graph.NodeSet, len(names))
	for i, n := range names {
		s, err := d.TopByDegree(n, e.Cfg.SetSize)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// yeastJoinSets returns the n largest Yeast classes, trimmed to SetSize.
func (e *Env) yeastJoinSets(n int) ([]*graph.NodeSet, error) {
	d, err := e.Yeast()
	if err != nil {
		return nil, err
	}
	bySize := append([]*graph.NodeSet(nil), d.Sets...)
	sort.SliceStable(bySize, func(i, j int) bool { return bySize[i].Len() > bySize[j].Len() })
	if n > len(bySize) {
		return nil, fmt.Errorf("experiments: want %d Yeast sets, have %d", n, len(bySize))
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = bySize[i].Name
	}
	return e.sets(d, names...)
}

// dblpJoinSets returns the n largest DBLP areas, trimmed to SetSize.
func (e *Env) dblpJoinSets(n int) ([]*graph.NodeSet, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	if n > len(d.Sets) {
		return nil, fmt.Errorf("experiments: want %d DBLP sets, have %d", n, len(d.Sets))
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = d.Sets[i].Name
	}
	return e.sets(d, names...)
}

// timeIt measures one run.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// fmtDur renders a duration with ms precision for tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(*Env) (*Table, error)
}

// All returns the registry of every experiment, in paper order.
func All() []Runner {
	return []Runner{
		{"table3", "Top-5 3-way join on DBLP (triangle and chain)", Table3},
		{"fig6a", "Link prediction ROC curves (three datasets)", Fig6a},
		{"fig6b", "AUC vs λ on Yeast (DHTλ and DHTe)", Fig6b},
		{"table4", "AUC for link- and 3-clique-prediction", Table4},
		{"fig7a", "Yeast n-way join: running time vs n", Fig7a},
		{"fig7b", "Yeast n-way join: running time vs |EQ|", Fig7b},
		{"fig7c", "Yeast n-way join: running time vs k", Fig7c},
		{"fig7d", "Yeast n-way join: running time vs m", Fig7d},
		{"fig8a", "DBLP n-way join: running time vs n", Fig8a},
		{"fig8b", "DBLP n-way join: running time vs |EQ|", Fig8b},
		{"fig8c", "DBLP n-way join: running time vs k", Fig8c},
		{"fig8d", "DBLP n-way join: running time vs m", Fig8d},
		{"fig9a", "Yeast 2-way join: all five algorithms", Fig9a},
		{"fig9b", "Yeast 2-way join: running time vs ε", Fig9b},
		{"fig9c", "Yeast 2-way join: running time vs λ", Fig9c},
		{"fig9d", "Yeast 2-way join: running time vs k", Fig9d},
		{"fig10a", "DBLP 2-way join: running time vs λ", Fig10a},
		{"fig10b", "DBLP 2-way join: nodes pruned per iteration", Fig10b},
		{"ablation-corner", "Ablation: PBRJ corner bound on vs off", AblationCornerBound},
		{"ablation-incremental", "Ablation: incremental F reuse vs re-join", AblationIncremental},
		{"ablation-schedule", "Ablation: doubling vs linear deepening schedule", AblationSchedule},
		{"ext-ppr", "Extension: joins over Personalized PageRank", ExtensionPPR},
		{"ext-simrank", "Extension: joins over SimRank via JoinLists", ExtensionSimRank},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
