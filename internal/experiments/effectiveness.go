package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/rankjoin"
)

// Table3 reproduces Table III: the top-5 3-way join over the DBLP areas DB,
// AI, and SYS, under the triangle and the chain query graph (AI→DB→SYS),
// with MIN aggregation — run with PJ-i as in the paper.
func Table3(e *Env) (*Table, error) {
	d, err := e.DBLP()
	if err != nil {
		return nil, err
	}
	sets, err := e.sets(d, "DB", "AI", "SYS")
	if err != nil {
		return nil, err
	}
	db, ai, sys := sets[0], sets[1], sets[2]

	run := func(q *core.QueryGraph) ([]core.Answer, error) {
		spec := core.Spec{
			Graph:  d.Graph,
			Query:  q,
			Params: e.Params(),
			D:      e.D(),
			Agg:    rankjoin.Min,
			K:      5,
			// The areas overlap (dual-affiliation authors); the paper's
			// table lists three distinct people per row.
			Distinct: true,
		}
		alg, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		return alg.Run()
	}
	tri, err := run(core.Triangle(db, ai, sys))
	if err != nil {
		return nil, err
	}
	// Chain: AI → DB → SYS ("AI is linked to DB, which is connected to SYS").
	chain, err := run(core.Chain(ai, db, sys))
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table3",
		Title:  "Top-5 3-way join on DBLP",
		Header: []string{"rank", "triangle (DB, AI, SYS)", "f", "chain (AI→DB→SYS)", "f"},
	}
	name := func(id graph.NodeID) string { return d.Graph.Label(id) }
	for i := 0; i < 5 && i < len(tri) && i < len(chain); i++ {
		tr, ch := tri[i], chain[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%s | %s | %s", name(tr.Nodes[0]), name(tr.Nodes[1]), name(tr.Nodes[2])),
			fmt.Sprintf("%.4f", tr.Score),
			fmt.Sprintf("%s | %s | %s", name(ch.Nodes[0]), name(ch.Nodes[1]), name(ch.Nodes[2])),
			fmt.Sprintf("%.4f", ch.Score),
		})
	}
	t.Notes = append(t.Notes,
		"author names are synthetic; the paper's observation to verify is that triangle and chain rankings differ",
		overlapNote(tri, chain))
	return t, nil
}

// overlapNote reports how many tuples the two rankings share.
func overlapNote(a, b []core.Answer) string {
	in := make(map[string]struct{}, len(a))
	for _, x := range a {
		in[fmt.Sprint(x.Nodes)] = struct{}{}
	}
	shared := 0
	for _, y := range b {
		if _, ok := in[fmt.Sprint(y.Nodes)]; ok {
			shared++
		}
	}
	return fmt.Sprintf("triangle and chain share %d of %d tuples", shared, len(a))
}

// linkPredictionWorld builds one dataset's (trueG, testG, P, Q) following
// §VII-B.2: DBLP uses the temporal split, Yeast and YouTube remove half the
// (P,Q) cross edges. Full node sets are used (as in the paper), not the
// top-degree subsets of the timing workloads: the positives are edges that
// span (P, Q), and trimming would wipe them out.
func linkPredictionWorld(e *Env, which string) (trueG, testG *graph.Graph, p, q *graph.NodeSet, err error) {
	switch which {
	case "DBLP":
		d, err := e.DBLP()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		p, err := d.Set("DB")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		q, err := d.Set("AI")
		if err != nil {
			return nil, nil, nil, nil, err
		}
		t, removed := dataset.SplitTemporal(d.Graph, 2010)
		// Count removed edges spanning (P, Q); tiny quick-mode graphs may
		// have too few, in which case we fall back to the random split the
		// paper uses for the other two datasets.
		spanning := 0
		for _, ed := range removed {
			if (p.Contains(ed[0]) && q.Contains(ed[1])) || (p.Contains(ed[1]) && q.Contains(ed[0])) {
				spanning++
			}
		}
		if spanning < 5 {
			t, _ = dataset.SplitCross(d.Graph, p, q, 0.5, e.Cfg.Seed+2)
		}
		return d.Graph, t, p, q, nil
	case "Yeast":
		d, err := e.Yeast()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		p, q := d.MustSet("3-U"), d.MustSet("8-D")
		t, _ := dataset.SplitCross(d.Graph, p, q, 0.5, e.Cfg.Seed+2)
		return d.Graph, t, p, q, nil
	case "YouTube":
		d, err := e.YouTube()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		// The paper uses the anonymous groups with ids 1 and 5; on the
		// scaled-down synthetic graph we pick the best-interfacing pair of
		// the first ten groups (see DESIGN.md §4).
		p, q, err := dataset.BestLinkedPair(d, []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		t, _ := dataset.SplitCross(d.Graph, p, q, 0.5, e.Cfg.Seed+3)
		return d.Graph, t, p, q, nil
	}
	return nil, nil, nil, nil, fmt.Errorf("experiments: unknown dataset %q", which)
}

// Fig6a reproduces Figure 6(a): link-prediction ROC curves for the three
// datasets, rendered as TPR sampled at fixed FPR grid points, plus AUC.
func Fig6a(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig6a",
		Title:  "Link prediction ROC (TPR at FPR grid)",
		Header: []string{"dataset", "TPR@0.05", "TPR@0.1", "TPR@0.2", "TPR@0.5", "AUC"},
	}
	for _, which := range []string{"Yeast", "DBLP", "YouTube"} {
		trueG, testG, p, q, err := linkPredictionWorld(e, which)
		if err != nil {
			return nil, err
		}
		res, err := eval.LinkPrediction(trueG, testG, p, q, e.Params(), e.D())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			which,
			fmt.Sprintf("%.3f", tprAt(res.ROC, 0.05)),
			fmt.Sprintf("%.3f", tprAt(res.ROC, 0.1)),
			fmt.Sprintf("%.3f", tprAt(res.ROC, 0.2)),
			fmt.Sprintf("%.3f", tprAt(res.ROC, 0.5)),
			fmt.Sprintf("%.4f", res.AUC),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: TPR > 0.7 at FPR ≈ 0.1 and AUC > 0.9 on all three datasets")
	return t, nil
}

// tprAt linearly interpolates the ROC polyline at the given FPR.
func tprAt(roc []eval.Point, fpr float64) float64 {
	for i := 1; i < len(roc); i++ {
		if roc[i].FPR >= fpr {
			a, b := roc[i-1], roc[i]
			if b.FPR == a.FPR {
				return b.TPR
			}
			frac := (fpr - a.FPR) / (b.FPR - a.FPR)
			return a.TPR + frac*(b.TPR-a.TPR)
		}
	}
	return 1
}

// Fig6b reproduces Figure 6(b): Yeast link-prediction AUC as λ varies for
// DHTλ, with the DHTe AUC as the reference line.
func Fig6b(e *Env) (*Table, error) {
	d, err := e.Yeast()
	if err != nil {
		return nil, err
	}
	p3u, p8d := d.MustSet("3-U"), d.MustSet("8-D")
	testG, _ := dataset.SplitCross(d.Graph, p3u, p8d, 0.5, e.Cfg.Seed+2)

	t := &Table{
		ID:     "fig6b",
		Title:  "AUC vs λ (Yeast link prediction)",
		Header: []string{"measure", "λ", "AUC"},
	}
	for _, lambda := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		p := dht.DHTLambda(lambda)
		res, err := eval.LinkPrediction(d.Graph, testG, p3u, p8d, p, p.StepsForEpsilon(e.Cfg.Epsilon))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"DHTλ", fmt.Sprintf("%.1f", lambda), fmt.Sprintf("%.4f", res.AUC)})
	}
	pe := dht.DHTE()
	res, err := eval.LinkPrediction(d.Graph, testG, p3u, p8d, pe, pe.StepsForEpsilon(e.Cfg.Epsilon))
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"DHTe", "1/e", fmt.Sprintf("%.4f", res.AUC)})
	t.Notes = append(t.Notes, "paper's shape: AUC consistently high across λ, with a mild peak at mid-range λ")
	return t, nil
}

// Table4 reproduces Table IV: link-prediction and 3-clique-prediction AUC on
// the three datasets.
func Table4(e *Env) (*Table, error) {
	t := &Table{
		ID:     "table4",
		Title:  "AUC for link- and 3-clique-prediction",
		Header: []string{"dataset", "link-prediction", "3-clique-prediction"},
	}
	for _, which := range []string{"Yeast", "DBLP", "YouTube"} {
		trueG, testG, p, q, err := linkPredictionWorld(e, which)
		if err != nil {
			return nil, err
		}
		link, err := eval.LinkPrediction(trueG, testG, p, q, e.Params(), e.D())
		if err != nil {
			return nil, err
		}
		cliqueAUC, err := cliqueAUCFor(e, which)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{which, fmt.Sprintf("%.4f", link.AUC), cliqueAUC})
	}
	t.Notes = append(t.Notes, "paper's shape: all AUC > 0.9; clique-prediction ≥ link-prediction per dataset")
	return t, nil
}

// cliqueAUCFor runs the §VII-B.3 experiment for one dataset, returning the
// rendered AUC (or a note when the synthetic world has no 3-way triangles).
func cliqueAUCFor(e *Env, which string) (string, error) {
	var (
		g       *graph.Graph
		a, b, c *graph.NodeSet
	)
	switch which {
	case "DBLP":
		d, err := e.DBLP()
		if err != nil {
			return "", err
		}
		g, a, b, c = d.Graph, d.MustSet("DB"), d.MustSet("AI"), d.MustSet("SYS")
	case "Yeast":
		d, err := e.Yeast()
		if err != nil {
			return "", err
		}
		g, a, b, c = d.Graph, d.MustSet("3-U"), d.MustSet("5-F"), d.MustSet("8-D")
	case "YouTube":
		d, err := e.YouTube()
		if err != nil {
			return "", err
		}
		// The paper uses groups 1, 5, and 88; the scaled-down graph uses the
		// best-interfacing pair of the first ten plus one more.
		p1, p2, err := dataset.BestLinkedPair(d, []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"})
		if err != nil {
			return "", err
		}
		var p3 *graph.NodeSet
		for _, name := range []string{"88", "11", "12", "13", "14", "15", "3", "4", "5", "6"} {
			s, err := d.Set(name)
			if err != nil || s == p1 || s == p2 || s.Name == p1.Name || s.Name == p2.Name {
				continue
			}
			p3 = s
			break
		}
		if p3 == nil {
			return "n/a (too few groups)", nil
		}
		g, a, b, c = d.Graph, p1, p2, p3
	default:
		return "", fmt.Errorf("experiments: unknown dataset %q", which)
	}
	a, b, c = cliqueSubsets(g, a, b, c, 2*e.Cfg.SetSize)
	testG, broken := dataset.SplitCliques(g, a, b, c, e.Cfg.Seed+4)
	if len(broken) == 0 {
		return "n/a (no 3-way cliques)", nil
	}
	res, err := eval.CliquePrediction(g, testG, a, b, c, e.Params(), e.D())
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%.4f", res.AUC), nil
}

// cliqueSubsets trims the three sets to at most limit nodes each while
// keeping every node that participates in a 3-way triangle, so the clique
// sweep stays tractable without destroying the positives.
func cliqueSubsets(g *graph.Graph, a, b, c *graph.NodeSet, limit int) (*graph.NodeSet, *graph.NodeSet, *graph.NodeSet) {
	if a.Len() <= limit && b.Len() <= limit && c.Len() <= limit {
		return a, b, c
	}
	tris := dataset.Triangles3Way(g, a, b, c)
	pick := func(base *graph.NodeSet, idx int) *graph.NodeSet {
		ids := make([]graph.NodeID, 0, limit)
		for _, tri := range tris {
			ids = append(ids, tri[idx]) // NewNodeSet dedups
		}
		for _, n := range base.Nodes() {
			if len(ids) >= limit {
				break
			}
			ids = append(ids, n)
		}
		s := graph.NewNodeSet(base.Name, ids)
		return s.Take(limit)
	}
	return pick(a, 0), pick(b, 1), pick(c, 2)
}
