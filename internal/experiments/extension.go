package experiments

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/join2"
)

// ExtensionPPR exercises the §VIII extension end to end: the same 2-way join
// workload under first-hit DHT and under Personalized PageRank, reporting
// per-algorithm runtimes and the overlap of the two top-k sets. It is not a
// paper figure — the paper left PPR as future work — but it documents that
// the join framework is measure-generic.
func ExtensionPPR(e *Env) (*Table, error) {
	dhtCfg, err := e.twoWayConfig("Yeast", e.Params(), e.D())
	if err != nil {
		return nil, err
	}
	pprParams := dht.PPR(0.5)
	pprCfg, err := e.twoWayConfig("Yeast", pprParams, pprParams.StepsForEpsilon(e.Cfg.Epsilon))
	if err != nil {
		return nil, err
	}
	pprCfg.Measure = dht.Reach

	t := &Table{
		ID:     "ext-ppr",
		Title:  "Extension: 2-way join under DHT vs Personalized PageRank (Yeast)",
		Header: []string{"measure", "B-BJ", "B-IDJ-Y", "PJ-i-compatible"},
	}
	for _, row := range []struct {
		name string
		cfg  join2.Config
	}{
		{"DHTλ(0.2)", dhtCfg},
		{"PPR(0.5)", pprCfg},
	} {
		cfg := row.cfg
		bbj := timeJoiner(func() (join2.Joiner, error) { return join2.NewBBJ(cfg) }, e.Cfg.K)
		by := timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJY(cfg) }, e.Cfg.K)
		// Incremental streaming works for both measures.
		inc, err := join2.NewIncremental(cfg, join2.BoundY)
		if err != nil {
			return nil, err
		}
		incOK := "yes"
		if _, err := inc.Run(e.Cfg.K); err != nil {
			incOK = "error: " + err.Error()
		} else if _, ok, err := inc.Next(); err != nil || !ok {
			incOK = "stream stalled"
		}
		t.Rows = append(t.Rows, []string{row.name, bbj, by, incOK})
	}

	// Overlap of the two measures' top-k pair sets.
	overlap, err := topKOverlap(dhtCfg, pprCfg, e.Cfg.K)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("the two measures agree on %d of the top-%d pairs", overlap, e.Cfg.K),
		"expected: all algorithms run under both measures; rankings correlate but are not identical")
	return t, nil
}

func topKOverlap(a, b join2.Config, k int) (int, error) {
	ja, err := join2.NewBIDJY(a)
	if err != nil {
		return 0, err
	}
	ra, err := ja.TopK(k)
	if err != nil {
		return 0, err
	}
	jb, err := join2.NewBIDJY(b)
	if err != nil {
		return 0, err
	}
	rb, err := jb.TopK(k)
	if err != nil {
		return 0, err
	}
	in := make(map[join2.Pair]bool, len(ra))
	for _, r := range ra {
		in[r.Pair] = true
	}
	n := 0
	for _, r := range rb {
		if in[r.Pair] {
			n++
		}
	}
	return n, nil
}
