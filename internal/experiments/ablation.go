package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/join2"
)

// AblationCornerBound quantifies the PBRJ corner-bound threshold τ
// (Algorithm 1, step 14): PJ-i with the early stop vs PJ-i forced to drain
// its sources.
func AblationCornerBound(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ablation-corner",
		Title:  "PBRJ corner bound: early stop vs full drain (Yeast 3-way chain)",
		Header: []string{"corner bound", "time", "pairs pulled", "candidates"},
	}
	for _, disable := range []bool{false, true} {
		spec, err := e.chainSpec("Yeast", 3, e.Cfg.K)
		if err != nil {
			return nil, err
		}
		alg, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		alg.DisableCornerBound = disable
		dur, err := timeIt(func() error {
			_, err := alg.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
		label := "on"
		if disable {
			label = "off (drain)"
		}
		t.Rows = append(t.Rows, []string{
			label, fmtDur(dur), fmt.Sprint(alg.Stats.PairsPulled), fmt.Sprint(alg.Stats.Candidates),
		})
	}
	t.Notes = append(t.Notes, "expected: the bound cuts pulled pairs by orders of magnitude; both settings return the same top-k")
	return t, nil
}

// AblationIncremental isolates §VI-D: the cost of getNextNodePair as re-join
// (PJ) vs F-structure reuse (PJ-i) at a starvation-level m.
func AblationIncremental(e *Env) (*Table, error) {
	t := &Table{
		ID:     "ablation-incremental",
		Title:  "getNextNodePair: re-join (PJ) vs incremental (PJ-i), m=5 (Yeast 3-way chain)",
		Header: []string{"algorithm", "time", "refetches"},
	}
	spec, err := e.chainSpec("Yeast", 3, e.Cfg.K)
	if err != nil {
		return nil, err
	}
	pj, err := core.NewPJ(spec, 5)
	if err != nil {
		return nil, err
	}
	pjDur, err := timeIt(func() error {
		_, err := pj.Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	pji, err := core.NewPJI(spec, 5)
	if err != nil {
		return nil, err
	}
	pjiDur, err := timeIt(func() error {
		_, err := pji.Run()
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"PJ", fmtDur(pjDur), fmt.Sprint(pj.Stats.Refetches)},
		[]string{"PJ-i", fmtDur(pjiDur), fmt.Sprint(pji.Stats.Refetches)},
	)
	t.Notes = append(t.Notes, "expected: equal refetch counts, but each PJ refetch is a full 2-way join while each PJ-i refetch is a few heap operations")
	return t, nil
}

// AblationSchedule compares the doubling deepening schedule (l = 1,2,4,…)
// against a linear one (l = 1,2,3,…) inside B-IDJ-Y.
func AblationSchedule(e *Env) (*Table, error) {
	cfg, err := e.twoWayConfig("Yeast", e.Params(), e.D())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-schedule",
		Title:  "B-IDJ-Y deepening schedule: doubling vs linear (Yeast 2-way)",
		Header: []string{"schedule", "time", "iterations"},
	}
	for _, linear := range []bool{false, true} {
		j, err := join2.NewBIDJY(cfg)
		if err != nil {
			return nil, err
		}
		j.LinearSchedule = linear
		dur, err := timeIt(func() error {
			_, err := j.TopK(e.Cfg.K)
			return err
		})
		if err != nil {
			return nil, err
		}
		label := "doubling"
		if linear {
			label = "linear"
		}
		t.Rows = append(t.Rows, []string{label, fmtDur(dur), fmt.Sprint(len(j.Stats))})
	}
	t.Notes = append(t.Notes, "expected: doubling needs O(log d) rounds vs O(d); linear pays more walk restarts for marginally earlier pruning")
	return t, nil
}
