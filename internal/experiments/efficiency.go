package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rankjoin"
)

// setsFor selects join node sets by dataset name.
func (e *Env) setsFor(ds string, n int) ([]*graph.NodeSet, error) {
	if ds == "DBLP" {
		return e.dblpJoinSets(n)
	}
	return e.yeastJoinSets(n)
}

// graphFor selects the underlying graph by dataset name.
func (e *Env) graphFor(ds string) (*graph.Graph, error) {
	if ds == "DBLP" {
		d, err := e.DBLP()
		if err != nil {
			return nil, err
		}
		return d.Graph, nil
	}
	d, err := e.Yeast()
	if err != nil {
		return nil, err
	}
	return d.Graph, nil
}

// chainSpec assembles the default chain-query spec of the timing sweeps.
func (e *Env) chainSpec(ds string, n, k int) (core.Spec, error) {
	g, err := e.graphFor(ds)
	if err != nil {
		return core.Spec{}, err
	}
	sets, err := e.setsFor(ds, n)
	if err != nil {
		return core.Spec{}, err
	}
	return core.Spec{
		Graph:  g,
		Query:  core.Chain(sets...),
		Params: e.Params(),
		D:      e.D(),
		Agg:    rankjoin.Min,
		K:      k,
	}, nil
}

// runTimed executes one algorithm and renders its wall time (or the error).
func runTimed(alg core.Algorithm) string {
	dur, err := timeIt(func() error {
		_, err := alg.Run()
		return err
	})
	if err != nil {
		return "error: " + err.Error()
	}
	return fmtDur(dur)
}

const skipped = "— (skipped: infeasible, see notes)"

// figVsN is the shared driver of Fig 7(a)/8(a): chain n-way joins, n from 2
// to MaxN, timing NL, AP, PJ, PJ-i. NL runs only where the paper could run
// it (n = 2); AP is gated by RunAP on the larger DBLP graph. The PJ-i row
// also reports the engine work counters: dense sweeps vs frontier edges show
// how much of the walk work the sparse kernel served (one dense sweep is
// |E| edge relaxations).
func figVsN(e *Env, ds, id string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  ds + " n-way join: running time vs n (chain, k=" + fmt.Sprint(e.Cfg.K) + ")",
		Header: []string{"n", "NL", "AP", "PJ", "PJ-i", "PJ-i walks", "PJ-i dense sweeps", "PJ-i frontier edges"},
	}
	for n := 2; n <= e.Cfg.MaxN; n++ {
		spec, err := e.chainSpec(ds, n, e.Cfg.K)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(n)}

		if e.Cfg.RunNL && n == 2 && ds == "Yeast" {
			nl, err := core.NewNL(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, runTimed(nl))
		} else {
			row = append(row, skipped)
		}

		runAP := e.Cfg.RunAP && (ds == "Yeast" || n <= 2)
		if runAP {
			ap, err := core.NewAP(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, runTimed(ap))
		} else {
			row = append(row, skipped)
		}

		pj, err := core.NewPJ(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pj))

		pji, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pji))
		st := pji.Stats
		row = append(row, fmt.Sprint(st.DHTWalks), fmt.Sprint(st.DHTEdgeSweeps), fmt.Sprint(st.DHTFrontierEdges))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"NL runs only at n=2 on Yeast — as in the paper, it cannot complete in reasonable time beyond that",
		"AP on DBLP runs only at n=2 (its all-pairs F-BJ cost dominates the figure in the paper too)",
		"paper's shape: time grows with n; PJ-i < PJ < AP < NL throughout",
		"counters: walks served sparsely cost only their frontier edges; a dense sweep costs all |E| edges")
	return t, nil
}

// Fig7a reproduces Figure 7(a).
func Fig7a(e *Env) (*Table, error) { return figVsN(e, "Yeast", "fig7a") }

// Fig8a reproduces Figure 8(a).
func Fig8a(e *Env) (*Table, error) { return figVsN(e, "DBLP", "fig8a") }

// eqEdges is the |E_Q| progression of Fig 7(b)/8(b) over three node sets:
// chain, 3-cycle, then progressively doubled directions up to the full
// 6-edge triangle.
var eqEdges = []core.QEdge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 1, To: 0}, {From: 0, To: 2}, {From: 2, To: 1}}

// figVsEQ is the shared driver of Fig 7(b)/8(b): three node sets, growing
// query-edge count, timing AP, PJ, PJ-i.
func figVsEQ(e *Env, ds, id string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  ds + " n-way join: running time vs |EQ| (3 sets)",
		Header: []string{"|EQ|", "AP", "PJ", "PJ-i"},
	}
	g, err := e.graphFor(ds)
	if err != nil {
		return nil, err
	}
	sets, err := e.setsFor(ds, 3)
	if err != nil {
		return nil, err
	}
	for ne := 2; ne <= len(eqEdges); ne++ {
		q := core.NewQueryGraph(sets...)
		for _, qe := range eqEdges[:ne] {
			q.AddEdge(qe.From, qe.To)
		}
		spec := core.Spec{Graph: g, Query: q, Params: e.Params(), D: e.D(), Agg: rankjoin.Min, K: e.Cfg.K}
		row := []string{fmt.Sprint(ne)}
		if e.Cfg.RunAP && ds == "Yeast" {
			ap, err := core.NewAP(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, runTimed(ap))
		} else {
			row = append(row, skipped)
		}
		pj, err := core.NewPJ(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pj))
		pji, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pji))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper's shape: time grows with |EQ|; AP worst, PJ-i best")
	return t, nil
}

// Fig7b reproduces Figure 7(b).
func Fig7b(e *Env) (*Table, error) { return figVsEQ(e, "Yeast", "fig7b") }

// Fig8b reproduces Figure 8(b).
func Fig8b(e *Env) (*Table, error) { return figVsEQ(e, "DBLP", "fig8b") }

// figVsK is the shared driver of Fig 7(c)/8(c): 3-way chain, k sweep.
func figVsK(e *Env, ds, id string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  ds + " n-way join: running time vs k (3-way chain, m=" + fmt.Sprint(e.Cfg.M) + ")",
		Header: []string{"k", "AP", "PJ", "PJ-i"},
	}
	for _, k := range []int{10, 50, 100, 200} {
		spec, err := e.chainSpec(ds, 3, k)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(k)}
		if e.Cfg.RunAP && ds == "Yeast" {
			ap, err := core.NewAP(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, runTimed(ap))
		} else {
			row = append(row, skipped)
		}
		pj, err := core.NewPJ(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pj))
		pji, err := core.NewPJI(spec, e.Cfg.M)
		if err != nil {
			return nil, err
		}
		row = append(row, runTimed(pji))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper's shape: PJ grows sharply with k (getNextNodePair re-joins); PJ-i stays flat and wins by up to two orders of magnitude at k=200")
	return t, nil
}

// Fig7c reproduces Figure 7(c).
func Fig7c(e *Env) (*Table, error) { return figVsK(e, "Yeast", "fig7c") }

// Fig8c reproduces Figure 8(c).
func Fig8c(e *Env) (*Table, error) { return figVsK(e, "DBLP", "fig8c") }

// figVsM is the shared driver of Fig 7(d)/8(d): 3-way chain, m sweep for PJ
// and PJ-i.
func figVsM(e *Env, ds, id string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  ds + " n-way join: running time vs m (3-way chain, k=" + fmt.Sprint(e.Cfg.K) + ")",
		Header: []string{"m", "PJ", "PJ refetches", "PJ-i", "PJ-i refetches"},
	}
	for _, m := range []int{10, 20, 50, 100, 200, 500} {
		spec, err := e.chainSpec(ds, 3, e.Cfg.K)
		if err != nil {
			return nil, err
		}
		pj, err := core.NewPJ(spec, m)
		if err != nil {
			return nil, err
		}
		pjTime := runTimed(pj)
		pji, err := core.NewPJI(spec, m)
		if err != nil {
			return nil, err
		}
		pjiTime := runTimed(pji)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(m), pjTime, fmt.Sprint(pj.Stats.Refetches), pjiTime, fmt.Sprint(pji.Stats.Refetches),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: small m hurts PJ badly (constant re-joins), PJ-i mildly; both converge once m covers the needed pairs")
	return t, nil
}

// Fig7d reproduces Figure 7(d).
func Fig7d(e *Env) (*Table, error) { return figVsM(e, "Yeast", "fig7d") }

// Fig8d reproduces Figure 8(d).
func Fig8d(e *Env) (*Table, error) { return figVsM(e, "DBLP", "fig8d") }
