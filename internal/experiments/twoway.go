package experiments

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
)

// twoWayConfig assembles the 2-way join workload of §VII-D: on Yeast,
// P = 3-U and Q = 8-D (the link-prediction sets); on DBLP, DB and AI.
func (e *Env) twoWayConfig(ds string, params dht.Params, d int) (join2.Config, error) {
	var p, q *graph.NodeSet
	g, err := e.graphFor(ds)
	if err != nil {
		return join2.Config{}, err
	}
	switch ds {
	case "DBLP":
		dset, err := e.DBLP()
		if err != nil {
			return join2.Config{}, err
		}
		sets, err := e.sets(dset, "DB", "AI")
		if err != nil {
			return join2.Config{}, err
		}
		p, q = sets[0], sets[1]
	default:
		dset, err := e.Yeast()
		if err != nil {
			return join2.Config{}, err
		}
		sets, err := e.sets(dset, "3-U", "8-D")
		if err != nil {
			return join2.Config{}, err
		}
		p, q = sets[0], sets[1]
	}
	return join2.Config{Graph: g, Params: params, D: d, P: p.Nodes(), Q: q.Nodes()}, nil
}

// timeJoiner builds and times one 2-way algorithm.
func timeJoiner(mk func() (join2.Joiner, error), k int) string {
	j, err := mk()
	if err != nil {
		return "error: " + err.Error()
	}
	dur, err := timeIt(func() error {
		_, err := j.TopK(k)
		return err
	})
	if err != nil {
		return "error: " + err.Error()
	}
	return fmtDur(dur)
}

// Fig9a reproduces Figure 9(a): all five 2-way algorithms on Yeast, with the
// engine work counters alongside the wall time — dense sweeps vs frontier
// edges make the sparse kernel's effect on each algorithm visible (one dense
// sweep costs all |E| edge relaxations).
func Fig9a(e *Env) (*Table, error) {
	cfg, err := e.twoWayConfig("Yeast", e.Params(), e.D())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9a",
		Title:  "Yeast 2-way join: running time per algorithm (k=" + fmt.Sprint(e.Cfg.K) + ")",
		Header: []string{"algorithm", "time", "walks", "dense sweeps", "frontier edges"},
	}
	for _, alg := range []struct {
		name string
		mk   func(join2.Config) (join2.Joiner, error)
	}{
		{"F-BJ", func(c join2.Config) (join2.Joiner, error) { return join2.NewFBJ(c) }},
		{"F-IDJ", func(c join2.Config) (join2.Joiner, error) { return join2.NewFIDJ(c) }},
		{"B-BJ", func(c join2.Config) (join2.Joiner, error) { return join2.NewBBJ(c) }},
		{"B-IDJ-X", func(c join2.Config) (join2.Joiner, error) { return join2.NewBIDJX(c) }},
		{"B-IDJ-Y", func(c join2.Config) (join2.Joiner, error) { return join2.NewBIDJY(c) }},
	} {
		ctrs := &dht.Counters{}
		ccfg := cfg
		ccfg.Counters = ctrs
		dur := timeJoiner(func() (join2.Joiner, error) { return alg.mk(ccfg) }, e.Cfg.K)
		snap := ctrs.Snapshot()
		t.Rows = append(t.Rows, []string{
			alg.name, dur, fmt.Sprint(snap.Walks), fmt.Sprint(snap.EdgeSweeps), fmt.Sprint(snap.FrontierEdges),
		})
	}
	t.Notes = append(t.Notes,
		"paper's shape: backward algorithms beat forward ones by ≈|P| (two orders of magnitude); B-IDJ variants beat B-BJ",
		"counters: walks served sparsely cost only their frontier edges; a dense sweep costs all |E| edges")
	return t, nil
}

// Fig9b reproduces Figure 9(b): backward algorithms on Yeast as the accuracy
// target ε shrinks (d grows per Lemma 1).
func Fig9b(e *Env) (*Table, error) {
	t := &Table{
		ID:     "fig9b",
		Title:  "Yeast 2-way join: running time vs ε (backward algorithms)",
		Header: []string{"ε", "d", "B-BJ", "B-IDJ-X", "B-IDJ-Y"},
	}
	params := e.Params()
	for _, eps := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8} {
		d := params.StepsForEpsilon(eps)
		cfg, err := e.twoWayConfig("Yeast", params, d)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", eps),
			fmt.Sprint(d),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBBJ(cfg) }, e.Cfg.K),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJX(cfg) }, e.Cfg.K),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJY(cfg) }, e.Cfg.K),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: the B-IDJ variants stay 6–8× below B-BJ, especially at small ε")
	return t, nil
}

// figVsLambda is the shared driver of Fig 9(c)/10(a): backward algorithms as
// λ grows (d recomputed from Lemma 1, so work grows superlinearly).
func figVsLambda(e *Env, ds, id string, lambdas []float64) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  ds + " 2-way join: running time vs λ (backward algorithms)",
		Header: []string{"λ", "d", "B-BJ", "B-IDJ-X", "B-IDJ-Y"},
	}
	for _, lambda := range lambdas {
		params := dht.DHTLambda(lambda)
		d := params.StepsForEpsilon(e.Cfg.Epsilon)
		cfg, err := e.twoWayConfig(ds, params, d)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", lambda),
			fmt.Sprint(d),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBBJ(cfg) }, e.Cfg.K),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJX(cfg) }, e.Cfg.K),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJY(cfg) }, e.Cfg.K),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: B-IDJ-X degrades toward B-BJ as λ grows (X⁺ₗ loosens); B-IDJ-Y stays up to 4× faster at large λ")
	return t, nil
}

// Fig9c reproduces Figure 9(c).
func Fig9c(e *Env) (*Table, error) {
	return figVsLambda(e, "Yeast", "fig9c", []float64{0.2, 0.4, 0.6, 0.8})
}

// Fig10a reproduces Figure 10(a).
func Fig10a(e *Env) (*Table, error) {
	return figVsLambda(e, "DBLP", "fig10a", []float64{0.2, 0.4, 0.6, 0.8})
}

// Fig9d reproduces Figure 9(d): backward algorithms on Yeast across k.
func Fig9d(e *Env) (*Table, error) {
	cfg, err := e.twoWayConfig("Yeast", e.Params(), e.D())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9d",
		Title:  "Yeast 2-way join: running time vs k (backward algorithms)",
		Header: []string{"k", "B-BJ", "B-IDJ-X", "B-IDJ-Y"},
	}
	for _, k := range []int{10, 20, 50, 75, 100} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBBJ(cfg) }, k),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJX(cfg) }, k),
			timeJoiner(func() (join2.Joiner, error) { return join2.NewBIDJY(cfg) }, k),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: B-BJ flat in k (all pairs computed anyway); B-IDJ variants grow with k but stay below B-BJ")
	return t, nil
}

// Fig10b reproduces Figure 10(b): cumulative fraction of Q pruned per
// deepening iteration at λ=0.7, for B-IDJ-X vs B-IDJ-Y on DBLP.
func Fig10b(e *Env) (*Table, error) {
	params := dht.DHTLambda(0.7)
	d := params.StepsForEpsilon(e.Cfg.Epsilon)
	cfg, err := e.twoWayConfig("DBLP", params, d)
	if err != nil {
		return nil, err
	}
	bx, err := join2.NewBIDJX(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := bx.TopK(e.Cfg.K); err != nil {
		return nil, err
	}
	by, err := join2.NewBIDJY(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := by.TopK(e.Cfg.K); err != nil {
		return nil, err
	}
	fx, fy := bx.PrunedFractionPerIter(), by.PrunedFractionPerIter()
	t := &Table{
		ID:     "fig10b",
		Title:  "DBLP 2-way join: cumulative % of Q pruned per iteration (λ=0.7)",
		Header: []string{"iteration", "l", "B-IDJ-X", "B-IDJ-Y"},
	}
	for i := 0; i < 4 && i < len(fx) && i < len(fy); i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i + 1),
			fmt.Sprint(bx.Stats[i].L),
			fmt.Sprintf("%.1f%%", 100*fx[i]),
			fmt.Sprintf("%.1f%%", 100*fy[i]),
		})
	}
	t.Notes = append(t.Notes, "paper's shape: B-IDJ-Y prunes >96% of Q after iteration 1 and >98% after 2; B-IDJ-X prunes nothing in the first two iterations")
	return t, nil
}
