package dht

import "repro/internal/graph"

// Contract names the correctness guarantee a walk kernel makes about the
// scores it returns. The repo's equivalence property suites pin every joiner
// to the BitIdentical contract; the FastCertified contract trades exact
// arithmetic for throughput while still quantifying the damage, so a joiner
// can *certify* a ranking by re-verifying only the scores whose error band
// straddles a decision boundary.
type Contract int

const (
	// BitIdentical kernels reproduce the reference dense-sweep float64
	// arithmetic bit for bit: same additions, same order. Their score bound
	// is exactly 0 and callers may compare outputs with ==.
	BitIdentical Contract = iota

	// FastCertified kernels may reorder and lower-precision the arithmetic
	// (float32 lanes, partitioned parallel sweeps) but must return a
	// conservative per-score error bound ε: every returned score ŝ satisfies
	// |ŝ − s| ≤ ε against the bit-identical reference s. Callers own the
	// certification: decisions whose score gap exceeds the combined bounds
	// are safe; anything inside the ε-band must be re-verified through a
	// BitIdentical kernel.
	FastCertified
)

// String implements fmt.Stringer for diagnostics and Explain output.
func (c Contract) String() string {
	switch c {
	case BitIdentical:
		return "bit-identical"
	case FastCertified:
		return "fast-certified"
	default:
		return "unknown"
	}
}

// Kernel is the contract-level view of a walk engine: which guarantee it
// makes and how loose its scores may be. Engine, BatchEngine, and
// FastBatchEngine all implement it; the EnginePool uses it to keep the two
// contracts from ever satisfying each other's checkouts.
type Kernel interface {
	// Contract reports the correctness guarantee of every score this kernel
	// returns.
	Contract() Contract
	// ScoreBound returns the conservative per-score error bound ε: each
	// returned score is within ε of the bit-identical reference value.
	// BitIdentical kernels return exactly 0.
	ScoreBound() float64
}

// BatchKernel is a Kernel that evaluates whole batches of walk columns — the
// interface the batched joiners actually consume. Width reports the lane
// count of one CSR traversal; BackWalkScoresBatch and ForwardProbsBatch have
// the BatchEngine semantics (engine-owned rows, valid until the next batch
// call on the same kernel).
type BatchKernel interface {
	Kernel
	// Width is the number of walk columns one CSR sweep advances.
	Width() int
	// BackWalkScoresBatch computes score columns out[c][u] = h_steps(u, qs[c])
	// for every source node u, one column per target.
	BackWalkScoresBatch(kind Kind, qs []graph.NodeID, steps int) [][]float64
	// ForwardProbsBatch computes per-step hit probabilities
	// rows[c][i] = P_{i+1}(ps[c], qs[c]) for each seed/target pair; fold a
	// row with Params.Score to obtain h_steps(ps[c], qs[c]).
	ForwardProbsBatch(kind Kind, ps, qs []graph.NodeID, steps int) [][]float64
}

// Contract on the adaptive sparse/dense solo engine: its sparse and dense
// paths perform identical additions in identical order (see push), so it is
// the reference arithmetic itself.
func (e *Engine) Contract() Contract { return BitIdentical }

// ScoreBound is 0: Engine scores are the reference values.
func (e *Engine) ScoreBound() float64 { return 0 }

// Contract on the W-column float64 batch engine: its wide sweeps accumulate
// each column independently in the same ascending source order as the solo
// engine, which the batched-kernel bit-identity suite pins.
func (e *BatchEngine) Contract() Contract { return BitIdentical }

// ScoreBound is 0: BatchEngine columns are bit-identical to Engine's.
func (e *BatchEngine) ScoreBound() float64 { return 0 }

// Width reports the engine's column capacity.
func (e *BatchEngine) Width() int { return e.W }

// Interface conformance: both batch engines serve the batched joiners
// through the same BatchKernel shape; only the contract differs.
var (
	_ Kernel      = (*Engine)(nil)
	_ BatchKernel = (*BatchEngine)(nil)
	_ BatchKernel = (*FastBatchEngine)(nil)
)
