package dht

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Counters aggregates engine work across walks — and, through atomic adds,
// across the concurrent engines of a worker pool. Attach one as Engine.Sink
// (or EnginePool.Sink) and read it with Snapshot once the workers are done.
type Counters struct {
	Walks         int64 // walk invocations
	EdgeSweeps    int64 // full O(|E|) dense relaxation sweeps
	FrontierEdges int64 // edges relaxed by sparse frontier pushes

	// Certification counters, maintained by the certified joiners through
	// Certify rather than by the engines themselves: how often the fast
	// kernel was picked, and how much exact re-verification it cost.
	KernelPicks   int64 // fast-kernel runs (one per certified fast pass)
	Reverified    int64 // pairs re-scored through the bit-identical kernel
	FallbackPairs int64 // band pairs beyond k — uncertifiable from fast scores alone

	// Chain, when non-nil, additionally receives every increment. It lets a
	// run-scoped counter (an algorithm's RunStats source) forward its deltas
	// to a process-lifetime counter (the serving layer's /stats) without the
	// engines knowing about either. Set it before the counter is shared with
	// any engine; it is read without synchronization afterwards.
	Chain *Counters
}

// add accumulates one walk's deltas atomically, forwarding down the chain.
func (c *Counters) add(walks, sweeps, frontierEdges int64) {
	atomic.AddInt64(&c.Walks, walks)
	atomic.AddInt64(&c.EdgeSweeps, sweeps)
	atomic.AddInt64(&c.FrontierEdges, frontierEdges)
	if c.Chain != nil {
		c.Chain.add(walks, sweeps, frontierEdges)
	}
}

// Certify accumulates one certified fast pass's bookkeeping atomically,
// forwarding down the chain: picks counts fast-kernel runs, reverified the
// pairs re-scored through the bit-identical kernel, and fallback the band
// pairs the fast scores alone could not certify.
func (c *Counters) Certify(picks, reverified, fallback int64) {
	atomic.AddInt64(&c.KernelPicks, picks)
	atomic.AddInt64(&c.Reverified, reverified)
	atomic.AddInt64(&c.FallbackPairs, fallback)
	if c.Chain != nil {
		c.Chain.Certify(picks, reverified, fallback)
	}
}

// Snapshot returns a consistent copy using atomic loads, safe to call while
// workers are still writing.
func (c *Counters) Snapshot() Counters {
	return Counters{
		Walks:         atomic.LoadInt64(&c.Walks),
		EdgeSweeps:    atomic.LoadInt64(&c.EdgeSweeps),
		FrontierEdges: atomic.LoadInt64(&c.FrontierEdges),
		KernelPicks:   atomic.LoadInt64(&c.KernelPicks),
		Reverified:    atomic.LoadInt64(&c.Reverified),
		FallbackPairs: atomic.LoadInt64(&c.FallbackPairs),
	}
}

// Reset zeroes the counters atomically.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.Walks, 0)
	atomic.StoreInt64(&c.EdgeSweeps, 0)
	atomic.StoreInt64(&c.FrontierEdges, 0)
	atomic.StoreInt64(&c.KernelPicks, 0)
	atomic.StoreInt64(&c.Reverified, 0)
	atomic.StoreInt64(&c.FallbackPairs, 0)
}

// EnginePool hands out engines for one (graph, params, d) configuration
// backed by a sync.Pool, so worker goroutines and repeated joins reuse the
// O(|V|) scratch vectors instead of allocating fresh ones. Engines returned
// by Get carry the pool's Sink; each engine is still single-goroutine — the
// pool only makes checkout/checkin concurrency-safe.
//
// Batch engines are pooled too (GetBatch/PutBatch): workers that batch their
// walks check out a BatchEngine of at least the pool's BatchWidth, so worker
// count × batch width are tuned together by the joiner that owns the pool.
type EnginePool struct {
	G      *graph.Graph
	Params Params
	D      int

	// BatchWidth is the column capacity of the batch engines GetBatch hands
	// out; zero selects DefaultBatchWidth. Set it before the first GetBatch.
	BatchWidth int

	// FastWidth is the lane count of the fast engines GetFast hands out;
	// zero selects DefaultFastWidth. Set it before the first GetFast.
	FastWidth int

	// Sink, when non-nil, is attached to every engine the pool hands out.
	Sink *Counters

	pool  sync.Pool
	bpool sync.Pool
	fpool sync.Pool

	// outstanding counts engines currently checked out (Get/GetBatch minus
	// Put/PutBatch). It is a leak detector for the streaming paths: a stream
	// stopped early must return every engine it checked out, and the
	// cancellation tests assert Outstanding() == 0 after an abort.
	outstanding atomic.Int64
}

// NewEnginePool validates the configuration once and returns the pool.
func NewEnginePool(g *graph.Graph, p Params, d int) (*EnginePool, error) {
	first, err := NewEngine(g, p, d)
	if err != nil {
		return nil, err
	}
	pl := &EnginePool{G: g, Params: p, D: d}
	pl.pool.Put(first)
	return pl, nil
}

// Get checks out an engine. The configuration was validated by
// NewEnginePool, so construction cannot fail here. Pool entries are
// validated against the pool's (graph, params, d): a mismatched engine —
// possible when a caller recycled a pool value built for another graph, or
// mutated the pool's fields — is dropped and replaced by a fresh engine
// rather than resized in place, so a stale engine can never leak scratch
// sized to a different |V| into a walk.
func (pl *EnginePool) Get() *Engine {
	e, _ := pl.pool.Get().(*Engine)
	if e == nil || e.G != pl.G || e.Params != pl.Params || e.D != pl.D {
		e, _ = NewEngine(pl.G, pl.Params, pl.D)
	}
	e.Sink = pl.Sink
	pl.outstanding.Add(1)
	return e
}

// Put returns an engine obtained from Get for reuse. Engines that do not
// match the pool's configuration are discarded instead of retained.
func (pl *EnginePool) Put(e *Engine) {
	if e == nil {
		return
	}
	pl.outstanding.Add(-1)
	if e.G != pl.G || e.Params != pl.Params || e.D != pl.D {
		return
	}
	pl.pool.Put(e)
}

// Outstanding reports the number of engines (solo and batch) currently
// checked out and not yet returned. A stream or joiner that released all its
// resources leaves this at zero; the -race cancellation tests assert exactly
// that after a mid-stream abort.
func (pl *EnginePool) Outstanding() int64 { return pl.outstanding.Load() }

// batchWidth resolves the pool's batch-engine column capacity.
func (pl *EnginePool) batchWidth() int {
	if pl.BatchWidth > 0 {
		return pl.BatchWidth
	}
	return DefaultBatchWidth
}

// GetBatch checks out a bit-identical batch engine with column capacity ≥
// the pool's BatchWidth. Entries are validated like Get's: a mismatched or
// too-narrow engine is dropped and replaced. The validation is also the
// cross-contract firewall: sync.Pool stores untyped values, so a recycled
// entry of the wrong engine kind (e.g. a FastCertified engine shoved into
// the batch pool) fails the checked type assertion or the Contract check
// and is dropped — a fast engine must never satisfy a bit-identical
// checkout, because every caller of GetBatch relies on == comparability of
// the scores.
func (pl *EnginePool) GetBatch() *BatchEngine {
	w := pl.batchWidth()
	be, _ := pl.bpool.Get().(*BatchEngine)
	if be == nil || be.Contract() != BitIdentical ||
		be.G != pl.G || be.Params != pl.Params || be.D != pl.D || be.W < w {
		be, _ = NewBatchEngine(pl.G, pl.Params, pl.D, w)
	}
	be.Sink = pl.Sink
	pl.outstanding.Add(1)
	return be
}

// PutBatch returns a batch engine obtained from GetBatch for reuse,
// discarding mismatched ones.
func (pl *EnginePool) PutBatch(be *BatchEngine) {
	if be == nil {
		return
	}
	pl.outstanding.Add(-1)
	if be.Contract() != BitIdentical ||
		be.G != pl.G || be.Params != pl.Params || be.D != pl.D || be.W < pl.batchWidth() {
		return
	}
	pl.bpool.Put(be)
}

// fastWidth resolves the pool's fast-engine lane count.
func (pl *EnginePool) fastWidth() int {
	if pl.FastWidth > 0 {
		return pl.FastWidth
	}
	return DefaultFastWidth
}

// GetFast checks out a FastCertified engine with lane count ≥ the pool's
// FastWidth. The mirror-image of GetBatch's firewall applies: only an entry
// that asserts to *FastBatchEngine, reports the FastCertified contract, and
// matches the pool's configuration is reused — anything else (including a
// bit-identical engine recycled into the wrong pool) is dropped and
// replaced, so the two contracts can never satisfy each other's checkouts.
func (pl *EnginePool) GetFast() *FastBatchEngine {
	w := pl.fastWidth()
	fe, _ := pl.fpool.Get().(*FastBatchEngine)
	if fe == nil || fe.Contract() != FastCertified ||
		fe.G != pl.G || fe.Params != pl.Params || fe.D != pl.D || fe.W < w {
		fe, _ = NewFastBatchEngine(pl.G, pl.Params, pl.D, w, 0)
	}
	fe.Sink = pl.Sink
	pl.outstanding.Add(1)
	return fe
}

// PutFast returns a fast engine obtained from GetFast for reuse, discarding
// mismatched ones.
func (pl *EnginePool) PutFast(fe *FastBatchEngine) {
	if fe == nil {
		return
	}
	pl.outstanding.Add(-1)
	if fe.Contract() != FastCertified ||
		fe.G != pl.G || fe.Params != pl.Params || fe.D != pl.D || fe.W < pl.fastWidth() {
		return
	}
	pl.fpool.Put(fe)
}
