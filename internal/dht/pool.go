package dht

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Counters aggregates engine work across walks — and, through atomic adds,
// across the concurrent engines of a worker pool. Attach one as Engine.Sink
// (or EnginePool.Sink) and read it with Snapshot once the workers are done.
type Counters struct {
	Walks         int64 // walk invocations
	EdgeSweeps    int64 // full O(|E|) dense relaxation sweeps
	FrontierEdges int64 // edges relaxed by sparse frontier pushes
}

// add accumulates one walk's deltas atomically.
func (c *Counters) add(walks, sweeps, frontierEdges int64) {
	atomic.AddInt64(&c.Walks, walks)
	atomic.AddInt64(&c.EdgeSweeps, sweeps)
	atomic.AddInt64(&c.FrontierEdges, frontierEdges)
}

// Snapshot returns a consistent copy using atomic loads, safe to call while
// workers are still writing.
func (c *Counters) Snapshot() Counters {
	return Counters{
		Walks:         atomic.LoadInt64(&c.Walks),
		EdgeSweeps:    atomic.LoadInt64(&c.EdgeSweeps),
		FrontierEdges: atomic.LoadInt64(&c.FrontierEdges),
	}
}

// Reset zeroes the counters atomically.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.Walks, 0)
	atomic.StoreInt64(&c.EdgeSweeps, 0)
	atomic.StoreInt64(&c.FrontierEdges, 0)
}

// EnginePool hands out engines for one (graph, params, d) configuration
// backed by a sync.Pool, so worker goroutines and repeated joins reuse the
// O(|V|) scratch vectors instead of allocating fresh ones. Engines returned
// by Get carry the pool's Sink; each engine is still single-goroutine — the
// pool only makes checkout/checkin concurrency-safe.
type EnginePool struct {
	G      *graph.Graph
	Params Params
	D      int

	// Sink, when non-nil, is attached to every engine the pool hands out.
	Sink *Counters

	pool sync.Pool
}

// NewEnginePool validates the configuration once and returns the pool.
func NewEnginePool(g *graph.Graph, p Params, d int) (*EnginePool, error) {
	first, err := NewEngine(g, p, d)
	if err != nil {
		return nil, err
	}
	pl := &EnginePool{G: g, Params: p, D: d}
	pl.pool.Put(first)
	return pl, nil
}

// Get checks out an engine. The configuration was validated by
// NewEnginePool, so construction cannot fail here.
func (pl *EnginePool) Get() *Engine {
	e, _ := pl.pool.Get().(*Engine)
	if e == nil {
		e, _ = NewEngine(pl.G, pl.Params, pl.D)
	}
	e.Sink = pl.Sink
	return e
}

// Put returns an engine obtained from Get for reuse.
func (pl *EnginePool) Put(e *Engine) {
	if e == nil {
		return
	}
	pl.pool.Put(e)
}
