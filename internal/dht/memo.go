package dht

import "repro/internal/graph"

// DefaultMemoSize is the number of score columns a ScoreMemo retains when
// the owner does not choose a capacity. Deliberately small: the memo exists
// to catch the tight repeat patterns of the incremental join (consecutive
// winner pops that re-walk the same hot target at full depth) and of re-join
// streams, not to cache whole result sets — each entry costs O(|V|) floats.
const DefaultMemoSize = 8

// memoKey identifies one cached backward-walk column.
type memoKey struct {
	kind  Kind
	q     graph.NodeID
	steps int
}

// ScoreMemo is a small LRU cache of backward-walk score columns keyed by
// (kind, target, walk length). It is bound to one (graph, params, d)
// configuration by its owner — the memo itself never validates that — and is
// single-goroutine like the engines that fill it. Get returns the cached
// column itself; callers must treat it as read-only.
type ScoreMemo struct {
	cap     int
	entries map[memoKey][]float64
	order   []memoKey // most recently used last
}

// NewScoreMemo returns a memo retaining up to capacity columns
// (capacity <= 0 selects DefaultMemoSize).
func NewScoreMemo(capacity int) *ScoreMemo {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	return &ScoreMemo{
		cap:     capacity,
		entries: make(map[memoKey][]float64, capacity),
	}
}

// Get returns the cached column for (kind, q, steps) and marks it most
// recently used. The returned slice is owned by the memo: read-only, valid
// until evicted — consume it before the next Put.
func (m *ScoreMemo) Get(kind Kind, q graph.NodeID, steps int) ([]float64, bool) {
	if m == nil {
		return nil, false
	}
	k := memoKey{kind, q, steps}
	col, ok := m.entries[k]
	if !ok {
		return nil, false
	}
	m.touch(k)
	return col, true
}

// Put copies scores into the memo under (kind, q, steps), evicting the least
// recently used entry when full. The eviction reuses the evicted column's
// backing array, so a warm memo performs no allocation.
func (m *ScoreMemo) Put(kind Kind, q graph.NodeID, steps int, scores []float64) {
	if m == nil {
		return
	}
	k := memoKey{kind, q, steps}
	if col, ok := m.entries[k]; ok {
		copy(col, scores)
		m.touch(k)
		return
	}
	var col []float64
	if len(m.order) >= m.cap {
		oldest := m.order[0]
		col = m.entries[oldest]
		delete(m.entries, oldest)
		m.order = m.order[1:]
	}
	if len(col) != len(scores) {
		col = make([]float64, len(scores))
	}
	copy(col, scores)
	m.entries[k] = col
	m.order = append(m.order, k)
}

// Len reports the number of cached columns.
func (m *ScoreMemo) Len() int {
	if m == nil {
		return 0
	}
	return len(m.entries)
}

// Cap reports the memo's capacity (0 for a nil memo). Callers whose working
// set of targets exceeds the capacity should bypass the memo entirely: a
// sequential scan over more targets than the LRU holds evicts every entry
// before its re-use, paying the O(|V|) insert copies for zero hits.
func (m *ScoreMemo) Cap() int {
	if m == nil {
		return 0
	}
	return m.cap
}

// touch moves k to the most-recently-used position. O(cap), which is fine
// for the single-digit capacities the memo is meant for.
func (m *ScoreMemo) touch(k memoKey) {
	for i, ok := range m.order {
		if ok == k {
			copy(m.order[i:], m.order[i+1:])
			m.order[len(m.order)-1] = k
			return
		}
	}
	m.order = append(m.order, k)
}
