package dht

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// DefaultMemoSize is the number of score columns a ScoreMemo retains when
// the owner does not choose a capacity. Deliberately small: the default memo
// exists to catch the tight repeat patterns of the incremental join
// (consecutive winner pops that re-walk the same hot target at full depth)
// and of re-join streams, not to cache whole result sets — each entry costs
// O(|V|) floats. Long-lived owners (the serving layer) pick a larger
// capacity explicitly.
const DefaultMemoSize = 8

// memoShardThreshold is the capacity above which a memo splits into multiple
// lock shards. Below it, one shard keeps exact global LRU order (the
// behavior the single-request joiners rely on for their tiny memos); above
// it, contention on the single mutex would serialize every concurrent
// request through one cache line, so the key space is striped across
// independently locked shards, each an exact LRU over its stripe.
const memoShardThreshold = 32

// memoShards is the shard count of a sharded memo. A power of two so the
// shard pick is a mask, sized to comfortably exceed the worker counts the
// serving layer admits per machine.
const memoShards = 8

// memoKey identifies one cached backward-walk column.
type memoKey struct {
	kind  Kind
	q     graph.NodeID
	steps int
}

// shard indexes the key into a shard mask. The target node dominates the
// hash (kind and steps take two values nearly always), multiplied by a
// Fibonacci constant so consecutive node ids spread across shards.
func (k memoKey) shard(mask uint32) uint32 {
	h := uint32(k.q)*2654435761 + uint32(k.steps)*0x9e3779b9 + uint32(k.kind)
	return (h >> 16) & mask
}

// memoShard is one independently locked LRU stripe.
type memoShard struct {
	mu      sync.Mutex
	cap     int
	entries map[memoKey][]float64
	order   []memoKey // most recently used last
}

// ScoreMemo is an LRU cache of backward-walk score columns keyed by
// (kind, target, walk length). It is bound to one (graph, params, d)
// configuration by its owner — the memo itself never validates that.
//
// The memo is safe for concurrent use by construction: the key space is
// striped over mutex-protected LRU shards, and a column, once published, is
// immutable — Put copies the caller's scores into fresh storage before
// publishing, never overwrites a published column in place, and eviction
// merely drops the cache's reference. A slice returned by Get therefore
// stays valid (and race-free to read) for as long as the caller holds it,
// even across evictions and concurrent Puts. The price is one O(|V|)
// allocation per distinct inserted key instead of the old
// recycle-the-evicted-column trick; insert cost was already dominated by the
// O(|V|) copy.
type ScoreMemo struct {
	shards []memoShard
	mask   uint32
	cap    int

	hits, misses atomic.Int64
}

// NewScoreMemo returns a memo retaining up to capacity columns
// (capacity <= 0 selects DefaultMemoSize). Small capacities use one shard
// (exact global LRU); capacities above memoShardThreshold are striped over
// memoShards independently locked shards.
func NewScoreMemo(capacity int) *ScoreMemo {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	n := 1
	if capacity > memoShardThreshold {
		n = memoShards
	}
	m := &ScoreMemo{
		shards: make([]memoShard, n),
		mask:   uint32(n - 1),
		cap:    capacity,
	}
	per := (capacity + n - 1) / n
	for i := range m.shards {
		m.shards[i].cap = per
		m.shards[i].entries = make(map[memoKey][]float64, per)
	}
	return m
}

// Get returns the cached column for (kind, q, steps) and marks it most
// recently used. The returned slice is immutable: callers must not write to
// it, and may read it indefinitely — it stays valid even after eviction.
func (m *ScoreMemo) Get(kind Kind, q graph.NodeID, steps int) ([]float64, bool) {
	if m == nil {
		return nil, false
	}
	k := memoKey{kind, q, steps}
	s := &m.shards[k.shard(m.mask)]
	s.mu.Lock()
	col, ok := s.entries[k]
	if ok {
		s.touchLocked(k)
	}
	s.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	return col, ok
}

// Put publishes a copy of scores under (kind, q, steps), evicting the least
// recently used entry of the key's shard when full. If the key is already
// present the existing column is kept (columns are deterministic for the
// configuration the memo is bound to, so the stored values are already
// correct) and only its recency is refreshed — published columns are never
// written again.
func (m *ScoreMemo) Put(kind Kind, q graph.NodeID, steps int, scores []float64) {
	if m == nil {
		return
	}
	k := memoKey{kind, q, steps}
	s := &m.shards[k.shard(m.mask)]
	// Copy outside the lock: the column must be complete before it is
	// published, and the O(|V|) copy should not extend the critical section.
	col := make([]float64, len(scores))
	copy(col, scores)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[k]; ok {
		s.touchLocked(k)
		return
	}
	if len(s.order) >= s.cap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	s.entries[k] = col
	s.order = append(s.order, k)
}

// Len reports the number of cached columns.
func (m *ScoreMemo) Len() int {
	if m == nil {
		return 0
	}
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Cap reports the memo's total capacity (0 for a nil memo). Callers whose
// working set of targets exceeds the capacity should bypass the memo
// entirely: a sequential scan over more targets than the LRU holds evicts
// every entry before its re-use, paying the O(|V|) insert copies for zero
// hits.
func (m *ScoreMemo) Cap() int {
	if m == nil {
		return 0
	}
	return m.cap
}

// Hits and Misses report the memo's lifetime lookup outcomes (atomic reads,
// safe concurrently); the serving layer surfaces them in /stats.
func (m *ScoreMemo) Hits() int64 {
	if m == nil {
		return 0
	}
	return m.hits.Load()
}

// Misses reports lifetime Get misses; see Hits.
func (m *ScoreMemo) Misses() int64 {
	if m == nil {
		return 0
	}
	return m.misses.Load()
}

// touchLocked moves k to the shard's most-recently-used position. O(shard
// cap), which is fine for the small per-shard capacities the memo is meant
// for. The caller holds the shard lock and has verified k is present.
func (s *memoShard) touchLocked(k memoKey) {
	for i, ok := range s.order {
		if ok == k {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = k
			return
		}
	}
}
