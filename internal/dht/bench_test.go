package dht

import (
	"testing"

	"repro/internal/graph"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{800, 800, 800}, PIn: 0.01, POut: 0.01, Seed: 1, MinOutLink: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBackWalk measures the §VI-A primitive: one d-step backward walk
// scoring every source node against one target.
func BenchmarkBackWalk(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalk(graph.NodeID(i%g.NumNodes()), 8, out)
	}
}

// BenchmarkForwardScore measures the per-pair forward absorbing walk (the
// F-BJ primitive) for comparison against BackWalk: one forward walk scores a
// single pair, one backward walk scores |V| pairs.
func BenchmarkForwardScore(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ForwardScore(graph.NodeID(i%100), graph.NodeID(1000+i%100))
	}
}

// BenchmarkYBoundTable measures the Theorem-1 precomputation.
func BenchmarkYBoundTable(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]graph.NodeID, 100)
	q := make([]graph.NodeID, 100)
	for i := range p {
		p[i] = graph.NodeID(i)
		q[i] = graph.NodeID(1000 + i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewYBoundTable(e, p, q)
	}
}

// BenchmarkExactColumn measures the dense ground-truth solver on a small
// graph (it is O(n³) and exists only for verification).
func BenchmarkExactColumn(b *testing.B) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{60, 60}, PIn: 0.1, POut: 0.05, Seed: 2, MinOutLink: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := DHTLambda(0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactColumn(g, p, graph.NodeID(i%g.NumNodes())); err != nil {
			b.Fatal(err)
		}
	}
}
