package dht

import (
	"fmt"

	"repro/internal/graph"
)

// Kind selects which step probability the general form folds (the paper's
// conclusion names Personalized PageRank as the intended extension of the
// join framework; the IDJ machinery only needs the Equation-4 shape).
type Kind int

const (
	// FirstHit folds first-hit probabilities P_i(u,v): the paper's DHT.
	FirstHit Kind = iota
	// Reach folds reach probabilities S_i(u,v) (the walk may revisit v):
	// with α = 1−c, β = 0, λ = c this is Personalized PageRank without its
	// i=0 self term.
	Reach
)

// String names the kind.
func (k Kind) String() string {
	if k == Reach {
		return "reach"
	}
	return "first-hit"
}

// PPR returns the Personalized-PageRank parameters for damping factor
// c ∈ (0,1): π_u(v) = Σ_{i≥1} (1−c)·c^i·S_i(u,v), i.e. α = 1−c, β = 0,
// λ = c, folded over reach probabilities (Kind Reach).
func PPR(c float64) Params {
	return Params{Alpha: 1 - c, Beta: 0, Lambda: c}
}

// ForwardScoreKind computes the truncated score under the given kind with a
// forward walk: FirstHit uses the absorbing walk, Reach the plain one.
func (e *Engine) ForwardScoreKind(kind Kind, p, q graph.NodeID, steps int) float64 {
	if kind == FirstHit {
		return e.ForwardScoreAt(p, q, steps)
	}
	return e.Params.Score(e.forwardReachProbs(p, q, steps))
}

// forwardReachProbs advances an unabsorbed walk from p, recording the mass
// at q after each step: probs[i-1] = S_i(p, q).
func (e *Engine) forwardReachProbs(p, q graph.NodeID, steps int) []float64 {
	e.Walks++
	probs := make([]float64, steps)
	cur, next := e.cur, e.next
	clearVec(cur)
	cur[p] = 1
	for i := 0; i < steps; i++ {
		clearVec(next)
		e.EdgeSweeps++
		for u := 0; u < e.G.NumNodes(); u++ {
			m := cur[u]
			if m == 0 {
				continue
			}
			to, _, tp := e.G.OutEdges(graph.NodeID(u))
			for j := range to {
				next[to[j]] += m * tp[j]
			}
		}
		probs[i] = next[q]
		cur, next = next, cur
	}
	return probs
}

// BackWalkKind computes out[u] = truncated score from u to q for every node
// u, under the given kind: one backward sweep per step, shared by all
// sources — the backward-processing primitive generalized beyond first-hit.
func (e *Engine) BackWalkKind(kind Kind, q graph.NodeID, steps int, out []float64) {
	if kind == FirstHit {
		e.BackWalk(q, steps, out)
		return
	}
	e.Walks++
	if len(out) != e.G.NumNodes() {
		panic(fmt.Sprintf("dht: BackWalkKind out has length %d, want %d", len(out), e.G.NumNodes()))
	}
	cur, next := e.cur, e.next
	clearVec(cur)
	clearVec(out)
	cur[q] = 1
	pow := 1.0
	for i := 1; i <= steps; i++ {
		pow *= e.Params.Lambda
		clearVec(next)
		e.EdgeSweeps++
		for v := 0; v < e.G.NumNodes(); v++ {
			m := cur[v]
			if m == 0 {
				continue
			}
			from, _, fp := e.G.InEdges(graph.NodeID(v))
			for j := range from {
				next[from[j]] += fp[j] * m
			}
		}
		// next[u] = S_i(u, q); no re-absorption: the walk may pass q.
		for u := range next {
			out[u] += pow * next[u]
		}
		cur, next = next, cur
	}
	a, b := e.Params.Alpha, e.Params.Beta
	for u := range out {
		out[u] = a*out[u] + b
	}
}

// ExactReachColumn solves the reach-measure analogue of ExactColumn:
// φ(u) = Σ_{i≥1} λ^i·S_i(u, v) satisfies (I − λP)·φ = λ·p_{·v} with no
// column dropped (the walk continues through v). out[u] = α·φ(u) + β.
func ExactReachColumn(g *graph.Graph, p Params, v graph.NodeID) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("dht: exact solve on empty graph")
	}
	if n > 4096 {
		return nil, fmt.Errorf("dht: exact solve limited to 4096 nodes, got %d (use BackWalkKind)", n)
	}
	a := make([][]float64, n)
	rhs := make([]float64, n)
	for u := 0; u < n; u++ {
		a[u] = make([]float64, n)
		a[u][u] = 1
		to, _, tp := g.OutEdges(graph.NodeID(u))
		for j := range to {
			w := to[j]
			a[u][w] -= p.Lambda * tp[j]
			if w == v {
				rhs[u] += p.Lambda * tp[j]
			}
		}
	}
	phi, err := solveDense(a, rhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		out[u] = p.Alpha*phi[u] + p.Beta
	}
	return out, nil
}
