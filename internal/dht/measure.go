package dht

import (
	"fmt"

	"repro/internal/graph"
)

// Kind selects which step probability the general form folds (the paper's
// conclusion names Personalized PageRank as the intended extension of the
// join framework; the IDJ machinery only needs the Equation-4 shape).
type Kind int

const (
	// FirstHit folds first-hit probabilities P_i(u,v): the paper's DHT.
	FirstHit Kind = iota
	// Reach folds reach probabilities S_i(u,v) (the walk may revisit v):
	// with α = 1−c, β = 0, λ = c this is Personalized PageRank without its
	// i=0 self term.
	Reach
)

// String names the kind.
func (k Kind) String() string {
	if k == Reach {
		return "reach"
	}
	return "first-hit"
}

// PPR returns the Personalized-PageRank parameters for damping factor
// c ∈ (0,1): π_u(v) = Σ_{i≥1} (1−c)·c^i·S_i(u,v), i.e. α = 1−c, β = 0,
// λ = c, folded over reach probabilities (Kind Reach).
func PPR(c float64) Params {
	return Params{Alpha: 1 - c, Beta: 0, Lambda: c}
}

// ForwardScoreKind computes the truncated score under the given kind with a
// forward walk: FirstHit uses the absorbing walk, Reach the plain one.
func (e *Engine) ForwardScoreKind(kind Kind, p, q graph.NodeID, steps int) float64 {
	if kind == FirstHit {
		return e.ForwardScoreAt(p, q, steps)
	}
	return e.Params.Score(e.forwardReachProbs(p, q, e.probsScratch(steps)))
}

// forwardReachProbs advances an unabsorbed walk from p through the adaptive
// kernel, recording the mass at q after each step: probs[i-1] = S_i(p, q).
func (e *Engine) forwardReachProbs(p, q graph.NodeID, probs []float64) []float64 {
	sweeps0, frontier0 := e.beginWalk()
	clearVec(probs)
	e.seed(p)
	for i := range probs {
		if e.frontierEmpty() {
			break // mass all lost in sinks; S_j = 0 from here
		}
		e.push(false)
		probs[i] = e.next[q]
		e.commit(i == len(probs)-1)
	}
	e.endWalk(sweeps0, frontier0)
	return probs
}

// BackWalkKind computes out[u] = truncated score from u to q for every node
// u, under the given kind: one backward step per walk length, shared by all
// sources — the backward-processing primitive generalized beyond first-hit.
func (e *Engine) BackWalkKind(kind Kind, q graph.NodeID, steps int, out []float64) {
	if kind == FirstHit {
		e.BackWalk(q, steps, out)
		return
	}
	if len(out) != e.G.NumNodes() {
		panic(fmt.Sprintf("dht: BackWalkKind out has length %d, want %d", len(out), e.G.NumNodes()))
	}
	sweeps0, frontier0 := e.beginWalk()
	clearVec(out)
	e.seed(q)
	pow := 1.0
	for i := 1; i <= steps; i++ {
		if e.frontierEmpty() {
			break // mass all lost in sinks; S_j = 0 from here
		}
		pow *= e.Params.Lambda
		e.push(true)
		// next[u] = S_i(u, q); no re-absorption: the walk may pass q.
		next := e.next
		if e.lastDense {
			for u := range next {
				out[u] += pow * next[u]
			}
		} else {
			for _, u := range e.nextF {
				out[u] += pow * next[u]
			}
		}
		e.commit(i == steps)
	}
	a, b := e.Params.Alpha, e.Params.Beta
	for u := range out {
		out[u] = a*out[u] + b
	}
	e.endWalk(sweeps0, frontier0)
}

// ExactReachColumn solves the reach-measure analogue of ExactColumn:
// φ(u) = Σ_{i≥1} λ^i·S_i(u, v) satisfies (I − λP)·φ = λ·p_{·v} with no
// column dropped (the walk continues through v). out[u] = α·φ(u) + β.
func ExactReachColumn(g *graph.Graph, p Params, v graph.NodeID) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("dht: exact solve on empty graph")
	}
	if n > 4096 {
		return nil, fmt.Errorf("dht: exact solve limited to 4096 nodes, got %d (use BackWalkKind)", n)
	}
	a := make([][]float64, n)
	rhs := make([]float64, n)
	for u := 0; u < n; u++ {
		a[u] = make([]float64, n)
		a[u][u] = 1
		to, _, tp := g.OutEdges(graph.NodeID(u))
		for j := range to {
			w := to[j]
			a[u][w] -= p.Lambda * tp[j]
			if w == v {
				rhs[u] += p.Lambda * tp[j]
			}
		}
	}
	phi, err := solveDense(a, rhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		out[u] = p.Alpha*phi[u] + p.Beta
	}
	return out, nil
}
