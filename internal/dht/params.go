// Package dht implements the discounted hitting time (DHT) of Zhang, Cheng,
// and Kao (ICDE 2014): the general form h(u,v) = α·Σ λ^i·P_i(u,v) + β
// (Definition 5), its two published parameterizations DHTe and DHTλ
// (Table II), truncated evaluation h_d (Equation 4) with the Lemma-1 step
// bound, forward absorbing walks, backward walks (backWalk, Equation 5), the
// X⁺ₗ and Y⁺ₗ pruning bounds (Lemma 2 and Theorem 1), and an exact dense
// solver used as ground truth in tests.
package dht

import (
	"fmt"
	"math"
)

// Params holds the coefficients of the general DHT form (Definition 5):
//
//	h(u,v) = α · Σ_{i≥1} λ^i · P_i(u,v) + β,   λ ∈ (0,1), α ≠ 0.
//
// P_i(u,v) is the probability that a random walk from u first hits v at
// step i. Note h is a similarity: larger is closer.
type Params struct {
	Alpha  float64
	Beta   float64
	Lambda float64
}

// DHTE returns the parameters of the DHTe measure of Guan et al. (SIGMOD'11):
// α = e, β = 0, λ = 1/e (Table II).
func DHTE() Params {
	return Params{Alpha: math.E, Beta: 0, Lambda: 1 / math.E}
}

// DHTLambda returns the parameters of the (negated) DHTλ measure of Sarkar &
// Moore (KDD'10) with decay factor lambda: α = 1/(1−λ), β = −1/(1−λ)
// (Table II).
func DHTLambda(lambda float64) Params {
	return Params{Alpha: 1 / (1 - lambda), Beta: -1 / (1 - lambda), Lambda: lambda}
}

// Validate checks the Definition-5 constraints.
func (p Params) Validate() error {
	if !(p.Lambda > 0 && p.Lambda < 1) {
		return fmt.Errorf("dht: lambda must lie in (0,1), got %g", p.Lambda)
	}
	if p.Alpha <= 0 || math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0) {
		// Both published parameterizations have α > 0, and the IDJ pruning
		// bounds (Lemma 2, Theorem 1) rely on it: with α > 0, h_l is
		// non-decreasing in l and X⁺ₗ/Y⁺ₗ bound the remaining mass above.
		return fmt.Errorf("dht: alpha must be finite and positive, got %g", p.Alpha)
	}
	if math.IsNaN(p.Beta) || math.IsInf(p.Beta, 0) {
		return fmt.Errorf("dht: beta must be finite, got %g", p.Beta)
	}
	return nil
}

// StepsForEpsilon returns the smallest walk length d such that
// |h(u,v) − h_d(u,v)| ≤ ε for every node pair (Lemma 1):
//
//	d ≥ log_λ( ε(1−λ) / (αλ) ).
//
// With the paper's defaults (DHTλ, λ=0.2, ε=1e-6) this returns 8.
func (p Params) StepsForEpsilon(eps float64) int {
	if eps <= 0 {
		panic(fmt.Sprintf("dht: epsilon must be positive, got %g", eps))
	}
	arg := eps * (1 - p.Lambda) / (math.Abs(p.Alpha) * p.Lambda)
	if arg >= 1 {
		return 1
	}
	d := math.Log(arg) / math.Log(p.Lambda)
	n := int(math.Ceil(d))
	if n < 1 {
		n = 1
	}
	return n
}

// Score folds truncated hitting probabilities P_1..P_d into h_d (Equation 4):
// h_d(u,v) = α · Σ_{i=1..d} λ^i·P_i + β.
func (p Params) Score(hitProbs []float64) float64 {
	var s float64
	pow := 1.0
	for _, pi := range hitProbs {
		pow *= p.Lambda
		s += pow * pi
	}
	return p.Alpha*s + p.Beta
}

// XBound returns X⁺ₗ = α·Σ_{i>l} λ^i = α·λ^(l+1)/(1−λ) (Lemma 2): the
// maximum mass h can still gain after step l, independent of the graph.
func (p Params) XBound(l int) float64 {
	return p.Alpha * math.Pow(p.Lambda, float64(l+1)) / (1 - p.Lambda)
}

// MaxScore returns the supremum of h: attained when P_1 = 1, i.e. αλ + β.
func (p Params) MaxScore() float64 { return p.Alpha*p.Lambda + p.Beta }

// MinScore returns the infimum of h_d: all hitting probabilities zero, i.e. β.
func (p Params) MinScore() float64 { return p.Beta }

// String renders the parameters compactly.
func (p Params) String() string {
	return fmt.Sprintf("DHT(α=%.4g, β=%.4g, λ=%.4g)", p.Alpha, p.Beta, p.Lambda)
}
