package dht

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// ExactScore computes the untruncated h(u, v) by solving the absorbing-chain
// linear system with dense Gaussian elimination. Writing
// φ(u) = Σ_{i≥1} λ^i P_i(u,v), first-step analysis gives, for u ≠ v,
//
//	φ(u) = λ · Σ_{(u,w)∈E} p_uw · ( w = v ? 1 : φ(w) )
//
// i.e. (I − λ·P_{−v}) φ = λ·p_{·v}, where P_{−v} zeroes the column of v.
// Then h(u,v) = α·φ(u) + β. Cost O(n³): ground truth for small test graphs
// only.
func ExactScore(g *graph.Graph, p Params, u, v graph.NodeID) (float64, error) {
	phi, err := ExactColumn(g, p, v)
	if err != nil {
		return 0, err
	}
	return phi[u], nil
}

// ExactColumn returns h(u, v) for every u at once (the exact analogue of a
// backward walk): out[u] = α·φ(u) + β, out[v] = 0.
func ExactColumn(g *graph.Graph, p Params, v graph.NodeID) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("dht: exact solve on empty graph")
	}
	if n > 4096 {
		return nil, fmt.Errorf("dht: exact solve limited to 4096 nodes, got %d (use BackWalk)", n)
	}
	// Build A = I − λ·P with the v column dropped, rhs = λ·p_{·v}.
	a := make([][]float64, n)
	rhs := make([]float64, n)
	for u := 0; u < n; u++ {
		a[u] = make([]float64, n)
		a[u][u] = 1
		if graph.NodeID(u) == v {
			continue // φ(v) is not defined by the recurrence; pin it to 0
		}
		to, _, tp := g.OutEdges(graph.NodeID(u))
		for j := range to {
			w := to[j]
			if w == v {
				rhs[u] += p.Lambda * tp[j]
			} else {
				a[u][w] -= p.Lambda * tp[j]
			}
		}
	}
	phi, err := solveDense(a, rhs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		if graph.NodeID(u) == v {
			out[u] = 0
			continue
		}
		out[u] = p.Alpha*phi[u] + p.Beta
	}
	return out, nil
}

// solveDense solves a·x = b with partial-pivoting Gaussian elimination,
// destroying a and b.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("dht: singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
