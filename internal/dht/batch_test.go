package dht

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// batchWidths is the spread the ISSUE calls for: solo-degenerate, tiny,
// odd (partial cache line), and far wider than any test graph's frontier.
var batchWidths = []int{1, 2, 7, 64}

func mustBatchEngine(t testing.TB, g *graph.Graph, p Params, d, w int) *BatchEngine {
	t.Helper()
	be, err := NewBatchEngine(g, p, d, w)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// batchTargets deals n targets around the graph, with repeats across calls
// so the lazy β-restore path is exercised.
func batchTargets(g *graph.Graph, count, salt int) []graph.NodeID {
	n := g.NumNodes()
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = graph.NodeID((((i*7 + salt*3) % n) + n) % n)
	}
	return out
}

// TestBatchBackWalkScoresBitIdentical is the batched kernel's central
// property: every column of a BackWalkScoresBatch must be bit-identical
// (==, not approximately equal) to a solo BackWalkScores run for that
// column's target, at every batch width, for both measure kinds, across
// repeated calls on the same engine (exercising the β-restore), and on
// batches that fall back to dense sweeps.
func TestBatchBackWalkScoresBitIdentical(t *testing.T) {
	for gi, g := range sparseTestGraphs(t) {
		for _, params := range []Params{DHTLambda(0.2), DHTLambda(0.7), PPR(0.5)} {
			for _, w := range batchWidths {
				be := mustBatchEngine(t, g, params, 8, w)
				solo := mustEngine(t, g, params, 8)
				for _, kind := range []Kind{FirstHit, Reach} {
					for rep := 0; rep < 3; rep++ {
						for _, steps := range []int{1, 2, 8} {
							qs := batchTargets(g, w, rep+steps)
							cols := be.BackWalkScoresBatch(kind, qs, steps)
							for c, q := range qs {
								ref := solo.BackWalkScores(kind, q, steps)
								for u := range ref {
									if cols[c][u] != ref[u] {
										t.Fatalf("graph %d %v %v w=%d steps=%d rep=%d col %d (q=%d) node %d: batch %v != solo %v",
											gi, params, kind, w, steps, rep, c, q, u, cols[c][u], ref[u])
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchDenseFallbackBitIdentical forces the regimes around the
// sparse→dense switch: a threshold of zero (every step dense), a huge
// threshold (every step sparse), and ForceDense, all of which must agree
// bit-for-bit with the solo adaptive engine.
func TestBatchDenseFallbackBitIdentical(t *testing.T) {
	g := sparseTestGraphs(t)[2] // the denser ER graph: frontiers saturate fast
	params := DHTLambda(0.5)
	solo := mustEngine(t, g, params, 8)
	for _, mode := range []struct {
		name      string
		threshold float64
		force     bool
	}{
		{"always-dense", 1e-9, false},
		{"always-sparse", 1e9, false},
		{"force-dense", 0, true},
	} {
		be := mustBatchEngine(t, g, params, 8, 7)
		be.DenseThreshold = mode.threshold
		be.ForceDense = mode.force
		for rep := 0; rep < 2; rep++ {
			qs := batchTargets(g, 7, rep)
			cols := be.BackWalkScoresBatch(FirstHit, qs, 8)
			for c, q := range qs {
				ref := solo.BackWalkScores(FirstHit, q, 8)
				for u := range ref {
					if cols[c][u] != ref[u] {
						t.Fatalf("%s rep=%d col %d (q=%d) node %d: batch %v != solo %v",
							mode.name, rep, c, q, u, cols[c][u], ref[u])
					}
				}
			}
		}
	}
}

// TestBatchForwardProbsBitIdentical pins ForwardProbsBatch to the solo
// forward walks: first-hit rows against ForwardHitProbs (including p == q
// columns, which are zero by definition) and reach rows against the
// ForwardScoreKind fold.
func TestBatchForwardProbsBitIdentical(t *testing.T) {
	for gi, g := range sparseTestGraphs(t) {
		n := g.NumNodes()
		params := DHTLambda(0.3)
		solo := mustEngine(t, g, params, 8)
		for _, w := range batchWidths {
			be := mustBatchEngine(t, g, params, 8, w)
			for rep := 0; rep < 2; rep++ {
				ps := batchTargets(g, w, rep)
				qs := make([]graph.NodeID, w)
				for c := range qs {
					qs[c] = graph.NodeID((int(ps[c]) + c*5 + rep) % n)
				}
				if w > 1 {
					qs[w/2] = ps[w/2] // force a p == q column
				}
				rows := be.ForwardProbsBatch(FirstHit, ps, qs, 8)
				for c := range ps {
					ref := solo.ForwardHitProbs(ps[c], qs[c], 8)
					for i := range ref {
						if rows[c][i] != ref[i] {
							t.Fatalf("graph %d w=%d rep=%d col %d (%d→%d) step %d: batch %v != solo %v",
								gi, w, rep, c, ps[c], qs[c], i, rows[c][i], ref[i])
						}
					}
				}
				rows = be.ForwardProbsBatch(Reach, ps, qs, 8)
				for c := range ps {
					got := params.Score(rows[c])
					want := solo.ForwardScoreKind(Reach, ps[c], qs[c], 8)
					if got != want {
						t.Fatalf("graph %d w=%d rep=%d col %d (%d→%d): reach fold %v != solo %v",
							gi, w, rep, c, ps[c], qs[c], got, want)
					}
				}
			}
		}
	}
}

// TestBatchProperty drives the batched/solo equivalence through
// testing/quick over random ER graphs, widths, depths, and λ.
func TestBatchProperty(t *testing.T) {
	f := func(seed int64, rawL, rawD, rawW uint8) bool {
		n := 20 + int(seed%17+17)%17
		g, err := graph.GenerateER(n, 0.12, seed)
		if err != nil {
			return false
		}
		lambda := 0.1 + float64(rawL%8)/10
		d := 1 + int(rawD%8)
		w := 1 + int(rawW%9)
		p := DHTLambda(lambda)
		be, err := NewBatchEngine(g, p, d, w)
		if err != nil {
			return false
		}
		solo, err := NewEngine(g, p, d)
		if err != nil {
			return false
		}
		qs := batchTargets(g, w, int(seed%13))
		cols := be.BackWalkScoresBatch(FirstHit, qs, d)
		for c, q := range qs {
			ref := solo.BackWalkScores(FirstHit, q, d)
			for u := range ref {
				if cols[c][u] != ref[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDuplicateTargets: the same target may occupy several columns
// (nothing in the API forbids it); each column must still match its solo
// walk.
func TestBatchDuplicateTargets(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	be := mustBatchEngine(t, g, DHTLambda(0.2), 8, 4)
	solo := mustEngine(t, g, DHTLambda(0.2), 8)
	qs := []graph.NodeID{3, 3, 7, 3}
	cols := be.BackWalkScoresBatch(FirstHit, qs, 4)
	for c, q := range qs {
		ref := solo.BackWalkScores(FirstHit, q, 4)
		for u := range ref {
			if cols[c][u] != ref[u] {
				t.Fatalf("dup col %d (q=%d) node %d: %v != %v", c, q, u, cols[c][u], ref[u])
			}
		}
	}
}

// TestBatchPoolCheckout covers GetBatch/PutBatch reuse and the pool-entry
// validation fix: engines for the wrong graph or a narrower width must be
// dropped, not handed back out.
func TestBatchPoolCheckout(t *testing.T) {
	gs := sparseTestGraphs(t)
	pl, err := NewEnginePool(gs[0], DHTLambda(0.2), 4)
	if err != nil {
		t.Fatal(err)
	}
	pl.BatchWidth = 4
	be := pl.GetBatch()
	if be.G != gs[0] || be.W < 4 {
		t.Fatalf("GetBatch handed out engine for wrong config: G ok=%v W=%d", be.G == gs[0], be.W)
	}
	pl.PutBatch(be)

	// A foreign engine (other graph, same width) must not survive checkin.
	foreign, err := NewBatchEngine(gs[1], DHTLambda(0.2), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl.PutBatch(foreign)
	for i := 0; i < 4; i++ {
		got := pl.GetBatch()
		if got.G != gs[0] {
			t.Fatal("pool handed out a batch engine built for a different graph")
		}
		defer pl.PutBatch(got)
	}

	// Same for the solo side: a mismatched engine is dropped at Get.
	wrong, err := NewEngine(gs[1], DHTLambda(0.2), 4)
	if err != nil {
		t.Fatal(err)
	}
	pl.pool.Put(wrong) // bypass Put's validation to simulate a stale entry
	for i := 0; i < 4; i++ {
		got := pl.Get()
		if got.G != gs[0] || len(got.cur) != gs[0].NumNodes() {
			t.Fatal("pool handed out an engine with scratch sized to a different graph")
		}
		defer pl.Put(got)
	}

	// Cross-contract firewall: a FastCertified engine shoved into the batch
	// pool (sync.Pool is untyped, so nothing stops a confused caller) must
	// never satisfy a bit-identical checkout — and vice versa.
	fast, err := NewFastBatchEngine(gs[0], DHTLambda(0.2), 4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	pl.bpool.Put(fast) // bypass PutBatch: simulate cross-contract pollution
	if got := pl.GetBatch(); got.Contract() != BitIdentical || got.G != gs[0] {
		t.Fatalf("GetBatch returned a %v engine after fast-engine pollution", got.Contract())
	} else {
		pl.PutBatch(got)
	}
	exact, err := NewBatchEngine(gs[0], DHTLambda(0.2), 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	pl.fpool.Put(exact) // and the mirror image on the fast pool
	if got := pl.GetFast(); got.Contract() != FastCertified || got.G != gs[0] {
		t.Fatalf("GetFast returned a %v engine after exact-engine pollution", got.Contract())
	} else {
		pl.PutFast(got)
	}

	// Regular fast checkout round-trips: reuse on match, drop on mismatch.
	pl.FastWidth = 16
	fe := pl.GetFast()
	if fe.G != gs[0] || fe.W < 16 {
		t.Fatalf("GetFast handed out engine for wrong config: G ok=%v W=%d", fe.G == gs[0], fe.W)
	}
	pl.PutFast(fe)
	foreignFast, err := NewFastBatchEngine(gs[1], DHTLambda(0.2), 4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	pl.PutFast(foreignFast)
	for i := 0; i < 4; i++ {
		got := pl.GetFast()
		if got.G != gs[0] {
			t.Fatal("pool handed out a fast engine built for a different graph")
		}
		defer pl.PutFast(got)
	}
}

// TestBatchCountersFlushToSink checks the Sink aggregation: Walks counts
// columns, and the per-batch deltas arrive atomically.
func TestBatchCountersFlushToSink(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	var sink Counters
	be := mustBatchEngine(t, g, DHTLambda(0.2), 4, 4)
	be.Sink = &sink
	be.BackWalkScoresBatch(FirstHit, []graph.NodeID{0, 1, 2}, 4)
	be.ForwardProbsBatch(FirstHit, []graph.NodeID{0, 1}, []graph.NodeID{3, 4}, 4)
	snap := sink.Snapshot()
	if snap.Walks != 5 {
		t.Fatalf("sink walks = %d, want 5 (3 backward columns + 2 forward)", snap.Walks)
	}
	if snap.EdgeSweeps != be.EdgeSweeps || snap.FrontierEdges != be.FrontierEdges {
		t.Fatalf("sink deltas diverge from engine counters: %+v vs sweeps=%d frontier=%d",
			snap, be.EdgeSweeps, be.FrontierEdges)
	}
}
