package dht

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// DefaultBatchWidth is the number of walk columns a BatchEngine advances per
// CSR row scan when the caller does not choose a width. Eight float64 lanes
// are exactly one 64-byte cache line, so each node's mass block occupies a
// single line: relaxing an edge touches one line of cur and one of next no
// matter how many of the lanes carry mass through it. The default is a
// cache-line consequence of the float64 element type, not a property of the
// kernel — callers may pick any width, and the float32 fast kernel's
// DefaultFastWidth (16) is the same one-line-per-node layout at half the
// element size.
const DefaultBatchWidth = 8

// BatchEngine evaluates up to W independent truncated walks over one graph
// with one CSR traversal per step — the SpMV→SpMM upgrade of the solo
// Engine. The scratch vectors are laid out node-major: node v's W column
// masses are the contiguous block [v*W, v*W+W), so one edge relaxation
// updates all columns from a single pair of cache lines.
//
// Each step advances the union frontier (the sorted set of nodes where *any*
// column carries mass) and chooses, like the solo engine, between a sparse
// push over only the frontier's CSR rows and a dense whole-graph sweep once
// the union frontier's incident edges exceed DenseThreshold·|V|. Within a
// row, zero-mass lanes are skipped, so every column performs exactly the
// floating-point additions of its solo walk, in the same ascending
// source-node order — each column is bit-identical (== on every float64) to
// the corresponding solo Engine walk regardless of what the other columns in
// the batch do and regardless of where the sparse→dense switch lands. See
// DESIGN.md ("The batched multi-walk kernel") for the full argument.
//
// A BatchEngine owns its scratch and is single-goroutine, like Engine;
// create one per worker or check them out of an EnginePool (GetBatch).
type BatchEngine struct {
	G      *graph.Graph
	Params Params
	D      int
	W      int // column capacity; calls may use any active width ≤ W

	// DenseThreshold overrides DefaultDenseThreshold when positive, exactly
	// as on Engine, but applied to the *union* frontier of the batch.
	DenseThreshold float64

	// ForceDense disables the sparse path entirely; used by tests as the
	// reference kernel.
	ForceDense bool

	// Sink, when non-nil, receives per-batch counter deltas via atomic adds.
	Sink *Counters

	// mass vectors, len = NumNodes·W, node-major blocks of W
	cur, next []float64
	// union-frontier lists: curF is the sorted set of nodes where any lane
	// is nonzero; nextF is reused as the touched list of the step in flight.
	curF, nextF []graph.NodeID
	mark        []uint32 // per-node stamp deduplicating nextF
	stamp       uint32
	lastDense   bool
	full        bool // batch switched to dense mode (sticky, as on Engine)

	// acc is the dense-mode score accumulator, node-major like the mass
	// vectors: once a batch goes dense, per-step accumulation is one
	// sequential pass acc[i] += pow·next[i] instead of W strided column
	// writes; the affine fold transposes it into the out columns at the
	// end. Raw sums move between the out columns and acc exactly once (at
	// the sparse→dense switch), preserving the step-order addition sequence
	// that makes each column bit-identical to its solo walk.
	acc []float64

	// Engine-owned score columns for BackWalkScoresBatch, kept β-prefilled
	// between calls like Engine's single β column. colMark is node-major
	// like the mass vectors: colMark[v*W+c] stamps (node v, column c).
	out        [][]float64
	colTouched [][]graph.NodeID
	colMark    []uint32
	ostamp     uint32
	outFull    bool // previous batch went dense; restore columns wholesale
	prevAW     int  // active width of the previous BackWalkScoresBatch call

	// Engine-owned per-step probability rows for ForwardProbsBatch.
	probs     [][]float64
	probsFlat []float64

	// Counters since construction; same semantics as Engine's, except that
	// one batched step counts its CSR traversal once, not once per column:
	// EdgeSweeps is the number of dense batch sweeps and FrontierEdges the
	// number of CSR edges scanned by sparse batch pushes. Walks counts
	// individual columns, so walks-per-sweep shows the amortization.
	EdgeSweeps    int64
	FrontierEdges int64
	SparseSteps   int64
	Walks         int64
}

// NewBatchEngine builds a batch engine for g with column capacity w
// (w <= 0 selects DefaultBatchWidth). d is the truncation depth.
func NewBatchEngine(g *graph.Graph, p Params, d, w int) (*BatchEngine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("dht: depth d must be >= 1, got %d", d)
	}
	if w <= 0 {
		w = DefaultBatchWidth
	}
	n := g.NumNodes()
	return &BatchEngine{
		G:      g,
		Params: p,
		D:      d,
		W:      w,
		cur:    make([]float64, n*w),
		next:   make([]float64, n*w),
		mark:   make([]uint32, n),
	}, nil
}

// beginBatch starts a batched run of cols columns: counts the walks, clears
// the previous batch's mass, and snapshots counters for the Sink flush.
func (be *BatchEngine) beginBatch(cols int) (sweeps0, frontier0 int64) {
	be.Walks += int64(cols)
	if be.full {
		clearVec(be.cur)
		be.full = false
	} else {
		w := be.W
		for _, u := range be.curF {
			b := int(u) * w
			for c := b; c < b+w; c++ {
				be.cur[c] = 0
			}
		}
	}
	be.curF = be.curF[:0]
	return be.EdgeSweeps, be.FrontierEdges
}

// endBatch flushes counter deltas to the Sink, if any.
func (be *BatchEngine) endBatch(cols int, sweeps0, frontier0 int64) {
	if be.Sink != nil {
		be.Sink.add(int64(cols), be.EdgeSweeps-sweeps0, be.FrontierEdges-frontier0)
	}
}

// frontierEmpty reports whether no column carries mass anymore (sparse mode
// only; a dense batch runs to full depth like the reference kernel).
func (be *BatchEngine) frontierEmpty() bool {
	return !be.full && len(be.curF) == 0
}

// nextStamp advances the union-frontier dedup stamp.
func (be *BatchEngine) nextStamp() uint32 {
	be.stamp++
	if be.stamp == 0 {
		clear(be.mark)
		be.stamp = 1
	}
	return be.stamp
}

// seedColumns places unit mass on seed[c] in column c and establishes the
// union frontier. A negative seed leaves its column empty (used for the
// p == q forward columns, whose first-hit probabilities are zero by
// definition).
func (be *BatchEngine) seedColumns(seeds []graph.NodeID) {
	w := be.W
	for c, s := range seeds {
		if s < 0 {
			continue
		}
		b := int(s) * w
		blockEmpty := true
		for i := b; i < b+w; i++ {
			if be.cur[i] != 0 {
				blockEmpty = false
				break
			}
		}
		if blockEmpty {
			be.curF = append(be.curF, s)
		}
		be.cur[b+c] = 1
	}
	slices.Sort(be.curF)
	// Duplicate seeds across columns land on the same node; dedup the list.
	be.curF = slices.Compact(be.curF)
}

// push advances every column one step: next += P·cur along out-edges
// (forward) or in-edges (backward) for aw active lanes, then consumes cur.
// The union frontier plays the role of the solo engine's frontier; zero-mass
// lanes are skipped inside each row, so per column the additions are exactly
// the solo walk's, in the same ascending source order.
func (be *BatchEngine) push(backward bool, aw int) {
	g := be.G
	w := be.W
	be.nextF = be.nextF[:0]
	sparse := !be.ForceDense && !be.full
	if sparse {
		df := be.DenseThreshold
		if df <= 0 {
			df = DefaultDenseThreshold
		}
		budget := int64(df * float64(g.NumNodes()))
		var work int64
		for _, u := range be.curF {
			if backward {
				work += int64(g.InDegree(u))
			} else {
				work += int64(g.OutDegree(u))
			}
			if work > budget {
				sparse = false
				break
			}
		}
		if sparse {
			be.SparseSteps++
			be.FrontierEdges += work
		}
	}
	be.lastDense = !sparse
	cur, next := be.cur, be.next
	// The lane loops add every lane unconditionally, zero-mass lanes
	// included: lane accumulators only ever hold sums of non-negative
	// products, and x + (+0.0) is bitwise x for every non-negative x, so the
	// additions a solo walk would not perform are exact no-ops — see
	// DESIGN.md for why this keeps each column bit-identical while letting
	// the inner loop run branch-free (and unrolled at the cache-line width).
	wide := w == laneWidth && aw == laneWidth
	switch {
	case sparse:
		st := be.nextStamp()
		mark, touched := be.mark, be.nextF
		for _, u := range be.curF {
			var nbr []graph.NodeID
			var tp []float64
			if backward {
				nbr, _, tp = g.InEdges(u)
			} else {
				nbr, _, tp = g.OutEdges(u)
			}
			if wide {
				mb := (*[laneWidth]float64)(cur[int(u)*laneWidth:])
				for j, v := range nbr {
					if mark[v] != st {
						mark[v] = st
						touched = append(touched, v)
					}
					p := tp[j]
					nb := (*[laneWidth]float64)(next[int(v)*laneWidth:])
					nb[0] += mb[0] * p
					nb[1] += mb[1] * p
					nb[2] += mb[2] * p
					nb[3] += mb[3] * p
					nb[4] += mb[4] * p
					nb[5] += mb[5] * p
					nb[6] += mb[6] * p
					nb[7] += mb[7] * p
				}
			} else {
				mb := cur[int(u)*w : int(u)*w+aw]
				for j, v := range nbr {
					if mark[v] != st {
						mark[v] = st
						touched = append(touched, v)
					}
					p := tp[j]
					nb := next[int(v)*w : int(v)*w+aw]
					nb = nb[:len(mb)]
					for c, m := range mb {
						nb[c] += m * p
					}
				}
			}
		}
		be.nextF = touched
	case backward:
		be.EdgeSweeps++
		for v := 0; v < g.NumNodes(); v++ {
			if wide {
				mb := (*[laneWidth]float64)(cur[v*laneWidth:])
				if !anyNonZeroLanes(mb) {
					continue
				}
				from, _, fp := g.InEdges(graph.NodeID(v))
				for j := range from {
					p := fp[j]
					nb := (*[laneWidth]float64)(next[int(from[j])*laneWidth:])
					nb[0] += mb[0] * p
					nb[1] += mb[1] * p
					nb[2] += mb[2] * p
					nb[3] += mb[3] * p
					nb[4] += mb[4] * p
					nb[5] += mb[5] * p
					nb[6] += mb[6] * p
					nb[7] += mb[7] * p
				}
			} else {
				mb := cur[v*w : v*w+aw]
				if !anyNonZero(mb) {
					continue
				}
				from, _, fp := g.InEdges(graph.NodeID(v))
				for j := range from {
					p := fp[j]
					nb := next[int(from[j])*w : int(from[j])*w+aw]
					nb = nb[:len(mb)]
					for c, m := range mb {
						nb[c] += m * p
					}
				}
			}
		}
	default:
		be.EdgeSweeps++
		for u := 0; u < g.NumNodes(); u++ {
			if wide {
				mb := (*[laneWidth]float64)(cur[u*laneWidth:])
				if !anyNonZeroLanes(mb) {
					continue
				}
				to, _, tp := g.OutEdges(graph.NodeID(u))
				for j := range to {
					p := tp[j]
					nb := (*[laneWidth]float64)(next[int(to[j])*laneWidth:])
					nb[0] += mb[0] * p
					nb[1] += mb[1] * p
					nb[2] += mb[2] * p
					nb[3] += mb[3] * p
					nb[4] += mb[4] * p
					nb[5] += mb[5] * p
					nb[6] += mb[6] * p
					nb[7] += mb[7] * p
				}
			} else {
				mb := cur[u*w : u*w+aw]
				if !anyNonZero(mb) {
					continue
				}
				to, _, tp := g.OutEdges(graph.NodeID(u))
				for j := range to {
					p := tp[j]
					nb := next[int(to[j])*w : int(to[j])*w+aw]
					nb = nb[:len(mb)]
					for c, m := range mb {
						nb[c] += m * p
					}
				}
			}
		}
	}
	// cur is consumed; clear it incrementally while the frontier is tracked,
	// wholesale once the batch has gone dense.
	if sparse || !be.full {
		for _, u := range be.curF {
			b := int(u) * w
			for i := b; i < b+w; i++ {
				cur[i] = 0
			}
		}
		be.curF = be.curF[:0]
	} else {
		clearVec(cur)
	}
	if !sparse {
		be.full = true // sticky: the rest of the batch stays dense
	}
}

// laneWidth is the specialized lane count of the hot inner loops: the
// DefaultBatchWidth cache-line block, handled with fixed-size array pointers
// so the compiler drops the per-lane bounds checks and the laneWidth
// independent multiply-adds pipeline. Only calls whose active and capacity
// widths both equal laneWidth take this path (the `wide` flag in step);
// every other width runs the variable-width loops, so the specialization is
// an optimization, never an assumption about W.
const laneWidth = DefaultBatchWidth

// anyNonZeroLanes is anyNonZero over a fixed-width block.
func anyNonZeroLanes(b *[laneWidth]float64) bool {
	return b[0] != 0 || b[1] != 0 || b[2] != 0 || b[3] != 0 ||
		b[4] != 0 || b[5] != 0 || b[6] != 0 || b[7] != 0
}

// anyNonZero reports whether the mass block carries mass in any lane.
func anyNonZero(b []float64) bool {
	for _, m := range b {
		if m != 0 {
			return true
		}
	}
	return false
}

// commit finishes a step after the caller has read (and possibly absorbed
// mass from) next: it rebuilds the sorted union frontier and swaps buffers.
// last marks the batch's final step, whose frontier is only used to clear
// the vectors, so sorting and filtering are skipped (as on Engine.commit).
func (be *BatchEngine) commit(last bool) {
	if be.lastDense {
		be.cur, be.next = be.next, be.cur
		return
	}
	w := be.W
	next := be.next
	switch {
	case last:
		// Raw touched list (a superset of the nonzero nodes) handed over
		// unsorted: it is only used for clearing at the next beginBatch.
	case len(be.nextF)*8 >= be.G.NumNodes():
		// Rebuild with one scan over node blocks, sorted for free.
		front := be.nextF[:0]
		for v := 0; v < be.G.NumNodes(); v++ {
			if anyNonZero(next[v*w : v*w+w]) {
				front = append(front, graph.NodeID(v))
			}
		}
		be.nextF = front
	default:
		// Sorted union frontier keeps the next push's additions in the
		// ascending order a solo walk would use — the bit-identity property.
		slices.Sort(be.nextF)
		kept := be.nextF[:0]
		for _, v := range be.nextF {
			if anyNonZero(next[int(v)*w : int(v)*w+w]) {
				kept = append(kept, v)
			}
		}
		be.nextF = kept
	}
	be.cur, be.next = be.next, be.cur
	be.curF, be.nextF = be.nextF, be.curF
}

// betaColumnsStart restores the engine-owned score columns used by the
// previous call to all-β and arms per-column touch tracking for aw columns.
func (be *BatchEngine) betaColumnsStart(aw int) [][]float64 {
	n := be.G.NumNodes()
	w := be.W
	b := be.Params.Beta
	if be.out == nil {
		flat := make([]float64, n*w)
		for i := range flat {
			flat[i] = b
		}
		be.out = make([][]float64, w)
		for c := range be.out {
			be.out[c] = flat[c*n : (c+1)*n]
		}
		be.colTouched = make([][]graph.NodeID, w)
		be.colMark = make([]uint32, n*w)
	} else if be.outFull {
		for c := 0; c < be.prevAW; c++ {
			col := be.out[c]
			for i := range col {
				col[i] = b
			}
		}
	} else {
		for c := 0; c < be.prevAW; c++ {
			col := be.out[c]
			for _, v := range be.colTouched[c] {
				col[v] = b
			}
		}
	}
	for c := 0; c < be.prevAW; c++ {
		be.colTouched[c] = be.colTouched[c][:0]
	}
	be.outFull = false
	be.prevAW = aw
	be.ostamp++
	if be.ostamp == 0 {
		clear(be.colMark)
		be.ostamp = 1
	}
	return be.out[:aw]
}

// BackWalkScoresBatch is Engine.BackWalkScores for a batch of targets: one
// CSR traversal per step serves all columns, and column c of the result is
// bit-identical to a solo BackWalkScores(kind, qs[c], steps) run. Returned
// columns are engine-owned β-prefilled score vectors of length NumNodes,
// valid until the next BackWalkScoresBatch call on this engine; they must
// not be modified. len(qs) must be in [1, W].
func (be *BatchEngine) BackWalkScoresBatch(kind Kind, qs []graph.NodeID, steps int) [][]float64 {
	aw := len(qs)
	if aw == 0 || aw > be.W {
		panic(fmt.Sprintf("dht: BackWalkScoresBatch with %d targets, want 1..%d", aw, be.W))
	}
	w := be.W
	sweeps0, frontier0 := be.beginBatch(aw)
	out := be.betaColumnsStart(aw)
	ost, colMark := be.ostamp, be.colMark
	be.seedColumns(qs)
	pow := 1.0
	absorb := kind == FirstHit
	for i := 1; i <= steps; i++ {
		if be.frontierEmpty() {
			break // no column can reach its target anymore
		}
		pow *= be.Params.Lambda
		be.push(true, aw)
		next := be.next
		if be.lastDense {
			// First dense step: move the raw sparse-step sums from the out
			// columns into the node-major accumulator (β-prefill entries
			// start from zero, mirroring the solo engine's first-touch
			// overwrite); afterwards each step is one sequential pass.
			if !be.outFull {
				be.outFull = true
				if be.acc == nil {
					be.acc = make([]float64, len(be.next))
				}
				acc := be.acc
				for v := 0; v < be.G.NumNodes(); v++ {
					b := v * w
					for c := 0; c < w; c++ {
						m := pow * next[b+c]
						if colMark[b+c] == ost {
							acc[b+c] = out[c][v] + m
						} else {
							acc[b+c] = m
						}
					}
				}
			} else {
				acc := be.acc
				for i, m := range next {
					acc[i] += pow * m
				}
			}
		} else {
			for _, v := range be.nextF {
				b := int(v) * w
				for c := 0; c < aw; c++ {
					m := next[b+c]
					if m == 0 {
						// A lane the step did not reach: the solo walk either
						// never touches it (same β) or touches it with an
						// underflowed +0 whose α·0+β fold equals the β
						// prefill bit for bit — skipping is value-identical.
						continue
					}
					if colMark[b+c] == ost {
						out[c][v] += pow * m
					} else {
						colMark[b+c] = ost
						be.colTouched[c] = append(be.colTouched[c], v)
						out[c][v] = pow * m
					}
				}
			}
		}
		if absorb {
			for c, q := range qs {
				next[int(q)*w+c] = 0 // walkers that reached q stop (Eq. 5)
			}
		}
		be.commit(i == steps)
	}
	a, b := be.Params.Alpha, be.Params.Beta
	if be.outFull {
		// Transpose the node-major accumulator into the out columns while
		// applying the affine fold — one sequential write stream per
		// active column.
		acc := be.acc
		for c := 0; c < aw; c++ {
			col := out[c]
			for v := range col {
				col[v] = a*acc[v*w+c] + b
			}
		}
	} else {
		for c := 0; c < aw; c++ {
			col := out[c]
			for _, v := range be.colTouched[c] {
				col[v] = a*col[v] + b
			}
		}
	}
	if absorb {
		for c, q := range qs {
			if !be.outFull && colMark[int(q)*w+c] != ost {
				colMark[int(q)*w+c] = ost
				be.colTouched[c] = append(be.colTouched[c], q)
			}
			out[c][q] = 0 // h(q,q) = 0 by definition
		}
	}
	be.endBatch(aw, sweeps0, frontier0)
	return out
}

// ForwardProbsBatch advances a batch of forward walks, one per (ps[c],
// qs[c]) pair: row c of the result holds the per-step probabilities of
// column c's walk — first-hit P_i(p, q) under FirstHit (absorbing at q, and
// all-zero for p == q, matching h(v,v) = 0), reach S_i(p, q) under Reach.
// Row c is bit-identical to the solo ForwardHitProbs / forward reach walk.
// Returned rows are engine-owned, valid until the next ForwardProbsBatch
// call. len(ps) must equal len(qs) and lie in [1, W].
func (be *BatchEngine) ForwardProbsBatch(kind Kind, ps, qs []graph.NodeID, steps int) [][]float64 {
	aw := len(ps)
	if aw != len(qs) {
		panic(fmt.Sprintf("dht: ForwardProbsBatch with %d sources, %d targets", len(ps), len(qs)))
	}
	if aw == 0 || aw > be.W {
		panic(fmt.Sprintf("dht: ForwardProbsBatch with %d pairs, want 1..%d", aw, be.W))
	}
	w := be.W
	probs := be.probsRows(aw, steps)
	sweeps0, frontier0 := be.beginBatch(aw)
	absorb := kind == FirstHit
	seeds := make([]graph.NodeID, aw)
	for c := range ps {
		seeds[c] = ps[c]
		if absorb && ps[c] == qs[c] {
			seeds[c] = -1 // no first-hit mass: h(v,v) = 0 by definition
		}
	}
	be.seedColumns(seeds)
	for i := 0; i < steps; i++ {
		if be.frontierEmpty() {
			break // all mass absorbed or lost in sinks; P_j = 0 from here
		}
		be.push(false, aw)
		next := be.next
		for c, q := range qs {
			idx := int(q)*w + c
			probs[c][i] = next[idx]
			if absorb {
				next[idx] = 0 // absorb: mass that hit q stops walking
			}
		}
		be.commit(i == steps-1)
	}
	be.endBatch(aw, sweeps0, frontier0)
	return probs
}

// probsRows returns zeroed engine-owned rows, aw × steps.
func (be *BatchEngine) probsRows(aw, steps int) [][]float64 {
	if cap(be.probsFlat) < be.W*steps {
		be.probsFlat = make([]float64, be.W*steps)
		be.probs = make([][]float64, be.W)
	}
	flat := be.probsFlat[:be.W*steps]
	clearVec(flat[:aw*steps])
	rows := be.probs[:aw]
	for c := range rows {
		rows[c] = flat[c*steps : (c+1)*steps]
	}
	return rows
}
