package dht

import (
	"math"

	"repro/internal/graph"
)

// YBoundTable precomputes Y⁺ₗ(P, q) of Theorem 1 for every candidate target
// q ∈ Q and every cut step l ∈ [0, d]:
//
//	Y⁺ₗ(P, q) = α · Σ_{i=l+1..d} λ^i · min( Σ_{p∈P} S_i(p, q), 1 )
//
// where S_i(p, q) is the probability a walk from p reaches q (not necessarily
// for the first time) at step i. Building the table is one unabsorbed d-step
// walk from all of P simultaneously — O(d·|E|) — after which Bound is O(1).
type YBoundTable struct {
	d     int
	y     [][]float64 // y[qi][l], l in [0,d]
	index map[graph.NodeID]int
}

// NewYBoundTable computes the table for source set P and target set Q.
func NewYBoundTable(e *Engine, p, q []graph.NodeID) *YBoundTable {
	d := e.D
	reach := e.ReachProbs(p, q, d) // reach[i-1][qi] = Σ_p S_i(p, q_qi)
	t := &YBoundTable{
		d:     d,
		y:     make([][]float64, len(q)),
		index: make(map[graph.NodeID]int, len(q)),
	}
	for qi, node := range q {
		t.index[node] = qi
		row := make([]float64, d+1)
		// Suffix accumulation: row[l] = α Σ_{i>l} λ^i min(mass_i, 1).
		var suffix float64
		pow := math.Pow(e.Params.Lambda, float64(d))
		for i := d; i >= 1; i-- {
			suffix += pow * math.Min(reach[i-1][qi], 1)
			pow /= e.Params.Lambda
			row[i-1] = e.Params.Alpha * suffix
		}
		// row[d] = 0: after d steps nothing can be added to h_d.
		t.y[qi] = row
	}
	return t
}

// Bound returns Y⁺ₗ(P, q). It panics if q was not in the target set or l is
// outside [0, d] — both indicate caller bugs.
func (t *YBoundTable) Bound(q graph.NodeID, l int) float64 {
	qi, ok := t.index[q]
	if !ok {
		panic("dht: YBoundTable.Bound called for a target outside the table")
	}
	if l < 0 || l > t.d {
		panic("dht: YBoundTable.Bound cut step out of range")
	}
	return t.y[qi][l]
}

// Depth returns the truncation depth the table was built for.
func (t *YBoundTable) Depth() int { return t.d }
