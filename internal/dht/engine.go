package dht

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// DefaultDenseThreshold is the sparse→dense switch point of the adaptive
// walk kernel: a step runs as a sparse frontier push while the frontier's
// incident edge count stays below DefaultDenseThreshold·|V|, and falls back
// to the dense whole-vector sweep beyond it (the Beamer/Ligra
// direction-optimizing idea, applied to probability-mass walks). The budget
// scales with |V| rather than |E| because that is the actual trade: a dense
// sweep relaxes the same nonzero rows the push would, paying only a couple
// of extra O(|V|) passes, while the push pays per-edge dedup, frontier
// maintenance, and a sort-or-scan rebuild — so sparse wins only while the
// frontier's incident edges are a small fraction of |V|. The two step
// implementations perform the identical floating-point additions in the
// identical order, so the switch never changes a score bit.
const DefaultDenseThreshold = 0.25

// Engine evaluates DHT scores over a fixed graph with fixed parameters and a
// fixed truncation depth d. It owns scratch buffers sized to the graph, so a
// single Engine must not be used concurrently; create one per goroutine (or
// use an EnginePool).
//
// Walks are evaluated with an adaptive sparse/dense kernel: the engine keeps
// an explicit frontier (the sorted list of nodes carrying probability mass)
// and per step either pushes along only the frontier's CSR rows —
// O(frontier edges) — or performs a full O(|V|+|E|) sweep when the frontier
// has grown past DenseThreshold·|V| incident edges. Scratch vectors are cleared
// incrementally through the frontier lists, so a short walk from a single
// seed touches only the nodes it reaches. Counters record how much of each
// kind of work was performed; the experiment harness reports them alongside
// wall-clock times.
type Engine struct {
	G      *graph.Graph
	Params Params
	D      int

	// DenseThreshold overrides DefaultDenseThreshold when positive: the
	// step switches to a dense sweep once the frontier's incident edges
	// exceed DenseThreshold·|V|. Set very high to force sparse pushes
	// always.
	DenseThreshold float64

	// SparseEps, when positive, drops frontier entries whose probability
	// mass is ≤ SparseEps (the entry is zeroed, not just hidden). The
	// default 0 keeps every nonzero entry, which makes the kernel
	// bit-identical to the dense reference; a positive threshold trades a
	// bounded amount of mass for smaller frontiers.
	SparseEps float64

	// ForceDense disables the sparse path entirely, recovering the plain
	// dense-sweep engine. Used by tests as the reference kernel and by
	// counter-sensitive callers that want the original cost model.
	ForceDense bool

	// Sink, when non-nil, additionally receives every counter increment via
	// atomic adds — the way concurrent workers aggregate work into one
	// place. The plain fields below stay engine-local.
	Sink *Counters

	// scratch vectors, len = NumNodes
	cur, next []float64
	// frontier lists: curF is the exact sorted set of nonzero entries of
	// cur; nextF is reused as the touched-list of the step in flight.
	curF, nextF []graph.NodeID
	mark        []uint32 // per-node stamp deduplicating nextF
	stamp       uint32
	lastDense   bool // whether the most recent push ran dense
	// full marks the walk as switched to dense mode: frontier lists are no
	// longer maintained and every remaining step runs as a plain sweep —
	// exactly the pre-sparse kernel. The switch is sticky per walk: a
	// saturated frontier essentially never re-sparsifies mid-walk, and
	// staying dense avoids rebuilding the frontier after every sweep.
	full bool

	probBuf []float64 // ForwardScoreAt scratch, len ≤ max steps seen

	// BackWalkScores state: an engine-owned score column kept β-filled
	// between walks, so a short walk only writes (and later restores) the
	// entries it actually reaches instead of clearing O(|V|) per call.
	betaOut     []float64
	betaTouched []graph.NodeID
	betaFull    bool     // last BackWalkScores went dense; restore wholesale
	omark       []uint32 // walk-level touch stamps for betaOut
	ostamp      uint32

	// Counters since the last ResetCounters call.
	EdgeSweeps    int64 // number of full O(|E|) dense relaxation sweeps
	FrontierEdges int64 // edges relaxed by sparse frontier pushes
	SparseSteps   int64 // walk steps served by the sparse path
	Walks         int64 // number of walk invocations (forward or backward)
}

// NewEngine builds an engine for g. d is the truncation depth (Equation 4);
// use Params.StepsForEpsilon to derive it from an accuracy target.
func NewEngine(g *graph.Graph, p Params, d int) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("dht: depth d must be >= 1, got %d", d)
	}
	n := g.NumNodes()
	return &Engine{
		G:      g,
		Params: p,
		D:      d,
		cur:    make([]float64, n),
		next:   make([]float64, n),
		mark:   make([]uint32, n),
	}, nil
}

// ResetCounters zeroes the work counters.
func (e *Engine) ResetCounters() {
	e.EdgeSweeps, e.FrontierEdges, e.SparseSteps, e.Walks = 0, 0, 0, 0
}

// beginWalk starts a walk: it counts the invocation, clears the previous
// walk's frontier, and snapshots the work counters for the Sink flush.
func (e *Engine) beginWalk() (sweeps0, frontier0 int64) {
	e.Walks++
	if e.full {
		clearVec(e.cur)
		e.full = false
	} else {
		for _, u := range e.curF {
			e.cur[u] = 0
		}
	}
	e.curF = e.curF[:0]
	return e.EdgeSweeps, e.FrontierEdges
}

// frontierEmpty reports whether no probability mass remains in flight. It is
// only meaningful in sparse mode; a dense-mode walk runs to full depth like
// the reference kernel.
func (e *Engine) frontierEmpty() bool {
	return !e.full && len(e.curF) == 0
}

// endWalk flushes the walk's counter deltas to the Sink, if any.
func (e *Engine) endWalk(sweeps0, frontier0 int64) {
	if e.Sink != nil {
		e.Sink.add(1, e.EdgeSweeps-sweeps0, e.FrontierEdges-frontier0)
	}
}

// seed places unit mass on the given nodes and establishes the frontier.
func (e *Engine) seed(nodes ...graph.NodeID) {
	for _, s := range nodes {
		if e.cur[s] == 0 {
			e.curF = append(e.curF, s)
		}
		e.cur[s] = 1
	}
	slices.Sort(e.curF)
}

// nextStamp advances the dedup stamp, clearing the mark array on wraparound.
func (e *Engine) nextStamp() uint32 {
	e.stamp++
	if e.stamp == 0 {
		clear(e.mark)
		e.stamp = 1
	}
	return e.stamp
}

// push advances the walk one step: next += P·cur along out-edges (forward)
// or in-edges (backward), then consumes cur, clearing only its nonzero
// entries. It chooses the sparse frontier push while the frontier's incident
// edges stay under the dense threshold, the full sweep otherwise. Both paths
// perform the same additions in ascending source-node order, so the choice
// is invisible in the results. After push, nextF holds the touched-node list
// (sparse) or is empty with lastDense set (dense); commit finishes the step.
func (e *Engine) push(backward bool) {
	g := e.G
	e.nextF = e.nextF[:0]
	sparse := !e.ForceDense && !e.full
	if sparse {
		df := e.DenseThreshold
		if df <= 0 {
			df = DefaultDenseThreshold
		}
		budget := int64(df * float64(g.NumNodes()))
		var work int64
		for _, u := range e.curF {
			if backward {
				work += int64(g.InDegree(u))
			} else {
				work += int64(g.OutDegree(u))
			}
			if work > budget {
				sparse = false
				break
			}
		}
		if sparse {
			e.SparseSteps++
			e.FrontierEdges += work
		}
	}
	e.lastDense = !sparse
	cur, next := e.cur, e.next
	switch {
	case sparse:
		st := e.nextStamp()
		mark, touched := e.mark, e.nextF
		for _, u := range e.curF {
			m := cur[u]
			var nbr []graph.NodeID
			var tp []float64
			if backward {
				nbr, _, tp = g.InEdges(u)
			} else {
				nbr, _, tp = g.OutEdges(u)
			}
			for j, v := range nbr {
				if mark[v] != st {
					mark[v] = st
					touched = append(touched, v)
				}
				next[v] += m * tp[j]
			}
		}
		e.nextF = touched
	case backward:
		e.EdgeSweeps++
		for v := 0; v < g.NumNodes(); v++ {
			m := cur[v]
			if m == 0 {
				continue
			}
			from, _, fp := g.InEdges(graph.NodeID(v))
			for j := range from {
				next[from[j]] += fp[j] * m
			}
		}
	default:
		e.EdgeSweeps++
		for u := 0; u < g.NumNodes(); u++ {
			m := cur[u]
			if m == 0 {
				continue
			}
			to, _, tp := g.OutEdges(graph.NodeID(u))
			for j := range to {
				next[to[j]] += m * tp[j]
			}
		}
	}
	// cur is consumed; clear it — incrementally while the frontier is
	// tracked, wholesale once the walk has gone dense.
	if sparse || !e.full {
		for _, u := range e.curF {
			cur[u] = 0
		}
		e.curF = e.curF[:0]
	} else {
		clearVec(cur)
	}
	if !sparse {
		e.full = true // sticky: the rest of the walk stays dense
	}
}

// commit finishes a step after the caller has read (and possibly absorbed
// mass from) next: it rebuilds the exact sorted nonzero frontier of next and
// swaps the buffers, restoring the invariant that next is all-zero.
//
// last marks the walk's final step, whose frontier is only ever used to
// clear the vector before the next walk — so sorting and filtering are
// skipped: a sparse step hands over its raw touched list, a dense step
// leaves the vector for a full clear (curFull).
func (e *Engine) commit(last bool) {
	if e.lastDense {
		// Dense mode keeps no frontier: push left the consumed vector
		// all-zero, so the buffers just swap. e.full records that cur needs
		// a wholesale clear at the next walk.
		e.cur, e.next = e.next, e.cur
		return
	}
	eps := e.SparseEps
	next := e.next
	n := len(next)
	switch {
	case last:
		// The final frontier is only ever used to clear the vector before
		// the next walk, so the raw touched list (a superset of the
		// nonzero entries) is handed over unsorted and unfiltered.
	case len(e.nextF)*8 >= n:
		// Rebuild the frontier with one O(|V|) scan, sorted for free. A
		// dense step did not track touches at all, and for a sparse step
		// that touched a sizable fraction of the graph the scan is cheaper
		// than sorting the touched list.
		front := e.nextF[:0]
		for v := range next {
			x := next[v]
			if x == 0 {
				continue
			}
			if x <= eps {
				next[v] = 0
				continue
			}
			front = append(front, graph.NodeID(v))
		}
		e.nextF = front
	default:
		// Sorted frontier keeps the next sparse push's additions in the
		// same ascending order a dense sweep would use — the property that
		// makes the two paths bit-identical.
		slices.Sort(e.nextF)
		kept := e.nextF[:0]
		for _, v := range e.nextF {
			x := next[v]
			if x == 0 {
				continue
			}
			if x <= eps {
				next[v] = 0
				continue
			}
			kept = append(kept, v)
		}
		e.nextF = kept
	}
	e.cur, e.next = e.next, e.cur
	e.curF, e.nextF = e.nextF, e.curF
}

// ForwardHitProbs computes the first-hit probabilities P_1..P_steps(p, q) by
// an absorbing forward walk from p (the F-BJ primitive, §V-B): a probability
// vector is advanced one step at a time over out-edges, with the mass
// arriving at q recorded and absorbed. Cost O(steps·frontier edges), at most
// O(steps·|E|). Allocates the result; ForwardHitProbsInto reuses a buffer.
func (e *Engine) ForwardHitProbs(p, q graph.NodeID, steps int) []float64 {
	return e.ForwardHitProbsInto(p, q, make([]float64, steps))
}

// ForwardHitProbsInto is ForwardHitProbs with a caller-provided buffer:
// probs[i] = P_{i+1}(p, q) for i < len(probs). Returns probs.
func (e *Engine) ForwardHitProbsInto(p, q graph.NodeID, probs []float64) []float64 {
	sweeps0, frontier0 := e.beginWalk()
	clearVec(probs)
	if p == q {
		e.endWalk(sweeps0, frontier0)
		return probs // h(v,v) = 0 by definition; no first-hit mass
	}
	e.seed(p)
	for i := range probs {
		if e.frontierEmpty() {
			break // all mass absorbed or lost in a sink; P_j = 0 from here
		}
		e.push(false)
		probs[i] = e.next[q]
		e.next[q] = 0 // absorb: mass that hit q stops walking
		e.commit(i == len(probs)-1)
	}
	e.endWalk(sweeps0, frontier0)
	return probs
}

// ForwardScore computes h_d(p, q) with a forward absorbing walk.
func (e *Engine) ForwardScore(p, q graph.NodeID) float64 {
	return e.ForwardScoreAt(p, q, e.D)
}

// ForwardScoreAt computes the truncated score h_steps(p, q); the iterative
// deepening algorithms call it with steps < d to obtain cheap lower bounds.
func (e *Engine) ForwardScoreAt(p, q graph.NodeID, steps int) float64 {
	if p == q {
		return 0
	}
	return e.Params.Score(e.ForwardHitProbsInto(p, q, e.probsScratch(steps)))
}

// probsScratch returns the engine-owned per-step probability buffer.
func (e *Engine) probsScratch(steps int) []float64 {
	if cap(e.probBuf) < steps {
		e.probBuf = make([]float64, steps)
	}
	return e.probBuf[:steps]
}

// BackWalk performs a backward random walk of the given number of steps from
// q (Equation 5) and accumulates truncated DHT scores into out:
// out[u] = h_steps(u, q) for every node u ≠ q, and out[q] = 0.
//
// One BackWalk yields scores for *all* source nodes at once — the key
// advantage of backward processing (§VI-A). Short walks from a single target
// cost only O(steps·frontier edges) under the sparse kernel. out must have
// length NumNodes.
func (e *Engine) BackWalk(q graph.NodeID, steps int, out []float64) {
	e.backWalkProbs(q, steps, out, nil)
}

// BackWalkProbs is BackWalk but additionally records the per-step first-hit
// probabilities P_i(u,q) for selected sources: for each s in sources,
// hit[si][i-1] = P_i(sources[si], q). hit rows must have length steps.
func (e *Engine) BackWalkProbs(q graph.NodeID, steps int, out []float64, sources []graph.NodeID, hit [][]float64) {
	e.backWalkProbs(q, steps, out, func(i int, vec []float64) {
		for si, s := range sources {
			hit[si][i-1] = vec[s]
		}
	})
}

// backWalkProbs implements Equation 5. The walk starts as the indicator of
// q; each iteration advances every node's probability of first-hitting q via
// its out-neighbors (swept through the in-CSR so each arc is touched once),
// records the new P_i, then re-absorbs at q.
func (e *Engine) backWalkProbs(q graph.NodeID, steps int, out []float64, record func(i int, vec []float64)) {
	if len(out) != e.G.NumNodes() {
		panic(fmt.Sprintf("dht: BackWalk out has length %d, want %d", len(out), e.G.NumNodes()))
	}
	sweeps0, frontier0 := e.beginWalk()
	clearVec(out)
	e.seed(q)
	pow := 1.0
	for i := 1; i <= steps; i++ {
		if e.frontierEmpty() && record == nil {
			break // no mass can first-hit q anymore; P_j(·,q) = 0 from here
		}
		pow *= e.Params.Lambda
		e.push(true)
		// next[u] now equals P_i(u, q).
		if record != nil {
			record(i, e.next)
		}
		next := e.next
		if e.lastDense {
			for u := range next {
				out[u] += pow * next[u]
			}
		} else {
			for _, u := range e.nextF {
				out[u] += pow * next[u]
			}
		}
		e.next[q] = 0 // walkers that reached q stop (Eq. 5 excludes v=q for i>1)
		e.commit(i == steps)
	}
	a, b := e.Params.Alpha, e.Params.Beta
	for u := range out {
		out[u] = a*out[u] + b
	}
	out[q] = 0 // h(q,q) = 0 by definition
	e.endWalk(sweeps0, frontier0)
}

// betaScoresStart restores the engine-owned score column to all-β (the
// score of an unreachable source) and arms the walk-level touch tracking.
func (e *Engine) betaScoresStart() []float64 {
	b := e.Params.Beta
	switch {
	case e.betaOut == nil:
		e.betaOut = make([]float64, e.G.NumNodes())
		e.omark = make([]uint32, e.G.NumNodes())
		for i := range e.betaOut {
			e.betaOut[i] = b
		}
	case e.betaFull:
		for i := range e.betaOut {
			e.betaOut[i] = b
		}
	default:
		for _, u := range e.betaTouched {
			e.betaOut[u] = b
		}
	}
	e.betaFull = false
	e.betaTouched = e.betaTouched[:0]
	e.ostamp++
	if e.ostamp == 0 {
		clear(e.omark)
		e.ostamp = 1
	}
	return e.betaOut
}

// BackWalkScores is BackWalkKind into an engine-owned buffer that is never
// cleared wholesale: untouched entries already hold β (exactly the score of
// a source that cannot reach q within the walk), so a short walk from a
// sparse target costs only its frontier — the primitive behind B-IDJ's
// near-free early rounds. The returned slice is valid until the next
// BackWalkScores call on this engine and must not be modified.
func (e *Engine) BackWalkScores(kind Kind, q graph.NodeID, steps int) []float64 {
	sweeps0, frontier0 := e.beginWalk()
	out := e.betaScoresStart()
	ost, omark := e.ostamp, e.omark
	e.seed(q)
	pow := 1.0
	absorb := kind == FirstHit
	for i := 1; i <= steps; i++ {
		if e.frontierEmpty() {
			break // no mass can reach q anymore
		}
		pow *= e.Params.Lambda
		e.push(true)
		next := e.next
		if e.lastDense {
			// First dense step: overwrite the β prefill with the raw sum at
			// first touch so the fold matches the reference exactly.
			if !e.betaFull {
				e.betaFull = true
				for u := range next {
					if omark[u] == ost {
						out[u] += pow * next[u]
					} else {
						out[u] = pow * next[u]
					}
				}
			} else {
				for u := range next {
					out[u] += pow * next[u]
				}
			}
		} else {
			touched := e.betaTouched
			for _, u := range e.nextF {
				if omark[u] == ost {
					out[u] += pow * next[u]
				} else {
					omark[u] = ost
					touched = append(touched, u)
					out[u] = pow * next[u]
				}
			}
			e.betaTouched = touched
		}
		if absorb {
			next[q] = 0 // walkers that reached q stop (Eq. 5)
		}
		e.commit(i == steps)
	}
	a, b := e.Params.Alpha, e.Params.Beta
	if e.betaFull {
		for u := range out {
			out[u] = a*out[u] + b
		}
	} else {
		for _, u := range e.betaTouched {
			out[u] = a*out[u] + b
		}
	}
	if absorb {
		if !e.betaFull && omark[q] != ost {
			omark[q] = ost
			e.betaTouched = append(e.betaTouched, q)
		}
		out[q] = 0 // h(q,q) = 0 by definition
	}
	e.endWalk(sweeps0, frontier0)
	return out
}

// ReachProbs advances an unabsorbed walk from the seed set and reports, for
// each step i = 1..steps, the total reach mass Σ_{p∈seeds} S_i(p, v) at the
// selected targets: res[i-1][ti] = Σ_p S_i(p, targets[ti]). This is the
// ingredient of the Y⁺ₗ bound (Theorem 1). Allocates the result;
// ReachProbsInto reuses caller rows.
func (e *Engine) ReachProbs(seeds, targets []graph.NodeID, steps int) [][]float64 {
	res := make([][]float64, steps)
	flat := make([]float64, steps*len(targets))
	for i := range res {
		res[i] = flat[i*len(targets) : (i+1)*len(targets)]
	}
	return e.ReachProbsInto(seeds, targets, res)
}

// ReachProbsInto is ReachProbs with caller-provided rows: len(res) selects
// the number of steps and each row must have length len(targets). Returns
// res.
func (e *Engine) ReachProbsInto(seeds, targets []graph.NodeID, res [][]float64) [][]float64 {
	sweeps0, frontier0 := e.beginWalk()
	e.seed(seeds...)
	for i := range res {
		clearVec(res[i])
		if e.frontierEmpty() {
			continue // mass all lost in sinks; S_j = 0 from here
		}
		e.push(false)
		for ti, t := range targets {
			res[i][ti] = e.next[t]
		}
		e.commit(i == len(res)-1)
	}
	e.endWalk(sweeps0, frontier0)
	return res
}

func clearVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
