package dht

import (
	"fmt"

	"repro/internal/graph"
)

// Engine evaluates DHT scores over a fixed graph with fixed parameters and a
// fixed truncation depth d. It owns scratch buffers sized to the graph, so a
// single Engine must not be used concurrently; create one per goroutine.
//
// Counters record how much walk work was performed, which the experiment
// harness reports alongside wall-clock times.
type Engine struct {
	G      *graph.Graph
	Params Params
	D      int

	// scratch vectors, len = NumNodes
	cur, next []float64

	// Counters since the last ResetCounters call.
	EdgeSweeps int64 // number of full O(|E|) relaxation sweeps
	Walks      int64 // number of walk invocations (forward or backward)
}

// NewEngine builds an engine for g. d is the truncation depth (Equation 4);
// use Params.StepsForEpsilon to derive it from an accuracy target.
func NewEngine(g *graph.Graph, p Params, d int) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("dht: depth d must be >= 1, got %d", d)
	}
	n := g.NumNodes()
	return &Engine{
		G:      g,
		Params: p,
		D:      d,
		cur:    make([]float64, n),
		next:   make([]float64, n),
	}, nil
}

// ResetCounters zeroes the work counters.
func (e *Engine) ResetCounters() { e.EdgeSweeps, e.Walks = 0, 0 }

// ForwardHitProbs computes the first-hit probabilities P_1..P_steps(p, q) by
// an absorbing forward walk from p (the F-BJ primitive, §V-B): a probability
// vector is advanced one step at a time over out-edges, with the mass
// arriving at q recorded and absorbed. Cost O(steps·|E|).
func (e *Engine) ForwardHitProbs(p, q graph.NodeID, steps int) []float64 {
	e.Walks++
	probs := make([]float64, steps)
	if p == q {
		return probs // h(v,v) = 0 by definition; no first-hit mass
	}
	cur, next := e.cur, e.next
	clearVec(cur)
	cur[p] = 1
	for i := 0; i < steps; i++ {
		clearVec(next)
		e.EdgeSweeps++
		for u := 0; u < e.G.NumNodes(); u++ {
			m := cur[u]
			if m == 0 || graph.NodeID(u) == q {
				continue
			}
			to, _, tp := e.G.OutEdges(graph.NodeID(u))
			for j := range to {
				next[to[j]] += m * tp[j]
			}
		}
		probs[i] = next[q]
		next[q] = 0 // absorb: mass that hit q stops walking
		cur, next = next, cur
	}
	return probs
}

// ForwardScore computes h_d(p, q) with a forward absorbing walk.
func (e *Engine) ForwardScore(p, q graph.NodeID) float64 {
	return e.ForwardScoreAt(p, q, e.D)
}

// ForwardScoreAt computes the truncated score h_steps(p, q); the iterative
// deepening algorithms call it with steps < d to obtain cheap lower bounds.
func (e *Engine) ForwardScoreAt(p, q graph.NodeID, steps int) float64 {
	if p == q {
		return 0
	}
	return e.Params.Score(e.ForwardHitProbs(p, q, steps))
}

// BackWalk performs a backward random walk of the given number of steps from
// q (Equation 5) and accumulates truncated DHT scores into out:
// out[u] = h_steps(u, q) for every node u ≠ q, and out[q] = 0.
//
// One BackWalk costs O(steps·|E|) and yields scores for *all* source nodes at
// once — the key advantage of backward processing (§VI-A). out must have
// length NumNodes.
func (e *Engine) BackWalk(q graph.NodeID, steps int, out []float64) {
	e.backWalkProbs(q, steps, out, nil)
}

// BackWalkProbs is BackWalk but additionally records the per-step first-hit
// probabilities P_i(u,q) for selected sources: for each s in sources,
// hit[si][i-1] = P_i(sources[si], q). hit rows must have length steps.
func (e *Engine) BackWalkProbs(q graph.NodeID, steps int, out []float64, sources []graph.NodeID, hit [][]float64) {
	e.backWalkProbs(q, steps, out, func(i int, vec []float64) {
		for si, s := range sources {
			hit[si][i-1] = vec[s]
		}
	})
}

// backWalkProbs implements Equation 5. backProb starts as the indicator of q;
// each iteration advances every node's probability of first-hitting q via its
// out-neighbors, records the new P_i, then re-absorbs at q.
func (e *Engine) backWalkProbs(q graph.NodeID, steps int, out []float64, record func(i int, vec []float64)) {
	e.Walks++
	if len(out) != e.G.NumNodes() {
		panic(fmt.Sprintf("dht: BackWalk out has length %d, want %d", len(out), e.G.NumNodes()))
	}
	cur, next := e.cur, e.next
	clearVec(cur)
	clearVec(out)
	cur[q] = 1
	pow := 1.0
	for i := 1; i <= steps; i++ {
		pow *= e.Params.Lambda
		clearVec(next)
		e.EdgeSweeps++
		// next[u] = Σ_{(u,v)∈E} p_uv · cur[v]; sweep in-edges of each v so we
		// touch each arc exactly once using the in-CSR.
		for v := 0; v < e.G.NumNodes(); v++ {
			m := cur[v]
			if m == 0 {
				continue
			}
			from, _, fp := e.G.InEdges(graph.NodeID(v))
			for j := range from {
				next[from[j]] += fp[j] * m
			}
		}
		// next[u] now equals P_i(u, q).
		if record != nil {
			record(i, next)
		}
		for u := range next {
			out[u] += pow * next[u]
		}
		next[q] = 0 // walkers that reached q stop (Eq. 5 excludes v=q for i>1)
		cur, next = next, cur
	}
	a, b := e.Params.Alpha, e.Params.Beta
	for u := range out {
		out[u] = a*out[u] + b
	}
	out[q] = 0 // h(q,q) = 0 by definition
}

// ReachProbs advances an unabsorbed walk from the seed set and reports, for
// each step i = 1..steps, the total reach mass Σ_{p∈seeds} S_i(p, v) at the
// selected targets: res[i-1][ti] = Σ_p S_i(p, targets[ti]). This is the
// ingredient of the Y⁺ₗ bound (Theorem 1). Cost O(steps·|E|).
func (e *Engine) ReachProbs(seeds, targets []graph.NodeID, steps int) [][]float64 {
	e.Walks++
	res := make([][]float64, steps)
	cur, next := e.cur, e.next
	clearVec(cur)
	for _, s := range seeds {
		cur[s] = 1
	}
	for i := 0; i < steps; i++ {
		clearVec(next)
		e.EdgeSweeps++
		for u := 0; u < e.G.NumNodes(); u++ {
			m := cur[u]
			if m == 0 {
				continue
			}
			to, _, tp := e.G.OutEdges(graph.NodeID(u))
			for j := range to {
				next[to[j]] += m * tp[j]
			}
		}
		row := make([]float64, len(targets))
		for ti, t := range targets {
			row[ti] = next[t]
		}
		res[i] = row
		cur, next = next, cur
	}
	return res
}

func clearVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
