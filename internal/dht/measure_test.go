package dht

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestPPRParams(t *testing.T) {
	p := PPR(0.85)
	if math.Abs(p.Alpha-0.15) > 1e-12 || p.Beta != 0 || p.Lambda != 0.85 {
		t.Fatalf("PPR params = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if FirstHit.String() != "first-hit" || Reach.String() != "reach" {
		t.Fatal("kind names wrong")
	}
}

// TestReachForwardBackwardAgree mirrors the first-hit equivalence test for
// the reach measure.
func TestReachForwardBackwardAgree(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{15, 15}, PIn: 0.3, POut: 0.1, Seed: 6, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := PPR(0.5)
	e := mustEngine(t, g, p, 10)
	out := make([]float64, g.NumNodes())
	for _, q := range []graph.NodeID{0, 8, 22} {
		e.BackWalkKind(Reach, q, 10, out)
		for _, u := range []graph.NodeID{1, 5, 16, 29} {
			fwd := e.ForwardScoreKind(Reach, u, q, 10)
			if math.Abs(fwd-out[u]) > 1e-10 {
				t.Fatalf("reach(%d,%d): forward %v vs backward %v", u, q, fwd, out[u])
			}
		}
	}
}

// TestReachAgainstExactSolver validates the truncated reach walk against the
// dense linear system.
func TestReachAgainstExactSolver(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{10, 10}, PIn: 0.4, POut: 0.15, Seed: 10, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := PPR(0.3)
	d := p.StepsForEpsilon(1e-10)
	e := mustEngine(t, g, p, d)
	out := make([]float64, g.NumNodes())
	for _, q := range []graph.NodeID{0, 13} {
		exact, err := ExactReachColumn(g, p, q)
		if err != nil {
			t.Fatal(err)
		}
		e.BackWalkKind(Reach, q, d, out)
		for u := range out {
			if math.Abs(out[u]-exact[u]) > 1e-8 {
				t.Fatalf("node %d → %d: truncated %v vs exact %v", u, q, out[u], exact[u])
			}
		}
	}
}

// TestReachDominatesFirstHit: S_i ≥ P_i pointwise, so with identical params
// the reach score is at least the first-hit score.
func TestReachDominatesFirstHit(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{12, 12}, PIn: 0.35, POut: 0.1, Seed: 12, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Alpha: 1, Beta: 0, Lambda: 0.5}
	e := mustEngine(t, g, p, 8)
	for u := graph.NodeID(0); u < 10; u++ {
		for _, q := range []graph.NodeID{15, 20} {
			if u == q {
				continue
			}
			fh := e.ForwardScoreKind(FirstHit, u, q, 8)
			rc := e.ForwardScoreKind(Reach, u, q, 8)
			if rc < fh-1e-12 {
				t.Fatalf("reach(%d,%d)=%v < first-hit %v", u, q, rc, fh)
			}
		}
	}
}

// TestReachTwoNode: on 0 ↔ 1 the walk alternates, so S_i(0,1) = 1 for odd i
// and 0 for even i. With λ=0.5, α=1: score = Σ_{odd i ≤ d} 0.5^i.
func TestReachTwoNode(t *testing.T) {
	g := twoNodeGraph(t)
	p := Params{Alpha: 1, Beta: 0, Lambda: 0.5}
	e := mustEngine(t, g, p, 6)
	got := e.ForwardScoreKind(Reach, 0, 1, 6)
	want := 0.5 + 0.125 + 0.03125
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("reach score = %v, want %v", got, want)
	}
}

func TestExactReachColumnErrors(t *testing.T) {
	g := twoNodeGraph(t)
	if _, err := ExactReachColumn(g, Params{Alpha: 1, Beta: 0, Lambda: 2}, 0); err == nil {
		t.Fatal("bad params accepted")
	}
	empty := graph.NewBuilder(0, true).Build()
	if _, err := ExactReachColumn(empty, PPR(0.5), 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}
