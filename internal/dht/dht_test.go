package dht

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustEngine(t testing.TB, g *graph.Graph, p Params, d int) *Engine {
	t.Helper()
	e, err := NewEngine(g, p, d)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// twoNodeGraph: 0 ↔ 1, so P_i(0,1) = 1 at i=1 and 0 later.
func twoNodeGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 1)
	return b.Build()
}

// pathGraph returns the path 0-1-2-…-(n-1), undirected unit weights.
func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	return b.Build()
}

func TestParamsTableII(t *testing.T) {
	e := DHTE()
	if e.Alpha != math.E || e.Beta != 0 || math.Abs(e.Lambda-1/math.E) > 1e-15 {
		t.Fatalf("DHTe params wrong: %+v", e)
	}
	l := DHTLambda(0.2)
	if math.Abs(l.Alpha-1.25) > 1e-12 || math.Abs(l.Beta+1.25) > 1e-12 || l.Lambda != 0.2 {
		t.Fatalf("DHTλ params wrong: %+v", l)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Alpha: 1, Beta: 0, Lambda: 0},
		{Alpha: 1, Beta: 0, Lambda: 1},
		{Alpha: 1, Beta: 0, Lambda: -0.5},
		{Alpha: 0, Beta: 0, Lambda: 0.5},
		{Alpha: math.NaN(), Beta: 0, Lambda: 0.5},
		{Alpha: 1, Beta: math.Inf(1), Lambda: 0.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if err := DHTLambda(0.2).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

// TestStepsForEpsilonPaperDefault verifies the paper's §VII-A claim: with
// DHTλ, λ=0.2 and ε=1e-6, Lemma 1 gives d = 8.
func TestStepsForEpsilonPaperDefault(t *testing.T) {
	p := DHTLambda(0.2)
	if d := p.StepsForEpsilon(1e-6); d != 8 {
		t.Fatalf("StepsForEpsilon(1e-6) = %d, want 8", d)
	}
}

func TestStepsForEpsilonMonotone(t *testing.T) {
	p := DHTLambda(0.5)
	prev := 0
	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		d := p.StepsForEpsilon(eps)
		if d < prev {
			t.Fatalf("d not monotone in 1/ε: eps=%g d=%d prev=%d", eps, d, prev)
		}
		prev = d
	}
	// The bound must actually hold: X⁺_d = α Σ_{i>d} λ^i ≤ ε.
	for _, eps := range []float64{1e-3, 1e-6} {
		d := p.StepsForEpsilon(eps)
		if tail := p.XBound(d); tail > eps+1e-15 {
			t.Fatalf("eps=%g d=%d leaves tail %g > eps", eps, d, tail)
		}
	}
}

func TestScoreFolding(t *testing.T) {
	p := Params{Alpha: 2, Beta: -1, Lambda: 0.5}
	// h = 2*(0.5*0.25 + 0.25*0.5) - 1 = 2*0.25 - 1 = -0.5
	got := p.Score([]float64{0.25, 0.5})
	if math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("Score = %v, want -0.5", got)
	}
	if p.Score(nil) != p.Beta {
		t.Fatal("empty probs should give beta")
	}
}

func TestXBoundClosedForm(t *testing.T) {
	p := DHTLambda(0.3)
	// X⁺_l = α λ^{l+1}/(1-λ); check against the series numerically.
	for l := 0; l < 6; l++ {
		var series float64
		pow := math.Pow(p.Lambda, float64(l))
		for i := l + 1; i < 200; i++ {
			pow *= p.Lambda
			series += pow
		}
		series *= p.Alpha
		if math.Abs(p.XBound(l)-series) > 1e-12 {
			t.Fatalf("XBound(%d) = %v, series = %v", l, p.XBound(l), series)
		}
	}
}

func TestForwardHitProbsTwoNode(t *testing.T) {
	g := twoNodeGraph(t)
	e := mustEngine(t, g, DHTLambda(0.2), 4)
	probs := e.ForwardHitProbs(0, 1, 4)
	want := []float64{1, 0, 0, 0}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("P_%d = %v, want %v", i+1, probs[i], want[i])
		}
	}
	// h_d(0,1) = α λ + β; for DHTλ(0.2): 1.25*0.2 - 1.25 = -1.0.
	if s := e.ForwardScore(0, 1); math.Abs(s+1.0) > 1e-12 {
		t.Fatalf("score = %v, want -1", s)
	}
}

func TestForwardSelfPairIsZero(t *testing.T) {
	g := twoNodeGraph(t)
	e := mustEngine(t, g, DHTLambda(0.2), 4)
	if s := e.ForwardScore(0, 0); s != 0 {
		t.Fatalf("h(v,v) = %v, want 0", s)
	}
}

// TestPathFirstHitProbs checks hand-computed first-hit probabilities on the
// path 0-1-2: from node 0 to node 2, the walk must go 0→1→2 possibly
// bouncing 0→1→0→1→2 etc. P_2 = 1/2, P_4 = 1/4, P_6 = 1/8 (odd steps 0).
func TestPathFirstHitProbs(t *testing.T) {
	g := pathGraph(t, 3)
	e := mustEngine(t, g, DHTLambda(0.5), 6)
	probs := e.ForwardHitProbs(0, 2, 6)
	want := []float64{0, 0.5, 0, 0.25, 0, 0.125}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("P_%d = %v, want %v (all: %v)", i+1, probs[i], want[i], probs)
		}
	}
}

func TestBackWalkMatchesForward(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{15, 15}, PIn: 0.3, POut: 0.1, Seed: 3, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{DHTLambda(0.2), DHTLambda(0.7), DHTE()} {
		e := mustEngine(t, g, p, 8)
		scores := make([]float64, g.NumNodes())
		for _, q := range []graph.NodeID{0, 7, 20} {
			e.BackWalk(q, 8, scores)
			for _, u := range []graph.NodeID{1, 5, 16, 29} {
				if u == q {
					continue
				}
				fwd := e.ForwardScore(u, q)
				if math.Abs(fwd-scores[u]) > 1e-10 {
					t.Fatalf("params %v: h_8(%d,%d): forward %v vs backward %v", p, u, q, fwd, scores[u])
				}
			}
			if scores[q] != 0 {
				t.Fatalf("backwalk self score = %v, want 0", scores[q])
			}
		}
	}
}

func TestBackWalkAgainstExactSolver(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{10, 10}, PIn: 0.4, POut: 0.15, Seed: 9, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DHTLambda(0.2)
	d := p.StepsForEpsilon(1e-10) // deep truncation ≈ exact
	e := mustEngine(t, g, p, d)
	scores := make([]float64, g.NumNodes())
	for _, q := range []graph.NodeID{0, 13} {
		exact, err := ExactColumn(g, p, q)
		if err != nil {
			t.Fatalf("ExactColumn: %v", err)
		}
		e.BackWalk(q, d, scores)
		for u := range scores {
			if math.Abs(scores[u]-exact[u]) > 1e-8 {
				t.Fatalf("node %d → %d: truncated %v vs exact %v", u, q, scores[u], exact[u])
			}
		}
	}
}

func TestExactScoreTwoNode(t *testing.T) {
	g := twoNodeGraph(t)
	p := DHTLambda(0.2)
	s, err := ExactScore(g, p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Walk hits at step 1 with probability 1: h = αλ + β = -1.
	if math.Abs(s+1) > 1e-12 {
		t.Fatalf("exact = %v, want -1", s)
	}
}

func TestExactSolverErrors(t *testing.T) {
	g := twoNodeGraph(t)
	if _, err := ExactScore(g, Params{Alpha: 1, Beta: 0, Lambda: 2}, 0, 1); err == nil {
		t.Fatal("bad params accepted")
	}
	empty := graph.NewBuilder(0, true).Build()
	if _, err := ExactColumn(empty, DHTLambda(0.5), 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBackWalkProbsRecordsFirstHits(t *testing.T) {
	g := pathGraph(t, 3)
	e := mustEngine(t, g, DHTLambda(0.5), 6)
	out := make([]float64, g.NumNodes())
	hit := [][]float64{make([]float64, 6)}
	e.BackWalkProbs(2, 6, out, []graph.NodeID{0}, hit)
	want := []float64{0, 0.5, 0, 0.25, 0, 0.125}
	for i := range want {
		if math.Abs(hit[0][i]-want[i]) > 1e-12 {
			t.Fatalf("recorded P_%d = %v, want %v", i+1, hit[0][i], want[i])
		}
	}
}

func TestReachProbsBoundFirstHits(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{12, 12}, PIn: 0.35, POut: 0.1, Seed: 21, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DHTLambda(0.4)
	d := 8
	e := mustEngine(t, g, p, d)
	seeds := []graph.NodeID{0, 1, 2}
	targets := []graph.NodeID{15, 20}
	reach := e.ReachProbs(seeds, targets, d)
	// Lemmas 3–4: P_i(p,q) ≤ S_i(p,q) ≤ Σ_p S_i(p,q).
	for ti, q := range targets {
		for _, s := range seeds {
			probs := e.ForwardHitProbs(s, q, d)
			for i := 0; i < d; i++ {
				if probs[i] > reach[i][ti]+1e-12 {
					t.Fatalf("P_%d(%d,%d)=%v exceeds summed reach %v", i+1, s, q, probs[i], reach[i][ti])
				}
			}
		}
	}
}

// TestYBoundTheorem1 checks the central inequality: h_d ≤ h_l + Y⁺ₗ and
// Y⁺ₗ ≤ X⁺ₗ (Lemma 5), for all l, on a random graph.
func TestYBoundTheorem1(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{14, 14}, PIn: 0.3, POut: 0.1, Seed: 33, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DHTLambda(0.6)
	d := 8
	e := mustEngine(t, g, p, d)
	seeds := []graph.NodeID{0, 1, 2, 3}
	targets := []graph.NodeID{14, 20, 27}
	yt := NewYBoundTable(e, seeds, targets)
	full := make([]float64, g.NumNodes())
	part := make([]float64, g.NumNodes())
	for _, q := range targets {
		e.BackWalk(q, d, full)
		for l := 0; l <= d; l++ {
			y := yt.Bound(q, l)
			x := p.XBound(l)
			if l < d && y > x+1e-12 {
				t.Fatalf("Lemma 5 violated: Y⁺_%d(%d)=%v > X⁺=%v", l, q, y, x)
			}
			if l == 0 {
				// h_0 = β for p≠q; check h_d ≤ β + Y⁺_0.
				for _, s := range seeds {
					if s == q {
						continue
					}
					if full[s] > p.Beta+y+1e-10 {
						t.Fatalf("Theorem 1 violated at l=0: h_d(%d,%d)=%v > β+Y=%v", s, q, full[s], p.Beta+y)
					}
				}
				continue
			}
			e.BackWalk(q, l, part)
			for _, s := range seeds {
				if s == q {
					continue
				}
				if full[s] > part[s]+y+1e-10 {
					t.Fatalf("Theorem 1 violated: h_d(%d,%d)=%v > h_%d+Y⁺=%v", s, q, full[s], l, part[s]+y)
				}
			}
		}
	}
}

// Property: h_d is monotone non-decreasing in d, and h_l + X⁺ₗ is an upper
// bound on h_d for random graphs and parameters.
func TestTruncationMonotoneProperty(t *testing.T) {
	f := func(seed int64, rawL uint8) bool {
		g, err := graph.GenerateER(25, 0.15, seed)
		if err != nil {
			return false
		}
		lambda := 0.1 + float64(rawL%8)/10
		p := DHTLambda(lambda)
		d := 8
		e, err := NewEngine(g, p, d)
		if err != nil {
			return false
		}
		u, q := graph.NodeID(int(seed%25+25)%25), graph.NodeID(int((seed/7)%25+25)%25)
		if u == q {
			q = (q + 1) % 25
		}
		prev := math.Inf(-1)
		for l := 1; l <= d; l++ {
			hl := e.ForwardScoreAt(u, q, l)
			if hl < prev-1e-12 {
				return false // not monotone
			}
			prev = hl
		}
		hd := prev
		for l := 1; l < d; l++ {
			if hd > e.ForwardScoreAt(u, q, l)+p.XBound(l)+1e-10 {
				return false // X bound violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineValidation(t *testing.T) {
	g := twoNodeGraph(t)
	if _, err := NewEngine(g, DHTLambda(0.2), 0); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := NewEngine(g, Params{Alpha: 0, Beta: 0, Lambda: 0.5}, 4); err == nil {
		t.Fatal("alpha=0 accepted")
	}
}

func TestEngineCounters(t *testing.T) {
	g := pathGraph(t, 4)
	e := mustEngine(t, g, DHTLambda(0.2), 4)
	// A generous threshold keeps every step on the sparse path (the default
	// budget on a 4-node graph is only a couple of edges): no dense sweeps,
	// only frontier edges.
	e.DenseThreshold = 10
	e.ForwardScore(0, 3)
	if e.Walks != 1 || e.EdgeSweeps != 0 || e.SparseSteps != 4 || e.FrontierEdges == 0 {
		t.Fatalf("counters after forward: walks=%d sweeps=%d sparse=%d frontier=%d",
			e.Walks, e.EdgeSweeps, e.SparseSteps, e.FrontierEdges)
	}
	e.ResetCounters()
	out := make([]float64, 4)
	e.BackWalk(3, 2, out)
	if e.Walks != 1 || e.EdgeSweeps != 0 || e.SparseSteps != 2 {
		t.Fatalf("counters after backward: walks=%d sweeps=%d sparse=%d", e.Walks, e.EdgeSweeps, e.SparseSteps)
	}
	if e.Walks != 1 {
		t.Fatalf("walks=%d, want 1", e.Walks)
	}
}

// TestEngineCountersForceDense pins the original dense cost model: one full
// sweep per step.
func TestEngineCountersForceDense(t *testing.T) {
	g := pathGraph(t, 4)
	e := mustEngine(t, g, DHTLambda(0.2), 4)
	e.ForceDense = true
	e.ForwardScore(0, 3)
	if e.Walks != 1 || e.EdgeSweeps != 4 || e.SparseSteps != 0 {
		t.Fatalf("counters after forward: walks=%d sweeps=%d sparse=%d", e.Walks, e.EdgeSweeps, e.SparseSteps)
	}
	e.ResetCounters()
	out := make([]float64, 4)
	e.BackWalk(3, 2, out)
	if e.Walks != 1 || e.EdgeSweeps != 2 {
		t.Fatalf("counters after backward: walks=%d sweeps=%d", e.Walks, e.EdgeSweeps)
	}
}

// TestEngineSinkAggregates checks the atomic counter sink used by worker
// pools: engine-local deltas must be mirrored into the shared Counters.
func TestEngineSinkAggregates(t *testing.T) {
	g := pathGraph(t, 4)
	e := mustEngine(t, g, DHTLambda(0.2), 4)
	var c Counters
	e.Sink = &c
	e.ForwardScore(0, 3)
	out := make([]float64, 4)
	e.BackWalk(3, 2, out)
	snap := c.Snapshot()
	if snap.Walks != 2 {
		t.Fatalf("sink walks = %d, want 2", snap.Walks)
	}
	if snap.EdgeSweeps != e.EdgeSweeps || snap.FrontierEdges != e.FrontierEdges {
		t.Fatalf("sink %+v does not mirror engine (sweeps=%d frontier=%d)", snap, e.EdgeSweeps, e.FrontierEdges)
	}
	c.Reset()
	if s := c.Snapshot(); s != (Counters{}) {
		t.Fatalf("after Reset: %+v", s)
	}
}

func TestUnreachableScoreIsBeta(t *testing.T) {
	// Directed edge 0→1 only; node 1 cannot reach node 0.
	b := graph.NewBuilder(2, true)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	p := DHTLambda(0.2)
	e := mustEngine(t, g, p, 6)
	if s := e.ForwardScore(1, 0); s != p.Beta {
		t.Fatalf("unreachable score = %v, want β=%v", s, p.Beta)
	}
}

func TestSinkAbsorbsWalk(t *testing.T) {
	// 0→1→2, 2 is a sink. Walk from 0 to 2 hits at step 2 exactly.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	p := DHTLambda(0.5)
	e := mustEngine(t, g, p, 5)
	probs := e.ForwardHitProbs(0, 2, 5)
	want := []float64{0, 1, 0, 0, 0}
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Fatalf("P_%d = %v, want %v", i+1, probs[i], want[i])
		}
	}
}
