package dht

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// sparseTestGraphs returns a spread of random graphs: small communities,
// sparse ER (with sinks and unreachable regions), and a denser ER where the
// frontier saturates quickly and the kernel must switch to dense sweeps.
func sparseTestGraphs(t testing.TB) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{25, 25}, PIn: 0.2, POut: 0.05, Seed: 11, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, g)
	for _, cfg := range []struct {
		n    int
		p    float64
		seed int64
	}{{40, 0.05, 4}, {30, 0.3, 5}} {
		g, err := graph.GenerateER(cfg.n, cfg.p, cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return gs
}

// TestSparseMatchesDenseBitIdentical is the central equivalence property of
// the adaptive kernel: for every primitive, measure kind, λ, and depth, the
// adaptive engine must produce bit-identical (==, not approximately equal)
// results to the ForceDense reference, because both paths perform the same
// floating-point additions in the same order.
func TestSparseMatchesDenseBitIdentical(t *testing.T) {
	for gi, g := range sparseTestGraphs(t) {
		n := g.NumNodes()
		for _, lambda := range []float64{0.2, 0.5, 0.8} {
			for _, d := range []int{1, 2, 4, 8} {
				p := DHTLambda(lambda)
				adaptive := mustEngine(t, g, p, d)
				dense := mustEngine(t, g, p, d)
				dense.ForceDense = true
				outA := make([]float64, n)
				outD := make([]float64, n)
				for _, kind := range []Kind{FirstHit, Reach} {
					for _, q := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
						adaptive.BackWalkKind(kind, q, d, outA)
						dense.BackWalkKind(kind, q, d, outD)
						for u := range outA {
							if outA[u] != outD[u] {
								t.Fatalf("graph %d λ=%g d=%d %v: BackWalk(%d)[%d] sparse %v != dense %v",
									gi, lambda, d, kind, q, u, outA[u], outD[u])
							}
						}
						for _, u := range []graph.NodeID{0, graph.NodeID(n / 3), graph.NodeID(n - 1)} {
							sa := adaptive.ForwardScoreKind(kind, u, q, d)
							sd := dense.ForwardScoreKind(kind, u, q, d)
							if sa != sd {
								t.Fatalf("graph %d λ=%g d=%d %v: forward(%d,%d) sparse %v != dense %v",
									gi, lambda, d, kind, u, q, sa, sd)
							}
						}
					}
				}
				seeds := []graph.NodeID{0, 1, 2}
				targets := []graph.NodeID{graph.NodeID(n - 1), graph.NodeID(n / 2)}
				ra := adaptive.ReachProbs(seeds, targets, d)
				rd := dense.ReachProbs(seeds, targets, d)
				for i := range ra {
					for ti := range ra[i] {
						if ra[i][ti] != rd[i][ti] {
							t.Fatalf("graph %d λ=%g d=%d: ReachProbs[%d][%d] sparse %v != dense %v",
								gi, lambda, d, i, ti, ra[i][ti], rd[i][ti])
						}
					}
				}
			}
		}
	}
}

// TestSparseMatchesDenseProperty drives the same equivalence through
// testing/quick over random ER graphs and parameters.
func TestSparseMatchesDenseProperty(t *testing.T) {
	f := func(seed int64, rawL, rawD uint8) bool {
		n := 20 + int(seed%17+17)%17
		g, err := graph.GenerateER(n, 0.12, seed)
		if err != nil {
			return false
		}
		lambda := 0.1 + float64(rawL%8)/10
		d := 1 + int(rawD%8)
		p := DHTLambda(lambda)
		a, err := NewEngine(g, p, d)
		if err != nil {
			return false
		}
		ref, err := NewEngine(g, p, d)
		if err != nil {
			return false
		}
		ref.ForceDense = true
		q := graph.NodeID((int(seed/3)%n + n) % n)
		outA := make([]float64, n)
		outD := make([]float64, n)
		a.BackWalk(q, d, outA)
		ref.BackWalk(q, d, outD)
		for u := range outA {
			if outA[u] != outD[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBackWalkScoresMatchesBackWalkKind: the β-prefilled engine-owned column
// must be bit-identical to the reference BackWalkKind at every node, across
// consecutive calls with different targets and depths (exercising the lazy
// restore of only-touched entries), for both measure kinds.
func TestBackWalkScoresMatchesBackWalkKind(t *testing.T) {
	for gi, g := range sparseTestGraphs(t) {
		n := g.NumNodes()
		for _, params := range []Params{DHTLambda(0.2), DHTLambda(0.7), PPR(0.5)} {
			e := mustEngine(t, g, params, 8)
			ref := mustEngine(t, g, params, 8)
			out := make([]float64, n)
			for _, kind := range []Kind{FirstHit, Reach} {
				for rep := 0; rep < 2; rep++ { // repeat: restore must be exact
					for _, q := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1), 1} {
						for _, steps := range []int{1, 2, 3, 8} {
							got := e.BackWalkScores(kind, q, steps)
							ref.BackWalkKind(kind, q, steps, out)
							for u := range out {
								if got[u] != out[u] {
									t.Fatalf("graph %d %v %v q=%d steps=%d node %d: scores %v != ref %v",
										gi, params, kind, q, steps, u, got[u], out[u])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSparseAgainstExactSolver pins the adaptive kernel to the dense linear
// system directly (not just to the dense walk), deep enough that truncation
// error is below tolerance.
func TestSparseAgainstExactSolver(t *testing.T) {
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{12, 12}, PIn: 0.35, POut: 0.1, Seed: 77, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := DHTLambda(0.3)
	d := p.StepsForEpsilon(1e-10)
	e := mustEngine(t, g, p, d)
	out := make([]float64, g.NumNodes())
	for _, q := range []graph.NodeID{0, 15} {
		exact, err := ExactColumn(g, p, q)
		if err != nil {
			t.Fatal(err)
		}
		e.BackWalk(q, d, out)
		for u := range out {
			if math.Abs(out[u]-exact[u]) > 1e-8 {
				t.Fatalf("node %d → %d: sparse %v vs exact %v", u, q, out[u], exact[u])
			}
		}
	}
}

// TestWalkStateHygiene interleaves different walk primitives on one engine
// and checks that no state leaks between invocations: every repetition must
// reproduce its first answer exactly.
func TestWalkStateHygiene(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	n := g.NumNodes()
	e := mustEngine(t, g, DHTLambda(0.4), 6)
	out := make([]float64, n)
	e.BackWalk(3, 6, out)
	wantBack := append([]float64(nil), out...)
	wantFwd := e.ForwardScore(1, 7)
	probs := make([]float64, 6)
	copy(probs, e.ForwardHitProbsInto(1, 7, probs))
	wantProbs := append([]float64(nil), probs...)
	for i := 0; i < 3; i++ {
		e.ForwardScoreKind(Reach, 2, 9, 3) // interleave a different primitive
		e.BackWalkKind(Reach, 5, 2, out)
		if got := e.ForwardScore(1, 7); got != wantFwd {
			t.Fatalf("iter %d: forward score drifted: %v vs %v", i, got, wantFwd)
		}
		e.ForwardHitProbsInto(1, 7, probs)
		for j := range probs {
			if probs[j] != wantProbs[j] {
				t.Fatalf("iter %d: hit probs drifted at %d: %v vs %v", i, j, probs[j], wantProbs[j])
			}
		}
		e.BackWalk(3, 6, out)
		for u := range out {
			if out[u] != wantBack[u] {
				t.Fatalf("iter %d: backwalk drifted at %d: %v vs %v", i, u, out[u], wantBack[u])
			}
		}
	}
}

// TestSparseEpsApproximation: a positive mass threshold must stay within an
// absolute α·ε·d·λ-ish envelope of the exact kernel (each dropped entry
// carries at most ε mass per step).
func TestSparseEpsApproximation(t *testing.T) {
	g := sparseTestGraphs(t)[1]
	p := DHTLambda(0.5)
	d := 8
	exact := mustEngine(t, g, p, d)
	approx := mustEngine(t, g, p, d)
	approx.SparseEps = 1e-9
	approx.DenseThreshold = 1e9 // keep every step sparse so the threshold acts
	n := g.NumNodes()
	a := make([]float64, n)
	b := make([]float64, n)
	for _, q := range []graph.NodeID{0, graph.NodeID(n / 2)} {
		exact.BackWalk(q, d, a)
		approx.BackWalk(q, d, b)
		for u := range a {
			if math.Abs(a[u]-b[u]) > 1e-6 {
				t.Fatalf("eps-approx too far at %d→%d: %v vs %v", u, q, a[u], b[u])
			}
		}
	}
}

// TestEnginePoolReuse checks the pool hands engines back out after Put and
// that pooled engines aggregate into the shared sink from many goroutines.
func TestEnginePoolReuse(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	pl, err := NewEnginePool(g, DHTLambda(0.2), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sink Counters
	pl.Sink = &sink
	e1 := pl.Get()
	pl.Put(e1)
	if e2 := pl.Get(); e2 != e1 {
		// Not guaranteed by sync.Pool, but in a single-goroutine sequence
		// with no GC it holds; treat a miss as a skip, not a failure.
		t.Skip("sync.Pool did not return the cached engine")
	} else {
		pl.Put(e2)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := pl.Get()
			defer pl.Put(e)
			out := make([]float64, g.NumNodes())
			for i := 0; i < 5; i++ {
				e.BackWalk(graph.NodeID((w*5+i)%g.NumNodes()), 4, out)
			}
		}(w)
	}
	wg.Wait()
	if got := sink.Snapshot().Walks; got != 20 {
		t.Fatalf("sink walks = %d, want 20", got)
	}
	if _, err := NewEnginePool(g, Params{Alpha: 0, Beta: 0, Lambda: 0.5}, 4); err == nil {
		t.Fatal("invalid pool config accepted")
	}
}

// TestIntoVariantsMatchAllocating pins the buffer-reusing entry points to
// their allocating counterparts.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	e := mustEngine(t, g, DHTLambda(0.3), 6)
	probs := e.ForwardHitProbs(0, 9, 6)
	buf := make([]float64, 6)
	for i := range buf {
		buf[i] = math.NaN() // Into must fully overwrite
	}
	e.ForwardHitProbsInto(0, 9, buf)
	for i := range probs {
		if probs[i] != buf[i] {
			t.Fatalf("Into mismatch at %d: %v vs %v", i, buf[i], probs[i])
		}
	}
	seeds := []graph.NodeID{0, 1}
	targets := []graph.NodeID{9, 12}
	want := e.ReachProbs(seeds, targets, 5)
	res := make([][]float64, 5)
	for i := range res {
		res[i] = []float64{math.NaN(), math.NaN()}
	}
	e.ReachProbsInto(seeds, targets, res)
	for i := range want {
		for ti := range want[i] {
			if want[i][ti] != res[i][ti] {
				t.Fatalf("ReachProbsInto mismatch at [%d][%d]", i, ti)
			}
		}
	}
}
