package dht

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func mustFastEngine(t testing.TB, g *graph.Graph, p Params, d, w, workers int) *FastBatchEngine {
	t.Helper()
	fe, err := NewFastBatchEngine(g, p, d, w, workers)
	if err != nil {
		t.Fatal(err)
	}
	return fe
}

// TestFastContract pins the kernel-contract surface: the fast engine
// advertises FastCertified with a strictly positive score bound, the
// existing engines advertise BitIdentical with bound exactly 0.
func TestFastContract(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	p := DHTLambda(0.2)
	e, err := NewEngine(g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	be := mustBatchEngine(t, g, p, 8, 8)
	fe := mustFastEngine(t, g, p, 8, 0, 0)
	if e.Contract() != BitIdentical || e.ScoreBound() != 0 {
		t.Fatalf("Engine contract %v bound %v", e.Contract(), e.ScoreBound())
	}
	if be.Contract() != BitIdentical || be.ScoreBound() != 0 {
		t.Fatalf("BatchEngine contract %v bound %v", be.Contract(), be.ScoreBound())
	}
	if fe.Contract() != FastCertified {
		t.Fatalf("FastBatchEngine contract %v", fe.Contract())
	}
	if fe.ScoreBound() <= 0 {
		t.Fatalf("fast score bound %v, want > 0", fe.ScoreBound())
	}
	if fe.Width() != DefaultFastWidth {
		t.Fatalf("default fast width %d, want %d", fe.Width(), DefaultFastWidth)
	}
}

// TestFastBackScoresWithinBound is the error-bound contract: every fast
// backward score must land within ScoreBound() of the bit-identical
// reference, across graphs, measures, and widths {8, 16, 32}.
func TestFastBackScoresWithinBound(t *testing.T) {
	p := DHTLambda(0.2)
	const d = 8
	for gi, g := range sparseTestGraphs(t) {
		solo, err := NewEngine(g, p, d)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumNodes()
		qs := make([]graph.NodeID, 0, n)
		for u := 0; u < n; u++ {
			qs = append(qs, graph.NodeID(u))
		}
		for _, kind := range []Kind{FirstHit, Reach} {
			for _, w := range []int{8, 16, 32} {
				fe := mustFastEngine(t, g, p, d, w, 0)
				eps := fe.ScoreBound()
				for base := 0; base < len(qs); base += w {
					end := min(base+w, len(qs))
					chunk := qs[base:end]
					cols := fe.BackWalkScoresBatch(kind, chunk, d)
					for ci, q := range chunk {
						ref := solo.BackWalkScores(kind, q, d)
						for u := range ref {
							if diff := math.Abs(cols[ci][u] - ref[u]); diff > eps {
								t.Fatalf("graph %d kind %v w=%d q=%d u=%d: |%v - %v| = %v > eps %v",
									gi, kind, w, q, u, cols[ci][u], ref[u], diff, eps)
							}
						}
					}
				}
			}
		}
	}
}

// TestFastForwardProbsWithinBound checks the forward shape: folding a fast
// probability row with Params.Score lands within ScoreBound() of the exact
// forward score.
func TestFastForwardProbsWithinBound(t *testing.T) {
	p := DHTLambda(0.2)
	const d = 8
	g := sparseTestGraphs(t)[0]
	solo, err := NewEngine(g, p, d)
	if err != nil {
		t.Fatal(err)
	}
	fe := mustFastEngine(t, g, p, d, 16, 0)
	eps := fe.ScoreBound()
	n := g.NumNodes()
	ps := make([]graph.NodeID, 0, fe.W)
	qs := make([]graph.NodeID, 0, fe.W)
	check := func() {
		rows := fe.ForwardProbsBatch(FirstHit, ps, qs, d)
		for c := range ps {
			got := p.Score(rows[c])
			if ps[c] == qs[c] {
				got = 0
			}
			want := solo.ForwardScoreAt(ps[c], qs[c], d)
			if diff := math.Abs(got - want); diff > eps {
				t.Fatalf("pair (%d,%d): |%v - %v| = %v > eps %v", ps[c], qs[c], got, want, diff, eps)
			}
		}
		ps, qs = ps[:0], qs[:0]
	}
	for u := 0; u < n; u++ {
		ps = append(ps, graph.NodeID(u))
		qs = append(qs, graph.NodeID((u*7+3)%n))
		if len(ps) == fe.W {
			check()
		}
	}
	if len(ps) > 0 {
		check()
	}
}

// TestFastDeterministicAcrossWorkers pins the partitioned parallel sweep's
// key property: row ownership is disjoint and each row sums sequentially,
// so the output is bit-for-bit independent of the worker count. The graph
// is sized past fastParallelMin so the parallel path actually engages.
func TestFastDeterministicAcrossWorkers(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{700, 700}, PIn: 0.02, POut: 0.005, Seed: 9, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < fastParallelMin {
		t.Fatalf("test graph too small to engage the parallel sweep: %d nodes", g.NumNodes())
	}
	p := DHTLambda(0.2)
	qs := sets[1].Nodes()[:16]
	var ref [][]float64
	for _, workers := range []int{1, 2, 8} {
		fe := mustFastEngine(t, g, p, 8, 16, workers)
		cols := fe.BackWalkScoresBatch(FirstHit, qs, 8)
		if ref == nil {
			ref = make([][]float64, len(cols))
			for c := range cols {
				ref[c] = append([]float64(nil), cols[c]...)
			}
			continue
		}
		for c := range cols {
			for u := range cols[c] {
				if cols[c][u] != ref[c][u] {
					t.Fatalf("workers=%d col %d node %d: %v != %v (worker count changed the result)",
						workers, c, u, cols[c][u], ref[c][u])
				}
			}
		}
	}
}

// TestFastCountersFlushToSink mirrors the batch-engine sink test: walks
// count columns, sweep deltas arrive per batch, and Certify flows through
// the chain.
func TestFastCountersFlushToSink(t *testing.T) {
	g := sparseTestGraphs(t)[0]
	var sink Counters
	fe := mustFastEngine(t, g, DHTLambda(0.2), 4, 8, 0)
	fe.Sink = &sink
	fe.BackWalkScoresBatch(FirstHit, []graph.NodeID{0, 1, 2}, 4)
	fe.ForwardProbsBatch(FirstHit, []graph.NodeID{0, 1}, []graph.NodeID{3, 4}, 4)
	snap := sink.Snapshot()
	if snap.Walks != 5 {
		t.Fatalf("sink walks = %d, want 5 (3 backward columns + 2 forward)", snap.Walks)
	}
	if snap.EdgeSweeps != fe.EdgeSweeps {
		t.Fatalf("sink sweeps %d diverge from engine %d", snap.EdgeSweeps, fe.EdgeSweeps)
	}
	var root Counters
	chained := Counters{Chain: &root}
	chained.Certify(1, 40, 30)
	for _, c := range []*Counters{&chained, &root} {
		s := c.Snapshot()
		if s.KernelPicks != 1 || s.Reverified != 40 || s.FallbackPairs != 30 {
			t.Fatalf("certify counters = %+v", s)
		}
	}
	chained.Reset()
	if s := chained.Snapshot(); s.KernelPicks != 0 || s.Reverified != 0 || s.FallbackPairs != 0 {
		t.Fatalf("reset left certify counters: %+v", s)
	}
}
