package dht

import (
	"testing"

	"repro/internal/graph"
)

// benchKernel compares the adaptive sparse/dense kernel against the forced
// dense reference on full-depth walks; the reported custom metrics show how
// the work split between the two paths.
func benchKernel(b *testing.B, force bool) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	e.ForceDense = force
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalk(graph.NodeID(i%g.NumNodes()), 8, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(e.EdgeSweeps)/float64(b.N), "sweeps/op")
	b.ReportMetric(float64(e.FrontierEdges)/float64(b.N), "frontieredges/op")
}

// BenchmarkBackWalkAdaptiveKernel: full-depth backward walk, adaptive kernel.
func BenchmarkBackWalkAdaptiveKernel(b *testing.B) { benchKernel(b, false) }

// BenchmarkBackWalkForceDenseKernel: the same walk on the dense reference.
func BenchmarkBackWalkForceDenseKernel(b *testing.B) { benchKernel(b, true) }

// BenchmarkBackWalkShort measures the l=1 walk that dominates B-IDJ's first
// deepening round — the regime the sparse frontier exists for: only the
// target's in-neighbors are touched instead of O(|V|) scans per step.
func BenchmarkBackWalkShort(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalk(graph.NodeID(i%g.NumNodes()), 1, out)
	}
}

// BenchmarkBackWalkScoresShort is BenchmarkBackWalkShort through the
// β-prefilled engine-owned column: no O(|V|) clear of the caller buffer and
// no O(|V|) affine pass, only the touched entries.
func BenchmarkBackWalkScoresShort(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalkScores(FirstHit, graph.NodeID(i%g.NumNodes()), 1)
	}
}
