package dht

import (
	"testing"

	"repro/internal/graph"
)

// benchKernel compares the adaptive sparse/dense kernel against the forced
// dense reference on full-depth walks; the reported custom metrics show how
// the work split between the two paths.
func benchKernel(b *testing.B, force bool) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	e.ForceDense = force
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalk(graph.NodeID(i%g.NumNodes()), 8, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(e.EdgeSweeps)/float64(b.N), "sweeps/op")
	b.ReportMetric(float64(e.FrontierEdges)/float64(b.N), "frontieredges/op")
}

// BenchmarkBackWalkAdaptiveKernel: full-depth backward walk, adaptive kernel.
func BenchmarkBackWalkAdaptiveKernel(b *testing.B) { benchKernel(b, false) }

// BenchmarkBackWalkForceDenseKernel: the same walk on the dense reference.
func BenchmarkBackWalkForceDenseKernel(b *testing.B) { benchKernel(b, true) }

// BenchmarkBackWalkShort measures the l=1 walk that dominates B-IDJ's first
// deepening round — the regime the sparse frontier exists for: only the
// target's in-neighbors are touched instead of O(|V|) scans per step.
func BenchmarkBackWalkShort(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalk(graph.NodeID(i%g.NumNodes()), 1, out)
	}
}

// BenchmarkBackWalkScoresShort is BenchmarkBackWalkShort through the
// β-prefilled engine-owned column: no O(|V|) clear of the caller buffer and
// no O(|V|) affine pass, only the touched entries.
func BenchmarkBackWalkScoresShort(b *testing.B) {
	g := benchGraph(b)
	e, err := NewEngine(g, DHTLambda(0.2), 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BackWalkScores(FirstHit, graph.NodeID(i%g.NumNodes()), 1)
	}
}

// benchBatchBackWalk measures the batched kernel at the given width against
// BenchmarkBackWalkForceDenseKernel / BenchmarkBackWalkAdaptiveKernel: one
// op is ONE walk (b.N walks are issued in width-sized batches), so ns/op is
// directly comparable to the solo kernels.
func benchBatchBackWalk(b *testing.B, w, steps int) {
	g := benchGraph(b)
	be, err := NewBatchEngine(g, DHTLambda(0.2), 8, w)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]graph.NodeID, w)
	b.ResetTimer()
	for i := 0; i < b.N; i += w {
		aw := w
		if i+aw > b.N {
			aw = b.N - i
		}
		for c := 0; c < aw; c++ {
			qs[c] = graph.NodeID((i + c) % g.NumNodes())
		}
		be.BackWalkScoresBatch(FirstHit, qs[:aw], steps)
	}
	b.StopTimer()
	b.ReportMetric(float64(be.EdgeSweeps)/float64(b.N), "sweeps/op")
	b.ReportMetric(float64(be.FrontierEdges)/float64(b.N), "frontieredges/op")
}

// BenchmarkBatchBackWalkW8: full-depth backward walks, 8 columns per scan.
func BenchmarkBatchBackWalkW8(b *testing.B) { benchBatchBackWalk(b, 8, 8) }

// BenchmarkBatchBackWalkW16: the same at width 16.
func BenchmarkBatchBackWalkW16(b *testing.B) { benchBatchBackWalk(b, 16, 8) }

// BenchmarkBatchBackWalkShortW8: the l=1 deepening-round regime, batched.
func BenchmarkBatchBackWalkShortW8(b *testing.B) { benchBatchBackWalk(b, 8, 1) }
