package dht

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

func memoCol(v float64, n int) []float64 {
	col := make([]float64, n)
	for i := range col {
		col[i] = v
	}
	return col
}

func TestScoreMemoLRU(t *testing.T) {
	m := NewScoreMemo(2)
	if m.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", m.Cap())
	}
	m.Put(FirstHit, 1, 8, memoCol(1, 4))
	m.Put(FirstHit, 2, 8, memoCol(2, 4))
	if _, ok := m.Get(FirstHit, 1, 8); !ok {
		t.Fatal("q=1 missing")
	}
	// q=2 is now LRU; inserting q=3 must evict it.
	m.Put(FirstHit, 3, 8, memoCol(3, 4))
	if _, ok := m.Get(FirstHit, 2, 8); ok {
		t.Fatal("q=2 should have been evicted")
	}
	if col, ok := m.Get(FirstHit, 1, 8); !ok || col[0] != 1 {
		t.Fatalf("q=1 = %v,%v, want kept", col, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// Distinct walk lengths and kinds are distinct keys.
	m.Put(FirstHit, 1, 4, memoCol(9, 4))
	if col, ok := m.Get(FirstHit, 1, 4); !ok || col[0] != 9 {
		t.Fatal("(q=1, steps=4) not keyed separately")
	}
	if m.Hits() == 0 || m.Misses() == 0 {
		t.Fatalf("hit/miss counters not tracking: %d/%d", m.Hits(), m.Misses())
	}
}

// TestScoreMemoColumnsImmutable pins the property the concurrency safety
// rests on: a column returned by Get stays valid and unchanged after the
// entry is evicted and after further Puts — published columns are never
// rewritten or recycled, and Put copies the caller's slice so later caller
// mutations don't leak in.
func TestScoreMemoColumnsImmutable(t *testing.T) {
	m := NewScoreMemo(1)
	src := memoCol(5, 4)
	m.Put(FirstHit, 1, 8, src)
	col, ok := m.Get(FirstHit, 1, 8)
	if !ok {
		t.Fatal("miss after Put")
	}
	src[0] = -1 // caller reuses its buffer; the memo must hold a copy
	m.Put(FirstHit, 2, 8, memoCol(6, 4))
	m.Put(FirstHit, 3, 8, memoCol(7, 4))
	for i, v := range col {
		if v != 5 {
			t.Fatalf("evicted column mutated at %d: %v", i, v)
		}
	}
	// Re-Put under a live key keeps the published column.
	col2, _ := m.Get(FirstHit, 3, 8)
	m.Put(FirstHit, 3, 8, memoCol(8, 4))
	if col2[0] != 7 {
		t.Fatal("re-Put rewrote a published column")
	}
}

// TestScoreMemoConcurrent hammers one memo from many goroutines (run under
// -race in CI). Keys deliberately collide across goroutines so the same
// shard sees concurrent Get/Put/eviction traffic.
func TestScoreMemoConcurrent(t *testing.T) {
	for _, capacity := range []int{4, 128} { // single-shard and sharded
		m := NewScoreMemo(capacity)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]float64, 16)
				for i := 0; i < 500; i++ {
					q := graph.NodeID((w + i) % 20)
					want := float64(q)*100 + float64(i%3)
					steps := i % 3
					if col, ok := m.Get(FirstHit, q, steps); ok {
						if col[0] != float64(q)*100+float64(steps) {
							t.Errorf("cap %d: column for (%d,%d) holds %v", capacity, q, steps, col[0])
							return
						}
						continue
					}
					for j := range buf {
						buf[j] = want
					}
					m.Put(FirstHit, q, steps, buf)
				}
			}(w)
		}
		wg.Wait()
		if m.Len() > m.Cap() {
			t.Fatalf("cap %d: Len %d exceeds Cap %d", capacity, m.Len(), m.Cap())
		}
	}
}

func TestScoreMemoNil(t *testing.T) {
	var m *ScoreMemo
	if _, ok := m.Get(FirstHit, 0, 1); ok {
		t.Fatal("nil memo hit")
	}
	m.Put(FirstHit, 0, 1, []float64{1})
	if m.Len() != 0 || m.Cap() != 0 || m.Hits() != 0 || m.Misses() != 0 {
		t.Fatal("nil memo not inert")
	}
}
