package dht

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// DefaultFastWidth is the lane count of the FastCertified batch kernel: 16
// float32 walk columns — one 64-byte cache line per node, the same line
// budget as the bit-identical kernel's 8 float64 lanes, at twice the width.
const DefaultFastWidth = 16

// fastRowBlock is the number of destination rows one parallel work unit
// claims. Blocks keep each worker streaming through a contiguous slice of
// the CSR arrays (cache blocking) while the atomic claim counter
// load-balances skewed degree distributions.
const fastRowBlock = 256

// fastParallelMin is the smallest node count worth fanning a sweep out to
// multiple workers; below it the per-round goroutine and barrier overhead
// exceeds the sweep itself.
const fastParallelMin = 4 * fastRowBlock

// FastBatchEngine is the FastCertified walk kernel: float32 lanes at
// DefaultFastWidth, cache-blocked CSR row scans, and multi-core partitioned
// sweeps merged at a per-round barrier. It trades the bit-identical
// contract for throughput, and quantifies the trade: every score it returns
// is within ScoreBound() of the bit-identical reference value, so a joiner
// can certify a ranking from fast scores and re-verify only the pairs whose
// ε-band straddles the cut.
//
// The kernel differs from BatchEngine in three deliberate ways:
//
//   - Pull-form sweeps. Each round computes every destination row from its
//     own adjacency list (backward pulls over out-edges, forward pulls over
//     in-edges), so rows partition disjointly across workers — no write
//     sharing, no atomics in the hot loop, and the per-round barrier is the
//     whole "merge partitioned frontiers" protocol. Results are
//     deterministic for a fixed graph regardless of worker count, because
//     each row is summed sequentially in adjacency order by exactly one
//     worker; they are merely not bit-identical to the float64 push kernel.
//   - Always dense. The fast path exists for walk-dominated batch work
//     where frontiers saturate within a step or two; skipping frontier
//     maintenance keeps the inner loop at two fused multiply-adds per edge
//     lane. A zero-mass round still exits early.
//   - float32 arithmetic, float64 fold. Probabilities live in [0,1] where
//     float32 keeps ~2⁻²³ relative precision; the affine score fold
//     (α·s + β) runs in float64 so the fold itself adds no lane error.
//
// Like the other engines, a FastBatchEngine is single-checkout: it owns its
// scratch and output buffers, and concurrent use must go through
// EnginePool.GetFast/PutFast.
type FastBatchEngine struct {
	G      *graph.Graph
	Params Params
	D      int
	W      int // float32 lane count per CSR sweep

	// Workers is the sweep fan-out; 0 selects GOMAXPROCS. Small graphs run
	// serial regardless — see fastParallelMin.
	Workers int

	// Sink, when non-nil, receives per-batch counter deltas, exactly like
	// BatchEngine.Sink.
	Sink *Counters

	// eps is the conservative per-score rounding bound computed once at
	// construction from (λ, d, max degree); see fastScoreBound.
	eps float64

	// Pull-form float32 transition probabilities, flattened in adjacency
	// order with per-row offsets: outP[outOff[u]:outOff[u+1]] aligns with
	// G.OutEdges(u) (backward pulls), inP likewise with G.InEdges (forward).
	outOff, inOff []int64
	outP, inP     []float32

	// Node-major lane buffers, len = NumNodes·W: cur/next are the walk
	// vectors swapped each round, acc accumulates Σ λ^i·P_i per lane.
	cur, next, acc []float32

	// Engine-owned batch outputs, reused across calls (BatchEngine idiom).
	out       [][]float64
	outFlat   []float64
	probs     [][]float64
	probsFlat []float64

	masses []float64 // per-worker mass partials, reduced after the barrier

	// Counters since construction; deltas flush to Sink per batch.
	Walks      int64 // walk columns evaluated
	EdgeSweeps int64 // full dense rounds (each touches every edge once)
}

// NewFastBatchEngine builds a FastCertified kernel for g with lane width w
// (0 selects DefaultFastWidth) and the given sweep fan-out (0 selects
// GOMAXPROCS at run time).
func NewFastBatchEngine(g *graph.Graph, p Params, d, w, workers int) (*FastBatchEngine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("dht: depth d must be >= 1, got %d", d)
	}
	if w == 0 {
		w = DefaultFastWidth
	}
	if w < 1 {
		return nil, fmt.Errorf("dht: fast batch width must be >= 1, got %d", w)
	}
	n := g.NumNodes()
	fe := &FastBatchEngine{
		G: g, Params: p, D: d, W: w, Workers: workers,
		cur:  make([]float32, n*w),
		next: make([]float32, n*w),
		acc:  make([]float32, n*w),
	}
	fe.outOff, fe.outP = pullProbs(n, g.NumEdges(), func(u graph.NodeID) []float64 {
		_, _, tp := g.OutEdges(u)
		return tp
	})
	fe.inOff, fe.inP = pullProbs(n, g.NumEdges(), func(u graph.NodeID) []float64 {
		_, _, fp := g.InEdges(u)
		return fp
	})
	maxDeg := 0
	for u := 0; u < n; u++ {
		if dg := g.OutDegree(graph.NodeID(u)); dg > maxDeg {
			maxDeg = dg
		}
		if dg := g.InDegree(graph.NodeID(u)); dg > maxDeg {
			maxDeg = dg
		}
	}
	fe.eps = fastScoreBound(p, d, maxDeg)
	return fe, nil
}

// pullProbs flattens one direction's transition probabilities to float32 in
// adjacency order with per-row offsets.
func pullProbs(n, edges int, row func(u graph.NodeID) []float64) ([]int64, []float32) {
	off := make([]int64, n+1)
	ps := make([]float32, 0, edges)
	for u := 0; u < n; u++ {
		for _, p := range row(graph.NodeID(u)) {
			ps = append(ps, float32(p))
		}
		off[u+1] = int64(len(ps))
	}
	return off, ps
}

// fastScoreBound derives the conservative per-score error bound ε of the
// float32 kernel against the bit-identical float64 reference.
//
// Every intermediate probability is a sum of products of row-stochastic
// transition probabilities, so all magnitudes stay in [0,1] and relative
// float32 errors (unit roundoff u = 2⁻²³) never amplify across a step — a
// step is a convex-combination pull. Charging the worst case per term:
//
//   - Converting a transition probability to float32 costs one u; each
//     fused multiply-add in a row sum of ≤ Δ terms costs ≤ Δ·u more, so one
//     round adds ≤ (Δ+2)·u relative error, and the mass feeding step i has
//     accumulated ≤ i·(Δ+2)·u.
//   - The λ-power weighting and the final fold add ≤ (d+2)·u on top.
//
// Weighting each round's error by its maximum possible contribution to the
// score (λ^i, since P_i ≤ 1) and scaling by |α| gives
//
//	ε = slack · |α| · Σ_{i=1..d} λ^i · (i·(Δ+2)·u + (d+2)·u)
//
// with slack = 4 absorbing the difference between this per-term model and
// true error composition. The property tests validate the bound empirically
// (fast vs. exact scores on adversarial graphs); certification correctness
// additionally only needs the bound to be conservative, never tight.
func fastScoreBound(p Params, d, maxDeg int) float64 {
	const u = 1.0 / (1 << 23)
	const slack = 4.0
	sum := 0.0
	pow := 1.0
	for i := 1; i <= d; i++ {
		pow *= p.Lambda
		sum += pow * (float64(i)*(float64(maxDeg)+2)*u + float64(d+2)*u)
	}
	return slack * math.Abs(p.Alpha) * sum
}

// Contract reports the FastCertified guarantee: scores within ScoreBound()
// of the reference, not bit-identical.
func (fe *FastBatchEngine) Contract() Contract { return FastCertified }

// ScoreBound returns the per-score error bound ε every batch result of this
// engine satisfies.
func (fe *FastBatchEngine) ScoreBound() float64 { return fe.eps }

// Width reports the engine's lane count.
func (fe *FastBatchEngine) Width() int { return fe.W }

// ResetCounters zeroes the work counters.
func (fe *FastBatchEngine) ResetCounters() { fe.Walks, fe.EdgeSweeps = 0, 0 }

// workerCount resolves the sweep fan-out for an n-row graph.
func (fe *FastBatchEngine) workerCount(n int) int {
	if n < fastParallelMin {
		return 1
	}
	w := fe.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if blocks := (n + fastRowBlock - 1) / fastRowBlock; w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sweepRange advances rows [lo, hi) one round: each destination row is
// rebuilt from scratch as the probability-weighted pull over its adjacency
// list, and (when accumulating) folded into acc with the round's λ-power.
// Returns the total mass written, the early-exit signal.
func (fe *FastBatchEngine) sweepRange(backward bool, aw int, pow float32, accumulate bool, lo, hi int) float64 {
	w := fe.W
	g := fe.G
	cur, next, acc := fe.cur, fe.next, fe.acc
	off, probs := fe.inOff, fe.inP
	if backward {
		off, probs = fe.outOff, fe.outP
	}
	var mass float64
	for u := lo; u < hi; u++ {
		var nbr []graph.NodeID
		if backward {
			nbr, _, _ = g.OutEdges(graph.NodeID(u))
		} else {
			nbr, _, _ = g.InEdges(graph.NodeID(u))
		}
		ps := probs[off[u]:off[u+1]]
		base := u * w
		row := next[base : base+aw]
		for c := range row {
			row[c] = 0
		}
		for j, v := range nbr {
			pv := ps[j]
			src := cur[int(v)*w : int(v)*w+aw]
			for c, m := range src {
				row[c] += pv * m
			}
		}
		if accumulate {
			arow := acc[base : base+aw]
			for c, m := range row {
				arow[c] += pow * m
				mass += float64(m)
			}
		} else {
			for _, m := range row {
				mass += float64(m)
			}
		}
	}
	return mass
}

// sweep runs one full round over every destination row, partitioned across
// workers in fastRowBlock units claimed off an atomic counter. The
// WaitGroup barrier is the per-round merge point: after it, next holds the
// complete new walk vector and the per-worker mass partials reduce to the
// round's total. Row ownership is disjoint, so the sweep is race-free by
// construction and its result is independent of the worker count.
func (fe *FastBatchEngine) sweep(backward bool, aw int, pow float32, accumulate bool) float64 {
	n := fe.G.NumNodes()
	fe.EdgeSweeps++
	workers := fe.workerCount(n)
	if workers == 1 {
		return fe.sweepRange(backward, aw, pow, accumulate, 0, n)
	}
	if cap(fe.masses) < workers {
		fe.masses = make([]float64, workers)
	}
	masses := fe.masses[:workers]
	var nextBlock atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var m float64
			for {
				b := int(nextBlock.Add(1) - 1)
				lo := b * fastRowBlock
				if lo >= n {
					break
				}
				hi := lo + fastRowBlock
				if hi > n {
					hi = n
				}
				m += fe.sweepRange(backward, aw, pow, accumulate, lo, hi)
			}
			masses[k] = m
		}(k)
	}
	wg.Wait()
	var total float64
	for _, m := range masses {
		total += m
	}
	return total
}

// beginFastBatch zeroes the walk and accumulator lanes and snapshots the
// sweep counter for the Sink flush.
func (fe *FastBatchEngine) beginFastBatch(cols int) (sweeps0 int64) {
	fe.Walks += int64(cols)
	clearVec32(fe.cur)
	clearVec32(fe.acc)
	return fe.EdgeSweeps
}

// endFastBatch flushes the batch's counter deltas to the Sink, if any. The
// fast kernel has no sparse path, so the frontier-edge delta is zero.
func (fe *FastBatchEngine) endFastBatch(cols int, sweeps0 int64) {
	if fe.Sink != nil {
		fe.Sink.add(int64(cols), fe.EdgeSweeps-sweeps0, 0)
	}
}

// BackWalkScoresBatch is BatchEngine.BackWalkScoresBatch under the
// FastCertified contract: column c approximates a solo
// BackWalkScores(kind, qs[c], steps) run within ScoreBound(). Returned
// columns are engine-owned, valid until the next batch call on this engine.
// len(qs) must be in [1, W].
func (fe *FastBatchEngine) BackWalkScoresBatch(kind Kind, qs []graph.NodeID, steps int) [][]float64 {
	aw := len(qs)
	if aw == 0 || aw > fe.W {
		panic(fmt.Sprintf("dht: fast BackWalkScoresBatch with %d targets, want 1..%d", aw, fe.W))
	}
	w := fe.W
	sweeps0 := fe.beginFastBatch(aw)
	for c, q := range qs {
		fe.cur[int(q)*w+c] = 1
	}
	absorb := kind == FirstHit
	pow := float32(1)
	lam := float32(fe.Params.Lambda)
	for i := 1; i <= steps; i++ {
		pow *= lam
		mass := fe.sweep(true, aw, pow, true)
		if absorb {
			for c, q := range qs {
				fe.next[int(q)*w+c] = 0 // walkers that reached q stop (Eq. 5)
			}
		}
		fe.cur, fe.next = fe.next, fe.cur
		if mass == 0 {
			break // no column carries mass anymore; P_j = 0 from here
		}
	}
	out := fe.scoreRows(aw)
	a, b := fe.Params.Alpha, fe.Params.Beta
	n := fe.G.NumNodes()
	for c := 0; c < aw; c++ {
		col := out[c]
		for v := 0; v < n; v++ {
			// The affine fold runs in float64: the lane error is already
			// paid inside acc, the fold adds none.
			col[v] = a*float64(fe.acc[v*w+c]) + b
		}
	}
	if absorb {
		for c, q := range qs {
			out[c][q] = 0 // h(q,q) = 0 by definition
		}
	}
	fe.endFastBatch(aw, sweeps0)
	return out
}

// ForwardProbsBatch is BatchEngine.ForwardProbsBatch under the
// FastCertified contract: row c approximates the solo per-step
// probabilities of pair c's walk; a Params.Score fold of a row lands within
// ScoreBound() of the exact score. Returned rows are engine-owned, valid
// until the next batch call. len(ps) must equal len(qs) and lie in [1, W].
func (fe *FastBatchEngine) ForwardProbsBatch(kind Kind, ps, qs []graph.NodeID, steps int) [][]float64 {
	aw := len(ps)
	if aw != len(qs) {
		panic(fmt.Sprintf("dht: fast ForwardProbsBatch with %d sources, %d targets", len(ps), len(qs)))
	}
	if aw == 0 || aw > fe.W {
		panic(fmt.Sprintf("dht: fast ForwardProbsBatch with %d pairs, want 1..%d", aw, fe.W))
	}
	w := fe.W
	probs := fe.probsRows(aw, steps)
	sweeps0 := fe.beginFastBatch(aw)
	absorb := kind == FirstHit
	for c, p := range ps {
		if absorb && p == qs[c] {
			continue // no first-hit mass: h(v,v) = 0 by definition
		}
		fe.cur[int(p)*w+c] = 1
	}
	for i := 0; i < steps; i++ {
		mass := fe.sweep(false, aw, 0, false)
		for c, q := range qs {
			idx := int(q)*w + c
			probs[c][i] = float64(fe.next[idx])
			if absorb {
				fe.next[idx] = 0 // absorb: mass that hit q stops walking
			}
		}
		fe.cur, fe.next = fe.next, fe.cur
		if mass == 0 {
			break // all mass absorbed or lost in sinks; P_j = 0 from here
		}
	}
	fe.endFastBatch(aw, sweeps0)
	return probs
}

// scoreRows returns engine-owned score columns, aw × NumNodes.
func (fe *FastBatchEngine) scoreRows(aw int) [][]float64 {
	n := fe.G.NumNodes()
	if cap(fe.outFlat) < fe.W*n {
		fe.outFlat = make([]float64, fe.W*n)
		fe.out = make([][]float64, fe.W)
	}
	flat := fe.outFlat[:fe.W*n]
	rows := fe.out[:aw]
	for c := range rows {
		rows[c] = flat[c*n : (c+1)*n]
	}
	return rows
}

// probsRows returns zeroed engine-owned rows, aw × steps.
func (fe *FastBatchEngine) probsRows(aw, steps int) [][]float64 {
	if cap(fe.probsFlat) < fe.W*steps {
		fe.probsFlat = make([]float64, fe.W*steps)
		fe.probs = make([][]float64, fe.W)
	}
	flat := fe.probsFlat[:fe.W*steps]
	clearVec(flat[:aw*steps])
	rows := fe.probs[:aw]
	for c := range rows {
		rows[c] = flat[c*steps : (c+1)*steps]
	}
	return rows
}

func clearVec32(v []float32) {
	for i := range v {
		v[i] = 0
	}
}
