package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Areas of the synthetic DBLP graph. The first three match the paper's
// running example (Table III); the rest pad the graph to a realistic mix of
// research communities.
var dblpAreas = []string{"DB", "AI", "SYS", "ML", "IR", "NET", "SEC", "THEORY", "HCI", "BIO"}

// name fragments for generated author labels.
var (
	givenNames = []string{
		"Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Frances", "Grace",
		"John", "Judea", "Ken", "Leslie", "Niklaus", "Robin", "Shafi", "Tim",
		"Vint", "Whitfield", "Yann", "Zohar",
	}
	surnames = []string{
		"Chen", "Garcia", "Ivanov", "Johnson", "Kim", "Kumar", "Lee", "Li",
		"Martin", "Mueller", "Nakamura", "Okafor", "Patel", "Rossi", "Santos",
		"Silva", "Smith", "Tanaka", "Wang", "Zhang",
	}
)

// DBLPConfig sizes the synthetic bibliographic graph.
type DBLPConfig struct {
	// Scale multiplies the default community sizes. Scale 1 yields roughly
	// 20k authors / 120k co-author edges — a laptop-friendly stand-in for
	// the real 188k/1.14M graph; the generators keep the same weighting and
	// community structure at any scale.
	Scale float64
	Seed  int64
}

// DBLP builds the synthetic co-authorship graph: undirected, edge weights =
// number of co-authored papers (geometric-ish, 1..12), one node set per
// research area, author-name labels, and a deterministic pseudo "first
// co-publication year" per edge used by SplitTemporal.
func DBLP(cfg DBLPConfig) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	// Base sizes sum to ~20k at scale 1, mildly skewed as real areas are.
	base := []int{3600, 3200, 2800, 2400, 2000, 1800, 1500, 1200, 900, 600}
	sizes := make([]int, len(base))
	for i, b := range base {
		sizes[i] = int(float64(b) * cfg.Scale)
		if sizes[i] < 4 {
			sizes[i] = 4
		}
	}
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes:      sizes,
		PIn:        pinForMeanDegree(7, sizes), // ~7 within-area co-authors
		POut:       0.002,                      // a couple of cross-area collaborations each
		Seed:       cfg.Seed,
		MaxWeight:  12,
		MinOutLink: 1,
	})
	if err != nil {
		return nil, err
	}
	// Dual-affiliation authors: real research areas overlap heavily (an
	// author publishing in both DB and AI), which is where cross-area link
	// prediction gets its signal. ~12% of authors join a second, nearby area
	// with a handful of extra co-author edges, and are counted as members of
	// both areas' node sets.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	members := make([][]graph.NodeID, len(sets))
	for i, s := range sets {
		members[i] = append([]graph.NodeID(nil), s.Nodes()...)
	}
	b := graph.NewBuilder(g.NumNodes(), true)
	for u := 0; u < g.NumNodes(); u++ {
		to, w, _ := g.OutEdges(graph.NodeID(u))
		for j := range to {
			b.AddEdge(graph.NodeID(u), to[j], w[j])
		}
		b.SetLabel(graph.NodeID(u), authorName(rng, u))
	}
	for area, s := range sets {
		for _, u := range s.Nodes() {
			if rng.Float64() >= 0.12 {
				continue
			}
			// Prefer the neighboring area in the list (research areas form a
			// loose topical chain), occasionally any other.
			second := (area + 1) % len(sets)
			if rng.Float64() < 0.3 {
				second = rng.Intn(len(sets))
			}
			if second == area {
				continue
			}
			peers := sets[second].Nodes()
			links := 2 + rng.Intn(4)
			for t := 0; t < links; t++ {
				v := peers[rng.Intn(len(peers))]
				if v == u {
					continue
				}
				w := float64(1 + rng.Intn(4))
				b.AddEdge(u, v, w)
				b.AddEdge(v, u, w) // keep the co-authorship graph undirected
			}
			members[second] = append(members[second], u)
		}
	}
	labeled := b.Build()
	// Real co-authorship graphs are highly transitive (papers have >2
	// authors); close wedges to add ≈30% more edges.
	labeled = graph.CloseTriads(labeled, labeled.NumEdges()/6, cfg.Seed+13)
	named := make([]*graph.NodeSet, len(sets))
	for i := range sets {
		named[i] = graph.NewNodeSet(dblpAreas[i], members[i])
	}
	return newDataset("DBLP", labeled, named), nil
}

// pinForMeanDegree chooses the within-community probability so that the mean
// within-community degree is roughly target.
func pinForMeanDegree(target float64, sizes []int) float64 {
	// mean degree within a community of size s is pin*(s-1); use the
	// size-weighted mean community size.
	var tot, n float64
	for _, s := range sizes {
		tot += float64(s) * float64(s)
		n += float64(s)
	}
	meanSize := tot / n
	p := target / (meanSize - 1)
	if p > 1 {
		p = 1
	}
	return p
}

// authorName renders a deterministic unique author label.
func authorName(rng *rand.Rand, id int) string {
	g := givenNames[rng.Intn(len(givenNames))]
	s := surnames[rng.Intn(len(surnames))]
	return fmt.Sprintf("%s %s #%04d", g, s, id)
}

// EdgeYear returns the deterministic pseudo year (1970–2012) attached to the
// undirected co-author edge {u, v}. It is a pure hash of the endpoint pair,
// so both directions agree and no storage is needed.
func EdgeYear(u, v graph.NodeID) int {
	if u > v {
		u, v = v, u
	}
	h := uint64(u)*0x9E3779B97F4A7C15 ^ uint64(v)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return 1970 + int(h%43) // 1970..2012
}

// SplitTemporal derives the test graph T by keeping only edges whose pseudo
// year is strictly before cutYear — the paper's "co-authorship graph by
// retaining only the edges before 1st January 2010" (§VII-B). It returns T
// and the list of removed (future) undirected edges.
func SplitTemporal(g *graph.Graph, cutYear int) (*graph.Graph, [][2]graph.NodeID) {
	var removed [][2]graph.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		to, _, _ := g.OutEdges(graph.NodeID(u))
		for _, v := range to {
			if graph.NodeID(u) < v && EdgeYear(graph.NodeID(u), v) >= cutYear {
				removed = append(removed, [2]graph.NodeID{graph.NodeID(u), v})
			}
		}
	}
	return graph.RemoveEdges(g, removed), removed
}
