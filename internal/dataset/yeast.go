package dataset

import (
	"repro/internal/graph"
)

// yeastClasses are the 13 protein classes. The paper refers to partitions
// "3-U", "5-F", and "8-D"; here 3-U and 8-D are the two largest (used for
// link prediction) and 5-F the third (used for 3-clique prediction).
var yeastClasses = []string{
	"1-A", "2-B", "3-U", "4-C", "5-F", "6-G", "7-H", "8-D", "9-I", "10-J", "11-K", "12-L", "13-M",
}

// yeastSizes sum to 2400 nodes, matching the real dataset's 2.4k proteins;
// positions follow yeastClasses.
var yeastSizes = []int{140, 160, 420, 150, 280, 150, 140, 380, 130, 130, 110, 110, 100}

// Yeast builds the synthetic protein-protein interaction network:
// undirected, unweighted, 2.4k nodes and ≈7.2k edges in 13 non-overlapping
// classes — the full scale of the real dataset. A triadic-closure pass adds
// the transitivity that real PPI networks exhibit (and the prediction
// experiments require).
func Yeast(seed int64) (*Dataset, error) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: yeastSizes,
		// Base targets ≈2.5k within + ≈1.4k cross undirected edges; the
		// closure pass below adds ≈3.3k more, for ≈7.2k total. The heavy
		// closure share mirrors the strong transitivity of real PPI data.
		PIn:        0.0087,
		POut:       0.0065,
		Seed:       seed,
		MaxWeight:  1,
		MinOutLink: 1,
	})
	if err != nil {
		return nil, err
	}
	g = graph.CloseTriads(g, 3300, seed+13)
	named := make([]*graph.NodeSet, len(sets))
	for i, s := range sets {
		named[i] = graph.NewNodeSet(yeastClasses[i], s.Nodes())
	}
	return newDataset("Yeast", g, named), nil
}
