// Package dataset builds the synthetic stand-ins for the paper's three real
// evaluation graphs — DBLP (bibliographic co-authorship), Yeast
// (protein-protein interaction), and YouTube (social sharing) — plus the
// test/true graph splits used by the link- and 3-clique-prediction
// experiments (§VII-B). See DESIGN.md §4 for the substitution rationale: the
// generators match each dataset's scale class, weighting, and community
// structure so that every algorithm code path and every reported trend is
// exercised, without the proprietary data.
package dataset

import (
	"fmt"

	"repro/internal/graph"
)

// Dataset is a graph with its named node sets.
type Dataset struct {
	Name  string
	Graph *graph.Graph
	Sets  []*graph.NodeSet

	byName map[string]*graph.NodeSet
}

func newDataset(name string, g *graph.Graph, sets []*graph.NodeSet) *Dataset {
	d := &Dataset{Name: name, Graph: g, Sets: sets, byName: make(map[string]*graph.NodeSet, len(sets))}
	for _, s := range sets {
		d.byName[s.Name] = s
	}
	return d
}

// Set returns the node set with the given name.
func (d *Dataset) Set(name string) (*graph.NodeSet, error) {
	s, ok := d.byName[name]
	if !ok {
		return nil, fmt.Errorf("dataset %s: no node set %q", d.Name, name)
	}
	return s, nil
}

// MustSet is Set for callers with static names; it panics on unknown names.
func (d *Dataset) MustSet(name string) *graph.NodeSet {
	s, err := d.Set(name)
	if err != nil {
		panic(err)
	}
	return s
}

// TopByDegree returns the n members of the named set with the highest
// weighted out-degree — the paper's "100 authors with the highest number of
// publications" selection (§VII-B), since a DBLP author's edge weights count
// co-authored papers.
func (d *Dataset) TopByDegree(name string, n int) (*graph.NodeSet, error) {
	s, err := d.Set(name)
	if err != nil {
		return nil, err
	}
	type nw struct {
		id graph.NodeID
		w  float64
	}
	members := make([]nw, 0, s.Len())
	for _, id := range s.Nodes() {
		_, w, _ := d.Graph.OutEdges(id)
		var sum float64
		for _, x := range w {
			sum += x
		}
		members = append(members, nw{id, sum})
	}
	// Selection by partial sort: n is small.
	for i := 0; i < n && i < len(members); i++ {
		best := i
		for j := i + 1; j < len(members); j++ {
			if members[j].w > members[best].w ||
				(members[j].w == members[best].w && members[j].id < members[best].id) {
				best = j
			}
		}
		members[i], members[best] = members[best], members[i]
	}
	if n > len(members) {
		n = len(members)
	}
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = members[i].id
	}
	return graph.NewNodeSet(s.Name, ids), nil
}

// Relabeled returns the dataset with its graph reordered by the given
// locality ordering ("degree" or "bfs") and every node set mapped into the
// new id space — the load-time hook for the relabeling knob: experiments
// built on a relabeled dataset exercise the cache-friendly CSR end to end,
// and labels travel with their nodes so rendered tables are unchanged.
func Relabeled(d *Dataset, order string) (*Dataset, error) {
	var (
		rg *graph.Graph
		r  *graph.Relabeling
	)
	switch order {
	case "degree":
		rg, r = graph.RelabelDegree(d.Graph)
	case "bfs":
		rg, r = graph.RelabelBFS(d.Graph)
	default:
		return nil, fmt.Errorf("dataset: unknown relabel order %q (want degree or bfs)", order)
	}
	sets := make([]*graph.NodeSet, len(d.Sets))
	for i, s := range d.Sets {
		sets[i] = r.MapSetToNew(s)
	}
	return newDataset(d.Name, rg, sets), nil
}
