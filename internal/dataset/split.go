package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// SplitCross derives a test graph T by randomly removing the given fraction
// of the undirected edges between P and Q — the paper's construction for
// Yeast and YouTube link prediction ("randomly removing half of the edges
// between the node pairs in (P,Q)", §VII-B). It returns T and the removed
// edges, which are the positives the join should rediscover.
func SplitCross(g *graph.Graph, p, q *graph.NodeSet, fraction float64, seed int64) (*graph.Graph, [][2]graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	var candidates [][2]graph.NodeID
	for _, u := range p.Nodes() {
		to, _, _ := g.OutEdges(u)
		for _, v := range to {
			if q.Contains(v) {
				candidates = append(candidates, [2]graph.NodeID{u, v})
			}
		}
	}
	// Dedup undirected duplicates: keep the u<v canonical form once.
	seen := make(map[[2]graph.NodeID]struct{}, len(candidates))
	uniq := candidates[:0]
	for _, e := range candidates {
		c := e
		if c[0] > c[1] {
			c[0], c[1] = c[1], c[0]
		}
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		uniq = append(uniq, c)
	}
	rng.Shuffle(len(uniq), func(i, j int) { uniq[i], uniq[j] = uniq[j], uniq[i] })
	nDrop := int(float64(len(uniq)) * fraction)
	removed := uniq[:nDrop]
	return graph.RemoveEdges(g, removed), removed
}

// CrossEdgeCount returns the number of distinct undirected edges spanning
// (P, Q).
func CrossEdgeCount(g *graph.Graph, p, q *graph.NodeSet) int {
	seen := make(map[[2]graph.NodeID]struct{})
	for _, u := range p.Nodes() {
		to, _, _ := g.OutEdges(u)
		for _, v := range to {
			if !q.Contains(v) {
				continue
			}
			c := [2]graph.NodeID{u, v}
			if c[0] > c[1] {
				c[0], c[1] = c[1], c[0]
			}
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// BestLinkedPair returns the two sets among candidates with the most
// spanning edges — used to pick YouTube interest groups that actually
// interface, since randomly grown groups on the scaled-down graph may be
// disjoint (the real graph's group ids 1 and 5 happen to interface).
func BestLinkedPair(d *Dataset, candidates []string) (*graph.NodeSet, *graph.NodeSet, error) {
	var bestA, bestB *graph.NodeSet
	best := -1
	for i := 0; i < len(candidates); i++ {
		a, err := d.Set(candidates[i])
		if err != nil {
			return nil, nil, err
		}
		for j := i + 1; j < len(candidates); j++ {
			b, err := d.Set(candidates[j])
			if err != nil {
				return nil, nil, err
			}
			if c := CrossEdgeCount(d.Graph, a, b); c > best {
				best, bestA, bestB = c, a, b
			}
		}
	}
	if bestA == nil {
		return nil, nil, fmt.Errorf("dataset %s: no candidate pairs", d.Name)
	}
	return bestA, bestB, nil
}

// Triangles3Way enumerates the 3-cliques of g with one node in each of the
// three sets, in canonical (a∈A, b∈B, c∈C) orientation.
func Triangles3Way(g *graph.Graph, a, b, c *graph.NodeSet) [][3]graph.NodeID {
	var out [][3]graph.NodeID
	seen := make(map[[3]graph.NodeID]struct{})
	for _, u := range a.Nodes() {
		to, _, _ := g.OutEdges(u)
		for _, v := range to {
			if !b.Contains(v) {
				continue
			}
			to2, _, _ := g.OutEdges(v)
			for _, w := range to2 {
				if !c.Contains(w) || !g.HasEdge(w, u) {
					continue
				}
				key := [3]graph.NodeID{u, v, w}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
	}
	return out
}

// SplitCliques derives a test graph for 3-clique prediction: one randomly
// chosen edge is removed from each 3-clique spanning (A, B, C) — the paper's
// construction for Yeast and YouTube (§VII-B.3). It returns T and the list
// of broken cliques.
func SplitCliques(g *graph.Graph, a, b, c *graph.NodeSet, seed int64) (*graph.Graph, [][3]graph.NodeID) {
	rng := rand.New(rand.NewSource(seed))
	tris := Triangles3Way(g, a, b, c)
	var drop [][2]graph.NodeID
	for _, tri := range tris {
		switch rng.Intn(3) {
		case 0:
			drop = append(drop, [2]graph.NodeID{tri[0], tri[1]})
		case 1:
			drop = append(drop, [2]graph.NodeID{tri[1], tri[2]})
		default:
			drop = append(drop, [2]graph.NodeID{tri[2], tri[0]})
		}
	}
	return graph.RemoveEdges(g, drop), tris
}
