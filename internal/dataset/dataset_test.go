package dataset

import (
	"testing"

	"repro/internal/graph"
)

func TestDBLPShape(t *testing.T) {
	d, err := DBLP(DBLPConfig{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sets) != 10 {
		t.Fatalf("areas = %d, want 10", len(d.Sets))
	}
	for _, name := range []string{"DB", "AI", "SYS"} {
		s, err := d.Set(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() == 0 {
			t.Fatalf("area %s empty", name)
		}
	}
	if !d.Graph.Labeled() {
		t.Fatal("DBLP nodes should carry author names")
	}
	if d.Graph.Label(0) == "" {
		t.Fatal("node 0 unlabeled")
	}
	// Undirected: arcs even; weights in 1..12.
	if d.Graph.NumEdges()%2 != 0 {
		t.Fatal("odd arc count for undirected graph")
	}
}

func TestDBLPScaleOne(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale DBLP generation in -short mode")
	}
	d, err := DBLP(DBLPConfig{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(d.Graph)
	if st.Nodes < 15000 || st.Nodes > 25000 {
		t.Fatalf("nodes = %d, want ≈20k", st.Nodes)
	}
	// Undirected edges = arcs/2; target ≈ 100k–160k.
	if e := st.Arcs / 2; e < 70000 || e > 200000 {
		t.Fatalf("edges = %d, want ≈120k", e)
	}
	if st.Sinks != 0 {
		t.Fatalf("%d sink nodes", st.Sinks)
	}
}

func TestYeastShape(t *testing.T) {
	d, err := Yeast(3)
	if err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(d.Graph)
	if st.Nodes != 2400 {
		t.Fatalf("nodes = %d, want 2400", st.Nodes)
	}
	if e := st.Arcs / 2; e < 5000 || e > 10000 {
		t.Fatalf("edges = %d, want ≈7.2k", e)
	}
	if len(d.Sets) != 13 {
		t.Fatalf("classes = %d, want 13", len(d.Sets))
	}
	u := d.MustSet("3-U")
	dd := d.MustSet("8-D")
	if u.Len() <= dd.Len() {
		t.Fatalf("3-U (%d) should be the largest class, 8-D (%d) second", u.Len(), dd.Len())
	}
	if _, err := d.Set("5-F"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Set("nope"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

func TestYouTubeShape(t *testing.T) {
	d, err := YouTube(YouTubeConfig{Scale: 0.02, Seed: 4, Groups: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Sets) != 10 {
		t.Fatalf("groups = %d", len(d.Sets))
	}
	for _, s := range d.Sets {
		if s.Len() < 10 {
			t.Fatalf("group %s too small: %d", s.Name, s.Len())
		}
	}
	if _, err := d.Set("1"); err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(d.Graph)
	if st.Components != 1 {
		t.Fatalf("YouTube graph disconnected: %d comps", st.Components)
	}
}

func TestTopByDegree(t *testing.T) {
	d, err := DBLP(DBLPConfig{Scale: 0.05, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	top, err := d.TopByDegree("DB", 20)
	if err != nil {
		t.Fatal(err)
	}
	if top.Len() != 20 {
		t.Fatalf("top = %d, want 20", top.Len())
	}
	// Members must come from DB and be sorted by weighted degree descending.
	db := d.MustSet("DB")
	wdeg := func(u graph.NodeID) float64 {
		_, w, _ := d.Graph.OutEdges(u)
		var s float64
		for _, x := range w {
			s += x
		}
		return s
	}
	prev := wdeg(top.Nodes()[0])
	for _, u := range top.Nodes() {
		if !db.Contains(u) {
			t.Fatalf("node %d not in DB", u)
		}
		if w := wdeg(u); w > prev {
			t.Fatalf("top list not degree-sorted")
		} else {
			prev = w
		}
	}
	if _, err := d.TopByDegree("nope", 5); err == nil {
		t.Fatal("unknown set accepted")
	}
	// Requesting more than the set size returns everything.
	all, err := d.TopByDegree("BIO", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != d.MustSet("BIO").Len() {
		t.Fatalf("oversized request returned %d of %d", all.Len(), d.MustSet("BIO").Len())
	}
}

func TestEdgeYearDeterministicSymmetric(t *testing.T) {
	for u := graph.NodeID(0); u < 50; u++ {
		for v := u + 1; v < 50; v += 7 {
			y1, y2 := EdgeYear(u, v), EdgeYear(v, u)
			if y1 != y2 {
				t.Fatalf("EdgeYear asymmetric for (%d,%d)", u, v)
			}
			if y1 < 1970 || y1 > 2012 {
				t.Fatalf("year %d out of range", y1)
			}
		}
	}
}

func TestSplitTemporal(t *testing.T) {
	d, err := DBLP(DBLPConfig{Scale: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	testG, removed := SplitTemporal(d.Graph, 2010)
	if len(removed) == 0 {
		t.Fatal("no edges removed")
	}
	if testG.NumEdges() >= d.Graph.NumEdges() {
		t.Fatal("test graph not smaller")
	}
	for _, e := range removed {
		if EdgeYear(e[0], e[1]) < 2010 {
			t.Fatalf("removed edge dated %d < 2010", EdgeYear(e[0], e[1]))
		}
		if testG.HasEdge(e[0], e[1]) || testG.HasEdge(e[1], e[0]) {
			t.Fatalf("removed edge (%d,%d) still in T", e[0], e[1])
		}
	}
	// Edges older than the cut must survive.
	for u := 0; u < testG.NumNodes(); u++ {
		to, _, _ := testG.OutEdges(graph.NodeID(u))
		for _, v := range to {
			if EdgeYear(graph.NodeID(u), v) >= 2010 {
				t.Fatalf("edge (%d,%d) dated %d survived the cut", u, v, EdgeYear(graph.NodeID(u), v))
			}
		}
	}
}

func TestSplitCross(t *testing.T) {
	d, err := Yeast(7)
	if err != nil {
		t.Fatal(err)
	}
	p, q := d.MustSet("3-U"), d.MustSet("8-D")
	testG, removed := SplitCross(d.Graph, p, q, 0.5, 11)
	if len(removed) == 0 {
		t.Fatal("nothing removed")
	}
	for _, e := range removed {
		if testG.HasEdge(e[0], e[1]) {
			t.Fatalf("removed edge (%d,%d) still present", e[0], e[1])
		}
		if !d.Graph.HasEdge(e[0], e[1]) {
			t.Fatalf("removed edge (%d,%d) not in true graph", e[0], e[1])
		}
		inP := p.Contains(e[0]) || p.Contains(e[1])
		inQ := q.Contains(e[0]) || q.Contains(e[1])
		if !inP || !inQ {
			t.Fatalf("removed edge (%d,%d) does not span (P,Q)", e[0], e[1])
		}
	}
	// Roughly half the cross edges removed.
	_, all := SplitCross(d.Graph, p, q, 1.0, 11)
	ratio := float64(len(removed)) / float64(len(all))
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("removed ratio = %v, want ≈0.5", ratio)
	}
}

func TestCrossEdgeCount(t *testing.T) {
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 1, 1) // within P: not counted
	b.AddEdge(4, 5, 1) // within Q: not counted
	g := b.Build()
	p := graph.NewNodeSet("P", []graph.NodeID{0, 1, 2})
	q := graph.NewNodeSet("Q", []graph.NodeID{3, 4, 5})
	if got := CrossEdgeCount(g, p, q); got != 2 {
		t.Fatalf("CrossEdgeCount = %d, want 2", got)
	}
	// Symmetric.
	if got := CrossEdgeCount(g, q, p); got != 2 {
		t.Fatalf("reverse CrossEdgeCount = %d, want 2", got)
	}
}

func TestBestLinkedPair(t *testing.T) {
	b := graph.NewBuilder(9, false)
	// Groups A={0,1,2}, B={3,4,5}, C={6,7,8}; A–B share 3 edges, A–C one.
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 4, 1)
	b.AddEdge(2, 5, 1)
	b.AddEdge(0, 6, 1)
	g := b.Build()
	d := newDataset("toy", g, []*graph.NodeSet{
		graph.NewNodeSet("A", []graph.NodeID{0, 1, 2}),
		graph.NewNodeSet("B", []graph.NodeID{3, 4, 5}),
		graph.NewNodeSet("C", []graph.NodeID{6, 7, 8}),
	})
	x, y, err := BestLinkedPair(d, []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	got := x.Name + y.Name
	if got != "AB" && got != "BA" {
		t.Fatalf("BestLinkedPair = %s,%s; want A,B", x.Name, y.Name)
	}
	if _, _, err := BestLinkedPair(d, []string{"A"}); err == nil {
		t.Fatal("single candidate accepted")
	}
	if _, _, err := BestLinkedPair(d, []string{"A", "nope"}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDBLPDualAffiliationOverlap(t *testing.T) {
	d, err := DBLP(DBLPConfig{Scale: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Some author must belong to two areas (12% dual-affiliation rate).
	member := make(map[graph.NodeID]int)
	overlap := 0
	for _, s := range d.Sets {
		for _, u := range s.Nodes() {
			member[u]++
			if member[u] == 2 {
				overlap++
			}
		}
	}
	if overlap == 0 {
		t.Fatal("no dual-affiliation authors generated")
	}
}

func TestTrianglesAndSplitCliques(t *testing.T) {
	// Hand-built graph: triangle (0,10,20) and (1,11,21); sets A={0,1},
	// B={10,11}, C={20,21}.
	b := graph.NewBuilder(30, false)
	b.AddEdge(0, 10, 1)
	b.AddEdge(10, 20, 1)
	b.AddEdge(20, 0, 1)
	b.AddEdge(1, 11, 1)
	b.AddEdge(11, 21, 1)
	b.AddEdge(21, 1, 1)
	b.AddEdge(0, 11, 1) // extra non-triangle edge
	g := b.Build()
	a := graph.NewNodeSet("A", []graph.NodeID{0, 1})
	bb := graph.NewNodeSet("B", []graph.NodeID{10, 11})
	c := graph.NewNodeSet("C", []graph.NodeID{20, 21})

	tris := Triangles3Way(g, a, bb, c)
	if len(tris) != 2 {
		t.Fatalf("triangles = %v, want 2", tris)
	}
	testG, broken := SplitCliques(g, a, bb, c, 3)
	if len(broken) != 2 {
		t.Fatalf("broken = %d", len(broken))
	}
	// Every listed clique must be broken in T but whole in G.
	for _, tri := range broken {
		whole := testG.HasEdge(tri[0], tri[1]) && testG.HasEdge(tri[1], tri[2]) && testG.HasEdge(tri[2], tri[0])
		if whole {
			t.Fatalf("clique %v still whole in T", tri)
		}
	}
}
