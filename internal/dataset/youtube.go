package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// YouTubeConfig sizes the synthetic social-sharing graph.
type YouTubeConfig struct {
	// Scale multiplies the default node count. Scale 1 yields ≈50k users /
	// ≈150k friendship edges — a scaled-down stand-in for the real 1.1M/3M
	// graph with the same preferential-attachment degree shape.
	Scale float64
	Seed  int64
	// Groups is how many interest groups to extract (default 100). Group ids
	// start at 1, matching the paper's anonymous "groups with ids 1, 5, 88".
	Groups int
}

// YouTube builds the synthetic friendship graph with overlapping interest
// groups. Groups are grown from random seed users by a short biased BFS, so
// members are socially close — the way real interest groups look — and a
// user may belong to several groups.
func YouTube(cfg YouTubeConfig) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Groups <= 0 {
		cfg.Groups = 100
	}
	n := int(50000 * cfg.Scale)
	if n < 100 {
		n = 100
	}
	g, err := graph.GeneratePreferential(n, 3, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Preferential attachment alone has vanishing clustering; friendship
	// graphs do not. Close wedges for ≈40% extra edges.
	g = graph.CloseTriads(g, g.NumEdges()/5, cfg.Seed+13)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	sets := make([]*graph.NodeSet, cfg.Groups)
	for gi := 0; gi < cfg.Groups; gi++ {
		size := 40 + rng.Intn(120)
		sets[gi] = graph.NewNodeSet(fmt.Sprintf("%d", gi+1), growGroup(g, rng, size))
	}
	return newDataset("YouTube", g, sets), nil
}

// growGroup performs a randomized BFS from a random seed, collecting up to
// size socially-near members.
func growGroup(g *graph.Graph, rng *rand.Rand, size int) []graph.NodeID {
	start := graph.NodeID(rng.Intn(g.NumNodes()))
	members := []graph.NodeID{start}
	in := map[graph.NodeID]struct{}{start: {}}
	frontier := []graph.NodeID{start}
	for len(members) < size && len(frontier) > 0 {
		u := frontier[rng.Intn(len(frontier))]
		to, _, _ := g.OutEdges(u)
		added := false
		for _, v := range to {
			if _, dup := in[v]; dup {
				continue
			}
			// Join probability decays with current size, giving groups a
			// dense core and a sparse fringe.
			if rng.Float64() < 0.6 {
				in[v] = struct{}{}
				members = append(members, v)
				frontier = append(frontier, v)
				added = true
				if len(members) >= size {
					break
				}
			}
		}
		if !added {
			// Remove a stuck frontier node; if the frontier drains, restart
			// from a fresh random member's neighborhood.
			for i, f := range frontier {
				if f == u {
					frontier = append(frontier[:i], frontier[i+1:]...)
					break
				}
			}
			if len(frontier) == 0 && len(members) < size {
				frontier = append(frontier, members[rng.Intn(len(members))])
				// Avoid livelock: also admit one random global node.
				v := graph.NodeID(rng.Intn(g.NumNodes()))
				if _, dup := in[v]; !dup {
					in[v] = struct{}{}
					members = append(members, v)
					frontier = append(frontier, v)
				}
			}
		}
	}
	return members
}
