// Package pqueue provides the priority-queue substrate used across the join
// algorithms: a bounded top-k collector (the paper's B and O buffers) and an
// indexed mutable max-heap (the incremental-join F structure of §VI-D, which
// needs key lookup, priority updates, and peeking at the two best entries).
package pqueue

import (
	"fmt"
	"math"
	"sort"
)

// checkFinite rejects NaN and ±Inf scores at the queue boundary. Both heaps
// order entries with plain float comparisons, and every comparison against
// NaN is false — a NaN admitted into a heap sits wherever it landed, never
// sifts, and silently corrupts the order invariant (the incremental join's F
// structure would then serve wrong winners without any error). Infinities
// are rejected too: no DHT score or monotone aggregate of scores is ever
// infinite, so an Inf priority is a caller bug (e.g. a division by a zero
// degree) that should surface at the insertion site, not as a mis-ranked
// result. Panicking (rather than clamping) is deliberate — see
// graph.Builder.AddEdge, which treats invalid weights the same way.
func checkFinite(where string, prio float64) {
	if math.IsNaN(prio) || math.IsInf(prio, 0) {
		panic(fmt.Sprintf("pqueue: %s called with non-finite priority %v", where, prio))
	}
}

// TopK keeps the k items with the largest scores. Equal scores are broken by
// an optional caller-supplied tie key (lower wins), then by insertion order
// (earlier wins), so results are deterministic — and, crucially for the PJ
// re-join stream, a top-m selection is always a prefix of the top-(m+1)
// selection when callers pass canonical tie keys.
type TopK[T any] struct {
	k     int
	items []scored[T]
	seq   int
}

type scored[T any] struct {
	item  T
	score float64
	tie   int64
	seq   int
}

// beats reports whether a ranks strictly ahead of b.
func (a scored[T]) beats(b scored[T]) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.seq < b.seq
}

// NewTopK returns a collector for the k best items. k must be positive.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pqueue: TopK needs k > 0")
	}
	return &TopK[T]{k: k}
}

// Len returns the current number of retained items (≤ k).
func (t *TopK[T]) Len() int { return len(t.items) }

// Reset empties the collector in place, keeping its capacity, so hot loops
// (e.g. the B-IDJ deepening rounds) can reuse one collector per round
// instead of allocating a fresh heap.
func (t *TopK[T]) Reset() {
	t.items = t.items[:0]
	t.seq = 0
}

// Full reports whether k items are retained.
func (t *TopK[T]) Full() bool { return len(t.items) == t.k }

// MinScore returns the smallest retained score, or -Inf semantics via ok=false
// when fewer than k items are held (meaning any item would still be admitted).
func (t *TopK[T]) MinScore() (float64, bool) {
	if len(t.items) < t.k {
		return 0, false
	}
	return t.items[0].score, true
}

// Threshold returns the score an item must exceed to change the result set:
// the k-th best score once full, otherwise negative infinity is conceptually
// right but we signal "not full" with ok=false.
func (t *TopK[T]) Threshold() (float64, bool) { return t.MinScore() }

// Add offers an item; it is retained only if it beats the current k-th best
// (or the collector is not yet full). Reports whether the item was retained.
// Equal scores do not displace (earlier wins).
func (t *TopK[T]) Add(item T, score float64) bool {
	return t.AddTie(item, score, 0)
}

// AddTie is Add with an explicit tie key: among equal scores, lower tie keys
// rank ahead and may displace retained items with higher tie keys. Scores
// must be finite; NaN and ±Inf panic (see checkFinite).
func (t *TopK[T]) AddTie(item T, score float64, tie int64) bool {
	checkFinite("TopK.AddTie", score)
	s := scored[T]{item: item, score: score, tie: tie, seq: t.seq}
	if len(t.items) < t.k {
		t.seq++
		t.items = append(t.items, s)
		t.up(len(t.items) - 1)
		return true
	}
	if !s.beats(t.items[0]) {
		return false
	}
	t.seq++
	t.items[0] = s
	t.down(0)
	return true
}

// Sorted returns the retained items ordered by descending score (stable by
// insertion order for ties). The collector is unchanged.
func (t *TopK[T]) Sorted() ([]T, []float64) {
	tmp := make([]scored[T], len(t.items))
	copy(tmp, t.items)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].beats(tmp[j]) })
	items := make([]T, len(tmp))
	scores := make([]float64, len(tmp))
	for i, s := range tmp {
		items[i] = s.item
		scores[i] = s.score
	}
	return items, scores
}

// The heap is a min-heap under beats: the root is the worst retained item.
func (t *TopK[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.items[p].beats(t.items[i]) {
			return
		}
		t.items[p], t.items[i] = t.items[i], t.items[p]
		i = p
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.items)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.items[worst].beats(t.items[l]) {
			worst = l
		}
		if r < n && t.items[worst].beats(t.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}

// Indexed is a max-heap of entries addressed by comparable keys. It supports
// priority updates and removal by key, plus peeking at the best and
// second-best entries — exactly what the incremental join's F structure
// requires to decide whether the top pair is already separated from the rest.
type Indexed[K comparable, V any] struct {
	keys  []K
	prio  []float64
	vals  []V
	index map[K]int
}

// NewIndexed returns an empty indexed heap.
func NewIndexed[K comparable, V any]() *Indexed[K, V] {
	return &Indexed[K, V]{index: make(map[K]int)}
}

// Len returns the number of entries.
func (h *Indexed[K, V]) Len() int { return len(h.keys) }

// Get returns the value and priority stored under key.
func (h *Indexed[K, V]) Get(key K) (V, float64, bool) {
	if i, ok := h.index[key]; ok {
		return h.vals[i], h.prio[i], true
	}
	var zero V
	return zero, 0, false
}

// Set inserts or replaces the entry under key with the given priority.
// Priorities must be finite; NaN and ±Inf panic (see checkFinite) — the
// update path compares prio against the stored priority to pick a sift
// direction, and both comparisons are false for NaN, which would leave the
// entry mis-positioned and the heap silently corrupted.
func (h *Indexed[K, V]) Set(key K, prio float64, val V) {
	checkFinite("Indexed.Set", prio)
	if i, ok := h.index[key]; ok {
		old := h.prio[i]
		h.prio[i] = prio
		h.vals[i] = val
		if prio > old {
			h.up(i)
		} else if prio < old {
			h.down(i)
		}
		return
	}
	h.keys = append(h.keys, key)
	h.prio = append(h.prio, prio)
	h.vals = append(h.vals, val)
	h.index[key] = len(h.keys) - 1
	h.up(len(h.keys) - 1)
}

// Max returns the key, priority, and value of the best entry without
// removing it.
func (h *Indexed[K, V]) Max() (K, float64, V, bool) {
	if len(h.keys) == 0 {
		var zk K
		var zv V
		return zk, 0, zv, false
	}
	return h.keys[0], h.prio[0], h.vals[0], true
}

// SecondMax returns the priority of the second-best entry. ok is false when
// fewer than two entries exist.
func (h *Indexed[K, V]) SecondMax() (float64, bool) {
	switch len(h.keys) {
	case 0, 1:
		return 0, false
	case 2:
		return h.prio[1], true
	default:
		if h.prio[1] >= h.prio[2] {
			return h.prio[1], true
		}
		return h.prio[2], true
	}
}

// PopMax removes and returns the best entry.
func (h *Indexed[K, V]) PopMax() (K, float64, V, bool) {
	k, p, v, ok := h.Max()
	if !ok {
		return k, p, v, false
	}
	h.Remove(k)
	return k, p, v, true
}

// Remove deletes the entry under key, reporting whether it existed.
func (h *Indexed[K, V]) Remove(key K) bool {
	i, ok := h.index[key]
	if !ok {
		return false
	}
	last := len(h.keys) - 1
	h.swap(i, last)
	h.keys = h.keys[:last]
	h.prio = h.prio[:last]
	h.vals = h.vals[:last]
	delete(h.index, key)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

func (h *Indexed[K, V]) swap(i, j int) {
	if i == j {
		return
	}
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.vals[i], h.vals[j] = h.vals[j], h.vals[i]
	h.index[h.keys[i]] = i
	h.index[h.keys[j]] = j
}

func (h *Indexed[K, V]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.prio[p] >= h.prio[i] {
			return
		}
		h.swap(p, i)
		i = p
	}
}

func (h *Indexed[K, V]) down(i int) {
	n := len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.prio[l] > h.prio[big] {
			big = l
		}
		if r < n && h.prio[r] > h.prio[big] {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}
