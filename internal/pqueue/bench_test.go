package pqueue

import (
	"math/rand"
	"testing"
)

func BenchmarkTopKAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	tk := NewTopK[int](50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(i, scores[i%len(scores)])
	}
}

func BenchmarkIndexedSetUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	h := NewIndexed[int, struct{}]()
	for i := 0; i < 10000; i++ {
		h.Set(i, rng.Float64(), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Set(i%10000, rng.Float64(), struct{}{})
	}
}

func BenchmarkIndexedMaxSecondMax(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h := NewIndexed[int, struct{}]()
	for i := 0; i < 10000; i++ {
		h.Set(i, rng.Float64(), struct{}{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Max()
		h.SecondMax()
	}
}
