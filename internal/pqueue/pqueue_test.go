package pqueue

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestNonFinitePrioritiesPanic: NaN defeats every float comparison both heaps
// order by, so a NaN priority would sit mis-positioned and silently corrupt
// the incremental join's F structure; the queues must reject it (and ±Inf) at
// the boundary instead.
func TestNonFinitePrioritiesPanic(t *testing.T) {
	bad := []struct {
		name string
		v    float64
	}{
		{"NaN", math.NaN()},
		{"+Inf", math.Inf(1)},
		{"-Inf", math.Inf(-1)},
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	for _, b := range bad {
		mustPanic("TopK.Add "+b.name, func() {
			tk := NewTopK[int](2)
			tk.Add(1, b.v)
		})
		mustPanic("TopK.AddTie "+b.name, func() {
			tk := NewTopK[int](2)
			tk.AddTie(1, b.v, 0)
		})
		mustPanic("Indexed.Set insert "+b.name, func() {
			h := NewIndexed[string, int]()
			h.Set("a", b.v, 0)
		})
		mustPanic("Indexed.Set update "+b.name, func() {
			h := NewIndexed[string, int]()
			h.Set("a", 1, 0)
			h.Set("a", b.v, 0)
		})
	}
	// Finite values, including zero and negatives, stay accepted.
	tk := NewTopK[int](2)
	tk.Add(1, -1e300)
	tk.Add(2, 0)
	h := NewIndexed[string, int]()
	h.Set("a", -1e300, 0)
	h.Set("a", 0, 0)
	if h.Len() != 1 || tk.Len() != 2 {
		t.Fatal("finite priorities were rejected")
	}
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK[string](3)
	tk.Add("a", 1)
	tk.Add("b", 5)
	tk.Add("c", 3)
	tk.Add("d", 4) // evicts a
	tk.Add("e", 0) // rejected
	items, scores := tk.Sorted()
	if len(items) != 3 || items[0] != "b" || items[1] != "d" || items[2] != "c" {
		t.Fatalf("Sorted = %v %v", items, scores)
	}
	if scores[0] != 5 || scores[2] != 3 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestTopKMinScore(t *testing.T) {
	tk := NewTopK[int](2)
	if _, full := tk.MinScore(); full {
		t.Fatal("empty reports full")
	}
	tk.Add(1, 10)
	if _, full := tk.MinScore(); full {
		t.Fatal("half-full reports full")
	}
	tk.Add(2, 20)
	if min, full := tk.MinScore(); !full || min != 10 {
		t.Fatalf("MinScore = %v,%v", min, full)
	}
}

func TestTopKTieKeepsEarlier(t *testing.T) {
	tk := NewTopK[string](1)
	tk.Add("first", 7)
	if tk.Add("second", 7) {
		t.Fatal("equal score displaced earlier item")
	}
	items, _ := tk.Sorted()
	if items[0] != "first" {
		t.Fatalf("got %v", items)
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 accepted")
		}
	}()
	NewTopK[int](0)
}

// Property: TopK(k) over any input equals sort-descending-take-k by scores.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(rawK)%10
		n := 30
		scores := make([]float64, n)
		tk := NewTopK[int](k)
		for i := 0; i < n; i++ {
			scores[i] = rng.NormFloat64()
			tk.Add(i, scores[i])
		}
		want := append([]float64(nil), scores...)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		if k > n {
			k = n
		}
		_, got := tk.Sorted()
		if len(got) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKPrefixProperty checks the invariant PJ's re-join stream depends
// on: with distinct tie keys, the top-m selection is always a prefix of the
// top-(m+1) selection over the same input — even with heavy score ties.
func TestTopKPrefixProperty(t *testing.T) {
	f := func(seed int64, rawM uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40
		type item struct {
			score float64
			tie   int64
		}
		items := make([]item, n)
		for i := range items {
			// Coarse scores force ties; distinct tie keys break them.
			items[i] = item{score: float64(rng.Intn(5)), tie: int64(i)}
		}
		m := 1 + int(rawM)%(n-1)
		run := func(k int) []int64 {
			tk := NewTopK[int64](k)
			for _, it := range items {
				tk.AddTie(it.tie, it.score, it.tie)
			}
			ids, _ := tk.Sorted()
			return ids
		}
		small, big := run(m), run(m+1)
		for i := range small {
			if small[i] != big[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAddTieDisplacesHigherTie(t *testing.T) {
	tk := NewTopK[string](1)
	tk.AddTie("late-key", 5, 10)
	if !tk.AddTie("early-key", 5, 2) {
		t.Fatal("lower tie key failed to displace equal score")
	}
	items, _ := tk.Sorted()
	if items[0] != "early-key" {
		t.Fatalf("got %v", items)
	}
	// But a higher tie key must not displace.
	if tk.AddTie("later-key", 5, 7) {
		t.Fatal("higher tie key displaced")
	}
}

func TestIndexedBasic(t *testing.T) {
	h := NewIndexed[string, int]()
	h.Set("a", 3, 30)
	h.Set("b", 5, 50)
	h.Set("c", 1, 10)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	k, p, v, ok := h.Max()
	if !ok || k != "b" || p != 5 || v != 50 {
		t.Fatalf("Max = %v %v %v %v", k, p, v, ok)
	}
	if s, ok := h.SecondMax(); !ok || s != 3 {
		t.Fatalf("SecondMax = %v %v", s, ok)
	}
	if v, p, ok := h.Get("c"); !ok || v != 10 || p != 1 {
		t.Fatalf("Get(c) = %v %v %v", v, p, ok)
	}
}

func TestIndexedUpdate(t *testing.T) {
	h := NewIndexed[string, int]()
	h.Set("a", 1, 0)
	h.Set("b", 2, 0)
	h.Set("a", 10, 1) // raise a above b
	if k, _, v, _ := h.Max(); k != "a" || v != 1 {
		t.Fatalf("Max after raise = %v %v", k, v)
	}
	h.Set("a", 0, 2) // lower below b
	if k, _, _, _ := h.Max(); k != "b" {
		t.Fatalf("Max after lower = %v", k)
	}
	if h.Len() != 2 {
		t.Fatalf("Len changed on update: %d", h.Len())
	}
}

func TestIndexedRemove(t *testing.T) {
	h := NewIndexed[int, struct{}]()
	for i := 0; i < 10; i++ {
		h.Set(i, float64(i), struct{}{})
	}
	if !h.Remove(9) || h.Remove(9) {
		t.Fatal("Remove semantics wrong")
	}
	if k, _, _, _ := h.Max(); k != 8 {
		t.Fatalf("Max after remove = %v", k)
	}
	if h.Len() != 9 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestIndexedPopMaxDrains(t *testing.T) {
	h := NewIndexed[int, struct{}]()
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = rng.Float64()
		h.Set(i, vals[i], struct{}{})
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for i := 0; i < len(vals); i++ {
		_, p, _, ok := h.PopMax()
		if !ok || p != vals[i] {
			t.Fatalf("pop %d = %v, want %v", i, p, vals[i])
		}
	}
	if _, _, _, ok := h.PopMax(); ok {
		t.Fatal("pop from empty succeeded")
	}
	if _, ok := h.SecondMax(); ok {
		t.Fatal("SecondMax on empty succeeded")
	}
}

// Property: SecondMax equals the second-largest priority under random
// inserts, updates, and removes.
func TestIndexedSecondMaxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewIndexed[int, struct{}]()
		ref := make(map[int]float64)
		for op := 0; op < 200; op++ {
			key := rng.Intn(20)
			switch rng.Intn(3) {
			case 0, 1:
				p := rng.Float64()
				h.Set(key, p, struct{}{})
				ref[key] = p
			case 2:
				h.Remove(key)
				delete(ref, key)
			}
			// Check invariants.
			if h.Len() != len(ref) {
				return false
			}
			if len(ref) == 0 {
				continue
			}
			var ps []float64
			for _, p := range ref {
				ps = append(ps, p)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(ps)))
			if _, p, _, _ := h.Max(); p != ps[0] {
				return false
			}
			if len(ps) >= 2 {
				if s, ok := h.SecondMax(); !ok || s != ps[1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
