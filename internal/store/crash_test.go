package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/graph"
)

// The crash matrix: a scripted op sequence runs against the real store over
// a fault-injecting, crashable in-memory filesystem. At the first fault the
// filesystem "loses power" and the store is reopened over the surviving
// bytes. The property checked is committed-prefix consistency: every graph
// recovers to either its last acknowledged state or (only for the op that
// was in flight) the pending state — never a mix, never anything else.

// gmodel is one graph's expected durable state.
type gmodel struct {
	g    *graph.Graph
	sets []*graph.NodeSet
}

// action is one scripted store operation together with its post state.
type action struct {
	kind string // "put", "append", "delete"
	name string
	adds []graph.Edge
	dels [][2]graph.NodeID
	g    *graph.Graph
	sets []*graph.NodeSet
}

// crashScript builds a deterministic op sequence covering puts, appends
// (including threshold folds at SnapshotEvery=2), replacement puts, and
// deletes across two graphs.
func crashScript(t testing.TB) []action {
	t.Helper()
	ga, setsA := testGraph(t)
	bb := graph.NewBuilder(4, true)
	bb.AddEdge(0, 1, 1)
	bb.AddEdge(1, 2, 2)
	bb.AddEdge(2, 3, 1)
	gb := bb.Build()
	setsB := []*graph.NodeSet{graph.NewNodeSet("S", []graph.NodeID{0, 1})}

	var script []action
	put := func(name string, g *graph.Graph, sets []*graph.NodeSet) *graph.Graph {
		script = append(script, action{kind: "put", name: name, g: g, sets: sets})
		return g
	}
	appendTo := func(name string, g *graph.Graph, sets []*graph.NodeSet, adds []graph.Edge, dels [][2]graph.NodeID) *graph.Graph {
		next, err := graph.ApplyEdits(g, adds, dels)
		if err != nil {
			t.Fatal(err)
		}
		script = append(script, action{kind: "append", name: name, adds: adds, dels: dels, g: next, sets: sets})
		return next
	}

	a := put("alpha", ga, setsA)
	a = appendTo("alpha", a, setsA, []graph.Edge{{U: 0, V: 4, W: 2}}, nil)
	a = appendTo("alpha", a, setsA, []graph.Edge{{U: 4, V: 1, W: 1}}, nil) // fold (every=2)
	b := put("beta", gb, setsB)
	a = appendTo("alpha", a, setsA, nil, [][2]graph.NodeID{{0, 1}})
	_ = appendTo("beta", b, setsB, []graph.Edge{{U: 3, V: 0, W: 1}}, nil)
	script = append(script, action{kind: "delete", name: "beta"})
	a = appendTo("alpha", a, setsA, []graph.Edge{{U: 5, V: 3, W: 0.5}}, nil) // fold
	ga2, err := graph.ApplyEdits(ga, []graph.Edge{{U: 2, V: 5, W: 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a = put("alpha", ga2, setsA)
	_ = appendTo("alpha", a, setsA, []graph.Edge{{U: 1, V: 3, W: 1}}, nil)
	return script
}

// exec runs one action against the store.
func exec(s *Store, a action) error {
	switch a.kind {
	case "put":
		_, err := s.Put(a.name, a.g, a.sets)
		return err
	case "append":
		_, _, err := s.AppendEdits(a.name, a.adds, a.dels, a.g, a.sets)
		return err
	default:
		return s.Delete(a.name)
	}
}

// apply folds one action into the model.
func apply(m map[string]gmodel, a action) {
	if a.kind == "delete" {
		delete(m, a.name)
		return
	}
	m[a.name] = gmodel{g: a.g, sets: a.sets}
}

func cloneModel(m map[string]gmodel) map[string]gmodel {
	out := make(map[string]gmodel, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func TestCrashMatrix(t *testing.T) {
	sites := []fault.Site{fault.FSWrite, fault.FSSync, fault.FSSyncDir,
		fault.FSRename, fault.FSRenamed, fault.FSRemove}
	for _, site := range sites {
		for _, every := range []int{1, 2, 3, 5} {
			for _, keep := range []int{0, 5} {
				name := fmt.Sprintf("%s/every=%d/keep=%d", site, every, keep)
				t.Run(name, func(t *testing.T) {
					runCrashCell(t, site, every, keep)
				})
			}
		}
	}
}

func runCrashCell(t *testing.T, site fault.Site, every, keep int) {
	script := crashScript(t)
	mfs := fault.NewMemFS()
	inj := fault.New(int64(every)*1000 + int64(keep))
	inj.Add(site, fault.Rule{Every: every, Err: errors.New("boom")})

	s, _, err := Open(Config{Dir: "/data", FS: fault.Faulty{Inner: mfs, Inj: inj}, SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	committed := map[string]gmodel{}
	var pending map[string]gmodel // committed + the op in flight at the crash
	crashed := false
	for _, a := range script {
		firedBefore := inj.Fired(site)
		err := exec(s, a)
		if err != nil {
			// The op failed mid-flight: its effects may or may not have
			// reached the platter. Both outcomes are acceptable after crash.
			pending = cloneModel(committed)
			apply(pending, a)
			crashed = true
		} else {
			apply(committed, a)
			if inj.Fired(site) > firedBefore {
				// The store absorbed a fault (e.g. a failed threshold fold)
				// and still acknowledged the op: after a crash right here the
				// acknowledged state alone must be recoverable.
				crashed = true
			}
		}
		if crashed {
			break
		}
	}
	if !crashed {
		s.Close()
	}
	mfs.Crash(keep)

	// Reopen over the post-crash filesystem, fault-free.
	s2, recs, err := Open(Config{Dir: "/data", FS: mfs, SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	got := make(map[string]Recovered, len(recs))
	for _, rec := range recs {
		got[rec.Name] = rec
	}

	names := map[string]bool{}
	for n := range committed {
		names[n] = true
	}
	for n := range pending {
		names[n] = true
	}
	for _, a := range script {
		names[a.name] = true // deleted graphs must assert absence too
	}
	for name := range names {
		rec, present := got[name]
		okCommitted := stateMatches(committed, name, rec, present)
		okPending := pending != nil && stateMatches(pending, name, rec, present)
		if !okCommitted && !okPending {
			t.Errorf("graph %q: recovered state (present=%v) matches neither the committed prefix nor the pending op", name, present)
		}
	}

	// Whatever survived must remain fully operational: append an edit to each
	// recovered graph and read it back.
	for _, rec := range recs {
		adds := []graph.Edge{{U: 0, V: 2, W: 3}}
		next, err := graph.ApplyEdits(rec.Graph, adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s2.AppendEdits(rec.Name, adds, nil, next, rec.Sets); err != nil {
			t.Errorf("graph %q: append after recovery: %v", rec.Name, err)
			continue
		}
		lg, _, _, err := s2.Load(rec.Name)
		if err != nil || !graphEqual(next, lg) {
			t.Errorf("graph %q: load after post-recovery append: err=%v", rec.Name, err)
		}
	}
	s2.Close()
}

// stateMatches reports whether a recovery outcome for name agrees with a
// model: absent graphs must be absent, present graphs must be bit-identical
// with identical sets.
func stateMatches(m map[string]gmodel, name string, rec Recovered, present bool) bool {
	want, ok := m[name]
	if !ok {
		return !present
	}
	return present && graphEqual(want.g, rec.Graph) && setsEqual(want.sets, rec.Sets)
}

// TestCrashAfterEveryOp crashes (strictly, losing all unsynced state) after
// each successful op with no injected faults at all: every acknowledged
// prefix must be exactly recoverable.
func TestCrashAfterEveryOp(t *testing.T) {
	script := crashScript(t)
	for cut := 1; cut <= len(script); cut++ {
		mfs := fault.NewMemFS()
		s, _, err := Open(Config{Dir: "/data", FS: mfs, SnapshotEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		committed := map[string]gmodel{}
		for _, a := range script[:cut] {
			if err := exec(s, a); err != nil {
				t.Fatalf("cut %d: op on %q failed: %v", cut, a.name, err)
			}
			apply(committed, a)
		}
		mfs.Crash(0)
		_, recs, err := Open(Config{Dir: "/data", FS: mfs, SnapshotEvery: 2})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		got := make(map[string]Recovered, len(recs))
		for _, rec := range recs {
			got[rec.Name] = rec
		}
		for _, a := range script {
			rec, present := got[a.name]
			if !stateMatches(committed, a.name, rec, present) {
				t.Errorf("cut %d: graph %q: recovered state (present=%v) is not the acknowledged state", cut, a.name, present)
			}
		}
	}
}
