// Package store is the crash-safe persistence layer under the serving
// registry (internal/service): each named graph is durably represented by a
// checksummed snapshot segment (the full CSR, node sets, labels, and cached
// stats at one generation) plus an append-only edge WAL of the edits applied
// since that snapshot. Segments are written crash-atomically (temp file →
// fsync → rename → directory fsync) and every byte that matters is covered
// by a CRC32-C, so startup recovery can distinguish "torn tail, truncate and
// continue" from "corrupt segment, fall back a generation" — kill -9 at any
// instant loses at most the single operation that was never acknowledged.
//
// All I/O goes through fault.FS, so the crash-matrix tests drive the exact
// production code paths over an injected, crashable filesystem.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// Segment format v1. A segment file is:
//
//	offset size
//	0      4    magic "NJSG"
//	4      2    format version (little-endian; this file documents v1)
//	6      2    flags (0 in v1)
//	8      8    payload length in bytes
//	16     4    CRC32-C of the payload
//	20     4    CRC32-C of header bytes [0,20)
//	24     …    payload
//
// The header checksum makes "unreadable header" and "header from the future"
// distinguishable: a mismatched header CRC or bad magic is corruption, while
// a valid header with version > 1 is an incompatible-but-intact segment
// (ErrIncompatibleSegment — upgrade the binary, don't scrub the file).
//
// The v1 payload, all little-endian, fixed-width arrays:
//
//	u32 len + bytes   graph name (source of truth; filenames are addressing)
//	u64               generation
//	u64 n             node count
//	u64 m             arc count
//	(n+1) × i64       outIndex
//	m × i32           outTo
//	m × f64           outW
//	u8                hasLabels; if 1: n × (u32 len + bytes)
//	u32 nsets         node sets: per set u32 len + name, u32 count, count × i32
//	u8                hasStats; if 1: the cached graph.Stats (12 fixed fields)
const (
	segMagic     = "NJSG"
	segVersion   = 1
	segHeaderLen = 24

	walMagic     = "NJWL"
	walVersion   = 1
	walHeaderLen = 20
)

var (
	// ErrIncompatibleSegment reports a structurally intact file this build
	// cannot read: wrong magic, truncated header, or a future format version.
	// It is deliberately distinct from corruption — recovery must not treat a
	// file written by a newer build as garbage to fall back over.
	ErrIncompatibleSegment = errors.New("store: incompatible segment")

	// ErrCorruptSegment reports checksum or structure violations in a
	// version-compatible file; recovery falls back to the previous
	// generation when it sees this.
	ErrCorruptSegment = errors.New("store: corrupt segment")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentData is the decoded form of one snapshot.
type segmentData struct {
	name string
	gen  uint64
	g    *graph.Graph
	sets []*graph.NodeSet
}

// appendSegmentHeader appends the 24-byte v1 header for a payload.
func appendSegmentHeader(dst, payload []byte) []byte {
	var h [segHeaderLen]byte
	copy(h[0:4], segMagic)
	binary.LittleEndian.PutUint16(h[4:6], segVersion)
	binary.LittleEndian.PutUint16(h[6:8], 0)
	binary.LittleEndian.PutUint64(h[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(h[16:20], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(h[20:24], crc32.Checksum(h[:20], castagnoli))
	return append(dst, h[:]...)
}

// parseSegmentHeader validates a header and returns the payload length and
// expected payload CRC.
func parseSegmentHeader(h []byte) (payloadLen uint64, payloadCRC uint32, err error) {
	if len(h) < segHeaderLen {
		return 0, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrIncompatibleSegment, len(h))
	}
	if binary.LittleEndian.Uint32(h[20:24]) != crc32.Checksum(h[:20], castagnoli) {
		return 0, 0, fmt.Errorf("%w: header checksum mismatch", ErrCorruptSegment)
	}
	if string(h[0:4]) != segMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrIncompatibleSegment, h[0:4])
	}
	if v := binary.LittleEndian.Uint16(h[4:6]); v != segVersion {
		return 0, 0, fmt.Errorf("%w: segment version %d, this build reads v%d", ErrIncompatibleSegment, v, segVersion)
	}
	return binary.LittleEndian.Uint64(h[8:16]), binary.LittleEndian.Uint32(h[16:20]), nil
}

// encodeSegment serializes one graph snapshot (header + payload).
func encodeSegment(name string, gen uint64, g *graph.Graph, sets []*graph.NodeSet) []byte {
	outIndex, outTo, outW := g.CSR()
	n, m := g.NumNodes(), g.NumEdges()
	labels := g.RawLabels()

	size := 4 + len(name) + 8 + 8 + 8 + 8*(n+1) + 4*m + 8*m + 1 + 4 + 1 + statsLen
	if labels != nil {
		for _, l := range labels {
			size += 4 + len(l)
		}
	}
	for _, s := range sets {
		size += 4 + len(s.Name) + 4 + 4*s.Len()
	}
	p := make([]byte, 0, size)

	p = appendString(p, name)
	p = binary.LittleEndian.AppendUint64(p, gen)
	p = binary.LittleEndian.AppendUint64(p, uint64(n))
	p = binary.LittleEndian.AppendUint64(p, uint64(m))
	for _, v := range outIndex {
		p = binary.LittleEndian.AppendUint64(p, uint64(v))
	}
	for _, v := range outTo {
		p = binary.LittleEndian.AppendUint32(p, uint32(v))
	}
	for _, v := range outW {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(v))
	}
	if labels == nil {
		p = append(p, 0)
	} else {
		p = append(p, 1)
		for _, l := range labels {
			p = appendString(p, l)
		}
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(sets)))
	for _, s := range sets {
		p = appendString(p, s.Name)
		ids := s.Nodes()
		p = binary.LittleEndian.AppendUint32(p, uint32(len(ids)))
		for _, id := range ids {
			p = binary.LittleEndian.AppendUint32(p, uint32(id))
		}
	}
	p = append(p, 1)
	p = appendStats(p, g.Stats())

	return append(appendSegmentHeader(make([]byte, 0, segHeaderLen+len(p)), p), p...)
}

// decodeSegment parses a full segment file (header + payload), validating
// both checksums and reconstructing the graph sort-free via NewFromCSR.
func decodeSegment(b []byte) (*segmentData, error) {
	payloadLen, payloadCRC, err := parseSegmentHeader(b)
	if err != nil {
		return nil, err
	}
	body := b[segHeaderLen:]
	if uint64(len(body)) != payloadLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorruptSegment, len(body), payloadLen)
	}
	if crc32.Checksum(body, castagnoli) != payloadCRC {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptSegment)
	}
	d := &decoder{b: body}
	sd := &segmentData{}
	sd.name = d.str()
	sd.gen = d.u64()
	n := d.u64()
	m := d.u64()
	if d.err == nil && (n > 1<<31 || m > 1<<33 || int64(m) > int64(len(body))/4) {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrCorruptSegment, n, m)
	}
	outIndex := make([]int64, 0, n+1)
	for i := uint64(0); i <= n && d.err == nil; i++ {
		outIndex = append(outIndex, int64(d.u64()))
	}
	outTo := make([]graph.NodeID, 0, m)
	for i := uint64(0); i < m && d.err == nil; i++ {
		outTo = append(outTo, graph.NodeID(d.u32()))
	}
	outW := make([]float64, 0, m)
	for i := uint64(0); i < m && d.err == nil; i++ {
		outW = append(outW, math.Float64frombits(d.u64()))
	}
	var labels []string
	if d.u8() == 1 {
		labels = make([]string, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			labels = append(labels, d.str())
		}
	}
	nsets := d.u32()
	if d.err == nil && uint64(nsets) > n+1 {
		return nil, fmt.Errorf("%w: implausible set count %d", ErrCorruptSegment, nsets)
	}
	for i := uint32(0); i < nsets && d.err == nil; i++ {
		setName := d.str()
		count := d.u32()
		ids := make([]graph.NodeID, 0, count)
		for j := uint32(0); j < count && d.err == nil; j++ {
			ids = append(ids, graph.NodeID(d.u32()))
		}
		sd.sets = append(sd.sets, graph.NewNodeSet(setName, ids))
	}
	var stats graph.Stats
	hasStats := d.u8() == 1
	if hasStats {
		stats = d.stats()
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSegment, d.err)
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorruptSegment, len(body)-d.off)
	}
	g, err := graph.NewFromCSR(int(n), outIndex, outTo, outW, labels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSegment, err)
	}
	if hasStats {
		g.PrimeStats(stats)
	}
	for _, s := range sd.sets {
		if err := s.Validate(g); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptSegment, err)
		}
	}
	sd.g = g
	return sd, nil
}

// statsLen is the fixed encoded size of graph.Stats (12 × 8 bytes).
const statsLen = 12 * 8

func appendStats(p []byte, s graph.Stats) []byte {
	for _, v := range []int64{int64(s.Nodes), int64(s.Arcs), int64(s.MinOutDeg), int64(s.MaxOutDeg)} {
		p = binary.LittleEndian.AppendUint64(p, uint64(v))
	}
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(s.MeanOutDeg))
	for _, v := range []int64{int64(s.MedianOutDeg), int64(s.Sinks), int64(s.Sources), int64(s.SelfLoops)} {
		p = binary.LittleEndian.AppendUint64(p, uint64(v))
	}
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(s.MeanWeight))
	for _, v := range []int64{int64(s.Components), int64(s.LargestComp)} {
		p = binary.LittleEndian.AppendUint64(p, uint64(v))
	}
	return p
}

func appendString(p []byte, s string) []byte {
	p = binary.LittleEndian.AppendUint32(p, uint32(len(s)))
	return append(p, s...)
}

// decoder is a bounds-checked little-endian reader; the first violation
// sticks in err and every later read returns zero.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err == nil && int(n) > len(d.b)-d.off {
		d.err = io.ErrUnexpectedEOF
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) stats() graph.Stats {
	var s graph.Stats
	s.Nodes = int(int64(d.u64()))
	s.Arcs = int(int64(d.u64()))
	s.MinOutDeg = int(int64(d.u64()))
	s.MaxOutDeg = int(int64(d.u64()))
	s.MeanOutDeg = math.Float64frombits(d.u64())
	s.MedianOutDeg = int(int64(d.u64()))
	s.Sinks = int(int64(d.u64()))
	s.Sources = int(int64(d.u64()))
	s.SelfLoops = int(int64(d.u64()))
	s.MeanWeight = math.Float64frombits(d.u64())
	s.Components = int(int64(d.u64()))
	s.LargestComp = int(int64(d.u64()))
	return s
}
