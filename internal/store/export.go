package store

import "repro/internal/graph"

// Shard shipping (cluster mode) reuses the snapshot segment format as its
// wire representation: a graph placed on a remote peer travels as the exact
// checksummed bytes a local snapshot would hold, so the receiver gets the
// same double-checksummed torn/corrupt detection a restart gets, and a
// received segment can be handed to a node's own durable store unchanged.

// Segment describes one decoded segment image.
type Segment struct {
	Name  string
	Gen   uint64
	Graph *graph.Graph
	Sets  []*graph.NodeSet
}

// EncodeSegment serializes a graph (plus node sets) into the store's
// checksummed segment format at the given generation — the byte-exact image
// writeSegment persists. Cluster placement ships these bytes to shard
// owners.
func EncodeSegment(name string, gen uint64, g *graph.Graph, sets []*graph.NodeSet) []byte {
	return encodeSegment(name, gen, g, sets)
}

// DecodeSegment validates and decodes a segment image produced by
// EncodeSegment (or read from a store's .seg file). Corruption anywhere —
// header, payload checksum, structure — returns ErrCorruptSegment;
// future-version segments return ErrIncompatibleSegment.
func DecodeSegment(b []byte) (*Segment, error) {
	sd, err := decodeSegment(b)
	if err != nil {
		return nil, err
	}
	return &Segment{Name: sd.name, Gen: sd.gen, Graph: sd.g, Sets: sd.sets}, nil
}
