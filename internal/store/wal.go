package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// WAL format v1. A per-graph WAL file is a 20-byte header followed by
// length-prefixed, checksummed records:
//
//	header: magic "NJWL" (4) · version u16 · flags u16 · baseGen u64 · CRC32-C of bytes [0,16) (4)
//	record: bodyLen u32 · CRC32-C(body) u32 · body
//
// baseGen names the snapshot generation the records apply over; a WAL whose
// baseGen does not match the recovered snapshot (e.g. the snapshot it
// belonged to was just written but the WAL reset didn't land before a crash)
// is discarded whole — its edits are either already folded into the snapshot
// or belong to a generation that no longer exists.
//
// A v1 record body is one atomic edit batch:
//
//	u8 op (1 = edits)
//	u32 nAdds · nAdds × (u32 u · u32 v · f64 w)
//	u32 nDels · nDels × (u32 u · u32 v)
//
// The CRC covers the whole body, so an edit batch replays all-or-nothing:
// recovery can never surface half of one request's edits.
const (
	walOpEdits = 1

	// maxWALRecord bounds one record body; larger length prefixes are treated
	// as corruption (a torn length field would otherwise ask recovery to
	// allocate garbage gigabytes).
	maxWALRecord = 64 << 20
)

// encodeWALHeader builds the 20-byte WAL header for a base generation.
func encodeWALHeader(baseGen uint64) []byte {
	h := make([]byte, walHeaderLen)
	copy(h[0:4], walMagic)
	binary.LittleEndian.PutUint16(h[4:6], walVersion)
	binary.LittleEndian.PutUint16(h[6:8], 0)
	binary.LittleEndian.PutUint64(h[8:16], baseGen)
	binary.LittleEndian.PutUint32(h[16:20], crc32.Checksum(h[:16], castagnoli))
	return h
}

// parseWALHeader validates a WAL header and returns its base generation.
func parseWALHeader(h []byte) (baseGen uint64, err error) {
	if len(h) < walHeaderLen {
		return 0, fmt.Errorf("%w: truncated wal header (%d bytes)", ErrCorruptSegment, len(h))
	}
	if binary.LittleEndian.Uint32(h[16:20]) != crc32.Checksum(h[:16], castagnoli) {
		return 0, fmt.Errorf("%w: wal header checksum mismatch", ErrCorruptSegment)
	}
	if string(h[0:4]) != walMagic {
		return 0, fmt.Errorf("%w: bad wal magic %q", ErrIncompatibleSegment, h[0:4])
	}
	if v := binary.LittleEndian.Uint16(h[4:6]); v != walVersion {
		return 0, fmt.Errorf("%w: wal version %d, this build reads v%d", ErrIncompatibleSegment, v, walVersion)
	}
	return binary.LittleEndian.Uint64(h[8:16]), nil
}

// encodeWALRecord frames one edit batch as a length-prefixed checksummed
// record.
func encodeWALRecord(adds []graph.Edge, dels [][2]graph.NodeID) []byte {
	body := make([]byte, 0, 1+4+16*len(adds)+4+8*len(dels))
	body = append(body, walOpEdits)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(adds)))
	for _, e := range adds {
		body = binary.LittleEndian.AppendUint32(body, uint32(e.U))
		body = binary.LittleEndian.AppendUint32(body, uint32(e.V))
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(e.W))
	}
	body = binary.LittleEndian.AppendUint32(body, uint32(len(dels)))
	for _, d := range dels {
		body = binary.LittleEndian.AppendUint32(body, uint32(d[0]))
		body = binary.LittleEndian.AppendUint32(body, uint32(d[1]))
	}
	rec := make([]byte, 0, 8+len(body))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(body)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(body, castagnoli))
	return append(rec, body...)
}

// walRecord is one decoded edit batch.
type walRecord struct {
	adds []graph.Edge
	dels [][2]graph.NodeID
}

// decodeWALBody parses a checksum-verified record body.
func decodeWALBody(body []byte) (walRecord, error) {
	var r walRecord
	d := &decoder{b: body}
	if op := d.u8(); d.err == nil && op != walOpEdits {
		return r, fmt.Errorf("unknown wal op %d", op)
	}
	nAdds := d.u32()
	if d.err == nil && int(nAdds) > len(body)/16+1 {
		return r, fmt.Errorf("implausible add count %d", nAdds)
	}
	for i := uint32(0); i < nAdds && d.err == nil; i++ {
		u := graph.NodeID(d.u32())
		v := graph.NodeID(d.u32())
		w := math.Float64frombits(d.u64())
		r.adds = append(r.adds, graph.Edge{U: u, V: v, W: w})
	}
	nDels := d.u32()
	if d.err == nil && int(nDels) > len(body)/8+1 {
		return r, fmt.Errorf("implausible del count %d", nDels)
	}
	for i := uint32(0); i < nDels && d.err == nil; i++ {
		u := graph.NodeID(d.u32())
		v := graph.NodeID(d.u32())
		r.dels = append(r.dels, [2]graph.NodeID{u, v})
	}
	if d.err != nil {
		return r, d.err
	}
	if d.off != len(body) {
		return r, fmt.Errorf("%d trailing bytes in wal record", len(body)-d.off)
	}
	return r, nil
}

// scanWAL reads a whole WAL image: header, then records until the first
// invalid one. It returns the decoded records, the byte offset of the end of
// the last valid record (the truncation point), and whether a torn or
// corrupt tail was found past it. A header failure returns an error — the
// whole file is unusable, not merely torn.
func scanWAL(b []byte) (baseGen uint64, recs []walRecord, validLen int64, torn bool, err error) {
	baseGen, err = parseWALHeader(b)
	if err != nil {
		return 0, nil, 0, false, err
	}
	off := int64(walHeaderLen)
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return baseGen, recs, off, false, nil
		}
		if len(rest) < 8 {
			return baseGen, recs, off, true, nil
		}
		bodyLen := binary.LittleEndian.Uint32(rest[0:4])
		bodyCRC := binary.LittleEndian.Uint32(rest[4:8])
		if bodyLen > maxWALRecord || int64(len(rest)) < 8+int64(bodyLen) {
			return baseGen, recs, off, true, nil
		}
		body := rest[8 : 8+bodyLen]
		if crc32.Checksum(body, castagnoli) != bodyCRC {
			return baseGen, recs, off, true, nil
		}
		rec, derr := decodeWALBody(body)
		if derr != nil {
			return baseGen, recs, off, true, nil
		}
		recs = append(recs, rec)
		off += 8 + int64(bodyLen)
	}
}

// readAll drains a fault.File.
func readAll(f io.Reader) ([]byte, error) {
	return io.ReadAll(f)
}
