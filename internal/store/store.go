package store

import (
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fault"
	"repro/internal/graph"
)

// Config sizes a Store. The zero value (plus a Dir) selects the defaults.
type Config struct {
	// Dir is the data directory; it is created if missing.
	Dir string

	// FS is the filesystem implementation; nil selects the real one
	// (fault.OS). Tests inject fault.Faulty / fault.MemFS here.
	FS fault.FS

	// SnapshotEvery folds the WAL into a fresh snapshot segment once a
	// graph's WAL holds this many records. 0 selects 64; negative disables
	// the record threshold.
	SnapshotEvery int

	// SnapshotBytes folds once a graph's WAL exceeds this many bytes.
	// 0 selects 4 MiB; negative disables the byte threshold.
	SnapshotBytes int64
}

// Counters is a snapshot of the store's persistence counters; the service
// surfaces them in /stats. All fields are monotone over the store's lifetime.
type Counters struct {
	WALAppends        int64 `json:"wal_appends"`        // edit batches durably appended
	WALReplayed       int64 `json:"wal_replayed"`       // records replayed during recovery
	WALTruncations    int64 `json:"wal_truncations"`    // torn/corrupt WAL tails cut at recovery
	WALDiscards       int64 `json:"wal_discards"`       // whole WALs dropped (base-generation mismatch or bad header)
	Snapshots         int64 `json:"snapshots"`          // threshold-triggered WAL folds
	SnapshotFailures  int64 `json:"snapshot_failures"`  // failed folds (WAL keeps growing; retried next append)
	SnapshotFallbacks int64 `json:"snapshot_fallbacks"` // corrupt segments skipped for an older generation
	GraphsRecovered   int64 `json:"graphs_recovered"`   // graphs restored by the last Open
	Orphans           int64 `json:"orphans"`            // unusable leftovers swept at recovery (WALs without any snapshot)
}

// Recovered describes one graph restored by Open.
type Recovered struct {
	Name     string
	Graph    *graph.Graph
	Sets     []*graph.NodeSet
	Gen      uint64
	Replayed int  // WAL records replayed over the snapshot
	TornTail bool // the WAL had a torn/corrupt tail that was truncated
	Fallback bool // the newest snapshot was corrupt; an older generation serves
}

// gstate is the store's in-memory bookkeeping for one graph.
type gstate struct {
	name  string
	key   string // filesystem-safe encoding of name
	gen   uint64 // current generation = baseGen + durable WAL records
	base  uint64 // generation of the newest valid snapshot
	wal   fault.File
	nrec  int   // records in the current WAL
	nbyte int64 // bytes in the current WAL (header included)
	nodes int
	edges int
	sets  []string
}

// Store is the persistent graph store. All methods are safe for concurrent
// use; operations on one store are serialized (graph mutations are rare and
// small next to the joins they invalidate).
type Store struct {
	dir       string
	fsys      fault.FS
	snapEvery int
	snapBytes int64

	mu     sync.Mutex
	graphs map[string]*gstate
	ctr    Counters
}

// Open opens (creating if needed) the store rooted at cfg.Dir and runs crash
// recovery: every snapshot segment is checksum-validated (falling back a
// generation when the newest is corrupt), every WAL is truncated to its last
// valid record and replayed, and the surviving graphs are returned for
// registry adoption. Leftover temp files are swept. Open fails only on I/O
// errors or an incompatible (future-version) segment — corruption and torn
// tails are recovery, not failure.
func Open(cfg Config) (*Store, []Recovered, error) {
	s := &Store{
		dir:       cfg.Dir,
		fsys:      cfg.FS,
		snapEvery: cfg.SnapshotEvery,
		snapBytes: cfg.SnapshotBytes,
		graphs:    make(map[string]*gstate),
	}
	if s.fsys == nil {
		s.fsys = fault.OS{}
	}
	if s.snapEvery == 0 {
		s.snapEvery = 64
	}
	if s.snapBytes == 0 {
		s.snapBytes = 4 << 20
	}
	if s.dir == "" {
		return nil, nil, fmt.Errorf("store: empty data dir")
	}
	if err := s.fsys.MkdirAll(s.dir, 0o755); err != nil {
		return nil, nil, err
	}
	recovered, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	return s, recovered, nil
}

// Close releases every open WAL handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, st := range s.graphs {
		if st.wal != nil {
			if err := st.wal.Close(); err != nil && first == nil {
				first = err
			}
			st.wal = nil
		}
	}
	return first
}

// Counters snapshots the persistence counters.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctr
}

// Has reports whether name has durable state.
func (s *Store) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.graphs[name]
	return ok
}

// Gen returns name's current generation (0 if unknown).
func (s *Store) Gen(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.graphs[name]; ok {
		return st.gen
	}
	return 0
}

// Info returns name's last-known shape without loading it.
func (s *Store) Info(name string) (nodes, edges int, gen uint64, sets []string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.graphs[name]
	if !ok {
		return 0, 0, 0, nil, false
	}
	return st.nodes, st.edges, st.gen, append([]string(nil), st.sets...), true
}

// Names lists the persisted graph names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.graphs))
	for name := range s.graphs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Put durably replaces name's state with a fresh snapshot at the next
// generation and an empty WAL, returning the new generation. The snapshot is
// written crash-atomically; until its rename is directory-synced, recovery
// serves the previous generation.
func (s *Store) Put(name string, g *graph.Graph, sets []*graph.NodeSet) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.graphs[name]
	if !ok {
		key, err := encodeKey(name)
		if err != nil {
			return 0, err
		}
		st = &gstate{name: name, key: key}
	}
	gen := st.gen + 1
	if err := s.writeSegment(st.key, name, gen, g, sets); err != nil {
		return 0, err
	}
	// The snapshot is durable; from here the operation is committed even if
	// the WAL reset below fails (recovery discards a WAL whose base
	// generation predates the newest snapshot).
	st.gen, st.base = gen, gen
	st.nodes, st.edges, st.sets = g.NumNodes(), g.NumEdges(), setNames(sets)
	s.graphs[name] = st
	err := s.resetWAL(st, gen)
	s.prune(st.key, gen)
	if err != nil {
		return gen, fmt.Errorf("store: snapshot of %q durable at gen %d, wal reset failed (retried on next edit): %w", name, gen, err)
	}
	return gen, nil
}

// AppendEdits durably appends one atomic edit batch to name's WAL and bumps
// its generation; g and sets must be the post-edit state (used to fold the
// WAL into a snapshot once a threshold trips, and to refresh Info). The
// batch is committed once the WAL fsync returns; a threshold-triggered
// snapshot failure never fails the edit (the WAL simply keeps growing until
// a later fold succeeds).
func (s *Store) AppendEdits(name string, adds []graph.Edge, dels [][2]graph.NodeID, g *graph.Graph, sets []*graph.NodeSet) (gen uint64, snapshotted bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.graphs[name]
	if !ok {
		return 0, false, fmt.Errorf("store: no persisted graph %q", name)
	}
	if st.wal == nil {
		// A previous reset failed; rebuild a clean WAL (all committed edits
		// up to st.gen are in the snapshot or unreachable by construction).
		if err := s.resetWAL(st, st.gen); err != nil {
			return 0, false, err
		}
	}
	rec := encodeWALRecord(adds, dels)
	if _, err := st.wal.Write(rec); err != nil {
		return 0, false, err // torn tail; recovery truncates it
	}
	if err := st.wal.Sync(); err != nil {
		return 0, false, err // not durable; the edit is not committed
	}
	st.gen++
	st.nrec++
	st.nbyte += int64(len(rec))
	st.nodes, st.edges, st.sets = g.NumNodes(), g.NumEdges(), setNames(sets)
	s.ctr.WALAppends++
	if (s.snapEvery > 0 && st.nrec >= s.snapEvery) || (s.snapBytes > 0 && st.nbyte >= s.snapBytes) {
		if err := s.writeSegment(st.key, name, st.gen, g, sets); err != nil {
			s.ctr.SnapshotFailures++
		} else {
			st.base = st.gen
			if err := s.resetWAL(st, st.gen); err != nil {
				st.wal = nil // lazily rebuilt by the next edit
			}
			s.prune(st.key, st.gen)
			s.ctr.Snapshots++
			snapshotted = true
		}
	}
	return st.gen, snapshotted, nil
}

// Delete durably removes name's on-disk state. Removal order (oldest
// snapshots first, WAL last) keeps every crash point prefix-consistent: a
// partially deleted graph recovers either fully present (at its newest
// generation) or fully absent.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.graphs[name]
	if !ok {
		return fmt.Errorf("store: no persisted graph %q", name)
	}
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	gens, err := s.segGens(st.key)
	if err != nil {
		return err
	}
	for _, gen := range gens { // ascending: newest goes last
		if err := s.fsys.Remove(filepath.Join(s.dir, segFile(st.key, gen))); err != nil {
			return err
		}
	}
	if err := s.fsys.Remove(filepath.Join(s.dir, walFile(st.key))); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return err
	}
	delete(s.graphs, name)
	return nil
}

// Load reconstructs name from disk (newest valid snapshot + WAL replay)
// without touching the append handle — the lazy-reload path for graphs
// evicted from the in-memory registry.
func (s *Store) Load(name string) (*graph.Graph, []*graph.NodeSet, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.graphs[name]
	if !ok {
		return nil, nil, 0, fmt.Errorf("store: no persisted graph %q", name)
	}
	sd, _, err := s.readNewestSegment(st.key)
	if err != nil {
		return nil, nil, 0, err
	}
	if sd == nil {
		return nil, nil, 0, fmt.Errorf("store: no readable snapshot for %q", name)
	}
	g, sets, gen := sd.g, sd.sets, sd.gen
	if walBytes, err := s.readFile(walFile(st.key)); err == nil {
		if baseGen, recs, _, _, err := scanWAL(walBytes); err == nil && baseGen == sd.gen {
			for _, rec := range recs {
				if g, err = graph.ApplyEdits(g, rec.adds, rec.dels); err != nil {
					break
				}
				gen++
			}
		}
	}
	return g, sets, gen, nil
}

// --- recovery ---

func (s *Store) recover() ([]Recovered, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	segs := make(map[string][]uint64) // key → generations present
	wals := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = s.fsys.Remove(filepath.Join(s.dir, name)) // crashed atomic write; sweep
			continue
		}
		if key, gen, ok := parseSegFile(name); ok {
			segs[key] = append(segs[key], gen)
			continue
		}
		if key, ok := parseWALFile(name); ok {
			wals[key] = true
		}
	}

	keys := make([]string, 0, len(segs))
	for key := range segs {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	var out []Recovered
	for _, key := range keys {
		rec, err := s.recoverGraph(key, segs[key], wals[key])
		if err != nil {
			return nil, err
		}
		delete(wals, key)
		if rec != nil {
			out = append(out, *rec)
		}
	}
	// WALs with no snapshot at all (crashed deletes): unusable, sweep them.
	for key := range wals {
		s.ctr.Orphans++
		_ = s.fsys.Remove(filepath.Join(s.dir, walFile(key)))
	}
	s.ctr.GraphsRecovered = int64(len(out))
	return out, nil
}

// recoverGraph restores one key: newest valid snapshot, WAL truncation and
// replay, and a fresh append handle. Returns nil (no error) when every
// snapshot generation is corrupt — the graph is lost, but startup proceeds.
func (s *Store) recoverGraph(key string, gens []uint64, hasWAL bool) (*Recovered, error) {
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	var sd *segmentData
	fallback := false
	for i, gen := range gens {
		b, err := s.readFile(segFile(key, gen))
		if err == nil {
			var derr error
			if sd, derr = decodeSegment(b); derr == nil {
				fallback = i > 0
				break
			}
			err = derr
		}
		if errors.Is(err, ErrIncompatibleSegment) {
			return nil, fmt.Errorf("store: %s: %w", segFile(key, gen), err)
		}
		s.ctr.SnapshotFallbacks++
	}
	if sd == nil {
		if hasWAL {
			s.ctr.Orphans++
			_ = s.fsys.Remove(filepath.Join(s.dir, walFile(key)))
		}
		return nil, nil
	}

	st := &gstate{name: sd.name, key: key, gen: sd.gen, base: sd.gen}
	rec := &Recovered{Name: sd.name, Graph: sd.g, Sets: sd.sets, Gen: sd.gen, Fallback: fallback}
	walValid := false
	if hasWAL {
		walBytes, err := s.readFile(walFile(key))
		if err == nil {
			baseGen, recs, validLen, torn, scanErr := scanWAL(walBytes)
			switch {
			case scanErr != nil && errors.Is(scanErr, ErrIncompatibleSegment):
				return nil, fmt.Errorf("store: %s: %w", walFile(key), scanErr)
			case scanErr != nil || baseGen != sd.gen:
				// Unreadable header or a WAL left behind by an older
				// snapshot: its edits are folded or unreachable; drop it.
				s.ctr.WALDiscards++
			default:
				g := sd.g
				replayed := 0
				for _, r := range recs {
					next, err := graph.ApplyEdits(g, r.adds, r.dels)
					if err != nil {
						torn = true // CRC-valid but inapplicable: cut here
						break
					}
					g = next
					replayed++
				}
				if replayed < len(recs) {
					// Re-derive the truncation offset for the records kept.
					validLen = validPrefixLen(walBytes, replayed)
				}
				if torn {
					if err := s.truncateWAL(key, validLen); err != nil {
						return nil, err
					}
					s.ctr.WALTruncations++
					rec.TornTail = true
				}
				rec.Graph, rec.Gen = g, sd.gen+uint64(replayed)
				rec.Replayed = replayed
				s.ctr.WALReplayed += int64(replayed)
				st.gen = rec.Gen
				st.nrec = replayed
				st.nbyte = validLen
				walValid = true
			}
		}
	}
	if !walValid {
		if err := s.resetWAL(st, st.base); err != nil {
			st.wal = nil // lazily rebuilt by the next edit
		}
	} else if err := s.openWALAppend(st); err != nil {
		st.wal = nil
	}
	st.nodes, st.edges, st.sets = rec.Graph.NumNodes(), rec.Graph.NumEdges(), setNames(rec.Sets)
	s.graphs[sd.name] = st
	return rec, nil
}

// validPrefixLen returns the byte length of the header plus the first n
// records of a structurally valid WAL image.
func validPrefixLen(b []byte, n int) int64 {
	off := int64(walHeaderLen)
	for i := 0; i < n; i++ {
		bodyLen := int64(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		off += 8 + bodyLen
	}
	return off
}

// --- file plumbing ---

func (s *Store) readFile(base string) ([]byte, error) {
	f, err := s.fsys.OpenFile(filepath.Join(s.dir, base), os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readAll(f)
}

// writeSegment writes one snapshot crash-atomically: temp file → fsync →
// rename → directory fsync.
func (s *Store) writeSegment(key, name string, gen uint64, g *graph.Graph, sets []*graph.NodeSet) error {
	final := filepath.Join(s.dir, segFile(key, gen))
	tmp := final + ".tmp"
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(encodeSegment(name, gen, g, sets))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.Rename(tmp, final); err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	return s.fsys.SyncDir(s.dir)
}

// resetWAL atomically replaces key's WAL with an empty one based at baseGen
// and opens the append handle.
func (s *Store) resetWAL(st *gstate, baseGen uint64) error {
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	final := filepath.Join(s.dir, walFile(st.key))
	tmp := final + ".tmp"
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(encodeWALHeader(baseGen))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.Rename(tmp, final); err != nil {
		_ = s.fsys.Remove(tmp)
		return err
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return err
	}
	st.base = baseGen
	st.nrec = 0
	st.nbyte = walHeaderLen
	return s.openWALAppend(st)
}

func (s *Store) openWALAppend(st *gstate) error {
	f, err := s.fsys.OpenFile(filepath.Join(s.dir, walFile(st.key)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st.wal = f
	return nil
}

// truncateWAL cuts a torn tail and makes the cut durable.
func (s *Store) truncateWAL(key string, validLen int64) error {
	f, err := s.fsys.OpenFile(filepath.Join(s.dir, walFile(key)), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	err = f.Truncate(validLen)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readNewestSegment returns the newest decodable snapshot for key (nil if
// none decodes).
func (s *Store) readNewestSegment(key string) (*segmentData, uint64, error) {
	gens, err := s.segGens(key)
	if err != nil {
		return nil, 0, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		b, err := s.readFile(segFile(key, gens[i]))
		if err != nil {
			continue
		}
		if sd, err := decodeSegment(b); err == nil {
			return sd, gens[i], nil
		}
	}
	return nil, 0, nil
}

// segGens lists key's snapshot generations, ascending.
func (s *Store) segGens(key string) ([]uint64, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if k, gen, ok := parseSegFile(e.Name()); ok && k == key {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// prune removes key's snapshots older than the previous generation, keeping
// the newest two for corrupt-snapshot fallback. Best effort: a leftover
// segment only costs disk.
func (s *Store) prune(key string, newest uint64) {
	gens, err := s.segGens(key)
	if err != nil {
		return
	}
	kept := 0
	for i := len(gens) - 1; i >= 0; i-- {
		if gens[i] > newest {
			continue // never remove something newer than what we just wrote
		}
		kept++
		if kept <= 2 {
			continue
		}
		_ = s.fsys.Remove(filepath.Join(s.dir, segFile(key, gens[i])))
	}
}

// --- naming ---

// encodeKey maps a graph name to a filesystem-safe key (reversibility is a
// courtesy for operators; the payload's embedded name is the source of truth
// at recovery).
func encodeKey(name string) (string, error) {
	key := url.QueryEscape(name)
	if len(key) > 200 {
		return "", fmt.Errorf("store: graph name too long to persist (%d bytes escaped)", len(key))
	}
	return key, nil
}

func segFile(key string, gen uint64) string {
	return fmt.Sprintf("%s-%016x.seg", key, gen)
}

func walFile(key string) string { return key + ".wal" }

func parseSegFile(base string) (key string, gen uint64, ok bool) {
	rest, found := strings.CutSuffix(base, ".seg")
	if !found {
		return "", 0, false
	}
	i := strings.LastIndexByte(rest, '-')
	if i < 0 || len(rest)-i-1 != 16 {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(rest[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], gen, true
}

func parseWALFile(base string) (key string, ok bool) {
	return strings.CutSuffix(base, ".wal")
}

func setNames(sets []*graph.NodeSet) []string {
	out := make([]string, 0, len(sets))
	for _, s := range sets {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
