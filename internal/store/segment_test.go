package store

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testGraph builds a small deterministic labeled graph with two node sets.
func testGraph(t testing.TB) (*graph.Graph, []*graph.NodeSet) {
	t.Helper()
	b := graph.NewBuilder(6, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 3)
	b.AddEdge(2, 4, 0.5)
	b.AddEdge(3, 4, 1.25)
	b.AddEdge(4, 5, 2)
	b.AddEdge(5, 0, 1)
	for i, l := range []string{"a", "b", "c", "d", "e", "f"} {
		b.SetLabel(graph.NodeID(i), l)
	}
	g := b.Build()
	sets := []*graph.NodeSet{
		graph.NewNodeSet("U", []graph.NodeID{0, 1, 2}),
		graph.NewNodeSet("D", []graph.NodeID{3, 4, 5}),
	}
	return g, sets
}

// graphEqual reports whether two graphs have bit-identical CSR arrays and
// labels — the store's definition of "the same graph" (identical CSR implies
// bit-identical joins).
func graphEqual(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ai, at, aw := a.CSR()
	bi, bt, bw := b.CSR()
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	for i := range at {
		if at[i] != bt[i] || aw[i] != bw[i] {
			return false
		}
	}
	al, bl := a.RawLabels(), b.RawLabels()
	if (al == nil) != (bl == nil) {
		return false
	}
	for i := range al {
		if al[i] != bl[i] {
			return false
		}
	}
	return true
}

func setsEqual(a, b []*graph.NodeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Len() != b[i].Len() {
			return false
		}
		an, bn := a[i].Nodes(), b[i].Nodes()
		for j := range an {
			if an[j] != bn[j] {
				return false
			}
		}
	}
	return true
}

func TestSegmentRoundtrip(t *testing.T) {
	g, sets := testGraph(t)
	want := g.Stats() // force computation so the encoded segment carries it
	b := encodeSegment("yeast", 7, g, sets)
	sd, err := decodeSegment(b)
	if err != nil {
		t.Fatal(err)
	}
	if sd.name != "yeast" || sd.gen != 7 {
		t.Fatalf("decoded (%q, gen %d), want (yeast, 7)", sd.name, sd.gen)
	}
	if !graphEqual(g, sd.g) {
		t.Fatal("decoded graph differs from original")
	}
	if !setsEqual(sets, sd.sets) {
		t.Fatal("decoded sets differ from original")
	}
	// The persisted Stats must come back primed: the decoded graph serves the
	// planner without rescanning.
	if got := sd.g.Stats(); got != want {
		t.Fatalf("decoded stats = %+v, want %+v", got, want)
	}
}

func TestSegmentRoundtripUnlabeledNoSets(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	sd, err := decodeSegment(encodeSegment("plain", 1, g, nil))
	if err != nil {
		t.Fatal(err)
	}
	if sd.g.Labeled() || len(sd.sets) != 0 {
		t.Fatalf("expected unlabeled graph with no sets, got labeled=%v sets=%d",
			sd.g.Labeled(), len(sd.sets))
	}
	if !graphEqual(g, sd.g) {
		t.Fatal("decoded graph differs from original")
	}
}

// TestSegmentGoldenV1 pins the v1 on-disk encoding byte for byte. If this
// test fails, the format changed: either revert the change, or bump
// segVersion and add a new golden — never reuse v1 for different bytes, or
// old files would decode as garbage (or new files fail on old builds)
// without tripping the version gate.
func TestSegmentGoldenV1(t *testing.T) {
	g, sets := testGraph(t)
	got := hex.EncodeToString(encodeSegment("golden", 3, g, sets))
	path := filepath.Join("testdata", "segment_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/store -run Golden -update)", err)
	}
	if got != string(bytes.TrimSpace(want)) {
		t.Errorf("segment encoding drifted from the v1 golden file;\n got %s\nwant %s", got, bytes.TrimSpace(want))
	}
	// Pin the header fields explicitly, independent of the hex blob.
	raw, _ := hex.DecodeString(got)
	if string(raw[0:4]) != segMagic {
		t.Errorf("magic = %q, want %q", raw[0:4], segMagic)
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	if pl := binary.LittleEndian.Uint64(raw[8:16]); pl != uint64(len(raw)-segHeaderLen) {
		t.Errorf("payload length = %d, want %d", pl, len(raw)-segHeaderLen)
	}
}

// reseal recomputes the header CRC after a deliberate header edit, so tests
// can distinguish "intact but incompatible" from "corrupt".
func reseal(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[20:24], crc32.Checksum(b[:20], castagnoli))
	return b
}

func TestSegmentVersionGate(t *testing.T) {
	g, sets := testGraph(t)
	valid := encodeSegment("g", 1, g, sets)

	futureVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint16(futureVer[4:6], segVersion+1)
	reseal(futureVer)

	badMagic := append([]byte(nil), valid...)
	badMagic[0] = 'X'
	reseal(badMagic)

	for _, tc := range []struct {
		name string
		b    []byte
		want error
	}{
		{"future version", futureVer, ErrIncompatibleSegment},
		{"bad magic", badMagic, ErrIncompatibleSegment},
		{"truncated header", valid[:segHeaderLen-4], ErrIncompatibleSegment},
		{"empty file", nil, ErrIncompatibleSegment},
		{"header crc mismatch", flipByte(valid, 9), ErrCorruptSegment},
		{"payload crc mismatch", flipByte(valid, segHeaderLen+10), ErrCorruptSegment},
		{"truncated payload", valid[:len(valid)-3], ErrCorruptSegment},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), ErrCorruptSegment},
	} {
		_, err := decodeSegment(tc.b)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		// The two sentinels are mutually exclusive: recovery falls back on
		// corruption but must refuse to scrub incompatible files.
		other := ErrCorruptSegment
		if tc.want == ErrCorruptSegment {
			other = ErrIncompatibleSegment
		}
		if errors.Is(err, other) {
			t.Errorf("%s: err %v matches both sentinels", tc.name, err)
		}
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

// TestSegmentDetectsEveryByteFlip exercises the checksum coverage property:
// no single corrupted byte anywhere in a segment file may decode silently.
func TestSegmentDetectsEveryByteFlip(t *testing.T) {
	g, sets := testGraph(t)
	valid := encodeSegment("g", 1, g, sets)
	if _, err := decodeSegment(valid); err != nil {
		t.Fatal(err)
	}
	for i := range valid {
		if _, err := decodeSegment(flipByte(valid, i)); err == nil {
			t.Fatalf("flipping byte %d of %d decoded cleanly", i, len(valid))
		}
	}
}

func TestWALHeaderRoundtrip(t *testing.T) {
	h := encodeWALHeader(42)
	gen, err := parseWALHeader(h)
	if err != nil || gen != 42 {
		t.Fatalf("parse = (%d, %v), want (42, nil)", gen, err)
	}

	future := append([]byte(nil), h...)
	binary.LittleEndian.PutUint16(future[4:6], walVersion+1)
	binary.LittleEndian.PutUint32(future[16:20], crc32.Checksum(future[:16], castagnoli))
	if _, err := parseWALHeader(future); !errors.Is(err, ErrIncompatibleSegment) {
		t.Errorf("future wal version: err = %v, want ErrIncompatibleSegment", err)
	}
	if _, err := parseWALHeader(flipByte(h, 9)); !errors.Is(err, ErrCorruptSegment) {
		t.Errorf("flipped wal header byte: err = %v, want ErrCorruptSegment", err)
	}
	if _, err := parseWALHeader(h[:10]); !errors.Is(err, ErrCorruptSegment) {
		t.Errorf("truncated wal header: err = %v, want ErrCorruptSegment", err)
	}
}

func TestWALScanRecordsAndTornTail(t *testing.T) {
	adds1 := []graph.Edge{{U: 1, V: 2, W: 0.5}}
	dels2 := [][2]graph.NodeID{{0, 3}}
	img := encodeWALHeader(5)
	img = append(img, encodeWALRecord(adds1, nil)...)
	boundary := int64(len(img))
	img = append(img, encodeWALRecord(nil, dels2)...)

	baseGen, recs, validLen, torn, err := scanWAL(img)
	if err != nil || torn {
		t.Fatalf("clean scan: torn=%v err=%v", torn, err)
	}
	if baseGen != 5 || len(recs) != 2 || validLen != int64(len(img)) {
		t.Fatalf("scan = (base %d, %d recs, validLen %d)", baseGen, len(recs), validLen)
	}
	if len(recs[0].adds) != 1 || recs[0].adds[0] != (graph.Edge{U: 1, V: 2, W: 0.5}) {
		t.Fatalf("record 0 = %+v", recs[0])
	}
	if len(recs[1].dels) != 1 || recs[1].dels[0] != [2]graph.NodeID{0, 3} {
		t.Fatalf("record 1 = %+v", recs[1])
	}

	// Every possible truncation of the second record is a torn tail that
	// yields exactly the first record; a corrupted byte inside it likewise.
	for cut := boundary + 1; cut < int64(len(img)); cut++ {
		_, recs, validLen, torn, err := scanWAL(img[:cut])
		if err != nil || !torn || len(recs) != 1 || validLen != boundary {
			t.Fatalf("cut %d: recs=%d validLen=%d torn=%v err=%v", cut, len(recs), validLen, torn, err)
		}
	}
	for i := boundary; i < int64(len(img)); i++ {
		_, recs, validLen, torn, err := scanWAL(flipByte(img, int(i)))
		if err != nil || !torn || len(recs) != 1 || validLen != boundary {
			t.Fatalf("flip %d: recs=%d validLen=%d torn=%v err=%v", i, len(recs), validLen, torn, err)
		}
	}

	// A record boundary cut is not torn — it is simply a shorter valid WAL.
	_, recs, validLen, torn, err = scanWAL(img[:boundary])
	if err != nil || torn || len(recs) != 1 || validLen != boundary {
		t.Fatalf("boundary cut: recs=%d validLen=%d torn=%v err=%v", len(recs), validLen, torn, err)
	}
}

func TestWALRejectsImplausibleLength(t *testing.T) {
	img := encodeWALHeader(1)
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], maxWALRecord+1)
	img = append(img, frame[:]...)
	_, recs, validLen, torn, err := scanWAL(img)
	if err != nil || !torn || len(recs) != 0 || validLen != walHeaderLen {
		t.Fatalf("oversized length prefix: recs=%d validLen=%d torn=%v err=%v", len(recs), validLen, torn, err)
	}
}
