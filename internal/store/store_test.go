package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func openTest(t *testing.T, dir string, every int) (*Store, []Recovered) {
	t.Helper()
	s, recs, err := Open(Config{Dir: dir, SnapshotEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, recs
}

// listFiles returns the non-directory entries of dir with a given suffix.
func listFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestStorePutLoadReopen(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)

	s, recs := openTest(t, dir, 0)
	if len(recs) != 0 {
		t.Fatalf("fresh dir recovered %d graphs", len(recs))
	}
	gen, err := s.Put("alpha", g, sets)
	if err != nil || gen != 1 {
		t.Fatalf("Put = (%d, %v), want (1, nil)", gen, err)
	}
	if !s.Has("alpha") || s.Gen("alpha") != 1 {
		t.Fatalf("Has/Gen after Put: %v/%d", s.Has("alpha"), s.Gen("alpha"))
	}
	nodes, edges, igen, names, ok := s.Info("alpha")
	if !ok || nodes != g.NumNodes() || edges != g.NumEdges() || igen != 1 ||
		len(names) != 2 || names[0] != "D" || names[1] != "U" {
		t.Fatalf("Info = (%d, %d, %d, %v, %v)", nodes, edges, igen, names, ok)
	}
	lg, lsets, lgen, err := s.Load("alpha")
	if err != nil || lgen != 1 || !graphEqual(g, lg) {
		t.Fatalf("Load: gen=%d err=%v equal=%v", lgen, err, graphEqual(g, lg))
	}
	if len(lsets) != 2 {
		t.Fatalf("Load returned %d sets", len(lsets))
	}
	s.Close()

	s2, recs := openTest(t, dir, 0)
	if len(recs) != 1 || recs[0].Name != "alpha" || recs[0].Gen != 1 ||
		recs[0].Replayed != 0 || recs[0].TornTail || recs[0].Fallback {
		t.Fatalf("reopen recovered %+v", recs)
	}
	if !graphEqual(g, recs[0].Graph) || !setsEqual(sets, recs[0].Sets) {
		t.Fatal("recovered graph/sets differ from what was put")
	}
	if names := s2.Names(); len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("Names = %v", names)
	}
}

func TestStoreAppendReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	g0, sets := testGraph(t)

	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g0, sets); err != nil {
		t.Fatal(err)
	}
	g := g0
	batches := [][]graph.Edge{
		{{U: 0, V: 5, W: 4}},
		{{U: 5, V: 2, W: 1.5}, {U: 1, V: 4, W: 2}},
		{{U: 3, V: 0, W: 0.25}},
	}
	for i, adds := range batches {
		next, err := graph.ApplyEdits(g, adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		gen, snapped, err := s.AppendEdits("alpha", adds, nil, next, sets)
		if err != nil || snapped || gen != uint64(2+i) {
			t.Fatalf("append %d: gen=%d snapped=%v err=%v", i, gen, snapped, err)
		}
		g = next
	}
	if ctr := s.Counters(); ctr.WALAppends != 3 {
		t.Fatalf("WALAppends = %d, want 3", ctr.WALAppends)
	}
	// Load replays the WAL without disturbing the append handle.
	lg, _, lgen, err := s.Load("alpha")
	if err != nil || lgen != 4 || !graphEqual(g, lg) {
		t.Fatalf("Load mid-WAL: gen=%d err=%v", lgen, err)
	}
	s.Close()

	s2, recs := openTest(t, dir, 0)
	if len(recs) != 1 || recs[0].Gen != 4 || recs[0].Replayed != 3 || recs[0].TornTail {
		t.Fatalf("reopen recovered %+v", recs)
	}
	if !graphEqual(g, recs[0].Graph) {
		t.Fatal("replayed graph differs from the live one")
	}
	if ctr := s2.Counters(); ctr.WALReplayed != 3 || ctr.GraphsRecovered != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
	// The recovered WAL stays appendable.
	next, err := graph.ApplyEdits(g, []graph.Edge{{U: 2, V: 5, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen, _, err := s2.AppendEdits("alpha", []graph.Edge{{U: 2, V: 5, W: 1}}, nil, next, sets); err != nil || gen != 5 {
		t.Fatalf("append after recovery: gen=%d err=%v", gen, err)
	}
}

func TestStoreSnapshotFoldAndPrune(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)

	s, _ := openTest(t, dir, 2) // fold every 2 records
	if _, err := s.Put("alpha", g, sets); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		adds := []graph.Edge{{U: graph.NodeID(i % 6), V: graph.NodeID((i + 2) % 6), W: 1}}
		next, err := graph.ApplyEdits(g, adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, snapped, err := s.AppendEdits("alpha", adds, nil, next, sets)
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; snapped != want {
			t.Fatalf("append %d: snapshotted=%v, want %v", i, snapped, want)
		}
		g = next
	}
	if ctr := s.Counters(); ctr.Snapshots != 3 || ctr.SnapshotFailures != 0 {
		t.Fatalf("counters = %+v", ctr)
	}
	if segs := listFiles(t, dir, ".seg"); len(segs) > 2 {
		t.Fatalf("prune left %d segments: %v", len(segs), segs)
	}
	s.Close()

	// All six edits are folded; the reopen replays nothing.
	_, recs := openTest(t, dir, 2)
	if len(recs) != 1 || recs[0].Gen != 7 || recs[0].Replayed != 0 {
		t.Fatalf("reopen recovered %+v", recs)
	}
	if !graphEqual(g, recs[0].Graph) {
		t.Fatal("folded graph differs from the live one")
	}
}

func TestStoreDeleteRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)

	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g, sets); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if s.Has("alpha") {
		t.Fatal("Has after Delete")
	}
	if err := s.Delete("alpha"); err == nil {
		t.Fatal("double Delete succeeded")
	}
	if segs, wals := listFiles(t, dir, ".seg"), listFiles(t, dir, ".wal"); len(segs)+len(wals) != 0 {
		t.Fatalf("files left after Delete: %v %v", segs, wals)
	}
	s.Close()
	if _, recs := openTest(t, dir, 0); len(recs) != 0 {
		t.Fatalf("deleted graph recovered: %+v", recs)
	}
}

func TestStoreSweepsTmpAndOrphanWAL(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g, sets); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A crashed atomic write leaves a temp file; a crashed delete leaves a
	// WAL with no snapshot. Both must be swept, neither may fail recovery.
	if err := os.WriteFile(filepath.Join(dir, "ghost-0000000000000003.seg.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ghost.wal"), encodeWALHeader(3), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recs := openTest(t, dir, 0)
	if len(recs) != 1 || recs[0].Name != "alpha" {
		t.Fatalf("recovered %+v", recs)
	}
	if ctr := s2.Counters(); ctr.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", ctr.Orphans)
	}
	if tmps := listFiles(t, dir, ".tmp"); len(tmps) != 0 {
		t.Fatalf("tmp files left: %v", tmps)
	}
	if _, err := os.Stat(filepath.Join(dir, "ghost.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan wal not swept: %v", err)
	}
}

func TestStoreCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	g1, sets := testGraph(t)
	g2, err := graph.ApplyEdits(g1, []graph.Edge{{U: 0, V: 4, W: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}

	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g1, sets); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("alpha", g2, sets); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest segment's payload; recovery must fall back to gen 1
	// and discard the gen-2 WAL (its base generation no longer exists).
	seg2 := filepath.Join(dir, segFile("alpha", 2))
	b, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	b[segHeaderLen+5] ^= 0xff
	if err := os.WriteFile(seg2, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, recs := openTest(t, dir, 0)
	if len(recs) != 1 || recs[0].Gen != 1 || !recs[0].Fallback {
		t.Fatalf("recovered %+v", recs)
	}
	if !graphEqual(g1, recs[0].Graph) {
		t.Fatal("fallback graph is not the gen-1 snapshot")
	}
	ctr := s2.Counters()
	if ctr.SnapshotFallbacks != 1 || ctr.WALDiscards != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
	// The degraded graph remains editable at its recovered generation.
	next, err := graph.ApplyEdits(g1, []graph.Edge{{U: 1, V: 5, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen, _, err := s2.AppendEdits("alpha", []graph.Edge{{U: 1, V: 5, W: 1}}, nil, next, sets); err != nil || gen != 2 {
		t.Fatalf("append after fallback: gen=%d err=%v", gen, err)
	}
}

func TestStoreAllSnapshotsCorruptLosesGraphNotStartup(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g, sets); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("beta", g, sets); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, segFile("alpha", 1))
	b, _ := os.ReadFile(seg)
	b[segHeaderLen] ^= 0xff
	os.WriteFile(seg, b, 0o644)

	s2, recs := openTest(t, dir, 0)
	if len(recs) != 1 || recs[0].Name != "beta" {
		t.Fatalf("recovered %+v, want just beta", recs)
	}
	// alpha's now-useless WAL is swept with it.
	if ctr := s2.Counters(); ctr.Orphans != 1 || ctr.SnapshotFallbacks != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestStoreFutureVersionSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	s, _ := openTest(t, dir, 0)
	if _, err := s.Put("alpha", g, sets); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Patch the segment to a future version with a valid header CRC: the file
	// is intact, just from a newer build. Open must refuse, not fall back.
	seg := filepath.Join(dir, segFile("alpha", 1))
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[4:6], segVersion+1)
	binary.LittleEndian.PutUint32(b[20:24], crc32.Checksum(b[:20], castagnoli))
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Config{Dir: dir}); !errors.Is(err, ErrIncompatibleSegment) {
		t.Fatalf("Open over future segment: err = %v, want ErrIncompatibleSegment", err)
	}
}

// TestStoreTornWALEveryCut reopens the store after truncating the WAL at
// every possible byte offset: recovery must always succeed, always land on a
// record boundary, and always yield the graph of exactly that many edits.
func TestStoreTornWALEveryCut(t *testing.T) {
	srcDir := t.TempDir()
	g0, sets := testGraph(t)
	s, _ := openTest(t, srcDir, 0)
	if _, err := s.Put("alpha", g0, sets); err != nil {
		t.Fatal(err)
	}
	states := []*graph.Graph{g0}
	g := g0
	for i := 0; i < 3; i++ {
		adds := []graph.Edge{{U: graph.NodeID(i), V: graph.NodeID(i + 3), W: float64(i) + 0.5}}
		next, err := graph.ApplyEdits(g, adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.AppendEdits("alpha", adds, nil, next, sets); err != nil {
			t.Fatal(err)
		}
		g = next
		states = append(states, g)
	}
	s.Close()

	walPath := filepath.Join(srcDir, walFile("alpha"))
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	segName := listFiles(t, srcDir, ".seg")[0]
	seg, err := os.ReadFile(filepath.Join(srcDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, for mapping a cut to its expected replay count.
	bounds := []int64{walHeaderLen}
	for i := 1; i <= 3; i++ {
		bounds = append(bounds, validPrefixLen(wal, i))
	}

	for cut := walHeaderLen; cut <= len(wal); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), seg, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walFile("alpha")), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, recs, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		replayed := 0
		for i, b := range bounds {
			if int64(cut) >= b {
				replayed = i
			}
		}
		torn := int64(cut) != bounds[replayed]
		if len(recs) != 1 || recs[0].Replayed != replayed || recs[0].TornTail != torn ||
			recs[0].Gen != uint64(1+replayed) {
			t.Fatalf("cut %d: recovered %+v, want replayed=%d torn=%v", cut, recs, replayed, torn)
		}
		if !graphEqual(states[replayed], recs[0].Graph) {
			t.Fatalf("cut %d: graph is not the %d-edit state", cut, replayed)
		}
		if torn {
			if ctr := s2.Counters(); ctr.WALTruncations != 1 {
				t.Fatalf("cut %d: WALTruncations = %d", cut, ctr.WALTruncations)
			}
			// The truncation is durable: the WAL on disk now ends at the boundary.
			if fi, err := os.Stat(filepath.Join(dir, walFile("alpha"))); err != nil || fi.Size() != bounds[replayed] {
				t.Fatalf("cut %d: wal not truncated to %d: %v", cut, bounds[replayed], err)
			}
		}
		// Recovery leaves an appendable WAL regardless of where the tear was.
		adds := []graph.Edge{{U: 5, V: 1, W: 2}}
		next, err := graph.ApplyEdits(states[replayed], adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if gen, _, err := s2.AppendEdits("alpha", adds, nil, next, sets); err != nil || gen != uint64(2+replayed) {
			t.Fatalf("cut %d: append after recovery: gen=%d err=%v", cut, gen, err)
		}
		s2.Close()
	}
}

// TestStoreWALByteFlips corrupts each byte of the WAL in turn: header flips
// discard the whole WAL, record flips truncate to a valid prefix. Recovery
// never fails and never serves a state outside the committed sequence.
func TestStoreWALByteFlips(t *testing.T) {
	srcDir := t.TempDir()
	g0, sets := testGraph(t)
	s, _ := openTest(t, srcDir, 0)
	if _, err := s.Put("alpha", g0, sets); err != nil {
		t.Fatal(err)
	}
	states := []*graph.Graph{g0}
	g := g0
	for i := 0; i < 2; i++ {
		adds := []graph.Edge{{U: graph.NodeID(i), V: 5, W: 1}}
		next, err := graph.ApplyEdits(g, adds, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.AppendEdits("alpha", adds, nil, next, sets); err != nil {
			t.Fatal(err)
		}
		g = next
		states = append(states, g)
	}
	s.Close()

	wal, err := os.ReadFile(filepath.Join(srcDir, walFile("alpha")))
	if err != nil {
		t.Fatal(err)
	}
	segName := listFiles(t, srcDir, ".seg")[0]
	seg, _ := os.ReadFile(filepath.Join(srcDir, segName))

	for i := range wal {
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, segName), seg, 0o644)
		os.WriteFile(filepath.Join(dir, walFile("alpha")), flipByte(wal, i), 0o644)
		s2, recs, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		if len(recs) != 1 {
			t.Fatalf("flip %d: recovered %d graphs", i, len(recs))
		}
		match := false
		for _, st := range states {
			if graphEqual(st, recs[0].Graph) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("flip %d: recovered graph matches no committed state (replayed %d)", i, recs[0].Replayed)
		}
		if i < walHeaderLen {
			if ctr := s2.Counters(); ctr.WALDiscards != 1 || recs[0].Replayed != 0 {
				t.Fatalf("flip %d in header: counters %+v, replayed %d", i, ctr, recs[0].Replayed)
			}
		}
		s2.Close()
	}
}

func TestStoreNameEncoding(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	s, _ := openTest(t, dir, 0)
	// Names with separators, spaces, and dots must round-trip through the
	// filename encoding and the payload's embedded name.
	names := []string{"a/b c", "trailing.", "per-cent%40", "плотность"}
	for _, name := range names {
		if _, err := s.Put(name, g, sets); err != nil {
			t.Fatalf("Put %q: %v", name, err)
		}
	}
	if _, err := s.Put(strings.Repeat("x", 300), g, sets); err == nil {
		t.Fatal("oversized name accepted")
	}
	s.Close()
	s2, recs := openTest(t, dir, 0)
	if len(recs) != len(names) {
		t.Fatalf("recovered %d graphs, want %d", len(recs), len(names))
	}
	for _, name := range names {
		if !s2.Has(name) {
			t.Fatalf("name %q did not survive recovery", name)
		}
	}
}
