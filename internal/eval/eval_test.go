package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/graph"
)

func TestAUCPerfectRanking(t *testing.T) {
	s := []Sample{{3, true}, {2, true}, {1, false}, {0, false}}
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %v, want 1", auc)
	}
}

func TestAUCInvertedRanking(t *testing.T) {
	s := []Sample{{3, false}, {2, false}, {1, true}, {0, true}}
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Fatalf("AUC = %v, want 0", auc)
	}
}

func TestAUCAllTiedIsHalf(t *testing.T) {
	s := []Sample{{1, true}, {1, false}, {1, true}, {1, false}}
	auc, err := AUC(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.5", auc)
	}
}

func TestAUCNeedsBothClasses(t *testing.T) {
	if _, err := AUC([]Sample{{1, true}}); err == nil {
		t.Fatal("positives-only accepted")
	}
	if _, err := AUC([]Sample{{1, false}}); err == nil {
		t.Fatal("negatives-only accepted")
	}
	if _, err := ROC(nil); err == nil {
		t.Fatal("empty ROC accepted")
	}
}

func TestROCEndpointsAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s []Sample
	for i := 0; i < 200; i++ {
		pos := rng.Float64() < 0.3
		score := rng.NormFloat64()
		if pos {
			score += 1 // informative signal
		}
		s = append(s, Sample{score, pos})
	}
	pts, err := ROC(s)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0] != (Point{0, 0}) {
		t.Fatalf("ROC starts at %v", pts[0])
	}
	last := pts[len(pts)-1]
	if math.Abs(last.FPR-1) > 1e-12 || math.Abs(last.TPR-1) > 1e-12 {
		t.Fatalf("ROC ends at %v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR || pts[i].TPR < pts[i-1].TPR {
			t.Fatalf("ROC not monotone at %d", i)
		}
	}
}

// Property: rank-statistic AUC equals trapezoid integration of the ROC.
func TestAUCMatchesROCIntegralProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		s := make([]Sample, n)
		hasPos, hasNeg := false, false
		for i := range s {
			pos := rng.Float64() < 0.4
			// Coarse quantization forces score ties.
			score := math.Round(rng.NormFloat64()*4) / 4
			if pos {
				score += 0.25
				hasPos = true
			} else {
				hasNeg = true
			}
			s[i] = Sample{score, pos}
		}
		if !hasPos || !hasNeg {
			return true
		}
		auc, err := AUC(s)
		if err != nil {
			return false
		}
		pts, err := ROC(s)
		if err != nil {
			return false
		}
		return math.Abs(auc-AUCFromROC(pts)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// smallWorld builds a community graph with triadic closure, suited to
// prediction tests (transitivity is the signal link prediction exploits).
func smallWorld(t *testing.T) (*graph.Graph, *graph.NodeSet, *graph.NodeSet, *graph.NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{40, 40, 40}, PIn: 0.25, POut: 0.12, Seed: 5, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g = graph.CloseTriads(g, g.NumEdges()/4, 99)
	return g, sets[0], sets[1], sets[2]
}

// TestLinkPredictionRecoversPlantedEdges is the §VII-B.2 experiment in
// miniature: remove half the (P,Q) edges, rank by DHT on the remainder, and
// expect AUC comfortably above chance.
func TestLinkPredictionRecoversPlantedEdges(t *testing.T) {
	g, p, q, _ := smallWorld(t)
	testG, removed := dataset.SplitCross(g, p, q, 0.5, 7)
	if len(removed) == 0 {
		t.Fatal("split removed nothing")
	}
	res, err := LinkPrediction(g, testG, p, q, dht.DHTLambda(0.2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.6 {
		t.Fatalf("AUC = %v, want well above 0.5", res.AUC)
	}
	if len(res.ROC) < 3 {
		t.Fatalf("degenerate ROC: %v", res.ROC)
	}
	// Candidates must exclude pairs already linked in T.
	for _, s := range res.Samples {
		_ = s // structural: samples exist
	}
}

func TestLinkPredictionNoCandidates(t *testing.T) {
	// Complete bipartite graph: every (P,Q) pair already linked → no
	// prediction candidates → error.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 2, 1)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(1, 3, 1)
	g := b.Build()
	p := graph.NewNodeSet("P", []graph.NodeID{0, 1})
	q := graph.NewNodeSet("Q", []graph.NodeID{2, 3})
	if _, err := LinkPrediction(g, g, p, q, dht.DHTLambda(0.2), 4); err == nil {
		t.Fatal("expected error with no candidates")
	}
}

func TestCliquePredictionRecoversPlantedCliques(t *testing.T) {
	g, a, b, c := smallWorld(t)
	testG, broken := dataset.SplitCliques(g, a, b, c, 9)
	if len(broken) == 0 {
		t.Skip("no 3-way triangles in this world (seed-dependent)")
	}
	// Modest subsets keep the tuple sweep fast, but they must contain the
	// broken cliques or the positives vanish.
	pick := func(base *graph.NodeSet, idx int) *graph.NodeSet {
		ids := make([]graph.NodeID, 0, 15)
		for _, tri := range broken {
			ids = append(ids, tri[idx])
		}
		for _, n := range base.Nodes() {
			if len(ids) >= 15 {
				break
			}
			ids = append(ids, n)
		}
		return graph.NewNodeSet(base.Name, ids)
	}
	aa, bb, cc := pick(a, 0), pick(b, 1), pick(c, 2)
	res, err := CliquePrediction(g, testG, aa, bb, cc, dht.DHTLambda(0.2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.AUC < 0.55 {
		t.Fatalf("clique AUC = %v, want above chance", res.AUC)
	}
}
