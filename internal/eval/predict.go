package eval

import (
	"fmt"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
)

// LinkPredictionResult carries the samples (one per candidate node pair not
// already linked in the test graph) plus the derived metrics.
type LinkPredictionResult struct {
	Samples []Sample
	ROC     []Point
	AUC     float64
}

// LinkPrediction runs the paper's link-prediction experiment (§VII-B.2): a
// 2-way join over DHT on the test graph T ranks every (p, q) candidate;
// pairs absent from T are classified against the true graph G (true positive
// if the edge exists in G). Varying k over this ranking traces the ROC, so
// the full ranking is computed once with B-BJ and swept.
func LinkPrediction(trueG, testG *graph.Graph, p, q *graph.NodeSet, params dht.Params, d int) (*LinkPredictionResult, error) {
	cfg := join2.Config{Graph: testG, Params: params, D: d, P: p.Nodes(), Q: q.Nodes()}
	j, err := join2.NewBBJ(cfg)
	if err != nil {
		return nil, err
	}
	ranking, err := j.TopK(cfg.MaxPairs())
	if err != nil {
		return nil, err
	}
	var samples []Sample
	for _, r := range ranking {
		if r.Pair.P == r.Pair.Q {
			continue // self pairs are not predictions
		}
		if testG.HasEdge(r.Pair.P, r.Pair.Q) {
			continue // already linked in T: not a prediction target
		}
		samples = append(samples, Sample{
			Score:    r.Score,
			Positive: trueG.HasEdge(r.Pair.P, r.Pair.Q),
		})
	}
	return finish(samples)
}

// CliquePredictionResult is the 3-clique analogue of LinkPredictionResult.
type CliquePredictionResult struct {
	Samples []Sample
	ROC     []Point
	AUC     float64
}

// CliquePrediction runs the paper's 3-clique-prediction experiment
// (§VII-B.3): a triangle 3-way join over the test graph T ranks candidate
// (a, b, c) triples; triples that do not already form a triangle in T are
// classified by whether they form one in the true graph G. The aggregate is
// MIN over the six directed triangle edges, the paper's default f.
//
// Scores are assembled from per-edge B-BJ rankings, which is exactly the
// score any of the n-way algorithms would assign (they all agree; see the
// core package equivalence tests) while keeping the full sweep tractable.
func CliquePrediction(trueG, testG *graph.Graph, a, b, c *graph.NodeSet, params dht.Params, d int) (*CliquePredictionResult, error) {
	score, err := pairScores(testG, params, d, [][2]*graph.NodeSet{
		{a, b}, {b, a}, {b, c}, {c, b}, {a, c}, {c, a},
	})
	if err != nil {
		return nil, err
	}
	var samples []Sample
	for _, u := range a.Nodes() {
		for _, v := range b.Nodes() {
			for _, w := range c.Nodes() {
				if u == v || v == w || u == w {
					continue
				}
				inT := testG.HasEdge(u, v) && testG.HasEdge(v, w) && testG.HasEdge(w, u)
				if inT {
					continue // already a clique in T: not a prediction target
				}
				f := min6(
					score[0][join2.Pair{P: u, Q: v}], score[1][join2.Pair{P: v, Q: u}],
					score[2][join2.Pair{P: v, Q: w}], score[3][join2.Pair{P: w, Q: v}],
					score[4][join2.Pair{P: u, Q: w}], score[5][join2.Pair{P: w, Q: u}],
				)
				inG := trueG.HasEdge(u, v) && trueG.HasEdge(v, w) && trueG.HasEdge(w, u)
				samples = append(samples, Sample{Score: f, Positive: inG})
			}
		}
	}
	res, err := finish(samples)
	if err != nil {
		return nil, err
	}
	return &CliquePredictionResult{Samples: res.Samples, ROC: res.ROC, AUC: res.AUC}, nil
}

// pairScores materializes full DHT score maps for the listed (P,Q) set pairs.
func pairScores(g *graph.Graph, params dht.Params, d int, pairs [][2]*graph.NodeSet) ([]map[join2.Pair]float64, error) {
	out := make([]map[join2.Pair]float64, len(pairs))
	for i, sp := range pairs {
		cfg := join2.Config{Graph: g, Params: params, D: d, P: sp[0].Nodes(), Q: sp[1].Nodes()}
		j, err := join2.NewBBJ(cfg)
		if err != nil {
			return nil, err
		}
		list, err := j.TopK(cfg.MaxPairs())
		if err != nil {
			return nil, err
		}
		m := make(map[join2.Pair]float64, len(list))
		for _, r := range list {
			m[r.Pair] = r.Score
		}
		out[i] = m
	}
	return out, nil
}

func min6(a, b, c, d, e, f float64) float64 {
	m := a
	for _, v := range []float64{b, c, d, e, f} {
		if v < m {
			m = v
		}
	}
	return m
}

func finish(samples []Sample) (*LinkPredictionResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("eval: no prediction candidates")
	}
	roc, err := ROC(samples)
	if err != nil {
		return nil, err
	}
	auc, err := AUC(samples)
	if err != nil {
		return nil, err
	}
	return &LinkPredictionResult{Samples: samples, ROC: roc, AUC: auc}, nil
}
