// Package eval implements the paper's effectiveness metrics and experiments
// (§VII-B): ROC curves and AUC over ranked join results, link prediction via
// 2-way joins on a test graph, and 3-clique prediction via triangle 3-way
// joins.
package eval

import (
	"fmt"
	"sort"
)

// Sample is one ranked prediction: its join score and whether the predicted
// link/clique actually exists in the true graph.
type Sample struct {
	Score    float64
	Positive bool
}

// Point is one ROC coordinate.
type Point struct {
	FPR, TPR float64
}

// ROC sweeps the classification threshold across the (descending) score
// order and returns the ROC polyline, beginning at (0,0) and ending at
// (1,1). Ties are handled by moving through equal-score groups atomically,
// as Fawcett (2006) prescribes.
func ROC(samples []Sample) ([]Point, error) {
	pos, neg := count(samples)
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("eval: ROC needs both positives and negatives (pos=%d neg=%d)", pos, neg)
	}
	s := append([]Sample(nil), samples...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Score > s[j].Score })
	pts := []Point{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].Score == s[i].Score {
			if s[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		pts = append(pts, Point{FPR: float64(fp) / float64(neg), TPR: float64(tp) / float64(pos)})
		i = j
	}
	return pts, nil
}

// AUC computes the area under the ROC curve with the rank-statistic
// (Mann–Whitney) formulation, giving ties half credit. It equals the
// probability that a random positive outranks a random negative.
func AUC(samples []Sample) (float64, error) {
	pos, neg := count(samples)
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("eval: AUC needs both positives and negatives (pos=%d neg=%d)", pos, neg)
	}
	s := append([]Sample(nil), samples...)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Score < s[j].Score })
	// Sum of mid-ranks of the positives (1-based ranks, ascending score).
	var rankSum float64
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].Score == s[i].Score {
			j++
		}
		mid := float64(i+1+j) / 2 // average of ranks i+1 .. j
		for t := i; t < j; t++ {
			if s[t].Positive {
				rankSum += mid
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// AUCFromROC integrates a ROC polyline with the trapezoid rule; used to
// cross-check AUC in tests.
func AUCFromROC(pts []Point) float64 {
	var area float64
	for i := 1; i < len(pts); i++ {
		dx := pts[i].FPR - pts[i-1].FPR
		area += dx * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

func count(samples []Sample) (pos, neg int) {
	for _, s := range samples {
		if s.Positive {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}
