package service

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/store"
)

// This file is the service side of durability: adopting recovered graphs at
// boot, edge updates that append to the store's WAL before they swap the
// served graph, and the memory-only eviction that a store makes safe.
//
// Everything hangs off one invariant: sessions are keyed by graph pointer
// (sessionKey.g), so replacing a registry entry's *graph.Graph purges every
// derived structure — score memos, result-cache prefixes, plan caches, and
// planner calibrations — exactly when the graph's durable generation moves.
// There is no separate invalidation protocol to get wrong.

// AdoptRecovered registers the graphs the store recovered at startup without
// re-persisting them (their durable state is what they were recovered from).
// Graphs beyond MaxGraphs stay on disk and reload lazily on first use. A
// recovered node set that fails validation against its recovered graph marks
// the segment codec broken, so adoption fails loudly rather than serving it.
func (s *Service) AdoptRecovered(recs []store.Recovered) error {
	for _, rec := range recs {
		byName := make(map[string]*graph.NodeSet, len(rec.Sets))
		for _, set := range rec.Sets {
			if err := set.Validate(rec.Graph); err != nil {
				return fmt.Errorf("service: recovered graph %q: %w", rec.Name, err)
			}
			byName[set.Name] = set
		}
		s.mu.Lock()
		if _, ok := s.graphs[rec.Name]; !ok && len(s.graphs) >= s.cfg.MaxGraphs {
			s.mu.Unlock()
			continue
		}
		s.graphs[rec.Name] = &graphEntry{g: rec.Graph, sets: byName, gen: rec.Gen}
		s.touchGraphLocked(rec.Name)
		s.mu.Unlock()
	}
	return nil
}

// UpdateEdges applies one atomic batch of edge additions and deletions to
// the named graph and returns its new description. With a store attached the
// batch is appended to the graph's WAL and fsynced before the served graph
// changes — a batch that cannot be made durable fails without changing what
// is served. The new graph replaces the registry entry, invalidating every
// session derived from the old one (see the file comment).
func (s *Service) UpdateEdges(name string, adds []graph.Edge, dels [][2]graph.NodeID) (GraphInfo, error) {
	if err := s.admitGate(); err != nil {
		return GraphInfo{}, err
	}
	if len(adds) == 0 && len(dels) == 0 {
		return GraphInfo{}, fmt.Errorf("service: empty edge update")
	}
	// One edit at a time: updates are rare next to the joins they invalidate,
	// and serializing the read-modify-write against the WAL append keeps the
	// generation sequence trivially linear.
	s.editMu.Lock()
	defer s.editMu.Unlock()
	ge, err := s.graphFor(name)
	if err != nil {
		return GraphInfo{}, err
	}
	next, err := graph.ApplyEdits(ge.g, adds, dels)
	if err != nil {
		return GraphInfo{}, err
	}
	// Node sets survive edits unchanged: ApplyEdits only grows the node-id
	// space, so every recovered or declared set stays valid.
	sets := make([]*graph.NodeSet, 0, len(ge.sets))
	for _, set := range ge.sets {
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].Name < sets[j].Name })
	gen := ge.gen + 1
	if s.store != nil {
		if gen, _, err = s.store.AppendEdits(name, adds, dels, next, sets); err != nil {
			return GraphInfo{}, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.graphs[name]; ok {
		s.purgeSessionsLocked(old.g)
	}
	s.graphs[name] = &graphEntry{g: next, sets: ge.sets, gen: gen}
	s.touchGraphLocked(name)
	s.edgeUpdates.Add(1)
	info := GraphInfo{Name: name, Nodes: next.NumNodes(), Edges: next.NumEdges(), Generation: gen}
	for _, set := range sets {
		info.Sets = append(info.Sets, set.Name)
	}
	return info, nil
}

// reloadGraph brings an evicted-but-persisted graph back into the registry.
// The disk read runs outside the service lock; losing a race against a
// concurrent reload (or an explicit load) of the same name just discards the
// duplicate.
func (s *Service) reloadGraph(name string) (*graphEntry, error) {
	g, sets, gen, err := s.store.Load(name)
	if err != nil {
		return nil, fmt.Errorf("service: reloading %q: %w", name, err)
	}
	byName := make(map[string]*graph.NodeSet, len(sets))
	for _, set := range sets {
		if err := set.Validate(g); err != nil {
			return nil, fmt.Errorf("service: reloading %q: %w", name, err)
		}
		byName[set.Name] = set
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ge, ok := s.graphs[name]; ok {
		s.touchGraphLocked(name)
		return ge, nil
	}
	if len(s.graphs) >= s.cfg.MaxGraphs {
		s.evictGraphLocked(name)
	}
	ge := &graphEntry{g: g, sets: byName, gen: gen}
	s.graphs[name] = ge
	s.touchGraphLocked(name)
	return ge, nil
}

// touchGraphLocked moves name to the MRU position, appending it if absent
// (caller holds s.mu).
func (s *Service) touchGraphLocked(name string) {
	for i, n := range s.graphOrder {
		if n == name {
			copy(s.graphOrder[i:], s.graphOrder[i+1:])
			s.graphOrder[len(s.graphOrder)-1] = name
			return
		}
	}
	s.graphOrder = append(s.graphOrder, name)
}

// removeGraphOrderLocked drops name from the recency order (caller holds
// s.mu).
func (s *Service) removeGraphOrderLocked(name string) {
	for i, n := range s.graphOrder {
		if n == name {
			s.graphOrder = append(s.graphOrder[:i], s.graphOrder[i+1:]...)
			return
		}
	}
}

// evictGraphLocked removes the least recently used resident other than keep
// from memory only — its segments and WAL stay on disk, and graphFor reloads
// it on next use. Only called with a store attached, where every resident is
// persisted by construction (LoadGraph persists before registering, and
// AdoptRecovered's graphs came from disk). Caller holds s.mu.
func (s *Service) evictGraphLocked(keep string) {
	for _, name := range s.graphOrder {
		if name == keep {
			continue
		}
		ge := s.graphs[name]
		delete(s.graphs, name)
		s.removeGraphOrderLocked(name)
		s.purgeSessionsLocked(ge.g)
		return
	}
}
