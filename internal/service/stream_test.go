package service

import (
	"context"
	"errors"
	"testing"
)

// poolOutstanding sums the checked-out engines of every live session pool.
func poolOutstanding(svc *Service) int64 {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	var n int64
	for _, sess := range svc.sessions {
		n += sess.pool.Outstanding()
	}
	return n
}

// TestOpenJoin2MatchesBatch: draining the streaming handle must reproduce
// the batch Join2 bit-identically, and Stop must publish the drained prefix
// so the next batch request is a cache hit.
func TestOpenJoin2MatchesBatch(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	st, err := svc.OpenJoin2(context.Background(), "g", p, q, Query{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := st.NextK(10)
	if err != nil {
		t.Fatal(err)
	}
	st.Stop()
	if len(streamed) != 10 {
		t.Fatalf("streamed %d of 10", len(streamed))
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after Stop", n)
	}

	// An independent service is the uncached reference.
	ref := New(Config{})
	if err := ref.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Join2(context.Background(), "g", p, q, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("rank %d: streamed %+v, batch %+v", i, streamed[i], want[i])
		}
	}

	// The drained prefix now serves batch requests for any k ≤ 10.
	before := svc.Stats().ResultHits
	got, err := svc.Join2(context.Background(), "g", p, q, 7, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != before+1 {
		t.Fatal("prefix published by the stream was not served from cache")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cached rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestJoin2PrefixCache: one cache entry serves every k up to its length,
// longer requests extend it, and an exhausted prefix serves any k.
func TestJoin2PrefixCache(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	ctx := context.Background()

	first, err := svc.Join2(ctx, "g", p, q, 8, Query{})
	if err != nil {
		t.Fatal(err)
	}
	stats := svc.Stats()
	if stats.ResultMisses != 1 || stats.ResultHits != 0 {
		t.Fatalf("after first call: %+v", stats)
	}
	shorter, err := svc.Join2(ctx, "g", p, q, 5, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != 1 {
		t.Fatal("k=5 after k=8 was not a prefix hit")
	}
	for i := range shorter {
		if shorter[i] != first[i] {
			t.Fatalf("prefix rank %d: %+v vs %+v", i, shorter[i], first[i])
		}
	}
	// Longer than the prefix: a miss that replaces it.
	if _, err := svc.Join2(ctx, "g", p, q, 12, Query{}); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultMisses != 2 {
		t.Fatalf("k=12 should have missed: %+v", svc.Stats())
	}
	if _, err := svc.Join2(ctx, "g", p, q, 12, Query{}); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != 2 {
		t.Fatal("repeat k=12 should have hit")
	}

	// Drain the whole ranking; the exhausted prefix then serves any k.
	total := len(sets[0].Nodes()) * len(sets[1].Nodes())
	full, err := svc.Join2(ctx, "g", p, q, total+50, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != total {
		t.Fatalf("full drain returned %d of %d", len(full), total)
	}
	hits := svc.Stats().ResultHits
	again, err := svc.Join2(ctx, "g", p, q, total+999, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != hits+1 {
		t.Fatal("exhausted prefix did not serve an oversized k")
	}
	if len(again) != total {
		t.Fatalf("cached full ranking returned %d", len(again))
	}
}

// TestServiceStreamCancellation: cancelling a request context mid-stream
// must stop the stream, release admission tokens, and return every pooled
// engine — no leaks for a disconnected client.
func TestServiceStreamCancellation(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxConcurrency: 2})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	ctx, cancel := context.WithCancel(context.Background())
	st, err := svc.OpenJoin2(ctx, "g", p, q, Query{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Next(); !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	cancel()
	if _, ok, err := st.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel pull: ok=%v err=%v", ok, err)
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after cancellation", n)
	}
	// Admission tokens are back: a full-width request is granted instantly.
	granted, err := svc.adm.acquire(context.Background(), "", classInteractive, 2)
	if err != nil || granted.n != 2 {
		t.Fatalf("admission after cancel: granted=%+v err=%v", granted, err)
	}
	svc.adm.release(granted)

	// Same for the n-way stream.
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}}
	edges := [][2]int{{0, 1}, {1, 2}}
	ctx2, cancel2 := context.WithCancel(context.Background())
	nst, err := svc.OpenJoinN(ctx2, "g", refs, edges, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := nst.Next(); !ok || err != nil {
		t.Fatalf("n-way first pull: ok=%v err=%v", ok, err)
	}
	cancel2()
	if _, ok, err := nst.Next(); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("n-way post-cancel pull: ok=%v err=%v", ok, err)
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after n-way cancellation", n)
	}
}

// TestOpenJoinNMatchesBatch: the n-way streaming handle against JoinN.
func TestOpenJoinNMatchesBatch(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}}
	edges := [][2]int{{0, 1}, {1, 2}}

	st, err := svc.OpenJoinN(context.Background(), "g", refs, edges, Query{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := st.NextK(6)
	if err != nil {
		t.Fatal(err)
	}
	st.Stop()

	ref := New(Config{})
	if err := ref.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	want, err := ref.JoinN(context.Background(), "g", refs, edges, 6, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d, batch %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i].Score != want[i].Score {
			t.Fatalf("rank %d: %v vs %v", i, streamed[i], want[i])
		}
		for j := range want[i].Nodes {
			if streamed[i].Nodes[j] != want[i].Nodes[j] {
				t.Fatalf("rank %d tuples: %v vs %v", i, streamed[i].Nodes, want[i].Nodes)
			}
		}
	}

	// The stream's prefix serves the next batch request.
	hits := svc.Stats().ResultHits
	if _, err := svc.JoinN(context.Background(), "g", refs, edges, 4, Query{}); err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != hits+1 {
		t.Fatal("n-way prefix was not served from cache")
	}
}

// TestOpenJoin2ReplaysExhaustedPrefix: once a drain exhausted the ranking,
// opening a new stream must replay the cached ranking without touching the
// engines, and still look exhausted to the consumer.
func TestOpenJoin2ReplaysExhaustedPrefix(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	ctx := context.Background()
	total := len(sets[0].Nodes()) * len(sets[1].Nodes())

	full, err := svc.Join2(ctx, "g", p, q, total+10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	walksBefore := svc.Stats().Walks
	hitsBefore := svc.Stats().ResultHits
	st, err := svc.OpenJoin2(ctx, "g", p, q, Query{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	replayed, err := st.NextK(total + 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != total {
		t.Fatalf("replayed %d of %d", len(replayed), total)
	}
	for i := range full {
		if replayed[i] != full[i] {
			t.Fatalf("replay rank %d: %+v vs %+v", i, replayed[i], full[i])
		}
	}
	if _, ok, _ := st.Next(); ok {
		t.Fatal("replay stream not exhausted")
	}
	s := svc.Stats()
	if s.Walks != walksBefore {
		t.Fatalf("replay performed %d walks", s.Walks-walksBefore)
	}
	if s.ResultHits != hitsBefore+1 {
		t.Fatalf("replay not counted as a hit: %+v", s)
	}
}

// TestJoinNStreamCacheImmutable: mutating an answer served by the stream
// must not alter what Stop publishes to the result cache.
func TestJoinNStreamCacheImmutable(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}}
	edges := [][2]int{{0, 1}}
	st, err := svc.OpenJoinN(context.Background(), "g", refs, edges, Query{})
	if err != nil {
		t.Fatal(err)
	}
	a, ok, err := st.Next()
	if !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	want := a.Nodes[0]
	a.Nodes[0] = -999 // hostile caller
	st.Stop()
	cached, err := svc.JoinN(context.Background(), "g", refs, edges, 1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Stats().ResultHits != 1 {
		t.Fatalf("expected the published prefix to serve k=1: %+v", svc.Stats())
	}
	if cached[0].Nodes[0] != want {
		t.Fatalf("cache poisoned: got node %d, want %d", cached[0].Nodes[0], want)
	}
}
