package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/join2"
)

// chaosAcceptable reports whether a stream failure is one of the outcomes the
// chaos harness deliberately provokes: an injected fault, an expired deadline
// budget, a quota rejection, a cancelled request, or a recovered panic.
// Anything else is a real bug.
func chaosAcceptable(err error) bool {
	return errors.Is(err, fault.ErrInjected) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrQuotaExceeded) ||
		errors.Is(err, context.Canceled) ||
		strings.Contains(err.Error(), "panic")
}

// TestChaosStreams is the chaos suite's core: at least 200 concurrent
// streams — 2-way and n-way, across tenants and priority classes, some with
// tiny deadline budgets, some cancelled mid-stream — against a service whose
// fault injector fires errors, latency, and panics at engine checkout and
// walk-round granularity. Whatever a stream manages to produce before its
// fate must be bit-identical to the reference ranking prefix, and when the
// dust settles nothing may be leaked: zero outstanding engines, all
// admission tokens free, no waiters.
func TestChaosStreams(t *testing.T) {
	g, sets := testGraph(t)

	inj := fault.New(42)
	inj.Add(fault.Checkout, fault.Rule{Every: 11, Err: errors.New("checkout refused")})
	inj.Add(fault.WalkRound, fault.Rule{Every: 97, Err: errors.New("walk failed")})
	inj.Add(fault.WalkRound, fault.Rule{Every: 211, Panic: true})
	inj.Add(fault.WalkRound, fault.Rule{Every: 13, Delay: 100 * time.Microsecond})

	const maxConc = 8
	svc := New(Config{MaxConcurrency: maxConc, Fault: inj})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}

	// Reference prefixes, computed fault-free outside the service.
	const pullPairs, pullAnswers = 25, 10
	combos := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	pairRefs := make([][]join2.Result, len(combos))
	for ci, c := range combos {
		pairRefs[ci] = refJoin2(t, g, sets[c[0]].Nodes(), sets[c[1]].Nodes(), pullPairs)
	}
	answerRef := refJoinN(t, g, sets, pullAnswers)

	const streams = 240
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			query := Query{Tenant: fmt.Sprintf("tenant-%d", i%5), Workers: 1 + i%3}
			if i%3 == 0 {
				query.Priority = PriorityBatch
			}
			if i%9 == 0 {
				query.Budget = time.Duration(1+i%4) * time.Millisecond
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			kind := i % 4
			if kind < 3 { // three distinct 2-way signatures
				c := combos[kind]
				p, q := SetRef{Name: sets[c[0]].Name}, SetRef{Name: sets[c[1]].Name}
				st, err := svc.OpenJoin2(ctx, "g", p, q, query)
				if err != nil {
					if !chaosAcceptable(err) {
						t.Errorf("stream %d open: %v", i, err)
					}
					return
				}
				defer st.Stop()
				want := pairRefs[kind]
				for j := 0; j < pullPairs; j++ {
					if i%7 == 2 && j == 3 {
						cancel() // simulate a client disconnect mid-stream
					}
					r, ok, err := st.Next()
					if err != nil {
						if !chaosAcceptable(err) {
							t.Errorf("stream %d pull %d: %v", i, j, err)
						}
						return
					}
					if !ok {
						return
					}
					if j < len(want) && r != want[j] {
						t.Errorf("stream %d rank %d: got %+v want %+v", i, j, r, want[j])
						return
					}
				}
				return
			}

			// n-way chain over all three sets.
			refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}}
			edges := [][2]int{{0, 1}, {1, 2}}
			st, err := svc.OpenJoinN(ctx, "g", refs, edges, query)
			if err != nil {
				if !chaosAcceptable(err) {
					t.Errorf("stream %d openN: %v", i, err)
				}
				return
			}
			defer st.Stop()
			for j := 0; j < pullAnswers; j++ {
				if i%7 == 2 && j == 2 {
					cancel()
				}
				a, ok, err := st.Next()
				if err != nil {
					if !chaosAcceptable(err) {
						t.Errorf("stream %d pullN %d: %v", i, j, err)
					}
					return
				}
				if !ok {
					return
				}
				if j < len(answerRef) && !sameAnswers([]core.Answer{a}, answerRef[j:j+1]) {
					t.Errorf("stream %d answer rank %d: got %+v want %+v", i, j, a, answerRef[j])
					return
				}
			}
		}(i)
	}

	// Watchdog: the whole point of the harness is that no combination of
	// faults, cancels, and budgets can deadlock the serving layer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("chaos streams did not finish within 120s: likely deadlock")
	}

	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after chaos run", n)
	}
	free, waiting, _ := svc.adm.snapshot()
	if free != maxConc || waiting != 0 {
		t.Fatalf("admission leaked: free=%d want %d, waiting=%d", free, maxConc, waiting)
	}
	if inj.Calls(fault.Checkout) == 0 || inj.Fired(fault.WalkRound) == 0 {
		t.Fatalf("injector never engaged: checkout calls=%d walk fires=%d",
			inj.Calls(fault.Checkout), inj.Fired(fault.WalkRound))
	}
	st := svc.Stats()
	t.Logf("chaos: quota_rejections=%d budget_truncations=%d panics_recovered=%d walk_calls=%d walk_fired=%d",
		st.QuotaRejections, st.BudgetTruncations, st.PanicsRecovered,
		inj.Calls(fault.WalkRound), inj.Fired(fault.WalkRound))
}

// TestChaosHTTPDisconnects drives the full HTTP stack: concurrent NDJSON
// streaming clients that read a few lines and slam the connection shut, plus
// injected response-write failures. Every handler must unwind through its
// deferred Stop: engines and admission tokens all return.
func TestChaosHTTPDisconnects(t *testing.T) {
	g, sets := testGraph(t)
	inj := fault.New(7)
	inj.Add(fault.ResponseWrite, fault.Rule{Every: 9, Err: errors.New("write dropped")})
	svc := New(Config{MaxConcurrency: 8, Fault: inj})
	if err := svc.LoadGraph("test", g, sets); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	body, err := json.Marshal(map[string]any{
		"graph":  "test",
		"p":      map[string]any{"set": sets[0].Name},
		"q":      map[string]any{"set": sets[1].Name},
		"k":      0, // stream until exhausted — the client bails long before
		"stream": true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 48
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/join2", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			// Read a few lines, then disconnect without draining.
			sc := bufio.NewScanner(resp.Body)
			for j := 0; j <= i%5 && sc.Scan(); j++ {
			}
			resp.Body.Close()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("HTTP chaos clients did not finish: likely deadlock")
	}

	// The handlers notice the dead connections asynchronously; poll.
	waitFor(t, func() bool { return poolOutstanding(svc) == 0 })
	waitFor(t, func() bool {
		free, waiting, _ := svc.adm.snapshot()
		return free == 8 && waiting == 0
	})
	if inj.Fired(fault.ResponseWrite) == 0 {
		t.Fatal("response-write faults never fired")
	}
}
